// Package cyclesql's root benchmarks regenerate every table and figure of
// the paper's evaluation (one testing.B benchmark per artifact) plus the
// ablation benches DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark prints its artifact once and reports headline numbers as
// benchmark metrics so regressions show up in benchstat diffs.
package cyclesql

import (
	"context"
	"fmt"
	"strconv"
	"testing"
	"time"

	"cyclesql/internal/core"
	"cyclesql/internal/datasets"
	"cyclesql/internal/experiments"
	"cyclesql/internal/explain"
	"cyclesql/internal/faultinject"
	"cyclesql/internal/nl2sql"
	"cyclesql/internal/nli"
	"cyclesql/internal/nn"
	"cyclesql/internal/provenance"
	"cyclesql/internal/provgraph"
	"cyclesql/internal/resilience"
	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqleval"
)

// benchLimits keeps the full harness tractable under testing.B (the whole
// suite must fit the go-test timeout; pass -timeout 45m for comfort). The
// cmd/benchmark binary accepts larger budgets via -dev/-train.
var benchLimits = experiments.Limits{
	MaxDev:      60,
	MaxTrain:    300,
	TrainModels: []string{"resdsql-3b", "resdsql-large", "gpt-3.5-turbo", "picard-3b"},
}

func runExperiment(b *testing.B, id string) *experiments.Table {
	b.Helper()
	var table *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		table, err = experiments.Registry[id](context.Background(), benchLimits)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fmt.Println(table.String())
	return table
}

// firstFloat parses the leading float of a cell like "82.0(+2.6)".
func firstFloat(cell string) float64 {
	end := 0
	for end < len(cell) && (cell[end] == '.' || cell[end] >= '0' && cell[end] <= '9') {
		end++
	}
	v, _ := strconv.ParseFloat(cell[:end], 64)
	return v
}

func BenchmarkFig1BeamAccuracy(b *testing.B)     { runExperiment(b, "fig1") }
func BenchmarkTable2Difficulty(b *testing.B)     { runExperiment(b, "table2") }
func BenchmarkFig8aIterations(b *testing.B)      { runExperiment(b, "fig8a") }
func BenchmarkFig8bLatency(b *testing.B)         { runExperiment(b, "fig8b") }
func BenchmarkFig9FeedbackAblation(b *testing.B) { runExperiment(b, "fig9") }
func BenchmarkTable4CaseStudy(b *testing.B)      { runExperiment(b, "table4") }
func BenchmarkFig10UserStudy(b *testing.B)       { runExperiment(b, "fig10") }

func BenchmarkTable1Overall(b *testing.B) {
	table := runExperiment(b, "table1")
	// Report the headline RESDSQL-3B Spider EX pair as metrics.
	for i, row := range table.Rows {
		if row.Label == "resdsql-3b" && row.Values[0] == "spider" && row.Values[1] == "base" {
			b.ReportMetric(firstFloat(row.Values[3]), "baseEX%")
			b.ReportMetric(firstFloat(table.Rows[i+1].Values[3]), "loopEX%")
			break
		}
	}
}

func BenchmarkTable3Verifiers(b *testing.B) {
	table := runExperiment(b, "table3")
	for _, row := range table.Rows {
		if row.Label == "+cyclesql (oracle verifier)" {
			b.ReportMetric(firstFloat(row.Values[1]), "oracleEX%")
		}
	}
}

// ---- Ablation benches (DESIGN.md "Design choices called out") ----

// BenchmarkAblationFocalLoss compares the paper's focal loss against plain
// weighted cross-entropy on identical verifier training data, reporting
// held-out pair accuracy for both.
func BenchmarkAblationFocalLoss(b *testing.B) {
	bench := datasets.Spider()
	pairs := core.BuildTrainingPairs(context.Background(), bench, core.TrainDataConfig{
		Models: benchLimits.TrainModels[:3], MaxExamples: 300, Seed: 1,
	})
	cut := len(pairs) * 85 / 100
	var focalAcc, ceAcc float64
	for i := 0; i < b.N; i++ {
		focal := nli.Train(pairs[:cut], nli.TrainConfig{Seed: 2, Loss: nn.PaperFocal})
		ce := nli.Train(pairs[:cut], nli.TrainConfig{Seed: 2, Loss: nn.CrossEntropy{WPos: 2.7, WNeg: 1.0}})
		focalAcc = nli.Accuracy(focal, pairs[cut:])
		ceAcc = nli.Accuracy(ce, pairs[cut:])
	}
	b.ReportMetric(100*focalAcc, "focalAcc%")
	b.ReportMetric(100*ceAcc, "ceAcc%")
}

// BenchmarkAblationRule2 compares the paper's Rule 2 (project referenced
// columns + primary keys) against projecting all columns, measuring the
// provenance width that drives explanation conciseness.
func BenchmarkAblationRule2(b *testing.B) {
	bench := datasets.Spider()
	dev := bench.Dev[:100]
	var rule2Cols, allCols, n float64
	for i := 0; i < b.N; i++ {
		rule2Cols, allCols, n = 0, 0, 0
		for _, ex := range dev {
			db := bench.DB(ex.DBName)
			rel, err := sqleval.New(db).Exec(ex.Gold)
			if err != nil || rel.NumRows() == 0 {
				continue
			}
			prov, err := provenance.Track(db, ex.Gold, rel, 0)
			if err != nil || prov.Empty {
				continue
			}
			for _, part := range prov.Parts {
				if part.Table == nil {
					continue
				}
				n++
				rule2Cols += float64(part.Table.NumCols())
				// The all-columns alternative projects every column of
				// every referenced table.
				total := 0
				for _, ref := range part.Core.Tables() {
					if t := db.Schema.Table(ref.Name); t != nil {
						total += len(t.Columns)
					}
				}
				allCols += float64(total)
			}
		}
	}
	if n > 0 {
		b.ReportMetric(rule2Cols/n, "rule2Cols/query")
		b.ReportMetric(allCols/n, "allCols/query")
	}
}

// BenchmarkAblationJoinSemantics measures how often the pre-defined graph
// pool resolves join semantics versus falling back to table names.
func BenchmarkAblationJoinSemantics(b *testing.B) {
	bench := datasets.Spider()
	var matched, joins float64
	for i := 0; i < b.N; i++ {
		matched, joins = 0, 0
		for _, ex := range bench.Dev {
			db := bench.DB(ex.DBName)
			for _, coreStmt := range ex.Gold.Cores {
				var tables []string
				for _, t := range coreStmt.Tables() {
					if t.Name != "" {
						tables = append(tables, t.Name)
					}
				}
				if len(tables) < 2 {
					continue
				}
				joins++
				js := provgraph.DiscoverJoin(db.Schema, tables)
				if js.Topology != "" {
					matched++
				}
			}
		}
	}
	if joins > 0 {
		b.ReportMetric(100*matched/joins, "poolMatch%")
	}
}

// BenchmarkExplanationGeneration measures the per-result cost of the full
// provenance -> annotation -> graph -> NL pipeline (the overhead Fig 8b
// attributes to CycleSQL).
func BenchmarkExplanationGeneration(b *testing.B) {
	bench := datasets.Spider()
	ex := bench.Dev[0]
	db := bench.DB(ex.DBName)
	rel, err := sqleval.New(db).Exec(ex.Gold)
	if err != nil {
		b.Fatal(err)
	}
	e := explain.New(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Explain(ex.Gold, rel, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifierInference measures single-pair NLI inference cost.
func BenchmarkVerifierInference(b *testing.B) {
	v := experiments.Verifier(experiments.Limits{MaxTrain: 200, TrainModels: []string{"resdsql-3b", "gpt-3.5-turbo"}})
	premise := nli.Premise{
		Explanation: "The query returns a result set with one column of aggregation type (count) and one row, filtered by name equal to Airbus A340-300. For aircraft with flight, there are 2 flights in total.",
		SQL:         "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.name = 'Airbus A340-300'",
		Result:      "1 rows ; 2",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Score("Show all flight numbers with aircraft Airbus A340-300.", premise)
	}
}

// BenchmarkProvenanceTracking measures the query-rewriting tracker alone
// (one-shot API: a fresh tracker per call, as a single explanation pays).
func BenchmarkProvenanceTracking(b *testing.B) {
	db := datasets.FlightDB()
	stmt := mustParse(b, "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.name = 'Airbus A340-300'")
	rel, err := sqleval.New(db).Exec(stmt)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := provenance.Track(db, stmt, rel, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProvenanceTrackingReused measures the tracker as the CycleSQL
// loop holds it — one Tracker per database — so the rewritten provenance
// statement and its compiled plan are reused across calls.
func BenchmarkProvenanceTrackingReused(b *testing.B) {
	db := datasets.FlightDB()
	stmt := mustParse(b, "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.name = 'Airbus A340-300'")
	rel, err := sqleval.New(db).Exec(stmt)
	if err != nil {
		b.Fatal(err)
	}
	tr := provenance.NewTracker(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Track(stmt, rel, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func mustParse(b *testing.B, sql string) *sqlast.SelectStmt {
	b.Helper()
	stmt, err := parse(sql)
	if err != nil {
		b.Fatal(err)
	}
	return stmt
}

// ---- Feedback-loop parallelism benches (PR 3, BENCH_PR3.json) ----

// loopBench measures the verification wall-clock of the full feedback
// loop at beam 8 over a fixed dev slice, with a reject-all verifier so
// every candidate is examined (the loop's worst case, the regime Fig 8a's
// iteration counts bound). It reports the summed Result.Overhead — the
// loop cost excluding model inference — as overhead-us/translate.
// verifyLatency, when nonzero, charges each Verify call the documented
// per-inference latency the way Fig 8b charges model inference (GPU
// wall-clock is unavailable offline): the paper's verifier is a T5-Large
// forward pass, so in deployment the loop overlaps real inference waits,
// which is exactly what the parallel loop exploits.
func loopBench(b *testing.B, parallelism int, verifyLatency time.Duration) {
	bench := datasets.Spider()
	dev := bench.Dev[:16]
	var reject nli.Verifier = nli.Func{Label: "reject-all", Fn: func(string, nli.Premise) bool { return false }}
	if verifyLatency > 0 {
		// nli.Latency is context-aware, so a candidate the loop cancels
		// abandons its simulated inference mid-wait, as in deployment.
		reject = nli.Latency{V: reject, D: verifyLatency}
	}
	p := core.New(nl2sql.MustByName("resdsql-3b"),
		core.WithVerifier(reject), core.WithBenchmark(bench.Name), core.WithParallelism(parallelism))
	var overhead time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ex := range dev {
			res, err := p.Translate(context.Background(), ex, bench.DB(ex.DBName))
			if err != nil {
				b.Fatal(err)
			}
			if res.Iterations != len(res.Candidates) {
				b.Fatalf("reject-all must exhaust the beam, examined %d/%d", res.Iterations, len(res.Candidates))
			}
			overhead += res.Overhead
		}
	}
	b.ReportMetric(float64(overhead.Microseconds())/float64(b.N*len(dev)), "overhead-us/translate")
}

func BenchmarkTranslateLoopSequential(b *testing.B) { loopBench(b, 1, 0) }
func BenchmarkTranslateLoopParallel4(b *testing.B)  { loopBench(b, 4, 0) }
func BenchmarkTranslateLoopParallel8(b *testing.B)  { loopBench(b, 8, 0) }

// The SimVerify variants charge each verification 2ms of simulated
// inference latency (the Fig 8b substitution applied to the verifier);
// the parallel loop overlaps those waits across candidates.
func BenchmarkTranslateLoopSimVerifySequential(b *testing.B) { loopBench(b, 1, 2*time.Millisecond) }
func BenchmarkTranslateLoopSimVerifyParallel4(b *testing.B)  { loopBench(b, 4, 2*time.Millisecond) }
func BenchmarkTranslateLoopSimVerifyParallel8(b *testing.B)  { loopBench(b, 8, 2*time.Millisecond) }

// ---- Batched sweep benches (PR 4, BENCH_PR4.json) ----

// sweepBench measures the end-to-end wall-clock of sweeping a fixed dev
// slice through the feedback loop on the batched experiment runner —
// the workload the table-regeneration drivers run per model. Like
// loopBench, verifyLatency charges each Verify call the documented
// per-inference latency (Fig 8b's substitution applied to the verifier);
// the batch runner overlaps those waits across examples, which is where
// the worker-count speedup comes from on boxes with fewer cores than
// workers. The reject-all verifier exhausts every beam, making the sweep
// cost deterministic across worker counts.
func sweepBench(b *testing.B, workers int, verifyLatency time.Duration) {
	bench := datasets.Spider()
	dev := bench.Dev[:24]
	var reject nli.Verifier = nli.Func{Label: "reject-all", Fn: func(string, nli.Premise) bool { return false }}
	if verifyLatency > 0 {
		reject = nli.Latency{V: reject, D: verifyLatency}
	}
	p := core.New(nl2sql.MustByName("resdsql-3b"),
		core.WithVerifier(reject), core.WithBenchmark(bench.Name))
	batch := experiments.Batch{Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := make([]*core.Result, len(dev))
		errs := batch.Run(context.Background(), len(dev), func(ctx context.Context, j int) error {
			res, err := p.Translate(ctx, dev[j], bench.DB(dev[j].DBName))
			if err != nil {
				return err
			}
			results[j] = res
			return nil
		})
		for j, err := range errs {
			if err != nil {
				b.Fatalf("example %d: %v", j, err)
			}
			if results[j].Iterations != len(results[j].Candidates) {
				b.Fatalf("reject-all must exhaust the beam on example %d", j)
			}
		}
	}
}

func BenchmarkSweepWorkers1(b *testing.B) { sweepBench(b, 1, 0) }
func BenchmarkSweepWorkers4(b *testing.B) { sweepBench(b, 4, 0) }
func BenchmarkSweepWorkers8(b *testing.B) { sweepBench(b, 8, 0) }

// The SimVerify variants charge each verification 2ms of simulated
// inference latency; 8 workers overlap eight examples' verifier waits,
// cutting sweep wall-clock roughly by the worker count until cores (for
// the CPU-bound part) or the per-example critical path binds.
func BenchmarkSweepSimVerifyWorkers1(b *testing.B) { sweepBench(b, 1, 2*time.Millisecond) }
func BenchmarkSweepSimVerifyWorkers4(b *testing.B) { sweepBench(b, 4, 2*time.Millisecond) }
func BenchmarkSweepSimVerifyWorkers8(b *testing.B) { sweepBench(b, 8, 2*time.Millisecond) }

// ---- Resilience and chaos benches (PR 6, BENCH_PR6.json) ----

// resilientLoopBench is loopBench with the resilience layer armed — a
// retry budget, per-stage breakers and a collector on every stage — and,
// when faults has enabled rates, deterministic chaos injected around
// every model call. The fault-free variants price the policy machinery
// itself on the worst-case loop (every candidate examined); the chaos
// variants price a 20% transient-fault rate healed by retries. It reports
// how many retries each translate burned alongside the loop overhead.
func resilientLoopBench(b *testing.B, parallelism int, faults faultinject.Config) {
	bench := datasets.Spider()
	dev := bench.Dev[:16]
	var reject nli.Verifier = nli.Func{Label: "reject-all", Fn: func(string, nli.Premise) bool { return false }}
	inj := faultinject.New(faults)
	p := core.New(inj.WrapModel(nl2sql.MustByName("resdsql-3b")),
		core.WithVerifier(inj.WrapVerifier(reject)), core.WithBenchmark(bench.Name))
	p.Feedback = inj.WrapFeedback(p.Feedback)
	p.Parallelism = parallelism
	p.Resilience = &resilience.Policy{
		Retry:     resilience.Retry{MaxAttempts: 8, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond, Seed: 7},
		Breaker:   resilience.BreakerConfig{Threshold: 5, Cooldown: 50 * time.Millisecond},
		Collector: &resilience.Collector{},
	}
	var overhead time.Duration
	retries := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ex := range dev {
			res, err := p.Translate(context.Background(), ex, bench.DB(ex.DBName))
			if err != nil {
				b.Fatal(err)
			}
			if res.Iterations != len(res.Candidates) {
				b.Fatalf("reject-all must exhaust the beam, examined %d/%d", res.Iterations, len(res.Candidates))
			}
			if res.Degraded {
				b.Fatal("nothing may degrade when every fault heals")
			}
			overhead += res.Overhead
			retries += res.Retries
		}
	}
	b.ReportMetric(float64(overhead.Microseconds())/float64(b.N*len(dev)), "overhead-us/translate")
	b.ReportMetric(float64(retries)/float64(b.N*len(dev)), "retries/translate")
}

// benchChaos mirrors the chaos-parity suite's locked fault weather (see
// internal/experiments/chaos_test.go).
var benchChaos = faultinject.Config{
	Seed:      7,
	ErrorRate: 0.2,
	HangRate:  0.05, HangTimeout: time.Millisecond,
	PanicRate:   0.05,
	LatencyRate: 0.1, Latency: 200 * time.Microsecond,
}

// The Resilient variants run the full policy machinery with zero faults:
// their delta against BenchmarkTranslateLoop{Sequential,Parallel4} is the
// price of arming retries and breakers on a healthy stack.
func BenchmarkTranslateLoopResilientSequential(b *testing.B) {
	resilientLoopBench(b, 1, faultinject.Config{})
}
func BenchmarkTranslateLoopResilientParallel4(b *testing.B) {
	resilientLoopBench(b, 4, faultinject.Config{})
}

// The Chaos variants inject the parity suite's fault weather and heal it
// with retries — the overhead of surviving a 20% transient-fault rate.
func BenchmarkTranslateLoopChaosSequential(b *testing.B) { resilientLoopBench(b, 1, benchChaos) }
func BenchmarkTranslateLoopChaosParallel4(b *testing.B)  { resilientLoopBench(b, 4, benchChaos) }
