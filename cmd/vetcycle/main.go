// Command vetcycle runs the project's static-analysis suite
// (internal/lint) over Go packages. It works two ways:
//
//	vetcycle ./...                  # standalone, from the module root
//	go vet -vettool=$(which vetcycle) ./...   # as a vet tool
//
// Standalone mode loads packages via `go list -export` and prints one
// finding per line as file:line:col: message (analyzer), exiting 1 when
// anything is reported. Vet-tool mode speaks the cmd/go unitchecker
// protocol: -V=full fingerprints the binary for the build cache, -flags
// advertises the (empty) forwardable flag set, and a lone *.cfg argument
// analyzes the one package described by the JSON config, exiting 2 on
// findings so `go vet` fails the package.
//
// docs/linting.md specifies each analyzer's invariant and how to
// suppress a deliberate finding with a //vetcycle:allow directive.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cyclesql/internal/lint"
)

func main() {
	// go vet probes the tool with -V=full before anything else; answer
	// before flag.Parse so the probe cannot collide with our own flags.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V=") {
		printVersion(os.Args[1])
		return
	}
	var (
		listFlag  = flag.Bool("list", false, "list the analyzers in the suite and exit")
		flagsFlag = flag.Bool("flags", false, "print a JSON description of forwardable flags (vet protocol) and exit")
		only      = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	)
	flag.Parse()
	switch {
	case *flagsFlag:
		// No flags are forwarded from `go vet` to vetcycle.
		fmt.Println("[]")
		return
	case *listFlag:
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}
	analyzers := lint.All()
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*only, ",")...)
		if err != nil {
			fatal(err)
		}
	}
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0], analyzers))
	}
	os.Exit(runStandalone(args, analyzers))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vetcycle:", err)
	os.Exit(1)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// printVersion implements the -V=full fingerprint handshake cmd/go uses
// to cache vet results: the output embeds a content hash of the binary
// so a rebuilt vetcycle invalidates stale cached findings.
func printVersion(arg string) {
	if arg != "-V=full" {
		fmt.Fprintf(os.Stderr, "vetcycle: unsupported flag %s\n", arg)
		os.Exit(1)
	}
	exe, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fatal(err)
	}
	fmt.Printf("%s version devel vetcycle buildID=%x\n", exe, h.Sum(nil))
}

// runStandalone loads the packages matching patterns from the current
// module and reports findings to stdout. Exit 0 clean, 1 on findings.
func runStandalone(patterns []string, analyzers []*lint.Analyzer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(".", patterns)
	if err != nil {
		fatal(err)
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, analyzers)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "vetcycle: %d finding(s)\n", found)
		return 1
	}
	return 0
}

// unitConfig is the slice of cmd/go's vet config JSON that vetcycle
// consumes; the file is handed to the tool as its sole argument.
type unitConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes the single package described by the vet config file.
// Exit codes follow the unitchecker convention: 0 clean, 1 tool error,
// 2 diagnostics reported.
func runUnit(cfgPath string, analyzers []*lint.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("parse %s: %w", cfgPath, err))
	}
	// vetcycle exports no facts, but cmd/go insists the output file
	// exists before it will cache the result.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return 0
	}
	fset := token.NewFileSet()
	files, err := lint.ParseAbsFiles(fset, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fatal(err)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if real, ok := cfg.ImportMap[path]; ok {
			path = real
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, err := lint.TypeCheckFiles(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fatal(err)
	}
	pkg.SrcDir = srcDirFromConfig(cfg.Dir, cfg.ImportPath)
	diags, err := lint.Run(pkg, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// srcDirFromConfig recovers the module layout from one package's (Dir,
// ImportPath) pair by peeling matching trailing path components — e.g.
// (/repo/internal/core, cyclesql/internal/core) yields a resolver rooted
// at (/repo, cyclesql) — so nodeprecated can read dependency sources.
func srcDirFromConfig(dir, importPath string) func(string) string {
	d, p := filepath.ToSlash(dir), importPath
	for {
		di := strings.LastIndexByte(d, '/')
		pi := strings.LastIndexByte(p, '/')
		if di < 0 || pi < 0 || d[di+1:] != p[pi+1:] {
			break
		}
		d, p = d[:di], p[:pi]
	}
	return lint.ModuleSrcDir(p, filepath.FromSlash(d))
}
