// Command serve runs the pipeline-as-a-service HTTP layer: every
// benchmark database becomes a tenant at /v1/{tenant}/translate, with
// liveness at /healthz and JSON counters at /metrics.
//
// Usage:
//
//	serve -addr :8080
//	serve -addr :8080 -max-inflight 16 -max-queue 64 -parallel 4
//	serve -verifier-latency 5ms        # simulate verifier inference cost
//
// Requests execute against copy-on-write snapshots of the tenant store
// (pinned in O(tables), refreshed only when the store's epoch moves), on
// warm per-tenant pipelines. Admission control bounds concurrency: past
// -max-inflight running and -max-queue waiting requests, the server
// sheds load with 429 and Retry-After instead of queueing unboundedly.
// The -timeout flag is the per-request budget (default 30s; a request's
// timeout_ms can only shorten it), and a client disconnect cancels its
// in-flight loop work.
//
// The shared cliconf flags (-parallel, -retries, -breaker, -fault-*,
// -dev, -train, -beam, ...) mean exactly what they mean on cmd/cyclesql
// and cmd/benchmark. SIGINT or SIGTERM drains in-flight requests and
// exits 0; a second signal kills the process immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cyclesql/internal/cliconf"
	"cyclesql/internal/datasets"
	"cyclesql/internal/experiments"
	"cyclesql/internal/nl2sql"
	"cyclesql/internal/nli"
	"cyclesql/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	model := flag.String("model", "resdsql-3b", "default translation model ("+strings.Join(nl2sql.ModelNames(), ", ")+"); requests may override per call")
	maxInflight := flag.Int("max-inflight", 8, "max concurrently executing translations")
	maxQueue := flag.Int("max-queue", 16, "max requests queued for an execution slot; beyond this the server sheds with 429")
	verifierLatency := flag.Duration("verifier-latency", 0, "simulated verifier inference latency per call (0 = none)")
	drain := flag.Duration("drain", 10*time.Second, "max time to drain in-flight requests on SIGINT/SIGTERM")
	opts := cliconf.Default()
	opts.Bind(flag.CommandLine)
	opts.BindBeam(flag.CommandLine)
	opts.BindTraining(flag.CommandLine)
	flag.Parse()

	if _, err := nl2sql.ByName(*model); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := opts.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	built := opts.Build()

	fmt.Fprintln(os.Stderr, "training verifier...")
	var verifier nli.Verifier = experiments.Verifier(built.Limits)
	if *verifierLatency > 0 {
		verifier = nli.Latency{V: verifier, D: *verifierLatency}
	}

	bench := datasets.Spider()
	srv := serve.New(serve.Config{
		Bench:        bench,
		Verifier:     verifier,
		Limits:       built.Limits,
		DefaultModel: *model,
		Beam:         opts.Beam,
		MaxInflight:  *maxInflight,
		MaxQueue:     *maxQueue,
		Timeout:      opts.Timeout,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// First SIGINT/SIGTERM starts a bounded graceful drain; a second one
	// kills the process the default way (NotifyContext unregisters).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		drained <- httpSrv.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(os.Stderr, "serving %d tenants on %s\n", len(bench.Databases), *addr)
	err := httpSrv.ListenAndServe()
	if !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := <-drained; err != nil {
		fmt.Fprintf(os.Stderr, "drain: %v\n", err)
	}
	if built.Policy != nil {
		fmt.Fprintln(os.Stderr, "reliability: "+built.Policy.Stats().String())
	}
	fmt.Fprintln(os.Stderr, "shut down cleanly")
}
