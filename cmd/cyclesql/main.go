// Command cyclesql translates natural-language questions end-to-end with
// the CycleSQL feedback loop. In its default single-question mode it
// prints the full loop trace: every candidate, its data-grounded
// explanation, and the verifier's verdict. With -all it sweeps every
// benchmark question for the database through the batched experiment
// runner and prints one verdict line per question plus a summary.
//
// Usage:
//
//	cyclesql -db world_1 -model resdsql-3b -q "How many countries are in Africa?"
//	cyclesql -db flight_2 -q "Show all flight numbers with aircraft Airbus A340-300."
//	cyclesql -db world_1 -all -workers 4 -parallel 4
//
// The two parallelism knobs compose: -workers (with -all) overlaps whole
// questions, -parallel overlaps the beam candidates inside each question's
// feedback loop; per-question results are identical at any setting.
// -timeout bounds one question's wall clock. SIGINT (^C) or SIGTERM
// aborts the loop cleanly mid-query (exit code 130).
//
// Resilience and chaos: -retries/-breaker wrap every loop stage with the
// resilience policy (retry/backoff for transient faults, per-stage
// circuit breakers, graceful degradation when the verifier's circuit is
// open), and the -fault-* flags inject deterministic faults around every
// model call to exercise it:
//
//	cyclesql -db world_1 -all -retries 4 -fault-rate 0.2 -fault-seed 7
//
// Whenever resilience or chaos is active, a one-line reliability summary
// (attempts, retries, breaker trips, degraded questions, recovered
// panics) is printed to stderr on exit — including on ^C.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cyclesql/internal/cliconf"
	"cyclesql/internal/core"
	"cyclesql/internal/datasets"
	"cyclesql/internal/eval"
	"cyclesql/internal/experiments"
	"cyclesql/internal/nl2sql"
	"cyclesql/internal/resilience"
)

// reliability is the resilience policy the flags configured (nil when
// resilience and chaos are both off); exit prints its summary.
var reliability *resilience.Policy

// exit prints the reliability summary, then terminates with code — the
// explicit call keeps the summary on every path, since os.Exit skips
// deferred functions.
func exit(code int) {
	if reliability != nil {
		fmt.Fprintln(os.Stderr, "reliability: "+reliability.Stats().String())
	}
	os.Exit(code)
}

func main() {
	dbName := flag.String("db", "world_1", "database name inside the Spider benchmark")
	modelName := flag.String("model", "resdsql-3b", "simulated translation model ("+strings.Join(nl2sql.ModelNames(), ", ")+")")
	question := flag.String("q", "", "natural-language question (must be a benchmark question so the simulated model can translate it)")
	all := flag.Bool("all", false, "translate every benchmark question for -db instead of a single -q")
	opts := cliconf.Default()
	opts.Bind(flag.CommandLine)
	opts.BindBeam(flag.CommandLine)
	flag.Parse()

	if err := opts.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	built := opts.Build()
	reliability = built.Policy

	bench := datasets.Spider()

	// Resolve the question (or, for -all, the database) before the
	// expensive verifier training, so a typo'd -q or -db exits with usage
	// help immediately instead of after a full training run.
	var found *datasets.Example
	if !*all {
		// The simulated models translate benchmark examples; find the one
		// matching the question (or list available questions).
		for i := range bench.Dev {
			ex := &bench.Dev[i]
			if ex.DBName == *dbName && (strings.EqualFold(ex.Question, *question) || *question == "") {
				found = ex
				break
			}
		}
		if found == nil {
			fmt.Fprintf(os.Stderr, "no benchmark question matches; questions for %s:\n", *dbName)
			for _, ex := range bench.Dev {
				if ex.DBName == *dbName {
					fmt.Fprintf(os.Stderr, "  %s\n", ex.Question)
				}
			}
			os.Exit(2)
		}
	} else {
		known := false
		for _, ex := range bench.Dev {
			if ex.DBName == *dbName {
				known = true
				break
			}
		}
		if !known {
			fmt.Fprintf(os.Stderr, "no benchmark questions for database %q\n", *dbName)
			os.Exit(2)
		}
	}

	verifier := experiments.Verifier(experiments.DefaultLimits)
	// Limits.Pipeline wraps the three model-call surfaces with the fault
	// injector (a no-op when no -fault-* flag is set) and applies the
	// parallelism knob and resilience policy; the raw verifier stays in
	// scope for the diagnostic score display below, which reads fault-free.
	pipeline := built.Limits.Pipeline(nl2sql.MustByName(*modelName), verifier, bench.Name, nil)
	pipeline.BeamSize = opts.Beam

	// SIGINT/SIGTERM cancel the context the whole loop below honors, so ^C
	// aborts a translation (or a full -all sweep) cleanly mid-query.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *all {
		sweep(ctx, pipeline, bench, *dbName, *modelName, opts.Workers, opts.Timeout)
		exit(0)
	}
	db := bench.DB(found.DBName)

	fmt.Printf("Question: %s\nDatabase: %s   Model: %s\n\n", found.Question, found.DBName, *modelName)
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		defer cancel()
	}
	res, err := pipeline.Translate(ctx, *found, db)
	if err != nil {
		if ctx.Err() != nil && context.Cause(ctx) != context.DeadlineExceeded {
			fmt.Fprintln(os.Stderr, "interrupted")
			exit(130)
		}
		fmt.Fprintln(os.Stderr, err)
		exit(1)
	}
	for i, cand := range res.Candidates {
		if i >= res.Iterations {
			fmt.Printf("candidate %d (not examined): %s\n", i+1, cand.SQL)
			continue
		}
		verdict := "rejected"
		if res.Verified && i == res.Iterations-1 {
			verdict = "VALIDATED"
		}
		fmt.Printf("candidate %d [%s]: %s\n", i+1, verdict, cand.SQL)
		if i < len(res.Premises) && res.Premises[i].Explanation != "" {
			fmt.Printf("  explanation: %s\n", res.Premises[i].Explanation)
			fmt.Printf("  verifier score: %.3f\n", verifier.Score(found.Question, res.Premises[i]))
		}
		if i < len(res.Errors) && !res.Errors[i].IsZero() {
			fmt.Printf("  feedback failed: %s\n", res.Errors[i].Error())
		}
	}
	status := fmt.Sprintf("verified=%v", res.Verified)
	if res.Degraded {
		status += " degraded=true (verifier circuit open; best-scored candidate returned unverified)"
	}
	if res.Retries > 0 {
		status += fmt.Sprintf(" retries=%d", res.Retries)
	}
	fmt.Printf("\nFinal translation (%d iterations, %s):\n  %s\n", res.Iterations, status, res.FinalSQL)
	fmt.Printf("Execution-correct vs gold: %v\n", eval.EX(db, res.Final, found.Gold))
	fmt.Printf("Feedback-loop overhead: %s\n", res.Overhead.Round(100))
	exit(0)
}

// sweep runs the feedback loop over every dev question of one database on
// the batched experiment runner, printing per-question verdicts in
// benchmark order regardless of completion order. A cancelled ctx (^C)
// fails the remaining questions with the context error and still prints
// the summary for whatever completed.
func sweep(ctx context.Context, pipeline *core.Pipeline, bench *datasets.Benchmark, dbName, modelName string, workers int, timeout time.Duration) {
	var qs []datasets.Example
	for _, ex := range bench.Dev {
		if ex.DBName == dbName {
			qs = append(qs, ex)
		}
	}
	if len(qs) == 0 {
		fmt.Fprintf(os.Stderr, "no benchmark questions for database %q\n", dbName)
		exit(2)
	}
	fmt.Printf("Database: %s   Model: %s   Questions: %d   Workers: %d\n\n", dbName, modelName, len(qs), workers)
	results := make([]*core.Result, len(qs))
	start := time.Now()
	batch := experiments.Batch{Workers: workers, Timeout: timeout}
	errs := batch.Run(ctx, len(qs), func(ctx context.Context, i int) error {
		res, err := pipeline.Translate(ctx, qs[i], bench.DB(qs[i].DBName))
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	elapsed := time.Since(start)
	verified, correct, failed, degraded := 0, 0, 0, 0
	for i, ex := range qs {
		if errs[i] != nil {
			failed++
			fmt.Printf("%3d FAILED    %s\n    %v\n", i+1, ex.Question, errs[i])
			continue
		}
		res := results[i]
		ok := eval.EX(bench.DB(ex.DBName), res.Final, ex.Gold)
		verdict := "rejected "
		if res.Verified {
			verdict = "VALIDATED"
			verified++
		}
		if res.Degraded {
			verdict = "DEGRADED "
			degraded++
		}
		if ok {
			correct++
		}
		fmt.Printf("%3d %s %s\n    iterations=%d execution-correct=%v  %s\n",
			i+1, verdict, ex.Question, res.Iterations, ok, res.FinalSQL)
	}
	fmt.Printf("\n%d/%d verified, %d/%d execution-correct, %d degraded, %d failed in %s\n",
		verified, len(qs), correct, len(qs), degraded, failed, elapsed.Round(time.Millisecond))
}
