// Command cyclesql translates one natural-language question end-to-end
// with the CycleSQL feedback loop and prints the full loop trace: every
// candidate, its data-grounded explanation, and the verifier's verdict.
//
// Usage:
//
//	cyclesql -db world_1 -model resdsql-3b -q "How many countries are in Africa?"
//	cyclesql -db flight_2 -q "Show all flight numbers with aircraft Airbus A340-300."
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cyclesql/internal/core"
	"cyclesql/internal/datasets"
	"cyclesql/internal/eval"
	"cyclesql/internal/experiments"
	"cyclesql/internal/nl2sql"
)

func main() {
	dbName := flag.String("db", "world_1", "database name inside the Spider benchmark")
	modelName := flag.String("model", "resdsql-3b", "simulated translation model ("+strings.Join(nl2sql.ModelNames(), ", ")+")")
	question := flag.String("q", "", "natural-language question (must be a benchmark question so the simulated model can translate it)")
	beam := flag.Int("beam", 8, "candidate beam size")
	parallel := flag.Int("parallel", 1, "concurrent candidate verifications (1 = the paper's sequential loop; results are identical either way)")
	flag.Parse()

	bench := datasets.Spider()
	// The simulated models translate benchmark examples; find the one
	// matching the question (or list available questions).
	var found *datasets.Example
	for i := range bench.Dev {
		ex := &bench.Dev[i]
		if ex.DBName == *dbName && (strings.EqualFold(ex.Question, *question) || *question == "") {
			found = ex
			break
		}
	}
	if found == nil {
		fmt.Fprintf(os.Stderr, "no benchmark question matches; questions for %s:\n", *dbName)
		for _, ex := range bench.Dev {
			if ex.DBName == *dbName {
				fmt.Fprintf(os.Stderr, "  %s\n", ex.Question)
			}
		}
		os.Exit(2)
	}
	db := bench.DB(found.DBName)
	verifier := experiments.Verifier(experiments.DefaultLimits)
	pipeline := core.NewPipeline(nl2sql.MustByName(*modelName), verifier, bench.Name)
	pipeline.BeamSize = *beam
	pipeline.Parallelism = *parallel

	fmt.Printf("Question: %s\nDatabase: %s   Model: %s\n\n", found.Question, found.DBName, *modelName)
	res, err := pipeline.Translate(*found, db)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i, cand := range res.Candidates {
		if i >= res.Iterations {
			fmt.Printf("candidate %d (not examined): %s\n", i+1, cand.SQL)
			continue
		}
		verdict := "rejected"
		if res.Verified && i == res.Iterations-1 {
			verdict = "VALIDATED"
		}
		fmt.Printf("candidate %d [%s]: %s\n", i+1, verdict, cand.SQL)
		if i < len(res.Premises) && res.Premises[i].Explanation != "" {
			fmt.Printf("  explanation: %s\n", res.Premises[i].Explanation)
			fmt.Printf("  verifier score: %.3f\n", verifier.Score(found.Question, res.Premises[i]))
		}
		if i < len(res.Errors) && res.Errors[i] != "" {
			fmt.Printf("  feedback failed: %s\n", res.Errors[i])
		}
	}
	fmt.Printf("\nFinal translation (%d iterations, verified=%v):\n  %s\n", res.Iterations, res.Verified, res.FinalSQL)
	fmt.Printf("Execution-correct vs gold: %v\n", eval.EX(db, res.Final, found.Gold))
	fmt.Printf("Feedback-loop overhead: %s\n", res.Overhead.Round(100))
}
