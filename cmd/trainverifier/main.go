// Command trainverifier trains the dedicated NLI verifier on the Spider
// training split following the paper's §IV-D protocol, reports held-out
// pair accuracy, and optionally saves the model as JSON.
//
// Usage:
//
//	trainverifier -train 500 -out verifier.json
//	trainverifier -loss ce     # cross-entropy ablation of the focal loss
package main

import (
	"flag"
	"fmt"
	"os"

	"cyclesql/internal/core"
	"cyclesql/internal/datasets"
	"cyclesql/internal/nli"
	"cyclesql/internal/nn"
)

func main() {
	maxTrain := flag.Int("train", 500, "max train-split examples (0 = all)")
	epochs := flag.Int("epochs", 0, "training epochs (0 = default)")
	lossName := flag.String("loss", "focal", "training loss: focal (paper) or ce")
	out := flag.String("out", "", "write the trained model JSON here")
	flag.Parse()

	bench := datasets.Spider()
	var loss nn.Loss = nn.PaperFocal
	if *lossName == "ce" {
		loss = nn.CrossEntropy{WPos: 2.7, WNeg: 1.0}
	}
	fmt.Printf("collecting premise-hypothesis pairs from %s train split...\n", bench.Name)
	pairs := core.BuildTrainingPairs(bench, core.TrainDataConfig{MaxExamples: *maxTrain, Seed: 1})
	pos := 0
	for _, p := range pairs {
		if p.Label == 1 {
			pos++
		}
	}
	fmt.Printf("collected %d pairs (%d entailment, %d contradiction)\n", len(pairs), pos, len(pairs)-pos)

	// Hold out the final 15% for evaluation.
	cut := len(pairs) * 85 / 100
	trainPairs, heldOut := pairs[:cut], pairs[cut:]
	v := nli.Train(trainPairs, nli.TrainConfig{Seed: 2, Epochs: *epochs, Loss: loss})
	fmt.Printf("trained (threshold %.2f); held-out pair accuracy: %.3f\n", v.Threshold, nli.Accuracy(v, heldOut))
	fmt.Printf("strawman comparison on the same pairs: llm=%.3f prebuilt=%.3f\n",
		nli.Accuracy(nli.FewShotLLM{}, heldOut), nli.Accuracy(nli.PrebuiltNLI{}, heldOut))

	if *out != "" {
		data, err := nli.MarshalTrained(v)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("model written to %s\n", *out)
	}
}
