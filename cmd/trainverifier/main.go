// Command trainverifier trains the dedicated NLI verifier on the Spider
// training split following the paper's §IV-D protocol, reports held-out
// pair accuracy, and optionally saves the model as JSON.
//
// Usage:
//
//	trainverifier -train 500 -out verifier.json
//	trainverifier -loss ce     # cross-entropy ablation of the focal loss
//
// SIGINT (^C) or SIGTERM aborts between stages — pair collection,
// training, evaluation — with exit code 130 instead of finishing the
// remaining stages; a second signal kills the process immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"cyclesql/internal/core"
	"cyclesql/internal/datasets"
	"cyclesql/internal/nli"
	"cyclesql/internal/nn"
)

// checkpoint exits 130 if the run was interrupted; stages are cheap
// enough individually that between-stage checks keep ^C responsive
// without threading a context through the numeric training loop.
func checkpoint(ctx context.Context) {
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "interrupted")
		os.Exit(130)
	}
}

func main() {
	maxTrain := flag.Int("train", 500, "max train-split examples (0 = all)")
	epochs := flag.Int("epochs", 0, "training epochs (0 = default)")
	lossName := flag.String("loss", "focal", "training loss: focal (paper) or ce")
	out := flag.String("out", "", "write the trained model JSON here")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	bench := datasets.Spider()
	var loss nn.Loss = nn.PaperFocal
	if *lossName == "ce" {
		loss = nn.CrossEntropy{WPos: 2.7, WNeg: 1.0}
	}
	fmt.Printf("collecting premise-hypothesis pairs from %s train split...\n", bench.Name)
	pairs := core.BuildTrainingPairs(ctx, bench, core.TrainDataConfig{MaxExamples: *maxTrain, Seed: 1})
	pos := 0
	for _, p := range pairs {
		if p.Label == 1 {
			pos++
		}
	}
	fmt.Printf("collected %d pairs (%d entailment, %d contradiction)\n", len(pairs), pos, len(pairs)-pos)
	checkpoint(ctx)

	// Hold out the final 15% for evaluation.
	cut := len(pairs) * 85 / 100
	trainPairs, heldOut := pairs[:cut], pairs[cut:]
	v := nli.Train(trainPairs, nli.TrainConfig{Seed: 2, Epochs: *epochs, Loss: loss})
	checkpoint(ctx)
	fmt.Printf("trained (threshold %.2f); held-out pair accuracy: %.3f\n", v.Threshold, nli.Accuracy(v, heldOut))
	fmt.Printf("strawman comparison on the same pairs: llm=%.3f prebuilt=%.3f\n",
		nli.Accuracy(nli.FewShotLLM{}, heldOut), nli.Accuracy(nli.PrebuiltNLI{}, heldOut))
	checkpoint(ctx)

	if *out != "" {
		data, err := nli.MarshalTrained(v)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("model written to %s\n", *out)
	}
}
