// Command explain runs an arbitrary SQL query against a benchmark
// database and prints the why-provenance and the data-grounded NL
// explanation for one result tuple — the paper's §IV pipeline as a
// standalone tool.
//
// Usage:
//
//	explain -db flight_2 -sql "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.name = 'Airbus A340-300'"
//	explain -db world_1 -row 2 -sql "SELECT name FROM country WHERE continent = 'Europe'"
//
// -plan additionally prints the executor's EXPLAIN plan tree — the access
// paths and join strategies the cost-based planner chose, with estimated
// and actual row counts per operator.
//
// SIGINT (^C) or SIGTERM aborts the run cleanly — execution, provenance
// tracking and explanation all honor the cancellation — with exit code
// 130.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"cyclesql/internal/datasets"
	"cyclesql/internal/explain"
	"cyclesql/internal/provenance"
	"cyclesql/internal/sqleval"
	"cyclesql/internal/sqlparse"
)

// fail prints err and exits: 130 when the run was interrupted, 1
// otherwise.
func fail(ctx context.Context, err error) {
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	dbName := flag.String("db", "world_1", "database name")
	sql := flag.String("sql", "", "SQL query to explain")
	row := flag.Int("row", 0, "result row to explain (0-based)")
	polish := flag.Bool("polish", true, "apply the rule-based polishing model")
	showPlan := flag.Bool("plan", false, "print the EXPLAIN plan tree (estimated vs actual rows)")
	flag.Parse()
	if *sql == "" {
		fmt.Fprintln(os.Stderr, "usage: explain -db <name> -sql <query> [-row N]")
		os.Exit(2)
	}
	bench := datasets.Spider()
	db, ok := bench.Databases[*dbName]
	if !ok {
		sci := datasets.Science()
		if db, ok = sci.Databases[*dbName]; !ok {
			fmt.Fprintf(os.Stderr, "unknown database %q\n", *dbName)
			os.Exit(2)
		}
	}
	stmt, err := sqlparse.Parse(*sql)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// SIGINT/SIGTERM cancel the context; the executor's inner loops, the
	// provenance tracker's rewritten queries and the explainer all honor
	// it, so ^C aborts a pathological query instead of hanging the shell.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	exec := sqleval.New(db)
	if *showPlan {
		tree, err := exec.ExplainPlan(ctx, stmt)
		if err != nil {
			fail(ctx, err)
		}
		fmt.Println("Plan:")
		fmt.Print(tree)
	}
	rel, err := exec.ExecContext(ctx, stmt)
	if err != nil {
		fail(ctx, err)
	}
	fmt.Println("Result:")
	fmt.Println(rel.String())

	prov, err := provenance.NewTracker(db).TrackContext(ctx, stmt, rel, *row)
	if err != nil {
		fail(ctx, err)
	}
	if prov.Empty {
		fmt.Println("Provenance: none (empty result; operation-level semantics only)")
	}
	for i, part := range prov.Parts {
		fmt.Printf("Provenance part %d (rewritten SQL):\n  %s\n", i+1, part.Rewritten.SQL())
		if part.Table != nil {
			fmt.Println(part.Table.String())
		}
	}
	e := explain.New(db)
	if *polish {
		e.Polish = explain.RulePolisher{}
	}
	exp, err := e.FromProvenance(prov)
	if err != nil {
		fail(ctx, err)
	}
	fmt.Println("Explanation:")
	fmt.Println(" ", exp.Text)
}
