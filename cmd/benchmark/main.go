// Command benchmark regenerates the paper's tables and figures.
//
// Usage:
//
//	benchmark -exp table1            # one experiment
//	benchmark -exp all               # everything, in paper order
//	benchmark -exp table2 -dev 120   # bound the dev examples per benchmark
//	benchmark -exp table1 -workers 8 # sweep 8 dev examples concurrently
//	benchmark -list                  # list experiment ids
//
// The two parallelism knobs compose: -workers overlaps whole dev examples
// (the batch runner), -parallel overlaps the beam candidates within each
// example's feedback loop. Both leave every accuracy and iteration column
// bit-identical to the sequential sweep; only measured-wall-clock columns
// (Fig 8b's overhead) vary, as they do run to run regardless. -timeout
// bounds one example's wall clock; an example that exceeds it fails the
// run with a deadline error instead of hanging the regeneration. SIGINT
// (^C) or SIGTERM aborts the sweep cleanly mid-example (exit code 130).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cyclesql/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	dev := flag.Int("dev", experiments.DefaultLimits.MaxDev, "max dev examples per benchmark (0 = all)")
	train := flag.Int("train", experiments.DefaultLimits.MaxTrain, "max train examples for verifier training (0 = all)")
	parallel := flag.Int("parallel", 1, "concurrent candidate verifications per feedback loop (1 = the paper's sequential loop; results are identical either way)")
	workers := flag.Int("workers", 1, "concurrent dev examples per experiment sweep (1 = sequential; tables are identical either way)")
	timeout := flag.Duration("timeout", 0, "per-example wall-clock budget (0 = none), e.g. 30s")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs {
			fmt.Println(id)
		}
		return
	}
	lim := experiments.DefaultLimits
	lim.MaxDev = *dev
	lim.MaxTrain = *train
	lim.Parallelism = *parallel
	lim.Workers = *workers
	lim.ExampleTimeout = *timeout

	ids := experiments.IDs
	if *exp != "all" {
		if _, ok := experiments.Registry[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		ids = []string{*exp}
	}
	// SIGINT/SIGTERM cancel the context; the whole stack below — the batch
	// worker pool, the feedback loop, the SQL executor's inner loops —
	// honors it, so one ^C aborts a long regeneration cleanly mid-sweep
	// instead of leaving it to run out. A second signal kills the process
	// the default way (NotifyContext unregisters after the first).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	for _, id := range ids {
		start := time.Now()
		table, err := experiments.Registry[id](ctx, lim)
		if err != nil {
			if errors.Is(err, context.Canceled) || ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "%s: interrupted after %s\n", id, time.Since(start).Round(time.Millisecond))
				os.Exit(130)
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(table.String())
		fmt.Printf("[%s regenerated in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
