// Command benchmark regenerates the paper's tables and figures.
//
// Usage:
//
//	benchmark -exp table1            # one experiment
//	benchmark -exp all               # everything, in paper order
//	benchmark -exp table2 -dev 120   # bound the dev examples per benchmark
//	benchmark -exp table1 -workers 8 # sweep 8 dev examples concurrently
//	benchmark -list                  # list experiment ids
//
// The two parallelism knobs compose: -workers overlaps whole dev examples
// (the batch runner), -parallel overlaps the beam candidates within each
// example's feedback loop. Both leave every accuracy and iteration column
// bit-identical to the sequential sweep; only measured-wall-clock columns
// (Fig 8b's overhead) vary, as they do run to run regardless. -timeout
// bounds one example's wall clock; an example that exceeds it fails the
// run with a deadline error instead of hanging the regeneration. SIGINT
// (^C) or SIGTERM aborts the sweep cleanly mid-example (exit code 130).
//
// Resilience and chaos: -retries/-breaker wrap every pipeline stage with
// the resilience policy (retry/backoff for transient faults, per-stage
// circuit breakers, graceful degradation when the verifier's circuit is
// open), and the -fault-* flags inject deterministic faults around every
// model call. With retries on and no retry-budget exhaustion, a chaos run
// regenerates bit-identical tables:
//
//	benchmark -exp table2 -retries 4 -fault-rate 0.2 -fault-seed 7
//
// Whenever resilience or chaos is active, a one-line reliability summary
// (attempts, retries, breaker trips, degraded examples, recovered panics)
// is printed to stderr on exit — including on ^C.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cyclesql/internal/cliconf"
	"cyclesql/internal/experiments"
	"cyclesql/internal/resilience"
)

// reliability is the resilience policy the flags configured (nil when
// resilience and chaos are both off); exit prints its summary.
var reliability *resilience.Policy

// exit prints the reliability summary, then terminates with code — the
// explicit call keeps the summary on every path, since os.Exit skips
// deferred functions.
func exit(code int) {
	if reliability != nil {
		fmt.Fprintln(os.Stderr, "reliability: "+reliability.Stats().String())
	}
	os.Exit(code)
}

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	opts := cliconf.Default()
	opts.Bind(flag.CommandLine)
	opts.BindTraining(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs {
			fmt.Println(id)
		}
		return
	}
	if err := opts.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	built := opts.Build()
	lim := built.Limits
	reliability = built.Policy

	ids := experiments.IDs
	if *exp != "all" {
		if _, ok := experiments.Registry[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		ids = []string{*exp}
	}
	// SIGINT/SIGTERM cancel the context; the whole stack below — the batch
	// worker pool, the feedback loop, the SQL executor's inner loops —
	// honors it, so one ^C aborts a long regeneration cleanly mid-sweep
	// instead of leaving it to run out. A second signal kills the process
	// the default way (NotifyContext unregisters after the first).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	for _, id := range ids {
		start := time.Now()
		table, err := experiments.Registry[id](ctx, lim)
		if err != nil {
			if errors.Is(err, context.Canceled) || ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "%s: interrupted after %s\n", id, time.Since(start).Round(time.Millisecond))
				exit(130)
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			exit(1)
		}
		fmt.Println(table.String())
		fmt.Printf("[%s regenerated in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if reliability != nil {
		exit(0)
	}
}
