// Command benchmark regenerates the paper's tables and figures.
//
// Usage:
//
//	benchmark -exp table1            # one experiment
//	benchmark -exp all               # everything, in paper order
//	benchmark -exp table2 -dev 120   # bound the dev examples per benchmark
//	benchmark -list                  # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cyclesql/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see -list) or 'all'")
	dev := flag.Int("dev", experiments.DefaultLimits.MaxDev, "max dev examples per benchmark (0 = all)")
	train := flag.Int("train", experiments.DefaultLimits.MaxTrain, "max train examples for verifier training (0 = all)")
	parallel := flag.Int("parallel", 1, "concurrent candidate verifications per feedback loop (1 = the paper's sequential loop; results are identical either way)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs {
			fmt.Println(id)
		}
		return
	}
	lim := experiments.DefaultLimits
	lim.MaxDev = *dev
	lim.MaxTrain = *train
	lim.Parallelism = *parallel

	ids := experiments.IDs
	if *exp != "all" {
		if _, ok := experiments.Registry[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		ids = []string{*exp}
	}
	for _, id := range ids {
		start := time.Now()
		table, err := experiments.Registry[id](lim)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(table.String())
		fmt.Printf("[%s regenerated in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
