// World tour: the paper's Table IV case study on the world_1 database.
//
// For each of the five case-study questions — spanning aggregation, simple
// lookup, INTERSECT, nested negation, and GROUP BY/HAVING — the program
// prints the executed SQL, the to-explain result tuple, the why-provenance
// retrieved by query rewriting, and the polished NL explanation.
//
// Run with: go run ./examples/world_tour
package main

import (
	"fmt"

	"cyclesql/internal/datasets"
	"cyclesql/internal/explain"
	"cyclesql/internal/provenance"
	"cyclesql/internal/sqleval"
)

func main() {
	bench := datasets.Spider()
	db := bench.DB("world_1")
	count := 0
	for _, ex := range bench.Dev {
		if ex.DBName != "world_1" || count >= 5 {
			continue
		}
		count++
		rel, err := sqleval.New(db).Exec(ex.Gold)
		if err != nil {
			panic(err)
		}
		fmt.Printf("Q%d: %s\nSQL: %s\n", count, ex.Question, ex.GoldSQL)
		if rel.NumRows() > 0 {
			fmt.Print("To-explain result: ")
			for _, v := range rel.Rows[0] {
				fmt.Printf("%s  ", v)
			}
			fmt.Println()
		}
		prov, err := provenance.Track(db, ex.Gold, rel, 0)
		if err != nil {
			panic(err)
		}
		for i, part := range prov.Parts {
			if part.Table == nil {
				continue
			}
			fmt.Printf("Provenance part %d: %d tuple(s) via %s\n", i+1, part.Table.NumRows(), part.Rewritten.SQL())
		}
		e := explain.New(db)
		e.Polish = explain.RulePolisher{}
		exp, err := e.FromProvenance(prov)
		if err != nil {
			panic(err)
		}
		fmt.Println("Explanation:", exp.Text)
		fmt.Println()
	}
}
