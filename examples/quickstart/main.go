// Quickstart: plug CycleSQL into an NL2SQL model in ~30 lines.
//
// The pipeline wraps any nl2sql.Model (here a simulated RESDSQL-3B) with
// the self-provided feedback loop: execute a candidate, explain one result
// tuple from its provenance, and let the NLI verifier decide whether the
// explanation entails the question.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"cyclesql/internal/core"
	"cyclesql/internal/datasets"
	"cyclesql/internal/eval"
	"cyclesql/internal/experiments"
	"cyclesql/internal/nl2sql"
)

func main() {
	// 1. A benchmark supplies databases and questions.
	bench := datasets.Spider()
	ex := bench.Dev[0]
	db := bench.DB(ex.DBName)

	// 2. Train (or load) the NLI verifier once; it stays frozen afterwards.
	verifier := experiments.Verifier(experiments.Limits{MaxTrain: 200, TrainModels: []string{"resdsql-3b", "gpt-3.5-turbo"}})

	// 3. Wrap any model with the feedback loop.
	pipeline := core.New(nl2sql.MustByName("resdsql-3b"),
		core.WithVerifier(verifier), core.WithBenchmark(bench.Name))

	res, err := pipeline.Translate(context.Background(), ex, db)
	if err != nil {
		panic(err)
	}
	fmt.Println("Question:   ", ex.Question)
	fmt.Println("Translation:", res.FinalSQL)
	fmt.Println("Verified:   ", res.Verified, "after", res.Iterations, "iteration(s)")
	fmt.Println("Correct:    ", eval.EX(db, res.Final, ex.Gold))
	if len(res.Premises) > 0 && res.Premises[res.Iterations-1].Explanation != "" {
		fmt.Println("Explanation:", res.Premises[res.Iterations-1].Explanation)
	}
}
