// Flight analytics: the paper's motivating scenario (Fig 2).
//
// An analyst asks "Show all flight numbers with aircraft Airbus A340-300."
// A plain SQL2NL back-translation of the model's wrong answer — a count
// instead of a listing — reads as if the translation were fine. CycleSQL's
// data-grounded explanation surfaces the count semantics ("there are 2
// flights in total"), letting the verifier reject the translation and
// recover the correct candidate from the beam.
//
// Run with: go run ./examples/flight_analytics
package main

import (
	"fmt"

	"cyclesql/internal/datasets"
	"cyclesql/internal/explain"
	"cyclesql/internal/sql2nl"
	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqleval"
	"cyclesql/internal/sqlparse"
)

func main() {
	db := datasets.FlightDB()
	question := "Show all flight numbers with aircraft Airbus A340-300."
	cases := []struct {
		label string
		stmt  *sqlast.SelectStmt
	}{
		{"erroneous model output", sqlparse.MustParse("SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.name = 'Airbus A340-300'")},
		{"correct translation", sqlparse.MustParse("SELECT T1.flno FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.name = 'Airbus A340-300'")},
	}

	fmt.Println("Question:", question)
	fmt.Println()
	for _, c := range cases {
		rel, err := sqleval.New(db).Exec(c.stmt)
		if err != nil {
			panic(err)
		}
		fmt.Printf("== %s ==\nSQL: %s\n", c.label, c.stmt.SQL())
		fmt.Println("Result:")
		fmt.Println(rel.String())
		fmt.Println("SQL2NL back-translation (data-blind):")
		fmt.Println(" ", sql2nl.Describe(db.Schema, c.stmt))
		e := explain.New(db)
		e.Polish = explain.RulePolisher{}
		exp, err := e.Explain(c.stmt, rel, 0)
		if err != nil {
			panic(err)
		}
		fmt.Println("CycleSQL data-grounded explanation:")
		fmt.Println(" ", exp.Text)
		fmt.Println()
	}
	fmt.Println("The count-vs-list mismatch is only visible in the data-grounded")
	fmt.Println("explanation - exactly the feedback signal the verifier uses.")
}
