// Robust science DB: CycleSQL on a ScienceBenchmark-style scientific
// database (the paper's Table I, right columns).
//
// General NL2SQL models degrade sharply on jargon-heavy scientific
// schemata; the example runs two simulated models over the oncomx domain
// with the verifier frozen from Spider — exactly the paper's robustness
// protocol — and reports base vs +CycleSQL execution accuracy plus the
// average number of loop iterations.
//
// Run with: go run ./examples/robust_sciencedb
package main

import (
	"context"
	"fmt"

	"cyclesql/internal/core"
	"cyclesql/internal/datasets"
	"cyclesql/internal/eval"
	"cyclesql/internal/experiments"
	"cyclesql/internal/nl2sql"
)

func main() {
	science := datasets.Science()
	verifier := experiments.Verifier(experiments.Limits{MaxTrain: 300, TrainModels: []string{"resdsql-3b", "gpt-3.5-turbo", "chess"}})

	for _, modelName := range []string{"gpt-3.5-turbo", "chess"} {
		pipeline := core.New(nl2sql.MustByName(modelName),
			core.WithVerifier(verifier), core.WithBenchmark(science.Name))
		pipeline.BeamSize = 5
		baseOK, loopOK, n := 0, 0, 0
		iters := 0
		for _, ex := range science.Dev {
			if ex.DBName != "oncomx" {
				continue
			}
			n++
			db := science.DB(ex.DBName)
			base, err := pipeline.Baseline(ex, db)
			if err != nil {
				panic(err)
			}
			if eval.EX(db, base, ex.Gold) {
				baseOK++
			}
			res, err := pipeline.Translate(context.Background(), ex, db)
			if err != nil {
				panic(err)
			}
			if eval.EX(db, res.Final, ex.Gold) {
				loopOK++
			}
			iters += res.Iterations
		}
		fmt.Printf("%-14s oncomx: base EX %4.1f%%  +cyclesql EX %4.1f%%  avg iterations %.2f\n",
			modelName,
			100*float64(baseOK)/float64(n),
			100*float64(loopOK)/float64(n),
			float64(iters)/float64(n))
	}
	fmt.Println("\nThe verifier was trained on Spider only (frozen weights), mirroring")
	fmt.Println("the paper's robustness setting for ScienceBenchmark.")
}
