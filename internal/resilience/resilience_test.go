package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestMarkTransient(t *testing.T) {
	if MarkTransient(nil) != nil {
		t.Fatal("MarkTransient(nil) should stay nil")
	}
	base := errors.New("boom")
	if IsTransient(base) {
		t.Fatal("unmarked error must be permanent")
	}
	marked := MarkTransient(base)
	if !IsTransient(marked) {
		t.Fatal("marked error must be transient")
	}
	wrapped := fmt.Errorf("verify: %w", marked)
	if !IsTransient(wrapped) {
		t.Fatal("transience must survive %%w wrapping")
	}
	if !errors.Is(wrapped, base) {
		t.Fatal("mark must preserve the error chain")
	}
	if IsTransient(context.Canceled) || IsTransient(context.DeadlineExceeded) {
		t.Fatal("context errors are never transient")
	}
	if IsTransient(MarkTransient(fmt.Errorf("late: %w", context.Canceled))) {
		t.Fatal("a marked wrapper around a context error is still not retryable")
	}
	if IsTransient(nil) {
		t.Fatal("nil is not transient")
	}
}

func TestPanicError(t *testing.T) {
	pe := Recovered("kaboom")
	if !IsPanic(pe) {
		t.Fatal("Recovered value must satisfy IsPanic")
	}
	if got := pe.Error(); got != "panic: kaboom" {
		t.Fatalf("Error() = %q", got)
	}
	if IsTransient(pe) {
		t.Fatal("arbitrary panic values are permanent")
	}
	// A transient-marked error thrown as a panic stays retryable.
	tp := Recovered(MarkTransient(errors.New("injected")))
	if !IsTransient(tp) {
		t.Fatal("transient error panic value must stay transient through PanicError")
	}
	if IsPanic(errors.New("plain")) {
		t.Fatal("plain error is not a panic")
	}
}

func TestStageError(t *testing.T) {
	var zero StageError
	if !zero.IsZero() {
		t.Fatal("zero StageError must report IsZero")
	}
	e := StageError{Stage: StageVerify, Attempt: 1, Err: "boom"}
	if e.IsZero() {
		t.Fatal("non-zero StageError must not report IsZero")
	}
	if got := e.Error(); got != "verify: boom" {
		t.Fatalf("single-attempt Error() = %q", got)
	}
	e.Attempt = 3
	if got := e.Error(); got != "verify: boom (attempt 3)" {
		t.Fatalf("multi-attempt Error() = %q", got)
	}
	// Comparability is what the parity suites rely on.
	if e != (StageError{Stage: StageVerify, Attempt: 3, Err: "boom"}) {
		t.Fatal("StageError must be ==-comparable")
	}
}

func TestRetryTransientSucceeds(t *testing.T) {
	r := Retry{MaxAttempts: 5, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
	calls := 0
	attempts, err := r.Do(context.Background(), "k", func(ctx context.Context) error {
		calls++
		if got := Attempt(ctx); got != calls {
			t.Fatalf("attempt %d tagged as %d", calls, got)
		}
		if calls < 3 {
			return MarkTransient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil || attempts != 3 || calls != 3 {
		t.Fatalf("got attempts=%d calls=%d err=%v, want 3/3/nil", attempts, calls, err)
	}
}

func TestRetryPermanentNotRetried(t *testing.T) {
	r := Retry{MaxAttempts: 5, BaseDelay: time.Microsecond}
	calls := 0
	perm := errors.New("semantic")
	attempts, err := r.Do(context.Background(), "k", func(context.Context) error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) || attempts != 1 || calls != 1 {
		t.Fatalf("permanent error retried: attempts=%d calls=%d err=%v", attempts, calls, err)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	r := Retry{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: 5 * time.Microsecond}
	calls := 0
	attempts, err := r.Do(context.Background(), "k", func(context.Context) error {
		calls++
		return MarkTransient(errors.New("still down"))
	})
	if !IsTransient(err) || attempts != 3 || calls != 3 {
		t.Fatalf("budget exhaustion: attempts=%d calls=%d err=%v", attempts, calls, err)
	}
}

func TestRetryZeroValueSingleAttempt(t *testing.T) {
	var r Retry
	calls := 0
	attempts, err := r.Do(context.Background(), "k", func(context.Context) error {
		calls++
		return MarkTransient(errors.New("flaky"))
	})
	if attempts != 1 || calls != 1 || err == nil {
		t.Fatalf("zero Retry must run exactly once: attempts=%d calls=%d err=%v", attempts, calls, err)
	}
}

// Satellite: a pre-cancelled context returns immediately with zero
// attempts — fn never runs and no backoff timer is created.
func TestRetryPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := Retry{MaxAttempts: 5, BaseDelay: time.Hour} // a real sleep would hang the test
	start := time.Now()
	attempts, err := r.Do(ctx, "k", func(context.Context) error {
		t.Fatal("fn must not run under a pre-cancelled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) || attempts != 0 {
		t.Fatalf("pre-cancelled: attempts=%d err=%v", attempts, err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("pre-cancelled Do took %v", elapsed)
	}
}

// Satellite: cancellation mid-backoff abandons the sleep immediately
// instead of finishing the wait (mirrors verifycancel_test.go's style:
// gate the cancellation on the retry actually being inside the backoff).
func TestRetryCancelledMidBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := Retry{MaxAttempts: 2, BaseDelay: time.Hour, MaxDelay: time.Hour}
	entered := make(chan struct{})
	start := time.Now()
	done := make(chan struct{})
	var attempts int
	var err error
	go func() {
		defer close(done)
		attempts, err = r.Do(ctx, "k", func(context.Context) error {
			close(entered)
			return MarkTransient(errors.New("flaky"))
		})
	}()
	<-entered // first attempt has failed; Do is heading into a 1h backoff
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not abandon the backoff on cancellation")
	}
	if !errors.Is(err, context.Canceled) || attempts != 1 {
		t.Fatalf("mid-backoff cancel: attempts=%d err=%v", attempts, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("backoff outlived cancellation: %v", elapsed)
	}
}

func TestBackoffDeterministicAndCapped(t *testing.T) {
	r := Retry{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Seed: 42}
	prevMax := time.Duration(0)
	for attempt := 1; attempt < 9; attempt++ {
		d1 := r.backoff("key", attempt)
		d2 := r.backoff("key", attempt)
		if d1 != d2 {
			t.Fatalf("backoff not deterministic at attempt %d: %v vs %v", attempt, d1, d2)
		}
		if d1 > 8*time.Millisecond {
			t.Fatalf("backoff exceeds cap at attempt %d: %v", attempt, d1)
		}
		if d1 < time.Millisecond/2 {
			t.Fatalf("backoff below half-base at attempt %d: %v", attempt, d1)
		}
		if d1 > prevMax {
			prevMax = d1
		}
	}
	if other := (Retry{MaxAttempts: 10, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Seed: 43}); other.backoff("key", 3) == r.backoff("key", 3) {
		t.Log("seeds 42/43 collided at attempt 3 — allowed but surprising")
	}
	if r.backoff("key-a", 3) == r.backoff("key-b", 3) {
		t.Log("keys a/b collided at attempt 3 — allowed but surprising")
	}
}

func TestAttemptDefault(t *testing.T) {
	if Attempt(context.Background()) != 1 {
		t.Fatal("untagged context must default to attempt 1")
	}
	if Attempt(WithAttempt(context.Background(), 4)) != 4 {
		t.Fatal("tagged attempt not read back")
	}
}

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	b := &Breaker{Threshold: 3, Cooldown: time.Minute, Clock: func() time.Time { return now }}

	// Closed: failures below threshold keep it closed.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker denied call %d", i)
		}
		b.Record(false)
	}
	if b.State() != Closed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	// A success resets the consecutive count.
	b.Allow()
	b.Record(true)
	for i := 0; i < 2; i++ {
		b.Allow()
		b.Record(false)
	}
	if b.State() != Closed {
		t.Fatal("success must reset the consecutive-failure count")
	}
	// Third consecutive failure trips it.
	b.Allow()
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state after threshold failures = %v, want open", b.State())
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
	// Open: fail fast until the cooldown elapses.
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	now = now.Add(time.Minute)
	if !b.Allow() {
		t.Fatal("breaker must admit a probe after cooldown")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state after cooldown Allow = %v, want half-open", b.State())
	}
	// Half-open: only one probe in flight.
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe failure reopens (and recounts as a trip).
	b.Record(false)
	if b.State() != Open || b.Trips() != 2 {
		t.Fatalf("probe failure: state=%v trips=%d, want open/2", b.State(), b.Trips())
	}
	// Probe success after another cooldown closes it.
	now = now.Add(time.Minute)
	if !b.Allow() {
		t.Fatal("second probe denied")
	}
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state after probe success = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker must admit calls again")
	}
}

func TestBreakerNilAndDisabled(t *testing.T) {
	var nilB *Breaker
	if !nilB.Allow() || nilB.State() != Closed || nilB.Trips() != 0 {
		t.Fatal("nil breaker must admit everything")
	}
	nilB.Record(false) // must not panic

	disabled := &Breaker{Threshold: 0}
	for i := 0; i < 10; i++ {
		if !disabled.Allow() {
			t.Fatal("disabled breaker denied a call")
		}
		disabled.Record(false)
	}
	if disabled.State() != Closed {
		t.Fatal("disabled breaker must stay closed")
	}
}

func TestBreakerOnTrip(t *testing.T) {
	trips := 0
	b := &Breaker{Threshold: 1, Cooldown: time.Hour, OnTrip: func() { trips++ }}
	b.Allow()
	b.Record(false)
	if trips != 1 {
		t.Fatalf("OnTrip fired %d times, want 1", trips)
	}
}

func TestPolicyNilSafe(t *testing.T) {
	var p *Policy
	if p.BreakerFor(StageVerify) != nil {
		t.Fatal("nil policy must return nil breaker")
	}
	if got := p.RetryPolicy(); got != (Retry{}) {
		t.Fatalf("nil policy retry = %+v", got)
	}
	if p.Collect() != nil {
		t.Fatal("nil policy must return nil collector")
	}
	if p.Stats() != (Stats{}) {
		t.Fatal("nil policy stats must be zero")
	}
}

func TestPolicyBreakersPerStage(t *testing.T) {
	c := &Collector{}
	p := &Policy{Breaker: BreakerConfig{Threshold: 1, Cooldown: time.Hour}, Collector: c}
	bv := p.BreakerFor(StageVerify)
	if bv == nil {
		t.Fatal("policy must build a verify breaker")
	}
	if p.BreakerFor(StageVerify) != bv {
		t.Fatal("BreakerFor must return the same breaker per stage")
	}
	if p.BreakerFor(StageExplain) == bv {
		t.Fatal("stages must not share a breaker")
	}
	if p.BreakerFor(Stage("bogus")) != nil {
		t.Fatal("unknown stage must map to a nil (admit-all) breaker")
	}
	// Tripping the verify breaker leaves explain closed and feeds the collector.
	bv.Allow()
	bv.Record(false)
	if bv.State() != Open || p.BreakerFor(StageExplain).State() != Closed {
		t.Fatal("trip must be stage-local")
	}
	if got := p.Stats().BreakerTrips; got != 1 {
		t.Fatalf("collector trips = %d, want 1", got)
	}
}

func TestCollectorNilSafeAndCounts(t *testing.T) {
	var nilC *Collector
	nilC.AddAttempts(3)
	nilC.AddRetries(2)
	nilC.AddDegraded()
	nilC.AddPanicRecovered()
	if nilC.Stats() != (Stats{}) {
		t.Fatal("nil collector stats must be zero")
	}

	c := &Collector{}
	c.AddAttempts(3)
	c.AddAttempts(0) // no-op
	c.AddRetries(2)
	c.AddDegraded()
	c.AddPanicRecovered()
	got := c.Stats()
	want := Stats{Attempts: 3, Retries: 2, Degraded: 1, PanicsRecovered: 1}
	if got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
	const wantStr = "attempts=3 retries=2 breaker-trips=0 degraded=1 panics-recovered=1"
	if got.String() != wantStr {
		t.Fatalf("String() = %q, want %q", got.String(), wantStr)
	}
}

// The fault-free fast path must not allocate: a successful single-attempt
// Do, a closed-breaker Allow/Record pair, and collector adds.
func TestFastPathZeroAlloc(t *testing.T) {
	r := Retry{MaxAttempts: 8}
	ctx := context.Background()
	fn := func(context.Context) error { return nil }
	if n := testing.AllocsPerRun(200, func() {
		if _, err := r.Do(ctx, "k", fn); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Retry.Do success path allocates %.1f/op, want 0", n)
	}
	b := &Breaker{Threshold: 5}
	if n := testing.AllocsPerRun(200, func() {
		if !b.Allow() {
			t.Fatal("closed breaker denied")
		}
		b.Record(true)
	}); n != 0 {
		t.Fatalf("breaker Allow/Record allocates %.1f/op, want 0", n)
	}
	c := &Collector{}
	if n := testing.AllocsPerRun(200, func() {
		c.AddAttempts(1)
	}); n != 0 {
		t.Fatalf("collector add allocates %.1f/op, want 0", n)
	}
}
