package resilience

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// State is a circuit breaker's position.
type State int32

// Breaker states: Closed admits every call, Open fails fast, HalfOpen
// admits a single probe after the cooldown.
const (
	Closed State = iota
	Open
	HalfOpen
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a consecutive-failure circuit breaker for one pipeline
// stage. It is safe for concurrent use.
//
// Only infrastructure outcomes feed it: the loop records a failure when
// a stage's transient faults survive the whole retry budget, and a
// success when the stage reaches any real answer — including a semantic
// error such as invalid candidate SQL, which proves the stage itself is
// up. Context cancellation records nothing (no signal either way).
//
// Closed counts consecutive failures; Threshold of them opens the
// circuit. While Open, Allow fails fast until Cooldown has elapsed, then
// the breaker turns HalfOpen and admits exactly one probe: a probe
// success closes the circuit, a probe failure reopens it (and restarts
// the cooldown).
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the circuit;
	// values <= 0 disable the breaker entirely (Allow always true).
	Threshold int
	// Cooldown is the Open -> HalfOpen delay (default 250ms).
	Cooldown time.Duration
	// Clock overrides time.Now for deterministic tests.
	Clock func() time.Time
	// OnTrip, when non-nil, runs on every Closed/HalfOpen -> Open
	// transition (under the breaker's lock; keep it cheap).
	OnTrip func()

	mu       sync.Mutex
	state    State
	failures int
	openedAt time.Time
	probing  bool
	trips    int64
}

func (b *Breaker) now() time.Time {
	if b.Clock != nil {
		return b.Clock()
	}
	return time.Now()
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return 250 * time.Millisecond
}

// Allow reports whether a call may proceed. An admitted caller must
// report its outcome with Record; a denied caller must not. A nil or
// disabled breaker admits everything.
func (b *Breaker) Allow() bool {
	if b == nil || b.Threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Sub(b.openedAt) < b.cooldown() {
			return false
		}
		b.state = HalfOpen
		b.probing = true
		return true
	default: // HalfOpen: one probe in flight at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports an admitted call's infrastructure outcome.
func (b *Breaker) Record(success bool) {
	if b == nil || b.Threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		b.state = Closed
		b.failures = 0
		b.probing = false
		return
	}
	if b.state == HalfOpen {
		b.probing = false
		b.trip()
		return
	}
	b.failures++
	if b.failures >= b.Threshold {
		b.failures = 0
		b.trip()
	}
}

// Release returns an admitted call's slot without recording an outcome,
// for calls that ended in context cancellation — no infrastructure
// signal either way. Its only effect is freeing a half-open probe slot
// so a cancelled probe cannot wedge the breaker.
func (b *Breaker) Release() {
	if b == nil || b.Threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// trip must be called with b.mu held.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.now()
	b.trips++
	if b.OnTrip != nil {
		b.OnTrip()
	}
}

// State returns the breaker's current position (without advancing the
// Open -> HalfOpen clock; only Allow does that).
func (b *Breaker) State() State {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the circuit has opened.
func (b *Breaker) Trips() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// BreakerConfig templates the per-stage breakers a Policy builds.
type BreakerConfig struct {
	Threshold int
	Cooldown  time.Duration
}

// Policy bundles the loop's resilience configuration: the retry policy
// for transient stage faults, the per-stage circuit breaker template, and
// an optional Collector accumulating reliability counters across calls.
// A nil *Policy is valid everywhere and means "no retries, no breakers"
// — the pre-resilience pipeline behavior (panic recovery in the loop is
// unconditional and does not depend on a policy).
//
// The per-stage breakers are shared by every pipeline holding the same
// *Policy, so a sweep's pipelines see one circuit per stage — which is
// the point: the breaker models the health of the shared backing
// service, not of one translation.
type Policy struct {
	Retry     Retry
	Breaker   BreakerConfig
	Collector *Collector

	once     sync.Once
	breakers map[Stage]*Breaker
}

func (p *Policy) init() {
	p.once.Do(func() {
		m := make(map[Stage]*Breaker, len(Stages))
		for _, s := range Stages {
			b := &Breaker{Threshold: p.Breaker.Threshold, Cooldown: p.Breaker.Cooldown}
			if c := p.Collector; c != nil {
				b.OnTrip = func() { c.trips.Add(1) }
			}
			m[s] = b
		}
		p.breakers = m
	})
}

// BreakerFor returns the stage's shared breaker; nil (admit everything)
// for a nil policy or an unknown stage.
func (p *Policy) BreakerFor(stage Stage) *Breaker {
	if p == nil {
		return nil
	}
	p.init()
	return p.breakers[stage]
}

// RetryPolicy returns the retry policy; the zero Retry (single attempt)
// for a nil policy.
func (p *Policy) RetryPolicy() Retry {
	if p == nil {
		return Retry{}
	}
	return p.Retry
}

// Collect returns the policy's collector, nil-safe.
func (p *Policy) Collect() *Collector {
	if p == nil {
		return nil
	}
	return p.Collector
}

// Stats snapshots the policy's reliability counters, folding in the
// per-stage breaker trip counts.
func (p *Policy) Stats() Stats {
	var s Stats
	if p == nil {
		return s
	}
	if p.Collector != nil {
		s = p.Collector.Stats()
	}
	return s
}

// Collector accumulates reliability counters across Translate calls; the
// CLIs print them as the exit summary. All methods are nil-safe and
// atomic, so one collector can be shared by every worker of a sweep.
// Note the counters are operational, not parity-comparable: speculative
// candidates the parallel loop later discards still count their attempts.
type Collector struct {
	attempts atomic.Int64
	retries  atomic.Int64
	trips    atomic.Int64
	degraded atomic.Int64
	panics   atomic.Int64
}

// AddAttempts records n stage attempts (first tries and retries alike).
func (c *Collector) AddAttempts(n int) {
	if c != nil && n > 0 {
		c.attempts.Add(int64(n))
	}
}

// AddRetries records n transient re-attempts.
func (c *Collector) AddRetries(n int) {
	if c != nil && n > 0 {
		c.retries.Add(int64(n))
	}
}

// AddDegraded records one translation that returned a degraded Result.
func (c *Collector) AddDegraded() {
	if c != nil {
		c.degraded.Add(1)
	}
}

// AddPanicRecovered records one panic the loop recovered into a
// StageError.
func (c *Collector) AddPanicRecovered() {
	if c != nil {
		c.panics.Add(1)
	}
}

// Stats snapshots the counters.
func (c *Collector) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Attempts:        c.attempts.Load(),
		Retries:         c.retries.Load(),
		BreakerTrips:    c.trips.Load(),
		Degraded:        c.degraded.Load(),
		PanicsRecovered: c.panics.Load(),
	}
}

// Stats is one reliability snapshot; String renders the CLIs' one-line
// exit summary.
type Stats struct {
	Attempts        int64 // stage attempts, retries included
	Retries         int64 // transient re-attempts
	BreakerTrips    int64 // circuit openings across all stages
	Degraded        int64 // translations that returned Result.Degraded
	PanicsRecovered int64 // panics converted into StageErrors
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("attempts=%d retries=%d breaker-trips=%d degraded=%d panics-recovered=%d",
		s.Attempts, s.Retries, s.BreakerTrips, s.Degraded, s.PanicsRecovered)
}
