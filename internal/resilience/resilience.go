// Package resilience is the fault-handling layer the CycleSQL loop wraps
// around its model calls (translator beam, explainer, NLI verifier). In a
// serving deployment those calls are remote inferences that time out,
// error, hang and crash; the loop must retry what is transient, stop
// hammering what is down, and degrade gracefully instead of failing whole
// translations on infrastructure weather.
//
// The package provides three pieces, all deterministic and safe for
// concurrent use:
//
//   - Retry: capped exponential backoff with deterministic per-call
//     jitter. Sleeps honor the caller's context, so a candidate cancelled
//     mid-backoff (the parallel loop aborting stragglers, a per-example
//     deadline) returns immediately instead of finishing the wait.
//   - Breaker: a consecutive-failure circuit breaker, keyed per pipeline
//     stage by Policy. It only counts infrastructure outcomes — transient
//     failures that survived the retry budget — never semantic errors
//     (an invalid candidate SQL is a normal loop event, not an outage).
//   - StageError: the typed per-candidate error record that replaces the
//     stringly "execute:"/"explain:"/"verify:" prefixes core.Result used
//     to carry. It keeps exactly the final attempt's message plus the
//     attempt count, so a high-fault chaos sweep cannot grow results
//     without bound.
//
// Transience is an explicit mark (MarkTransient / the TransientError
// interface), applied by fault sources such as internal/faultinject;
// unmarked errors — semantic SQL failures, panics from real bugs — are
// permanent and never retried. Context errors are never transient.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"
)

// Stage names one step of the CycleSQL loop, tagging StageErrors and
// keying the per-stage circuit breakers.
type Stage string

// The loop's stages, in the order one candidate flows through them (the
// translate stage runs once per Translate call, before the candidates).
const (
	StageTranslate Stage = "translate"
	StageExecute   Stage = "execute"
	StageExplain   Stage = "explain"
	StageVerify    Stage = "verify"
)

// Stages lists every stage in loop order; Policy builds one breaker per
// entry.
var Stages = []Stage{StageTranslate, StageExecute, StageExplain, StageVerify}

// StageError records why one pipeline stage failed for one candidate:
// the stage, how many attempts the retry policy consumed, the final
// attempt's error text, and whether that error was classified transient.
// It is a plain comparable value — the zero StageError means "no error" —
// so parity suites can compare Results across worker counts with ==.
//
// Only the final attempt is kept: retried-away transient faults surface
// solely through the Attempt counter (and Result.Retries), which is what
// bounds a chaos sweep's result size regardless of fault rate.
type StageError struct {
	Stage     Stage
	Attempt   int    // attempts consumed producing Err; 1 = no retries, 0 = never ran (pre-cancelled or circuit open)
	Err       string // the final attempt's error text
	Transient bool   // whether the final error was classified retryable
}

// Error implements error, rendering the stage-prefixed form drivers log.
func (e StageError) Error() string {
	if e.Attempt > 1 {
		return fmt.Sprintf("%s: %s (attempt %d)", e.Stage, e.Err, e.Attempt)
	}
	return string(e.Stage) + ": " + e.Err
}

// IsZero reports whether the stage completed without error.
func (e StageError) IsZero() bool { return e == StageError{} }

// TransientError marks an error as a retryable infrastructure fault.
// Fault sources implement it (or wrap with MarkTransient); the retry
// policy and breakers consult it through IsTransient.
type TransientError interface {
	error
	Transient() bool
}

type transientErr struct{ err error }

func (t transientErr) Error() string   { return t.err.Error() }
func (t transientErr) Unwrap() error   { return t.err }
func (t transientErr) Transient() bool { return true }

// MarkTransient wraps err as a retryable infrastructure fault. A nil err
// stays nil. The mark survives fmt.Errorf("...: %w", err) wrapping.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return transientErr{err: err}
}

// IsContextError reports whether err is context cancellation or a
// deadline — the outcomes that carry no infrastructure signal: the stage
// didn't fail, its budget did. Breakers record nothing for them.
func IsContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// IsTransient reports whether err is marked retryable. Context
// cancellation and deadlines are never transient — retrying inside a dead
// budget is wasted work — and unmarked errors (semantic SQL failures,
// real bugs) are permanent.
func IsTransient(err error) bool {
	if err == nil || IsContextError(err) {
		return false
	}
	var te TransientError
	return errors.As(err, &te) && te.Transient()
}

// PanicError is a panic recovered into an error by the loop's stage
// runner. Unwrap exposes the panic value when it was itself an error, so
// a transient-marked injected panic stays retryable while an arbitrary
// panic (a real bug) is permanent.
type PanicError struct{ Value any }

// Recovered wraps a recover() value.
func Recovered(v any) *PanicError { return &PanicError{Value: v} }

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Unwrap exposes an error panic value to errors.Is/As.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// IsPanic reports whether err records a recovered panic.
func IsPanic(err error) bool {
	var pe *PanicError
	return errors.As(err, &pe)
}

// Retry is a capped exponential backoff policy with deterministic jitter.
// The zero value performs exactly one attempt (no retries), which is the
// pre-resilience pipeline behavior.
type Retry struct {
	// MaxAttempts bounds total attempts including the first; values
	// below 1 mean a single attempt.
	MaxAttempts int
	// BaseDelay is the backoff before attempt 2 (default 1ms); each
	// further attempt doubles it up to MaxDelay (default 100ms).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed keys the deterministic jitter stream: the delay before a given
	// (key, attempt) is a pure function of (Seed, key, attempt), so
	// chaos runs are reproducible and concurrent retries of different
	// calls do not thunder in lockstep.
	Seed int64
}

// Do runs fn until it succeeds, fails permanently, exhausts the attempt
// budget, or ctx is cancelled. It returns the number of fn invocations
// and the final error (nil on success).
//
// Cancellation is honored everywhere a wait can happen: a pre-cancelled
// ctx returns its error with zero attempts before fn ever runs, and a
// cancellation mid-backoff abandons the sleep immediately — the backoff
// never outlives the candidate's context budget.
//
// Re-attempts run under a context tagged with the 1-based attempt number
// (see WithAttempt), which deterministic fault injectors hash into their
// draws so each retry rerolls its faults. The first attempt runs under
// ctx unmodified, keeping the fault-free fast path allocation-free.
func (r Retry) Do(ctx context.Context, key string, fn func(ctx context.Context) error) (attempts int, err error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	max := r.MaxAttempts
	if max < 1 {
		max = 1
	}
	for attempt := 1; ; attempt++ {
		actx := ctx
		if attempt > 1 {
			actx = WithAttempt(ctx, attempt)
		}
		err = fn(actx)
		if err == nil || attempt >= max || !IsTransient(err) {
			return attempt, err
		}
		if serr := sleepCtx(ctx, r.backoff(key, attempt)); serr != nil {
			return attempt, serr
		}
	}
}

// backoff computes the deterministic-jittered delay after a failed
// attempt: capped exponential growth, scaled into [50%, 100%) by a hash
// of (Seed, key, attempt).
func (r Retry) backoff(key string, attempt int) time.Duration {
	base := r.BaseDelay
	if base <= 0 {
		base = time.Millisecond
	}
	maxD := r.MaxDelay
	if maxD <= 0 {
		maxD = 100 * time.Millisecond
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= maxD || d <= 0 { // <= 0 guards shift overflow on huge budgets
			d = maxD
			break
		}
	}
	if d > maxD {
		d = maxD
	}
	return d/2 + time.Duration(hash01(r.Seed, key, attempt)*float64(d/2))
}

// sleepCtx waits d or until ctx is done, returning the context's error in
// the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// hash01 maps (seed, key, n) onto [0, 1) deterministically.
func hash01(seed int64, key string, n int) float64 {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(seed >> (8 * i))
		buf[8+i] = byte(n >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(key))
	return float64(h.Sum64()>>11) / float64(1<<53)
}

type attemptKey struct{}

// WithAttempt tags ctx with a 1-based retry attempt number. Deterministic
// fault injectors read it back (Attempt) and hash it into their fault
// draws, so a retried call rerolls instead of hitting the same injected
// fault forever.
func WithAttempt(ctx context.Context, attempt int) context.Context {
	return context.WithValue(ctx, attemptKey{}, attempt)
}

// Attempt returns the attempt number tagged on ctx, defaulting to 1 for
// an untagged context (the first attempt is never tagged — see Retry.Do).
func Attempt(ctx context.Context) int {
	if v, ok := ctx.Value(attemptKey{}).(int); ok {
		return v
	}
	return 1
}
