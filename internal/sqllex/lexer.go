// Package sqllex tokenizes the Spider SQL dialect: SELECT statements with
// joins, grouping, ordering, set operations and nested subqueries. The
// lexer is shared by the parser and by the EM normalizer's token-level
// canonicalization.
//
// The implementation is a hand-rolled byte-scan state machine built for
// the serving hot path, where every candidate, iteration and HTTP
// request pays a tokenization pass:
//
//   - Token.Text is a sub-slice of the input wherever the dialect allows
//     it (identifiers, numbers, operators, and string literals without
//     escaped quotes), so the common token never materializes a string.
//   - Keywords resolve through a length-bucketed table of canonical
//     upper-case spellings with an allocation-free ASCII case fold, so
//     "select" lexes as the interned "SELECT" without strings.ToUpper.
//     Words containing non-ASCII bytes take a Unicode slow path that
//     reproduces the seed lexer's strings.ToUpper semantics exactly.
//   - Character classes are table-driven ([256]bool populated from the
//     same unicode predicates the seed lexer branched on), replacing
//     per-byte unicode.IsLetter calls.
//   - LexInto appends into a caller-owned token buffer, so pooled
//     parsers amortize the token slice to zero allocations per parse.
//
// Lexical errors are *Error values carrying the exact byte offset in the
// original input at which scanning failed: an unterminated string
// reports the offset where the input ran out (with the opening quote's
// offset in the message), not the opening quote itself, and token Pos
// is always the token's start offset in the original input — even for
// tokens following escaped string literals, whose Text is shorter than
// the source span it covers. The seed implementation this replaces
// lives on as the differential-test oracle in internal/sqloracle.
package sqllex

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies a token.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString // quoted string, Text holds the unquoted payload
	TokOp     // operators and punctuation: = != <> < <= > >= + - * / ( ) , . ;
)

// Token is one lexical unit. Pos is the byte offset of the token's
// first byte in the original input; Text sub-slices the input except
// for keywords (canonical upper-case spelling), identifier/string
// literals with escaped quotes (unquoted payload), and single-byte
// operators (interned constants).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

// Error is a lexical error. Offset is the byte offset in the original
// input at which scanning failed — for an unterminated string literal
// that is the end of the input, where the closing quote was expected,
// not the opening quote.
type Error struct {
	Offset int
	Msg    string
}

func (e *Error) Error() string {
	return fmt.Sprintf("sqllex: %s at offset %d", e.Msg, e.Offset)
}

// keywords recognized by the dialect. Identifiers matching these
// (case-insensitively) lex as TokKeyword with upper-cased Text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true,
	"JOIN": true, "INNER": true, "LEFT": true, "OUTER": true, "ON": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "LIKE": true,
	"BETWEEN": true, "IS": true, "NULL": true, "EXISTS": true,
	"UNION": true, "INTERSECT": true, "EXCEPT": true, "ALL": true,
	"DISTINCT": true, "ASC": true, "DESC": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true, "ABS": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
}

// IsKeyword reports whether s is a dialect keyword.
func IsKeyword(s string) bool { return keywords[strings.ToUpper(s)] }

// maxKeywordLen bounds the length buckets; INTERSECT is the longest
// keyword at 9 bytes, BY and the two-letter operators the shortest at 2.
const maxKeywordLen = 9

// kwBuckets holds the canonical upper-case keyword spellings bucketed by
// byte length, so lookup touches only the handful of keywords that could
// match at all. The strings are the map keys above — interned in the
// binary, so emitting one allocates nothing.
var kwBuckets [maxKeywordLen + 1][]string

// Character-class tables, populated from the exact predicates the seed
// lexer evaluated per byte (unicode.IsLetter over the byte widened to a
// rune, i.e. Latin-1 semantics for bytes >= 0x80).
var (
	identStartTable [256]bool
	identPartTable  [256]bool
	opByteText      [256]string // single-byte operators, interned
)

func init() {
	for c := 0; c < 256; c++ {
		identStartTable[c] = c == '_' || unicode.IsLetter(rune(c))
		identPartTable[c] = c == '_' || c == '$' || unicode.IsLetter(rune(c)) || isDigit(byte(c))
	}
	for _, op := range []string{"=", "+", "-", "*", "/", "(", ")", ",", ".", ";", "%", "<", ">"} {
		opByteText[op[0]] = op
	}
	for kw := range keywords {
		kwBuckets[len(kw)] = append(kwBuckets[len(kw)], kw)
	}
}

// keywordOf resolves word to its canonical upper-case keyword spelling,
// allocation-free for ASCII words. Words containing bytes >= 0x80 defer
// to the Unicode fold the seed lexer used, so exotic case foldings
// (Kelvin signs, long s) classify identically to the oracle.
func keywordOf(word string) (string, bool) {
	if len(word) < 2 || len(word) > maxKeywordLen {
		return "", false
	}
	for i := 0; i < len(word); i++ {
		if word[i] >= 0x80 {
			if IsKeyword(word) {
				return strings.ToUpper(word), true
			}
			return "", false
		}
	}
	for _, kw := range kwBuckets[len(word)] {
		if matchFoldASCII(word, kw) {
			return kw, true
		}
	}
	return "", false
}

// matchFoldASCII reports whether word equals the upper-case keyword kw
// under ASCII case folding. kw contains only A-Z, so each position
// matches exactly the upper- or lower-case spelling of that letter.
func matchFoldASCII(word, kw string) bool {
	for i := 0; i < len(kw); i++ {
		if c, k := word[i], kw[i]; c != k && c != k+('a'-'A') {
			return false
		}
	}
	return true
}

// Lex tokenizes input. It returns an error for unterminated strings or
// bytes outside the dialect.
func Lex(input string) ([]Token, error) {
	return LexInto(input, nil)
}

// LexInto tokenizes input, appending to toks (which may be nil or a
// recycled buffer with its length reset) and returning the extended
// slice. Pooled parsers pass their retained buffer so that a warm parse
// performs no token allocations at all.
func LexInto(input string, toks []Token) ([]Token, error) {
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'' || c == '"' || c == '`':
			tok, next, err := lexQuoted(input, i)
			if err != nil {
				return nil, err
			}
			toks = append(toks, tok)
			i = next
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(input[i+1])):
			start := i
			for i < n && (isDigit(input[i]) || input[i] == '.') {
				i++
			}
			// Scientific suffix (rare in benchmarks but cheap to support).
			if i < n && (input[i] == 'e' || input[i] == 'E') {
				j := i + 1
				if j < n && (input[j] == '+' || input[j] == '-') {
					j++
				}
				if j < n && isDigit(input[j]) {
					i = j
					for i < n && isDigit(input[i]) {
						i++
					}
				}
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case identStartTable[c]:
			start := i
			for i < n && identPartTable[input[i]] {
				i++
			}
			word := input[start:i]
			if kw, ok := keywordOf(word); ok {
				toks = append(toks, Token{Kind: TokKeyword, Text: kw, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		default:
			start := i
			var op string
			switch c {
			case '<':
				if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
					if input[i+1] == '=' {
						op = "<="
					} else {
						op = "<>"
					}
				} else {
					op = "<"
				}
			case '>':
				if i+1 < n && input[i+1] == '=' {
					op = ">="
				} else {
					op = ">"
				}
			case '!':
				if i+1 < n && input[i+1] == '=' {
					op = "!="
				} else {
					return nil, &Error{Offset: i, Msg: "unexpected '!'"}
				}
			default:
				if opByteText[c] == "" {
					return nil, &Error{Offset: i, Msg: fmt.Sprintf("unexpected byte %q", c)}
				}
				op = opByteText[c]
			}
			i = start + len(op)
			toks = append(toks, Token{Kind: TokOp, Text: op, Pos: start})
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

// lexQuoted scans the quoted token opening at input[start] and returns
// the token plus the offset of the first byte after the closing quote.
// Single quotes delimit string literals with ” escaping the quote;
// back and double quotes delimit identifiers with no escape. The
// common, escape-free case returns the payload as a sub-slice of input;
// only a literal containing ” materializes its unquoted spelling.
func lexQuoted(input string, start int) (Token, int, error) {
	n := len(input)
	quote := input[start]
	kind := TokString
	if quote == '`' || quote == '"' {
		// Back/double quotes delimit identifiers in this dialect.
		kind = TokIdent
	}
	i := start + 1
	for i < n {
		if input[i] == quote {
			if quote == '\'' && i+1 < n && input[i+1] == quote {
				return lexQuotedEscaped(input, start, i)
			}
			return Token{Kind: kind, Text: input[start+1 : i], Pos: start}, i + 1, nil
		}
		i++
	}
	return Token{}, 0, &Error{Offset: n, Msg: fmt.Sprintf("unterminated string literal (opened at offset %d)", start)}
}

// lexQuotedEscaped finishes scanning a single-quoted literal that
// contains at least one escaped quote (input[esc] is the first). It is
// the one tokenization path that allocates: the unquoted payload is not
// a contiguous span of the input.
func lexQuotedEscaped(input string, start, esc int) (Token, int, error) {
	n := len(input)
	var sb strings.Builder
	sb.WriteString(input[start+1 : esc+1]) // payload so far, incl. the escaped quote
	i := esc + 2
	for i < n {
		if input[i] == '\'' {
			if i+1 < n && input[i+1] == '\'' {
				sb.WriteByte('\'')
				i += 2
				continue
			}
			return Token{Kind: TokString, Text: sb.String(), Pos: start}, i + 1, nil
		}
		sb.WriteByte(input[i])
		i++
	}
	return Token{}, 0, &Error{Offset: n, Msg: fmt.Sprintf("unterminated string literal (opened at offset %d)", start)}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
