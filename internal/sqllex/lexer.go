// Package sqllex tokenizes the Spider SQL dialect: SELECT statements with
// joins, grouping, ordering, set operations and nested subqueries. The
// lexer is shared by the parser and by the EM normalizer's token-level
// canonicalization.
package sqllex

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies a token.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString // quoted string, Text holds the unquoted payload
	TokOp     // operators and punctuation: = != <> < <= > >= + - * / ( ) , . ;
)

// Token is one lexical unit. Pos is the byte offset in the input.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

// keywords recognized by the dialect. Identifiers matching these
// (case-insensitively) lex as TokKeyword with upper-cased Text.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true,
	"JOIN": true, "INNER": true, "LEFT": true, "OUTER": true, "ON": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "LIKE": true,
	"BETWEEN": true, "IS": true, "NULL": true, "EXISTS": true,
	"UNION": true, "INTERSECT": true, "EXCEPT": true, "ALL": true,
	"DISTINCT": true, "ASC": true, "DESC": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true, "ABS": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
}

// IsKeyword reports whether s is a dialect keyword.
func IsKeyword(s string) bool { return keywords[strings.ToUpper(s)] }

// Lex tokenizes input. It returns an error for unterminated strings or
// bytes outside the dialect.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'' || c == '"' || c == '`':
			start := i
			quote := c
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == quote {
					if i+1 < n && input[i+1] == quote && quote == '\'' {
						sb.WriteByte(quote)
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqllex: unterminated string at offset %d", start)
			}
			kind := TokString
			if quote == '`' || quote == '"' {
				// Back/double quotes delimit identifiers in this dialect.
				kind = TokIdent
			}
			toks = append(toks, Token{Kind: kind, Text: sb.String(), Pos: start})
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(input[i+1])):
			start := i
			for i < n && (isDigit(input[i]) || input[i] == '.') {
				i++
			}
			// Scientific suffix (rare in benchmarks but cheap to support).
			if i < n && (input[i] == 'e' || input[i] == 'E') {
				j := i + 1
				if j < n && (input[j] == '+' || input[j] == '-') {
					j++
				}
				if j < n && isDigit(input[j]) {
					i = j
					for i < n && isDigit(input[i]) {
						i++
					}
				}
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			if IsKeyword(word) {
				toks = append(toks, Token{Kind: TokKeyword, Text: strings.ToUpper(word), Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: word, Pos: start})
			}
		default:
			start := i
			var op string
			switch c {
			case '<':
				if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
					op = input[i : i+2]
				} else {
					op = "<"
				}
			case '>':
				if i+1 < n && input[i+1] == '=' {
					op = ">="
				} else {
					op = ">"
				}
			case '!':
				if i+1 < n && input[i+1] == '=' {
					op = "!="
				} else {
					return nil, fmt.Errorf("sqllex: unexpected '!' at offset %d", i)
				}
			case '=', '+', '-', '*', '/', '(', ')', ',', '.', ';', '%':
				op = string(c)
			default:
				return nil, fmt.Errorf("sqllex: unexpected byte %q at offset %d", c, i)
			}
			i = start + len(op)
			toks = append(toks, Token{Kind: TokOp, Text: op, Pos: start})
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '$' || unicode.IsLetter(rune(c)) || isDigit(c)
}
