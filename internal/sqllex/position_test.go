package sqllex

import (
	"errors"
	"strings"
	"testing"
)

// TestLexPositionsAfterStrings pins Pos to byte offsets in the original
// input for every token, with string literals (escaped and not) in
// front of them. The escaped-literal cases are the regression the
// rewrite fixes for error reporting: a literal's Text is shorter than
// the source span it covers, so any scheme deriving offsets from
// accumulated text lengths drifts after the first ”.
func TestLexPositionsAfterStrings(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  []Token
	}{
		{
			name:  "after plain string",
			input: "SELECT 'x', name",
			want: []Token{
				{TokKeyword, "SELECT", 0},
				{TokString, "x", 7},
				{TokOp, ",", 10},
				{TokIdent, "name", 12},
				{TokEOF, "", 16},
			},
		},
		{
			name:  "after escaped string",
			input: "SELECT 'O''Brien', name",
			want: []Token{
				{TokKeyword, "SELECT", 0},
				{TokString, "O'Brien", 7},
				{TokOp, ",", 17},
				{TokIdent, "name", 19},
				{TokEOF, "", 23},
			},
		},
		{
			name:  "after doubled escapes",
			input: "WHERE a = '''' AND b = ''''''",
			want: []Token{
				{TokKeyword, "WHERE", 0},
				{TokIdent, "a", 6},
				{TokOp, "=", 8},
				{TokString, "'", 10},
				{TokKeyword, "AND", 15},
				{TokIdent, "b", 19},
				{TokOp, "=", 21},
				{TokString, "''", 23},
				{TokEOF, "", 29},
			},
		},
		{
			name:  "after quoted identifiers",
			input: "SELECT `a b`, \"c\" FROM t",
			want: []Token{
				{TokKeyword, "SELECT", 0},
				{TokIdent, "a b", 7},
				{TokOp, ",", 12},
				{TokIdent, "c", 14},
				{TokKeyword, "FROM", 18},
				{TokIdent, "t", 23},
				{TokEOF, "", 24},
			},
		},
		{
			name:  "empty string then operator",
			input: "'' = x",
			want: []Token{
				{TokString, "", 0},
				{TokOp, "=", 3},
				{TokIdent, "x", 5},
				{TokEOF, "", 6},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			toks, err := Lex(tc.input)
			if err != nil {
				t.Fatal(err)
			}
			if len(toks) != len(tc.want) {
				t.Fatalf("got %d tokens, want %d: %+v", len(toks), len(tc.want), toks)
			}
			for i, w := range tc.want {
				if toks[i] != w {
					t.Errorf("token %d = %+v, want %+v", i, toks[i], w)
				}
			}
		})
	}
}

// TestLexErrorOffsets pins the typed *Error offsets. The unterminated
// cases are the headline fix: the seed lexer reported the opening
// quote's offset, which pointed users at a perfectly fine quote instead
// of the place the input ran out.
func TestLexErrorOffsets(t *testing.T) {
	cases := []struct {
		name       string
		input      string
		wantOffset int
		wantMsg    string // substring of the rendered error
	}{
		{"unterminated at end", "SELECT 'oops", 12, "opened at offset 7"},
		{"unterminated after escape", "SELECT 'a''b", 12, "opened at offset 7"},
		{"unterminated after full literal", "SELECT 'ok', 'oops", 18, "opened at offset 13"},
		{"unexpected bang after string", "SELECT 'x' ! 1", 11, "unexpected '!'"},
		{"unexpected byte after string", "SELECT 'x' ? 1", 11, `unexpected byte '?'`},
		{"unexpected byte after escaped string", "SELECT 'a''b' ? 1", 14, `unexpected byte '?'`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Lex(tc.input)
			if err == nil {
				t.Fatal("want error")
			}
			var lexErr *Error
			if !errors.As(err, &lexErr) {
				t.Fatalf("error %T is not *sqllex.Error", err)
			}
			if lexErr.Offset != tc.wantOffset {
				t.Errorf("Offset = %d, want %d (%v)", lexErr.Offset, tc.wantOffset, err)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("error %q does not mention %q", err, tc.wantMsg)
			}
		})
	}
}

// TestKeywordBuckets exhaustively checks the length-bucketed fold
// against the map-based classifier for every keyword in lower, UPPER
// and Mixed case, plus near-miss identifiers that differ from a
// keyword in exactly one byte.
func TestKeywordBuckets(t *testing.T) {
	for kw := range keywords {
		for _, v := range []string{kw, strings.ToLower(kw), kw[:1] + strings.ToLower(kw[1:])} {
			got, ok := keywordOf(v)
			if !ok || got != kw {
				t.Errorf("keywordOf(%q) = %q, %v; want %q, true", v, got, ok, kw)
			}
		}
		for _, miss := range []string{kw + "X", kw[:len(kw)-1], kw[:len(kw)-1] + "_"} {
			if keywords[miss] {
				continue // truncation landed on another keyword (ASC -> AS)
			}
			if got, ok := keywordOf(miss); ok {
				t.Errorf("keywordOf(%q) = %q, true; want miss", miss, got)
			}
		}
	}
	// The fold must not accept bytes 32 below a letter (e.g. '%' vs 'E').
	if _, ok := keywordOf("B%"); ok {
		t.Error(`keywordOf("B%") matched BY via unchecked +32 fold`)
	}
}

// TestLexIntoReuse proves the warm path allocates nothing: tokens
// sub-slice the input and the buffer is caller-owned.
func TestLexIntoReuse(t *testing.T) {
	const q = "SELECT t.name, count(*) FROM people AS t WHERE t.age >= 21 GROUP BY t.name ORDER BY count(*) DESC LIMIT 5"
	buf, err := LexInto(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		var e error
		buf, e = LexInto(q, buf[:0])
		if e != nil {
			t.Fatal(e)
		}
	})
	if allocs != 0 {
		t.Errorf("warm LexInto allocates %.1f/op, want 0", allocs)
	}
}
