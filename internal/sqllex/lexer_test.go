package sqllex

import (
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicSelect(t *testing.T) {
	toks, err := Lex("SELECT name FROM country WHERE pop >= 80000")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind TokenKind
		text string
	}{
		{TokKeyword, "SELECT"}, {TokIdent, "name"}, {TokKeyword, "FROM"},
		{TokIdent, "country"}, {TokKeyword, "WHERE"}, {TokIdent, "pop"},
		{TokOp, ">="}, {TokNumber, "80000"}, {TokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = {%v %q}, want {%v %q}", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex("SELECT 'O''Brien'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != TokString || toks[1].Text != "O'Brien" {
		t.Fatalf("escaped string: %+v", toks[1])
	}
}

func TestLexQuotedIdentifiers(t *testing.T) {
	toks, err := Lex("SELECT `weird name` FROM \"tbl\"")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != TokIdent || toks[1].Text != "weird name" {
		t.Fatalf("backquoted ident: %+v", toks[1])
	}
	if toks[3].Kind != TokIdent || toks[3].Text != "tbl" {
		t.Fatalf("double-quoted ident: %+v", toks[3])
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex("a<=b<>c!=d>=e<f>g")
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []string{"<=", "<>", "!=", ">=", "<", ">"}
	gotOps := []string{}
	for _, tok := range toks {
		if tok.Kind == TokOp {
			gotOps = append(gotOps, tok.Text)
		}
	}
	if len(gotOps) != len(wantOps) {
		t.Fatalf("ops = %v", gotOps)
	}
	for i := range wantOps {
		if gotOps[i] != wantOps[i] {
			t.Errorf("op %d = %q want %q", i, gotOps[i], wantOps[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("1 2.5 .5 1e3 1.5E-2")
	if err != nil {
		t.Fatal(err)
	}
	var nums []string
	for _, tok := range toks {
		if tok.Kind == TokNumber {
			nums = append(nums, tok.Text)
		}
	}
	want := []string{"1", "2.5", ".5", "1e3", "1.5E-2"}
	if len(nums) != len(want) {
		t.Fatalf("numbers = %v, want %v", nums, want)
	}
	for i := range want {
		if nums[i] != want[i] {
			t.Errorf("number %d = %q want %q", i, nums[i], want[i])
		}
	}
}

func TestLexKeywordCaseFolding(t *testing.T) {
	toks, err := Lex("select Name from T")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "SELECT" || toks[0].Kind != TokKeyword {
		t.Fatalf("keyword not folded: %+v", toks[0])
	}
	if toks[1].Text != "Name" || toks[1].Kind != TokIdent {
		t.Fatalf("identifier case must be preserved: %+v", toks[1])
	}
}

func TestLexUnterminatedString(t *testing.T) {
	if _, err := Lex("SELECT 'oops"); err == nil {
		t.Fatal("unterminated string must error")
	}
}

func TestLexUnexpectedByte(t *testing.T) {
	if _, err := Lex("SELECT a ? b"); err == nil {
		t.Fatal("unexpected byte must error")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("SELECT  a")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != 0 || toks[1].Pos != 8 {
		t.Fatalf("positions: %+v", toks[:2])
	}
}

func TestIsKeyword(t *testing.T) {
	if !IsKeyword("select") || !IsKeyword("INTERSECT") || IsKeyword("name") {
		t.Fatal("IsKeyword misclassifies")
	}
}
