package sqltypes

import (
	"testing"
	"testing/quick"
)

func compareKey(t *testing.T, v Value) string {
	t.Helper()
	key, ok := v.AppendCompareKey(nil)
	if !ok {
		t.Fatalf("AppendCompareKey(%v) reported NULL", v)
	}
	return string(key)
}

func TestAppendCompareKeyMatchesCompare(t *testing.T) {
	pairs := []struct {
		a, b Value
	}{
		{NewInt(3), NewFloat(3.0)},
		{NewInt(0), NewFloat(-0.0)},
		{NewFloat(2.5), NewFloat(2.5)},
		{NewText("x"), NewText("x")},
		// Beyond 2^53 Compare conflates as float64; the encoding must too.
		{NewInt(1_000_000_000_000_000), NewFloat(1e15)},
	}
	for _, p := range pairs {
		if Compare(p.a, p.b) != 0 {
			t.Fatalf("test setup: %v and %v must Compare equal", p.a, p.b)
		}
		if compareKey(t, p.a) != compareKey(t, p.b) {
			t.Errorf("Compare-equal values %v and %v encode differently", p.a, p.b)
		}
	}
	distinct := []struct {
		a, b Value
	}{
		{NewInt(3), NewInt(4)},
		{NewText("3"), NewInt(3)}, // text never equals numeric under Compare
		{NewText("a"), NewText("A")},
		{NewFloat(2.5), NewInt(2)},
	}
	for _, p := range distinct {
		if Compare(p.a, p.b) == 0 {
			t.Fatalf("test setup: %v and %v must Compare unequal", p.a, p.b)
		}
		if compareKey(t, p.a) == compareKey(t, p.b) {
			t.Errorf("Compare-unequal values %v and %v encode identically", p.a, p.b)
		}
	}
}

func TestAppendCompareKeyTextReusesAppendKey(t *testing.T) {
	v := NewText("hello")
	if compareKey(t, v) != string(v.AppendKey(nil)) {
		t.Error("text AppendCompareKey must reuse the AppendKey encoding")
	}
}

func TestAppendCompareKeyNull(t *testing.T) {
	if _, ok := Null().AppendCompareKey(nil); ok {
		t.Error("NULL must report ok=false")
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Fatal("Null() must be null")
	}
	if v := NewInt(42); v.Kind() != KindInt || v.Int() != 42 {
		t.Fatalf("NewInt: got %v kind %v", v, v.Kind())
	}
	if v := NewFloat(2.5); v.Kind() != KindFloat || v.Float() != 2.5 {
		t.Fatalf("NewFloat: got %v", v)
	}
	if v := NewText("abc"); v.Kind() != KindText || v.Text() != "abc" {
		t.Fatalf("NewText: got %v", v)
	}
	if NewBool(true).Int() != 1 || NewBool(false).Int() != 0 {
		t.Fatal("NewBool must map onto 1/0")
	}
	var zero Value
	if !zero.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
}

func TestValueAsFloat(t *testing.T) {
	cases := []struct {
		v    Value
		want float64
		ok   bool
	}{
		{NewInt(3), 3, true},
		{NewFloat(1.5), 1.5, true},
		{NewText("2.25"), 2.25, true},
		{NewText(" 7 "), 7, true},
		{NewText("abc"), 0, false},
		{Null(), 0, false},
	}
	for _, c := range cases {
		got, ok := c.v.AsFloat()
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("AsFloat(%v) = %v,%v want %v,%v", c.v, got, ok, c.want, c.ok)
		}
	}
}

func TestValueTruthy(t *testing.T) {
	if Null().Truthy() || NewInt(0).Truthy() || NewFloat(0).Truthy() || NewText("").Truthy() {
		t.Fatal("falsy values reported truthy")
	}
	if !NewInt(1).Truthy() || !NewFloat(0.5).Truthy() || !NewText("x").Truthy() {
		t.Fatal("truthy values reported falsy")
	}
}

func TestCompareOrdering(t *testing.T) {
	// NULL < numbers < text; numbers compare across int/float.
	ordered := []Value{Null(), NewInt(-5), NewFloat(-1.5), NewInt(0), NewFloat(0.5), NewInt(3), NewText("a"), NewText("b")}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v,%v) = %d want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	if Compare(NewInt(2), NewFloat(2.0)) != 0 {
		t.Fatal("2 must equal 2.0")
	}
	if Compare(NewFloat(1.9), NewInt(2)) != -1 {
		t.Fatal("1.9 < 2")
	}
}

func TestKeyCollapsesIntegralFloats(t *testing.T) {
	if NewInt(2).Key() != NewFloat(2.0).Key() {
		t.Fatal("2 and 2.0 must share a bag key")
	}
	if NewInt(2).Key() == NewText("2").Key() {
		t.Fatal("numeric 2 and text '2' must not share a bag key")
	}
	if NewFloat(2.5).Key() == NewFloat(2.0).Key() {
		t.Fatal("distinct floats must not collide")
	}
}

func TestSQLLiteralEscaping(t *testing.T) {
	if got := NewText("O'Brien").SQLLiteral(); got != "'O''Brien'" {
		t.Fatalf("SQLLiteral = %q", got)
	}
	if got := NewInt(7).SQLLiteral(); got != "7" {
		t.Fatalf("int literal = %q", got)
	}
	if got := Null().SQLLiteral(); got != "NULL" {
		t.Fatalf("null literal = %q", got)
	}
}

func TestParseLiteral(t *testing.T) {
	if v := ParseLiteral("42", false); v.Kind() != KindInt || v.Int() != 42 {
		t.Fatalf("ParseLiteral(42) = %v", v)
	}
	if v := ParseLiteral("4.5", false); v.Kind() != KindFloat {
		t.Fatalf("ParseLiteral(4.5) = %v", v)
	}
	if v := ParseLiteral("null", false); !v.IsNull() {
		t.Fatalf("ParseLiteral(null) = %v", v)
	}
	if v := ParseLiteral("42", true); v.Kind() != KindText {
		t.Fatalf("quoted literal must stay text, got %v", v)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindNull: "NULL", KindInt: "INTEGER", KindFloat: "REAL", KindText: "TEXT"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q want %q", k, k.String(), want)
		}
	}
}

// Property: Compare is antisymmetric and consistent with Equal.
func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		return Compare(va, vb) == -Compare(vb, va) && (Compare(va, vb) == 0) == Equal(va, vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Key equality matches Compare equality for numeric values.
func TestKeyConsistentWithCompareProperty(t *testing.T) {
	f := func(a int64, b int64) bool {
		va, vb := NewInt(a), NewFloat(float64(b))
		return (va.Key() == vb.Key()) == (Compare(va, vb) == 0) || float64(b) != float64(int64(float64(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
