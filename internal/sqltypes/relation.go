package sqltypes

import (
	"sort"
	"strings"
)

// Row is a single tuple of values.
type Row []Value

// Clone returns a deep copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Key returns a canonical string for the whole tuple, used for bag
// semantics and DISTINCT.
func (r Row) Key() string {
	var b strings.Builder
	for _, v := range r {
		b.WriteString(v.Key())
		b.WriteByte('\x01')
	}
	return b.String()
}

// AppendKey appends the binary encoding of every value in the row to dst.
// It is the allocation-free counterpart of Key(): reuse one scratch buffer
// across rows and probe maps with string(buf).
func (r Row) AppendKey(dst []byte) []byte {
	for _, v := range r {
		dst = v.AppendKey(dst)
	}
	return dst
}

// AppendCompareKeyCols appends the Compare-consistent encoding (see
// Value.AppendCompareKey) of the selected columns to dst. It reports
// ok=false — leaving dst in an unspecified partial state — when any
// selected value is NULL: equi-join matching and index probes treat such
// rows as matching nothing.
func (r Row) AppendCompareKeyCols(dst []byte, cols []int) (key []byte, ok bool) {
	for _, c := range cols {
		var vok bool
		if dst, vok = r[c].AppendCompareKey(dst); !vok {
			return dst, false
		}
	}
	return dst, true
}

// Relation is a materialized query result or intermediate table: an ordered
// list of column names plus rows.
type Relation struct {
	Columns []string
	Rows    []Row
}

// NewRelation returns an empty relation with the given column names.
func NewRelation(columns ...string) *Relation {
	return &Relation{Columns: columns}
}

// NumRows returns the number of rows.
func (r *Relation) NumRows() int { return len(r.Rows) }

// NumCols returns the number of columns.
func (r *Relation) NumCols() int { return len(r.Columns) }

// Append adds a row. The row length must match the column count; mismatches
// indicate executor bugs and are tolerated only for the empty relation.
func (r *Relation) Append(row Row) { r.Rows = append(r.Rows, row) }

// ColumnIndex returns the index of the named column, or -1. The match is
// case-insensitive and tolerates qualified spellings ("t.c" matches "c").
func (r *Relation) ColumnIndex(name string) int {
	for i, c := range r.Columns {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	// Fall back to suffix matching for qualified names in either direction.
	want := strings.ToLower(name)
	for i, c := range r.Columns {
		have := strings.ToLower(c)
		if strings.HasSuffix(have, "."+want) || strings.HasSuffix(want, "."+have) {
			return i
		}
	}
	return -1
}

// Clone deep-copies the relation.
func (r *Relation) Clone() *Relation {
	out := &Relation{Columns: append([]string(nil), r.Columns...)}
	out.Rows = make([]Row, len(r.Rows))
	for i, row := range r.Rows {
		out.Rows[i] = row.Clone()
	}
	return out
}

// SortRows orders rows by the total value order, column by column. It is
// used to canonicalize relations for display and diffing, not for ORDER BY.
func (r *Relation) SortRows() {
	sort.SliceStable(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i], r.Rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if c := Compare(a[k], b[k]); c != 0 {
				return c < 0
			}
		}
		return len(a) < len(b)
	})
}

// BagEqual reports whether two relations contain the same multiset of rows,
// ignoring row order and column names. This is the Spider execution-accuracy
// criterion ("bag semantics, order irrelevant").
func BagEqual(a, b *Relation) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	if len(a.Rows) == 0 {
		return len(a.Columns) == len(b.Columns) || true
	}
	if len(a.Columns) != len(b.Columns) {
		return false
	}
	counts := make(map[string]int, len(a.Rows))
	var buf []byte
	for _, row := range a.Rows {
		buf = row.AppendKey(buf[:0])
		counts[string(buf)]++
	}
	for _, row := range b.Rows {
		buf = row.AppendKey(buf[:0])
		k := counts[string(buf)] - 1
		if k < 0 {
			return false
		}
		counts[string(buf)] = k
	}
	return true
}

// String renders the relation as an aligned text table for CLIs and tests.
func (r *Relation) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(parts []string) {
		for i, p := range parts {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(p)
			if i < len(widths) {
				for pad := len(p); pad < widths[i]; pad++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}
