// Package sqltypes defines the value and relation model shared by every
// layer of the system: the storage engine, the SQL executor, the provenance
// tracker, and the evaluation metrics.
//
// Values are dynamically typed (NULL, INTEGER, REAL, TEXT) with SQLite-like
// comparison semantics: numeric values compare numerically across the
// INTEGER/REAL divide, and NULL never compares equal to anything, including
// itself, except under the IS operator.
package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic type of a Value.
type Kind int

// The value kinds, in SQLite affinity order.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindText
)

// String returns the SQL name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "REAL"
	case KindText:
		return "TEXT"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a single dynamically typed SQL value. The zero value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// NewInt returns an INTEGER value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a REAL value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewText returns a TEXT value.
func NewText(v string) Value { return Value{kind: KindText, s: v} }

// NewBool returns the SQL encoding of a boolean: INTEGER 1 or 0.
func NewBool(v bool) Value {
	if v {
		return NewInt(1)
	}
	return NewInt(0)
}

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the NULL value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsNumeric reports whether v is INTEGER or REAL.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Int returns the integer payload. It is only meaningful for KindInt.
func (v Value) Int() int64 { return v.i }

// Float returns the real payload. It is only meaningful for KindFloat.
func (v Value) Float() float64 { return v.f }

// Text returns the text payload. It is only meaningful for KindText.
func (v Value) Text() string { return v.s }

// AsFloat coerces a numeric value to float64. Text that parses as a number
// is coerced too, mirroring SQLite's numeric affinity on comparisons.
// The second result reports whether the coercion succeeded.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	case KindText:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// Truthy reports whether v is true in a WHERE context: non-NULL and nonzero.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0
	case KindText:
		return v.s != ""
	default:
		return false
	}
}

// String renders v for display: NULL, bare numbers, or unquoted text.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindText:
		return v.s
	default:
		return "?"
	}
}

// SQLLiteral renders v as a SQL literal (text quoted and escaped).
func (v Value) SQLLiteral() string {
	if v.kind == KindText {
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	}
	return v.String()
}

// AppendSQLLiteral appends SQLLiteral's exact rendering to dst without
// materializing intermediate strings; it is the literal path of the
// one-pass sqlnorm.CacheKey renderer.
func (v Value) AppendSQLLiteral(dst []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, "NULL"...)
	case KindInt:
		return strconv.AppendInt(dst, v.i, 10)
	case KindFloat:
		return strconv.AppendFloat(dst, v.f, 'g', -1, 64)
	case KindText:
		dst = append(dst, '\'')
		for i := 0; i < len(v.s); i++ {
			c := v.s[i]
			if c == '\'' {
				dst = append(dst, '\'', '\'')
			} else {
				dst = append(dst, c)
			}
		}
		return append(dst, '\'')
	default:
		return append(dst, '?')
	}
}

// Key returns a canonical string usable as a map key for bag semantics.
// Integral REAL values collapse onto their INTEGER spelling so that
// count(*) = 2 and 2.0 compare equal, matching the Spider evaluation script.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "\x00N"
	case KindInt:
		return "\x00i" + strconv.FormatInt(v.i, 10)
	case KindFloat:
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) && math.Abs(v.f) < 1e15 {
			return "\x00i" + strconv.FormatInt(int64(v.f), 10)
		}
		return "\x00f" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindText:
		return "\x00t" + v.s
	default:
		return "\x00?"
	}
}

// AppendKey appends a compact binary encoding of v to dst and returns the
// extended slice. Two values encode identically exactly when Key() would
// return equal strings: integral REAL values collapse onto their INTEGER
// encoding so 2 and 2.0 agree, and text is length-prefixed so multi-value
// keys cannot collide across value boundaries. It is the allocation-free
// replacement for Key() on hot paths: callers reuse one scratch buffer and
// probe maps with string(buf), which Go compiles without a copy.
func (v Value) AppendKey(dst []byte) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, 0x00)
	case KindInt:
		return appendKeyInt(dst, v.i)
	case KindFloat:
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) && math.Abs(v.f) < 1e15 {
			return appendKeyInt(dst, int64(v.f))
		}
		bits := math.Float64bits(v.f)
		return append(dst, 0x02,
			byte(bits>>56), byte(bits>>48), byte(bits>>40), byte(bits>>32),
			byte(bits>>24), byte(bits>>16), byte(bits>>8), byte(bits))
	case KindText:
		dst = append(dst, 0x03)
		dst = appendKeyLen(dst, len(v.s))
		return append(dst, v.s...)
	default:
		return append(dst, 0xff)
	}
}

// AppendCompareKey appends an encoding under which two values encode
// identically exactly when Compare orders them equal — the = operator's
// notion of equality. Numerics encode as normalized float64 bits (they
// compare as float64 across the INTEGER/REAL divide, including beyond
// 2^53, where Compare itself conflates distinct int64s) and text reuses
// the AppendKey length-prefixed encoding. NULL reports ok=false instead of
// encoding: every caller — equi-join matching, secondary-index buckets and
// probes — is NULL-rejecting, so NULL rows index nowhere and a NULL key
// matches nothing.
func (v Value) AppendCompareKey(dst []byte) ([]byte, bool) {
	switch {
	case v.IsNull():
		return dst, false
	case v.IsNumeric():
		f, _ := v.AsFloat()
		if f == 0 {
			f = 0 // collapse -0.0 onto +0.0, as Compare does
		}
		bits := math.Float64bits(f)
		return append(dst, 0x01,
			byte(bits>>56), byte(bits>>48), byte(bits>>40), byte(bits>>32),
			byte(bits>>24), byte(bits>>16), byte(bits>>8), byte(bits)), true
	default:
		return v.AppendKey(dst), true
	}
}

func appendKeyInt(dst []byte, i int64) []byte {
	u := uint64(i)
	return append(dst, 0x01,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

// appendKeyLen is an unsigned varint: 7 bits per byte, high bit = continue.
func appendKeyLen(dst []byte, n int) []byte {
	u := uint(n)
	for u >= 0x80 {
		dst = append(dst, byte(u)|0x80)
		u >>= 7
	}
	return append(dst, byte(u))
}

// Compare orders a before b and returns -1, 0, or +1. NULL sorts first;
// numbers sort before text; numbers compare numerically across kinds.
// Comparison under SQL tri-state semantics (where NULL yields NULL) is
// handled by the expression evaluator, not here: Compare is a total order
// used for ORDER BY, MIN/MAX and bag equality.
func Compare(a, b Value) int {
	ra, rb := a.rank(), b.rank()
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch ra {
	case 0: // both NULL
		return 0
	case 1: // both numeric
		fa, _ := a.AsFloat()
		fb, _ := b.AsFloat()
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	default: // both text
		return strings.Compare(a.s, b.s)
	}
}

func (v Value) rank() int {
	switch v.kind {
	case KindNull:
		return 0
	case KindInt, KindFloat:
		return 1
	default:
		return 2
	}
}

// Equal reports total-order equality of two values (NULL equals NULL here;
// tri-state equality lives in the evaluator).
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// ParseLiteral converts a SQL literal token text into a Value. Quoted
// strings should be passed without their quotes.
func ParseLiteral(text string, quoted bool) Value {
	if quoted {
		return NewText(text)
	}
	if strings.EqualFold(text, "null") {
		return Null()
	}
	if i, err := strconv.ParseInt(text, 10, 64); err == nil {
		return NewInt(i)
	}
	if f, err := strconv.ParseFloat(text, 64); err == nil {
		return NewFloat(f)
	}
	return NewText(text)
}
