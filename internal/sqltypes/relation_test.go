package sqltypes

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func rel(cols []string, rows ...Row) *Relation {
	r := NewRelation(cols...)
	for _, row := range rows {
		r.Append(row)
	}
	return r
}

func TestBagEqualOrderIrrelevant(t *testing.T) {
	a := rel([]string{"x"}, Row{NewInt(1)}, Row{NewInt(2)}, Row{NewInt(2)})
	b := rel([]string{"x"}, Row{NewInt(2)}, Row{NewInt(1)}, Row{NewInt(2)})
	if !BagEqual(a, b) {
		t.Fatal("order must be irrelevant")
	}
}

func TestBagEqualMultiplicityMatters(t *testing.T) {
	a := rel([]string{"x"}, Row{NewInt(1)}, Row{NewInt(2)})
	b := rel([]string{"x"}, Row{NewInt(1)}, Row{NewInt(1)})
	if BagEqual(a, b) {
		t.Fatal("multiplicity must matter")
	}
}

func TestBagEqualColumnNamesIgnored(t *testing.T) {
	a := rel([]string{"count(*)"}, Row{NewInt(2)})
	b := rel([]string{"count(id)"}, Row{NewInt(2)})
	if !BagEqual(a, b) {
		t.Fatal("column names must be ignored")
	}
}

func TestBagEqualNumericCoercion(t *testing.T) {
	a := rel([]string{"v"}, Row{NewInt(2)})
	b := rel([]string{"v"}, Row{NewFloat(2.0)})
	if !BagEqual(a, b) {
		t.Fatal("2 and 2.0 must be bag-equal")
	}
}

func TestBagEqualEmptyRelations(t *testing.T) {
	a := rel([]string{"x"})
	b := rel([]string{"y"})
	if !BagEqual(a, b) {
		t.Fatal("two empty relations are bag-equal")
	}
	if BagEqual(a, rel([]string{"x"}, Row{Null()})) {
		t.Fatal("empty vs non-empty must differ")
	}
}

func TestBagEqualNil(t *testing.T) {
	if BagEqual(nil, rel([]string{"x"})) || !BagEqual(nil, nil) {
		t.Fatal("nil handling broken")
	}
}

func TestColumnIndexQualified(t *testing.T) {
	r := rel([]string{"T1.name", "T2.aid"})
	if r.ColumnIndex("name") != 0 {
		t.Fatal("suffix match on bare name failed")
	}
	if r.ColumnIndex("T2.aid") != 1 {
		t.Fatal("exact match failed")
	}
	if r.ColumnIndex("NAME") != 0 {
		t.Fatal("case-insensitive suffix match failed")
	}
	if r.ColumnIndex("missing") != -1 {
		t.Fatal("missing column must return -1")
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := rel([]string{"x"}, Row{NewInt(1)})
	c := r.Clone()
	c.Rows[0][0] = NewInt(99)
	c.Columns[0] = "y"
	if r.Rows[0][0].Int() != 1 || r.Columns[0] != "x" {
		t.Fatal("Clone must be deep")
	}
}

func TestSortRowsCanonical(t *testing.T) {
	r := rel([]string{"x", "y"},
		Row{NewInt(2), NewText("b")},
		Row{NewInt(1), NewText("z")},
		Row{NewInt(2), NewText("a")},
	)
	r.SortRows()
	if r.Rows[0][0].Int() != 1 || r.Rows[1][1].Text() != "a" || r.Rows[2][1].Text() != "b" {
		t.Fatalf("sort order wrong: %v", r.Rows)
	}
}

func TestRelationString(t *testing.T) {
	r := rel([]string{"name", "n"}, Row{NewText("Aruba"), NewInt(4)})
	s := r.String()
	if !strings.Contains(s, "Aruba") || !strings.Contains(s, "name") {
		t.Fatalf("render missing content:\n%s", s)
	}
}

// Property: BagEqual is invariant under random permutation.
func TestBagEqualPermutationProperty(t *testing.T) {
	f := func(seed int64, vals []int64) bool {
		a := NewRelation("v")
		for _, v := range vals {
			a.Append(Row{NewInt(v)})
		}
		b := a.Clone()
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(b.Rows), func(i, j int) { b.Rows[i], b.Rows[j] = b.Rows[j], b.Rows[i] })
		return BagEqual(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mutating one element of a non-empty relation breaks bag equality
// unless the new value already appears with equal multiplicity structure.
func TestBagEqualMutationProperty(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		a := NewRelation("v")
		seen := map[int64]bool{}
		for _, v := range vals {
			a.Append(Row{NewInt(v)})
			seen[v] = true
		}
		b := a.Clone()
		var replacement int64 = 1
		for seen[replacement] {
			replacement++
		}
		b.Rows[0][0] = NewInt(replacement)
		return !BagEqual(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowKeyDistinguishesArity(t *testing.T) {
	a := Row{NewInt(1), NewInt(2)}
	b := Row{NewInt(1)}
	if a.Key() == b.Key() {
		t.Fatal("rows of different arity must not collide")
	}
}

func TestAppendCompareKeyCols(t *testing.T) {
	row := Row{NewInt(1), NewText("x"), NewFloat(2.0), Null()}
	key, ok := row.AppendCompareKeyCols(nil, []int{0, 2})
	if !ok {
		t.Fatal("non-NULL columns must encode")
	}
	same, ok := Row{NewFloat(1.0), NewText("y"), NewInt(2), Null()}.AppendCompareKeyCols(nil, []int{0, 2})
	if !ok || string(key) != string(same) {
		t.Fatal("Compare-equal column values must encode identically")
	}
	if _, ok := row.AppendCompareKeyCols(nil, []int{0, 3}); ok {
		t.Fatal("a NULL in any selected column must report ok=false")
	}
}
