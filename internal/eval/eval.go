// Package eval implements the paper's three evaluation metrics (§V-A1):
//
//   - EM (syntactic / exact-match accuracy): the normalized prediction
//     matches the normalized gold query, ignoring literal values;
//   - EX (execution accuracy): executing the prediction yields a result
//     bag-equal to the gold result;
//   - TS (test-suite accuracy): the prediction passes the EX check on
//     every database in a distilled test suite — seeded perturbed copies
//     of the original database that expose coincidental EX matches,
//     following Zhong et al.'s distilled-test-suite methodology.
package eval

import (
	"context"
	"math/rand"

	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqleval"
	"cyclesql/internal/sqlnorm"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// EM reports exact-match equivalence.
func EM(pred, gold *sqlast.SelectStmt) bool {
	return sqlnorm.EMEqual(pred, gold)
}

// EX reports execution equivalence on one database. Predictions that fail
// to execute are wrong; gold queries are trusted to execute.
func EX(db *storage.Database, pred, gold *sqlast.SelectStmt) bool {
	return EXContext(context.Background(), db, pred, gold)
}

// EXContext is EX under a context: both executions abort when ctx is
// cancelled, and the aborted prediction scores false like any other
// failed execution. Callers enforcing deadlines (the batched experiment
// drivers) must check ctx.Err() after scoring and discard the outcome as
// an error — a false produced by cancellation is not a measurement.
func EXContext(ctx context.Context, db *storage.Database, pred, gold *sqlast.SelectStmt) bool {
	if pred == nil {
		return false
	}
	ex := sqleval.New(db)
	goldRel, err := ex.ExecContext(ctx, gold)
	if err != nil {
		return false
	}
	predRel, err := ex.ExecContext(ctx, pred)
	if err != nil {
		return false
	}
	return sqltypes.BagEqual(predRel, goldRel)
}

// Suite is a distilled test suite: the original database plus perturbed
// variants.
type Suite struct {
	DBs []*storage.Database
}

// SuiteSize is the number of perturbed variants per suite. The paper uses
// an augmented 100-fold distillation; a handful of aggressive seeded
// perturbations achieves the same discriminative role at in-memory scale.
const SuiteSize = 6

// BuildSuite derives a test suite from a database with seeded value
// perturbations: numeric columns are shifted and scaled, and a fraction of
// rows is dropped, so queries that only coincidentally matched gold on the
// original instance diverge on some variant.
func BuildSuite(db *storage.Database, seed int64) *Suite {
	s := &Suite{DBs: []*storage.Database{db}}
	for v := 0; v < SuiteSize; v++ {
		rng := rand.New(rand.NewSource(seed + int64(v)*7919))
		clone := db.Clone()
		clone.Mutate(func(table string, row sqltypes.Row) {
			for i, val := range row {
				if val.Kind() != sqltypes.KindInt {
					continue
				}
				// Leave small ints (ids, levels, flags) alone so joins and
				// categorical filters keep their semantics; jitter measures.
				if val.Int() > 40 && rng.Float64() < 0.5 {
					delta := int64(rng.Intn(9) - 4)
					row[i] = sqltypes.NewInt(val.Int() + delta)
				}
			}
		})
		dropRows(clone, rng)
		s.DBs = append(s.DBs, clone)
	}
	return s
}

// dropRows removes a small fraction of rows from every non-tiny table.
func dropRows(db *storage.Database, rng *rand.Rand) {
	for _, name := range db.Schema.TableNames() {
		rel := db.Table(name)
		if rel == nil || rel.NumRows() < 8 {
			continue
		}
		kept := rel.Rows[:0]
		for _, row := range rel.Rows {
			if rng.Float64() < 0.12 {
				continue
			}
			kept = append(kept, row)
		}
		rel.Rows = kept
	}
}

// TS reports test-suite equivalence: EX on every database of the suite.
func TS(suite *Suite, pred, gold *sqlast.SelectStmt) bool {
	return TSContext(context.Background(), suite, pred, gold)
}

// TSContext is TS under a context, with the same caveat as EXContext: a
// cancelled ctx makes the remaining suite checks score false, so
// deadline-enforcing callers must check ctx.Err() before recording the
// verdict.
func TSContext(ctx context.Context, suite *Suite, pred, gold *sqlast.SelectStmt) bool {
	for _, db := range suite.DBs {
		if !EXContext(ctx, db, pred, gold) {
			return false
		}
	}
	return true
}

// Scores aggregates the three metrics over a run.
type Scores struct {
	EM, EX, TS float64
	N          int
}

// Counter accumulates per-example metric outcomes.
type Counter struct {
	em, ex, ts, n int
}

// Add records one example's outcomes.
func (c *Counter) Add(em, ex, ts bool) {
	c.n++
	if em {
		c.em++
	}
	if ex {
		c.ex++
	}
	if ts {
		c.ts++
	}
}

// Scores finalizes the accumulated percentages (0-100).
func (c *Counter) Scores() Scores {
	if c.n == 0 {
		return Scores{}
	}
	f := func(k int) float64 { return 100 * float64(k) / float64(c.n) }
	return Scores{EM: f(c.em), EX: f(c.ex), TS: f(c.ts), N: c.n}
}
