package eval

import (
	"testing"

	"cyclesql/internal/datasets"
	"cyclesql/internal/sqlparse"
)

func TestEXDetectsEquivalenceAndDifference(t *testing.T) {
	db := datasets.FlightDB()
	gold := sqlparse.MustParse("SELECT count(*) FROM flight WHERE origin = 'Chicago'")
	same := sqlparse.MustParse("SELECT count(flno) FROM flight WHERE origin = 'Chicago'")
	diff := sqlparse.MustParse("SELECT count(*) FROM flight WHERE origin = 'Los Angeles'")
	if !EX(db, same, gold) {
		t.Fatal("count(flno) and count(*) must be EX-equal here")
	}
	if EX(db, diff, gold) {
		t.Fatal("different filters must not be EX-equal")
	}
	if EX(db, nil, gold) {
		t.Fatal("nil prediction is wrong")
	}
}

func TestEXFailingPredictionIsWrong(t *testing.T) {
	db := datasets.FlightDB()
	gold := sqlparse.MustParse("SELECT count(*) FROM flight")
	bad := sqlparse.MustParse("SELECT ghost FROM flight")
	if EX(db, bad, gold) {
		t.Fatal("non-executing prediction must be wrong")
	}
}

func TestEMDelegation(t *testing.T) {
	a := sqlparse.MustParse("SELECT name FROM t WHERE x = 1")
	b := sqlparse.MustParse("select NAME from T where x = 99")
	if !EM(a, b) {
		t.Fatal("EM must ignore case and values")
	}
}

// TS must be stricter than EX: a prediction that matches gold only by
// coincidence on the original data diverges on some distilled variant.
func TestTSCatchesCoincidentalMatches(t *testing.T) {
	db := datasets.FlightDB()
	suite := BuildSuite(db, 42)
	if len(suite.DBs) != SuiteSize+1 {
		t.Fatalf("suite size = %d", len(suite.DBs))
	}
	gold := sqlparse.MustParse("SELECT count(*) FROM flight WHERE origin = 'Chicago'")
	// On the original data both counts are 2: coincidental EX match.
	coincidence := sqlparse.MustParse("SELECT count(*) FROM flight WHERE destination = 'Honolulu'")
	if !EX(db, coincidence, gold) {
		t.Skip("fixture drifted; coincidence premise no longer holds")
	}
	if TS(suite, coincidence, gold) {
		t.Fatal("TS must catch the coincidental match on some variant")
	}
	if !TS(suite, gold, gold) {
		t.Fatal("gold must pass its own test suite")
	}
}

func TestBuildSuiteDeterministic(t *testing.T) {
	db := datasets.FlightDB()
	a := BuildSuite(db, 7)
	b := BuildSuite(db, 7)
	for i := range a.DBs {
		if a.DBs[i].TotalRows() != b.DBs[i].TotalRows() {
			t.Fatal("suite construction must be deterministic")
		}
	}
}

func TestBuildSuiteDoesNotMutateOriginal(t *testing.T) {
	db := datasets.FlightDB()
	before := db.TotalRows()
	BuildSuite(db, 3)
	if db.TotalRows() != before {
		t.Fatal("BuildSuite must clone, not mutate")
	}
}

func TestCounterScores(t *testing.T) {
	var c Counter
	c.Add(true, true, false)
	c.Add(false, true, true)
	s := c.Scores()
	if s.N != 2 || s.EM != 50 || s.EX != 100 || s.TS != 50 {
		t.Fatalf("scores = %+v", s)
	}
	var empty Counter
	if empty.Scores().N != 0 {
		t.Fatal("empty counter")
	}
}
