package schema

import (
	"reflect"
	"testing"

	"cyclesql/internal/sqltypes"
)

func testSchema() *Schema {
	return &Schema{
		Name: "concert_singer",
		Tables: []*Table{
			{Name: "Concert", Columns: []Column{
				{Name: "id", Type: sqltypes.KindInt, PrimaryKey: true},
				{Name: "name", Type: sqltypes.KindText},
				{Name: "year", Type: sqltypes.KindInt},
			}},
			{Name: "Singer", Columns: []Column{
				{Name: "id", Type: sqltypes.KindInt, PrimaryKey: true},
				{Name: "name", Type: sqltypes.KindText, NaturalName: "singer name"},
			}},
			{Name: "Singer_in_concert", NaturalName: "singer in concert", Columns: []Column{
				{Name: "concert_id", Type: sqltypes.KindInt},
				{Name: "singer_id", Type: sqltypes.KindInt},
			}},
		},
		ForeignKeys: []ForeignKey{
			{Table: "Singer_in_concert", Column: "concert_id", RefTable: "Concert", RefColumn: "id"},
			{Table: "Singer_in_concert", Column: "singer_id", RefTable: "Singer", RefColumn: "id"},
		},
	}
}

func TestValidateGoodSchema(t *testing.T) {
	if err := testSchema().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	s := testSchema()
	s.Tables = append(s.Tables, &Table{Name: "concert"})
	if err := s.Validate(); err == nil {
		t.Fatal("duplicate table (case-insensitive) must fail")
	}
	s = testSchema()
	s.ForeignKeys = append(s.ForeignKeys, ForeignKey{Table: "Nope", Column: "x", RefTable: "Concert", RefColumn: "id"})
	if err := s.Validate(); err == nil {
		t.Fatal("missing FK source must fail")
	}
	s = testSchema()
	s.ForeignKeys[0].RefColumn = "ghost"
	if err := s.Validate(); err == nil {
		t.Fatal("missing FK target column must fail")
	}
	s = testSchema()
	s.Tables[0].Columns = append(s.Tables[0].Columns, Column{Name: "ID"})
	if err := s.Validate(); err == nil {
		t.Fatal("duplicate column must fail")
	}
}

func TestLookupsCaseInsensitive(t *testing.T) {
	s := testSchema()
	if s.Table("CONCERT") == nil || s.Table("missing") != nil {
		t.Fatal("Table lookup broken")
	}
	if s.Table("Concert").Column("YEAR") == nil {
		t.Fatal("Column lookup broken")
	}
}

func TestResolveColumn(t *testing.T) {
	s := testSchema()
	tbl, col := s.ResolveColumn("year", nil)
	if tbl != "Concert" || col == nil {
		t.Fatalf("ResolveColumn year = %q", tbl)
	}
	tbl, _ = s.ResolveColumn("singer_id", []string{"Singer_in_concert"})
	if tbl != "Singer_in_concert" {
		t.Fatalf("scoped resolve = %q", tbl)
	}
	if tbl, col := s.ResolveColumn("ghost", nil); tbl != "" || col != nil {
		t.Fatal("missing column must resolve empty")
	}
}

func TestForeignKeyBetween(t *testing.T) {
	s := testSchema()
	if s.ForeignKeyBetween("Concert", "Singer_in_concert") == nil {
		t.Fatal("FK lookup must work in both directions")
	}
	if s.ForeignKeyBetween("Concert", "Singer") != nil {
		t.Fatal("no direct FK between Concert and Singer")
	}
	if n := len(s.ForeignKeysFrom("Singer_in_concert")); n != 2 {
		t.Fatalf("ForeignKeysFrom = %d", n)
	}
}

func TestNaturalize(t *testing.T) {
	cases := map[string]string{
		"Singer_in_concert": "singer in concert",
		"flightNo":          "flight no",
		"countrycode":       "countrycode",
		"HS":                "hs",
	}
	for in, want := range cases {
		if got := Naturalize(in); got != want {
			t.Errorf("Naturalize(%q) = %q want %q", in, got, want)
		}
	}
}

func TestTableNatural(t *testing.T) {
	s := testSchema()
	if got := s.Table("Singer_in_concert").Natural(); got != "singer in concert" {
		t.Fatalf("Natural = %q", got)
	}
	if got := s.Table("Concert").Natural(); got != "concert" {
		t.Fatalf("fallback Natural = %q", got)
	}
}

func TestGraphTopology(t *testing.T) {
	g := testSchema().Graph()
	if len(g.Nodes) != 3 {
		t.Fatalf("nodes = %v", g.Nodes)
	}
	// Junction table has degree 2, endpoints degree 1.
	if got := g.Degrees(); !reflect.DeepEqual(got, []int{1, 1, 2}) {
		t.Fatalf("degrees = %v", got)
	}
	sub := g.Subgraph([]string{"Concert", "Singer_in_concert"})
	if got := sub.Degrees(); !reflect.DeepEqual(got, []int{1, 1}) {
		t.Fatalf("subgraph degrees = %v", got)
	}
}

func TestSerializePromptFormat(t *testing.T) {
	s := testSchema()
	out := s.Serialize()
	want := "Table Concert with columns 'id', 'name', 'year';"
	if got := out[:len(want)]; got != want {
		t.Fatalf("Serialize first line = %q", got)
	}
}

func TestPrimaryKeys(t *testing.T) {
	s := testSchema()
	if pk := s.Table("Concert").PrimaryKeys(); len(pk) != 1 || pk[0] != "id" {
		t.Fatalf("PrimaryKeys = %v", pk)
	}
	if pk := s.Table("Singer_in_concert").PrimaryKeys(); len(pk) != 0 {
		t.Fatalf("junction PKs = %v", pk)
	}
}
