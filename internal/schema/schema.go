// Package schema models relational database schemata: tables, typed
// columns, primary and foreign keys, plus the natural-language surface
// names used by the explanation generator and the benchmark question
// templates.
//
// The package also exposes the schema as a graph (tables as nodes, foreign
// keys as edges), which the join-semantics discovery of the explanation
// generator matches against a pool of pre-defined relation topologies
// (paper §IV-C, Fig 6).
package schema

import (
	"fmt"
	"sort"
	"strings"

	"cyclesql/internal/sqltypes"
)

// Column describes one table column.
type Column struct {
	Name        string        // SQL identifier, e.g. "flno"
	Type        sqltypes.Kind // INTEGER, REAL or TEXT
	NaturalName string        // NL surface form, e.g. "flight number"
	PrimaryKey  bool
	// Role hints the benchmark question templates at how the column is
	// used: "id", "name", "category", "measure", "place", "fk", "level".
	// It is metadata for data/question generation, not SQL semantics.
	Role string
}

// ForeignKey is a directed reference from (Table, Column) to
// (RefTable, RefColumn).
type ForeignKey struct {
	Table     string
	Column    string
	RefTable  string
	RefColumn string
}

// Table describes one relation.
type Table struct {
	Name        string
	NaturalName string
	Columns     []Column
}

// Column returns the named column, or nil. Matching is case-insensitive.
func (t *Table) Column(name string) *Column {
	for i := range t.Columns {
		if strings.EqualFold(t.Columns[i].Name, name) {
			return &t.Columns[i]
		}
	}
	return nil
}

// ColumnNames returns the column identifiers in declaration order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.Name
	}
	return out
}

// PrimaryKeys returns the names of the primary-key columns.
func (t *Table) PrimaryKeys() []string {
	var out []string
	for _, c := range t.Columns {
		if c.PrimaryKey {
			out = append(out, c.Name)
		}
	}
	return out
}

// Natural returns the table's NL surface form, falling back to a
// de-underscored lowering of the identifier.
func (t *Table) Natural() string {
	if t.NaturalName != "" {
		return t.NaturalName
	}
	return Naturalize(t.Name)
}

// Schema is a complete database schema.
type Schema struct {
	Name        string
	Tables      []*Table
	ForeignKeys []ForeignKey
}

// Table returns the named table, or nil. Matching is case-insensitive.
func (s *Schema) Table(name string) *Table {
	for _, t := range s.Tables {
		if strings.EqualFold(t.Name, name) {
			return t
		}
	}
	return nil
}

// TableNames returns the table identifiers in declaration order.
func (s *Schema) TableNames() []string {
	out := make([]string, len(s.Tables))
	for i, t := range s.Tables {
		out[i] = t.Name
	}
	return out
}

// ResolveColumn finds the table owning an unqualified column name. If the
// column exists in several tables the first declaration wins; callers that
// need join-aware resolution pass their own candidate table list.
func (s *Schema) ResolveColumn(column string, among []string) (table string, col *Column) {
	names := among
	if len(names) == 0 {
		names = s.TableNames()
	}
	for _, tn := range names {
		t := s.Table(tn)
		if t == nil {
			continue
		}
		if c := t.Column(column); c != nil {
			return t.Name, c
		}
	}
	return "", nil
}

// ForeignKeyBetween returns the foreign key linking two tables in either
// direction, or nil.
func (s *Schema) ForeignKeyBetween(a, b string) *ForeignKey {
	for i := range s.ForeignKeys {
		fk := &s.ForeignKeys[i]
		if (strings.EqualFold(fk.Table, a) && strings.EqualFold(fk.RefTable, b)) ||
			(strings.EqualFold(fk.Table, b) && strings.EqualFold(fk.RefTable, a)) {
			return fk
		}
	}
	return nil
}

// ForeignKeysFrom returns all foreign keys whose source is the given table.
func (s *Schema) ForeignKeysFrom(table string) []ForeignKey {
	var out []ForeignKey
	for _, fk := range s.ForeignKeys {
		if strings.EqualFold(fk.Table, table) {
			out = append(out, fk)
		}
	}
	return out
}

// Validate checks referential integrity of the schema definition itself:
// all FK endpoints exist, PKs are declared, names are unique.
func (s *Schema) Validate() error {
	seen := map[string]bool{}
	for _, t := range s.Tables {
		key := strings.ToLower(t.Name)
		if seen[key] {
			return fmt.Errorf("schema %s: duplicate table %s", s.Name, t.Name)
		}
		seen[key] = true
		colSeen := map[string]bool{}
		for _, c := range t.Columns {
			ck := strings.ToLower(c.Name)
			if colSeen[ck] {
				return fmt.Errorf("schema %s: duplicate column %s.%s", s.Name, t.Name, c.Name)
			}
			colSeen[ck] = true
		}
	}
	for _, fk := range s.ForeignKeys {
		src := s.Table(fk.Table)
		dst := s.Table(fk.RefTable)
		if src == nil || dst == nil {
			return fmt.Errorf("schema %s: foreign key references missing table (%s -> %s)", s.Name, fk.Table, fk.RefTable)
		}
		if src.Column(fk.Column) == nil {
			return fmt.Errorf("schema %s: foreign key column %s.%s missing", s.Name, fk.Table, fk.Column)
		}
		if dst.Column(fk.RefColumn) == nil {
			return fmt.Errorf("schema %s: foreign key target %s.%s missing", s.Name, fk.RefTable, fk.RefColumn)
		}
	}
	return nil
}

// Serialize renders the schema in the compact prompt format used by the
// paper's few-shot LLM prompt ("Table Player with columns 'pID', ...").
func (s *Schema) Serialize() string {
	var b strings.Builder
	for _, t := range s.Tables {
		b.WriteString("Table ")
		b.WriteString(t.Name)
		b.WriteString(" with columns ")
		for i, c := range t.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString("'")
			b.WriteString(c.Name)
			b.WriteString("'")
		}
		b.WriteString(";\n")
	}
	return b.String()
}

// Naturalize converts a SQL identifier into an NL surface form:
// "Singer_in_concert" becomes "singer in concert", "countrycode" stays.
func Naturalize(ident string) string {
	out := strings.ReplaceAll(ident, "_", " ")
	// Split lowerCamelCase boundaries.
	var b strings.Builder
	for i, r := range out {
		if i > 0 && r >= 'A' && r <= 'Z' {
			prev := out[i-1]
			if prev >= 'a' && prev <= 'z' {
				b.WriteByte(' ')
			}
		}
		b.WriteRune(r)
	}
	return strings.ToLower(strings.Join(strings.Fields(b.String()), " "))
}

// Graph returns the schema's table graph: one node per table, one
// undirected edge per foreign key. Node order is deterministic.
type Graph struct {
	Nodes []string
	Edges map[string][]string // adjacency, keys and values are table names
}

// Graph builds the table graph of the schema.
func (s *Schema) Graph() *Graph {
	g := &Graph{Edges: map[string][]string{}}
	for _, t := range s.Tables {
		g.Nodes = append(g.Nodes, t.Name)
	}
	add := func(a, b string) {
		g.Edges[a] = append(g.Edges[a], b)
	}
	for _, fk := range s.ForeignKeys {
		add(fk.Table, fk.RefTable)
		add(fk.RefTable, fk.Table)
	}
	for k := range g.Edges {
		sort.Strings(g.Edges[k])
	}
	return g
}

// Subgraph returns the induced subgraph over the given table names.
func (g *Graph) Subgraph(tables []string) *Graph {
	want := map[string]bool{}
	for _, t := range tables {
		want[strings.ToLower(t)] = true
	}
	out := &Graph{Edges: map[string][]string{}}
	for _, n := range g.Nodes {
		if want[strings.ToLower(n)] {
			out.Nodes = append(out.Nodes, n)
		}
	}
	for _, n := range out.Nodes {
		for _, m := range g.Edges[n] {
			if want[strings.ToLower(m)] {
				out.Edges[n] = append(out.Edges[n], m)
			}
		}
	}
	return out
}

// Degrees returns the sorted degree sequence of the graph, the cheap
// invariant used before attempting isomorphism matching.
func (g *Graph) Degrees() []int {
	out := make([]int, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		out = append(out, len(g.Edges[n]))
	}
	sort.Ints(out)
	return out
}
