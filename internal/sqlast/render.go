package sqlast

import (
	"strconv"
	"strings"
)

// SQL renders the statement back to SQL text. Rendering is deterministic,
// so rendered text is safe to use as a cache key; it is re-parseable by
// sqlparse (round-trip property covered by tests).
func (s *SelectStmt) SQL() string {
	var b strings.Builder
	for i, core := range s.Cores {
		if i > 0 {
			b.WriteByte(' ')
			b.WriteString(string(s.Ops[i-1]))
			b.WriteByte(' ')
		}
		core.render(&b)
	}
	return b.String()
}

// SQL renders a single SELECT core. Like SelectStmt.SQL, the rendering is
// deterministic, so it doubles as a memoization key for per-core caches
// (the provenance tracker keys its rewrite cache on it).
func (c *SelectCore) SQL() string {
	var b strings.Builder
	c.render(&b)
	return b.String()
}

func (c *SelectCore) render(b *strings.Builder) {
	b.WriteString("SELECT ")
	if c.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range c.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.SQL())
	}
	if c.From != nil {
		b.WriteString(" FROM ")
		b.WriteString(c.From.Base.SQL())
		for _, j := range c.From.Joins {
			b.WriteByte(' ')
			b.WriteString(string(j.Type))
			b.WriteByte(' ')
			b.WriteString(j.Table.SQL())
			if j.On != nil {
				b.WriteString(" ON ")
				b.WriteString(ExprSQL(j.On))
			}
		}
	}
	if c.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(ExprSQL(c.Where))
	}
	if len(c.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range c.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(ExprSQL(g))
		}
	}
	if c.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(ExprSQL(c.Having))
	}
	if len(c.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range c.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(ExprSQL(o.Expr))
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if c.Limit != nil {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.FormatInt(*c.Limit, 10))
	}
	if c.Offset != nil {
		b.WriteString(" OFFSET ")
		b.WriteString(strconv.FormatInt(*c.Offset, 10))
	}
}

// SQL renders a projection item.
func (it SelectItem) SQL() string {
	var s string
	switch {
	case it.Star && it.TableStar != "":
		s = it.TableStar + ".*"
	case it.Star:
		s = "*"
	default:
		s = ExprSQL(it.Expr)
	}
	if it.Alias != "" {
		s += " AS " + it.Alias
	}
	return s
}

// SQL renders a table reference.
func (t TableRef) SQL() string {
	var s string
	if t.Sub != nil {
		s = "(" + t.Sub.SQL() + ")"
	} else {
		s = t.Name
	}
	if t.Alias != "" {
		s += " AS " + t.Alias
	}
	return s
}

// precedence for minimal parenthesization; higher binds tighter.
func precedence(op string) int {
	switch op {
	case "OR":
		return 1
	case "AND":
		return 2
	case "=", "!=", "<>", "<", "<=", ">", ">=":
		return 3
	case "+", "-":
		return 4
	case "*", "/", "%":
		return 5
	default:
		return 6
	}
}

// ExprSQL renders an expression to SQL text.
func ExprSQL(e Expr) string {
	if e == nil {
		return ""
	}
	switch x := e.(type) {
	case *ColumnRef:
		if x.Table != "" {
			return x.Table + "." + x.Column
		}
		return x.Column
	case *Literal:
		return x.Value.SQLLiteral()
	case *Unary:
		if x.Op == "NOT" {
			return "NOT " + maybeParen(x.X, 6)
		}
		return x.Op + maybeParen(x.X, 6)
	case *Binary:
		p := precedence(x.Op)
		return maybeParen(x.L, p) + " " + x.Op + " " + maybeParenRight(x.R, p)
	case *FuncCall:
		var inner string
		switch {
		case x.Star:
			inner = "*"
		default:
			parts := make([]string, len(x.Args))
			for i, a := range x.Args {
				parts[i] = ExprSQL(a)
			}
			inner = strings.Join(parts, ", ")
		}
		if x.Distinct {
			inner = "DISTINCT " + inner
		}
		return x.Name + "(" + inner + ")"
	case *InExpr:
		var rhs string
		if x.Sub != nil {
			rhs = "(" + x.Sub.SQL() + ")"
		} else {
			parts := make([]string, len(x.List))
			for i, a := range x.List {
				parts[i] = ExprSQL(a)
			}
			rhs = "(" + strings.Join(parts, ", ") + ")"
		}
		op := " IN "
		if x.Not {
			op = " NOT IN "
		}
		return maybeParen(x.X, 3) + op + rhs
	case *LikeExpr:
		op := " LIKE "
		if x.Not {
			op = " NOT LIKE "
		}
		return maybeParen(x.X, 3) + op + ExprSQL(x.Pattern)
	case *BetweenExpr:
		op := " BETWEEN "
		if x.Not {
			op = " NOT BETWEEN "
		}
		return maybeParen(x.X, 3) + op + ExprSQL(x.Lo) + " AND " + ExprSQL(x.Hi)
	case *IsNullExpr:
		op := " IS NULL"
		if x.Not {
			op = " IS NOT NULL"
		}
		return maybeParen(x.X, 3) + op
	case *ExistsExpr:
		prefix := "EXISTS "
		if x.Not {
			prefix = "NOT EXISTS "
		}
		return prefix + "(" + x.Sub.SQL() + ")"
	case *SubqueryExpr:
		return "(" + x.Sub.SQL() + ")"
	default:
		return "?"
	}
}

func maybeParen(e Expr, parentPrec int) string {
	if b, ok := e.(*Binary); ok && precedence(b.Op) < parentPrec {
		return "(" + ExprSQL(e) + ")"
	}
	return ExprSQL(e)
}

// maybeParenRight parenthesizes right operands at equal precedence too, so
// non-associative trees such as a - (b - c) survive the round trip.
func maybeParenRight(e Expr, parentPrec int) string {
	if b, ok := e.(*Binary); ok && precedence(b.Op) <= parentPrec && parentPrec >= 3 {
		return "(" + ExprSQL(e) + ")"
	}
	return maybeParen(e, parentPrec)
}
