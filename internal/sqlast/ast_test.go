package sqlast

import (
	"testing"

	"cyclesql/internal/sqltypes"
)

func TestBuildersAndRendering(t *testing.T) {
	core := &SelectCore{
		Items: []SelectItem{{Expr: QCol("t1", "name")}},
		From: &FromClause{
			Base: TableRef{Name: "singer", Alias: "t1"},
			Joins: []Join{{
				Type:  InnerJoin,
				Table: TableRef{Name: "song", Alias: "t2"},
				On:    Eq(QCol("t1", "id"), QCol("t2", "singer_id")),
			}},
		},
		Where: And(Eq(QCol("t2", "sales"), Int(100)), nil),
	}
	got := Wrap(core).SQL()
	want := "SELECT t1.name FROM singer AS t1 JOIN song AS t2 ON t1.id = t2.singer_id WHERE t2.sales = 100"
	if got != want {
		t.Fatalf("SQL() = %q\nwant   %q", got, want)
	}
}

func TestAndNilHandling(t *testing.T) {
	e := Eq(Col("a"), Int(1))
	if And(nil, e) != e || And(e, nil) != e {
		t.Fatal("And must pass through nil operands")
	}
	if And(nil, nil) != nil {
		t.Fatal("And(nil, nil) must be nil")
	}
}

func TestConjunctsFlattening(t *testing.T) {
	e := And(And(Eq(Col("a"), Int(1)), Eq(Col("b"), Int(2))), Eq(Col("c"), Int(3)))
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("Conjuncts = %d", len(cs))
	}
	if Conjuncts(nil) != nil {
		t.Fatal("Conjuncts(nil) must be nil")
	}
	// OR is not a conjunction boundary.
	or := &Binary{Op: "OR", L: cs[0], R: cs[1]}
	if len(Conjuncts(or)) != 1 {
		t.Fatal("OR must stay a single conjunct")
	}
}

func TestExprSQLParenthesization(t *testing.T) {
	// a + b * c needs no parens; (a + b) * c does.
	sum := &Binary{Op: "+", L: Col("a"), R: Col("b")}
	prod := &Binary{Op: "*", L: sum, R: Col("c")}
	if got := ExprSQL(prod); got != "(a + b) * c" {
		t.Fatalf("ExprSQL = %q", got)
	}
	prod2 := &Binary{Op: "+", L: Col("a"), R: &Binary{Op: "*", L: Col("b"), R: Col("c")}}
	if got := ExprSQL(prod2); got != "a + b * c" {
		t.Fatalf("ExprSQL = %q", got)
	}
	// Right-associative subtraction keeps parens.
	sub := &Binary{Op: "-", L: Col("a"), R: &Binary{Op: "-", L: Col("b"), R: Col("c")}}
	if got := ExprSQL(sub); got != "a - (b - c)" {
		t.Fatalf("ExprSQL = %q", got)
	}
}

func TestFuncCallRendering(t *testing.T) {
	if got := ExprSQL(&FuncCall{Name: "COUNT", Star: true}); got != "COUNT(*)" {
		t.Fatalf("count star = %q", got)
	}
	if got := ExprSQL(&FuncCall{Name: "COUNT", Distinct: true, Args: []Expr{Col("x")}}); got != "COUNT(DISTINCT x)" {
		t.Fatalf("count distinct = %q", got)
	}
	f := &FuncCall{Name: "SUM", Args: []Expr{Col("x")}}
	if !f.IsAggregate() {
		t.Fatal("SUM must be an aggregate")
	}
	if (&FuncCall{Name: "ABS"}).IsAggregate() {
		t.Fatal("ABS is not an aggregate")
	}
}

func TestPredicateRendering(t *testing.T) {
	cases := map[Expr]string{
		&InExpr{X: Col("a"), List: []Expr{Int(1), Int(2)}}:    "a IN (1, 2)",
		&InExpr{X: Col("a"), Not: true, List: []Expr{Int(1)}}: "a NOT IN (1)",
		&LikeExpr{X: Col("n"), Pattern: Text("B%")}:           "n LIKE 'B%'",
		&BetweenExpr{X: Col("d"), Lo: Int(1), Hi: Int(5)}:     "d BETWEEN 1 AND 5",
		&IsNullExpr{X: Col("f")}:                              "f IS NULL",
		&IsNullExpr{X: Col("f"), Not: true}:                   "f IS NOT NULL",
		&Unary{Op: "NOT", X: Eq(Col("a"), Int(1))}:            "NOT (a = 1)",
	}
	for e, want := range cases {
		if got := ExprSQL(e); got != want {
			t.Errorf("ExprSQL = %q want %q", got, want)
		}
	}
}

func TestLiteralRendering(t *testing.T) {
	if got := ExprSQL(Text("O'Hare")); got != "'O''Hare'" {
		t.Fatalf("escaped text = %q", got)
	}
	if got := ExprSQL(Lit(sqltypes.Null())); got != "NULL" {
		t.Fatalf("null = %q", got)
	}
}

func TestTableRefEffective(t *testing.T) {
	if (TableRef{Name: "t", Alias: "a"}).Effective() != "a" {
		t.Fatal("alias wins")
	}
	if (TableRef{Name: "t"}).Effective() != "t" {
		t.Fatal("name fallback")
	}
}

func TestWalkExprPruning(t *testing.T) {
	e := And(Eq(Col("a"), Int(1)), Eq(Col("b"), Int(2)))
	visits := 0
	WalkExpr(e, func(Expr) bool { visits++; return false })
	if visits != 1 {
		t.Fatalf("pruned walk visited %d nodes", visits)
	}
	all := 0
	WalkExpr(e, func(Expr) bool { all++; return true })
	if all != 7 { // AND, two =, two cols, two literals
		t.Fatalf("full walk visited %d nodes", all)
	}
}

func TestHasAggregate(t *testing.T) {
	with := &SelectCore{Items: []SelectItem{{Expr: &FuncCall{Name: "COUNT", Star: true}}}}
	if !with.HasAggregate() {
		t.Fatal("count must flag aggregate")
	}
	without := &SelectCore{Items: []SelectItem{{Expr: Col("a")}}}
	if without.HasAggregate() {
		t.Fatal("plain projection is not aggregated")
	}
	havingOnly := &SelectCore{Items: []SelectItem{{Expr: Col("a")}}, Having: Eq(Col("x"), Int(1))}
	if !havingOnly.HasAggregate() {
		t.Fatal("HAVING implies grouping")
	}
}

func TestCompoundSQL(t *testing.T) {
	stmt := &SelectStmt{
		Cores: []*SelectCore{
			{Items: []SelectItem{{Expr: Col("a")}}, From: &FromClause{Base: TableRef{Name: "t"}}},
			{Items: []SelectItem{{Expr: Col("b")}}, From: &FromClause{Base: TableRef{Name: "u"}}},
		},
		Ops: []CompoundOp{Intersect},
	}
	if got := stmt.SQL(); got != "SELECT a FROM t INTERSECT SELECT b FROM u" {
		t.Fatalf("compound SQL = %q", got)
	}
	if stmt.Simple() {
		t.Fatal("two cores are not simple")
	}
}

func TestEqualSQL(t *testing.T) {
	a := Wrap(&SelectCore{Items: []SelectItem{{Expr: Col("A")}}, From: &FromClause{Base: TableRef{Name: "T"}}})
	b := Wrap(&SelectCore{Items: []SelectItem{{Expr: Col("a")}}, From: &FromClause{Base: TableRef{Name: "t"}}})
	if !EqualSQL(a, b) {
		t.Fatal("EqualSQL must ignore case")
	}
}

func TestCloneExprNil(t *testing.T) {
	if CloneExpr(nil) != nil {
		t.Fatal("CloneExpr(nil) must be nil")
	}
}

func TestSelectItemSQL(t *testing.T) {
	if got := (SelectItem{Star: true}).SQL(); got != "*" {
		t.Fatalf("star = %q", got)
	}
	if got := (SelectItem{Star: true, TableStar: "t1"}).SQL(); got != "t1.*" {
		t.Fatalf("table star = %q", got)
	}
	if got := (SelectItem{Expr: Col("x"), Alias: "y"}).SQL(); got != "x AS y" {
		t.Fatalf("aliased = %q", got)
	}
}
