package sqlast

// Clone deep-copies the statement. Rewriters (provenance rules, the
// corruption engine, the normalizer) clone before mutating so candidate
// lists and cached gold queries stay intact.
func (s *SelectStmt) Clone() *SelectStmt {
	if s == nil {
		return nil
	}
	out := &SelectStmt{
		Cores: make([]*SelectCore, len(s.Cores)),
		Ops:   append([]CompoundOp(nil), s.Ops...),
	}
	for i, c := range s.Cores {
		out.Cores[i] = c.Clone()
	}
	return out
}

// Clone deep-copies a core.
func (c *SelectCore) Clone() *SelectCore {
	if c == nil {
		return nil
	}
	out := &SelectCore{Distinct: c.Distinct}
	for _, it := range c.Items {
		out.Items = append(out.Items, SelectItem{
			Expr:      CloneExpr(it.Expr),
			Alias:     it.Alias,
			Star:      it.Star,
			TableStar: it.TableStar,
		})
	}
	if c.From != nil {
		from := &FromClause{Base: c.From.Base.clone()}
		for _, j := range c.From.Joins {
			from.Joins = append(from.Joins, Join{Type: j.Type, Table: j.Table.clone(), On: CloneExpr(j.On)})
		}
		out.From = from
	}
	out.Where = CloneExpr(c.Where)
	for _, g := range c.GroupBy {
		out.GroupBy = append(out.GroupBy, CloneExpr(g))
	}
	out.Having = CloneExpr(c.Having)
	for _, o := range c.OrderBy {
		out.OrderBy = append(out.OrderBy, OrderItem{Expr: CloneExpr(o.Expr), Desc: o.Desc})
	}
	if c.Limit != nil {
		v := *c.Limit
		out.Limit = &v
	}
	if c.Offset != nil {
		v := *c.Offset
		out.Offset = &v
	}
	return out
}

func (t TableRef) clone() TableRef {
	return TableRef{Name: t.Name, Alias: t.Alias, Sub: t.Sub.Clone()}
}

// CloneExpr deep-copies an expression tree (nil-safe).
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *ColumnRef:
		cp := *x
		return &cp
	case *Literal:
		cp := *x
		return &cp
	case *Unary:
		return &Unary{Op: x.Op, X: CloneExpr(x.X)}
	case *Binary:
		return &Binary{Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case *FuncCall:
		out := &FuncCall{Name: x.Name, Distinct: x.Distinct, Star: x.Star}
		for _, a := range x.Args {
			out.Args = append(out.Args, CloneExpr(a))
		}
		return out
	case *InExpr:
		out := &InExpr{X: CloneExpr(x.X), Not: x.Not, Sub: x.Sub.Clone()}
		for _, a := range x.List {
			out.List = append(out.List, CloneExpr(a))
		}
		return out
	case *LikeExpr:
		return &LikeExpr{X: CloneExpr(x.X), Not: x.Not, Pattern: CloneExpr(x.Pattern)}
	case *BetweenExpr:
		return &BetweenExpr{X: CloneExpr(x.X), Not: x.Not, Lo: CloneExpr(x.Lo), Hi: CloneExpr(x.Hi)}
	case *IsNullExpr:
		return &IsNullExpr{X: CloneExpr(x.X), Not: x.Not}
	case *ExistsExpr:
		return &ExistsExpr{Not: x.Not, Sub: x.Sub.Clone()}
	case *SubqueryExpr:
		return &SubqueryExpr{Sub: x.Sub.Clone()}
	default:
		return e
	}
}
