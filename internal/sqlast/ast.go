// Package sqlast defines the abstract syntax tree for the Spider SQL
// dialect, together with SQL rendering, deep cloning, and tree walking.
// Every downstream system manipulates this AST: the executor evaluates it,
// the provenance tracker rewrites it (paper §IV-A), the annotator chunks it
// into clause units (§IV-B), the corruption engine mutates it, and the EM
// normalizer canonicalizes it.
package sqlast

import (
	"strings"

	"cyclesql/internal/sqltypes"
)

// CompoundOp is a set operation joining two SELECT cores.
type CompoundOp string

// Set operations.
const (
	Union     CompoundOp = "UNION"
	UnionAll  CompoundOp = "UNION ALL"
	Intersect CompoundOp = "INTERSECT"
	Except    CompoundOp = "EXCEPT"
)

// JoinType distinguishes join flavors.
type JoinType string

// Join flavors.
const (
	InnerJoin JoinType = "JOIN"
	LeftJoin  JoinType = "LEFT JOIN"
)

// SelectStmt is a full statement: one or more SELECT cores combined with
// set operations (left-associative, Cores[i] OP[i] Cores[i+1]).
type SelectStmt struct {
	Cores []*SelectCore
	Ops   []CompoundOp // len(Ops) == len(Cores)-1
}

// SelectCore is a single SELECT ... FROM ... block.
type SelectCore struct {
	Distinct bool
	Items    []SelectItem
	From     *FromClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    *int64
	Offset   *int64
}

// SelectItem is one projection item.
type SelectItem struct {
	Expr  Expr   // nil when Star
	Alias string // optional AS alias
	Star  bool   // bare * (TableStar qualifies it when non-empty)
	// TableStar holds the table qualifier for "t.*" items.
	TableStar string
}

// FromClause lists the base table and its joins.
type FromClause struct {
	Base  TableRef
	Joins []Join
}

// TableRef names a table with an optional alias. Sub, when non-nil, makes
// this a derived table (FROM (SELECT ...) AS alias).
type TableRef struct {
	Name  string
	Alias string
	Sub   *SelectStmt
}

// Effective returns the name the reference binds in scope: the alias if
// present, else the table name.
func (t TableRef) Effective() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// Join is one JOIN clause.
type Join struct {
	Type  JoinType
	Table TableRef
	On    Expr // nil for comma-style cross joins
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Expr is any expression node.
type Expr interface{ isExpr() }

// ColumnRef references a column, optionally qualified ("T1.name"). A
// Column of "*" only appears inside COUNT(*) handling.
type ColumnRef struct {
	Table  string
	Column string
}

// Literal wraps a constant value.
type Literal struct {
	Value sqltypes.Value
}

// Unary applies NOT or unary minus.
type Unary struct {
	Op string // "NOT" or "-"
	X  Expr
}

// Binary applies an infix operator: comparison (=, !=, <, <=, >, >=),
// arithmetic (+ - * / %), or logical (AND, OR).
type Binary struct {
	Op string
	L  Expr
	R  Expr
}

// FuncCall is a function application; the dialect's functions are the five
// SQL aggregates plus ABS. Star marks COUNT(*).
type FuncCall struct {
	Name     string // upper-case
	Distinct bool
	Star     bool
	Args     []Expr
}

// IsAggregate reports whether the call is one of the SQL aggregates.
func (f *FuncCall) IsAggregate() bool {
	switch f.Name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// InExpr is X [NOT] IN (list | subquery).
type InExpr struct {
	X    Expr
	Not  bool
	List []Expr
	Sub  *SelectStmt
}

// LikeExpr is X [NOT] LIKE pattern.
type LikeExpr struct {
	X       Expr
	Not     bool
	Pattern Expr
}

// BetweenExpr is X [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	X   Expr
	Not bool
	Lo  Expr
	Hi  Expr
}

// IsNullExpr is X IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Not bool
	Sub *SelectStmt
}

// SubqueryExpr is a scalar subquery used as a value.
type SubqueryExpr struct {
	Sub *SelectStmt
}

func (*ColumnRef) isExpr()    {}
func (*Literal) isExpr()      {}
func (*Unary) isExpr()        {}
func (*Binary) isExpr()       {}
func (*FuncCall) isExpr()     {}
func (*InExpr) isExpr()       {}
func (*LikeExpr) isExpr()     {}
func (*BetweenExpr) isExpr()  {}
func (*IsNullExpr) isExpr()   {}
func (*ExistsExpr) isExpr()   {}
func (*SubqueryExpr) isExpr() {}

// Col is shorthand for an unqualified column reference.
func Col(name string) *ColumnRef { return &ColumnRef{Column: name} }

// QCol is shorthand for a qualified column reference.
func QCol(table, name string) *ColumnRef { return &ColumnRef{Table: table, Column: name} }

// Lit wraps a value into a literal expression.
func Lit(v sqltypes.Value) *Literal { return &Literal{Value: v} }

// Int, Text are literal shorthands used heavily by the rewriters.
func Int(v int64) *Literal   { return Lit(sqltypes.NewInt(v)) }
func Text(s string) *Literal { return Lit(sqltypes.NewText(s)) }

// Eq builds an equality comparison.
func Eq(l, r Expr) *Binary { return &Binary{Op: "=", L: l, R: r} }

// And conjoins two expressions, tolerating nil operands.
func And(l, r Expr) Expr {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	return &Binary{Op: "AND", L: l, R: r}
}

// Conjuncts flattens a boolean expression into its top-level AND operands.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// FromAnd rebuilds a conjunction from a conjunct list (nil for empty).
func FromAnd(conjuncts []Expr) Expr {
	var out Expr
	for _, c := range conjuncts {
		out = And(out, c)
	}
	return out
}

// Tables returns the table references of a core in FROM order.
func (c *SelectCore) Tables() []TableRef {
	if c.From == nil {
		return nil
	}
	out := []TableRef{c.From.Base}
	for _, j := range c.From.Joins {
		out = append(out, j.Table)
	}
	return out
}

// HasAggregate reports whether any projection item or the HAVING clause
// contains an aggregate call.
func (c *SelectCore) HasAggregate() bool {
	found := false
	for _, it := range c.Items {
		if it.Expr != nil {
			WalkExpr(it.Expr, func(e Expr) bool {
				if f, ok := e.(*FuncCall); ok && f.IsAggregate() {
					found = true
				}
				return !found
			})
		}
	}
	if c.Having != nil {
		found = true
	}
	return found
}

// WalkExpr visits e and its children depth-first. The callback returns
// false to prune descent. Subquery boundaries are not crossed; use
// WalkStatements for that.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *Unary:
		WalkExpr(x.X, fn)
	case *Binary:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	case *InExpr:
		WalkExpr(x.X, fn)
		for _, a := range x.List {
			WalkExpr(a, fn)
		}
	case *LikeExpr:
		WalkExpr(x.X, fn)
		WalkExpr(x.Pattern, fn)
	case *BetweenExpr:
		WalkExpr(x.X, fn)
		WalkExpr(x.Lo, fn)
		WalkExpr(x.Hi, fn)
	case *IsNullExpr:
		WalkExpr(x.X, fn)
	}
}

// Subqueries returns the immediate subquery statements nested anywhere in
// the core's expressions or derived tables.
func (c *SelectCore) Subqueries() []*SelectStmt {
	var subs []*SelectStmt
	collect := func(e Expr) {
		WalkExpr(e, func(e Expr) bool {
			switch x := e.(type) {
			case *InExpr:
				if x.Sub != nil {
					subs = append(subs, x.Sub)
				}
			case *ExistsExpr:
				subs = append(subs, x.Sub)
			case *SubqueryExpr:
				subs = append(subs, x.Sub)
			}
			return true
		})
	}
	for _, it := range c.Items {
		collect(it.Expr)
	}
	collect(c.Where)
	collect(c.Having)
	for _, g := range c.GroupBy {
		collect(g)
	}
	for _, o := range c.OrderBy {
		collect(o.Expr)
	}
	if c.From != nil {
		for _, t := range append([]TableRef{c.From.Base}, joinTables(c.From.Joins)...) {
			if t.Sub != nil {
				subs = append(subs, t.Sub)
			}
		}
		for _, j := range c.From.Joins {
			collect(j.On)
		}
	}
	return subs
}

func joinTables(joins []Join) []TableRef {
	out := make([]TableRef, len(joins))
	for i, j := range joins {
		out[i] = j.Table
	}
	return out
}

// ColumnRefs collects every column reference in the core (not descending
// into subqueries).
func (c *SelectCore) ColumnRefs() []*ColumnRef {
	var refs []*ColumnRef
	collect := func(e Expr) {
		WalkExpr(e, func(e Expr) bool {
			if cr, ok := e.(*ColumnRef); ok {
				refs = append(refs, cr)
			}
			return true
		})
	}
	for _, it := range c.Items {
		collect(it.Expr)
	}
	collect(c.Where)
	collect(c.Having)
	for _, g := range c.GroupBy {
		collect(g)
	}
	for _, o := range c.OrderBy {
		collect(o.Expr)
	}
	if c.From != nil {
		for _, j := range c.From.Joins {
			collect(j.On)
		}
	}
	return refs
}

// Simple reports whether the statement is a single core without set
// operations.
func (s *SelectStmt) Simple() bool { return len(s.Cores) == 1 }

// Core returns the first core; most rewrites operate on simple statements.
func (s *SelectStmt) Core() *SelectCore { return s.Cores[0] }

// Wrap builds a one-core statement.
func Wrap(core *SelectCore) *SelectStmt { return &SelectStmt{Cores: []*SelectCore{core}} }

// EqualSQL reports whether two statements render to the same SQL text,
// ignoring case. It is a syntactic identity check, not an EM judgment.
func EqualSQL(a, b *SelectStmt) bool {
	return strings.EqualFold(a.SQL(), b.SQL())
}
