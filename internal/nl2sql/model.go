// Package nl2sql simulates the paper's seven baseline NL2SQL translation
// models. The real systems are multi-billion-parameter Seq2seq models and
// remote LLM APIs, neither of which is available offline; CycleSQL treats
// them as black boxes that emit a ranked list of top-k candidate SQL
// queries, and the simulators reproduce exactly that interface with the
// statistical structure that drives the paper's results (see DESIGN.md):
//
//   - per-difficulty top-1 accuracy calibrated to the paper's base rows
//     (Tables I and II);
//   - a beam/ceiling gap — the gold query is frequently in the beam but
//     not at rank 1 (Fig 1, the oracle rows of Table III) — which is the
//     headroom CycleSQL's verifier converts into accuracy;
//   - style variants for LLM models (EX-equivalent but EM-different SQL,
//     the paper's EM ≪ EX gap for GPT-3.5/4 and CHESS's count(id) quirk);
//   - degradation factors for variant benchmarks (Realistic, Syn, DK) and
//     for the scientific databases;
//   - a per-model latency constant for the Fig 8b scalability comparison.
//
// All sampling is deterministic: the random stream is seeded from the
// model name and example ID.
package nl2sql

import (
	"hash/fnv"
	"math/rand"
	"sort"
	"time"

	"cyclesql/internal/datasets"
	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqlnorm"
	"cyclesql/internal/storage"
)

// Candidate is one ranked translation hypothesis.
type Candidate struct {
	SQL   string
	Stmt  *sqlast.SelectStmt
	Score float64 // model-internal rank score, descending
}

// Model is the black-box translation interface CycleSQL plugs into.
type Model interface {
	Name() string
	// Translate produces the top-k candidates for an example of the named
	// benchmark against its database.
	Translate(benchmark string, ex datasets.Example, db *storage.Database, k int) []Candidate
	// BaseLatency is the simulated single-inference latency used by the
	// scalability comparison (documented substitute for GPU wall-clock).
	BaseLatency() time.Duration
}

// Profile calibrates one simulated model.
type Profile struct {
	ModelName string
	// Top1 is P(gold ranked first) per difficulty bucket on Spider dev.
	Top1 map[sqlnorm.Difficulty]float64
	// BeamRecovery is P(gold appears later in the beam | not at rank 1).
	BeamRecovery float64
	// RankDecay shapes where in the beam the recovered gold lands: higher
	// values push it deeper (PICARD's low-quality sampling).
	RankDecay float64
	// StyleRate is P(the emitted gold uses an EX-equivalent but
	// EM-different surface form); high for un-fine-tuned LLMs.
	StyleRate float64
	// DKFactor, RealisticFactor, SynFactor scale Top1/BeamRecovery on the
	// variant benchmarks' perturbed examples.
	DKFactor        float64
	RealisticFactor float64
	SynFactor       float64
	// BenchFactor scales accuracy per benchmark name (ScienceBenchmark's
	// drastic drops; CHESS's inverted profile).
	BenchFactor map[string]float64
	// Latency is the simulated per-inference latency.
	Latency time.Duration
}

// Simulator implements Model from a Profile.
type Simulator struct {
	P Profile
}

// Name implements Model.
func (s *Simulator) Name() string { return s.P.ModelName }

// BaseLatency implements Model.
func (s *Simulator) BaseLatency() time.Duration { return s.P.Latency }

// Translate implements Model.
func (s *Simulator) Translate(benchmark string, ex datasets.Example, db *storage.Database, k int) []Candidate {
	if k <= 0 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seedFor(s.P.ModelName, ex.ID)))
	top1, recovery := s.effectiveRates(benchmark, ex)

	goldRank := -1
	switch {
	case rng.Float64() < top1:
		goldRank = 0
	case rng.Float64() < recovery:
		goldRank = 1 + sampleRank(rng, k-1, s.P.RankDecay)
	}
	gold := ex.Gold
	eng := &corruptor{db: db, rng: rng}
	out := make([]Candidate, 0, k)
	seen := map[string]bool{}
	for rank := 0; len(out) < k; rank++ {
		var stmt *sqlast.SelectStmt
		if rank == goldRank {
			stmt = gold.Clone()
			if rng.Float64() < s.P.StyleRate {
				stmt = styleVariant(db, stmt, rng)
			}
		} else {
			stmt = eng.corrupt(gold)
		}
		key := sqlnorm.Canonical(stmt)
		if seen[key] && rank != goldRank {
			// Duplicate corruption: retry with a fresh mutation, giving up
			// after a few attempts to guarantee termination.
			retried := false
			for attempt := 0; attempt < 4; attempt++ {
				alt := eng.corrupt(stmt)
				altKey := sqlnorm.Canonical(alt)
				if !seen[altKey] {
					stmt, key, retried = alt, altKey, true
					break
				}
			}
			if !retried && len(out) > 0 {
				continue
			}
		}
		seen[key] = true
		out = append(out, Candidate{SQL: stmt.SQL(), Stmt: stmt, Score: 1.0 / float64(1+rank)})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// effectiveRates applies variant and benchmark degradation to the base
// profile for one example.
func (s *Simulator) effectiveRates(benchmark string, ex datasets.Example) (top1, recovery float64) {
	top1 = s.P.Top1[ex.Difficulty]
	recovery = s.P.BeamRecovery
	if f, ok := s.P.BenchFactor[benchmark]; ok {
		top1 *= f
		recovery *= f
	}
	if ex.RequiresDK {
		top1 *= s.P.DKFactor
		recovery *= s.P.DKFactor
	}
	if ex.SchemaIndirect {
		top1 *= s.P.RealisticFactor
		recovery *= s.P.RealisticFactor
	}
	if ex.SynPerturbed {
		top1 *= s.P.SynFactor
		recovery *= s.P.SynFactor
	}
	// Benchmark factors above 1 (CHESS on the scientific databases) must
	// not push probabilities past certainty.
	return min1(top1, 0.97), min1(recovery, 0.97)
}

func min1(v, cap float64) float64 {
	if v > cap {
		return cap
	}
	return v
}

// sampleRank draws an offset in [0, n) with geometric-ish decay; decay 0
// is uniform, larger decay pushes mass deeper into the beam.
func sampleRank(rng *rand.Rand, n int, decay float64) int {
	if n <= 1 {
		return 0
	}
	if decay <= 0 {
		return rng.Intn(n)
	}
	// Inverse-transform over weights w_i = (1+decay)^i (deeper = heavier
	// for decay > 0, modelling models whose sampler ranks gold poorly).
	weights := make([]float64, n)
	total := 0.0
	w := 1.0
	for i := 0; i < n; i++ {
		weights[i] = w
		total += w
		w *= 1 + decay
	}
	u := rng.Float64() * total
	for i, wt := range weights {
		u -= wt
		if u <= 0 {
			return i
		}
	}
	return n - 1
}

func seedFor(model, exampleID string) int64 {
	h := fnv.New64a()
	h.Write([]byte(model))
	h.Write([]byte{0})
	h.Write([]byte(exampleID))
	return int64(h.Sum64())
}
