package nl2sql

import (
	"context"
	"errors"
	"testing"
	"time"

	"cyclesql/internal/datasets"
	"cyclesql/internal/storage"
)

// plainModel is a Model without TranslateContext; ctxModel adds it and
// records whether the context path was taken.
type plainModel struct{ cands []Candidate }

func (p plainModel) Name() string               { return "plain" }
func (p plainModel) BaseLatency() time.Duration { return 0 }
func (p plainModel) Translate(string, datasets.Example, *storage.Database, int) []Candidate {
	return p.cands
}

type ctxModel struct {
	plainModel
	viaContext bool
	err        error
}

func (c *ctxModel) TranslateContext(ctx context.Context, benchmark string, ex datasets.Example, db *storage.Database, k int) ([]Candidate, error) {
	c.viaContext = true
	if c.err != nil {
		return nil, c.err
	}
	return c.cands, nil
}

func TestTranslateContextDispatch(t *testing.T) {
	want := []Candidate{{SQL: "SELECT 1", Score: 1}}

	// A plain Model falls back to the synchronous Translate.
	got, err := TranslateContext(context.Background(), plainModel{cands: want}, "spider", datasets.Example{}, nil, 1)
	if err != nil || len(got) != 1 || got[0].SQL != want[0].SQL {
		t.Fatalf("plain-model fallback: got %v, %v", got, err)
	}

	// A ContextModel is handed the context.
	cm := &ctxModel{plainModel: plainModel{cands: want}}
	got, err = TranslateContext(context.Background(), cm, "spider", datasets.Example{}, nil, 1)
	if err != nil || len(got) != 1 {
		t.Fatalf("context-model dispatch: got %v, %v", got, err)
	}
	if !cm.viaContext {
		t.Fatal("ContextModel must be dispatched through TranslateContext")
	}

	// Its error propagates.
	boom := errors.New("beam down")
	cm = &ctxModel{err: boom}
	if _, err = TranslateContext(context.Background(), cm, "spider", datasets.Example{}, nil, 1); !errors.Is(err, boom) {
		t.Fatalf("model error must propagate, got %v", err)
	}
}

func TestTranslateContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cm := &ctxModel{plainModel: plainModel{cands: []Candidate{{SQL: "SELECT 1"}}}}
	got, err := TranslateContext(ctx, cm, "spider", datasets.Example{}, nil, 1)
	if !errors.Is(err, context.Canceled) || got != nil {
		t.Fatalf("done context must short-circuit: got %v, %v", got, err)
	}
	if cm.viaContext {
		t.Fatal("no model work may run once the context is done")
	}
}
