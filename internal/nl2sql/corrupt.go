package nl2sql

import (
	"math/rand"

	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqleval"
	"cyclesql/internal/sqlnorm"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// corruptor generates plausible erroneous translations: single-edit
// mutations of the gold AST that still parse and execute against the
// database — the error classes real NL2SQL models exhibit (wrong
// aggregate, wrong column, wrong operator, wrong value, wrong join key,
// dropped condition, flipped ordering, swapped set operation).
type corruptor struct {
	db  *storage.Database
	rng *rand.Rand
}

// corrupt returns an executable mutation of gold that differs from it
// under EM normalization. It always terminates: after a bounded number of
// attempts it falls back to a trivial-but-valid degradation.
func (c *corruptor) corrupt(gold *sqlast.SelectStmt) *sqlast.SelectStmt {
	goldKey := sqlnorm.Canonical(gold)
	for attempt := 0; attempt < 12; attempt++ {
		mut := gold.Clone()
		op := mutations[c.rng.Intn(len(mutations))]
		if !op(c, mut) {
			continue
		}
		if sqlnorm.Canonical(mut) == goldKey {
			continue
		}
		if _, err := sqleval.New(c.db).Exec(mut); err != nil {
			continue
		}
		return mut
	}
	return c.fallback(gold)
}

// fallback degrades the query in a way that is always valid: a count over
// the gold query's first table, or — when that is what the gold already
// computes — a bare projection of the table's first column.
func (c *corruptor) fallback(gold *sqlast.SelectStmt) *sqlast.SelectStmt {
	tables := gold.Core().Tables()
	table := "missing"
	if len(tables) > 0 && tables[0].Name != "" {
		table = tables[0].Name
	}
	core := &sqlast.SelectCore{
		Items: []sqlast.SelectItem{{Expr: &sqlast.FuncCall{Name: "COUNT", Star: true}}},
		From:  &sqlast.FromClause{Base: sqlast.TableRef{Name: table}},
	}
	out := sqlast.Wrap(core)
	if sqlnorm.Canonical(out) != sqlnorm.Canonical(gold) {
		return out
	}
	col := "id"
	if t := c.db.Schema.Table(table); t != nil && len(t.Columns) > 0 {
		col = t.Columns[0].Name
	}
	core.Items = []sqlast.SelectItem{{Expr: sqlast.Col(col)}}
	return out
}

// mutation applies one in-place edit; it returns false when inapplicable.
type mutation func(c *corruptor, stmt *sqlast.SelectStmt) bool

var mutations = []mutation{
	mutateAggregate,
	mutateComparisonOp,
	mutateLiteralValue,
	mutateDropConjunct,
	mutateProjectionColumn,
	mutateDistinct,
	mutateOrderDirection,
	mutateLimit,
	mutateSetOp,
	mutateJoinKey,
	mutateHavingThreshold,
	mutateAggregateToColumn,
}

// mutateAggregate swaps the aggregate function (the paper's Fig 2 error is
// the converse: a count where a projection was wanted).
func mutateAggregate(c *corruptor, stmt *sqlast.SelectStmt) bool {
	core := stmt.Core()
	funcs := []string{"COUNT", "SUM", "AVG", "MIN", "MAX"}
	for i := range core.Items {
		if f, ok := core.Items[i].Expr.(*sqlast.FuncCall); ok && f.IsAggregate() {
			if f.Star {
				// count(*) can only become count(DISTINCT col) or a
				// different aggregate over a numeric column; keep simple:
				// flip to a MIN/MAX over the first projectable column.
				cols := numericColumns(c.db, core)
				if len(cols) == 0 {
					return false
				}
				pickCol := cols[c.rng.Intn(len(cols))]
				f.Star = false
				f.Name = pick(c.rng, []string{"SUM", "AVG", "MAX", "MIN"})
				f.Args = []sqlast.Expr{pickCol}
				return true
			}
			next := funcs[c.rng.Intn(len(funcs))]
			if next == f.Name {
				next = funcs[(c.rng.Intn(len(funcs)-1)+1+indexOf(funcs, f.Name))%len(funcs)]
			}
			f.Name = next
			return true
		}
	}
	return false
}

// mutateAggregateToColumn replaces an aggregate projection with its bare
// argument — or wraps a bare projection in count() — reproducing the
// paper's motivating error class exactly.
func mutateAggregateToColumn(c *corruptor, stmt *sqlast.SelectStmt) bool {
	core := stmt.Core()
	for i := range core.Items {
		switch x := core.Items[i].Expr.(type) {
		case *sqlast.FuncCall:
			if x.IsAggregate() && !x.Star && len(x.Args) == 1 {
				core.Items[i].Expr = x.Args[0]
				core.GroupBy = nil
				core.Having = nil
				return true
			}
		case *sqlast.ColumnRef:
			if x.Column != "*" && len(core.GroupBy) == 0 {
				core.Items[i].Expr = &sqlast.FuncCall{Name: "COUNT", Star: true}
				return true
			}
		}
	}
	return false
}

// mutateComparisonOp perturbs a WHERE/HAVING comparison operator (the
// paper's error analysis shows ">= 8000" where "= 8000" was intended).
func mutateComparisonOp(c *corruptor, stmt *sqlast.SelectStmt) bool {
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	done := false
	mutate := func(e sqlast.Expr) {
		sqlast.WalkExpr(e, func(e sqlast.Expr) bool {
			if done {
				return false
			}
			if b, ok := e.(*sqlast.Binary); ok && isComparison(b.Op) {
				if _, isLit := b.R.(*sqlast.Literal); isLit {
					next := ops[c.rng.Intn(len(ops))]
					if next != b.Op {
						b.Op = next
						done = true
					}
				}
			}
			return !done
		})
	}
	core := stmt.Core()
	mutate(core.Where)
	if !done {
		mutate(core.Having)
	}
	return done
}

// mutateLiteralValue swaps a filter constant for a different value from
// the same column's domain (text) or a shifted number.
func mutateLiteralValue(c *corruptor, stmt *sqlast.SelectStmt) bool {
	core := stmt.Core()
	done := false
	sqlast.WalkExpr(core.Where, func(e sqlast.Expr) bool {
		if done {
			return false
		}
		b, ok := e.(*sqlast.Binary)
		if !ok {
			return true
		}
		lit, okR := b.R.(*sqlast.Literal)
		cr, okL := b.L.(*sqlast.ColumnRef)
		if !okR || !okL {
			return true
		}
		switch lit.Value.Kind() {
		case sqltypes.KindInt:
			delta := int64(1 + c.rng.Intn(5))
			if c.rng.Intn(2) == 0 {
				delta = -delta
			}
			b.R = sqlast.Int(lit.Value.Int() + delta)
			done = true
		case sqltypes.KindFloat:
			b.R = sqlast.Lit(sqltypes.NewFloat(lit.Value.Float() * 1.5))
			done = true
		case sqltypes.KindText:
			if alt := c.alternativeValue(core, cr, lit.Value.Text()); alt != "" {
				b.R = sqlast.Text(alt)
				done = true
			}
		}
		return !done
	})
	return done
}

// alternativeValue samples a different value of the same column from the
// stored data, so the corrupted query stays plausible.
func (c *corruptor) alternativeValue(core *sqlast.SelectCore, cr *sqlast.ColumnRef, current string) string {
	for _, ref := range core.Tables() {
		if ref.Name == "" {
			continue
		}
		rel := c.db.Table(ref.Name)
		if rel == nil {
			continue
		}
		idx := rel.ColumnIndex(cr.Column)
		if idx < 0 {
			continue
		}
		// Deterministic scan from a random offset.
		if len(rel.Rows) == 0 {
			continue
		}
		start := c.rng.Intn(len(rel.Rows))
		for k := 0; k < len(rel.Rows); k++ {
			v := rel.Rows[(start+k)%len(rel.Rows)][idx]
			if v.Kind() == sqltypes.KindText && v.Text() != current {
				return v.Text()
			}
		}
	}
	return ""
}

// mutateDropConjunct removes one WHERE conjunct.
func mutateDropConjunct(c *corruptor, stmt *sqlast.SelectStmt) bool {
	core := stmt.Core()
	conj := sqlast.Conjuncts(core.Where)
	if len(conj) < 2 {
		return false
	}
	drop := c.rng.Intn(len(conj))
	conj = append(conj[:drop], conj[drop+1:]...)
	core.Where = sqlast.FromAnd(conj)
	return true
}

// mutateProjectionColumn swaps a projected column for a sibling column of
// the same table.
func mutateProjectionColumn(c *corruptor, stmt *sqlast.SelectStmt) bool {
	core := stmt.Core()
	for i := range core.Items {
		cr, ok := core.Items[i].Expr.(*sqlast.ColumnRef)
		if !ok || cr.Column == "*" {
			continue
		}
		if alt := c.siblingColumn(core, cr); alt != "" {
			cr.Column = alt
			return true
		}
	}
	return false
}

func (c *corruptor) siblingColumn(core *sqlast.SelectCore, cr *sqlast.ColumnRef) string {
	for _, ref := range core.Tables() {
		if ref.Name == "" {
			continue
		}
		t := c.db.Schema.Table(ref.Name)
		if t == nil || t.Column(cr.Column) == nil {
			continue
		}
		if cr.Table != "" && ref.Effective() != cr.Table && ref.Name != cr.Table {
			continue
		}
		names := t.ColumnNames()
		start := c.rng.Intn(len(names))
		for k := 0; k < len(names); k++ {
			cand := names[(start+k)%len(names)]
			if cand != cr.Column {
				return cand
			}
		}
	}
	return ""
}

func mutateDistinct(c *corruptor, stmt *sqlast.SelectStmt) bool {
	core := stmt.Core()
	if core.HasAggregate() {
		return false
	}
	core.Distinct = !core.Distinct
	return true
}

func mutateOrderDirection(c *corruptor, stmt *sqlast.SelectStmt) bool {
	core := stmt.Core()
	if len(core.OrderBy) == 0 {
		return false
	}
	core.OrderBy[0].Desc = !core.OrderBy[0].Desc
	return true
}

func mutateLimit(c *corruptor, stmt *sqlast.SelectStmt) bool {
	core := stmt.Core()
	if core.Limit == nil {
		return false
	}
	n := *core.Limit + int64(1+c.rng.Intn(3))
	core.Limit = &n
	return true
}

func mutateSetOp(c *corruptor, stmt *sqlast.SelectStmt) bool {
	if len(stmt.Ops) == 0 {
		return false
	}
	switch stmt.Ops[0] {
	case sqlast.Intersect:
		stmt.Ops[0] = sqlast.Union
	case sqlast.Union, sqlast.UnionAll:
		stmt.Ops[0] = sqlast.Intersect
	case sqlast.Except:
		stmt.Ops[0] = sqlast.Intersect
	}
	return true
}

// mutateJoinKey swaps one side of a join condition for another column of
// the same table — the paper's "friendid vs studentid" error class.
func mutateJoinKey(c *corruptor, stmt *sqlast.SelectStmt) bool {
	core := stmt.Core()
	if core.From == nil {
		return false
	}
	for ji := range core.From.Joins {
		b, ok := core.From.Joins[ji].On.(*sqlast.Binary)
		if !ok || b.Op != "=" {
			continue
		}
		cr, ok := b.R.(*sqlast.ColumnRef)
		if !ok {
			continue
		}
		// Swap to a sibling integer column when one exists.
		if alt := c.siblingIntColumn(core, cr); alt != "" {
			cr.Column = alt
			return true
		}
	}
	return false
}

func (c *corruptor) siblingIntColumn(core *sqlast.SelectCore, cr *sqlast.ColumnRef) string {
	for _, ref := range core.Tables() {
		if ref.Name == "" || (cr.Table != "" && ref.Effective() != cr.Table && ref.Name != cr.Table) {
			continue
		}
		t := c.db.Schema.Table(ref.Name)
		if t == nil || t.Column(cr.Column) == nil {
			continue
		}
		for _, col := range t.Columns {
			if col.Name != cr.Column && col.Type == sqltypes.KindInt {
				return col.Name
			}
		}
	}
	return ""
}

func mutateHavingThreshold(c *corruptor, stmt *sqlast.SelectStmt) bool {
	core := stmt.Core()
	done := false
	sqlast.WalkExpr(core.Having, func(e sqlast.Expr) bool {
		if done {
			return false
		}
		if b, ok := e.(*sqlast.Binary); ok {
			if lit, ok := b.R.(*sqlast.Literal); ok && lit.Value.Kind() == sqltypes.KindInt {
				b.R = sqlast.Int(lit.Value.Int() + int64(1+c.rng.Intn(2)))
				done = true
			}
		}
		return !done
	})
	return done
}

// numericColumns lists qualified integer columns of the core's tables.
func numericColumns(db *storage.Database, core *sqlast.SelectCore) []*sqlast.ColumnRef {
	var out []*sqlast.ColumnRef
	for _, ref := range core.Tables() {
		if ref.Name == "" {
			continue
		}
		t := db.Schema.Table(ref.Name)
		if t == nil {
			continue
		}
		for _, col := range t.Columns {
			if col.Type == sqltypes.KindInt && !col.PrimaryKey {
				out = append(out, &sqlast.ColumnRef{Table: ref.Effective(), Column: col.Name})
			}
		}
	}
	return out
}

func isComparison(op string) bool {
	switch op {
	case "=", "!=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func pick(rng *rand.Rand, pool []string) string { return pool[rng.Intn(len(pool))] }

func indexOf(pool []string, s string) int {
	for i, p := range pool {
		if p == s {
			return i
		}
	}
	return 0
}
