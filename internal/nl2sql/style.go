package nl2sql

import (
	"math/rand"

	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqleval"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// styleVariant rewrites a correct statement into an execution-equivalent
// but EM-different surface form — the signature of LLMs that were never
// fine-tuned on the benchmark's canonical SQL style (paper §V-A2: GPT-3.5
// scores 72.8 EX but only 43.8 EM; CHESS emits count(id) for count(*)).
// Real LLMs copy literal values from the question verbatim, so the
// transforms preserve literals; execution equivalence on the given
// database is verified, falling back to the original on any divergence.
func styleVariant(db *storage.Database, stmt *sqlast.SelectStmt, rng *rand.Rand) *sqlast.SelectStmt {
	out := stmt.Clone()
	transforms := []func() bool{
		func() bool { return countStarToCountPK(db, out) },
		func() bool { return eqToIn(out) },
	}
	applied := false
	start := rng.Intn(len(transforms))
	for k := 0; k < len(transforms) && !applied; k++ {
		applied = transforms[(start+k)%len(transforms)]()
	}
	if !applied {
		return stmt
	}
	if !sameExecution(db, stmt, out) {
		return stmt
	}
	return out
}

// countStarToCountPK rewrites COUNT(*) as COUNT(pk) — identical results on
// NOT NULL primary keys but a different EM shape (the CHESS quirk).
func countStarToCountPK(db *storage.Database, stmt *sqlast.SelectStmt) bool {
	core := stmt.Core()
	tables := core.Tables()
	if len(tables) == 0 || tables[0].Name == "" {
		return false
	}
	t := db.Schema.Table(tables[0].Name)
	if t == nil {
		return false
	}
	pks := t.PrimaryKeys()
	if len(pks) == 0 {
		return false
	}
	for i := range core.Items {
		if f, ok := core.Items[i].Expr.(*sqlast.FuncCall); ok && f.Name == "COUNT" && f.Star {
			f.Star = false
			f.Args = []sqlast.Expr{&sqlast.ColumnRef{Table: tables[0].Effective(), Column: pks[0]}}
			return true
		}
	}
	return false
}

// eqToIn rewrites "col = 'v'" into "col IN ('v')": same predicate, same
// literal, different EM structure.
func eqToIn(stmt *sqlast.SelectStmt) bool {
	core := stmt.Core()
	conj := sqlast.Conjuncts(core.Where)
	for i, c := range conj {
		b, ok := c.(*sqlast.Binary)
		if !ok || b.Op != "=" {
			continue
		}
		cr, okL := b.L.(*sqlast.ColumnRef)
		lit, okR := b.R.(*sqlast.Literal)
		if !okL || !okR || lit.Value.Kind() != sqltypes.KindText {
			continue
		}
		conj[i] = &sqlast.InExpr{X: cr, List: []sqlast.Expr{lit}}
		core.Where = sqlast.FromAnd(conj)
		return true
	}
	return false
}

// sameExecution checks bag equality of the two statements' results.
func sameExecution(db *storage.Database, a, b *sqlast.SelectStmt) bool {
	ex := sqleval.New(db)
	ra, err := ex.Exec(a)
	if err != nil {
		return false
	}
	rb, err := ex.Exec(b)
	if err != nil {
		return false
	}
	return sqltypes.BagEqual(ra, rb)
}
