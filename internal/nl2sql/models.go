package nl2sql

import (
	"fmt"
	"time"

	"cyclesql/internal/sqlnorm"
)

// The seven baseline models of the paper's evaluation, calibrated to the
// base rows of Tables I and II. Top-1 rates are the per-difficulty
// execution accuracies the paper reports for each base model; beam
// recovery and rank decay encode each model's beam quality (Fig 1 and Fig
// 8a: PICARD needs ~4 iterations, the rest 1-2); style rates encode the
// EM ≪ EX gap of the un-fine-tuned LLMs.
var profiles = []Profile{
	{
		ModelName: "smbop",
		Top1: map[sqlnorm.Difficulty]float64{
			sqlnorm.Easy: 0.905, sqlnorm.Medium: 0.82, sqlnorm.Hard: 0.70, sqlnorm.ExtraHard: 0.52,
		},
		BeamRecovery: 0.30, RankDecay: 0.3, StyleRate: 0.02,
		DKFactor: 0.80, RealisticFactor: 0.88, SynFactor: 0.85,
		BenchFactor: map[string]float64{"science": 0.28},
		Latency:     160 * time.Millisecond,
	},
	{
		ModelName: "picard-3b",
		Top1: map[sqlnorm.Difficulty]float64{
			sqlnorm.Easy: 0.95, sqlnorm.Medium: 0.85, sqlnorm.Hard: 0.67, sqlnorm.ExtraHard: 0.50,
		},
		// PICARD's sampled beams are low quality: gold, when recoverable,
		// sits deep in the list (the paper measures 3.78 iterations).
		BeamRecovery: 0.35, RankDecay: 2.5, StyleRate: 0.02,
		DKFactor: 0.78, RealisticFactor: 0.92, SynFactor: 0.90,
		BenchFactor: map[string]float64{"science": 0.42},
		Latency:     8 * time.Second,
	},
	{
		ModelName: "resdsql-large",
		Top1: map[sqlnorm.Difficulty]float64{
			sqlnorm.Easy: 0.92, sqlnorm.Medium: 0.83, sqlnorm.Hard: 0.66, sqlnorm.ExtraHard: 0.51,
		},
		BeamRecovery: 0.50, RankDecay: 0.2, StyleRate: 0.02,
		DKFactor: 0.82, RealisticFactor: 0.94, SynFactor: 0.90,
		BenchFactor: map[string]float64{"science": 0.44},
		Latency:     550 * time.Millisecond,
	},
	{
		ModelName: "resdsql-3b",
		Top1: map[sqlnorm.Difficulty]float64{
			sqlnorm.Easy: 0.94, sqlnorm.Medium: 0.855, sqlnorm.Hard: 0.655, sqlnorm.ExtraHard: 0.55,
		},
		BeamRecovery: 0.52, RankDecay: 0.2, StyleRate: 0.02,
		DKFactor: 0.84, RealisticFactor: 0.97, SynFactor: 0.92,
		BenchFactor: map[string]float64{"science": 0.46},
		Latency:     1500 * time.Millisecond,
	},
	{
		ModelName: "gpt-3.5-turbo",
		Top1: map[sqlnorm.Difficulty]float64{
			sqlnorm.Easy: 0.84, sqlnorm.Medium: 0.78, sqlnorm.Hard: 0.65, sqlnorm.ExtraHard: 0.48,
		},
		// Diverse chat completions recover gold often — the headroom
		// CycleSQL converts into its largest gains (+5.0 EX).
		BeamRecovery: 0.55, RankDecay: 0.4, StyleRate: 0.50,
		DKFactor: 0.85, RealisticFactor: 0.93, SynFactor: 0.90,
		BenchFactor: map[string]float64{"science": 0.50},
		Latency:     900 * time.Millisecond,
	},
	{
		ModelName: "gpt-4",
		Top1: map[sqlnorm.Difficulty]float64{
			sqlnorm.Easy: 0.90, sqlnorm.Medium: 0.84, sqlnorm.Hard: 0.64, sqlnorm.ExtraHard: 0.56,
		},
		BeamRecovery: 0.38, RankDecay: 0.3, StyleRate: 0.42,
		DKFactor: 0.92, RealisticFactor: 0.94, SynFactor: 0.92,
		BenchFactor: map[string]float64{"science": 0.66},
		Latency:     2600 * time.Millisecond,
	},
	{
		ModelName: "chess",
		// CHESS's Spider numbers are depressed by its "ID-like projection
		// column" style (§V-A2); its pipeline shines on the scientific
		// databases instead (Table I right columns).
		Top1: map[sqlnorm.Difficulty]float64{
			sqlnorm.Easy: 0.70, sqlnorm.Medium: 0.25, sqlnorm.Hard: 0.39, sqlnorm.ExtraHard: 0.19,
		},
		BeamRecovery: 0.15, RankDecay: 0.5, StyleRate: 0.60,
		DKFactor: 0.88, RealisticFactor: 0.95, SynFactor: 0.92,
		BenchFactor: map[string]float64{"science": 1.85},
		Latency:     3200 * time.Millisecond,
	},
	{
		ModelName: "dail-sql",
		Top1: map[sqlnorm.Difficulty]float64{
			sqlnorm.Easy: 0.91, sqlnorm.Medium: 0.86, sqlnorm.Hard: 0.77, sqlnorm.ExtraHard: 0.57,
		},
		BeamRecovery: 0.25, RankDecay: 0.3, StyleRate: 0.30,
		DKFactor: 0.90, RealisticFactor: 0.95, SynFactor: 0.93,
		BenchFactor: map[string]float64{"science": 0.55},
		Latency:     1000 * time.Millisecond,
	},
}

// ModelNames lists the simulated baselines in paper order.
func ModelNames() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.ModelName
	}
	return out
}

// ByName returns the named simulated model.
func ByName(name string) (Model, error) {
	for _, p := range profiles {
		if p.ModelName == name {
			return &Simulator{P: p}, nil
		}
	}
	return nil, fmt.Errorf("nl2sql: unknown model %q", name)
}

// MustByName panics on unknown names; experiment drivers use it with
// static model lists.
func MustByName(name string) Model {
	m, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return m
}
