package nl2sql

import (
	"math/rand"
	"testing"

	"cyclesql/internal/datasets"
	"cyclesql/internal/eval"
	"cyclesql/internal/sqleval"
	"cyclesql/internal/sqlnorm"
)

func TestModelRegistry(t *testing.T) {
	names := ModelNames()
	if len(names) != 8 {
		t.Fatalf("expected 8 simulated baselines, got %d", len(names))
	}
	for _, n := range names {
		m, err := ByName(n)
		if err != nil || m.Name() != n {
			t.Fatalf("ByName(%s): %v", n, err)
		}
		if m.BaseLatency() <= 0 {
			t.Fatalf("%s: latency must be positive", n)
		}
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestTranslateDeterministic(t *testing.T) {
	bench := datasets.Spider()
	ex := bench.Dev[3]
	db := bench.DB(ex.DBName)
	m := MustByName("resdsql-3b")
	a := m.Translate(bench.Name, ex, db, 8)
	b := m.Translate(bench.Name, ex, db, 8)
	if len(a) != len(b) {
		t.Fatal("non-deterministic beam size")
	}
	for i := range a {
		if a[i].SQL != b[i].SQL {
			t.Fatalf("non-deterministic candidate %d: %q vs %q", i, a[i].SQL, b[i].SQL)
		}
	}
}

func TestCandidatesAllExecutable(t *testing.T) {
	bench := datasets.Spider()
	m := MustByName("gpt-3.5-turbo")
	for _, ex := range bench.Dev[:40] {
		db := bench.DB(ex.DBName)
		for _, cand := range m.Translate(bench.Name, ex, db, 5) {
			if _, err := sqleval.New(db).Exec(cand.Stmt); err != nil {
				t.Fatalf("candidate does not execute: %s (%v)", cand.SQL, err)
			}
		}
	}
}

func TestCandidatesDistinctAndScored(t *testing.T) {
	bench := datasets.Spider()
	ex := bench.Dev[5]
	db := bench.DB(ex.DBName)
	cands := MustByName("resdsql-large").Translate(bench.Name, ex, db, 8)
	if len(cands) != 8 {
		t.Fatalf("beam size: %d", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Score > cands[i-1].Score {
			t.Fatal("scores must be non-increasing")
		}
	}
}

func TestCalibrationOrdering(t *testing.T) {
	// Base top-1 EX on the Spider dev slice must reflect the calibrated
	// ordering: dail-sql > resdsql-3b > gpt-3.5 > chess.
	bench := datasets.Spider()
	dev := bench.Dev[:200]
	acc := func(name string) float64 {
		m := MustByName(name)
		ok := 0
		for _, ex := range dev {
			db := bench.DB(ex.DBName)
			c := m.Translate(bench.Name, ex, db, 1)
			if eval.EX(db, c[0].Stmt, ex.Gold) {
				ok++
			}
		}
		return float64(ok) / float64(len(dev))
	}
	dail, res, chess := acc("dail-sql"), acc("resdsql-3b"), acc("chess")
	if !(dail > chess && res > chess) {
		t.Fatalf("calibration ordering broken: dail=%.2f res=%.2f chess=%.2f", dail, res, chess)
	}
	if chess > 0.6 {
		t.Fatalf("chess must be depressed on spider: %.2f", chess)
	}
}

func TestBeamCeilingAboveTop1(t *testing.T) {
	bench := datasets.Spider()
	dev := bench.Dev[:150]
	m := MustByName("gpt-3.5-turbo")
	top1, any5 := 0, 0
	for _, ex := range dev {
		db := bench.DB(ex.DBName)
		cands := m.Translate(bench.Name, ex, db, 5)
		if eval.EX(db, cands[0].Stmt, ex.Gold) {
			top1++
		}
		for _, c := range cands {
			if eval.EX(db, c.Stmt, ex.Gold) {
				any5++
				break
			}
		}
	}
	if any5 <= top1 {
		t.Fatalf("beam must recover gold beyond top-1: top1=%d any5=%d", top1, any5)
	}
}

func TestScienceDegradation(t *testing.T) {
	sci := datasets.Science()
	dev := sci.Dev[:80]
	resOK, chessOK := 0, 0
	for _, ex := range dev {
		db := sci.DB(ex.DBName)
		if c := MustByName("resdsql-3b").Translate(sci.Name, ex, db, 1); eval.EX(db, c[0].Stmt, ex.Gold) {
			resOK++
		}
		if c := MustByName("chess").Translate(sci.Name, ex, db, 1); eval.EX(db, c[0].Stmt, ex.Gold) {
			chessOK++
		}
	}
	if chessOK <= resOK {
		t.Fatalf("chess must lead on science: chess=%d resdsql=%d", chessOK, resOK)
	}
}

func TestLLMStyleGapEMvsEX(t *testing.T) {
	bench := datasets.Spider()
	dev := bench.Dev[:200]
	m := MustByName("gpt-3.5-turbo")
	em, ex := 0, 0
	for _, e := range dev {
		db := bench.DB(e.DBName)
		c := m.Translate(bench.Name, e, db, 1)
		if eval.EM(c[0].Stmt, e.Gold) {
			em++
		}
		if eval.EX(db, c[0].Stmt, e.Gold) {
			ex++
		}
	}
	if em >= ex {
		t.Fatalf("LLM style gap missing: EM=%d EX=%d", em, ex)
	}
}

func TestCorruptorProducesValidDifferentSQL(t *testing.T) {
	bench := datasets.Spider()
	rng := rand.New(rand.NewSource(5))
	for _, ex := range bench.Dev[:60] {
		db := bench.DB(ex.DBName)
		c := &corruptor{db: db, rng: rng}
		mut := c.corrupt(ex.Gold)
		if _, err := sqleval.New(db).Exec(mut); err != nil {
			t.Fatalf("corruption does not execute: %s (%v)", mut.SQL(), err)
		}
		if sqlnorm.Canonical(mut) == sqlnorm.Canonical(ex.Gold) {
			t.Fatalf("corruption EM-equal to gold: %s", mut.SQL())
		}
	}
}

func TestStyleVariantPreservesExecution(t *testing.T) {
	bench := datasets.Spider()
	rng := rand.New(rand.NewSource(6))
	changed := 0
	for _, ex := range bench.Dev[:80] {
		db := bench.DB(ex.DBName)
		variant := styleVariant(db, ex.Gold, rng)
		if !eval.EX(db, variant, ex.Gold) {
			t.Fatalf("style variant changed execution: %s vs %s", variant.SQL(), ex.GoldSQL)
		}
		if variant.SQL() != ex.Gold.SQL() {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("style variants never fired")
	}
}

func TestDKDegradation(t *testing.T) {
	dk := datasets.SpiderDK()
	spider := datasets.Spider()
	m := MustByName("smbop")
	accOn := func(b *datasets.Benchmark, n int) float64 {
		dev := b.Dev
		if len(dev) > n {
			dev = dev[:n]
		}
		ok := 0
		for _, ex := range dev {
			db := b.DB(ex.DBName)
			if c := m.Translate(b.Name, ex, db, 1); eval.EX(db, c[0].Stmt, ex.Gold) {
				ok++
			}
		}
		return float64(ok) / float64(len(dev))
	}
	if accOn(dk, 60) >= accOn(spider, 120) {
		t.Fatal("DK must degrade smbop accuracy")
	}
}

func TestSampleRankDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	deep, shallow := 0, 0
	for i := 0; i < 2000; i++ {
		if sampleRank(rng, 7, 2.5) >= 4 {
			deep++
		}
		if sampleRank(rng, 7, 0) >= 4 {
			shallow++
		}
	}
	if deep <= shallow {
		t.Fatalf("decay must push gold deeper: deep=%d shallow=%d", deep, shallow)
	}
	if sampleRank(rng, 1, 1) != 0 {
		t.Fatal("n=1 must return 0")
	}
}
