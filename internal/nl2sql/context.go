package nl2sql

import (
	"context"

	"cyclesql/internal/datasets"
	"cyclesql/internal/storage"
)

// ContextModel is implemented by models whose beam can honor cancellation
// — a deployment translator is a remote inference, so an in-flight beam
// request should be abandonable when its example's budget dies (a
// per-example timeout, a SIGINT). It mirrors nli.ContextVerifier: models
// without real waits (the simulators) don't need it, TranslateContext
// below falls back to the plain synchronous Translate for them.
type ContextModel interface {
	Model
	// TranslateContext is Translate with cancellation: it returns the
	// context's error — and no candidates — as soon as the context is done.
	TranslateContext(ctx context.Context, benchmark string, ex datasets.Example, db *storage.Database, k int) ([]Candidate, error)
}

// TranslateContext runs a model's beam under a context: a context already
// done short-circuits before any model work, a ContextModel is handed the
// context to honor mid-inference, and any other Model runs its plain
// synchronous Translate (it has no waits worth interrupting).
func TranslateContext(ctx context.Context, m Model, benchmark string, ex datasets.Example, db *storage.Database, k int) ([]Candidate, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cm, ok := m.(ContextModel); ok {
		return cm.TranslateContext(ctx, benchmark, ex, db, k)
	}
	return m.Translate(benchmark, ex, db, k), nil
}
