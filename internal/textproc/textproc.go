// Package textproc supplies the lightweight NLP primitives the NLI
// verifier and the user-study simulator build on: tokenization, a small
// suffix stemmer, stopword filtering, number extraction, and synonym
// canonicalization for SQL-flavored vocabulary ("how many" ~ "count").
package textproc

import (
	"strconv"
	"strings"
	"unicode"
)

// Tokenize lower-cases and splits text into word and number tokens,
// treating punctuation as boundaries but keeping decimal numbers intact.
func Tokenize(text string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	runes := []rune(strings.ToLower(text))
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_':
			cur.WriteRune(r)
		case r == '.' && cur.Len() > 0 && i+1 < len(runes) && unicode.IsDigit(runes[i+1]) && isNumber(cur.String()):
			cur.WriteRune(r) // decimal point inside a number
		case r == '\'' && cur.Len() > 0 && i+1 < len(runes) && unicode.IsLetter(runes[i+1]):
			// Contractions and possessives fold into the word (don't, iraq's).
		default:
			flush()
		}
	}
	flush()
	return toks
}

func isNumber(s string) bool {
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

// stopwords are high-frequency function words excluded from overlap
// features.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "of": true, "to": true, "in": true,
	"is": true, "are": true, "was": true, "were": true, "be": true,
	"for": true, "with": true, "and": true, "or": true, "that": true,
	"this": true, "there": true, "here": true, "by": true, "on": true,
	"at": true, "as": true, "it": true, "its": true, "do": true, "does": true,
	"what": true, "which": true, "who": true, "whose": true, "where": true,
	"show": true, "list": true, "give": true, "return": true, "find": true,
	"me": true, "all": true, "each": true, "query": true, "result": true,
	"set": true, "row": true, "rows": true, "column": true, "columns": true,
	"please": true, "us": true,
}

// IsStopword reports whether tok is a stopword.
func IsStopword(tok string) bool { return stopwords[tok] }

// ContentTokens tokenizes and drops stopwords.
func ContentTokens(text string) []string {
	toks := Tokenize(text)
	out := toks[:0:0]
	for _, t := range toks {
		if !stopwords[t] {
			out = append(out, t)
		}
	}
	return out
}

// Stem applies a small suffix stemmer (plural and -ing/-ed forms), enough
// to align "flights" with "flight" and "ranked" with "rank".
func Stem(tok string) string {
	n := len(tok)
	switch {
	case n > 4 && strings.HasSuffix(tok, "ies"):
		return tok[:n-3] + "y"
	case n > 4 && strings.HasSuffix(tok, "ing"):
		return tok[:n-3]
	case n > 3 && strings.HasSuffix(tok, "ed") && !strings.HasSuffix(tok, "eed"):
		return tok[:n-2]
	case n > 3 && strings.HasSuffix(tok, "es") && !strings.HasSuffix(tok, "ses"):
		return tok[:n-2]
	case n > 2 && strings.HasSuffix(tok, "s") && !strings.HasSuffix(tok, "ss") && !strings.HasSuffix(tok, "us"):
		return tok[:n-1]
	default:
		return tok
	}
}

// StemAll stems every token.
func StemAll(toks []string) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = Stem(t)
	}
	return out
}

// canonical groups SQL-flavored synonym classes onto one representative,
// so "how many" in a question aligns with "count"/"total" in explanations.
var canonical = map[string]string{
	"many": "count", "number": "count", "count": "count", "total": "count",
	"amount": "count", "sum": "sum", "average": "avg", "avg": "avg",
	"mean": "avg", "maximum": "max", "max": "max", "highest": "max",
	"largest": "max", "most": "max", "greatest": "max", "biggest": "max",
	"top": "max", "minimum": "min", "min": "min", "lowest": "min",
	"smallest": "min", "least": "min", "fewest": "min",
	"greater": "greater", "more": "greater", "above": "greater",
	"over": "greater", "exceeds": "greater", "bigger": "greater",
	"less": "less", "fewer": "less", "below": "less", "under": "less",
	"equal": "equal", "equals": "equal", "exactly": "equal", "same": "equal",
	"not": "not", "no": "not", "except": "not", "without": "not",
	"distinct": "distinct", "different": "distinct", "unique": "distinct",
	"between": "between", "both": "both", "also": "both",
	"missing": "null", "null": "null", "empty": "null",
}

// Canonical maps a (stemmed) token onto its synonym-class representative,
// or returns the token unchanged.
func Canonical(tok string) string {
	if c, ok := canonical[tok]; ok {
		return c
	}
	return tok
}

// phrasePairs maps two-token comparison idioms onto their canonical
// operator class before stopword removal would destroy them ("at least"
// must become "greater", not the aggregate class of "least").
var phrasePairs = map[[2]string]string{
	{"at", "least"}:     "greater",
	{"at", "most"}:      "less",
	{"more", "than"}:    "greater",
	{"greater", "than"}: "greater",
	{"larger", "than"}:  "greater",
	{"bigger", "than"}:  "greater",
	{"less", "than"}:    "less",
	{"fewer", "than"}:   "less",
	{"smaller", "than"}: "less",
	{"lower", "than"}:   "less",
	{"how", "many"}:     "count",
	{"how", "much"}:     "sum",
	{"equal", "to"}:     "equal",
	{"or", "more"}:      "greater",
	{"or", "fewer"}:     "less",
	{"up", "to"}:        "less",
}

// ApplyPhrases rewrites two-token idioms in place, returning a new slice
// where each matched pair collapses onto its class token.
func ApplyPhrases(toks []string) []string {
	out := make([]string, 0, len(toks))
	for i := 0; i < len(toks); i++ {
		if i+1 < len(toks) {
			if repl, ok := phrasePairs[[2]string{toks[i], toks[i+1]}]; ok {
				out = append(out, repl)
				i++
				continue
			}
		}
		out = append(out, toks[i])
	}
	return out
}

// Numbers extracts the numeric tokens of a text as canonical strings
// (integral floats collapse onto integers).
func Numbers(text string) []string {
	var out []string
	for _, t := range Tokenize(text) {
		if f, err := strconv.ParseFloat(t, 64); err == nil {
			if f == float64(int64(f)) {
				out = append(out, strconv.FormatInt(int64(f), 10))
			} else {
				out = append(out, strconv.FormatFloat(f, 'g', -1, 64))
			}
		}
	}
	return out
}

// Bigrams returns adjacent token pairs joined with '_'.
func Bigrams(toks []string) []string {
	if len(toks) < 2 {
		return nil
	}
	out := make([]string, 0, len(toks)-1)
	for i := 0; i+1 < len(toks); i++ {
		out = append(out, toks[i]+"_"+toks[i+1])
	}
	return out
}

// Jaccard computes set overlap of two token lists.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	sa := map[string]bool{}
	for _, t := range a {
		sa[t] = true
	}
	inter := 0
	sb := map[string]bool{}
	for _, t := range b {
		if sb[t] {
			continue
		}
		sb[t] = true
		if sa[t] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Recall computes |a ∩ b| / |a|: how much of a is covered by b.
func Recall(a, b []string) float64 {
	if len(a) == 0 {
		return 0
	}
	sb := map[string]bool{}
	for _, t := range b {
		sb[t] = true
	}
	sa := map[string]bool{}
	hit := 0
	for _, t := range a {
		if sa[t] {
			continue
		}
		sa[t] = true
		if sb[t] {
			hit++
		}
	}
	return float64(hit) / float64(len(sa))
}
