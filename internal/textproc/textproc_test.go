package textproc

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("How many flights, at 8:30, cost $12.5?")
	want := []string{"how", "many", "flights", "at", "8", "30", "cost", "12.5"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v", got)
	}
}

func TestTokenizeContractions(t *testing.T) {
	got := Tokenize("Iraq's don't")
	want := []string{"iraqs", "dont"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v", got)
	}
}

func TestContentTokensDropsStopwords(t *testing.T) {
	got := ContentTokens("Show the names of the countries")
	for _, tok := range got {
		if IsStopword(tok) {
			t.Fatalf("stopword survived: %q in %v", tok, got)
		}
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"flights": "flight", "cities": "city", "ranked": "rank",
		"running": "runn", "classes": "classe", "bus": "bus", "miss": "miss",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q want %q", in, got, want)
		}
	}
}

func TestCanonicalClasses(t *testing.T) {
	if Canonical("many") != "count" || Canonical("highest") != "max" || Canonical("above") != "greater" {
		t.Fatal("canonical classes broken")
	}
	if Canonical("flight") != "flight" {
		t.Fatal("unknown tokens must pass through")
	}
}

func TestApplyPhrases(t *testing.T) {
	got := ApplyPhrases([]string{"visits", "at", "least", "14"})
	want := []string{"visits", "greater", "14"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ApplyPhrases = %v", got)
	}
	got = ApplyPhrases([]string{"how", "many", "pets"})
	if got[0] != "count" {
		t.Fatalf("how many -> %v", got)
	}
}

func TestNumbers(t *testing.T) {
	got := Numbers("population over 80000 or 2.0 or 1.5")
	want := []string{"80000", "2", "1.5"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Numbers = %v", got)
	}
}

func TestBigrams(t *testing.T) {
	got := Bigrams([]string{"a", "b", "c"})
	want := []string{"a_b", "b_c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Bigrams = %v", got)
	}
	if Bigrams([]string{"x"}) != nil {
		t.Fatal("single token has no bigrams")
	}
}

func TestJaccardAndRecall(t *testing.T) {
	a := []string{"x", "y"}
	b := []string{"y", "z"}
	if j := Jaccard(a, b); j != 1.0/3.0 {
		t.Fatalf("Jaccard = %v", j)
	}
	if r := Recall(a, b); r != 0.5 {
		t.Fatalf("Recall = %v", r)
	}
	if Jaccard(nil, nil) != 0 || Recall(nil, b) != 0 {
		t.Fatal("empty-input handling broken")
	}
}

func TestJaccardSymmetryProperty(t *testing.T) {
	f := func(a, b []string) bool { return Jaccard(a, b) == Jaccard(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecallBoundsProperty(t *testing.T) {
	f := func(a, b []string) bool {
		r := Recall(a, b)
		return r >= 0 && r <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRecallSelfIsOne(t *testing.T) {
	f := func(a []string) bool {
		if len(a) == 0 {
			return true
		}
		return Recall(a, a) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
