package sqloracle

import (
	"sort"
	"strings"

	"cyclesql/internal/sqlast"
)

// CacheKey is the seed plan-cache key: deep-clone the statement,
// mutate the clone into canonical form (identifier case folding,
// literal-first comparison orientation, conjunct sorting), render it
// with sqlast's string-concatenating renderer, then append the
// original-case projection labels. Dozens to hundreds of allocations
// per call — which is exactly why sqlnorm.CacheKey re-renders the same
// string in one pass instead.
//
// Deprecated: test oracle only — production code uses sqlnorm.CacheKey,
// which must produce byte-identical output (enforced by the
// differential suites).
func CacheKey(stmt *sqlast.SelectStmt) string {
	out := stmt.Clone()
	for _, core := range out.Cores {
		cacheNormalizeCore(core)
	}
	var b strings.Builder
	b.WriteString(out.SQL())
	for _, core := range stmt.Cores {
		for _, it := range core.Items {
			b.WriteByte('\x00')
			switch {
			case it.Alias != "":
				b.WriteString(it.Alias)
			case it.Star:
				// Star expansion labels come from the (already lowered)
				// stored column names, so stars are case-independent.
			default:
				b.WriteString(sqlast.ExprSQL(it.Expr))
			}
		}
	}
	return b.String()
}

func cacheNormalizeCore(core *sqlast.SelectCore) {
	foldIdentifierCase(core)
	orientComparisons(core)
	// Normalize nested statements before sorting the outer conjuncts: the
	// sort compares rendered SQL, so subqueries must already be in their
	// canonical spelling or case-variant subqueries would order conjuncts
	// differently and miss the shared key.
	for _, sub := range core.Subqueries() {
		for _, c := range sub.Cores {
			cacheNormalizeCore(c)
		}
	}
	conj := sqlast.Conjuncts(core.Where)
	sort.SliceStable(conj, func(i, j int) bool {
		return sqlast.ExprSQL(conj[i]) < sqlast.ExprSQL(conj[j])
	})
	core.Where = sqlast.FromAnd(conj)
}

// flippedCmp maps each comparison operator to its operand-swapped spelling.
var flippedCmp = map[string]string{
	"=": "=", "!=": "!=", "<>": "<>",
	"<": ">", "<=": ">=", ">": "<", ">=": "<=",
}

func orientComparisons(core *sqlast.SelectCore) {
	orient := func(e sqlast.Expr) {
		sqlast.WalkExpr(e, func(e sqlast.Expr) bool {
			b, ok := e.(*sqlast.Binary)
			if !ok {
				return true
			}
			flipped, cmp := flippedCmp[b.Op]
			if !cmp {
				return true
			}
			if _, lLit := b.L.(*sqlast.Literal); !lLit {
				return true
			}
			if _, rLit := b.R.(*sqlast.Literal); rLit {
				return true // constant comparison: nothing to orient around
			}
			b.L, b.R, b.Op = b.R, b.L, flipped
			return true
		})
	}
	orient(core.Where)
	orient(core.Having)
	if core.From != nil {
		for i := range core.From.Joins {
			orient(core.From.Joins[i].On)
		}
	}
}

func foldIdentifierCase(core *sqlast.SelectCore) {
	lower := func(e sqlast.Expr) {
		sqlast.WalkExpr(e, func(e sqlast.Expr) bool {
			if cr, ok := e.(*sqlast.ColumnRef); ok {
				cr.Table = strings.ToLower(cr.Table)
				cr.Column = strings.ToLower(cr.Column)
			}
			return true
		})
	}
	if core.From != nil {
		core.From.Base.Name = strings.ToLower(core.From.Base.Name)
		core.From.Base.Alias = strings.ToLower(core.From.Base.Alias)
		for i := range core.From.Joins {
			j := &core.From.Joins[i]
			j.Table.Name = strings.ToLower(j.Table.Name)
			j.Table.Alias = strings.ToLower(j.Table.Alias)
			lower(j.On)
		}
	}
	for i := range core.Items {
		lower(core.Items[i].Expr)
		core.Items[i].Alias = strings.ToLower(core.Items[i].Alias)
		core.Items[i].TableStar = strings.ToLower(core.Items[i].TableStar)
	}
	lower(core.Where)
	lower(core.Having)
	for _, g := range core.GroupBy {
		lower(g)
	}
	for i := range core.OrderBy {
		lower(core.OrderBy[i].Expr)
	}
}
