package sqloracle

import (
	"fmt"
	"strings"

	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqllex"
	"cyclesql/internal/sqltypes"
)

// Parse is the seed parser: one heap allocation per AST node, the token
// slice materialized up front by the seed lexer.
//
// Deprecated: test oracle only — production code uses sqlparse.Parse.
func Parse(input string) (*sqlast.SelectStmt, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, input: input}
	stmt, err := p.parseSelectStmt()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, p.errorf("trailing input starting at %q", p.peek().Text)
	}
	return stmt, nil
}

type parser struct {
	toks  []sqllex.Token
	pos   int
	input string
}

func (p *parser) peek() sqllex.Token { return p.toks[p.pos] }
func (p *parser) atEOF() bool        { return p.peek().Kind == sqllex.TokEOF }
func (p *parser) save() int          { return p.pos }
func (p *parser) restore(mark int)   { p.pos = mark }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: %s (at offset %d in %q)", fmt.Sprintf(format, args...), p.peek().Pos, p.input)
}

func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.Kind == sqllex.TokKeyword && t.Text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %q", kw, p.peek().Text)
	}
	return nil
}

func (p *parser) accept(op string) bool {
	t := p.peek()
	if t.Kind == sqllex.TokOp && t.Text == op {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(op string) error {
	if !p.accept(op) {
		return p.errorf("expected %q, found %q", op, p.peek().Text)
	}
	return nil
}

func (p *parser) parseSelectStmt() (*sqlast.SelectStmt, error) {
	core, err := p.parseSelectCore()
	if err != nil {
		return nil, err
	}
	stmt := sqlast.Wrap(core)
	for {
		var op sqlast.CompoundOp
		switch {
		case p.acceptKeyword("UNION"):
			if p.acceptKeyword("ALL") {
				op = sqlast.UnionAll
			} else {
				op = sqlast.Union
			}
		case p.acceptKeyword("INTERSECT"):
			op = sqlast.Intersect
		case p.acceptKeyword("EXCEPT"):
			op = sqlast.Except
		default:
			return stmt, nil
		}
		rhs, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		stmt.Cores = append(stmt.Cores, rhs)
		stmt.Ops = append(stmt.Ops, op)
	}
}

func (p *parser) parseSelectCore() (*sqlast.SelectCore, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	core := &sqlast.SelectCore{}
	if p.acceptKeyword("DISTINCT") {
		core.Distinct = true
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		core.Items = append(core.Items, item)
		if !p.accept(",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		from, err := p.parseFrom()
		if err != nil {
			return nil, err
		}
		core.From = from
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			core.GroupBy = append(core.GroupBy, e)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := sqlast.OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			core.OrderBy = append(core.OrderBy, item)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		core.Limit = &n
		if p.acceptKeyword("OFFSET") {
			o, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			core.Offset = &o
		} else if p.accept(",") {
			cnt, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			core.Offset = core.Limit
			core.Limit = &cnt
		}
	}
	return core, nil
}

func (p *parser) parseInt() (int64, error) {
	t := p.peek()
	if t.Kind != sqllex.TokNumber {
		return 0, p.errorf("expected integer, found %q", t.Text)
	}
	p.pos++
	v := sqltypes.ParseLiteral(t.Text, false)
	if v.Kind() != sqltypes.KindInt {
		return 0, p.errorf("expected integer, found %q", t.Text)
	}
	return v.Int(), nil
}

func (p *parser) parseSelectItem() (sqlast.SelectItem, error) {
	if p.accept("*") {
		return sqlast.SelectItem{Star: true}, nil
	}
	mark := p.save()
	if t := p.peek(); t.Kind == sqllex.TokIdent {
		p.pos++
		if p.accept(".") && p.accept("*") {
			return sqlast.SelectItem{Star: true, TableStar: t.Text}, nil
		}
		p.restore(mark)
	}
	e, err := p.parseExpr()
	if err != nil {
		return sqlast.SelectItem{}, err
	}
	item := sqlast.SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.peek()
		if t.Kind != sqllex.TokIdent && t.Kind != sqllex.TokKeyword {
			return item, p.errorf("expected alias after AS, found %q", t.Text)
		}
		p.pos++
		item.Alias = t.Text
	} else if t := p.peek(); t.Kind == sqllex.TokIdent {
		p.pos++
		item.Alias = t.Text
	}
	return item, nil
}

func (p *parser) parseFrom() (*sqlast.FromClause, error) {
	base, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	from := &sqlast.FromClause{Base: base}
	for {
		var jt sqlast.JoinType
		switch {
		case p.acceptKeyword("JOIN"):
			jt = sqlast.InnerJoin
		case p.acceptKeyword("INNER"):
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = sqlast.InnerJoin
		case p.acceptKeyword("LEFT"):
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = sqlast.LeftJoin
		case p.accept(","):
			jt = sqlast.InnerJoin
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			from.Joins = append(from.Joins, sqlast.Join{Type: jt, Table: ref})
			continue
		default:
			return from, nil
		}
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		j := sqlast.Join{Type: jt, Table: ref}
		if p.acceptKeyword("ON") {
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = on
		}
		from.Joins = append(from.Joins, j)
	}
}

func (p *parser) parseTableRef() (sqlast.TableRef, error) {
	if p.accept("(") {
		sub, err := p.parseSelectStmt()
		if err != nil {
			return sqlast.TableRef{}, err
		}
		if err := p.expect(")"); err != nil {
			return sqlast.TableRef{}, err
		}
		ref := sqlast.TableRef{Sub: sub}
		ref.Alias = p.parseOptionalAlias()
		return ref, nil
	}
	t := p.peek()
	if t.Kind != sqllex.TokIdent {
		return sqlast.TableRef{}, p.errorf("expected table name, found %q", t.Text)
	}
	p.pos++
	ref := sqlast.TableRef{Name: t.Text}
	ref.Alias = p.parseOptionalAlias()
	return ref, nil
}

func (p *parser) parseOptionalAlias() string {
	if p.acceptKeyword("AS") {
		t := p.peek()
		if t.Kind == sqllex.TokIdent {
			p.pos++
			return t.Text
		}
		return ""
	}
	if t := p.peek(); t.Kind == sqllex.TokIdent {
		p.pos++
		return t.Text
	}
	return ""
}

func (p *parser) parseExpr() (sqlast.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (sqlast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &sqlast.Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (sqlast.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &sqlast.Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (sqlast.Expr, error) {
	if p.acceptKeyword("NOT") {
		if p.peek().Kind == sqllex.TokKeyword && p.peek().Text == "EXISTS" {
			e, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			if ex, ok := e.(*sqlast.ExistsExpr); ok {
				ex.Not = true
				return ex, nil
			}
			return &sqlast.Unary{Op: "NOT", X: e}, nil
		}
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &sqlast.Unary{Op: "NOT", X: x}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (sqlast.Expr, error) {
	if p.peek().Kind == sqllex.TokKeyword && p.peek().Text == "EXISTS" {
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		sub, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &sqlast.ExistsExpr{Sub: sub}, nil
	}
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	not := false
	if p.peek().Kind == sqllex.TokKeyword && p.peek().Text == "NOT" {
		nxt := p.toks[p.pos+1]
		if nxt.Kind == sqllex.TokKeyword && (nxt.Text == "IN" || nxt.Text == "LIKE" || nxt.Text == "BETWEEN") {
			p.pos++
			not = true
		}
	}
	switch {
	case p.acceptKeyword("IN"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		in := &sqlast.InExpr{X: l, Not: not}
		if p.peek().Kind == sqllex.TokKeyword && p.peek().Text == "SELECT" {
			sub, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			in.Sub = sub
		} else {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				in.List = append(in.List, e)
				if !p.accept(",") {
					break
				}
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return in, nil
	case p.acceptKeyword("LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &sqlast.LikeExpr{X: l, Not: not, Pattern: pat}, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &sqlast.BetweenExpr{X: l, Not: not, Lo: lo, Hi: hi}, nil
	case p.acceptKeyword("IS"):
		isNot := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &sqlast.IsNullExpr{X: l, Not: isNot}, nil
	}
	for _, op := range []string{"=", "!=", "<>", "<=", ">=", "<", ">"} {
		if p.accept(op) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if op == "<>" {
				op = "!="
			}
			return &sqlast.Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (sqlast.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept("+"):
			op = "+"
		case p.accept("-"):
			op = "-"
		default:
			return l, nil
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &sqlast.Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (sqlast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept("*"):
			op = "*"
		case p.accept("/"):
			op = "/"
		case p.accept("%"):
			op = "%"
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &sqlast.Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (sqlast.Expr, error) {
	if p.accept("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(*sqlast.Literal); ok && lit.Value.IsNumeric() {
			if lit.Value.Kind() == sqltypes.KindInt {
				return sqlast.Int(-lit.Value.Int()), nil
			}
			return sqlast.Lit(sqltypes.NewFloat(-lit.Value.Float())), nil
		}
		return &sqlast.Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (sqlast.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case sqllex.TokNumber:
		p.pos++
		return sqlast.Lit(sqltypes.ParseLiteral(t.Text, false)), nil
	case sqllex.TokString:
		p.pos++
		return sqlast.Lit(sqltypes.NewText(t.Text)), nil
	case sqllex.TokKeyword:
		switch t.Text {
		case "NULL":
			p.pos++
			return sqlast.Lit(sqltypes.Null()), nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX", "ABS":
			p.pos++
			return p.parseFuncCall(t.Text)
		case "SELECT":
			return nil, p.errorf("bare SELECT in expression position; parenthesize subqueries")
		}
		return nil, p.errorf("unexpected keyword %q", t.Text)
	case sqllex.TokIdent:
		p.pos++
		if p.accept(".") {
			nt := p.peek()
			if nt.Kind == sqllex.TokOp && nt.Text == "*" {
				p.pos++
				return &sqlast.ColumnRef{Table: t.Text, Column: "*"}, nil
			}
			if nt.Kind != sqllex.TokIdent && nt.Kind != sqllex.TokKeyword {
				return nil, p.errorf("expected column name after the dot following %q", t.Text)
			}
			p.pos++
			return &sqlast.ColumnRef{Table: t.Text, Column: nt.Text}, nil
		}
		return &sqlast.ColumnRef{Column: t.Text}, nil
	case sqllex.TokOp:
		if t.Text == "(" {
			p.pos++
			if p.peek().Kind == sqllex.TokKeyword && p.peek().Text == "SELECT" {
				sub, err := p.parseSelectStmt()
				if err != nil {
					return nil, err
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				return &sqlast.SubqueryExpr{Sub: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.Text == "*" {
			p.pos++
			return &sqlast.ColumnRef{Column: "*"}, nil
		}
	}
	return nil, p.errorf("unexpected token %q", t.Text)
}

func (p *parser) parseFuncCall(name string) (sqlast.Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	fc := &sqlast.FuncCall{Name: strings.ToUpper(name)}
	if p.acceptKeyword("DISTINCT") {
		fc.Distinct = true
	}
	if p.accept("*") {
		fc.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if cr, ok := e.(*sqlast.ColumnRef); ok && cr.Column == "*" {
				fc.Star = true
			} else {
				fc.Args = append(fc.Args, e)
			}
			if !p.accept(",") {
				break
			}
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return fc, nil
}
