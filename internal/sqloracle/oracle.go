// Package sqloracle preserves the seed SQL front end — the
// string-splitting lexer and node-allocating recursive-descent parser
// that shipped with the original reproduction — as a reference oracle
// for differential testing of the zero-allocation front end that
// replaced it (internal/sqllex, internal/sqlparse, sqlnorm.CacheKey).
//
// Nothing in this package is optimized and nothing in it may be used on
// a production path: every exported identifier carries a Deprecated
// marker, so the nodeprecated vetcycle analyzer rejects any non-test
// caller. The differential suites (internal/frontdiff, the FuzzLex /
// FuzzParse / FuzzCacheKey targets) compare this package's output
// bit-for-bit against the rewritten front end: deeply-equal ASTs,
// identical CacheKey strings, and identical ok/error verdicts.
//
// The code below is the seed implementation verbatim (modulo package
// plumbing). Do not fix bugs here without teaching the differential
// tests about the divergence first — the whole point of the oracle is
// that it does not drift.
package sqloracle

import (
	"fmt"
	"strings"
	"unicode"

	"cyclesql/internal/sqllex"
)

// keywords recognized by the dialect, as the seed lexer spelled them.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true,
	"JOIN": true, "INNER": true, "LEFT": true, "OUTER": true, "ON": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "LIKE": true,
	"BETWEEN": true, "IS": true, "NULL": true, "EXISTS": true,
	"UNION": true, "INTERSECT": true, "EXCEPT": true, "ALL": true,
	"DISTINCT": true, "ASC": true, "DESC": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true, "ABS": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
}

func isKeyword(s string) bool { return keywords[strings.ToUpper(s)] }

// Lex is the seed lexer: per-token string materialization via
// strings.Builder, keyword folding through strings.ToUpper, one token
// slice grown by append.
//
// Deprecated: test oracle only — production code uses sqllex.Lex.
func Lex(input string) ([]sqllex.Token, error) {
	var toks []sqllex.Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'' || c == '"' || c == '`':
			start := i
			quote := c
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == quote {
					if i+1 < n && input[i+1] == quote && quote == '\'' {
						sb.WriteByte(quote)
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqllex: unterminated string at offset %d", start)
			}
			kind := sqllex.TokString
			if quote == '`' || quote == '"' {
				kind = sqllex.TokIdent
			}
			toks = append(toks, sqllex.Token{Kind: kind, Text: sb.String(), Pos: start})
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(input[i+1])):
			start := i
			for i < n && (isDigit(input[i]) || input[i] == '.') {
				i++
			}
			if i < n && (input[i] == 'e' || input[i] == 'E') {
				j := i + 1
				if j < n && (input[j] == '+' || input[j] == '-') {
					j++
				}
				if j < n && isDigit(input[j]) {
					i = j
					for i < n && isDigit(input[i]) {
						i++
					}
				}
			}
			toks = append(toks, sqllex.Token{Kind: sqllex.TokNumber, Text: input[start:i], Pos: start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			if isKeyword(word) {
				toks = append(toks, sqllex.Token{Kind: sqllex.TokKeyword, Text: strings.ToUpper(word), Pos: start})
			} else {
				toks = append(toks, sqllex.Token{Kind: sqllex.TokIdent, Text: word, Pos: start})
			}
		default:
			start := i
			var op string
			switch c {
			case '<':
				if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
					op = input[i : i+2]
				} else {
					op = "<"
				}
			case '>':
				if i+1 < n && input[i+1] == '=' {
					op = ">="
				} else {
					op = ">"
				}
			case '!':
				if i+1 < n && input[i+1] == '=' {
					op = "!="
				} else {
					return nil, fmt.Errorf("sqllex: unexpected '!' at offset %d", i)
				}
			case '=', '+', '-', '*', '/', '(', ')', ',', '.', ';', '%':
				op = string(c)
			default:
				return nil, fmt.Errorf("sqllex: unexpected byte %q at offset %d", c, i)
			}
			i = start + len(op)
			toks = append(toks, sqllex.Token{Kind: sqllex.TokOp, Text: op, Pos: start})
		}
	}
	toks = append(toks, sqllex.Token{Kind: sqllex.TokEOF, Pos: n})
	return toks, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '$' || unicode.IsLetter(rune(c)) || isDigit(c)
}
