package storage

import (
	"sync"
	"testing"

	"cyclesql/internal/schema"
	"cyclesql/internal/sqltypes"
)

func indexDB(t *testing.T) *Database {
	t.Helper()
	s := &schema.Schema{
		Name: "idx",
		Tables: []*schema.Table{
			{Name: "Item", Columns: []schema.Column{
				{Name: "id", Type: sqltypes.KindInt, PrimaryKey: true},
				{Name: "tag", Type: sqltypes.KindText},
				{Name: "score", Type: sqltypes.KindFloat},
			}},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(s)
	db.MustInsert("Item", sqltypes.NewInt(1), sqltypes.NewText("a"), sqltypes.NewFloat(2.0))
	db.MustInsert("Item", sqltypes.NewInt(2), sqltypes.NewText("b"), sqltypes.NewFloat(2.5))
	db.MustInsert("Item", sqltypes.NewInt(3), sqltypes.Null(), sqltypes.NewFloat(2.0))
	db.MustInsert("Item", sqltypes.NewInt(4), sqltypes.NewText("a"), sqltypes.Null())
	return db
}

func lookupVal(db *Database, table string, col int, v sqltypes.Value) []int32 {
	key, ok := v.AppendCompareKey(nil)
	if !ok {
		return nil
	}
	return db.Index(table, col).Lookup(key)
}

func TestIndexLookup(t *testing.T) {
	db := indexDB(t)
	if got := lookupVal(db, "Item", 1, sqltypes.NewText("a")); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("tag=a rows: %v", got)
	}
	if got := lookupVal(db, "Item", 1, sqltypes.NewText("missing")); len(got) != 0 {
		t.Fatalf("missing key rows: %v", got)
	}
	// Numerics bucket by Compare equality: INTEGER 2 probes REAL 2.0.
	if got := lookupVal(db, "Item", 2, sqltypes.NewInt(2)); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("score=2 rows: %v", got)
	}
	if db.Index("Item", 1).Distinct() != 2 {
		t.Fatalf("distinct tags: %d", db.Index("Item", 1).Distinct())
	}
}

func TestIndexSkipsNulls(t *testing.T) {
	db := indexDB(t)
	ix := db.Index("Item", 1)
	total := 0
	for _, v := range []string{"a", "b"} {
		total += len(lookupVal(db, "Item", 1, sqltypes.NewText(v)))
	}
	if total != 3 {
		t.Fatalf("non-NULL indexed rows: %d", total)
	}
	// A NULL probe key must match nothing (= is NULL-rejecting).
	if _, ok := sqltypes.Null().AppendCompareKey(nil); ok {
		t.Fatal("NULL must not encode to a probe key")
	}
	_ = ix
}

func TestIndexBoundsAndUnknowns(t *testing.T) {
	db := indexDB(t)
	if db.Index("Ghost", 0) != nil {
		t.Fatal("unknown table must have no index")
	}
	if db.Index("Item", -1) != nil || db.Index("Item", 99) != nil {
		t.Fatal("out-of-range columns must have no index")
	}
}

func TestIndexMaintainedOnInsert(t *testing.T) {
	db := indexDB(t)
	if got := lookupVal(db, "Item", 1, sqltypes.NewText("b")); len(got) != 1 {
		t.Fatalf("tag=b rows: %v", got)
	}
	if !db.HasIndex("Item", 1) {
		t.Fatal("index should exist after first probe")
	}
	db.MustInsert("Item", sqltypes.NewInt(5), sqltypes.NewText("b"), sqltypes.NewFloat(9))
	if !db.HasIndex("Item", 1) {
		t.Fatal("insert must maintain the built index, not drop it")
	}
	if got := lookupVal(db, "Item", 1, sqltypes.NewText("b")); len(got) != 2 || got[1] != 4 {
		t.Fatalf("tag=b rows after insert: %v", got)
	}
}

func TestIndexInvalidatedOnMutate(t *testing.T) {
	db := indexDB(t)
	if got := lookupVal(db, "Item", 1, sqltypes.NewText("a")); len(got) != 2 {
		t.Fatalf("tag=a rows: %v", got)
	}
	db.Mutate(func(table string, row sqltypes.Row) {
		if row[1].Text() == "a" {
			row[1] = sqltypes.NewText("z")
		}
	})
	if db.HasIndex("Item", 1) {
		t.Fatal("mutate must drop built indexes")
	}
	if got := lookupVal(db, "Item", 1, sqltypes.NewText("a")); len(got) != 0 {
		t.Fatalf("stale tag=a rows after mutate: %v", got)
	}
	if got := lookupVal(db, "Item", 1, sqltypes.NewText("z")); len(got) != 2 {
		t.Fatalf("tag=z rows after mutate: %v", got)
	}
}

func TestIndexCloneIsolation(t *testing.T) {
	db := indexDB(t)
	if got := lookupVal(db, "Item", 0, sqltypes.NewInt(1)); len(got) != 1 {
		t.Fatalf("id=1 rows: %v", got)
	}
	cp := db.Clone()
	if cp.HasIndex("Item", 0) {
		t.Fatal("clone must start with no indexes")
	}
	cp.Mutate(func(table string, row sqltypes.Row) {
		if row[0].Int() == 1 {
			row[0] = sqltypes.NewInt(100)
		}
	})
	if got := lookupVal(cp, "Item", 0, sqltypes.NewInt(100)); len(got) != 1 {
		t.Fatalf("clone id=100 rows: %v", got)
	}
	if got := lookupVal(db, "Item", 0, sqltypes.NewInt(1)); len(got) != 1 {
		t.Fatal("original index must be untouched by clone mutation")
	}
	if got := lookupVal(db, "Item", 0, sqltypes.NewInt(100)); len(got) != 0 {
		t.Fatal("original must not see clone values")
	}
}

func TestIndexRebuiltOnDirectAppend(t *testing.T) {
	db := indexDB(t)
	if got := lookupVal(db, "Item", 1, sqltypes.NewText("b")); len(got) != 1 {
		t.Fatalf("tag=b rows: %v", got)
	}
	// Appending to the relation behind the store's back (callers are told
	// not to, but the row-count check makes it safe anyway).
	db.Table("Item").Append(sqltypes.Row{sqltypes.NewInt(9), sqltypes.NewText("b"), sqltypes.Null()})
	if got := lookupVal(db, "Item", 1, sqltypes.NewText("b")); len(got) != 2 {
		t.Fatalf("tag=b rows after direct append: %v", got)
	}
}

// TestIndexConcurrentLazyBuild races many readers on cold indexes: every
// goroutine must observe a complete, correct index whether it built one
// itself or caught another goroutine's publication. Run under -race this
// is the regression gate for the guarded lazy build.
func TestIndexConcurrentLazyBuild(t *testing.T) {
	db := indexDB(t)
	// Precompute the probe key on the test goroutine: workers must not
	// call t.Fatal.
	keyA, ok := sqltypes.NewText("a").AppendCompareKey(nil)
	if !ok {
		t.Fatal("unexpected null key")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ix := db.Index("Item", 1)
				if got := len(ix.Lookup(keyA)); got != 2 {
					t.Errorf("tag=a rows = %d, want 2", got)
				}
				if ix2 := db.Index("item", 2); ix2.Distinct() != 2 {
					t.Errorf("score distinct = %d, want 2", ix2.Distinct())
				}
			}
		}()
	}
	wg.Wait()
	// All goroutines settled: exactly one index per column is published.
	if !db.HasIndex("Item", 1) || !db.HasIndex("Item", 2) {
		t.Fatal("indexes must remain published after concurrent builds")
	}
}
