package storage

import (
	"testing"

	"cyclesql/internal/schema"
	"cyclesql/internal/sqltypes"
)

func testDB() *Database {
	s := &schema.Schema{
		Name: "pets",
		Tables: []*schema.Table{
			{Name: "Pet", Columns: []schema.Column{
				{Name: "id", Type: sqltypes.KindInt, PrimaryKey: true},
				{Name: "name", Type: sqltypes.KindText},
				{Name: "weight", Type: sqltypes.KindFloat},
			}},
		},
	}
	return NewDatabase(s)
}

func TestInsertAndRead(t *testing.T) {
	db := testDB()
	if err := db.Insert("Pet", sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewText("Rex"), sqltypes.NewFloat(12.5)}); err != nil {
		t.Fatal(err)
	}
	rel := db.Table("pet") // case-insensitive
	if rel == nil || rel.NumRows() != 1 {
		t.Fatal("insert not visible")
	}
	if db.NumRows("Pet") != 1 || db.TotalRows() != 1 {
		t.Fatal("row counts wrong")
	}
}

func TestInsertArityCheck(t *testing.T) {
	db := testDB()
	if err := db.Insert("Pet", sqltypes.Row{sqltypes.NewInt(1)}); err == nil {
		t.Fatal("short row must fail")
	}
	if err := db.Insert("Ghost", sqltypes.Row{}); err == nil {
		t.Fatal("unknown table must fail")
	}
}

func TestInsertCoercion(t *testing.T) {
	db := testDB()
	// Int into REAL column widens; float into INT truncates.
	db.MustInsert("Pet", sqltypes.NewFloat(2.9), sqltypes.NewInt(42), sqltypes.NewInt(10))
	row := db.Table("Pet").Rows[0]
	if row[0].Kind() != sqltypes.KindInt || row[0].Int() != 2 {
		t.Fatalf("float->int coercion: %v", row[0])
	}
	if row[1].Kind() != sqltypes.KindText || row[1].Text() != "42" {
		t.Fatalf("int->text coercion: %v", row[1])
	}
	if row[2].Kind() != sqltypes.KindFloat || row[2].Float() != 10.0 {
		t.Fatalf("int->float coercion: %v", row[2])
	}
}

func TestNullPassesThroughCoercion(t *testing.T) {
	db := testDB()
	db.MustInsert("Pet", sqltypes.NewInt(1), sqltypes.Null(), sqltypes.Null())
	row := db.Table("Pet").Rows[0]
	if !row[1].IsNull() || !row[2].IsNull() {
		t.Fatal("NULL must survive coercion")
	}
}

func TestCloneIsolation(t *testing.T) {
	db := testDB()
	db.MustInsert("Pet", sqltypes.NewInt(1), sqltypes.NewText("Rex"), sqltypes.NewFloat(1))
	cp := db.Clone()
	cp.Table("Pet").Rows[0][1] = sqltypes.NewText("Mutated")
	cp.MustInsert("Pet", sqltypes.NewInt(2), sqltypes.NewText("Two"), sqltypes.NewFloat(2))
	if db.Table("Pet").Rows[0][1].Text() != "Rex" || db.NumRows("Pet") != 1 {
		t.Fatal("Clone must be deep")
	}
}

func TestMutateVisitsEveryRow(t *testing.T) {
	db := testDB()
	db.MustInsert("Pet", sqltypes.NewInt(1), sqltypes.NewText("a"), sqltypes.NewFloat(1))
	db.MustInsert("Pet", sqltypes.NewInt(2), sqltypes.NewText("b"), sqltypes.NewFloat(2))
	n := 0
	db.Mutate(func(table string, row sqltypes.Row) {
		n++
		row[2] = sqltypes.NewFloat(row[2].Float() * 2)
	})
	if n != 2 {
		t.Fatalf("visited %d rows", n)
	}
	if db.Table("Pet").Rows[1][2].Float() != 4 {
		t.Fatal("mutation not applied in place")
	}
}

func TestCoerceEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		in   sqltypes.Value
		want sqltypes.Kind
		eq   sqltypes.Value
	}{
		{"null into int", sqltypes.Null(), sqltypes.KindNull, sqltypes.Null()},
		{"negative float truncates toward zero", sqltypes.NewFloat(-2.9), sqltypes.KindInt, sqltypes.NewInt(-2)},
		{"integral float collapses", sqltypes.NewFloat(4.0), sqltypes.KindInt, sqltypes.NewInt(4)},
		{"int passes through int", sqltypes.NewInt(7), sqltypes.KindInt, sqltypes.NewInt(7)},
		{"text stays text in int column", sqltypes.NewText("12"), sqltypes.KindText, sqltypes.NewText("12")},
	}
	for _, c := range cases {
		got := coerce(c.in, sqltypes.KindInt)
		if got.Kind() != c.want || !sqltypes.Equal(got, c.eq) {
			t.Errorf("%s: coerce(%v, INT) = %v (%v)", c.name, c.in, got, got.Kind())
		}
	}
	if got := coerce(sqltypes.NewFloat(2.5), sqltypes.KindText); got.Kind() != sqltypes.KindText || got.Text() != "2.5" {
		t.Errorf("float->TEXT: %v (%v)", got, got.Kind())
	}
	if got := coerce(sqltypes.NewInt(-8), sqltypes.KindText); got.Kind() != sqltypes.KindText || got.Text() != "-8" {
		t.Errorf("int->TEXT: %v (%v)", got, got.Kind())
	}
	if got := coerce(sqltypes.Null(), sqltypes.KindText); !got.IsNull() {
		t.Errorf("NULL->TEXT: %v", got)
	}
	if got := coerce(sqltypes.NewInt(3), sqltypes.KindFloat); got.Kind() != sqltypes.KindFloat || got.Float() != 3.0 {
		t.Errorf("int->REAL: %v (%v)", got, got.Kind())
	}
	if got := coerce(sqltypes.Null(), sqltypes.KindFloat); !got.IsNull() {
		t.Errorf("NULL->REAL: %v", got)
	}
	if got := coerce(sqltypes.NewText("abc"), sqltypes.KindFloat); got.Kind() != sqltypes.KindText {
		t.Errorf("non-numeric text must pass through REAL column: %v", got)
	}
}

func TestMustInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustInsert must panic on bad data")
		}
	}()
	testDB().MustInsert("Pet", sqltypes.NewInt(1))
}
