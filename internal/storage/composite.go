// Composite (multi-column) hash indexes over stored tables. A
// CompositeIndex groups row positions by the Compare-consistent binary
// encoding of an ordered column tuple (sqltypes.Row.AppendCompareKeyCols) —
// the exact key the executor's generic hash join computes per execution for
// multi-key equi-joins, so a prebuilt composite index is a drop-in build
// side: same buckets, same NULL rejection (a NULL in any key column leaves
// the row unindexed, as multi-key equi-matching requires), and positions in
// scan order within each bucket so probe output order is unchanged.
//
// Composite indexes follow the same lifecycle as the other kinds: lazy
// double-checked build on first use, maintained on Insert, dropped on
// Mutate, never shared with clones, rebuilt when the row-count check
// detects direct Relation appends. Indexes are keyed by their exact column
// sequence — (a, b) and (b, a) are distinct indexes, because the probe
// side encodes its key columns in the same order.
package storage

import (
	"strconv"

	"cyclesql/internal/sqltypes"
)

// CompositeIndex is a hash index over an ordered tuple of columns.
type CompositeIndex struct {
	cols    []int
	rows    int // relation rows covered; mismatch triggers a rebuild
	nonNull int // indexed rows (a NULL in any key column skips the row)
	groups  map[string][]int32
}

// Lookup returns the positions of rows whose key columns encode to key, in
// ascending row order. The returned slice is shared; callers must not
// mutate it.
func (ix *CompositeIndex) Lookup(key []byte) []int32 { return ix.groups[string(key)] }

// Distinct returns the number of distinct fully-non-NULL key tuples. Like
// ColumnIndex.Distinct, it returns 0 both for an empty table and when
// every row holds a NULL in at least one key column; "no index exists" is
// a nil *CompositeIndex from Composite, never a zero here. A non-nil
// index with Distinct() == 0 proves no multi-key probe can match.
func (ix *CompositeIndex) Distinct() int { return len(ix.groups) }

// NonNull returns how many rows the index covers — rows whose every key
// column is non-NULL (the sum of all bucket sizes).
func (ix *CompositeIndex) NonNull() int { return ix.nonNull }

func buildCompositeIndex(rel *sqltypes.Relation, cols []int) *CompositeIndex {
	ix := &CompositeIndex{
		cols:   append([]int(nil), cols...),
		rows:   len(rel.Rows),
		groups: make(map[string][]int32, len(rel.Rows)),
	}
	var buf []byte
	for ri, row := range rel.Rows {
		key, ok := compositeKey(buf[:0], row, ix.cols)
		buf = key
		if !ok {
			continue
		}
		ix.groups[string(key)] = append(ix.groups[string(key)], int32(ri))
		ix.nonNull++
	}
	return ix
}

// add appends one freshly inserted row to the index.
func (ix *CompositeIndex) add(row sqltypes.Row, pos int) {
	ix.rows++
	key, ok := compositeKey(nil, row, ix.cols)
	if !ok {
		return
	}
	ix.groups[string(key)] = append(ix.groups[string(key)], int32(pos))
	ix.nonNull++
}

// compositeKey encodes the key columns of a row, reporting ok=false for
// NULL key values or rows too short to hold every column (direct Relation
// misuse).
func compositeKey(dst []byte, row sqltypes.Row, cols []int) ([]byte, bool) {
	for _, c := range cols {
		if c >= len(row) {
			return dst, false
		}
	}
	return row.AppendCompareKeyCols(dst, cols)
}

// colsKey renders a column sequence as the map key composite indexes are
// stored under.
func colsKey(cols []int) string {
	out := make([]byte, 0, 3*len(cols))
	for i, c := range cols {
		if i > 0 {
			out = append(out, ',')
		}
		out = strconv.AppendInt(out, int64(c), 10)
	}
	return string(out)
}

// Composite returns the hash index over an ordered column tuple of a
// table, building it on first use. It returns nil for unknown tables,
// out-of-range columns, or tuples shorter than two columns (single columns
// are served by Index). The lazy build is double-checked under the
// database lock, like the other index kinds.
func (db *Database) Composite(table string, cols []int) *CompositeIndex {
	rel := db.Table(table)
	if rel == nil || len(cols) < 2 {
		return nil
	}
	for _, c := range cols {
		if c < 0 || c >= len(rel.Columns) {
			return nil
		}
	}
	name := lowerName(table)
	ck := colsKey(cols)
	db.mu.RLock()
	ix := db.composite[name][ck]
	db.mu.RUnlock()
	if ix != nil && ix.rows == len(rel.Rows) {
		return ix
	}
	built := buildCompositeIndex(rel, cols)
	db.mu.Lock()
	defer db.mu.Unlock()
	if ix := db.composite[name][ck]; ix != nil && ix.rows == len(rel.Rows) {
		return ix
	}
	if db.composite == nil {
		db.composite = make(map[string]map[string]*CompositeIndex)
	}
	byCols := db.composite[name]
	if byCols == nil {
		byCols = make(map[string]*CompositeIndex)
		db.composite[name] = byCols
	}
	byCols[ck] = built
	return built
}

// HasComposite reports whether a built, up-to-date composite index exists
// for the exact column sequence. It never builds one.
func (db *Database) HasComposite(table string, cols []int) bool {
	rel := db.Table(table)
	if rel == nil {
		return false
	}
	db.mu.RLock()
	ix := db.composite[lowerName(table)][colsKey(cols)]
	db.mu.RUnlock()
	return ix != nil && ix.rows == len(rel.Rows)
}
