// Copy-on-write snapshots. A Snapshot is an immutable point-in-time view
// of a Database, pinned in O(tables): it shares the live store's relation
// pointers and every secondary index built so far, instead of deep-copying
// rows the way Clone does. The serving layer pins one snapshot per
// request, so concurrent reads never block on — and are never torn by —
// writers to the live store.
//
// The contract is epoch-versioned copy-on-write:
//
//   - Snapshot() bumps the database epoch, marks every table as shared,
//     and returns a frozen view. The view is itself a *Database (exposed
//     via Snapshot.DB), so executors, explainers, pipelines and the eval
//     metrics consume it unchanged; its lazy index builds work normally
//     under its own lock, and writes to it are rejected.
//   - The first write to a shared table (Insert, Mutate) copies that
//     table before touching it — Insert copies only the row-header slice
//     (it appends, never rewrites, so row contents stay shared), Mutate
//     deep-copies the rows it is about to rewrite — swaps the copy into
//     the live table map, drops the live store's indexes for that table
//     (the built index objects are shared with the view and must not be
//     mutated), and bumps the epoch. Later writes to the now-owned table
//     pay nothing extra until the next Snapshot re-shares it.
//
// So a snapshot pin costs O(tables + built indexes) regardless of row
// count, writers pay the copy only once per table per snapshot
// generation, and a store nobody snapshots behaves exactly as before —
// Insert maintains built indexes in place and never copies (the batch
// benchmark path is unchanged).
//
// Concurrency: Snapshot() and the writers serialize on the database lock,
// so a snapshot can be taken while writers are active and never captures
// a half-applied write. Reads through a Snapshot are safe concurrently
// with live writers by construction — writers replace shared relations
// instead of mutating them. Reads of the live *Database* itself still
// require exclusion from writers, exactly as before (the serving path
// only reads through snapshots).
package storage

import (
	"cyclesql/internal/sqltypes"
)

// Snapshot is an immutable point-in-time view of a Database. The zero
// value is not useful; obtain one from Database.Snapshot.
type Snapshot struct {
	db    *Database
	epoch uint64
}

// DB returns the snapshot's frozen database view. It satisfies every
// read-only *Database consumer — executors bind its relations into
// compiled plans, lazy index builds publish under the view's own lock —
// and rejects writes (Insert errors, Mutate panics). Clone still works
// and returns an ordinary mutable deep copy, which is how the test-suite
// distillation derives perturbed variants from a pinned snapshot.
func (s *Snapshot) DB() *Database { return s.db }

// Epoch returns the database epoch at which the snapshot was taken. The
// serving layer compares it against Database.Epoch() to decide whether a
// cached snapshot (and the warm executor caches keyed by its view) is
// still current.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Table returns the pinned relation for a table name, or nil.
func (s *Snapshot) Table(name string) *sqltypes.Relation { return s.db.Table(name) }

// NumRows returns the pinned row count of a table.
func (s *Snapshot) NumRows(table string) int { return s.db.NumRows(table) }

// TotalRows returns the pinned row count across all tables.
func (s *Snapshot) TotalRows() int { return s.db.TotalRows() }

// Epoch returns the database's current version: it advances on every
// snapshot and on every write (Insert, Mutate), so a reader holding a
// Snapshot knows its view is current exactly when the epochs match.
func (db *Database) Epoch() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.epoch
}

// Snapshot pins an immutable point-in-time view of the database in
// O(tables + built indexes) — no row is copied now or later on behalf of
// this snapshot; the first writer to touch a table pays a one-time
// row-header copy instead. Snapshots may be taken concurrently with
// writers (both serialize on the database lock) and any number of
// goroutines may read through the returned view. Snapshotting a frozen
// view returns the view itself — it is already immutable.
func (db *Database) Snapshot() *Snapshot {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.frozen {
		return &Snapshot{db: db, epoch: db.epoch}
	}
	db.epoch++
	view := &Database{
		Schema: db.Schema,
		frozen: true,
		epoch:  db.epoch,
		tables: make(map[string]*sqltypes.Relation, len(db.tables)),
		// The built index objects are immutable until the next write to
		// their table — and a write to a shared table drops the live
		// store's references instead of mutating them — so the view shares
		// them outright. Only the maps are copied: the view's own lazy
		// builds publish into them under the view's lock.
		indexes:   copyIndexMap(db.indexes),
		sorted:    copyIndexMap(db.sorted),
		composite: copyIndexMap(db.composite),
	}
	if db.shared == nil {
		db.shared = make(map[string]bool, len(db.tables))
	}
	for name, rel := range db.tables {
		view.tables[name] = rel
		db.shared[name] = true
	}
	return &Snapshot{db: view, epoch: db.epoch}
}

// copyIndexMap copies the two map levels of an index store; the index
// objects themselves are shared (immutable until their table is written,
// at which point the live store drops its references rather than mutate
// them).
func copyIndexMap[K comparable, V any](m map[string]map[K]V) map[string]map[K]V {
	if m == nil {
		return nil
	}
	out := make(map[string]map[K]V, len(m))
	for name, byKey := range m {
		cp := make(map[K]V, len(byKey))
		for k, v := range byKey {
			cp[k] = v
		}
		out[name] = cp
	}
	return out
}

// writeTableLocked returns the relation for table name ready to be
// written: if the table is pinned by a snapshot, it first swaps in a
// copy — row headers only when deepRows is false (Insert appends, never
// rewrites), full row clones when true (Mutate rewrites values in place)
// — and drops the live store's indexes for the table, since the built
// index objects are shared with the snapshot view. Must be called with
// db.mu held.
func (db *Database) writeTableLocked(name string, deepRows bool) *sqltypes.Relation {
	rel := db.tables[name]
	if rel == nil || !db.shared[name] {
		return rel
	}
	cp := &sqltypes.Relation{Columns: rel.Columns}
	if deepRows {
		cp.Rows = make([]sqltypes.Row, len(rel.Rows))
		for i, row := range rel.Rows {
			cp.Rows[i] = row.Clone()
		}
	} else {
		cp.Rows = append(make([]sqltypes.Row, 0, len(rel.Rows)+1), rel.Rows...)
	}
	db.tables[name] = cp
	delete(db.shared, name)
	delete(db.indexes, name)
	delete(db.sorted, name)
	delete(db.composite, name)
	return cp
}
