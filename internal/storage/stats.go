// Per-column statistics for the cost-based planner, derived entirely from
// the secondary indexes this package already maintains: the hash index
// supplies NonNull and Distinct, the sorted index supplies the Min/Max
// span. Deriving instead of counting separately means statistics inherit
// the full index lifecycle for free — maintained on Insert, invalidated
// with the indexes on Mutate, never shared with clones, and shared into
// copy-on-write snapshots until the first divergent write. There is no
// staleness to reason about: ColStats reads whatever the indexes say right
// now, and the indexes are exact.
package storage

import "cyclesql/internal/stats"

// ColStats returns planner statistics for one column of a table, building
// the column's hash and sorted indexes on first use (the same lazy
// double-checked build every probe uses — a query compiled with cost-based
// planning warms the very indexes its plan will probe). It reports
// ok=false only for unknown tables or out-of-range columns; an empty
// table or an all-NULL column yields ok=true with zero counts, which the
// estimators read as "equality selects nothing", not "unknown".
func (db *Database) ColStats(table string, col int) (stats.Column, bool) {
	rel := db.Table(table)
	if rel == nil || col < 0 || col >= len(rel.Columns) {
		return stats.Column{}, false
	}
	ix := db.Index(table, col)
	sx := db.Sorted(table, col)
	if ix == nil || sx == nil {
		return stats.Column{}, false
	}
	c := stats.Column{
		Rows:     len(rel.Rows),
		NonNull:  ix.NonNull(),
		Distinct: ix.Distinct(),
	}
	if minV, ok := sx.Min(); ok {
		maxV, _ := sx.Max()
		c.HasBounds = true
		c.Min, c.Max = minV, maxV
	}
	return c, true
}
