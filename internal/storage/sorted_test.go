package storage

import (
	"sync"
	"testing"

	"cyclesql/internal/schema"
	"cyclesql/internal/sqltypes"
)

// sortedDB builds a table mixing kinds within one column (score holds
// INTEGER, REAL and NULL; the id column stays unique) so the ordering
// tests cover cross-kind Compare semantics.
func sortedDB(t testing.TB) *Database {
	t.Helper()
	s := &schema.Schema{
		Name: "sortidx",
		Tables: []*schema.Table{
			{Name: "Item", Columns: []schema.Column{
				{Name: "id", Type: sqltypes.KindInt, PrimaryKey: true},
				{Name: "tag", Type: sqltypes.KindText},
				{Name: "score", Type: sqltypes.KindFloat},
			}},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(s)
	// Scan order: ties on score (2 vs 2.0), a NULL, text-vs-number mix in
	// tag, negative and fractional values.
	db.MustInsert("Item", sqltypes.NewInt(1), sqltypes.NewText("b"), sqltypes.NewFloat(2.0))
	db.MustInsert("Item", sqltypes.NewInt(2), sqltypes.NewText("a"), sqltypes.NewInt(2))
	db.MustInsert("Item", sqltypes.NewInt(3), sqltypes.Null(), sqltypes.NewFloat(-1.5))
	db.MustInsert("Item", sqltypes.NewInt(4), sqltypes.NewText("c"), sqltypes.Null())
	db.MustInsert("Item", sqltypes.NewInt(5), sqltypes.NewText("a"), sqltypes.NewFloat(3.25))
	return db
}

func positions(ix *SortedIndex) []int32 { return ix.Positions() }

func TestSortedIndexOrder(t *testing.T) {
	db := sortedDB(t)
	ix := db.Sorted("Item", 2) // score
	if ix == nil {
		t.Fatal("no sorted index")
	}
	// NULL first, then -1.5, then the 2 == 2.0 tie in scan order, then 3.25.
	want := []int32{3, 2, 0, 1, 4}
	got := positions(ix)
	if len(got) != len(want) {
		t.Fatalf("positions: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("positions = %v, want %v", got, want)
		}
	}
	if ix.NullCount() != 1 {
		t.Fatalf("null count = %d, want 1", ix.NullCount())
	}
}

func TestSortedIndexRange(t *testing.T) {
	db := sortedDB(t)
	ix := db.Sorted("Item", 2)
	v := func(f float64) *sqltypes.Value {
		val := sqltypes.NewFloat(f)
		return &val
	}
	span := func(lo, hi *sqltypes.Value, loIncl, hiIncl bool) []int32 {
		return ix.Range(lo, hi, loIncl, hiIncl)
	}
	// score >= 2: the 2/2.0 tie in scan order, then 3.25.
	if got := span(v(2), nil, true, false); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 4 {
		t.Fatalf("score >= 2: %v", got)
	}
	// score > 2 excludes both members of the tie.
	if got := span(v(2), nil, false, false); len(got) != 1 || got[0] != 4 {
		t.Fatalf("score > 2: %v", got)
	}
	// score < 2 excludes NULL (position 3) as every comparison does.
	if got := span(nil, v(2), false, false); len(got) != 1 || got[0] != 2 {
		t.Fatalf("score < 2: %v", got)
	}
	// BETWEEN-style two-sided span.
	if got := span(v(-2), v(2.5), true, true); len(got) != 3 {
		t.Fatalf("score between -2 and 2.5: %v", got)
	}
	// Inverted bounds are empty, not a panic.
	if got := span(v(5), v(1), true, true); len(got) != 0 {
		t.Fatalf("inverted span: %v", got)
	}
	// A text bound on the tag column: numbers sort before text, and the
	// span respects Compare's cross-kind order.
	tagB := sqltypes.NewText("b")
	if got := db.Sorted("Item", 1).Range(&tagB, nil, true, false); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("tag >= 'b': %v", got)
	}
}

func TestSortedIndexMaintainedOnInsert(t *testing.T) {
	db := sortedDB(t)
	ix := db.Sorted("Item", 2)
	if !db.HasSorted("Item", 2) {
		t.Fatal("sorted index should exist after first use")
	}
	// An equal-valued insert must land at the end of its value run (scan
	// order), a NULL at the end of the NULL prefix.
	db.MustInsert("Item", sqltypes.NewInt(6), sqltypes.NewText("d"), sqltypes.NewInt(2))
	db.MustInsert("Item", sqltypes.NewInt(7), sqltypes.NewText("e"), sqltypes.Null())
	if !db.HasSorted("Item", 2) {
		t.Fatal("insert must maintain the built sorted index, not drop it")
	}
	got := positions(db.Sorted("Item", 2))
	want := []int32{3, 6, 2, 0, 1, 5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("positions after insert = %v, want %v", got, want)
		}
	}
	if db.Sorted("Item", 2) != ix {
		t.Fatal("maintained index must be the same published instance")
	}
}

func TestSortedIndexInvalidatedOnMutate(t *testing.T) {
	db := sortedDB(t)
	if db.Sorted("Item", 2) == nil {
		t.Fatal("no sorted index")
	}
	db.Mutate(func(table string, row sqltypes.Row) {
		if !row[2].IsNull() {
			row[2] = sqltypes.NewFloat(-row[2].Float())
		}
	})
	if db.HasSorted("Item", 2) {
		t.Fatal("mutate must drop built sorted indexes")
	}
	// The rebuilt index reflects the negated values: 3.25 became the
	// minimum non-NULL value.
	got := positions(db.Sorted("Item", 2))
	if got[1] != 4 {
		t.Fatalf("rebuilt positions = %v, want row 4 first after NULL", got)
	}
}

func TestSortedIndexCloneIsolation(t *testing.T) {
	db := sortedDB(t)
	orig := positions(db.Sorted("Item", 2))
	cp := db.Clone()
	if cp.HasSorted("Item", 2) {
		t.Fatal("clone must start with no sorted indexes")
	}
	cp.Mutate(func(table string, row sqltypes.Row) {
		row[2] = sqltypes.NewInt(0)
	})
	if got := positions(cp.Sorted("Item", 2)); got[0] != 0 {
		t.Fatalf("clone index must order by clone values: %v", got)
	}
	if got := positions(db.Sorted("Item", 2)); got[0] != orig[0] {
		t.Fatal("original sorted index must be untouched by clone mutation")
	}
}

func TestSortedIndexRebuiltOnDirectAppend(t *testing.T) {
	db := sortedDB(t)
	if got := positions(db.Sorted("Item", 2)); len(got) != 5 {
		t.Fatalf("positions: %v", got)
	}
	db.Table("Item").Append(sqltypes.Row{sqltypes.NewInt(9), sqltypes.NewText("z"), sqltypes.NewFloat(99)})
	got := positions(db.Sorted("Item", 2))
	if len(got) != 6 || got[5] != 5 {
		t.Fatalf("positions after direct append = %v", got)
	}
}

func compositeLookup(db *Database, table string, cols []int, vals ...sqltypes.Value) []int32 {
	key, ok := sqltypes.Row(vals).AppendCompareKeyCols(nil, []int{0, 1}[:len(vals)])
	if !ok {
		return nil
	}
	return db.Composite(table, cols).Lookup(key)
}

func compositeDB(t testing.TB) *Database {
	t.Helper()
	s := &schema.Schema{
		Name: "compidx",
		Tables: []*schema.Table{
			{Name: "Pair", Columns: []schema.Column{
				{Name: "a", Type: sqltypes.KindInt},
				{Name: "b", Type: sqltypes.KindText},
				{Name: "c", Type: sqltypes.KindInt},
			}},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(s)
	db.MustInsert("Pair", sqltypes.NewInt(1), sqltypes.NewText("x"), sqltypes.NewInt(10))
	db.MustInsert("Pair", sqltypes.NewInt(1), sqltypes.NewText("y"), sqltypes.NewInt(11))
	db.MustInsert("Pair", sqltypes.NewInt(1), sqltypes.NewText("x"), sqltypes.NewInt(12))
	db.MustInsert("Pair", sqltypes.Null(), sqltypes.NewText("x"), sqltypes.NewInt(13))
	db.MustInsert("Pair", sqltypes.NewInt(2), sqltypes.Null(), sqltypes.NewInt(14))
	return db
}

func TestCompositeIndexLookup(t *testing.T) {
	db := compositeDB(t)
	// (1, 'x') appears at rows 0 and 2, in scan order.
	if got := compositeLookup(db, "Pair", []int{0, 1}, sqltypes.NewInt(1), sqltypes.NewText("x")); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("(1,x) rows: %v", got)
	}
	// A NULL in either key column leaves the row unindexed.
	if db.Composite("Pair", []int{0, 1}).Distinct() != 2 {
		t.Fatalf("distinct tuples: %d", db.Composite("Pair", []int{0, 1}).Distinct())
	}
	// Single columns and bad columns are not composite indexes.
	if db.Composite("Pair", []int{0}) != nil {
		t.Fatal("single-column tuple must not build a composite index")
	}
	if db.Composite("Pair", []int{0, 9}) != nil || db.Composite("Ghost", []int{0, 1}) != nil {
		t.Fatal("out-of-range columns / unknown tables must have no index")
	}
	// Column order is part of the identity.
	ab, ba := db.Composite("Pair", []int{0, 1}), db.Composite("Pair", []int{1, 0})
	if ab == ba {
		t.Fatal("(a,b) and (b,a) must be distinct indexes")
	}
}

func TestCompositeIndexMaintainedOnInsert(t *testing.T) {
	db := compositeDB(t)
	if got := compositeLookup(db, "Pair", []int{0, 1}, sqltypes.NewInt(1), sqltypes.NewText("x")); len(got) != 2 {
		t.Fatalf("(1,x) rows: %v", got)
	}
	db.MustInsert("Pair", sqltypes.NewInt(1), sqltypes.NewText("x"), sqltypes.NewInt(15))
	if !db.HasComposite("Pair", []int{0, 1}) {
		t.Fatal("insert must maintain the built composite index")
	}
	if got := compositeLookup(db, "Pair", []int{0, 1}, sqltypes.NewInt(1), sqltypes.NewText("x")); len(got) != 3 || got[2] != 5 {
		t.Fatalf("(1,x) rows after insert: %v", got)
	}
	// A NULL-keyed insert maintains the index without indexing the row.
	db.MustInsert("Pair", sqltypes.Null(), sqltypes.NewText("x"), sqltypes.NewInt(16))
	if !db.HasComposite("Pair", []int{0, 1}) {
		t.Fatal("NULL-keyed insert must still keep the index up to date")
	}
}

func TestCompositeIndexInvalidatedOnMutateAndClone(t *testing.T) {
	db := compositeDB(t)
	if db.Composite("Pair", []int{0, 1}) == nil {
		t.Fatal("no composite index")
	}
	cp := db.Clone()
	if cp.HasComposite("Pair", []int{0, 1}) {
		t.Fatal("clone must start with no composite indexes")
	}
	db.Mutate(func(table string, row sqltypes.Row) {
		if row[0].Int() == 1 {
			row[0] = sqltypes.NewInt(7)
		}
	})
	if db.HasComposite("Pair", []int{0, 1}) {
		t.Fatal("mutate must drop built composite indexes")
	}
	if got := compositeLookup(db, "Pair", []int{0, 1}, sqltypes.NewInt(7), sqltypes.NewText("x")); len(got) != 2 {
		t.Fatalf("(7,x) rows after mutate: %v", got)
	}
	// The clone still sees the pre-mutation values.
	if got := compositeLookup(cp, "Pair", []int{0, 1}, sqltypes.NewInt(1), sqltypes.NewText("x")); len(got) != 2 {
		t.Fatalf("clone (1,x) rows: %v", got)
	}
}

// TestSortedCompositeConcurrentLazyBuild races readers on cold sorted and
// composite indexes, mirroring TestIndexConcurrentLazyBuild for the new
// kinds. Run under -race this is the regression gate for their guarded
// double-checked builds.
func TestSortedCompositeConcurrentLazyBuild(t *testing.T) {
	db := compositeDB(t)
	key, ok := sqltypes.Row{sqltypes.NewInt(1), sqltypes.NewText("x")}.AppendCompareKeyCols(nil, []int{0, 1})
	if !ok {
		t.Fatal("unexpected null key")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if got := len(db.Sorted("Pair", 2).Positions()); got != 5 {
					t.Errorf("sorted positions = %d, want 5", got)
				}
				if got := len(db.Composite("Pair", []int{0, 1}).Lookup(key)); got != 2 {
					t.Errorf("(1,x) rows = %d, want 2", got)
				}
				if got := db.Sorted("pair", 0).NullCount(); got != 1 {
					t.Errorf("null count = %d, want 1", got)
				}
			}
		}()
	}
	wg.Wait()
	if !db.HasSorted("Pair", 2) || !db.HasComposite("Pair", []int{0, 1}) {
		t.Fatal("indexes must remain published after concurrent builds")
	}
}
