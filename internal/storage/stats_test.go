package storage

import (
	"math/rand"
	"sync"
	"testing"

	"cyclesql/internal/schema"
	"cyclesql/internal/sqltypes"
)

func statsDB(t *testing.T) *Database {
	t.Helper()
	s := &schema.Schema{
		Name: "st",
		Tables: []*schema.Table{
			{Name: "Item", Columns: []schema.Column{
				{Name: "id", Type: sqltypes.KindInt, PrimaryKey: true},
				{Name: "tag", Type: sqltypes.KindText},
				{Name: "score", Type: sqltypes.KindFloat},
			}},
			{Name: "Empty", Columns: []schema.Column{
				{Name: "id", Type: sqltypes.KindInt, PrimaryKey: true},
				{Name: "v", Type: sqltypes.KindInt},
			}},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(s)
	db.MustInsert("Item", sqltypes.NewInt(1), sqltypes.NewText("a"), sqltypes.Null())
	db.MustInsert("Item", sqltypes.NewInt(2), sqltypes.NewText("b"), sqltypes.Null())
	db.MustInsert("Item", sqltypes.NewInt(3), sqltypes.Null(), sqltypes.Null())
	db.MustInsert("Item", sqltypes.NewInt(4), sqltypes.NewText("a"), sqltypes.Null())
	return db
}

func TestColStatsBasics(t *testing.T) {
	db := statsDB(t)
	c, ok := db.ColStats("Item", 1)
	if !ok {
		t.Fatal("ColStats must report ok for a known column")
	}
	if c.Rows != 4 || c.NonNull != 3 || c.Distinct != 2 {
		t.Fatalf("tag stats = %+v, want Rows=4 NonNull=3 Distinct=2", c)
	}
	if !c.HasBounds || c.Min.Text() != "a" || c.Max.Text() != "b" {
		t.Fatalf("tag bounds = %+v, want [a, b]", c)
	}
	ids, ok := db.ColStats("item", 0)
	if !ok || ids.Distinct != 4 || ids.Min.Int() != 1 || ids.Max.Int() != 4 {
		t.Fatalf("id stats (case-folded) = %+v ok=%v", ids, ok)
	}
	if _, ok := db.ColStats("Ghost", 0); ok {
		t.Fatal("unknown table must report ok=false")
	}
	if _, ok := db.ColStats("Item", 99); ok {
		t.Fatal("out-of-range column must report ok=false")
	}
}

// TestColStatsBoundaries pins the "no index" versus "zero distinct keys"
// distinction the Distinct docs promise: an empty table and an all-NULL
// column both yield a real, non-nil index whose Distinct and NonNull are
// zero, and ColStats reports them ok=true with zero counts and no bounds —
// never ok=false, which is reserved for columns that do not exist.
func TestColStatsBoundaries(t *testing.T) {
	db := statsDB(t)

	// Empty table: the index exists and proves no probe can match.
	ix := db.Index("Empty", 1)
	if ix == nil {
		t.Fatal("empty table must still build an index")
	}
	if ix.Distinct() != 0 || ix.NonNull() != 0 {
		t.Fatalf("empty-table index Distinct=%d NonNull=%d, want 0/0", ix.Distinct(), ix.NonNull())
	}
	if _, ok := db.Sorted("Empty", 1).Min(); ok {
		t.Fatal("empty table must have no Min")
	}
	c, ok := db.ColStats("Empty", 1)
	if !ok || c.Rows != 0 || c.NonNull != 0 || c.Distinct != 0 || c.HasBounds {
		t.Fatalf("empty-table stats = %+v ok=%v, want ok with zero counts", c, ok)
	}

	// All-NULL column: rows exist but none are indexed.
	ix = db.Index("Item", 2)
	if ix == nil || ix.Distinct() != 0 || ix.NonNull() != 0 {
		t.Fatalf("all-NULL index = %v (Distinct=%d), want non-nil with 0 keys", ix, ix.Distinct())
	}
	if _, ok := db.Sorted("Item", 2).Max(); ok {
		t.Fatal("all-NULL column must have no Max")
	}
	c, ok = db.ColStats("Item", 2)
	if !ok || c.Rows != 4 || c.NonNull != 0 || c.Distinct != 0 || c.HasBounds {
		t.Fatalf("all-NULL stats = %+v ok=%v, want ok with Rows=4 and zero keys", c, ok)
	}
	if got := c.EqRows(); got != 0 {
		t.Fatalf("all-NULL EqRows = %v, want 0", got)
	}

	// Composite over a tuple containing the all-NULL column: same story.
	cx := db.Composite("Item", []int{1, 2})
	if cx == nil || cx.Distinct() != 0 || cx.NonNull() != 0 {
		t.Fatal("composite with an all-NULL key column must index zero rows")
	}
}

// TestColStatsMaintainedOnInsert verifies the counters ride the index
// maintenance path rather than being recomputed.
func TestColStatsMaintainedOnInsert(t *testing.T) {
	db := statsDB(t)
	if c, _ := db.ColStats("Item", 1); c.NonNull != 3 {
		t.Fatalf("NonNull before insert = %d", c.NonNull)
	}
	db.MustInsert("Item", sqltypes.NewInt(5), sqltypes.NewText("c"), sqltypes.NewFloat(1))
	if !db.HasIndex("Item", 1) || !db.HasSorted("Item", 1) {
		t.Fatal("insert must maintain the stats-backing indexes in place")
	}
	c, _ := db.ColStats("Item", 1)
	if c.Rows != 5 || c.NonNull != 4 || c.Distinct != 3 || c.Max.Text() != "c" {
		t.Fatalf("stats after insert = %+v", c)
	}
	db.MustInsert("Item", sqltypes.NewInt(6), sqltypes.Null(), sqltypes.Null())
	c, _ = db.ColStats("Item", 1)
	if c.Rows != 6 || c.NonNull != 4 || c.Distinct != 3 {
		t.Fatalf("stats after NULL insert = %+v", c)
	}
}

// statsConsistent recomputes the column's ground truth by scanning the
// relation and compares it against what ColStats derives from the indexes.
func statsConsistent(t *testing.T, db *Database, table string, col int) {
	t.Helper()
	rel := db.Table(table)
	c, ok := db.ColStats(table, col)
	if !ok {
		t.Fatalf("ColStats(%s, %d) not ok", table, col)
	}
	nonNull, distinct := 0, map[string]bool{}
	var minV, maxV sqltypes.Value
	for _, row := range rel.Rows {
		v := row[col]
		if v.IsNull() {
			continue
		}
		nonNull++
		key, _ := v.AppendCompareKey(nil)
		distinct[string(key)] = true
		if !minV.IsNull() && sqltypes.Compare(v, minV) < 0 || minV.IsNull() {
			minV = v
		}
		if !maxV.IsNull() && sqltypes.Compare(v, maxV) > 0 || maxV.IsNull() {
			maxV = v
		}
	}
	if c.Rows != len(rel.Rows) || c.NonNull != nonNull || c.Distinct != len(distinct) {
		t.Fatalf("%s.%d stats = %+v, ground truth rows=%d nonNull=%d distinct=%d",
			table, col, c, len(rel.Rows), nonNull, len(distinct))
	}
	if c.HasBounds != (nonNull > 0) {
		t.Fatalf("%s.%d HasBounds = %v with %d non-NULL rows", table, col, c.HasBounds, nonNull)
	}
	if c.HasBounds && (sqltypes.Compare(c.Min, minV) != 0 || sqltypes.Compare(c.Max, maxV) != 0) {
		t.Fatalf("%s.%d bounds = [%s, %s], ground truth [%s, %s]",
			table, col, c.Min, c.Max, minV, maxV)
	}
}

// TestStatsInterleavingProperty drives a seeded random interleaving of
// Insert, Mutate, Snapshot, and Clone and checks after every step that
// ColStats matches a fresh scan of the relation — on the live database, on
// every snapshot pinned so far (whose stats must stay frozen at their
// pinned contents), and on clones. Mirrors the lifecycle guarantees the
// index suite pins, but for the derived statistics.
func TestStatsInterleavingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	db := statsDB(t)
	var pinned []*Snapshot
	next := int64(100)
	for step := 0; step < 120; step++ {
		switch rng.Intn(5) {
		case 0, 1:
			var tag, score sqltypes.Value
			if rng.Intn(4) > 0 {
				tag = sqltypes.NewText([]string{"a", "b", "c", "d"}[rng.Intn(4)])
			}
			if rng.Intn(3) > 0 {
				score = sqltypes.NewFloat(float64(rng.Intn(50)) / 2)
			}
			db.MustInsert("Item", sqltypes.NewInt(next), tag, score)
			next++
		case 2:
			delta := int64(rng.Intn(7))
			db.Mutate(func(table string, row sqltypes.Row) {
				if table == "item" && !row[0].IsNull() {
					row[0] = sqltypes.NewInt(row[0].Int() + delta)
				}
			})
		case 3:
			pinned = append(pinned, db.Snapshot())
			if len(pinned) > 4 {
				pinned = pinned[1:]
			}
		case 4:
			cp := db.Clone()
			cp.MustInsert("Item", sqltypes.NewInt(-next), sqltypes.NewText("clone"), sqltypes.Null())
			for col := 0; col < 3; col++ {
				statsConsistent(t, cp, "Item", col)
			}
		}
		for col := 0; col < 3; col++ {
			statsConsistent(t, db, "Item", col)
		}
		for _, sn := range pinned {
			for col := 0; col < 3; col++ {
				statsConsistent(t, sn.DB(), "Item", col)
			}
		}
	}
}

// TestStatsConcurrentReaders races ColStats against concurrent inserts on
// a snapshot-isolated reader: run under -race this gates the lazy builds
// ColStats performs (hash + sorted) against the writer's maintenance.
func TestStatsConcurrentReaders(t *testing.T) {
	db := statsDB(t)
	snap := db.Snapshot()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// The pinned snapshot's stats never move.
				if c, ok := snap.DB().ColStats("Item", 1); !ok || c.Rows != 4 || c.Distinct != 2 {
					t.Errorf("snapshot stats drifted: %+v ok=%v", c, ok)
					return
				}
				// The live database's stats are always internally sane.
				if c, ok := db.ColStats("Item", 0); !ok || c.Distinct > c.NonNull || c.NonNull > c.Rows {
					t.Errorf("live stats inconsistent: %+v ok=%v", c, ok)
					return
				}
			}
		}()
	}
	for i := int64(0); i < 200; i++ {
		db.MustInsert("Item", sqltypes.NewInt(1000+i), sqltypes.NewText("w"), sqltypes.NewFloat(1))
	}
	close(stop)
	wg.Wait()
	if c, _ := db.ColStats("Item", 0); c.Rows != 204 {
		t.Fatalf("final rows = %d, want 204", c.Rows)
	}
}
