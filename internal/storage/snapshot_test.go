package storage

import (
	"fmt"
	"sync"
	"testing"

	"cyclesql/internal/sqltypes"
)

func petRow(id int64, name string, weight float64) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewInt(id), sqltypes.NewText(name), sqltypes.NewFloat(weight)}
}

func seedPets(db *Database, n int) {
	for i := 0; i < n; i++ {
		db.MustInsert("Pet", sqltypes.NewInt(int64(i)), sqltypes.NewText(fmt.Sprintf("pet-%d", i)), sqltypes.NewFloat(float64(i)))
	}
}

func TestSnapshotPinsRowsAgainstInsert(t *testing.T) {
	db := testDB()
	seedPets(db, 4)
	snap := db.Snapshot()
	if got := snap.NumRows("Pet"); got != 4 {
		t.Fatalf("snapshot rows = %d, want 4", got)
	}
	if err := db.Insert("Pet", petRow(99, "late", 1)); err != nil {
		t.Fatal(err)
	}
	if got := db.NumRows("Pet"); got != 5 {
		t.Fatalf("live rows = %d, want 5", got)
	}
	if got := snap.NumRows("Pet"); got != 4 {
		t.Fatalf("snapshot perturbed by insert: rows = %d, want 4", got)
	}
	// The snapshot's relation pointer is the pre-write one; the live
	// store swapped in a copy on first write.
	if snap.Table("Pet") == db.Table("Pet") {
		t.Fatal("insert did not copy-on-write the shared table")
	}
}

func TestSnapshotPinsValuesAgainstMutate(t *testing.T) {
	db := testDB()
	seedPets(db, 4)
	snap := db.Snapshot()
	db.Mutate(func(table string, row sqltypes.Row) {
		row[1] = sqltypes.NewText("rewritten")
	})
	for i, row := range snap.Table("Pet").Rows {
		if row[1].Text() != fmt.Sprintf("pet-%d", i) {
			t.Fatalf("snapshot row %d perturbed by mutate: %v", i, row[1])
		}
	}
	if db.Table("Pet").Rows[0][1].Text() != "rewritten" {
		t.Fatal("mutate lost on the live store")
	}
}

func TestSnapshotSharesBuiltIndexes(t *testing.T) {
	db := testDB()
	seedPets(db, 8)
	live := db.Index("Pet", 0)
	if live == nil {
		t.Fatal("no index built")
	}
	snap := db.Snapshot()
	if got := snap.DB().Index("Pet", 0); got != live {
		t.Fatal("snapshot should share the pre-built index object")
	}
	// A write drops the live store's reference (the object is shared with
	// the view) but the snapshot keeps probing the pinned one.
	if err := db.Insert("Pet", petRow(99, "late", 1)); err != nil {
		t.Fatal(err)
	}
	if db.HasIndex("Pet", 0) {
		t.Fatal("live index must be dropped on copy-on-write")
	}
	if got := snap.DB().Index("Pet", 0); got != live {
		t.Fatal("snapshot lost its pinned index")
	}
	key, _ := sqltypes.NewInt(3).AppendCompareKey(nil)
	if rows := snap.DB().Index("Pet", 0).Lookup(key); len(rows) != 1 {
		t.Fatalf("pinned index lookup = %v rows, want 1", rows)
	}
	// The live store rebuilds lazily and sees the new row.
	key99, _ := sqltypes.NewInt(99).AppendCompareKey(nil)
	if rows := db.Index("Pet", 0).Lookup(key99); len(rows) != 1 {
		t.Fatalf("rebuilt live index missing new row: %v", rows)
	}
}

func TestSnapshotEpochAdvances(t *testing.T) {
	db := testDB()
	seedPets(db, 2)
	s1 := db.Snapshot()
	if db.Epoch() != s1.Epoch() {
		t.Fatalf("fresh snapshot stale: db=%d snap=%d", db.Epoch(), s1.Epoch())
	}
	if err := db.Insert("Pet", petRow(50, "x", 1)); err != nil {
		t.Fatal(err)
	}
	if db.Epoch() == s1.Epoch() {
		t.Fatal("write did not advance the epoch")
	}
	s2 := db.Snapshot()
	if s2.Epoch() <= s1.Epoch() {
		t.Fatalf("epochs not monotone: %d then %d", s1.Epoch(), s2.Epoch())
	}
	db.Mutate(func(string, sqltypes.Row) {})
	if db.Epoch() == s2.Epoch() {
		t.Fatal("mutate did not advance the epoch")
	}
}

func TestSnapshotWriteOnlyCopiesOnce(t *testing.T) {
	db := testDB()
	seedPets(db, 4)
	_ = db.Snapshot()
	if err := db.Insert("Pet", petRow(90, "a", 1)); err != nil {
		t.Fatal(err)
	}
	owned := db.Table("Pet")
	// Second write to the now-owned table appends in place, and maintains
	// a freshly built index in place too — the pre-snapshot fast path.
	ix := db.Index("Pet", 0)
	if err := db.Insert("Pet", petRow(91, "b", 1)); err != nil {
		t.Fatal(err)
	}
	if db.Table("Pet") != owned {
		t.Fatal("second write copied again; copy-on-write must be per snapshot generation")
	}
	if db.Index("Pet", 0) != ix {
		t.Fatal("second write dropped the owned index instead of maintaining it")
	}
	key, _ := sqltypes.NewInt(91).AppendCompareKey(nil)
	if rows := ix.Lookup(key); len(rows) != 1 {
		t.Fatalf("owned index not maintained: %v", rows)
	}
}

func TestSnapshotViewRejectsWrites(t *testing.T) {
	db := testDB()
	seedPets(db, 2)
	view := db.Snapshot().DB()
	if err := view.Insert("Pet", petRow(7, "x", 1)); err == nil {
		t.Fatal("insert into a snapshot view must fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mutate on a snapshot view must panic")
		}
	}()
	view.Mutate(func(string, sqltypes.Row) {})
}

func TestSnapshotOfSnapshotIsSameView(t *testing.T) {
	db := testDB()
	seedPets(db, 2)
	s1 := db.Snapshot()
	s2 := s1.DB().Snapshot()
	if s2.DB() != s1.DB() {
		t.Fatal("snapshotting a frozen view should return the view itself")
	}
}

func TestSnapshotCloneIsMutable(t *testing.T) {
	// The test-suite distillation clones a pinned snapshot and perturbs
	// the clone; neither the snapshot nor the live store may move.
	db := testDB()
	seedPets(db, 4)
	snap := db.Snapshot()
	clone := snap.DB().Clone()
	clone.Mutate(func(table string, row sqltypes.Row) {
		row[1] = sqltypes.NewText("perturbed")
	})
	if err := clone.Insert("Pet", petRow(77, "new", 2)); err != nil {
		t.Fatalf("clone of a view must be writable: %v", err)
	}
	if snap.Table("Pet").Rows[0][1].Text() != "pet-0" {
		t.Fatal("clone mutation leaked into the snapshot")
	}
	if db.Table("Pet").Rows[0][1].Text() != "pet-0" {
		t.Fatal("clone mutation leaked into the live store")
	}
}

// TestSnapshotIsolationUnderConcurrentWriters is the -race isolation
// stress the serving layer depends on: any number of goroutines read
// through pinned snapshots while writers insert and mutate the live
// store, and every snapshot observes exactly the state it pinned.
func TestSnapshotIsolationUnderConcurrentWriters(t *testing.T) {
	db := testDB()
	const seedRows = 32
	seedPets(db, seedRows)

	type pin struct {
		snap *Snapshot
		rows int
	}
	const (
		writers   = 2
		readers   = 4
		writeOps  = 200
		readLoops = 400
	)
	// Pins are taken concurrently with the writers; each records the row
	// count observed at pin time and must observe it forever after.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < writeOps; i++ {
				if i%16 == 15 {
					db.Mutate(func(table string, row sqltypes.Row) {
						row[2] = sqltypes.NewFloat(row[2].Float() + 1)
					})
					continue
				}
				if err := db.Insert("Pet", petRow(int64(1000+w*writeOps+i), "w", 0)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < readLoops; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := pin{snap: db.Snapshot()}
				p.rows = p.snap.NumRows("Pet")
				// Re-read the pinned view several times, interleaved with
				// the writers' progress, probing both rows and an index.
				for j := 0; j < 5; j++ {
					if got := p.snap.NumRows("Pet"); got != p.rows {
						t.Errorf("snapshot row count moved: %d -> %d", p.rows, got)
						return
					}
					ix := p.snap.DB().Index("Pet", 0)
					key, _ := sqltypes.NewInt(3).AppendCompareKey(nil)
					if rows := ix.Lookup(key); len(rows) != 1 {
						t.Errorf("pinned index lookup = %d rows, want 1", len(rows))
						return
					}
					for _, row := range p.snap.Table("Pet").Rows[:seedRows] {
						if row[1].Text() == "" {
							t.Error("torn row observed through snapshot")
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)

	// All writers done: a fresh snapshot sees every surviving insert.
	want := seedRows + writers*writeOps - writers*(writeOps/16)
	if got := db.Snapshot().NumRows("Pet"); got != want {
		t.Fatalf("final snapshot rows = %d, want %d", got, want)
	}
}

// BenchmarkSnapshotPin and BenchmarkClonePin record the acceptance
// criterion that pinning a consistent view is O(tables), not O(rows):
// Snapshot cost must not grow with row count while Clone's does.
func benchPinDB(rows int) *Database {
	db := testDB()
	seedPets(db, rows)
	return db
}

func BenchmarkSnapshotPin(b *testing.B) {
	for _, rows := range []int{100, 10000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			db := benchPinDB(rows)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if db.Snapshot() == nil {
					b.Fatal("nil snapshot")
				}
			}
		})
	}
}

func BenchmarkClonePin(b *testing.B) {
	for _, rows := range []int{100, 10000} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			db := benchPinDB(rows)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if db.Clone() == nil {
					b.Fatal("nil clone")
				}
			}
		})
	}
}

// BenchmarkSnapshotFirstWrite prices the deferred half of the COW deal:
// the first insert after a snapshot copies the row-header slice once;
// subsequent inserts are plain appends.
func BenchmarkSnapshotFirstWrite(b *testing.B) {
	db := benchPinDB(10000)
	row := petRow(999999, "w", 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = db.Snapshot()
		if err := db.Insert("Pet", row); err != nil {
			b.Fatal(err)
		}
	}
}
