// Sorted secondary indexes over stored tables. A SortedIndex keeps one
// column's row positions ordered by the total value order sqltypes.Compare
// defines (NULL first, numerics — compared across the INTEGER/REAL divide —
// before text), with ties broken by row position. That tie-break is load-
// bearing: a range span therefore lists equal-valued rows in scan order,
// which is exactly the order a stable ORDER BY sort would leave them in, so
// the executor can stream ordered output straight off the index and stay
// bit-identical to the sort-based path.
//
// Range probes serve the comparison operators: <, <=, >, >= and BETWEEN
// all evaluate via sqltypes.Compare and reject NULL operands, so a span
// computed with the same Compare over the non-NULL suffix of the index
// returns exactly the rows the scan-and-filter path would keep.
//
// Like the hash indexes (index.go), sorted indexes are built lazily on
// first use, maintained on Insert (binary-search insertion keeps the
// position list ordered), dropped wholesale on Mutate, never shared with
// clones, and rebuilt when a row-count check detects direct Relation
// appends. Lazy builds are double-checked under the database lock; a
// published index is immutable until the next write, so probes and
// iteration run lock-free.
package storage

import (
	"sort"

	"cyclesql/internal/sqltypes"
)

// SortedIndex is an ordered index over one column of a stored table.
type SortedIndex struct {
	column int
	rows   int // relation rows covered; mismatch triggers a rebuild
	rel    *sqltypes.Relation
	// pos holds every row position, ordered by (Compare(value), position).
	// NULL values (and rows too short to hold the column) occupy the first
	// nulls entries — Compare sorts NULL before everything.
	pos   []int32
	nulls int
}

// value reads the indexed column of one row, treating rows too short to
// hold the column as NULL (only possible through direct Relation misuse).
func (ix *SortedIndex) value(ri int32) sqltypes.Value {
	row := ix.rel.Rows[ri]
	if ix.column >= len(row) {
		return sqltypes.Null()
	}
	return row[ix.column]
}

// Positions returns every row position ordered by (value, position), NULL
// rows first — the streaming order of ORDER BY <col> ASC. The slice is
// shared; callers must not mutate it.
func (ix *SortedIndex) Positions() []int32 { return ix.pos }

// NullCount returns how many leading positions hold NULL (or missing)
// values.
func (ix *SortedIndex) NullCount() int { return ix.nulls }

// Min returns the smallest non-NULL value in the index, ok=false when the
// column holds no non-NULL values (empty table or all NULL).
func (ix *SortedIndex) Min() (sqltypes.Value, bool) {
	if ix.nulls >= len(ix.pos) {
		return sqltypes.Null(), false
	}
	return ix.value(ix.pos[ix.nulls]), true
}

// Max returns the largest non-NULL value in the index, ok=false when the
// column holds no non-NULL values.
func (ix *SortedIndex) Max() (sqltypes.Value, bool) {
	if ix.nulls >= len(ix.pos) {
		return sqltypes.Null(), false
	}
	return ix.value(ix.pos[len(ix.pos)-1]), true
}

// Range returns the positions of rows whose non-NULL column value lies
// within the given bounds, ordered by (value, position). A nil bound is
// unbounded on that side; Incl selects <= / >= over < / >. NULL rows are
// never part of a span: every comparison operator rejects NULL operands.
// The returned slice is shared; callers must not mutate it.
func (ix *SortedIndex) Range(lo, hi *sqltypes.Value, loIncl, hiIncl bool) []int32 {
	span := ix.pos[ix.nulls:]
	start := 0
	if lo != nil {
		want := 0
		if !loIncl {
			want = 1
		}
		start = sort.Search(len(span), func(i int) bool {
			return sqltypes.Compare(ix.value(span[i]), *lo) >= want
		})
	}
	end := len(span)
	if hi != nil {
		want := 1
		if !hiIncl {
			want = 0
		}
		end = sort.Search(len(span), func(i int) bool {
			return sqltypes.Compare(ix.value(span[i]), *hi) >= want
		})
	}
	if end < start {
		end = start
	}
	return span[start:end]
}

func buildSortedIndex(rel *sqltypes.Relation, col int) *SortedIndex {
	ix := &SortedIndex{
		column: col,
		rows:   len(rel.Rows),
		rel:    rel,
		pos:    make([]int32, len(rel.Rows)),
	}
	for i := range ix.pos {
		ix.pos[i] = int32(i)
	}
	sort.Slice(ix.pos, func(a, b int) bool {
		if c := sqltypes.Compare(ix.value(ix.pos[a]), ix.value(ix.pos[b])); c != 0 {
			return c < 0
		}
		return ix.pos[a] < ix.pos[b]
	})
	for ix.nulls < len(ix.pos) && ix.value(ix.pos[ix.nulls]).IsNull() {
		ix.nulls++
	}
	return ix
}

// add inserts one freshly appended row at its ordered position. The new
// position is larger than every existing one, so inserting at the end of
// its value run preserves the (value, position) order.
func (ix *SortedIndex) add(row sqltypes.Row, pos int) {
	ix.rows++
	v := sqltypes.Null()
	if ix.column < len(row) {
		v = row[ix.column]
	}
	at := ix.nulls
	if v.IsNull() {
		ix.nulls++
	} else {
		span := ix.pos[ix.nulls:]
		at += sort.Search(len(span), func(i int) bool {
			return sqltypes.Compare(ix.value(span[i]), v) > 0
		})
	}
	ix.pos = append(ix.pos, 0)
	copy(ix.pos[at+1:], ix.pos[at:])
	ix.pos[at] = int32(pos)
}

// Sorted returns the ordered index for one column of a table, building it
// on first use. It returns nil for unknown tables or out-of-range columns.
// Like Index, the lazy build is double-checked under the database lock, so
// concurrent readers either share the published index or build
// interchangeable copies of which one wins.
func (db *Database) Sorted(table string, col int) *SortedIndex {
	rel := db.Table(table)
	if rel == nil || col < 0 || col >= len(rel.Columns) {
		return nil
	}
	name := lowerName(table)
	db.mu.RLock()
	ix := db.sorted[name][col]
	db.mu.RUnlock()
	if ix != nil && ix.rows == len(rel.Rows) {
		return ix
	}
	built := buildSortedIndex(rel, col)
	db.mu.Lock()
	defer db.mu.Unlock()
	if ix := db.sorted[name][col]; ix != nil && ix.rows == len(rel.Rows) {
		return ix
	}
	if db.sorted == nil {
		db.sorted = make(map[string]map[int]*SortedIndex)
	}
	byCol := db.sorted[name]
	if byCol == nil {
		byCol = make(map[int]*SortedIndex)
		db.sorted[name] = byCol
	}
	byCol[col] = built
	return built
}

// HasSorted reports whether a built, up-to-date sorted index exists for
// the column. It never builds one; tests use it to observe invalidation.
func (db *Database) HasSorted(table string, col int) bool {
	rel := db.Table(table)
	if rel == nil {
		return false
	}
	db.mu.RLock()
	ix := db.sorted[lowerName(table)][col]
	db.mu.RUnlock()
	return ix != nil && ix.rows == len(rel.Rows)
}
