// Package storage provides the in-memory table store the SQL executor
// reads from. A Database binds a schema.Schema to one relation per table
// and enforces arity and (loose, SQLite-like) type affinity on insert.
//
// Databases are cheap to clone, which the test-suite accuracy metric uses
// to build distilled database variants (paper §V-A1, "test suite accuracy").
//
// Concurrency: a Database is safe for concurrent readers — queries may
// scan tables and build or probe the lazy secondary indexes from any
// number of goroutines (index.go guards the lazy builds). Writers
// (Insert, MustInsert, Mutate) still require exclusion from readers and
// from each other: they mutate relation contents in place, and a query
// racing a row append would read a torn table. Both parallelism levels
// above this package — concurrent candidate verification inside one
// core.Pipeline.Translate and the cross-example batch sweep in
// internal/experiments — lean on the reader half of this contract: they
// only ever read benchmark databases built before the sweep starts.
// Clones are fully isolated (rows, and each clone builds its own
// indexes), so the test-suite metric's perturbed copies can be read or
// even mutated without affecting the original.
package storage

import (
	"fmt"
	"strings"
	"sync"

	"cyclesql/internal/schema"
	"cyclesql/internal/sqltypes"
)

// Database is an in-memory database instance: a schema plus table contents,
// plus lazily built secondary indexes over table columns — hash indexes
// for point probes (index.go), sorted indexes for range probes and ordered
// streaming (sorted.go), and composite hash indexes for multi-key
// equi-joins (composite.go).
type Database struct {
	Schema *schema.Schema
	tables map[string]*sqltypes.Relation
	// mu guards the index maps: concurrent queries trigger lazy index
	// builds, and publishing a built index must be ordered before other
	// goroutines probe it. Built indexes of every kind are immutable
	// between writes, so probes run outside the lock.
	mu sync.RWMutex
	// indexes, sorted and composite hold the built indexes per lower-cased
	// table name. nil until the first probe; dropped wholesale on Mutate.
	indexes   map[string]map[int]*ColumnIndex
	sorted    map[string]map[int]*SortedIndex
	composite map[string]map[string]*CompositeIndex
}

// lowerName folds a table name to the map key every index store uses.
func lowerName(table string) string { return strings.ToLower(table) }

// NewDatabase returns an empty database for the schema. Every table starts
// with zero rows and the column list from the schema.
func NewDatabase(s *schema.Schema) *Database {
	db := &Database{Schema: s, tables: make(map[string]*sqltypes.Relation, len(s.Tables))}
	for _, t := range s.Tables {
		db.tables[strings.ToLower(t.Name)] = sqltypes.NewRelation(t.ColumnNames()...)
	}
	return db
}

// Table returns the stored relation for a table name, or nil if the table
// does not exist. The returned relation is live and stable across inserts
// (rows append in place), so the SQL compiler binds it directly into
// compiled plans; callers must not mutate it.
func (db *Database) Table(name string) *sqltypes.Relation {
	return db.tables[strings.ToLower(name)]
}

// Insert appends a row to a table after checking arity and coercing values
// toward the declared column affinity (integers widen to REAL columns,
// numerics stringify into TEXT columns).
func (db *Database) Insert(table string, row sqltypes.Row) error {
	t := db.Schema.Table(table)
	rel := db.Table(table)
	if t == nil || rel == nil {
		return fmt.Errorf("storage: unknown table %q", table)
	}
	if len(row) != len(t.Columns) {
		return fmt.Errorf("storage: table %s expects %d values, got %d", t.Name, len(t.Columns), len(row))
	}
	coerced := make(sqltypes.Row, len(row))
	for i, v := range row {
		coerced[i] = coerce(v, t.Columns[i].Type)
	}
	rel.Append(coerced)
	db.maintainIndexes(t.Name, coerced, len(rel.Rows)-1)
	return nil
}

// MustInsert is Insert for statically known-good data; it panics on error.
// The synthetic dataset builders use it so malformed generators fail fast.
func (db *Database) MustInsert(table string, values ...sqltypes.Value) {
	if err := db.Insert(table, sqltypes.Row(values)); err != nil {
		panic(err)
	}
}

func coerce(v sqltypes.Value, want sqltypes.Kind) sqltypes.Value {
	if v.IsNull() {
		return v
	}
	switch want {
	case sqltypes.KindInt:
		if v.Kind() == sqltypes.KindFloat {
			return sqltypes.NewInt(int64(v.Float()))
		}
	case sqltypes.KindFloat:
		if v.Kind() == sqltypes.KindInt {
			return sqltypes.NewFloat(float64(v.Int()))
		}
	case sqltypes.KindText:
		if v.IsNumeric() {
			return sqltypes.NewText(v.String())
		}
	}
	return v
}

// NumRows returns the row count of a table (0 for unknown tables).
func (db *Database) NumRows(table string) int {
	if rel := db.Table(table); rel != nil {
		return rel.NumRows()
	}
	return 0
}

// TotalRows returns the row count across all tables.
func (db *Database) TotalRows() int {
	n := 0
	for _, rel := range db.tables {
		n += rel.NumRows()
	}
	return n
}

// Clone deep-copies the database contents (the schema is shared; schemata
// are immutable after construction). The clone starts with no indexes:
// clones exist to be perturbed, so sharing buckets with the original would
// serve stale probes after the first Mutate.
func (db *Database) Clone() *Database {
	out := &Database{Schema: db.Schema, tables: make(map[string]*sqltypes.Relation, len(db.tables))}
	for k, rel := range db.tables {
		out.tables[k] = rel.Clone()
	}
	return out
}

// Mutate applies fn to every stored row of every table. The test-suite
// distillation uses it to perturb copies of the database. It drops every
// built index first — fn rewrites values in place, so any probe served
// from a pre-mutation bucket would read stale rows.
func (db *Database) Mutate(fn func(table string, row sqltypes.Row)) {
	db.invalidateIndexes()
	for name, rel := range db.tables {
		for _, row := range rel.Rows {
			fn(name, row)
		}
	}
}
