// Package storage provides the in-memory table store the SQL executor
// reads from. A Database binds a schema.Schema to one relation per table
// and enforces arity and (loose, SQLite-like) type affinity on insert.
//
// Databases are cheap to clone, which the test-suite accuracy metric uses
// to build distilled database variants (paper §V-A1, "test suite accuracy").
//
// Concurrency: a Database is safe for concurrent readers — queries may
// scan tables and build or probe the lazy secondary indexes from any
// number of goroutines (index.go guards the lazy builds). Writers
// (Insert, MustInsert, Mutate) still require exclusion from readers of
// the live database and from each other: they mutate relation contents
// in place, and a query racing a row append would read a torn table.
// Both parallelism levels above this package — concurrent candidate
// verification inside one core.Pipeline.Translate and the cross-example
// batch sweep in internal/experiments — lean on the reader half of this
// contract: they only ever read benchmark databases built before the
// sweep starts. Readers that must overlap writers — the HTTP serving
// layer — pin a copy-on-write Snapshot instead (snapshot.go): an O(tables)
// immutable view that writers never touch, because the first write to a
// pinned table swaps in a copy rather than mutating the shared relation.
// Clones are fully isolated (rows, and each clone builds its own
// indexes), so the test-suite metric's perturbed copies can be read or
// even mutated without affecting the original.
package storage

import (
	"fmt"
	"strings"
	"sync"

	"cyclesql/internal/schema"
	"cyclesql/internal/sqltypes"
)

// Database is an in-memory database instance: a schema plus table contents,
// plus lazily built secondary indexes over table columns — hash indexes
// for point probes (index.go), sorted indexes for range probes and ordered
// streaming (sorted.go), and composite hash indexes for multi-key
// equi-joins (composite.go).
type Database struct {
	Schema *schema.Schema
	tables map[string]*sqltypes.Relation
	// mu guards the index maps: concurrent queries trigger lazy index
	// builds, and publishing a built index must be ordered before other
	// goroutines probe it. Built indexes of every kind are immutable
	// between writes, so probes run outside the lock.
	mu sync.RWMutex
	// indexes, sorted and composite hold the built indexes per lower-cased
	// table name. nil until the first probe; dropped wholesale on Mutate.
	indexes   map[string]map[int]*ColumnIndex
	sorted    map[string]map[int]*SortedIndex
	composite map[string]map[string]*CompositeIndex
	// epoch advances on every Snapshot and every write; snapshot holders
	// compare it against their pinned epoch to detect staleness. Guarded
	// by mu.
	epoch uint64
	// shared marks tables pinned by at least one snapshot since their
	// last copy: the next write to a shared table copies it first
	// (snapshot.go). Guarded by mu.
	shared map[string]bool
	// frozen marks snapshot views: immutable by contract, so writers
	// reject. Set once before the view is published, read without the
	// lock.
	frozen bool
}

// lowerName folds a table name to the map key every index store uses.
func lowerName(table string) string { return strings.ToLower(table) }

// NewDatabase returns an empty database for the schema. Every table starts
// with zero rows and the column list from the schema.
func NewDatabase(s *schema.Schema) *Database {
	db := &Database{Schema: s, tables: make(map[string]*sqltypes.Relation, len(s.Tables))}
	for _, t := range s.Tables {
		db.tables[strings.ToLower(t.Name)] = sqltypes.NewRelation(t.ColumnNames()...)
	}
	return db
}

// Table returns the stored relation for a table name, or nil if the table
// does not exist. The returned relation is live and stable across inserts
// (rows append in place), so the SQL compiler binds it directly into
// compiled plans; callers must not mutate it.
func (db *Database) Table(name string) *sqltypes.Relation {
	return db.tables[strings.ToLower(name)]
}

// Insert appends a row to a table after checking arity and coercing values
// toward the declared column affinity (integers widen to REAL columns,
// numerics stringify into TEXT columns). If the table is pinned by a
// snapshot, the append goes to a copy-on-write replacement and the pinned
// view is untouched; otherwise the row appends in place and every built
// index is maintained, exactly as before snapshots existed. Inserting
// into a snapshot view is an error.
func (db *Database) Insert(table string, row sqltypes.Row) error {
	t := db.Schema.Table(table)
	if t == nil {
		return fmt.Errorf("storage: unknown table %q", table)
	}
	if db.frozen {
		return fmt.Errorf("storage: cannot insert into a snapshot view of table %q", table)
	}
	if len(row) != len(t.Columns) {
		return fmt.Errorf("storage: table %s expects %d values, got %d", t.Name, len(t.Columns), len(row))
	}
	coerced := make(sqltypes.Row, len(row))
	for i, v := range row {
		coerced[i] = coerce(v, t.Columns[i].Type)
	}
	name := lowerName(t.Name)
	// The whole mutation runs under the lock so a Snapshot taken at any
	// instant sees either the row fully applied or not at all — and so
	// concurrent writers serialize instead of tearing each other's
	// copy-on-write swaps.
	db.mu.Lock()
	defer db.mu.Unlock()
	rel := db.writeTableLocked(name, false)
	if rel == nil {
		return fmt.Errorf("storage: unknown table %q", table)
	}
	rel.Append(coerced)
	db.epoch++
	pos := len(rel.Rows) - 1
	for _, ix := range db.indexes[name] {
		ix.add(coerced, pos)
	}
	for _, ix := range db.sorted[name] {
		ix.add(coerced, pos)
	}
	for _, ix := range db.composite[name] {
		ix.add(coerced, pos)
	}
	return nil
}

// MustInsert is Insert for statically known-good data; it panics on error.
// The synthetic dataset builders use it so malformed generators fail fast.
func (db *Database) MustInsert(table string, values ...sqltypes.Value) {
	if err := db.Insert(table, sqltypes.Row(values)); err != nil {
		panic(err)
	}
}

func coerce(v sqltypes.Value, want sqltypes.Kind) sqltypes.Value {
	if v.IsNull() {
		return v
	}
	switch want {
	case sqltypes.KindInt:
		if v.Kind() == sqltypes.KindFloat {
			return sqltypes.NewInt(int64(v.Float()))
		}
	case sqltypes.KindFloat:
		if v.Kind() == sqltypes.KindInt {
			return sqltypes.NewFloat(float64(v.Int()))
		}
	case sqltypes.KindText:
		if v.IsNumeric() {
			return sqltypes.NewText(v.String())
		}
	}
	return v
}

// NumRows returns the row count of a table (0 for unknown tables).
func (db *Database) NumRows(table string) int {
	if rel := db.Table(table); rel != nil {
		return rel.NumRows()
	}
	return 0
}

// TotalRows returns the row count across all tables.
func (db *Database) TotalRows() int {
	n := 0
	for _, rel := range db.tables {
		n += rel.NumRows()
	}
	return n
}

// Clone deep-copies the database contents (the schema is shared; schemata
// are immutable after construction). The clone starts with no indexes:
// clones exist to be perturbed, so sharing buckets with the original would
// serve stale probes after the first Mutate. Cloning a snapshot view
// yields an ordinary mutable database — the test-suite distillation
// derives its perturbed variants from pinned snapshots this way. Pinning
// without the row copy is Snapshot (snapshot.go).
func (db *Database) Clone() *Database {
	out := &Database{Schema: db.Schema, tables: make(map[string]*sqltypes.Relation, len(db.tables))}
	for k, rel := range db.tables {
		out.tables[k] = rel.Clone()
	}
	return out
}

// Mutate applies fn to every stored row of every table. The test-suite
// distillation uses it to perturb copies of the database. It drops every
// built index first — fn rewrites values in place, so any probe served
// from a pre-mutation bucket would read stale rows. Tables pinned by a
// snapshot are deep-copied before fn touches them (fn rewrites row
// contents, so even row-header sharing would tear the pinned view).
// Mutating a snapshot view panics: views are immutable by contract.
func (db *Database) Mutate(fn func(table string, row sqltypes.Row)) {
	if db.frozen {
		panic("storage: cannot mutate a snapshot view")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.indexes, db.sorted, db.composite = nil, nil, nil
	db.epoch++
	for name := range db.tables {
		rel := db.writeTableLocked(name, true)
		for _, row := range rel.Rows {
			fn(name, row)
		}
	}
}
