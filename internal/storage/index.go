// Secondary hash indexes over stored tables. An index maps the binary key
// encoding of one column's values (sqltypes.Value.AppendCompareKey — under
// which two values share a bucket exactly when the = operator treats them
// as equal; its text path reuses AppendKey) to the list of row positions
// holding that value, in scan order.
//
// Indexes are built lazily on first use and then kept consistent with the
// table: Insert appends the new row to every built index of its table,
// Mutate drops all indexes (the callback rewrites values in place), and
// Clone starts the copy with no indexes so the clone's perturbed contents
// can never read the original's buckets. A row-count check on every access
// catches direct Relation.Append misuse and triggers a rebuild.
//
// NULL values are never indexed: the = operator is NULL-rejecting, so a
// probe must not return NULL rows and a NULL probe key matches nothing.
//
// Lazy builds are safe under concurrent readers: Index publishes built
// indexes under the database's lock with a double-check, so parallel
// queries racing on a cold index either share one build or briefly build
// interchangeable copies. Lookup stays lock-free — a published index is
// immutable until the next write, and writes require reader exclusion.
package storage

import (
	"strings"

	"cyclesql/internal/sqltypes"
)

// ColumnIndex is a hash index over one column of a stored table. The
// executor treats it both as a point-lookup structure (WHERE col = literal)
// and as a prebuilt hash-join build side (groups row positions by key, the
// exact shape execJoin otherwise rebuilds per execution).
type ColumnIndex struct {
	column  int
	rows    int // relation rows covered; mismatch triggers a rebuild
	nonNull int // indexed rows (NULL values are never indexed)
	groups  map[string][]int32
}

// Lookup returns the positions of rows whose column value encodes to key,
// in ascending row order. The returned slice is shared; callers must not
// mutate it. Probing with string(key) keeps the lookup allocation-free.
func (ix *ColumnIndex) Lookup(key []byte) []int32 { return ix.groups[string(key)] }

// Distinct returns the number of distinct non-NULL keys in the index. It
// returns 0 both for an empty table and for a column whose every value is
// NULL — an index over either holds no buckets at all. Callers asking
// "is there an index?" must test the *ColumnIndex for nil instead (Index
// never returns a non-nil index for an unknown table or column): a
// non-nil index with Distinct() == 0 is a real, up-to-date index that
// proves no probe can match. The cost-based planner (internal/stats)
// relies on exactly that reading — zero distinct keys means equality
// selects nothing, not "unknown".
func (ix *ColumnIndex) Distinct() int { return len(ix.groups) }

// NonNull returns how many rows the index covers with a non-NULL value —
// the sum of all bucket sizes. Together with Distinct it yields the
// average bucket size NonNull/Distinct, the planner's equality
// selectivity estimate.
func (ix *ColumnIndex) NonNull() int { return ix.nonNull }

func buildColumnIndex(rel *sqltypes.Relation, col int) *ColumnIndex {
	ix := &ColumnIndex{
		column: col,
		rows:   len(rel.Rows),
		groups: make(map[string][]int32, len(rel.Rows)),
	}
	var buf []byte
	for ri, row := range rel.Rows {
		if col >= len(row) {
			continue
		}
		key, ok := row[col].AppendCompareKey(buf[:0])
		if !ok {
			continue
		}
		buf = key
		ix.groups[string(key)] = append(ix.groups[string(key)], int32(ri))
		ix.nonNull++
	}
	return ix
}

// add appends one freshly inserted row to the index.
func (ix *ColumnIndex) add(row sqltypes.Row, pos int) {
	ix.rows++
	if ix.column >= len(row) {
		return
	}
	key, ok := row[ix.column].AppendCompareKey(nil)
	if !ok {
		return
	}
	ix.groups[string(key)] = append(ix.groups[string(key)], int32(pos))
	ix.nonNull++
}

// Index returns the hash index for one column of a table, building it on
// first use. It returns nil for unknown tables or out-of-range columns.
// The index stays valid until the next Mutate; Insert maintains it in
// place. Index is safe to call from concurrent readers: the lazy build is
// double-checked under the database lock, so racing probes either share
// the published index or build interchangeable copies of which one wins.
func (db *Database) Index(table string, col int) *ColumnIndex {
	rel := db.Table(table)
	if rel == nil || col < 0 || col >= len(rel.Columns) {
		return nil
	}
	name := strings.ToLower(table)
	db.mu.RLock()
	ix := db.indexes[name][col]
	db.mu.RUnlock()
	if ix != nil && ix.rows == len(rel.Rows) {
		return ix
	}
	// Build outside the write lock — construction only reads the relation,
	// which is stable while readers are active — then publish under it.
	built := buildColumnIndex(rel, col)
	db.mu.Lock()
	defer db.mu.Unlock()
	if ix := db.indexes[name][col]; ix != nil && ix.rows == len(rel.Rows) {
		// Another goroutine published an up-to-date index first; share it.
		return ix
	}
	if db.indexes == nil {
		db.indexes = make(map[string]map[int]*ColumnIndex)
	}
	byCol := db.indexes[name]
	if byCol == nil {
		byCol = make(map[int]*ColumnIndex)
		db.indexes[name] = byCol
	}
	byCol[col] = built
	return built
}

// HasIndex reports whether a built index currently exists for the column.
// It never builds one; tests use it to observe invalidation.
func (db *Database) HasIndex(table string, col int) bool {
	rel := db.Table(table)
	if rel == nil {
		return false
	}
	db.mu.RLock()
	ix := db.indexes[strings.ToLower(table)][col]
	db.mu.RUnlock()
	return ix != nil && ix.rows == len(rel.Rows)
}

// Index maintenance on Insert and wholesale invalidation on Mutate live
// inline in those writers (storage.go): both must happen in the same
// critical section as the copy-on-write table swap so a Snapshot taken at
// any instant sees a consistent store.
