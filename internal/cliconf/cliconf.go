// Package cliconf is the one canonical options surface for every binary
// that drives the CycleSQL loop — cmd/cyclesql, cmd/benchmark and
// cmd/serve. Before it existed, each CLI hand-rolled the same ~16 flag
// definitions and hand-assembled experiments.Limits, resilience.Policy
// and faultinject.Config from them, and the three surfaces drifted.
// Now a CLI declares which flag groups it wants (Bind, BindBeam,
// BindTraining), parses, and calls Build() once:
//
//	opts := cliconf.Default()
//	opts.Bind(flag.CommandLine)
//	opts.BindBeam(flag.CommandLine)
//	flag.Parse()
//	built := opts.Build()
//	// built.Limits  -> experiments.Limits (parallelism, workers,
//	//                  timeouts, resilience, faults, dev/train caps)
//	// built.Policy  -> the armed *resilience.Policy, or nil when both
//	//                  resilience and chaos are off (print its Stats()
//	//                  on exit when non-nil)
//	// built.Faults  -> the faultinject.Config for wrapping ad-hoc
//	//                  pipelines outside the Limits machinery
//
// The flag names, defaults and help strings are exactly the ones the
// CLIs shipped with, so existing invocations keep working unchanged.
package cliconf

import (
	"flag"
	"fmt"
	"time"

	"cyclesql/internal/experiments"
	"cyclesql/internal/faultinject"
	"cyclesql/internal/resilience"
)

// Options is the full knob surface shared by the CLIs and the server.
// Zero values are meaningful (sequential, no timeouts, no resilience, no
// chaos); Default() fills the experiment caps from
// experiments.DefaultLimits.
type Options struct {
	// Beam is the candidate beam size (BindBeam).
	Beam int
	// Parallel bounds concurrent candidate verifications inside one
	// feedback loop; Workers bounds concurrent examples in a sweep (and,
	// on the server, has no meaning — admission control bounds requests).
	Parallel int
	Workers  int
	// Timeout is the per-question/per-example wall-clock budget (0 = none).
	Timeout time.Duration
	// Dev and Train cap the benchmark splits (BindTraining; 0 = all).
	Dev   int
	Train int
	// Retries and Breaker arm the resilience policy: transient-fault
	// retries per loop stage, and the circuit-breaker threshold in
	// consecutive per-stage infrastructure failures (0 disables each).
	Retries int
	Breaker int
	// Fault* configure deterministic chaos injection around every model
	// call (all zero = no injection, no wrappers).
	FaultRate    float64
	FaultHang    float64
	FaultPanic   float64
	FaultSlow    float64
	FaultLatency time.Duration
	FaultSeed    int64
}

// Default returns the options pre-filled with the experiment harness
// defaults (dev/train caps from experiments.DefaultLimits, 2ms chaos
// latency, seed 1) — the values the CLIs have always defaulted to.
func Default() Options {
	return Options{
		Beam:         8,
		Parallel:     1,
		Workers:      1,
		Dev:          experiments.DefaultLimits.MaxDev,
		Train:        experiments.DefaultLimits.MaxTrain,
		FaultLatency: 2 * time.Millisecond,
		FaultSeed:    1,
	}
}

// Bind registers the shared flag set — parallelism, workers, timeout,
// resilience and chaos — on fs, storing parsed values into o. Every
// CycleSQL binary calls this; BindBeam and BindTraining add the groups
// that only some binaries expose.
func (o *Options) Bind(fs *flag.FlagSet) {
	fs.IntVar(&o.Parallel, "parallel", o.Parallel, "concurrent candidate verifications per feedback loop (1 = the paper's sequential loop; results are identical either way)")
	fs.IntVar(&o.Workers, "workers", o.Workers, "concurrent examples per sweep (1 = sequential; per-example results are identical either way)")
	fs.DurationVar(&o.Timeout, "timeout", o.Timeout, "per-example wall-clock budget (0 = none), e.g. 30s")
	fs.IntVar(&o.Retries, "retries", o.Retries, "transient-fault retries per loop stage (0 = single attempts)")
	fs.IntVar(&o.Breaker, "breaker", o.Breaker, "circuit-breaker threshold in consecutive per-stage infrastructure failures (0 = no breaker)")
	fs.Float64Var(&o.FaultRate, "fault-rate", o.FaultRate, "chaos: probability a model call returns a transient error")
	fs.Float64Var(&o.FaultHang, "fault-hang", o.FaultHang, "chaos: probability a model call hangs (resolves as a transient timeout)")
	fs.Float64Var(&o.FaultPanic, "fault-panic", o.FaultPanic, "chaos: probability a model call panics (recovered by the loop)")
	fs.Float64Var(&o.FaultSlow, "fault-slow", o.FaultSlow, "chaos: probability a model call is slowed by -fault-latency")
	fs.DurationVar(&o.FaultLatency, "fault-latency", o.FaultLatency, "chaos: added latency per -fault-slow hit")
	fs.Int64Var(&o.FaultSeed, "fault-seed", o.FaultSeed, "chaos: seed for the deterministic fault and backoff-jitter draws")
}

// BindBeam registers the candidate beam-size flag (cmd/cyclesql and
// cmd/serve; cmd/benchmark fixes beam per model like the paper does).
func (o *Options) BindBeam(fs *flag.FlagSet) {
	fs.IntVar(&o.Beam, "beam", o.Beam, "candidate beam size")
}

// BindTraining registers the benchmark-split caps (cmd/benchmark and
// cmd/serve; 0 = the full split).
func (o *Options) BindTraining(fs *flag.FlagSet) {
	fs.IntVar(&o.Dev, "dev", o.Dev, "max dev examples per benchmark (0 = all)")
	fs.IntVar(&o.Train, "train", o.Train, "max train examples for verifier training (0 = all)")
}

// Validate rejects option combinations no binary can run: negative
// counts and budgets, chaos probabilities outside [0,1], and slow-call
// injection with no latency to inject. Binaries call it right after
// flag.Parse so a bad invocation exits with usage help instead of
// producing a sweep that silently does something else.
func (o Options) Validate() error {
	if o.Beam < 1 {
		return fmt.Errorf("cliconf: -beam must be >= 1, got %d", o.Beam)
	}
	if o.Parallel < 0 || o.Workers < 0 {
		return fmt.Errorf("cliconf: -parallel and -workers must be >= 0, got %d and %d", o.Parallel, o.Workers)
	}
	if o.Timeout < 0 {
		return fmt.Errorf("cliconf: -timeout must be >= 0, got %v", o.Timeout)
	}
	if o.Dev < 0 || o.Train < 0 {
		return fmt.Errorf("cliconf: -dev and -train must be >= 0 (0 = all), got %d and %d", o.Dev, o.Train)
	}
	if o.Retries < 0 {
		return fmt.Errorf("cliconf: -retries must be >= 0, got %d", o.Retries)
	}
	if o.Breaker < 0 {
		return fmt.Errorf("cliconf: -breaker must be >= 0, got %d", o.Breaker)
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"-fault-rate", o.FaultRate},
		{"-fault-hang", o.FaultHang},
		{"-fault-panic", o.FaultPanic},
		{"-fault-slow", o.FaultSlow},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("cliconf: %s is a probability, must be in [0,1], got %g", r.name, r.v)
		}
	}
	if o.FaultLatency < 0 {
		return fmt.Errorf("cliconf: -fault-latency must be >= 0, got %v", o.FaultLatency)
	}
	if o.FaultSlow > 0 && o.FaultLatency == 0 {
		return fmt.Errorf("cliconf: -fault-slow %g with -fault-latency 0 injects nothing; set a latency or drop -fault-slow", o.FaultSlow)
	}
	return nil
}

// Built is the assembled runtime configuration: everything a binary needs
// to construct pipelines, sweeps and servers from one Options value.
type Built struct {
	// Limits carries the parallelism/timeout/cap knobs plus the armed
	// resilience policy and fault config, ready for the experiment
	// drivers and for Limits.Pipeline.
	Limits experiments.Limits
	// Policy is the resilience policy the options armed, or nil when
	// retries, breakers and chaos are all off. When non-nil it is the
	// same pointer Limits.Resilience holds; binaries print
	// Policy.Stats() as their exit reliability summary.
	Policy *resilience.Policy
	// Faults is the chaos configuration (also folded into Limits.Faults).
	Faults faultinject.Config
}

// Build assembles the canonical runtime configuration from the parsed
// options. The resilience policy is armed exactly when retries, a breaker
// threshold, or any chaos rate is configured — the rule both CLIs
// previously duplicated.
func (o Options) Build() Built {
	lim := experiments.DefaultLimits
	lim.MaxDev = o.Dev
	lim.MaxTrain = o.Train
	lim.Parallelism = o.Parallel
	lim.Workers = o.Workers
	lim.ExampleTimeout = o.Timeout
	faults := faultinject.Config{
		Seed:      o.FaultSeed,
		ErrorRate: o.FaultRate, HangRate: o.FaultHang,
		PanicRate: o.FaultPanic, LatencyRate: o.FaultSlow, Latency: o.FaultLatency,
	}
	lim.Faults = faults
	b := Built{Faults: faults}
	if o.Retries > 0 || o.Breaker > 0 || faults.Enabled() {
		b.Policy = &resilience.Policy{
			Retry:     resilience.Retry{MaxAttempts: o.Retries + 1, Seed: o.FaultSeed},
			Breaker:   resilience.BreakerConfig{Threshold: o.Breaker},
			Collector: &resilience.Collector{},
		}
		lim.Resilience = b.Policy
	}
	b.Limits = lim
	return b
}
