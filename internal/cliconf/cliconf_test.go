package cliconf

import (
	"flag"
	"strings"
	"testing"
	"time"

	"cyclesql/internal/experiments"
)

func parse(t *testing.T, bindAll bool, args ...string) Options {
	t.Helper()
	o := Default()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o.Bind(fs)
	if bindAll {
		o.BindBeam(fs)
		o.BindTraining(fs)
	}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return o
}

func TestDefaultsMatchExperimentHarness(t *testing.T) {
	b := parse(t, true).Build()
	if b.Limits.MaxDev != experiments.DefaultLimits.MaxDev || b.Limits.MaxTrain != experiments.DefaultLimits.MaxTrain {
		t.Fatalf("default caps drifted: %+v", b.Limits)
	}
	if b.Limits.Parallelism != 1 || b.Limits.Workers != 1 || b.Limits.ExampleTimeout != 0 {
		t.Fatalf("default parallelism drifted: %+v", b.Limits)
	}
	if b.Policy != nil || b.Limits.Resilience != nil {
		t.Fatal("no flags set must mean no resilience policy")
	}
	if b.Faults.Enabled() {
		t.Fatal("no flags set must mean no chaos")
	}
}

func TestFlagsFlowIntoLimits(t *testing.T) {
	o := parse(t, true,
		"-parallel", "4", "-workers", "8", "-timeout", "30s",
		"-beam", "5", "-dev", "120", "-train", "200")
	b := o.Build()
	if o.Beam != 5 {
		t.Fatalf("beam = %d", o.Beam)
	}
	if b.Limits.Parallelism != 4 || b.Limits.Workers != 8 || b.Limits.ExampleTimeout != 30*time.Second {
		t.Fatalf("limits = %+v", b.Limits)
	}
	if b.Limits.MaxDev != 120 || b.Limits.MaxTrain != 200 {
		t.Fatalf("caps = %+v", b.Limits)
	}
}

func TestResilienceArmsExactlyWhenConfigured(t *testing.T) {
	// Any of retries, breaker, or a chaos rate arms the policy; the
	// policy pointer must be shared with Limits.Resilience so sweeps and
	// exit summaries observe the same counters.
	for _, args := range [][]string{
		{"-retries", "4"},
		{"-breaker", "3"},
		{"-fault-rate", "0.2"},
		{"-fault-hang", "0.05"},
		{"-fault-panic", "0.05"},
		{"-fault-slow", "0.1"},
	} {
		b := parse(t, false, args...).Build()
		if b.Policy == nil {
			t.Fatalf("%v must arm the policy", args)
		}
		if b.Limits.Resilience != b.Policy {
			t.Fatalf("%v: policy pointer not shared with limits", args)
		}
	}
	b := parse(t, false, "-retries", "4", "-fault-seed", "7").Build()
	if got := b.Policy.Retry.MaxAttempts; got != 5 {
		t.Fatalf("retries 4 must mean 5 attempts, got %d", got)
	}
	if b.Policy.Retry.Seed != 7 || b.Faults.Seed != 7 {
		t.Fatal("fault seed must drive both jitter and chaos draws")
	}
	if b.Policy.Collector == nil {
		t.Fatal("armed policy must carry a collector for the exit summary")
	}
}

func TestValidateRejectsBadCombos(t *testing.T) {
	// Each case is a flag combination a binary must refuse at startup;
	// frag anchors the error on the offending flag.
	cases := []struct {
		args []string
		frag string
	}{
		{[]string{"-beam", "0"}, "-beam"},
		{[]string{"-beam", "-3"}, "-beam"},
		{[]string{"-parallel", "-1"}, "-parallel"},
		{[]string{"-workers", "-2"}, "-workers"},
		{[]string{"-timeout", "-5s"}, "-timeout"},
		{[]string{"-dev", "-1"}, "-dev"},
		{[]string{"-train", "-10"}, "-train"},
		{[]string{"-retries", "-1"}, "-retries"},
		{[]string{"-breaker", "-1"}, "-breaker"},
		{[]string{"-fault-rate", "1.5"}, "-fault-rate"},
		{[]string{"-fault-rate", "-0.1"}, "-fault-rate"},
		{[]string{"-fault-hang", "2"}, "-fault-hang"},
		{[]string{"-fault-panic", "-1"}, "-fault-panic"},
		{[]string{"-fault-slow", "1.01"}, "-fault-slow"},
		{[]string{"-fault-latency", "-1ms"}, "-fault-latency"},
		{[]string{"-fault-slow", "0.5", "-fault-latency", "0"}, "-fault-slow"},
	}
	for _, c := range cases {
		o := parse(t, true, c.args...)
		err := o.Validate()
		if err == nil {
			t.Fatalf("%v must fail validation", c.args)
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Fatalf("%v: error %q does not name %s", c.args, err, c.frag)
		}
	}
}

func TestValidateAcceptsWorkingCombos(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-parallel", "0", "-workers", "0"}, // zero means sequential, not invalid
		{"-dev", "0", "-train", "0"},        // zero caps mean the full split
		{"-fault-rate", "1", "-fault-hang", "0", "-retries", "0"},
		{"-fault-slow", "0.5", "-fault-latency", "1ms"},
		{"-retries", "6", "-breaker", "2", "-timeout", "45s", "-beam", "5"},
	} {
		if err := parse(t, true, args...).Validate(); err != nil {
			t.Fatalf("%v must validate: %v", args, err)
		}
	}
}

func TestResilienceArmingEdgeCases(t *testing.T) {
	// Zero-valued chaos rates must not arm the policy even when the
	// latency/seed knobs are explicitly set: only rates make chaos real.
	b := parse(t, false, "-fault-latency", "5ms", "-fault-seed", "42").Build()
	if b.Policy != nil || b.Faults.Enabled() {
		t.Fatal("latency/seed without any rate must stay unarmed")
	}
	// Retries 0 with a breaker still arms (breaker-only operation), and
	// MaxAttempts 1 keeps single attempts.
	b = parse(t, false, "-breaker", "2").Build()
	if b.Policy == nil {
		t.Fatal("breaker alone must arm the policy")
	}
	if got := b.Policy.Retry.MaxAttempts; got != 1 {
		t.Fatalf("breaker-only policy must keep single attempts, got %d", got)
	}
	if got := b.Policy.Breaker.Threshold; got != 2 {
		t.Fatalf("breaker threshold = %d", got)
	}
	// Chaos alone arms too: injected faults need the retry machinery to
	// be survivable, even at MaxAttempts 1 the collector observes them.
	b = parse(t, false, "-fault-rate", "0.3").Build()
	if b.Policy == nil || b.Limits.Resilience != b.Policy {
		t.Fatal("chaos alone must arm and share the policy")
	}
}

func TestChaosConfigRoundTrip(t *testing.T) {
	b := parse(t, false,
		"-fault-rate", "0.2", "-fault-hang", "0.05", "-fault-panic", "0.01",
		"-fault-slow", "0.1", "-fault-latency", "200us", "-fault-seed", "7").Build()
	f := b.Faults
	if f.ErrorRate != 0.2 || f.HangRate != 0.05 || f.PanicRate != 0.01 || f.LatencyRate != 0.1 {
		t.Fatalf("rates = %+v", f)
	}
	if f.Latency != 200*time.Microsecond || f.Seed != 7 {
		t.Fatalf("latency/seed = %+v", f)
	}
	if b.Limits.Faults != f {
		t.Fatal("faults must be folded into the limits too")
	}
}
