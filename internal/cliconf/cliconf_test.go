package cliconf

import (
	"flag"
	"testing"
	"time"

	"cyclesql/internal/experiments"
)

func parse(t *testing.T, bindAll bool, args ...string) Options {
	t.Helper()
	o := Default()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o.Bind(fs)
	if bindAll {
		o.BindBeam(fs)
		o.BindTraining(fs)
	}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return o
}

func TestDefaultsMatchExperimentHarness(t *testing.T) {
	b := parse(t, true).Build()
	if b.Limits.MaxDev != experiments.DefaultLimits.MaxDev || b.Limits.MaxTrain != experiments.DefaultLimits.MaxTrain {
		t.Fatalf("default caps drifted: %+v", b.Limits)
	}
	if b.Limits.Parallelism != 1 || b.Limits.Workers != 1 || b.Limits.ExampleTimeout != 0 {
		t.Fatalf("default parallelism drifted: %+v", b.Limits)
	}
	if b.Policy != nil || b.Limits.Resilience != nil {
		t.Fatal("no flags set must mean no resilience policy")
	}
	if b.Faults.Enabled() {
		t.Fatal("no flags set must mean no chaos")
	}
}

func TestFlagsFlowIntoLimits(t *testing.T) {
	o := parse(t, true,
		"-parallel", "4", "-workers", "8", "-timeout", "30s",
		"-beam", "5", "-dev", "120", "-train", "200")
	b := o.Build()
	if o.Beam != 5 {
		t.Fatalf("beam = %d", o.Beam)
	}
	if b.Limits.Parallelism != 4 || b.Limits.Workers != 8 || b.Limits.ExampleTimeout != 30*time.Second {
		t.Fatalf("limits = %+v", b.Limits)
	}
	if b.Limits.MaxDev != 120 || b.Limits.MaxTrain != 200 {
		t.Fatalf("caps = %+v", b.Limits)
	}
}

func TestResilienceArmsExactlyWhenConfigured(t *testing.T) {
	// Any of retries, breaker, or a chaos rate arms the policy; the
	// policy pointer must be shared with Limits.Resilience so sweeps and
	// exit summaries observe the same counters.
	for _, args := range [][]string{
		{"-retries", "4"},
		{"-breaker", "3"},
		{"-fault-rate", "0.2"},
		{"-fault-hang", "0.05"},
		{"-fault-panic", "0.05"},
		{"-fault-slow", "0.1"},
	} {
		b := parse(t, false, args...).Build()
		if b.Policy == nil {
			t.Fatalf("%v must arm the policy", args)
		}
		if b.Limits.Resilience != b.Policy {
			t.Fatalf("%v: policy pointer not shared with limits", args)
		}
	}
	b := parse(t, false, "-retries", "4", "-fault-seed", "7").Build()
	if got := b.Policy.Retry.MaxAttempts; got != 5 {
		t.Fatalf("retries 4 must mean 5 attempts, got %d", got)
	}
	if b.Policy.Retry.Seed != 7 || b.Faults.Seed != 7 {
		t.Fatal("fault seed must drive both jitter and chaos draws")
	}
	if b.Policy.Collector == nil {
		t.Fatal("armed policy must carry a collector for the exit summary")
	}
}

func TestChaosConfigRoundTrip(t *testing.T) {
	b := parse(t, false,
		"-fault-rate", "0.2", "-fault-hang", "0.05", "-fault-panic", "0.01",
		"-fault-slow", "0.1", "-fault-latency", "200us", "-fault-seed", "7").Build()
	f := b.Faults
	if f.ErrorRate != 0.2 || f.HangRate != 0.05 || f.PanicRate != 0.01 || f.LatencyRate != 0.1 {
		t.Fatalf("rates = %+v", f)
	}
	if f.Latency != 200*time.Microsecond || f.Seed != 7 {
		t.Fatalf("latency/seed = %+v", f)
	}
	if b.Limits.Faults != f {
		t.Fatal("faults must be folded into the limits too")
	}
}
