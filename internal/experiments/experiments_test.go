package experiments

import (
	"context"
	"strings"
	"testing"
)

// tinyLimits keeps unit-test experiment runs fast; bench_test.go exercises
// larger budgets.
var tinyLimits = Limits{
	MaxDev:      40,
	MaxTrain:    120,
	TrainModels: []string{"resdsql-3b", "gpt-3.5-turbo"},
}

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	want := []string{"fig1", "table1", "table2", "fig8a", "fig8b", "fig9", "table3", "table4", "fig10"}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Fatalf("experiment %s missing from registry", id)
		}
	}
	if len(IDs) != len(want) {
		t.Fatalf("IDs list drifted: %v", IDs)
	}
}

func TestFig1MonotoneInBeamSize(t *testing.T) {
	table, err := Fig1(context.Background(), tinyLimits)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range table.Rows {
		prev := -1.0
		for _, cell := range row.Values {
			v := firstFloatCell(cell)
			if v+1e-9 < prev {
				t.Fatalf("%s: any-beam accuracy must be monotone: %v", row.Label, row.Values)
			}
			prev = v
		}
	}
}

func TestTable4ContainsCaseStudy(t *testing.T) {
	table, err := Table4(context.Background(), tinyLimits)
	if err != nil {
		t.Fatal(err)
	}
	text := table.String()
	for _, want := range []string{"Aruba", "Anguilla", "English", "French"} {
		if !strings.Contains(text, want) {
			t.Fatalf("case study missing %q:\n%s", want, text)
		}
	}
	if len(table.Rows) != 2*5 {
		t.Fatalf("expected 5 question+explanation row pairs, got %d rows", len(table.Rows))
	}
}

func TestFig10PrefersCycleSQL(t *testing.T) {
	table, err := Fig10(context.Background(), tinyLimits)
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	for _, row := range table.Rows {
		if row.Values[0] != string("overall") {
			continue
		}
		simple := firstFloatCell(row.Values[1])
		cycle := firstFloatCell(row.Values[2])
		if cycle > simple {
			wins++
		}
	}
	if wins < 3 {
		t.Fatalf("cyclesql must win most overall ratings, won %d/5:\n%s", wins, table.String())
	}
}

func TestTableRendering(t *testing.T) {
	table := &Table{
		Title:   "T",
		Headers: []string{"a", "b"},
		Rows:    []Row{{Label: "x", Values: []string{"1", "2"}}},
	}
	s := table.String()
	if !strings.Contains(s, "T\n") || !strings.Contains(s, "x") || !strings.Contains(s, "2") {
		t.Fatalf("render: %q", s)
	}
}

func TestDeltaFormatting(t *testing.T) {
	if got := delta(82.0, 79.4); got != "82.0(+2.6)" {
		t.Fatalf("delta = %q", got)
	}
	if got := delta(70.0, 71.0); got != "70.0(-1.0)" {
		t.Fatalf("delta = %q", got)
	}
	if got := delta(70.0, 70.0); got != "70.0" {
		t.Fatalf("delta = %q", got)
	}
}

func firstFloatCell(cell string) float64 {
	end := 0
	for end < len(cell) && (cell[end] == '.' || cell[end] >= '0' && cell[end] <= '9') {
		end++
	}
	var v float64
	for i := 0; i < end; i++ {
		if cell[i] == '.' {
			frac := 0.1
			for j := i + 1; j < end; j++ {
				v += float64(cell[j]-'0') * frac
				frac /= 10
			}
			break
		}
		v = v*10 + float64(cell[i]-'0')
	}
	return v
}
