// Package experiments regenerates every table and figure of the paper's
// evaluation section (§V). Each driver returns structured rows and can
// render the same text layout the paper prints; bench_test.go exposes one
// testing.B benchmark per artifact and cmd/benchmark drives them from the
// command line.
//
// Experiment index (mirrors DESIGN.md):
//
//	fig1    accuracy vs beam size (Fig 1)
//	table1  overall EM/EX/TS, base vs +CycleSQL, five benchmarks (Table I)
//	table2  EX by Spider difficulty (Table II)
//	fig8a   average iterations (Fig 8a)
//	fig8b   inference latency with/without CycleSQL (Fig 8b)
//	fig9    feedback-quality ablation, CycleSQL vs SQL2NL (Fig 9)
//	table3  verifier-selection ablation (Table III)
//	fig10   simulated user study (Fig 10)
//	table4  case-study explanations on world_1 (Table IV)
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cyclesql/internal/core"
	"cyclesql/internal/datasets"
	"cyclesql/internal/eval"
	"cyclesql/internal/nl2sql"
	"cyclesql/internal/nli"
)

// Limits keeps experiment runtime tractable; 0 means the full split.
type Limits struct {
	MaxDev      int
	MaxTrain    int
	TrainModels []string
	// Parallelism is handed to every pipeline's feedback loop (see
	// core.Pipeline.Parallelism): 0 or 1 keeps the paper's sequential
	// candidate loop, higher values verify beam candidates concurrently
	// with identical results.
	Parallelism int
}

// DefaultLimits balances fidelity and runtime for the benchmark harness.
var DefaultLimits = Limits{
	MaxDev:   240,
	MaxTrain: 500,
	TrainModels: []string{
		"resdsql-3b", "resdsql-large", "gpt-3.5-turbo", "smbop", "picard-3b",
	},
}

// verifier training is the expensive shared step; cache per config key.
var (
	verifierMu    sync.Mutex
	verifierCache = map[string]*nli.Trained{}
)

// Verifier returns the frozen verifier trained on the Spider train split
// (the paper trains once and freezes it for all robustness benchmarks).
func Verifier(lim Limits) *nli.Trained {
	key := fmt.Sprintf("%d-%s", lim.MaxTrain, strings.Join(lim.TrainModels, ","))
	verifierMu.Lock()
	defer verifierMu.Unlock()
	if v, ok := verifierCache[key]; ok {
		return v
	}
	bench := datasets.Spider()
	v := core.TrainVerifier(bench,
		core.TrainDataConfig{Models: lim.TrainModels, MaxExamples: lim.MaxTrain, Seed: 1},
		nli.TrainConfig{Seed: 2},
	)
	verifierCache[key] = v
	return v
}

// devSlice bounds a dev split.
func devSlice(b *datasets.Benchmark, lim Limits) []datasets.Example {
	dev := b.Dev
	if lim.MaxDev > 0 && len(dev) > lim.MaxDev {
		dev = dev[:lim.MaxDev]
	}
	return dev
}

// suiteFor caches distilled test suites per database (TS metric).
var (
	suiteMu    sync.Mutex
	suiteCache = map[string]*eval.Suite{}
)

func suiteFor(b *datasets.Benchmark, dbName string) *eval.Suite {
	key := b.Name + "/" + dbName
	suiteMu.Lock()
	defer suiteMu.Unlock()
	if s, ok := suiteCache[key]; ok {
		return s
	}
	s := eval.BuildSuite(b.DB(dbName), int64(len(key))*31+7)
	suiteCache[key] = s
	return s
}

// RunPair evaluates one model on one benchmark, base vs +CycleSQL.
type PairScores struct {
	Model      string
	Benchmark  string
	Base, Loop eval.Scores
	// AvgIterations and overhead feed Fig 8.
	AvgIterations float64
	AvgOverheadMS float64
}

// EvaluateModel runs the base model and the CycleSQL pipeline over the
// benchmark's dev split and scores both with EM/EX/TS.
func EvaluateModel(b *datasets.Benchmark, modelName string, verifier nli.Verifier, lim Limits) (PairScores, error) {
	model := nl2sql.MustByName(modelName)
	p := core.NewPipeline(model, verifier, b.Name)
	p.Parallelism = lim.Parallelism
	if isLLM(modelName) {
		p.BeamSize = 5 // the paper's chat-completion n parameter
	}
	var baseC, loopC eval.Counter
	iterSum, overheadSum := 0.0, 0.0
	dev := devSlice(b, lim)
	for _, ex := range dev {
		db := b.DB(ex.DBName)
		suite := suiteFor(b, ex.DBName)
		base, err := p.Baseline(ex, db)
		if err != nil {
			return PairScores{}, err
		}
		baseC.Add(eval.EM(base, ex.Gold), eval.EX(db, base, ex.Gold), eval.TS(suite, base, ex.Gold))
		res, err := p.Translate(ex, db)
		if err != nil {
			return PairScores{}, err
		}
		loopC.Add(eval.EM(res.Final, ex.Gold), eval.EX(db, res.Final, ex.Gold), eval.TS(suite, res.Final, ex.Gold))
		iterSum += float64(res.Iterations)
		overheadSum += float64(res.Overhead.Microseconds()) / 1000.0
	}
	n := float64(len(dev))
	return PairScores{
		Model:         modelName,
		Benchmark:     b.Name,
		Base:          baseC.Scores(),
		Loop:          loopC.Scores(),
		AvgIterations: iterSum / n,
		AvgOverheadMS: overheadSum / n,
	}, nil
}

func isLLM(model string) bool {
	switch model {
	case "gpt-3.5-turbo", "gpt-4", "chess", "dail-sql":
		return true
	}
	return false
}

// Row is one printable result line.
type Row struct {
	Label  string
	Values []string
}

// Table is a printable experiment artifact.
type Table struct {
	Title   string
	Headers []string
	Rows    []Row
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers)+1)
	widths[0] = len("model")
	for _, r := range t.Rows {
		if len(r.Label) > widths[0] {
			widths[0] = len(r.Label)
		}
		for i, v := range r.Values {
			if i+1 < len(widths) && len(v) > widths[i+1] {
				widths[i+1] = len(v)
			}
		}
	}
	for i, h := range t.Headers {
		if len(h) > widths[i+1] {
			widths[i+1] = len(h)
		}
	}
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	pad := func(s string, w int) string {
		for len(s) < w {
			s += " "
		}
		return s
	}
	b.WriteString(pad("", widths[0]))
	for i, h := range t.Headers {
		b.WriteString("  ")
		b.WriteString(pad(h, widths[i+1]))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(pad(r.Label, widths[0]))
		for i, v := range r.Values {
			b.WriteString("  ")
			if i+1 < len(widths) {
				b.WriteString(pad(v, widths[i+1]))
			} else {
				b.WriteString(v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func pct(v float64) string { return fmt.Sprintf("%.1f", v) }

func delta(loop, base float64) string {
	d := loop - base
	switch {
	case d > 0.05:
		return fmt.Sprintf("%.1f(+%.1f)", loop, d)
	case d < -0.05:
		return fmt.Sprintf("%.1f(%.1f)", loop, d)
	default:
		return fmt.Sprintf("%.1f", loop)
	}
}

// sortedKeys returns map keys in deterministic order.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
