// Package experiments regenerates every table and figure of the paper's
// evaluation section (§V). Each driver returns structured rows and can
// render the same text layout the paper prints; bench_test.go exposes one
// testing.B benchmark per artifact and cmd/benchmark drives them from the
// command line.
//
// Experiment index (mirrors DESIGN.md):
//
//	fig1    accuracy vs beam size (Fig 1)
//	table1  overall EM/EX/TS, base vs +CycleSQL, five benchmarks (Table I)
//	table2  EX by Spider difficulty (Table II)
//	fig8a   average iterations (Fig 8a)
//	fig8b   inference latency with/without CycleSQL (Fig 8b)
//	fig9    feedback-quality ablation, CycleSQL vs SQL2NL (Fig 9)
//	table3  verifier-selection ablation (Table III)
//	fig10   simulated user study (Fig 10)
//	table4  case-study explanations on world_1 (Table IV)
//
// Concurrency: the drivers sweep dev examples through the Batch worker
// pool (batch.go), writing per-example outcomes into index slots and
// folding them in example order, so every accuracy and iteration column
// is bit-identical at every Limits.Workers count (measured-wall-clock
// columns — Fig 8b's overhead — vary run to run regardless of workers);
// the candidate-level Parallelism knob composes underneath it. The package-level caches here (trained verifiers,
// distilled test suites) are mutex-guarded and shared freely across
// workers; datasets.Benchmark values are immutable after construction and
// safe to read from any goroutine. Each driver builds its pipelines
// before the sweep and shares them across workers — core.Pipeline is safe
// for concurrent Translate calls.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"cyclesql/internal/core"
	"cyclesql/internal/datasets"
	"cyclesql/internal/eval"
	"cyclesql/internal/faultinject"
	"cyclesql/internal/nl2sql"
	"cyclesql/internal/nli"
	"cyclesql/internal/resilience"
)

// Limits keeps experiment runtime tractable; 0 means the full split.
type Limits struct {
	MaxDev      int
	MaxTrain    int
	TrainModels []string
	// Parallelism is handed to every pipeline's feedback loop (see
	// core.Pipeline.Parallelism): 0 or 1 keeps the paper's sequential
	// candidate loop, higher values verify beam candidates concurrently
	// with identical results.
	Parallelism int
	// Workers bounds how many dev examples each driver evaluates
	// concurrently (see Batch): 0 or 1 sweeps sequentially, higher values
	// overlap whole examples with identical per-example results and
	// bit-identical accuracy/iteration aggregates (measured wall-clock,
	// like Fig 8b's overhead column, varies with load as it always has).
	// Workers multiplies with Parallelism
	// — w workers each verifying p candidates run up to w*p executions at
	// once — so size the product to the core count (or, under simulated
	// inference latency, to the latency you want overlapped).
	Workers int
	// ExampleTimeout, when nonzero, is the per-example wall-clock budget
	// the batch runner enforces; an example that exceeds it fails with the
	// deadline error instead of stalling the sweep.
	ExampleTimeout time.Duration
	// Resilience, when non-nil, is handed to every pipeline the drivers
	// build (see core.Pipeline.Resilience): retries for transient stage
	// faults, per-stage circuit breakers, and shared reliability counters.
	Resilience *resilience.Policy
	// Faults configures deterministic chaos injection around every model
	// call of every pipeline the drivers build (the zero value injects
	// nothing and adds no wrappers). With Resilience retries enabled and
	// no retry-budget exhaustion, a faulted sweep's tables are
	// bit-identical to the fault-free sweep's — the chaos-parity property
	// the test suite locks in.
	Faults faultinject.Config
}

// Pipeline builds one loop pipeline under the limits: the fault injector
// wraps the model, verifier and feedback (when faults are enabled), and
// the parallelism knob and resilience policy apply uniformly. A nil fb
// means the default data-grounded feedback. The experiment drivers, the
// CLIs and the HTTP serving layer all assemble their pipelines here, so
// the three surfaces cannot drift.
func (l Limits) Pipeline(model nl2sql.Model, verifier nli.Verifier, benchmark string, fb core.Feedback) *core.Pipeline {
	inj := faultinject.New(l.Faults)
	p := core.New(inj.WrapModel(model),
		core.WithVerifier(inj.WrapVerifier(verifier)),
		core.WithBenchmark(benchmark),
		core.WithParallelism(l.Parallelism),
		core.WithResilience(l.Resilience),
	)
	if fb == nil {
		fb = p.Feedback
	}
	p.Feedback = inj.WrapFeedback(fb)
	return p
}

// batch returns the cross-example worker pool the limits configure.
func (l Limits) batch() Batch {
	return Batch{Workers: l.Workers, Timeout: l.ExampleTimeout}
}

// DefaultLimits balances fidelity and runtime for the benchmark harness.
var DefaultLimits = Limits{
	MaxDev:   240,
	MaxTrain: 500,
	TrainModels: []string{
		"resdsql-3b", "resdsql-large", "gpt-3.5-turbo", "smbop", "picard-3b",
	},
}

// verifier training is the expensive shared step; cache per config key.
var (
	verifierMu    sync.Mutex
	verifierCache = map[string]*nli.Trained{}
)

// Verifier returns the frozen verifier trained on the Spider train split
// (the paper trains once and freezes it for all robustness benchmarks).
func Verifier(lim Limits) *nli.Trained {
	key := fmt.Sprintf("%d-%s", lim.MaxTrain, strings.Join(lim.TrainModels, ","))
	verifierMu.Lock()
	defer verifierMu.Unlock()
	if v, ok := verifierCache[key]; ok {
		return v
	}
	bench := datasets.Spider()
	// Trained once and cached for every later caller, so collection runs
	// under a background context on purpose: cancelling one experiment's
	// context must not poison the shared verifier for the rest.
	v := core.TrainVerifier(context.Background(), bench,
		core.TrainDataConfig{Models: lim.TrainModels, MaxExamples: lim.MaxTrain, Seed: 1},
		nli.TrainConfig{Seed: 2},
	)
	verifierCache[key] = v
	return v
}

// devSlice bounds a dev split.
func devSlice(b *datasets.Benchmark, lim Limits) []datasets.Example {
	dev := b.Dev
	if lim.MaxDev > 0 && len(dev) > lim.MaxDev {
		dev = dev[:lim.MaxDev]
	}
	return dev
}

// suiteFor caches distilled test suites per database (TS metric). The
// mutex covers only the map; each suite builds under its own sync.Once,
// so batch workers needing different databases distill concurrently and
// cached lookups never block behind an in-progress build.
var (
	suiteMu    sync.Mutex
	suiteCache = map[string]*suiteEntry{}
)

type suiteEntry struct {
	once  sync.Once
	suite *eval.Suite
}

func suiteFor(b *datasets.Benchmark, dbName string) *eval.Suite {
	key := b.Name + "/" + dbName
	suiteMu.Lock()
	e, ok := suiteCache[key]
	if !ok {
		e = &suiteEntry{}
		suiteCache[key] = e
	}
	suiteMu.Unlock()
	e.once.Do(func() { e.suite = eval.BuildSuite(b.DB(dbName), int64(len(key))*31+7) })
	return e.suite
}

// RunPair evaluates one model on one benchmark, base vs +CycleSQL.
type PairScores struct {
	Model      string
	Benchmark  string
	Base, Loop eval.Scores
	// AvgIterations and overhead feed Fig 8.
	AvgIterations float64
	AvgOverheadMS float64
	// Retries and Degraded surface the sweep's resilience outcomes: total
	// transient re-attempts the loop healed from, and how many examples
	// returned a degraded (verify-breaker-open) Result. Both are zero on a
	// fault-free run and deterministic under deterministic fault injection.
	Retries  int
	Degraded int
}

// exampleScores is one example's contribution to PairScores, captured in
// its index slot by a batch worker and folded in dev order afterwards.
type exampleScores struct {
	baseEM, baseEX, baseTS bool
	loopEM, loopEX, loopTS bool
	iterations             int
	overheadMS             float64
	retries                int
	degraded               bool
}

// EvaluateModel runs the base model and the CycleSQL pipeline over the
// benchmark's dev split and scores both with EM/EX/TS. The sweep runs on
// the Limits' batch pool: per-example outcomes land in index slots and
// fold in dev order, so the scores are identical at every worker count.
func EvaluateModel(ctx context.Context, b *datasets.Benchmark, modelName string, verifier nli.Verifier, lim Limits) (PairScores, error) {
	model := nl2sql.MustByName(modelName)
	p := lim.Pipeline(model, verifier, b.Name, nil)
	if isLLM(modelName) {
		p.BeamSize = 5 // the paper's chat-completion n parameter
	}
	dev := devSlice(b, lim)
	outs := make([]exampleScores, len(dev))
	errs := lim.batch().Run(ctx, len(dev), func(ctx context.Context, i int) error {
		ex := dev[i]
		db := b.DB(ex.DBName)
		suite := suiteFor(b, ex.DBName)
		base, err := p.BaselineContext(ctx, ex, db)
		if err != nil {
			return err
		}
		res, err := p.Translate(ctx, ex, db)
		if err != nil {
			return err
		}
		outs[i] = exampleScores{
			baseEM: eval.EM(base, ex.Gold), baseEX: eval.EXContext(ctx, db, base, ex.Gold), baseTS: eval.TSContext(ctx, suite, base, ex.Gold),
			loopEM: eval.EM(res.Final, ex.Gold), loopEX: eval.EXContext(ctx, db, res.Final, ex.Gold), loopTS: eval.TSContext(ctx, suite, res.Final, ex.Gold),
			iterations: res.Iterations,
			overheadMS: float64(res.Overhead.Microseconds()) / 1000.0,
			retries:    res.Retries,
			degraded:   res.Degraded,
		}
		// Scoring under a fired deadline silently fails EX/TS; surface the
		// deadline as this example's error instead of recording bogus scores.
		return ctx.Err()
	})
	if err := firstError(dev, errs); err != nil {
		return PairScores{}, err
	}
	var baseC, loopC eval.Counter
	iterSum, overheadSum := 0.0, 0.0
	retries, degraded := 0, 0
	for _, o := range outs {
		baseC.Add(o.baseEM, o.baseEX, o.baseTS)
		loopC.Add(o.loopEM, o.loopEX, o.loopTS)
		iterSum += float64(o.iterations)
		overheadSum += o.overheadMS
		retries += o.retries
		if o.degraded {
			degraded++
		}
	}
	n := float64(len(dev))
	return PairScores{
		Model:         modelName,
		Benchmark:     b.Name,
		Base:          baseC.Scores(),
		Loop:          loopC.Scores(),
		AvgIterations: iterSum / n,
		AvgOverheadMS: overheadSum / n,
		Retries:       retries,
		Degraded:      degraded,
	}, nil
}

// firstError surfaces the first (dev-order) per-example failure from a
// batch sweep, tagged with the example it belongs to.
func firstError(dev []datasets.Example, errs []error) error {
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("example %s: %w", dev[i].ID, err)
		}
	}
	return nil
}

func isLLM(model string) bool {
	switch model {
	case "gpt-3.5-turbo", "gpt-4", "chess", "dail-sql":
		return true
	}
	return false
}

// Row is one printable result line.
type Row struct {
	Label  string
	Values []string
}

// Table is a printable experiment artifact.
type Table struct {
	Title   string
	Headers []string
	Rows    []Row
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers)+1)
	widths[0] = len("model")
	for _, r := range t.Rows {
		if len(r.Label) > widths[0] {
			widths[0] = len(r.Label)
		}
		for i, v := range r.Values {
			if i+1 < len(widths) && len(v) > widths[i+1] {
				widths[i+1] = len(v)
			}
		}
	}
	for i, h := range t.Headers {
		if len(h) > widths[i+1] {
			widths[i+1] = len(h)
		}
	}
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	pad := func(s string, w int) string {
		for len(s) < w {
			s += " "
		}
		return s
	}
	b.WriteString(pad("", widths[0]))
	for i, h := range t.Headers {
		b.WriteString("  ")
		b.WriteString(pad(h, widths[i+1]))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(pad(r.Label, widths[0]))
		for i, v := range r.Values {
			b.WriteString("  ")
			if i+1 < len(widths) {
				b.WriteString(pad(v, widths[i+1]))
			} else {
				b.WriteString(v)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func pct(v float64) string { return fmt.Sprintf("%.1f", v) }

func delta(loop, base float64) string {
	d := loop - base
	switch {
	case d > 0.05:
		return fmt.Sprintf("%.1f(+%.1f)", loop, d)
	case d < -0.05:
		return fmt.Sprintf("%.1f(%.1f)", loop, d)
	default:
		return fmt.Sprintf("%.1f", loop)
	}
}

// sortedKeys returns map keys in deterministic order.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
