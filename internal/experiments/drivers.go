package experiments

import (
	"context"
	"fmt"
	"time"

	"cyclesql/internal/core"
	"cyclesql/internal/datasets"
	"cyclesql/internal/eval"
	"cyclesql/internal/explain"
	"cyclesql/internal/nl2sql"
	"cyclesql/internal/nli"
	"cyclesql/internal/sql2nl"
	"cyclesql/internal/sqleval"
	"cyclesql/internal/sqlnorm"
	"cyclesql/internal/userstudy"
)

// Fig1 reproduces Fig 1: translation accuracy (any-beam-match EX) on the
// Spider dev split as the beam size (or chat-completion count) grows.
func Fig1(ctx context.Context, lim Limits) (*Table, error) {
	bench := datasets.Spider()
	dev := devSlice(bench, lim)
	models := []string{"picard-3b", "resdsql-large", "gpt-3.5-turbo", "dail-sql"}
	t := &Table{
		Title:   "Fig 1: accuracy vs beam size (any-beam EX, Spider dev)",
		Headers: []string{"k=1", "k=2", "k=3", "k=4", "k=5"},
	}
	for _, name := range models {
		model := nl2sql.MustByName(name)
		// One batch sweep per model scores all five beam widths for an
		// example at once; hits fold in dev order below.
		hits := make([][5]bool, len(dev))
		errs := lim.batch().Run(ctx, len(dev), func(ctx context.Context, i int) error {
			ex := dev[i]
			db := bench.DB(ex.DBName)
			for k := 1; k <= 5; k++ {
				for _, cand := range model.Translate(bench.Name, ex, db, k) {
					if eval.EXContext(ctx, db, cand.Stmt, ex.Gold) {
						hits[i][k-1] = true
						break
					}
				}
			}
			// A fired deadline silently fails EXContext; report it rather
			// than recording bogus misses.
			return ctx.Err()
		})
		if err := firstError(dev, errs); err != nil {
			return nil, err
		}
		row := Row{Label: name}
		for k := 1; k <= 5; k++ {
			hit := 0
			for i := range hits {
				if hits[i][k-1] {
					hit++
				}
			}
			row.Values = append(row.Values, pct(100*float64(hit)/float64(len(dev))))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table1Benchmarks lists the evaluation benchmarks in paper order.
var Table1Benchmarks = []string{"spider", "spider-realistic", "spider-syn", "spider-dk", "science"}

// Table1Models lists the model rows in paper order.
var Table1Models = []string{
	"smbop", "picard-3b", "resdsql-large", "resdsql-3b",
	"gpt-3.5-turbo", "gpt-4", "chess", "dail-sql",
}

// Table1 reproduces Table I: EM/EX/TS for every model, base vs +CycleSQL,
// across the five benchmarks, with the verifier frozen from Spider.
func Table1(ctx context.Context, lim Limits) (*Table, error) {
	verifier := Verifier(lim)
	t := &Table{
		Title:   "Table I: overall translation results (EM/EX/TS %), base vs +CycleSQL",
		Headers: []string{"benchmark", "variant", "EM", "EX", "TS"},
	}
	for _, benchName := range Table1Benchmarks {
		bench, err := datasets.ByName(benchName)
		if err != nil {
			return nil, err
		}
		for _, model := range Table1Models {
			ps, err := EvaluateModel(ctx, bench, model, verifier, lim)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows,
				Row{Label: model, Values: []string{benchName, "base",
					pct(ps.Base.EM), pct(ps.Base.EX), pct(ps.Base.TS)}},
				Row{Label: model, Values: []string{benchName, "+cyclesql",
					delta(ps.Loop.EM, ps.Base.EM), delta(ps.Loop.EX, ps.Base.EX), delta(ps.Loop.TS, ps.Base.TS)}},
			)
		}
	}
	return t, nil
}

// Table2 reproduces Table II: Spider dev EX broken down by difficulty.
func Table2(ctx context.Context, lim Limits) (*Table, error) {
	verifier := Verifier(lim)
	bench := datasets.Spider()
	dev := devSlice(bench, lim)
	t := &Table{
		Title:   "Table II: execution accuracy (%) by SQL difficulty (Spider dev)",
		Headers: []string{"variant", "easy", "medium", "hard", "extra"},
	}
	for _, modelName := range Table1Models {
		model := nl2sql.MustByName(modelName)
		p := lim.Pipeline(model, verifier, bench.Name, nil)
		if isLLM(modelName) {
			p.BeamSize = 5
		}
		type exampleEX struct{ baseOK, loopOK bool }
		outs := make([]exampleEX, len(dev))
		errs := lim.batch().Run(ctx, len(dev), func(ctx context.Context, i int) error {
			ex := dev[i]
			db := bench.DB(ex.DBName)
			base, err := p.BaselineContext(ctx, ex, db)
			if err != nil {
				return err
			}
			res, err := p.Translate(ctx, ex, db)
			if err != nil {
				return err
			}
			outs[i] = exampleEX{
				baseOK: eval.EXContext(ctx, db, base, ex.Gold),
				loopOK: eval.EXContext(ctx, db, res.Final, ex.Gold),
			}
			return ctx.Err()
		})
		if err := firstError(dev, errs); err != nil {
			return nil, err
		}
		type bucket struct{ baseOK, loopOK, n int }
		buckets := map[sqlnorm.Difficulty]*bucket{}
		for _, d := range sqlnorm.Difficulties {
			buckets[d] = &bucket{}
		}
		for i, ex := range dev {
			bk := buckets[ex.Difficulty]
			bk.n++
			if outs[i].baseOK {
				bk.baseOK++
			}
			if outs[i].loopOK {
				bk.loopOK++
			}
		}
		baseRow := Row{Label: modelName, Values: []string{"base"}}
		loopRow := Row{Label: modelName, Values: []string{"+cyclesql"}}
		for _, d := range sqlnorm.Difficulties {
			bk := buckets[d]
			if bk.n == 0 {
				baseRow.Values = append(baseRow.Values, "-")
				loopRow.Values = append(loopRow.Values, "-")
				continue
			}
			base := 100 * float64(bk.baseOK) / float64(bk.n)
			loop := 100 * float64(bk.loopOK) / float64(bk.n)
			baseRow.Values = append(baseRow.Values, pct(base))
			loopRow.Values = append(loopRow.Values, delta(loop, base))
		}
		t.Rows = append(t.Rows, baseRow, loopRow)
	}
	return t, nil
}

// Fig8aModels are the models whose iteration counts the paper reports.
var Fig8aModels = []string{"smbop", "picard-3b", "resdsql-large", "resdsql-3b", "gpt-3.5-turbo"}

// Fig8a reproduces Fig 8a: average CycleSQL iterations on Spider dev.
func Fig8a(ctx context.Context, lim Limits) (*Table, error) {
	verifier := Verifier(lim)
	bench := datasets.Spider()
	t := &Table{
		Title:   "Fig 8a: average iterations of CycleSQL (Spider dev)",
		Headers: []string{"avg iterations"},
	}
	for _, modelName := range Fig8aModels {
		ps, err := EvaluateModel(ctx, bench, modelName, verifier, lim)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{Label: modelName, Values: []string{fmt.Sprintf("%.2f", ps.AvgIterations)}})
	}
	return t, nil
}

// Fig8bModels are the latency-comparison models (the paper omits PICARD,
// whose token-level constrained decoding is orders slower).
var Fig8bModels = []string{"smbop", "resdsql-large", "resdsql-3b", "gpt-3.5-turbo"}

// Fig8b reproduces Fig 8b: average inference time with and without
// CycleSQL. Model inference latency is the documented per-model constant
// (GPU wall-clock is unavailable offline); the CycleSQL overhead is the
// measured wall-clock of the real feedback loop.
func Fig8b(ctx context.Context, lim Limits) (*Table, error) {
	verifier := Verifier(lim)
	bench := datasets.Spider()
	t := &Table{
		Title:   "Fig 8b: average model inference time (ms), base vs +CycleSQL",
		Headers: []string{"base (ms)", "+cyclesql (ms)", "overhead (ms)"},
	}
	for _, modelName := range Fig8bModels {
		ps, err := EvaluateModel(ctx, bench, modelName, verifier, lim)
		if err != nil {
			return nil, err
		}
		base := float64(nl2sql.MustByName(modelName).BaseLatency()) / float64(time.Millisecond)
		t.Rows = append(t.Rows, Row{Label: modelName, Values: []string{
			fmt.Sprintf("%.0f", base),
			fmt.Sprintf("%.1f", base+ps.AvgOverheadMS),
			fmt.Sprintf("%.2f", ps.AvgOverheadMS),
		}})
	}
	return t, nil
}

// Fig9Benchmarks are the four Spider-family benchmarks of the ablation.
var Fig9Benchmarks = []string{"spider", "spider-realistic", "spider-syn", "spider-dk"}

// Fig9 reproduces Fig 9: EX with CycleSQL feedback vs the simpler SQL2NL
// feedback, on RESDSQL-Large and GPT-3.5-turbo. The SQL2NL arm trains its
// own verifier on SQL2NL premises under identical settings (paper §V-A4).
func Fig9(ctx context.Context, lim Limits) (*Table, error) {
	spider := datasets.Spider()
	cycleVerifier := Verifier(lim)
	sql2nlVerifier := core.TrainVerifier(ctx, spider,
		core.TrainDataConfig{Models: lim.TrainModels, MaxExamples: lim.MaxTrain, Seed: 1, Feedback: core.SQL2NLFeedback{}},
		nli.TrainConfig{Seed: 2},
	)
	t := &Table{
		Title:   "Fig 9: feedback-quality ablation, EX (%)",
		Headers: []string{"benchmark", "base", "+cyclesql", "+sql2nl"},
	}
	for _, modelName := range []string{"resdsql-large", "gpt-3.5-turbo"} {
		for _, benchName := range Fig9Benchmarks {
			bench, err := datasets.ByName(benchName)
			if err != nil {
				return nil, err
			}
			model := nl2sql.MustByName(modelName)
			dev := devSlice(bench, lim)
			pc := lim.Pipeline(model, cycleVerifier, bench.Name, nil)
			psq := lim.Pipeline(model, sql2nlVerifier, bench.Name, core.SQL2NLFeedback{})
			if isLLM(modelName) {
				pc.BeamSize, psq.BeamSize = 5, 5
			}
			type exampleEX struct{ baseOK, cycleOK, sqlOK bool }
			outs := make([]exampleEX, len(dev))
			errs := lim.batch().Run(ctx, len(dev), func(ctx context.Context, i int) error {
				ex := dev[i]
				db := bench.DB(ex.DBName)
				base, err := pc.BaselineContext(ctx, ex, db)
				if err != nil {
					return err
				}
				rc, err := pc.Translate(ctx, ex, db)
				if err != nil {
					return err
				}
				rs, err := psq.Translate(ctx, ex, db)
				if err != nil {
					return err
				}
				outs[i] = exampleEX{
					baseOK:  eval.EXContext(ctx, db, base, ex.Gold),
					cycleOK: eval.EXContext(ctx, db, rc.Final, ex.Gold),
					sqlOK:   eval.EXContext(ctx, db, rs.Final, ex.Gold),
				}
				return ctx.Err()
			})
			if err := firstError(dev, errs); err != nil {
				return nil, err
			}
			var baseOK, cycleOK, sqlOK int
			for _, o := range outs {
				if o.baseOK {
					baseOK++
				}
				if o.cycleOK {
					cycleOK++
				}
				if o.sqlOK {
					sqlOK++
				}
			}
			n := float64(len(dev))
			t.Rows = append(t.Rows, Row{Label: modelName, Values: []string{
				benchName, pct(100 * float64(baseOK) / n),
				pct(100 * float64(cycleOK) / n), pct(100 * float64(sqlOK) / n),
			}})
		}
	}
	return t, nil
}

// Table3 reproduces Table III: verifier-selection ablation on RESDSQL-3B.
func Table3(ctx context.Context, lim Limits) (*Table, error) {
	bench := datasets.Spider()
	dev := devSlice(bench, lim)
	verifiers := []nli.Verifier{
		Verifier(lim),
		nli.FewShotLLM{},
		nli.PrebuiltNLI{},
		core.OracleVerifier(bench, core.IndexByQuestion(dev)),
	}
	t := &Table{
		Title:   "Table III: translation results of different verifier selections (Spider dev, RESDSQL-3B)",
		Headers: []string{"EM", "EX", "TS"},
	}
	base, err := EvaluateModel(ctx, bench, "resdsql-3b", verifiers[0], lim)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, Row{Label: "base model", Values: []string{
		pct(base.Base.EM), pct(base.Base.EX), pct(base.Base.TS)}})
	labels := []string{"+cyclesql", "+cyclesql (llm verifier)", "+cyclesql (prebuilt nli)", "+cyclesql (oracle verifier)"}
	for i, v := range verifiers {
		ps, err := EvaluateModel(ctx, bench, "resdsql-3b", v, lim)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{Label: labels[i], Values: []string{
			delta(ps.Loop.EM, ps.Base.EM), delta(ps.Loop.EX, ps.Base.EX), delta(ps.Loop.TS, ps.Base.TS)}})
	}
	return t, nil
}

// caseStudyIDs are the Table IV queries (the first five world_1 pairs).
const caseStudyCount = 5

// Table4 reproduces Table IV: case-study explanations for the five
// world_1 queries, polished for readability as in the paper.
func Table4(ctx context.Context, _ Limits) (*Table, error) {
	bench := datasets.Spider()
	db := bench.DB("world_1")
	t := &Table{
		Title:   "Table IV: NL explanations produced by CycleSQL (world_1)",
		Headers: []string{"question / explanation"},
	}
	e := explain.New(db)
	e.Polish = explain.RulePolisher{}
	count := 0
	for _, ex := range bench.Dev {
		if ex.DBName != "world_1" || count >= caseStudyCount {
			continue
		}
		count++
		rel, err := sqleval.New(db).ExecContext(ctx, ex.Gold)
		if err != nil {
			return nil, err
		}
		exp, err := e.ExplainContext(ctx, ex.Gold, rel, 0)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows,
			Row{Label: fmt.Sprintf("Q%d", count), Values: []string{ex.Question}},
			Row{Label: "", Values: []string{exp.Text}},
		)
	}
	return t, nil
}

// Fig10 reproduces Fig 10: the simulated user study over the five Table IV
// queries, CycleSQL explanations vs the simpler GPT-3.5-style (SQL2NL)
// explanations, on the paper's two dimensions plus overall ratings.
func Fig10(ctx context.Context, _ Limits) (*Table, error) {
	bench := datasets.Spider()
	db := bench.DB("world_1")
	e := explain.New(db)
	e.Polish = explain.RulePolisher{}
	t := &Table{
		Title:   "Fig 10: simulated user study (mean 1-10 ratings, 20 raters)",
		Headers: []string{"dimension", "gpt-3.5 style", "cyclesql", "prefer cyclesql"},
	}
	count := 0
	for _, ex := range bench.Dev {
		if ex.DBName != "world_1" || count >= caseStudyCount {
			continue
		}
		count++
		rel, err := sqleval.New(db).ExecContext(ctx, ex.Gold)
		if err != nil {
			return nil, err
		}
		exp, err := e.ExplainContext(ctx, ex.Gold, rel, 0)
		if err != nil {
			return nil, err
		}
		resultText := ""
		if rel.NumRows() > 0 {
			for _, v := range rel.Rows[0] {
				resultText += v.String() + " "
			}
		}
		cycleItem := userstudy.Item{Question: ex.Question, Result: resultText, Explanation: exp.Text}
		simpleItem := userstudy.Item{Question: ex.Question, Result: resultText, Explanation: sql2nl.Describe(db.Schema, ex.Gold)}
		seed := int64(1000 + count)
		for _, dim := range []userstudy.Dimension{userstudy.Interpretability, userstudy.Entailment, userstudy.Overall} {
			rc := userstudy.Score(cycleItem, dim, seed)
			rs := userstudy.Score(simpleItem, dim, seed)
			prefer := userstudy.Compare(cycleItem, simpleItem, seed)
			t.Rows = append(t.Rows, Row{
				Label: fmt.Sprintf("Q%d", count),
				Values: []string{string(dim), fmt.Sprintf("%.1f (%s)", rs.Mean, rs.Verdict()),
					fmt.Sprintf("%.1f (%s)", rc.Mean, rc.Verdict()),
					fmt.Sprintf("%d/20", prefer)},
			})
		}
	}
	return t, nil
}

// Registry maps experiment IDs to drivers. Every driver takes the context
// its sweeps run under — cancelling it aborts the in-flight example
// executions and the driver returns the context's error.
var Registry = map[string]func(context.Context, Limits) (*Table, error){
	"fig1":   Fig1,
	"table1": Table1,
	"table2": Table2,
	"fig8a":  Fig8a,
	"fig8b":  Fig8b,
	"fig9":   Fig9,
	"table3": Table3,
	"table4": Table4,
	"fig10":  Fig10,
}

// IDs lists experiment identifiers in presentation order.
var IDs = []string{"fig1", "table1", "table2", "fig8a", "fig8b", "fig9", "table3", "table4", "fig10"}
