package experiments

// The chaos-parity suite — the PR's keystone. A sweep with deterministic
// faults injected around every model call (errors, hangs, panics, added
// latency) and retries enabled must reproduce the fault-free sweep's
// Results bit for bit — same Final, Verified, Iterations, Premises and
// Errors (modulo the attempt counter) — at worker/parallelism 1, 4 and 8.
// The determinism chain it locks in: fault draws are pure functions of
// (seed, kind, call identity, attempt), retries reroll the draw, and the
// loop commits candidates in beam order, so no goroutine schedule can
// leak into a Result.

import (
	"context"
	"testing"
	"time"

	"cyclesql/internal/core"
	"cyclesql/internal/datasets"
	"cyclesql/internal/faultinject"
	"cyclesql/internal/nl2sql"
	"cyclesql/internal/resilience"
)

// chaosFaults is the suite's locked chaos weather: with the retry budget
// below, no call exhausts its attempts under this seed, so every fault
// heals and nothing degrades. P(one attempt faults) ≈ 0.28; eight
// attempts make exhaustion vanishingly rare and the seed pins the draws
// either way.
var chaosFaults = faultinject.Config{
	Seed:      7,
	ErrorRate: 0.2,
	HangRate:  0.05, HangTimeout: time.Millisecond,
	PanicRate:   0.05,
	LatencyRate: 0.1, Latency: 200 * time.Microsecond,
}

// chaosPolicy is the matching resilience policy: a retry budget deep
// enough to outlast the fault rates, backoffs in microseconds so the
// suite stays fast, breakers armed so a trip (which would break parity)
// fails the run loudly through the collector.
func chaosPolicy() *resilience.Policy {
	return &resilience.Policy{
		Retry:     resilience.Retry{MaxAttempts: 8, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond, Seed: 7},
		Breaker:   resilience.BreakerConfig{Threshold: 5, Cooldown: 50 * time.Millisecond},
		Collector: &resilience.Collector{},
	}
}

// chaosSweep translates dev through one pipeline built under the limits
// (faults and resilience included), on the limits' batch pool.
func chaosSweep(t *testing.T, dev []datasets.Example, lim Limits) []*core.Result {
	t.Helper()
	bench := datasets.Spider()
	p := lim.Pipeline(nl2sql.MustByName("resdsql-3b"), Verifier(tinyLimits), bench.Name, nil)
	results := make([]*core.Result, len(dev))
	errs := lim.batch().Run(context.Background(), len(dev), func(ctx context.Context, i int) error {
		res, err := p.Translate(ctx, dev[i], bench.DB(dev[i].DBName))
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err := firstError(dev, errs); err != nil {
		t.Fatal(err)
	}
	return results
}

func TestChaosParity(t *testing.T) {
	bench := datasets.Spider()
	dev := bench.Dev
	if len(dev) > 200 {
		dev = dev[:200]
	}
	want := chaosSweep(t, dev, Limits{Workers: 1, Parallelism: 1})
	for _, n := range []int{1, 4, 8} {
		lim := Limits{Workers: n, Parallelism: n, Faults: chaosFaults, Resilience: chaosPolicy()}
		got := chaosSweep(t, dev, lim)
		retries := 0
		for i := range dev {
			w, g := want[i], got[i]
			if w.FinalSQL != g.FinalSQL || w.Verified != g.Verified || w.Iterations != g.Iterations {
				t.Fatalf("workers=parallelism=%d chaos diverges on %q:\nclean: final=%q verified=%v iter=%d\nchaos: final=%q verified=%v iter=%d",
					n, dev[i].Question, w.FinalSQL, w.Verified, w.Iterations, g.FinalSQL, g.Verified, g.Iterations)
			}
			if g.Degraded {
				t.Fatalf("workers=%d: nothing may degrade when every fault heals: %q", n, dev[i].Question)
			}
			if len(w.Premises) != len(g.Premises) || len(w.Errors) != len(g.Errors) {
				t.Fatalf("workers=%d premise/error counts diverge on %q", n, dev[i].Question)
			}
			for j := range w.Premises {
				if w.Premises[j] != g.Premises[j] {
					t.Fatalf("workers=%d premise %d diverges on %q:\nclean: %+v\nchaos: %+v",
						n, j, dev[i].Question, w.Premises[j], g.Premises[j])
				}
				// Errors compare modulo the attempt counter: a permanent
				// failure surfaces either way, but chaos may have burned
				// retries in front of it.
				we, ge := w.Errors[j], g.Errors[j]
				we.Attempt, ge.Attempt = 0, 0
				if we != ge {
					t.Fatalf("workers=%d error %d diverges on %q:\nclean: %+v\nchaos: %+v",
						n, j, dev[i].Question, w.Errors[j], g.Errors[j])
				}
			}
			retries += g.Retries
		}
		s := lim.Resilience.Stats()
		switch {
		case retries == 0 || s.Retries == 0:
			t.Fatalf("workers=%d: a 20%% fault rate must force retries (results=%d collector=%+v)", n, retries, s)
		case s.PanicsRecovered == 0:
			t.Fatalf("workers=%d: injected panics must have fired and been recovered: %+v", n, s)
		case s.BreakerTrips != 0 || s.Degraded != 0:
			t.Fatalf("workers=%d: no breaker may trip when every fault heals: %+v", n, s)
		case s.Attempts <= s.Retries:
			t.Fatalf("workers=%d: attempts must dominate retries: %+v", n, s)
		}
	}
}

// TestChaosSweepSurfacesRetryCounts pins the driver-level accounting the
// CLIs print: a chaotic EvaluateModel folds per-example retries into
// PairScores and scores the same tables as the fault-free run.
func TestChaosSweepSurfacesRetryCounts(t *testing.T) {
	bench := datasets.Spider()
	lim := tinyLimits
	lim.MaxDev = 24
	clean, err := EvaluateModel(context.Background(), bench, "resdsql-3b", Verifier(tinyLimits), lim)
	if err != nil {
		t.Fatal(err)
	}
	lim.Workers, lim.Parallelism = 4, 2
	lim.Faults = chaosFaults
	lim.Resilience = chaosPolicy()
	chaos, err := EvaluateModel(context.Background(), bench, "resdsql-3b", Verifier(tinyLimits), lim)
	if err != nil {
		t.Fatal(err)
	}
	if chaos.Base != clean.Base || chaos.Loop != clean.Loop || chaos.AvgIterations != clean.AvgIterations {
		t.Fatalf("chaos run must score identical tables:\nclean: %+v\nchaos: %+v", clean, chaos)
	}
	if clean.Retries != 0 || clean.Degraded != 0 {
		t.Fatalf("fault-free sweep must report zero resilience activity: %+v", clean)
	}
	if chaos.Retries == 0 || chaos.Degraded != 0 {
		t.Fatalf("chaotic sweep must surface its healed retries and no degradation: %+v", chaos)
	}
}
