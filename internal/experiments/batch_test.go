package experiments

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cyclesql/internal/core"
	"cyclesql/internal/datasets"
	"cyclesql/internal/nl2sql"
)

// sweepResults translates every example of dev through one shared
// pipeline on a Batch pool with the given worker count, returning
// per-example Results in dev order.
func sweepResults(t *testing.T, dev []datasets.Example, workers int) []*core.Result {
	t.Helper()
	bench := datasets.Spider()
	p := core.New(nl2sql.MustByName("resdsql-3b"),
		core.WithVerifier(Verifier(tinyLimits)), core.WithBenchmark(bench.Name))
	// Candidate-level parallelism composes with example-level workers;
	// keeping it on in every sweep exercises the composition the -workers
	// and -parallel flags expose together.
	p.Parallelism = 2
	results := make([]*core.Result, len(dev))
	errs := Batch{Workers: workers}.Run(context.Background(), len(dev), func(ctx context.Context, i int) error {
		res, err := p.Translate(ctx, dev[i], bench.DB(dev[i].DBName))
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err := firstError(dev, errs); err != nil {
		t.Fatal(err)
	}
	return results
}

// TestBatchWorkerParity is the acceptance bar for the batched driver:
// per-example Results (Final/Verified/Iterations/Premises/Errors) are
// bit-identical across worker counts 1, 4 and 8 over the Spider dev
// slice the other parity suites use.
func TestBatchWorkerParity(t *testing.T) {
	bench := datasets.Spider()
	dev := bench.Dev
	if len(dev) > 200 {
		dev = dev[:200]
	}
	want := sweepResults(t, dev, 1)
	for _, workers := range []int{4, 8} {
		got := sweepResults(t, dev, workers)
		for i := range dev {
			w, g := want[i], got[i]
			if w.FinalSQL != g.FinalSQL || w.Verified != g.Verified || w.Iterations != g.Iterations {
				t.Fatalf("workers=%d diverges on %q:\nseq: final=%q verified=%v iter=%d\npar: final=%q verified=%v iter=%d",
					workers, dev[i].Question, w.FinalSQL, w.Verified, w.Iterations, g.FinalSQL, g.Verified, g.Iterations)
			}
			if len(w.Premises) != len(g.Premises) || len(w.Errors) != len(g.Errors) {
				t.Fatalf("workers=%d premise/error counts diverge on %q", workers, dev[i].Question)
			}
			for j := range w.Premises {
				if w.Premises[j] != g.Premises[j] {
					t.Fatalf("workers=%d premise %d diverges on %q", workers, j, dev[i].Question)
				}
				if w.Errors[j] != g.Errors[j] {
					t.Fatalf("workers=%d error %d diverges on %q", workers, j, dev[i].Question)
				}
			}
		}
	}
}

// TestBatchTimeoutIsolatesHungExample proves the per-example deadline:
// one example that blocks until its context fires gets the deadline
// error, while the examples sharing its worker pool complete normally
// and the sweep returns promptly.
func TestBatchTimeoutIsolatesHungExample(t *testing.T) {
	const n, hung = 6, 1
	var completed atomic.Int64
	start := time.Now()
	errs := Batch{Workers: 2, Timeout: 50 * time.Millisecond}.Run(context.Background(), n,
		func(ctx context.Context, i int) error {
			if i == hung {
				<-ctx.Done() // a hung example: only the deadline frees it
				return ctx.Err()
			}
			completed.Add(1)
			return nil
		})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("sweep stalled for %s behind one hung example", elapsed)
	}
	if !errors.Is(errs[hung], context.DeadlineExceeded) {
		t.Fatalf("hung example must record its deadline, got %v", errs[hung])
	}
	for i, err := range errs {
		if i != hung && err != nil {
			t.Fatalf("example %d must be unaffected, got %v", i, err)
		}
	}
	if completed.Load() != n-1 {
		t.Fatalf("want %d completed examples, got %d", n-1, completed.Load())
	}
}

// TestBatchPanicIsolation pins the error-capture contract: a panicking
// example records its panic in its own error slot without tearing down
// the sweep.
func TestBatchPanicIsolation(t *testing.T) {
	for _, workers := range []int{1, 3} {
		errs := Batch{Workers: workers}.Run(context.Background(), 5, func(_ context.Context, i int) error {
			if i == 2 {
				panic("boom")
			}
			return nil
		})
		if errs[2] == nil || !strings.Contains(errs[2].Error(), "panicked") || !strings.Contains(errs[2].Error(), "boom") {
			t.Fatalf("workers=%d: want recovered panic in slot 2, got %v", workers, errs[2])
		}
		for i, err := range errs {
			if i != 2 && err != nil {
				t.Fatalf("workers=%d: example %d must survive the panic, got %v", workers, i, err)
			}
		}
	}
}

// TestBatchParentCancellation: a cancelled parent context marks every
// unstarted example with the context error instead of running it.
func TestBatchParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	errs := Batch{Workers: 4}.Run(ctx, 8, func(context.Context, int) error {
		ran.Add(1)
		return nil
	})
	if ran.Load() != 0 {
		t.Fatalf("no example may start under a dead parent context, %d ran", ran.Load())
	}
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("slot %d must record the cancellation, got %v", i, err)
		}
	}
}

// TestBatchSequentialClaimOrder: Workers <= 1 runs examples inline in
// index order, reproducing the pre-batch sequential drivers exactly.
func TestBatchSequentialClaimOrder(t *testing.T) {
	var order []int
	Batch{}.Run(context.Background(), 5, func(_ context.Context, i int) error {
		order = append(order, i) // safe: sequential mode shares the caller's goroutine
		return nil
	})
	for i, got := range order {
		if got != i {
			t.Fatalf("sequential sweep visited %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("want 5 visits, got %d", len(order))
	}
}
