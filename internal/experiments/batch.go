package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Batch is the cross-example worker pool the experiment drivers sweep dev
// splits with. It is the second of the repository's two parallelism
// levels: core.Pipeline.Parallelism overlaps the beam candidates of one
// translation, Batch overlaps whole examples across a split — the two
// compose, since a Pipeline is safe for concurrent Translate calls.
//
// Run hands each example its own index slot, so callers write results
// into pre-sized slices and fold them in example order afterwards; that
// folding discipline — never "whoever finishes first" accumulation — is
// what keeps aggregate metrics bit-identical at every worker count.
type Batch struct {
	// Workers bounds how many examples run concurrently. 0 or 1 runs the
	// sweep sequentially in the caller's goroutine, reproducing the
	// pre-batch drivers exactly.
	Workers int
	// Timeout, when nonzero, bounds each example's wall clock: the
	// example's context is cancelled at the deadline, the in-flight SQL
	// execution aborts mid-query (sqleval polls the context in its inner
	// loops), and the example's error slot records the deadline error —
	// without stalling the workers sweeping the other examples.
	Timeout time.Duration
}

// Run invokes fn(ctx, i) for every i in [0, n), at most Workers at a
// time, and returns one error slot per index — nil for examples that
// completed. The context handed to fn derives from ctx, with Timeout
// applied per example. A panic inside fn is recovered into that
// example's error slot instead of tearing down the sweep (one
// pathological query must not cost the other 199 their results). If ctx
// itself is cancelled, examples not yet started record the context's
// error without running.
//
// Claim order is index order, so at Workers <= 1 the sweep is exactly
// the sequential loop; at higher counts examples complete out of order
// but the per-index slots keep every result attributable.
func (b Batch) Run(ctx context.Context, n int, fn func(ctx context.Context, i int) error) []error {
	if ctx == nil {
		ctx = context.Background()
	}
	errs := make([]error, n)
	workers := b.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			errs[i] = b.runOne(ctx, i, fn)
		}
		return errs
	}
	var next atomic.Int64 // claim counter: workers take examples in index order
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue // keep draining so every slot is accounted for
				}
				errs[i] = b.runOne(ctx, i, fn)
			}
		}()
	}
	wg.Wait()
	return errs
}

// runOne runs fn for one example under its per-example deadline,
// converting panics into errors.
func (b Batch) runOne(ctx context.Context, i int, fn func(ctx context.Context, i int) error) (err error) {
	if b.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b.Timeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiments: example %d panicked: %v", i, r)
		}
	}()
	return fn(ctx, i)
}
