package nli

import (
	"testing"

	"cyclesql/internal/nn"
)

func premiseFor(expl string) Premise {
	return Premise{
		Explanation: expl,
		SQL:         "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.name = 'Airbus A340-300'",
		Result:      "1 rows ; 2",
	}
}

func TestPremiseText(t *testing.T) {
	p := Premise{Explanation: "e", SQL: "s", Result: "r"}
	if p.Text() != "e | s | r" {
		t.Fatalf("Text = %q", p.Text())
	}
}

func TestFeaturizerDimensions(t *testing.T) {
	f := DefaultFeaturizer
	x := f.Features("Show all flight numbers.", premiseFor("there are 2 flights"))
	if len(x) != f.Dim() {
		t.Fatalf("feature width %d != Dim %d", len(x), f.Dim())
	}
}

func TestFeaturizerAlignmentOrdering(t *testing.T) {
	f := DefaultFeaturizer
	q := "How many flights use aircraft Airbus A340-300?"
	aligned := f.Features(q, premiseFor("filtered by name equal to Airbus A340-300, there are 2 flights in total"))
	misaligned := f.Features(q, Premise{
		Explanation: "the largest distance is 8430 for aircraft Boeing 747-400",
		SQL:         "SELECT max(distance) FROM aircraft",
		Result:      "1 rows ; 8430",
	})
	if aligned[0] <= misaligned[0] || aligned[1] <= misaligned[1] {
		t.Fatalf("aligned premise must overlap more: %v vs %v", aligned[:2], misaligned[:2])
	}
}

func TestSQLLiteralTokens(t *testing.T) {
	toks := sqlLiteralTokens("SELECT a FROM t WHERE x = 'Airbus A340-300' AND y = 'red'")
	joined := ""
	for _, tok := range toks {
		joined += tok + " "
	}
	if joined == "" {
		t.Fatal("no literal tokens extracted")
	}
	found := false
	for _, tok := range toks {
		if tok == "airbus" {
			found = true
		}
	}
	if !found {
		t.Fatalf("airbus missing from %v", toks)
	}
}

func TestSelectClauseTokens(t *testing.T) {
	toks := selectClauseTokens("SELECT count(*), name FROM t WHERE x = 1")
	hasCount, hasName, hasWhereCol := false, false, false
	for _, tok := range toks {
		switch tok {
		case "count":
			hasCount = true
		case "name":
			hasName = true
		case "x":
			hasWhereCol = true
		}
	}
	if !hasCount || !hasName || hasWhereCol {
		t.Fatalf("selectClauseTokens = %v", toks)
	}
}

func TestTrainSeparatesSyntheticPairs(t *testing.T) {
	// Construct pairs where entailment = shared key token.
	var pairs []Pair
	for i := 0; i < 120; i++ {
		pairs = append(pairs,
			Pair{Hypothesis: "how many flights from chicago", Premise: premiseFor("filtered by origin equal to Chicago, there are 2 flights in total"), Label: 1},
			Pair{Hypothesis: "how many flights from chicago", Premise: premiseFor("the largest distance is 8430"), Label: 0},
		)
	}
	v := Train(pairs, TrainConfig{Seed: 3, Epochs: 20})
	if acc := Accuracy(v, pairs); acc < 0.95 {
		t.Fatalf("trivially separable pairs must train to >=0.95, got %.3f", acc)
	}
}

func TestCalibratedThresholdInRange(t *testing.T) {
	var pairs []Pair
	for i := 0; i < 40; i++ {
		pairs = append(pairs,
			Pair{Hypothesis: "count flights", Premise: premiseFor("there are 2 flights in total"), Label: 1},
			Pair{Hypothesis: "count flights", Premise: premiseFor("the name is Boeing"), Label: 0},
		)
	}
	v := Train(pairs, TrainConfig{Seed: 1, Epochs: 10})
	if v.Threshold < 0.2 || v.Threshold > 0.81 {
		t.Fatalf("threshold %v out of sweep range", v.Threshold)
	}
}

func TestStrawmanVerifiers(t *testing.T) {
	q := "How many flights use aircraft Airbus A340-300?"
	good := premiseFor("for flights with aircraft Airbus A340-300 there are 2 flights in total")
	bad := premiseFor("the average distance is 4550")
	llm := FewShotLLM{}
	if llm.Score(q, good) <= llm.Score(q, bad) {
		t.Fatal("llm verifier must prefer the aligned premise")
	}
	pre := PrebuiltNLI{}
	if s := pre.Score(q, good); s < 0 || s > 1 {
		t.Fatalf("prebuilt score out of range: %v", s)
	}
	if llm.Name() == "" || pre.Name() == "" {
		t.Fatal("names required")
	}
}

func TestFuncVerifier(t *testing.T) {
	v := Func{Label: "always", Fn: func(string, Premise) bool { return true }}
	if !v.Verify("q", Premise{}) || v.Score("q", Premise{}) != 1 || v.Name() != "always" {
		t.Fatal("Func adapter broken")
	}
}

func TestMarshalTrainedRoundTrip(t *testing.T) {
	var pairs []Pair
	for i := 0; i < 30; i++ {
		pairs = append(pairs,
			Pair{Hypothesis: "count flights", Premise: premiseFor("there are 2 flights in total"), Label: 1},
			Pair{Hypothesis: "count flights", Premise: premiseFor("the name is Boeing"), Label: 0},
		)
	}
	v := Train(pairs, TrainConfig{Seed: 1, Epochs: 4})
	data, err := MarshalTrained(v)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := UnmarshalTrained(data)
	if err != nil {
		t.Fatal(err)
	}
	p := premiseFor("there are 2 flights in total")
	if v.Score("count flights", p) != v2.Score("count flights", p) {
		t.Fatal("round-tripped verifier diverges")
	}
	if _, err := UnmarshalTrained([]byte(`{"in":3,"hidden":1,"w1":[[1,1,1]],"b1":[0],"w2":[1],"b2":0}`)); err == nil {
		t.Fatal("width mismatch must be rejected")
	}
}

func TestAccuracyEmpty(t *testing.T) {
	if Accuracy(FewShotLLM{}, nil) != 0 {
		t.Fatal("empty accuracy must be 0")
	}
}

func BenchmarkFeaturize(b *testing.B) {
	f := DefaultFeaturizer
	p := premiseFor("filtered by name equal to Airbus A340-300, there are 2 flights in total")
	for i := 0; i < b.N; i++ {
		f.Features("How many flights use aircraft Airbus A340-300?", p)
	}
}

var _ nn.Loss = nn.PaperFocal // the verifier's loss satisfies the contract
