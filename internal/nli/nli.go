// Package nli implements CycleSQL's translation verifier (paper §IV-D):
// translation validation formulated as a textual-entailment task. The
// premise is the generated NL explanation (with the SQL query and query
// result appended, separated by '|', as in the paper), the hypothesis is
// the user's NL question, and the verdict is "entailment" vs
// "contradiction".
//
// The paper fine-tunes a T5-Large encoder with a classification head; this
// repository substitutes a featurized MLP trained with the same protocol —
// Adam, focal loss (γ=2.0, α=0.75) with class re-weighting, positives from
// gold pairs, negatives from model errors on the training split — over
// lexical-alignment features (see DESIGN.md "Substitutions"). The package
// also ships the paper's two "strawman" verifiers (a simulated few-shot
// LLM and a simulated off-the-shelf NLI model) used by Table III.
package nli

import (
	"fmt"
	"hash/fnv"
	"strings"

	"cyclesql/internal/nn"
	"cyclesql/internal/textproc"
)

// Premise is the verifier's evidence: the explanation enriched with the
// SQL and the query result.
type Premise struct {
	Explanation string
	SQL         string
	Result      string
}

// Text renders the premise in the paper's '|'-separated form.
func (p Premise) Text() string {
	return p.Explanation + " | " + p.SQL + " | " + p.Result
}

// Verifier decides whether a premise entails the hypothesis (NL question).
type Verifier interface {
	Name() string
	// Score returns P(entailment); Verify thresholds it.
	Score(hypothesis string, premise Premise) float64
	Verify(hypothesis string, premise Premise) bool
}

// Featurizer maps (hypothesis, premise) pairs onto fixed-width vectors:
// engineered alignment features plus hashed bags of shared and
// hypothesis-only content stems.
type Featurizer struct {
	SharedBuckets int
	HOnlyBuckets  int
}

// DefaultFeaturizer matches the dimensions used across the repository.
var DefaultFeaturizer = Featurizer{SharedBuckets: 96, HOnlyBuckets: 96}

// Dim is the feature-vector width.
func (f Featurizer) Dim() int { return numEngineered + f.SharedBuckets + f.HOnlyBuckets }

const numEngineered = 20

// aggregate-word classes that must align between question and explanation.
var aggClasses = []string{"count", "sum", "avg", "max", "min"}
var cmpClasses = []string{"greater", "less", "equal", "between", "not", "distinct"}

// Features computes the feature vector.
func (f Featurizer) Features(hypothesis string, premise Premise) []float64 {
	h := canonicalStems(hypothesis)
	p := canonicalStems(premise.Text())
	pExplOnly := canonicalStems(premise.Explanation)

	out := make([]float64, f.Dim())
	out[0] = textproc.Jaccard(h, p)
	out[1] = textproc.Recall(h, p)
	out[2] = textproc.Recall(pExplOnly, h)
	// Number alignment in both directions.
	hNums := textproc.Numbers(hypothesis)
	pNums := textproc.Numbers(premise.Explanation)
	out[3] = textproc.Recall(hNums, pNums)
	out[4] = textproc.Recall(pNums, hNums)
	if len(hNums) == 0 {
		out[5] = 1 // no numeric constraints to align
	}
	// Aggregate-class agreement.
	hSet := toSet(h)
	pSet := toSet(p)
	idx := 6
	for _, class := range aggClasses {
		switch {
		case hSet[class] && pSet[class]:
			out[idx] += 1
		case hSet[class] != pSet[class]:
			out[idx+1] += 1 // mismatch count across agg classes
		}
	}
	idx += 2
	for _, class := range cmpClasses {
		switch {
		case hSet[class] && pSet[class]:
			out[idx] += 1
		case hSet[class] != pSet[class]:
			out[idx+1] += 1
		}
	}
	idx += 2
	// Length ratio and absolute sizes (normalized).
	out[idx] = ratio(len(h), len(p))
	out[idx+1] = clamp01(float64(len(h)) / 24.0)
	idx += 2
	// SQL-constant alignment: literal values in the SQL must appear in the
	// question (wrong-value and wrong-column corruptions break this), and
	// the question's value words must be reachable in the SQL+explanation.
	sqlVals := sqlLiteralTokens(premise.SQL)
	out[idx] = textproc.Recall(sqlVals, h)
	out[idx+1] = textproc.Recall(h, append(append([]string{}, p...), sqlVals...))
	sqlNums := textproc.Numbers(premise.SQL)
	out[idx+2] = textproc.Recall(sqlNums, hNums)
	out[idx+3] = textproc.Recall(hNums, append(sqlNums, pNums...))
	idx += 4
	// Projection agreement: what the SQL SELECTs must be what the question
	// asks for. Wrong-projection corruptions (name -> color) and spurious
	// aggregates (the paper's Fig 2 count-vs-list error) break this.
	sel := selectClauseTokens(premise.SQL)
	selSet := toSet(sel)
	out[idx] = textproc.Recall(sel, h)
	selCount := selSet["count"] || selSet["sum"] || selSet["avg"] || selSet["min"] || selSet["max"]
	hCount := hSet["count"] || hSet["sum"] || hSet["avg"] || hSet["min"] || hSet["max"]
	if selCount == hCount {
		out[idx+1] = 1
	}
	if selCount && !hCount {
		out[idx+2] = 1 // SQL aggregates but the question wants instances
	}
	if !selCount && hCount {
		out[idx+3] = 1 // question wants an aggregate the SQL never computes
	}
	idx += 4
	if idx != numEngineered {
		panic(fmt.Sprintf("nli: engineered feature count drifted: %d", idx))
	}
	// Hashed bags: shared stems support entailment, hypothesis-only stems
	// are evidence the explanation misses part of the question.
	for tok := range hSet {
		if pSet[tok] {
			out[numEngineered+bucket(tok, f.SharedBuckets)] += 0.5
		} else {
			out[numEngineered+f.SharedBuckets+bucket(tok, f.HOnlyBuckets)] += 0.5
		}
	}
	return out
}

// selectClauseTokens extracts the canonical stems of the SQL text between
// SELECT and FROM — the projection surface.
func selectClauseTokens(sql string) []string {
	upper := strings.ToUpper(sql)
	start := strings.Index(upper, "SELECT")
	if start < 0 {
		return nil
	}
	start += len("SELECT")
	end := strings.Index(upper[start:], " FROM ")
	if end < 0 {
		end = len(upper) - start
	}
	return canonicalStems(sql[start : start+end])
}

// sqlLiteralTokens extracts the canonical stems of quoted string literals
// in a SQL text.
func sqlLiteralTokens(sql string) []string {
	var out []string
	for i := 0; i < len(sql); i++ {
		if sql[i] != '\'' {
			continue
		}
		j := i + 1
		for j < len(sql) && sql[j] != '\'' {
			j++
		}
		if j >= len(sql) {
			break
		}
		out = append(out, canonicalStems(sql[i+1:j])...)
		i = j
	}
	return out
}

func canonicalStems(text string) []string {
	// Phrase idioms first ("at least" -> greater), then stopwords, stems
	// and synonym classes.
	toks := textproc.ApplyPhrases(textproc.Tokenize(text))
	kept := toks[:0]
	for _, t := range toks {
		if !textproc.IsStopword(t) {
			kept = append(kept, t)
		}
	}
	toks = textproc.StemAll(kept)
	for i, t := range toks {
		toks[i] = textproc.Canonical(t)
	}
	return toks
}

func toSet(toks []string) map[string]bool {
	s := make(map[string]bool, len(toks))
	for _, t := range toks {
		s[t] = true
	}
	return s
}

func bucket(tok string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(tok))
	return int(h.Sum32() % uint32(n))
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	r := float64(a) / float64(b)
	return clamp01(r)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Trained is the dedicated NLI verifier: featurizer + trained MLP.
type Trained struct {
	Feat      Featurizer
	Model     *nn.MLP
	Threshold float64
}

// Name implements Verifier.
func (t *Trained) Name() string { return "trained-nli" }

// Score implements Verifier.
func (t *Trained) Score(hypothesis string, premise Premise) float64 {
	return t.Model.Predict(t.Feat.Features(hypothesis, premise))
}

// Verify implements Verifier.
func (t *Trained) Verify(hypothesis string, premise Premise) bool {
	return t.Score(hypothesis, premise) >= t.Threshold
}

// Pair is one labeled premise-hypothesis training instance.
type Pair struct {
	Hypothesis string
	Premise    Premise
	Label      int // 1 = entailment, 0 = contradiction
}

// TrainConfig bundles verifier training hyperparameters. Zero values fall
// back to the paper-aligned defaults.
type TrainConfig struct {
	Hidden int
	Epochs int
	LR     float64
	Seed   int64
	Loss   nn.Loss
}

// Train fits the dedicated NLI verifier on labeled pairs, using the focal
// loss with the paper's settings by default.
func Train(pairs []Pair, cfg TrainConfig) *Trained {
	if cfg.Hidden == 0 {
		cfg.Hidden = 48
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 60
	}
	if cfg.LR == 0 {
		cfg.LR = 0.008
	}
	if cfg.Loss == nil {
		cfg.Loss = nn.PaperFocal
	}
	feat := DefaultFeaturizer
	samples := make([]nn.Sample, len(pairs))
	for i, p := range pairs {
		samples[i] = nn.Sample{X: feat.Features(p.Hypothesis, p.Premise), Y: p.Label}
	}
	model := nn.NewMLP(feat.Dim(), cfg.Hidden, cfg.Seed+1)
	nn.Train(model, samples, nn.TrainConfig{
		Epochs: cfg.Epochs, BatchSize: 32, LR: cfg.LR, Seed: cfg.Seed, Loss: cfg.Loss,
	})
	t := &Trained{Feat: feat, Model: model, Threshold: 0.5}
	t.Threshold = calibrateThreshold(model, samples)
	return t
}

// calibrateThreshold sweeps the decision threshold and keeps the one
// maximizing Youden's J (sensitivity + specificity - 1) on the training
// pairs, compensating for the class imbalance the focal loss trains under.
func calibrateThreshold(model *nn.MLP, samples []nn.Sample) float64 {
	best, bestJ := 0.5, -1.0
	for th := 0.20; th <= 0.81; th += 0.025 {
		var tp, fn, tn, fp float64
		for _, s := range samples {
			pred := model.Predict(s.X) >= th
			switch {
			case s.Y == 1 && pred:
				tp++
			case s.Y == 1:
				fn++
			case pred:
				fp++
			default:
				tn++
			}
		}
		if tp+fn == 0 || tn+fp == 0 {
			continue
		}
		j := tp/(tp+fn) + tn/(tn+fp) - 1
		if j > bestJ {
			bestJ, best = j, th
		}
	}
	return best
}

// Accuracy evaluates a verifier on labeled pairs.
func Accuracy(v Verifier, pairs []Pair) float64 {
	if len(pairs) == 0 {
		return 0
	}
	ok := 0
	for _, p := range pairs {
		if v.Verify(p.Hypothesis, p.Premise) == (p.Label == 1) {
			ok++
		}
	}
	return float64(ok) / float64(len(pairs))
}

// ---- Strawman verifiers (paper Table III) ----

// FewShotLLM simulates the 5-shot prompted GPT-3.5-turbo verifier: a
// capable zero-training judge driven by surface alignment. It works
// "straight out of the box" but lacks the trained model's calibration on
// explanation-style premises; the simulation mirrors that by using fixed,
// uncalibrated decision weights over the same alignment signals plus a
// deterministic per-input wobble standing in for sampling noise.
type FewShotLLM struct{}

// Name implements Verifier.
func (FewShotLLM) Name() string { return "llm-verifier" }

// Score implements Verifier.
func (FewShotLLM) Score(hypothesis string, premise Premise) float64 {
	h := canonicalStems(hypothesis)
	p := canonicalStems(premise.Text())
	score := 0.55*textproc.Recall(h, p) + 0.25*textproc.Jaccard(h, p)
	hNums := textproc.Numbers(hypothesis)
	if len(hNums) > 0 {
		score += 0.2 * textproc.Recall(hNums, textproc.Numbers(premise.Explanation))
	} else {
		score += 0.1
	}
	// Deterministic wobble standing in for LLM sampling variance.
	wobble := float64(bucket(hypothesis+premise.Explanation, 101))/101.0 - 0.5
	return clamp01(score + 0.12*wobble)
}

// Verify implements Verifier.
func (f FewShotLLM) Verify(hypothesis string, premise Premise) bool {
	return f.Score(hypothesis, premise) >= 0.45
}

// PrebuiltNLI simulates the off-the-shelf SemBERT verifier: trained on
// generic sentence pairs, it mis-handles the long, '|'-structured premises
// of this task (the paper observes it "struggles to provide reliable
// verification outcomes"). The simulation scores raw-token overlap with no
// SQL-aware canonicalization and a miscalibrated threshold.
type PrebuiltNLI struct{}

// Name implements Verifier.
func (PrebuiltNLI) Name() string { return "prebuilt-nli" }

// Score implements Verifier.
func (PrebuiltNLI) Score(hypothesis string, premise Premise) float64 {
	// Raw tokens, no stemming, no synonym classes: "how many" never
	// aligns with "count", numbers in the result are ignored.
	h := textproc.Tokenize(hypothesis)
	p := textproc.Tokenize(premise.Text())
	return textproc.Jaccard(h, p)
}

// Verify implements Verifier.
func (p PrebuiltNLI) Verify(hypothesis string, premise Premise) bool {
	return p.Score(hypothesis, premise) >= 0.22
}

// Func adapts a closure into a Verifier; the oracle verifier of Table III
// is built this way from gold-equivalence checks.
type Func struct {
	Label string
	Fn    func(hypothesis string, premise Premise) bool
}

// Name implements Verifier.
func (f Func) Name() string { return f.Label }

// Score implements Verifier.
func (f Func) Score(hypothesis string, premise Premise) float64 {
	if f.Fn(hypothesis, premise) {
		return 1
	}
	return 0
}

// Verify implements Verifier.
func (f Func) Verify(hypothesis string, premise Premise) bool {
	return f.Fn(hypothesis, premise)
}

// MarshalTrained serializes a trained verifier's model (the featurizer is
// static configuration).
func MarshalTrained(t *Trained) ([]byte, error) { return t.Model.Marshal() }

// UnmarshalTrained restores a trained verifier.
func UnmarshalTrained(data []byte) (*Trained, error) {
	m, err := nn.UnmarshalMLP(data)
	if err != nil {
		return nil, err
	}
	if m.In != DefaultFeaturizer.Dim() {
		return nil, fmt.Errorf("nli: model width %d does not match featurizer %d", m.In, DefaultFeaturizer.Dim())
	}
	return &Trained{Feat: DefaultFeaturizer, Model: m, Threshold: 0.5}, nil
}

// SQLOneLine flattens SQL text for premise rendering.
func SQLOneLine(sql string) string {
	return strings.Join(strings.Fields(sql), " ")
}
