package nli

import (
	"context"
	"time"
)

// ContextVerifier is implemented by verifiers whose verdict can honor
// cancellation — a deployment verifier is a model forward pass, so an
// in-flight inference should be abandonable the moment its candidate can
// no longer win (the CycleSQL loop cancels stragglers once an earlier
// beam candidate validates). Verifiers without real waits (the trained
// MLP, the strawmen) don't need it: VerifyContext below falls back to the
// plain synchronous Verify for them.
type ContextVerifier interface {
	Verifier
	// VerifyContext is Verify with cancellation: it returns the context's
	// error — and an unspecified verdict — as soon as the context is done.
	VerifyContext(ctx context.Context, hypothesis string, premise Premise) (bool, error)
}

// VerifyContext runs a verifier's verdict under a context: a context
// already done short-circuits before any verifier work, a ContextVerifier
// is handed the context to honor mid-inference, and any other Verifier
// runs its plain synchronous Verify (it has no waits worth interrupting).
func VerifyContext(ctx context.Context, v Verifier, hypothesis string, premise Premise) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if cv, ok := v.(ContextVerifier); ok {
		return cv.VerifyContext(ctx, hypothesis, premise)
	}
	return v.Verify(hypothesis, premise), nil
}

// Latency wraps a verifier with simulated per-inference latency — the
// Fig 8b substitution applied to the verifier (the paper's verifier is a
// T5-Large forward pass; this repository has no GPU). The wait is charged
// before the wrapped verdict and honors cancellation, so an aborted
// candidate abandons the simulated inference mid-wait exactly as a real
// serving stack would abandon a forward pass. Score passes through
// without the wait: scores are display/diagnostic reads, not inferences
// the loop charges.
type Latency struct {
	V Verifier
	D time.Duration
}

// Name implements Verifier.
func (l Latency) Name() string { return l.V.Name() }

// Score implements Verifier.
func (l Latency) Score(hypothesis string, premise Premise) float64 {
	return l.V.Score(hypothesis, premise)
}

// Verify implements Verifier: the full simulated wait, then the wrapped
// verdict. It delegates to VerifyContext so the wait logic lives in one
// place; with no context to cancel, the background wait always runs to
// completion, preserving Verify's uninterruptible contract.
func (l Latency) Verify(hypothesis string, premise Premise) bool {
	//vetcycle:allow ctxflow -- documented one-shot wrapper over VerifyContext
	v, _ := l.VerifyContext(context.Background(), hypothesis, premise)
	return v
}

// VerifyContext implements ContextVerifier: the wait aborts — returning
// the context's error — as soon as the context is done, and the wrapped
// verdict runs under the same context, so a context-aware inner verifier
// (another Latency, a real inference client) stays cancellable too.
func (l Latency) VerifyContext(ctx context.Context, hypothesis string, premise Premise) (bool, error) {
	if l.D > 0 {
		t := time.NewTimer(l.D)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return false, ctx.Err()
		case <-t.C:
		}
	}
	return VerifyContext(ctx, l.V, hypothesis, premise)
}
