package nli

import (
	"context"
	"testing"
	"time"
)

func verdictOf(v bool) Func {
	return Func{Label: "fixed", Fn: func(string, Premise) bool { return v }}
}

func TestVerifyContextFallback(t *testing.T) {
	// A plain Verifier (no ContextVerifier) runs synchronously and returns
	// its verdict with no error.
	ok, err := VerifyContext(context.Background(), verdictOf(true), "q", Premise{})
	if err != nil || !ok {
		t.Fatalf("fallback verdict = %v, %v", ok, err)
	}
	ok, err = VerifyContext(context.Background(), verdictOf(false), "q", Premise{})
	if err != nil || ok {
		t.Fatalf("fallback verdict = %v, %v", ok, err)
	}
}

func TestVerifyContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	v := Func{Label: "observer", Fn: func(string, Premise) bool { called = true; return true }}
	if _, err := VerifyContext(ctx, v, "q", Premise{}); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if called {
		t.Fatal("a dead context must short-circuit before any verifier work")
	}
}

func TestLatencyVerifyWaits(t *testing.T) {
	l := Latency{V: verdictOf(true), D: 10 * time.Millisecond}
	start := time.Now()
	if !l.Verify("q", Premise{}) {
		t.Fatal("wrapped verdict lost")
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("Verify must charge the full simulated latency")
	}
	// Score passes through without the simulated inference wait.
	start = time.Now()
	l.Score("q", Premise{})
	if time.Since(start) > 5*time.Millisecond {
		t.Fatal("Score must not charge the latency")
	}
}

func TestLatencyComposesContextAware(t *testing.T) {
	// A context-aware verifier nested inside Latency must still observe
	// cancellation: the context threads through to the inner inference.
	inner := Latency{V: verdictOf(true), D: 10 * time.Second}
	outer := Latency{V: inner, D: time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := VerifyContext(ctx, outer, "q", Premise{}); err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation must reach the nested verifier's wait")
	}
}

func TestLatencyVerifyContextAborts(t *testing.T) {
	l := Latency{V: verdictOf(true), D: 10 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := VerifyContext(ctx, l, "q", Premise{})
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation must abort the simulated inference mid-wait")
	}
}
