package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numericalGrad estimates dLoss/dParam by central differences through the
// full forward pass, validating the analytic backward pass.
func TestBackpropMatchesNumericalGradient(t *testing.T) {
	m := NewMLP(4, 3, 1)
	x := []float64{0.5, -1.2, 0.3, 2.0}
	loss := PaperFocal
	for _, y := range []int{0, 1} {
		logit, hidden := m.forward(x)
		_, dLdZ := loss.Eval(logit, y)
		g := newGrads(m)
		m.backward(x, dLdZ, hidden, g)

		const h = 1e-6
		check := func(p *float64, analytic float64, name string) {
			t.Helper()
			orig := *p
			*p = orig + h
			lp, _ := loss.Eval(m.Logit(x), y)
			*p = orig - h
			lm, _ := loss.Eval(m.Logit(x), y)
			*p = orig
			numeric := (lp - lm) / (2 * h)
			if math.Abs(numeric-analytic) > 1e-5*(1+math.Abs(numeric)) {
				t.Errorf("y=%d %s: analytic %g numeric %g", y, name, analytic, numeric)
			}
		}
		check(&m.B2, g.b2, "b2")
		check(&m.W2[0], g.w2[0], "w2[0]")
		check(&m.W1[0][0], g.w1[0][0], "w1[0][0]")
		check(&m.B1[1], g.b1[1], "b1[1]")
	}
}

func TestFocalLossGradientNumerically(t *testing.T) {
	fl := FocalLoss{Gamma: 2.0, Alpha: 0.75, WPos: 2.7, WNeg: 1.0}
	const h = 1e-6
	for _, z := range []float64{-3, -0.5, 0, 0.5, 3} {
		for _, y := range []int{0, 1} {
			_, grad := fl.Eval(z, y)
			lp, _ := fl.Eval(z+h, y)
			lm, _ := fl.Eval(z-h, y)
			numeric := (lp - lm) / (2 * h)
			if math.Abs(numeric-grad) > 1e-5*(1+math.Abs(numeric)) {
				t.Errorf("focal grad at z=%v y=%d: analytic %g numeric %g", z, y, grad, numeric)
			}
		}
	}
}

func TestCrossEntropyGradientNumerically(t *testing.T) {
	ce := CrossEntropy{WPos: 2, WNeg: 1}
	const h = 1e-6
	for _, z := range []float64{-2, 0, 2} {
		for _, y := range []int{0, 1} {
			_, grad := ce.Eval(z, y)
			lp, _ := ce.Eval(z+h, y)
			lm, _ := ce.Eval(z-h, y)
			numeric := (lp - lm) / (2 * h)
			if math.Abs(numeric-grad) > 1e-5*(1+math.Abs(numeric)) {
				t.Errorf("ce grad at z=%v y=%d: analytic %g numeric %g", z, y, grad, numeric)
			}
		}
	}
}

func TestFocalDownweightsEasyExamples(t *testing.T) {
	fl := FocalLoss{Gamma: 2.0, Alpha: 0.5, WPos: 1, WNeg: 1}
	ce := CrossEntropy{WPos: 0.5, WNeg: 0.5}
	// A well-classified positive (logit 3): focal loss must shrink the
	// example far more than cross entropy does.
	fEasy, _ := fl.Eval(3, 1)
	cEasy, _ := ce.Eval(3, 1)
	fHard, _ := fl.Eval(-3, 1)
	cHard, _ := ce.Eval(-3, 1)
	if fEasy/fHard >= cEasy/cHard {
		t.Fatalf("focal must down-weight easy examples: focal ratio %g, ce ratio %g", fEasy/fHard, cEasy/cHard)
	}
}

func TestTrainLearnsXOR(t *testing.T) {
	// XOR is the canonical not-linearly-separable sanity check.
	data := []Sample{
		{X: []float64{0, 0}, Y: 0},
		{X: []float64{0, 1}, Y: 1},
		{X: []float64{1, 0}, Y: 1},
		{X: []float64{1, 1}, Y: 0},
	}
	var big []Sample
	for i := 0; i < 64; i++ {
		big = append(big, data...)
	}
	m := NewMLP(2, 8, 42)
	losses := Train(m, big, TrainConfig{Epochs: 200, BatchSize: 16, LR: 0.01, Seed: 7, Loss: CrossEntropy{WPos: 1, WNeg: 1}})
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %g -> %g", losses[0], losses[len(losses)-1])
	}
	for _, s := range data {
		p := m.Predict(s.X)
		if (s.Y == 1) != (p > 0.5) {
			t.Fatalf("XOR(%v) predicted %g want label %d", s.X, p, s.Y)
		}
	}
}

func TestTrainImbalancedWithFocal(t *testing.T) {
	// 9:1 negative:positive imbalance on a linearly separable problem;
	// the focal loss with class re-weighting must still recover the
	// positive class.
	rng := rand.New(rand.NewSource(3))
	var data []Sample
	for i := 0; i < 900; i++ {
		data = append(data, Sample{X: []float64{rng.Float64() * 0.4, 1}, Y: 0})
	}
	for i := 0; i < 100; i++ {
		data = append(data, Sample{X: []float64{0.6 + rng.Float64()*0.4, 1}, Y: 1})
	}
	m := NewMLP(2, 6, 11)
	Train(m, data, TrainConfig{Epochs: 60, BatchSize: 32, LR: 0.02, Seed: 5, Loss: PaperFocal})
	tp, fn := 0, 0
	for _, s := range data {
		if s.Y == 1 {
			if m.Predict(s.X) > 0.5 {
				tp++
			} else {
				fn++
			}
		}
	}
	if tp < 90 {
		t.Fatalf("positive recall too low under imbalance: tp=%d fn=%d", tp, fn)
	}
}

func TestTrainDeterministicGivenSeed(t *testing.T) {
	data := []Sample{{X: []float64{1, 0}, Y: 1}, {X: []float64{0, 1}, Y: 0}}
	m1 := NewMLP(2, 4, 9)
	m2 := NewMLP(2, 4, 9)
	Train(m1, data, TrainConfig{Epochs: 10, LR: 0.01, Seed: 1})
	Train(m2, data, TrainConfig{Epochs: 10, LR: 0.01, Seed: 1})
	if m1.B2 != m2.B2 || m1.W2[0] != m2.W2[0] {
		t.Fatal("training must be deterministic for a fixed seed")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	m := NewMLP(3, 2, 5)
	data, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := UnmarshalMLP(data)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3}
	if math.Abs(m.Logit(x)-m2.Logit(x)) > 1e-12 {
		t.Fatal("round-tripped model diverges")
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	if _, err := UnmarshalMLP([]byte(`{"in":3,"hidden":2,"w1":[[1,2,3]],"b1":[0,0],"w2":[1,1],"b2":0}`)); err == nil {
		t.Fatal("shape mismatch must be rejected")
	}
	if _, err := UnmarshalMLP([]byte(`not json`)); err == nil {
		t.Fatal("bad json must be rejected")
	}
}

func TestSigmoidStability(t *testing.T) {
	if s := Sigmoid(1000); s != 1 {
		t.Fatalf("sigmoid(1000) = %g", s)
	}
	if s := Sigmoid(-1000); s != 0 {
		t.Fatalf("sigmoid(-1000) = %g", s)
	}
	if s := Sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("sigmoid(0) = %g", s)
	}
}
