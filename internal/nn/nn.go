// Package nn is a dependency-free neural-network micro-stack sized for the
// NLI verifier: a one-hidden-layer MLP binary classifier trained with the
// Adam optimizer and the focal loss of Lin et al. that the paper adopts
// for its imbalanced entailment data (§IV-D, Eq. 1), including the class
// re-weighting the paper layers on top. Backpropagation is exact and
// covered by finite-difference gradient checks in the tests.
package nn

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
)

// MLP is a binary classifier: input -> ReLU hidden layer -> single logit.
type MLP struct {
	In     int         `json:"in"`
	Hidden int         `json:"hidden"`
	W1     [][]float64 `json:"w1"` // Hidden x In
	B1     []float64   `json:"b1"`
	W2     []float64   `json:"w2"` // 1 x Hidden
	B2     float64     `json:"b2"`
}

// NewMLP initializes a network with Xavier-style scaling from a seeded
// generator, so training runs are reproducible.
func NewMLP(in, hidden int, seed int64) *MLP {
	rng := rand.New(rand.NewSource(seed))
	m := &MLP{In: in, Hidden: hidden}
	scale1 := math.Sqrt(2.0 / float64(in))
	m.W1 = make([][]float64, hidden)
	m.B1 = make([]float64, hidden)
	for h := range m.W1 {
		m.W1[h] = make([]float64, in)
		for i := range m.W1[h] {
			m.W1[h][i] = rng.NormFloat64() * scale1
		}
	}
	scale2 := math.Sqrt(2.0 / float64(hidden))
	m.W2 = make([]float64, hidden)
	for h := range m.W2 {
		m.W2[h] = rng.NormFloat64() * scale2
	}
	return m
}

// Logit runs the forward pass.
func (m *MLP) Logit(x []float64) float64 {
	z, _ := m.forward(x)
	return z
}

func (m *MLP) forward(x []float64) (logit float64, hidden []float64) {
	hidden = make([]float64, m.Hidden)
	for h := 0; h < m.Hidden; h++ {
		s := m.B1[h]
		row := m.W1[h]
		for i, xi := range x {
			s += row[i] * xi
		}
		if s > 0 {
			hidden[h] = s
		}
	}
	logit = m.B2
	for h, a := range hidden {
		logit += m.W2[h] * a
	}
	return logit, hidden
}

// Predict returns P(label = positive).
func (m *MLP) Predict(x []float64) float64 { return Sigmoid(m.Logit(x)) }

// Sigmoid is the logistic function, numerically stabilized.
func Sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

// FocalLoss is the paper's classification loss: FL(pt) = -αt (1-pt)^γ log(pt),
// with class weights (wPos, wNeg) re-scaling the two classes. It returns
// the loss and its exact derivative with respect to the logit.
type FocalLoss struct {
	Gamma float64 // focusing parameter (paper: 2.0)
	Alpha float64 // positive-class weight in [0,1] (paper: 0.75)
	WPos  float64 // class re-scaling (paper: 2.7 for entailment)
	WNeg  float64 // class re-scaling (paper: 1.0 for contradiction)
}

// PaperFocal is the configuration used by the paper's training settings.
var PaperFocal = FocalLoss{Gamma: 2.0, Alpha: 0.75, WPos: 2.7, WNeg: 1.0}

const epsProb = 1e-12

// Eval computes the loss and dLoss/dLogit for a binary label y in {0, 1}.
func (fl FocalLoss) Eval(logit float64, y int) (loss, dLdZ float64) {
	p := Sigmoid(logit)
	var pt, a float64
	if y == 1 {
		pt = p
		a = fl.Alpha * fl.WPos
	} else {
		pt = 1 - p
		a = (1 - fl.Alpha) * fl.WNeg
	}
	if pt < epsProb {
		pt = epsProb
	}
	oneMinus := 1 - pt
	loss = -a * math.Pow(oneMinus, fl.Gamma) * math.Log(pt)
	// dL/dpt, then chain through pt -> p -> logit.
	dLdPt := a * (fl.Gamma*math.Pow(oneMinus, fl.Gamma-1)*math.Log(pt) - math.Pow(oneMinus, fl.Gamma)/pt)
	dPtdP := 1.0
	if y == 0 {
		dPtdP = -1.0
	}
	dLdZ = dLdPt * dPtdP * p * (1 - p)
	return loss, dLdZ
}

// CrossEntropy is the plain weighted BCE loss used by the focal-loss
// ablation bench.
type CrossEntropy struct {
	WPos, WNeg float64
}

// Eval computes the loss and dLoss/dLogit.
func (ce CrossEntropy) Eval(logit float64, y int) (loss, dLdZ float64) {
	p := Sigmoid(logit)
	if y == 1 {
		pt := math.Max(p, epsProb)
		return -ce.WPos * math.Log(pt), ce.WPos * (p - 1)
	}
	pt := math.Max(1-p, epsProb)
	return -ce.WNeg * math.Log(pt), ce.WNeg * p
}

// Loss is the training-objective contract shared by FocalLoss and
// CrossEntropy.
type Loss interface {
	Eval(logit float64, y int) (loss, dLdZ float64)
}

// grads mirrors the MLP parameter shapes.
type grads struct {
	w1 [][]float64
	b1 []float64
	w2 []float64
	b2 float64
}

func newGrads(m *MLP) *grads {
	g := &grads{b1: make([]float64, m.Hidden), w2: make([]float64, m.Hidden)}
	g.w1 = make([][]float64, m.Hidden)
	for h := range g.w1 {
		g.w1[h] = make([]float64, m.In)
	}
	return g
}

// backward accumulates gradients for one example into g.
func (m *MLP) backward(x []float64, dLdZ float64, hidden []float64, g *grads) {
	g.b2 += dLdZ
	for h, a := range hidden {
		g.w2[h] += dLdZ * a
		if a > 0 { // ReLU gate
			dh := dLdZ * m.W2[h]
			g.b1[h] += dh
			row := g.w1[h]
			for i, xi := range x {
				if xi != 0 {
					row[i] += dh * xi
				}
			}
		}
	}
}

// Adam is the Adam optimizer over an MLP's parameters.
type Adam struct {
	LR       float64
	Beta1    float64
	Beta2    float64
	Eps      float64
	t        int
	mW1, vW1 [][]float64
	mB1, vB1 []float64
	mW2, vW2 []float64
	mB2, vB2 float64
}

// NewAdam returns an Adam optimizer with the usual defaults and the given
// learning rate (the paper trains its verifier with Adam at 5e-6; our much
// smaller model uses a correspondingly larger rate set by the caller).
func NewAdam(m *MLP, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	a.mW1 = zeros2(m.Hidden, m.In)
	a.vW1 = zeros2(m.Hidden, m.In)
	a.mB1 = make([]float64, m.Hidden)
	a.vB1 = make([]float64, m.Hidden)
	a.mW2 = make([]float64, m.Hidden)
	a.vW2 = make([]float64, m.Hidden)
	return a
}

func zeros2(r, c int) [][]float64 {
	out := make([][]float64, r)
	for i := range out {
		out[i] = make([]float64, c)
	}
	return out
}

// Step applies one Adam update with gradients g (already averaged over the
// batch by the caller).
func (a *Adam) Step(m *MLP, g *grads) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	upd := func(p, grad *float64, mm, vv *float64) {
		*mm = a.Beta1**mm + (1-a.Beta1)**grad
		*vv = a.Beta2**vv + (1-a.Beta2)**grad**grad
		mHat := *mm / c1
		vHat := *vv / c2
		*p -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
	}
	for h := range m.W1 {
		for i := range m.W1[h] {
			upd(&m.W1[h][i], &g.w1[h][i], &a.mW1[h][i], &a.vW1[h][i])
		}
		upd(&m.B1[h], &g.b1[h], &a.mB1[h], &a.vB1[h])
		upd(&m.W2[h], &g.w2[h], &a.mW2[h], &a.vW2[h])
	}
	upd(&m.B2, &g.b2, &a.mB2, &a.vB2)
}

// Sample is one training example.
type Sample struct {
	X []float64
	Y int // 1 = entailment, 0 = contradiction
}

// TrainConfig bundles the training hyperparameters.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
	Loss      Loss
}

// Train fits the model with mini-batch Adam and returns the mean loss per
// epoch (useful for convergence assertions in tests and benchmarks).
func Train(m *MLP, data []Sample, cfg TrainConfig) []float64 {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 5
	}
	loss := cfg.Loss
	if loss == nil {
		loss = PaperFocal
	}
	opt := NewAdam(m, cfg.LR)
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(data))
	for i := range order {
		order[i] = i
	}
	var epochLosses []float64
	for e := 0; e < cfg.Epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		total := 0.0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			g := newGrads(m)
			for _, idx := range order[start:end] {
				s := data[idx]
				logit, hidden := m.forward(s.X)
				l, dLdZ := loss.Eval(logit, s.Y)
				total += l
				m.backward(s.X, dLdZ/float64(end-start), hidden, g)
			}
			opt.Step(m, g)
		}
		epochLosses = append(epochLosses, total/float64(maxi(1, len(data))))
	}
	return epochLosses
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Marshal serializes the model to JSON.
func (m *MLP) Marshal() ([]byte, error) { return json.Marshal(m) }

// UnmarshalMLP deserializes a model, validating shapes.
func UnmarshalMLP(data []byte) (*MLP, error) {
	var m MLP
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	if len(m.W1) != m.Hidden || len(m.W2) != m.Hidden || len(m.B1) != m.Hidden {
		return nil, fmt.Errorf("nn: corrupt model: hidden=%d w1=%d w2=%d", m.Hidden, len(m.W1), len(m.W2))
	}
	for _, row := range m.W1 {
		if len(row) != m.In {
			return nil, fmt.Errorf("nn: corrupt model: input width %d != %d", len(row), m.In)
		}
	}
	return &m, nil
}
