// Package sqlgen generates the seeded-random property-query corpus
// shared by the executor parity tests (internal/sqleval) and the
// front-end differential suite (internal/frontdiff). The queries target
// the two-table T/U schema built by the sqleval property harness:
// T(id, num, val, txt) and U(k1, k2, w), with mixed-kind columns and
// NULLs. Generation is deterministic per seed, so a failing query
// reproduces from its suite's fixed seed alone.
package sqlgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// TableTCols are the columns of the property schema's table T.
var TableTCols = []string{"id", "num", "val", "txt"}

// JoinCols are the columns visible in the T-join-U property queries.
var JoinCols = []string{"id", "num", "val", "txt", "w", "k1", "k2"}

// Property-corpus shape: the documented "480 seeded-random property
// queries" are the single-table and join suites at their fixed seeds.
const (
	SingleTableSeed  = 7
	SingleTableCount = 400
	JoinSeed         = 11
	JoinCount        = 80
)

// PropertyQueries returns the full 480-query property corpus.
func PropertyQueries() []string {
	qs := SingleTableQueries(SingleTableSeed, SingleTableCount)
	return append(qs, JoinQueries(JoinSeed, JoinCount)...)
}

// SingleTableQueries generates n randomized single-table queries over T:
// random projections (star, single column, pairs, DISTINCT), random
// conjunctions of range/BETWEEN/IS NOT NULL predicates — including
// literal-first spellings — and random ORDER BY / LIMIT / OFFSET tails.
func SingleTableQueries(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		var b strings.Builder
		b.WriteString("SELECT ")
		if rng.Intn(8) == 0 {
			b.WriteString("DISTINCT ")
		}
		switch rng.Intn(3) {
		case 0:
			b.WriteString("*")
		case 1:
			b.WriteString(TableTCols[rng.Intn(len(TableTCols))])
		default:
			b.WriteString("id, " + TableTCols[1+rng.Intn(3)])
		}
		b.WriteString(" FROM T")
		if n := rng.Intn(4); n > 0 {
			preds := make([]string, n)
			for p := range preds {
				preds[p] = RandomPredicate(rng, TableTCols)
			}
			b.WriteString(" WHERE " + strings.Join(preds, " AND "))
		}
		if rng.Intn(3) > 0 {
			b.WriteString(" ORDER BY " + TableTCols[rng.Intn(len(TableTCols))])
			if rng.Intn(2) == 0 {
				b.WriteString(" DESC")
			}
			if rng.Intn(3) > 0 {
				fmt.Fprintf(&b, " LIMIT %d", rng.Intn(25))
				if rng.Intn(3) == 0 {
					fmt.Fprintf(&b, " OFFSET %d", rng.Intn(6))
				}
			}
		}
		out = append(out, b.String())
	}
	return out
}

// JoinQueries generates n composite-key equi-join queries between T and
// U with randomized join flavor, residual predicates, and LIMIT tails.
func JoinQueries(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		join := "JOIN"
		if rng.Intn(3) == 0 {
			join = "LEFT JOIN"
		}
		var b strings.Builder
		fmt.Fprintf(&b, "SELECT T.id, U.w FROM T %s U ON T.num = U.k1 AND T.txt = U.k2", join)
		if rng.Intn(2) == 0 && join == "JOIN" {
			b.WriteString(" WHERE " + RandomPredicate(rng, JoinCols))
		}
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&b, " ORDER BY T.id LIMIT %d", 1+rng.Intn(30))
		}
		out = append(out, b.String())
	}
	return out
}

// RandomLiteral renders a random comparison bound: integers, halves,
// text (plain and numeric-looking), and the occasional NULL (which no
// probe may claim and no row may pass).
func RandomLiteral(rng *rand.Rand) string {
	switch rng.Intn(8) {
	case 0:
		return fmt.Sprintf("%.1f", float64(rng.Intn(21)-5)/2)
	case 1:
		return "'" + []string{"a", "b", "m", "z", "5", "mm"}[rng.Intn(6)] + "'"
	case 2:
		return "NULL"
	default:
		return fmt.Sprint(rng.Intn(14) - 3)
	}
}

// RandomPredicate renders one conjunct over the given columns,
// including the literal-first comparison spelling that exercises the
// CacheKey orientation rule.
func RandomPredicate(rng *rand.Rand, cols []string) string {
	col := cols[rng.Intn(len(cols))]
	switch rng.Intn(8) {
	case 0: // literal-first spelling
		op := []string{"<", "<=", ">", ">=", "="}[rng.Intn(5)]
		return RandomLiteral(rng) + " " + op + " " + col
	case 1:
		not := ""
		if rng.Intn(3) == 0 {
			not = "NOT "
		}
		return fmt.Sprintf("%s %sBETWEEN %s AND %s", col, not, RandomLiteral(rng), RandomLiteral(rng))
	case 2:
		return col + " IS NOT NULL"
	default:
		op := []string{"<", "<=", ">", ">=", "=", "!="}[rng.Intn(6)]
		return col + " " + op + " " + RandomLiteral(rng)
	}
}
