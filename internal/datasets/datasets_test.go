package datasets

import (
	"strings"
	"testing"

	"cyclesql/internal/sqleval"
	"cyclesql/internal/sqlnorm"
)

func TestSpiderConstruction(t *testing.T) {
	b := Spider()
	if len(b.Train) < 700 {
		t.Fatalf("train examples = %d, want hundreds", len(b.Train))
	}
	if len(b.Dev) < 250 {
		t.Fatalf("dev examples = %d", len(b.Dev))
	}
	if len(b.Test) < 200 {
		t.Fatalf("test examples = %d", len(b.Test))
	}
	if len(b.Databases) != len(trainVocabs)+len(devVocabs)+len(testVocabs)+2 {
		t.Fatalf("databases = %d", len(b.Databases))
	}
}

func TestSplitsUseDisjointDatabases(t *testing.T) {
	b := Spider()
	trainDBs := map[string]bool{}
	for _, ex := range b.Train {
		trainDBs[ex.DBName] = true
	}
	for _, ex := range append(append([]Example{}, b.Dev...), b.Test...) {
		if trainDBs[ex.DBName] {
			t.Fatalf("database %s appears in train and eval splits", ex.DBName)
		}
	}
}

func TestEveryGoldExecutes(t *testing.T) {
	for _, name := range []string{"spider", "spider-realistic", "spider-syn", "spider-dk", "science"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, split := range [][]Example{b.Train, b.Dev, b.Test} {
			for _, ex := range split {
				db := b.DB(ex.DBName)
				if _, err := sqleval.New(db).Exec(ex.Gold); err != nil {
					t.Fatalf("%s/%s: gold does not execute: %v", name, ex.ID, err)
				}
			}
		}
	}
}

func TestDifficultySpectrum(t *testing.T) {
	b := Spider()
	counts := map[sqlnorm.Difficulty]int{}
	for _, ex := range b.Dev {
		counts[ex.Difficulty]++
	}
	for _, d := range sqlnorm.Difficulties {
		if counts[d] == 0 {
			t.Fatalf("dev split has no %s examples: %v", d, counts)
		}
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a := buildSpider()
	b := buildSpider()
	if len(a.Dev) != len(b.Dev) {
		t.Fatal("non-deterministic dev size")
	}
	for i := range a.Dev {
		if a.Dev[i].Question != b.Dev[i].Question || a.Dev[i].GoldSQL != b.Dev[i].GoldSQL {
			t.Fatalf("non-deterministic example %d", i)
		}
	}
}

func TestWorldPaperFacts(t *testing.T) {
	db := WorldDB()
	ex := sqleval.New(db)
	check := func(sql string, want int64) {
		t.Helper()
		rel, err := ex.Exec(mustParse(t, sql))
		if err != nil {
			t.Fatal(err)
		}
		if rel.NumRows() != 1 || rel.Rows[0][0].Int() != want {
			t.Fatalf("%s = %v, want %d", sql, rel.Rows, want)
		}
	}
	// Aruba speaks four languages (paper Q1).
	check("SELECT count(T2.language) FROM country AS T1 JOIN countrylanguage AS T2 ON T1.code = T2.countrycode WHERE T1.name = 'Aruba'", 4)
	// Iraq speaks five languages (paper Q5).
	check("SELECT count(*) FROM countrylanguage WHERE countrycode = 'IRQ'", 5)
	// Anguilla is in North America (paper Q2).
	rel, err := ex.Exec(mustParse(t, "SELECT continent FROM country WHERE name = 'Anguilla'"))
	if err != nil || rel.Rows[0][0].Text() != "North America" {
		t.Fatalf("Anguilla: %v %v", rel, err)
	}
	// Seychelles speaks both English and French (paper Q3).
	rel, err = ex.Exec(mustParse(t, "SELECT T1.name FROM country AS T1 JOIN countrylanguage AS T2 ON T1.code = T2.countrycode WHERE T2.language = 'English' INTERSECT SELECT T1.name FROM country AS T1 JOIN countrylanguage AS T2 ON T1.code = T2.countrycode WHERE T2.language = 'French'"))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range rel.Rows {
		if row[0].Text() == "Seychelles" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Seychelles must speak both English and French: %v", rel.Rows)
	}
}

func TestVariantPerturbations(t *testing.T) {
	syn := SpiderSyn()
	if len(syn.Dev) == 0 {
		t.Fatal("syn variant empty")
	}
	base := Spider()
	baseQ := map[string]string{}
	for _, ex := range base.Dev {
		baseQ[ex.GoldSQL] = ex.Question
	}
	for _, ex := range syn.Dev[:10] {
		if orig, ok := baseQ[ex.GoldSQL]; ok && orig == ex.Question {
			t.Fatalf("syn example unchanged: %q", ex.Question)
		}
	}
	real := SpiderRealistic()
	if len(real.Dev) == 0 {
		t.Fatal("realistic variant empty")
	}
	for _, ex := range real.Dev {
		if !ex.SchemaIndirect {
			t.Fatal("realistic examples must be marked SchemaIndirect")
		}
	}
	dk := SpiderDK()
	if len(dk.Dev) < 30 {
		t.Fatalf("dk variant too small: %d", len(dk.Dev))
	}
	for _, ex := range dk.Dev {
		if !ex.RequiresDK {
			t.Fatal("dk examples must be marked RequiresDK")
		}
	}
}

func TestScienceBenchmarkShape(t *testing.T) {
	b := Science()
	if len(b.Databases) != 3 {
		t.Fatalf("science databases = %d", len(b.Databases))
	}
	perDomain := map[string]int{}
	for _, ex := range b.Dev {
		perDomain[ex.DBName]++
	}
	for _, d := range []string{"oncomx", "cordis", "sdss"} {
		if perDomain[d] < 80 {
			t.Fatalf("science domain %s has %d examples", d, perDomain[d])
		}
	}
}

func TestQuestionsMentionValues(t *testing.T) {
	// Most questions should carry the literal value of their filters so
	// explanations can lexically overlap with them.
	b := Spider()
	withFilter := 0
	mentions := 0
	for _, ex := range b.Dev {
		if !strings.Contains(ex.GoldSQL, "WHERE") || !strings.Contains(ex.GoldSQL, "'") {
			continue
		}
		withFilter++
		start := strings.Index(ex.GoldSQL, "'")
		end := strings.Index(ex.GoldSQL[start+1:], "'")
		if end < 0 {
			continue
		}
		val := ex.GoldSQL[start+1 : start+1+end]
		if strings.Contains(strings.ToLower(ex.Question), strings.ToLower(val)) {
			mentions++
		}
	}
	if withFilter == 0 || mentions*10 < withFilter*6 {
		t.Fatalf("only %d/%d filtered questions mention their value", mentions, withFilter)
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}
