package datasets

import (
	"math/rand"

	"cyclesql/internal/schema"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// buildDomain instantiates the generic four-table shape with a domain
// vocabulary: category dimension, main entity with a foreign key into it,
// owner dimension, and an entity-owner junction table. All data is drawn
// from a seeded generator so every build is reproducible.
func buildDomain(v Vocab, seed int64) *storage.Database {
	junction := v.EntTable + "_" + v.OwnTable
	s := &schema.Schema{
		Name: v.Domain,
		Tables: []*schema.Table{
			{Name: v.CatTable, NaturalName: v.CatNatural, Columns: []schema.Column{
				{Name: "id", Type: sqltypes.KindInt, PrimaryKey: true, Role: "id"},
				{Name: "name", Type: sqltypes.KindText, NaturalName: v.CatNatural + " name", Role: "name"},
				{Name: v.CatMeasure, Type: sqltypes.KindInt, NaturalName: v.CatMeasureNatural, Role: "measure"},
			}},
			{Name: v.EntTable, NaturalName: v.EntNatural, Columns: []schema.Column{
				{Name: "id", Type: sqltypes.KindInt, PrimaryKey: true, Role: "id"},
				{Name: "name", Type: sqltypes.KindText, NaturalName: v.EntNatural + " name", Role: "name"},
				{Name: v.FKCol, Type: sqltypes.KindInt, NaturalName: v.CatNatural, Role: "fk"},
				{Name: v.Measure, Type: sqltypes.KindInt, NaturalName: v.MeasureNatural, Role: "measure"},
				{Name: v.Place, Type: sqltypes.KindText, NaturalName: v.PlaceNatural, Role: "category"},
				{Name: v.Level, Type: sqltypes.KindInt, NaturalName: v.LevelNatural, Role: "level"},
			}},
			{Name: v.OwnTable, NaturalName: v.OwnNatural, Columns: []schema.Column{
				{Name: "id", Type: sqltypes.KindInt, PrimaryKey: true, Role: "id"},
				{Name: "name", Type: sqltypes.KindText, NaturalName: v.OwnNatural + " name", Role: "name"},
				{Name: v.OwnAttr, Type: sqltypes.KindInt, NaturalName: v.OwnAttrNatural, Role: "measure"},
				{Name: v.OwnCat, Type: sqltypes.KindText, NaturalName: v.OwnCatNatural, Role: "category"},
			}},
			{Name: junction, NaturalName: v.EntNatural + " " + v.OwnNatural, Columns: []schema.Column{
				{Name: v.EntTable + "_id", Type: sqltypes.KindInt, Role: "fk"},
				{Name: v.OwnTable + "_id", Type: sqltypes.KindInt, Role: "fk"},
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{Table: v.EntTable, Column: v.FKCol, RefTable: v.CatTable, RefColumn: "id"},
			{Table: junction, Column: v.EntTable + "_id", RefTable: v.EntTable, RefColumn: "id"},
			{Table: junction, Column: v.OwnTable + "_id", RefTable: v.OwnTable, RefColumn: "id"},
		},
	}
	if err := s.Validate(); err != nil {
		panic("datasets: " + v.Domain + ": " + err.Error())
	}
	db := storage.NewDatabase(s)
	rng := rand.New(rand.NewSource(seed))
	for i, name := range v.CatNames {
		db.MustInsert(v.CatTable,
			sqltypes.NewInt(int64(i+1)),
			sqltypes.NewText(name),
			sqltypes.NewInt(randIn(rng, v.CatMeasureRange)),
		)
	}
	for i, name := range v.EntNames {
		db.MustInsert(v.EntTable,
			sqltypes.NewInt(int64(i+1)),
			sqltypes.NewText(name),
			sqltypes.NewInt(int64(rng.Intn(len(v.CatNames))+1)),
			sqltypes.NewInt(randIn(rng, v.MeasureRange)),
			sqltypes.NewText(v.Places[rng.Intn(len(v.Places))]),
			sqltypes.NewInt(randIn(rng, v.LevelRange)),
		)
	}
	for i, name := range v.OwnNames {
		db.MustInsert(v.OwnTable,
			sqltypes.NewInt(int64(i+1)),
			sqltypes.NewText(name),
			sqltypes.NewInt(randIn(rng, v.OwnAttrRange)),
			sqltypes.NewText(v.OwnCats[rng.Intn(len(v.OwnCats))]),
		)
	}
	// Junction: one to three owners per entity, deduplicated.
	for ei := range v.EntNames {
		n := 1 + rng.Intn(3)
		seen := map[int]bool{}
		for k := 0; k < n; k++ {
			oi := rng.Intn(len(v.OwnNames)) + 1
			if seen[oi] {
				continue
			}
			seen[oi] = true
			db.MustInsert(junction, sqltypes.NewInt(int64(ei+1)), sqltypes.NewInt(int64(oi)))
		}
	}
	return db
}

func randIn(rng *rand.Rand, r [2]int) int64 {
	if r[1] <= r[0] {
		return int64(r[0])
	}
	return int64(r[0] + rng.Intn(r[1]-r[0]+1))
}
