package datasets

import (
	"cyclesql/internal/schema"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// WorldDB builds the hand-written world_1 database used by the paper's
// case study (Table IV) and user study: country / city / countrylanguage
// with enough real-world-shaped data to reproduce the paper's example
// results (Aruba speaks four languages, Anguilla is in North America,
// Seychelles speaks both English and French, Iraq speaks five languages,
// Estonia's population exceeds 80000).
func WorldDB() *storage.Database {
	s := &schema.Schema{
		Name: "world_1",
		Tables: []*schema.Table{
			{Name: "country", NaturalName: "country", Columns: []schema.Column{
				{Name: "code", Type: sqltypes.KindText, PrimaryKey: true, Role: "id"},
				{Name: "name", Type: sqltypes.KindText, NaturalName: "country name", Role: "name"},
				{Name: "continent", Type: sqltypes.KindText, NaturalName: "continent", Role: "category"},
				{Name: "population", Type: sqltypes.KindInt, NaturalName: "population", Role: "measure"},
			}},
			{Name: "city", NaturalName: "city", Columns: []schema.Column{
				{Name: "id", Type: sqltypes.KindInt, PrimaryKey: true, Role: "id"},
				{Name: "name", Type: sqltypes.KindText, NaturalName: "city name", Role: "name"},
				{Name: "countrycode", Type: sqltypes.KindText, NaturalName: "country code", Role: "fk"},
				{Name: "population", Type: sqltypes.KindInt, NaturalName: "population", Role: "measure"},
			}},
			{Name: "countrylanguage", NaturalName: "country language", Columns: []schema.Column{
				{Name: "countrycode", Type: sqltypes.KindText, NaturalName: "country code", Role: "fk"},
				{Name: "language", Type: sqltypes.KindText, NaturalName: "language", Role: "category"},
				{Name: "isofficial", Type: sqltypes.KindText, NaturalName: "is official", Role: "category"},
				{Name: "percentage", Type: sqltypes.KindFloat, NaturalName: "percentage", Role: "measure"},
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{Table: "city", Column: "countrycode", RefTable: "country", RefColumn: "code"},
			{Table: "countrylanguage", Column: "countrycode", RefTable: "country", RefColumn: "code"},
		},
	}
	if err := s.Validate(); err != nil {
		panic("datasets: world_1: " + err.Error())
	}
	db := storage.NewDatabase(s)
	type c struct {
		code, name, continent string
		pop                   int64
	}
	for _, r := range []c{
		{"ABW", "Aruba", "North America", 103000},
		{"AIA", "Anguilla", "North America", 8000},
		{"SYC", "Seychelles", "Africa", 77000},
		{"IRQ", "Iraq", "Asia", 23115000},
		{"EST", "Estonia", "Europe", 1439200},
		{"RUS", "Russian Federation", "Europe", 146934000},
		{"FRA", "France", "Europe", 59225700},
		{"DEU", "Germany", "Europe", 82164700},
		{"GBR", "United Kingdom", "Europe", 59623400},
		{"IRL", "Ireland", "Europe", 3775100},
		{"ESP", "Spain", "Europe", 39441700},
		{"ITA", "Italy", "Europe", 57680000},
		{"NLD", "Netherlands", "Europe", 15864000},
		{"BEL", "Belgium", "Europe", 10239000},
		{"CHE", "Switzerland", "Europe", 7160400},
		{"CAN", "Canada", "North America", 31147000},
		{"USA", "United States", "North America", 278357000},
		{"MEX", "Mexico", "North America", 98881000},
		{"BRA", "Brazil", "South America", 170115000},
		{"ARG", "Argentina", "South America", 37032000},
		{"CHN", "China", "Asia", 1277558000},
		{"JPN", "Japan", "Asia", 126714000},
		{"IND", "India", "Asia", 1013662000},
		{"EGY", "Egypt", "Africa", 68470000},
		{"NGA", "Nigeria", "Africa", 111506000},
		{"AUS", "Australia", "Oceania", 18886000},
		{"NZL", "New Zealand", "Oceania", 3862000},
		{"CMR", "Cameroon", "Africa", 15085000},
		{"VUT", "Vanuatu", "Oceania", 190000},
		{"MCO", "Monaco", "Europe", 34000},
	} {
		db.MustInsert("country", sqltypes.NewText(r.code), sqltypes.NewText(r.name), sqltypes.NewText(r.continent), sqltypes.NewInt(r.pop))
	}
	type ct struct {
		id   int64
		name string
		cc   string
		pop  int64
	}
	for _, r := range []ct{
		{1, "Oranjestad", "ABW", 29034},
		{2, "The Valley", "AIA", 595},
		{3, "Victoria", "SYC", 41000},
		{4, "Baghdad", "IRQ", 4336000},
		{5, "Tallinn", "EST", 403981},
		{6, "Moscow", "RUS", 8389200},
		{7, "Nabereznyje Tselny", "RUS", 514700},
		{8, "Saint Petersburg", "RUS", 4694000},
		{9, "Paris", "FRA", 2125246},
		{10, "Lyon", "FRA", 445452},
		{11, "Berlin", "DEU", 3386667},
		{12, "Hamburg", "DEU", 1704735},
		{13, "London", "GBR", 7285000},
		{14, "Dublin", "IRL", 481854},
		{15, "Madrid", "ESP", 2879052},
		{16, "Rome", "ITA", 2643581},
		{17, "Amsterdam", "NLD", 731200},
		{18, "Brussels", "BEL", 133859},
		{19, "Zurich", "CHE", 336800},
		{20, "Toronto", "CAN", 688275},
		{21, "New York", "USA", 8008278},
		{22, "Mexico City", "MEX", 8591309},
		{23, "Sao Paulo", "BRA", 9968485},
		{24, "Buenos Aires", "ARG", 2982146},
		{25, "Shanghai", "CHN", 9696300},
		{26, "Tokyo", "JPN", 7980230},
		{27, "Mumbai", "IND", 10500000},
		{28, "Cairo", "EGY", 6789479},
		{29, "Lagos", "NGA", 1518000},
		{30, "Sydney", "AUS", 3276500},
		{31, "Auckland", "NZL", 381800},
		{32, "Douala", "CMR", 1448300},
		{33, "Geneva", "CHE", 173500},
		{34, "Monte-Carlo", "MCO", 13154},
	} {
		db.MustInsert("city", sqltypes.NewInt(r.id), sqltypes.NewText(r.name), sqltypes.NewText(r.cc), sqltypes.NewInt(r.pop))
	}
	type l struct {
		cc, lang, official string
		pct                float64
	}
	for _, r := range []l{
		// Aruba speaks four languages (paper Q1).
		{"ABW", "Dutch", "T", 5.3}, {"ABW", "Papiamento", "F", 76.7}, {"ABW", "Spanish", "F", 7.4}, {"ABW", "English", "F", 9.5},
		{"AIA", "English", "T", 100.0},
		// Seychelles speaks both English and French (paper Q3).
		{"SYC", "English", "T", 3.8}, {"SYC", "French", "T", 1.3}, {"SYC", "Seselwa", "F", 91.3},
		// Iraq speaks five languages (paper Q5).
		{"IRQ", "Arabic", "T", 77.2}, {"IRQ", "Kurdish", "F", 19.0}, {"IRQ", "Azerbaijani", "F", 1.7}, {"IRQ", "Assyrian", "F", 0.8}, {"IRQ", "Persian", "F", 0.8},
		{"EST", "Estonian", "T", 65.3}, {"EST", "Russian", "F", 27.8}, {"EST", "Ukrainian", "F", 2.8},
		{"RUS", "Russian", "T", 86.6}, {"RUS", "Tatar", "F", 3.2}, {"RUS", "Ukrainian", "F", 1.3},
		{"FRA", "French", "T", 93.6}, {"FRA", "Arabic", "F", 2.5}, {"FRA", "Portuguese", "F", 1.2},
		{"DEU", "German", "T", 91.3}, {"DEU", "Turkish", "F", 2.6},
		{"GBR", "English", "T", 97.3}, {"GBR", "Welsh", "F", 0.9},
		{"IRL", "English", "T", 98.4}, {"IRL", "Irish", "T", 1.6},
		{"ESP", "Spanish", "T", 74.4}, {"ESP", "Catalan", "F", 16.9}, {"ESP", "Galician", "F", 6.4},
		{"ITA", "Italian", "T", 94.1}, {"ITA", "Sardinian", "F", 2.7},
		{"NLD", "Dutch", "T", 95.6}, {"NLD", "Frisian", "F", 3.7},
		{"BEL", "Dutch", "T", 59.2}, {"BEL", "French", "T", 32.6}, {"BEL", "German", "T", 1.0},
		{"CHE", "German", "T", 63.6}, {"CHE", "French", "T", 19.2}, {"CHE", "Italian", "T", 7.7},
		{"CAN", "English", "T", 60.4}, {"CAN", "French", "T", 23.4},
		{"USA", "English", "T", 86.2}, {"USA", "Spanish", "F", 7.5},
		{"MEX", "Spanish", "T", 92.1}, {"MEX", "Nahuatl", "F", 1.8},
		{"BRA", "Portuguese", "T", 97.5}, {"BRA", "German", "F", 0.5},
		{"ARG", "Spanish", "T", 96.8}, {"ARG", "Italian", "F", 1.7},
		{"CHN", "Chinese", "T", 92.0}, {"CHN", "Zhuang", "F", 1.4},
		{"JPN", "Japanese", "T", 99.1},
		{"IND", "Hindi", "T", 39.9}, {"IND", "Bengali", "F", 8.2}, {"IND", "Telugu", "F", 7.8},
		{"EGY", "Arabic", "T", 98.8},
		{"NGA", "Hausa", "F", 21.1}, {"NGA", "Yoruba", "F", 21.0}, {"NGA", "English", "T", 0.0},
		{"AUS", "English", "T", 81.2}, {"AUS", "Italian", "F", 2.2},
		{"NZL", "English", "T", 87.0}, {"NZL", "Maori", "T", 4.3},
		// Cameroon speaks both English and French too (enriches Q3).
		{"CMR", "French", "T", 40.0}, {"CMR", "English", "T", 20.0}, {"CMR", "Fang", "F", 19.7},
		{"VUT", "Bislama", "T", 56.6}, {"VUT", "English", "T", 28.3}, {"VUT", "French", "T", 14.2},
		{"MCO", "French", "T", 58.5}, {"MCO", "Monegasque", "F", 16.1},
	} {
		db.MustInsert("countrylanguage", sqltypes.NewText(r.cc), sqltypes.NewText(r.lang), sqltypes.NewText(r.official), sqltypes.NewFloat(r.pct))
	}
	return db
}

// worldExamples are the hand-written NL-SQL pairs on world_1, including
// the five case-study queries of the paper's Table IV (Q1-Q5).
func worldExamples() []Example {
	pairs := []struct{ q, sql string }{
		// Table IV Q1.
		{"What is the total number of languages used in Aruba?",
			"SELECT count(T2.language) FROM country AS T1 JOIN countrylanguage AS T2 ON T1.code = T2.countrycode WHERE T1.name = 'Aruba'"},
		// Table IV Q2.
		{"What is the continent name that Anguilla belongs to?",
			"SELECT continent FROM country WHERE name = 'Anguilla'"},
		// Table IV Q3.
		{"What are the names of nations that speak both English and French?",
			"SELECT T1.name FROM country AS T1 JOIN countrylanguage AS T2 ON T1.code = T2.countrycode WHERE T2.language = 'English' INTERSECT SELECT T1.name FROM country AS T1 JOIN countrylanguage AS T2 ON T1.code = T2.countrycode WHERE T2.language = 'French'"},
		// Table IV Q4.
		{"Which cities are in European countries where English is not the official language?",
			"SELECT DISTINCT T2.name FROM country AS T1 JOIN city AS T2 ON T1.code = T2.countrycode WHERE T1.continent = 'Europe' AND T1.name NOT IN (SELECT T3.name FROM country AS T3 JOIN countrylanguage AS T4 ON T3.code = T4.countrycode WHERE T4.isofficial = 'T' AND T4.language = 'English')"},
		// Table IV Q5.
		{"Return the country name and the numbers of languages spoken for each country that speaks at least 3 languages.",
			"SELECT count(T2.language), T1.name FROM country AS T1 JOIN countrylanguage AS T2 ON T1.code = T2.countrycode GROUP BY T1.name HAVING count(*) > 2"},
		// Error-analysis example (§V-A5): population filter on Europe.
		{"Give the names of countries that are in Europe and have a population equal to 80000.",
			"SELECT name FROM country WHERE continent = 'Europe' AND population = 80000"},
		{"How many countries are in Africa?",
			"SELECT count(*) FROM country WHERE continent = 'Africa'"},
		{"What is the name of the most populated country?",
			"SELECT name FROM country ORDER BY population DESC LIMIT 1"},
		{"List the names of cities with population over 5000000.",
			"SELECT name FROM city WHERE population > 5000000"},
		{"For each continent, how many countries are there?",
			"SELECT continent, count(*) FROM country GROUP BY continent"},
		{"What is the average population of European countries?",
			"SELECT avg(population) FROM country WHERE continent = 'Europe'"},
		{"Which languages are official in more than 3 countries?",
			"SELECT language FROM countrylanguage WHERE isofficial = 'T' GROUP BY language HAVING count(*) > 3"},
		{"Show the names of countries where Spanish is spoken.",
			"SELECT T1.name FROM country AS T1 JOIN countrylanguage AS T2 ON T1.code = T2.countrycode WHERE T2.language = 'Spanish'"},
		{"How many cities does the Russian Federation have?",
			"SELECT count(*) FROM city AS T1 JOIN country AS T2 ON T1.countrycode = T2.code WHERE T2.name = 'Russian Federation'"},
		{"List the names of countries that have no official language recorded.",
			"SELECT name FROM country WHERE code NOT IN (SELECT countrycode FROM countrylanguage WHERE isofficial = 'T')"},
		{"What are the distinct continents?",
			"SELECT DISTINCT continent FROM country"},
		{"Show the name of the city with the smallest population.",
			"SELECT name FROM city ORDER BY population LIMIT 1"},
		{"How many languages are spoken in Iraq?",
			"SELECT count(*) FROM countrylanguage WHERE countrycode = 'IRQ'"},
		{"Show country names with population between 1000000 and 20000000.",
			"SELECT name FROM country WHERE population BETWEEN 1000000 AND 20000000"},
		{"Which countries speak French but not English?",
			"SELECT T1.name FROM country AS T1 JOIN countrylanguage AS T2 ON T1.code = T2.countrycode WHERE T2.language = 'French' EXCEPT SELECT T1.name FROM country AS T1 JOIN countrylanguage AS T2 ON T1.code = T2.countrycode WHERE T2.language = 'English'"},
	}
	out := make([]Example, 0, len(pairs))
	db := WorldDB()
	for i, p := range pairs {
		ex := newExample(fmtID("world_1", i), "world_1", p.q, p.sql)
		mustExecute(db, ex)
		out = append(out, ex)
	}
	return out
}

func fmtID(db string, i int) string {
	return db + "-" + pad3(i)
}

func pad3(i int) string {
	s := itoa(i)
	for len(s) < 3 {
		s = "0" + s
	}
	return s
}
