package datasets

import (
	"cyclesql/internal/schema"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// FlightDB builds the paper's Fig 2 database (flight_2): Aircraft and
// Flight, with the exact rows shown in the figure.
func FlightDB() *storage.Database {
	s := &schema.Schema{
		Name: "flight_2",
		Tables: []*schema.Table{
			{Name: "aircraft", NaturalName: "aircraft", Columns: []schema.Column{
				{Name: "aid", Type: sqltypes.KindInt, PrimaryKey: true, Role: "id"},
				{Name: "name", Type: sqltypes.KindText, NaturalName: "aircraft name", Role: "name"},
				{Name: "distance", Type: sqltypes.KindInt, NaturalName: "distance", Role: "measure"},
			}},
			{Name: "flight", NaturalName: "flight", Columns: []schema.Column{
				{Name: "flno", Type: sqltypes.KindInt, PrimaryKey: true, NaturalName: "flight number", Role: "id"},
				{Name: "aid", Type: sqltypes.KindInt, NaturalName: "aircraft id", Role: "fk"},
				{Name: "origin", Type: sqltypes.KindText, NaturalName: "origin", Role: "category"},
				{Name: "destination", Type: sqltypes.KindText, NaturalName: "destination", Role: "category"},
			}},
		},
		ForeignKeys: []schema.ForeignKey{
			{Table: "flight", Column: "aid", RefTable: "aircraft", RefColumn: "aid"},
		},
	}
	if err := s.Validate(); err != nil {
		panic("datasets: flight_2: " + err.Error())
	}
	db := storage.NewDatabase(s)
	type a struct {
		aid  int64
		name string
		dist int64
	}
	for _, r := range []a{
		{1, "Boeing 747-400", 8430}, {2, "Boeing 737-800", 3383},
		{3, "Airbus A340-300", 7120}, {4, "British Aerospace Jetstream 41", 1502},
		{5, "Embraer ERJ-145", 1530}, {6, "SAAB 340", 2128},
		{7, "Piper Archer III", 520}, {8, "Tupolev 154", 4103},
		{9, "Lockheed L1011", 6900}, {10, "Boeing 757-300", 4010},
	} {
		db.MustInsert("aircraft", sqltypes.NewInt(r.aid), sqltypes.NewText(r.name), sqltypes.NewInt(r.dist))
	}
	type f struct {
		flno, aid    int64
		origin, dest string
	}
	for _, r := range []f{
		{2, 9, "Los Angeles", "Tokyo"}, {7, 3, "Los Angeles", "Sydney"},
		{13, 3, "Los Angeles", "Chicago"}, {68, 10, "Chicago", "New York"},
		{76, 9, "Chicago", "Los Angeles"}, {33, 7, "Los Angeles", "Honolulu"},
		{34, 5, "Los Angeles", "Honolulu"}, {99, 1, "Los Angeles", "Washington D.C."},
		{346, 2, "Los Angeles", "Dallas"}, {387, 6, "Los Angeles", "Boston"},
	} {
		db.MustInsert("flight", sqltypes.NewInt(r.flno), sqltypes.NewInt(r.aid), sqltypes.NewText(r.origin), sqltypes.NewText(r.dest))
	}
	return db
}

// flightExamples are hand-written pairs on flight_2, led by the paper's
// motivating question from Fig 2.
func flightExamples() []Example {
	pairs := []struct{ q, sql string }{
		// The Fig 2 question, with the *correct* gold SQL.
		{"Show all flight numbers with aircraft Airbus A340-300.",
			"SELECT T1.flno FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.name = 'Airbus A340-300'"},
		{"How many flights depart from Los Angeles?",
			"SELECT count(*) FROM flight WHERE origin = 'Los Angeles'"},
		{"What is the name of the aircraft with the greatest distance?",
			"SELECT name FROM aircraft ORDER BY distance DESC LIMIT 1"},
		{"List the names of aircraft that are not used by any flight.",
			"SELECT name FROM aircraft WHERE aid NOT IN (SELECT aid FROM flight)"},
		{"For each origin, count the number of flights.",
			"SELECT origin, count(*) FROM flight GROUP BY origin"},
		{"Show the destinations of flights using aircraft named Lockheed L1011.",
			"SELECT T1.destination FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.name = 'Lockheed L1011'"},
		{"What is the average distance of all aircraft?",
			"SELECT avg(distance) FROM aircraft"},
		{"Which aircraft names have a distance above the average?",
			"SELECT name FROM aircraft WHERE distance > (SELECT avg(distance) FROM aircraft)"},
		{"How many aircraft have distance between 1000 and 5000?",
			"SELECT count(*) FROM aircraft WHERE distance BETWEEN 1000 AND 5000"},
		{"Show the aircraft name used by the most flights.",
			"SELECT T2.name FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid GROUP BY T2.name ORDER BY count(*) DESC LIMIT 1"},
	}
	out := make([]Example, 0, len(pairs))
	db := FlightDB()
	for i, p := range pairs {
		ex := newExample(fmtID("flight_2", i), "flight_2", p.q, p.sql)
		mustExecute(db, ex)
		out = append(out, ex)
	}
	return out
}
