package datasets

import (
	"testing"

	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqlparse"
)

func mustParse(t *testing.T, sql string) *sqlast.SelectStmt {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}
