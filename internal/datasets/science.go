package datasets

import (
	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqleval"
	"cyclesql/internal/storage"
)

// scienceVocabs are the three ScienceBenchmark-like scientific domains:
// OncoMX (cancer biomarkers), CORDIS (EU research projects) and SDSS (sky
// survey). The real benchmark ships three production research databases
// with expert-written questions; these seeded equivalents preserve the
// property the paper leans on — complex, jargon-heavy schemata on which
// general NL2SQL models degrade sharply (Table I, right columns).
var scienceVocabs = []Vocab{
	{
		Domain:   "oncomx",
		CatTable: "anatomical_entity", CatNatural: "anatomical entity",
		CatNames:   []string{"breast", "lung", "colon", "prostate", "kidney", "liver", "pancreas", "ovary"},
		CatMeasure: "uberon_rank", CatMeasureNatural: "uberon rank", CatMeasureRange: [2]int{1, 40},
		EntTable: "biomarker", EntNatural: "biomarker",
		EntNames: seq("BM", 40, 1000), FKCol: "anatomical_id",
		Measure: "expression_score", MeasureNatural: "expression score", MeasureRange: [2]int{0, 100},
		Place: "test_type", PlaceNatural: "test type", Places: []string{"diagnostic", "prognostic", "predictive", "monitoring"},
		Level: "phase", LevelNatural: "phase", LevelRange: [2]int{1, 4},
		OwnTable: "gene", OwnNatural: "gene",
		OwnNames: []string{"BRCA1", "BRCA2", "TP53", "EGFR", "KRAS", "ALK", "HER2", "MYC", "PTEN", "RB1", "APC", "VHL", "MLH1", "ATM", "CHEK2", "PALB2"},
		OwnAttr:  "chromosome", OwnAttrNatural: "chromosome", OwnAttrRange: [2]int{1, 22},
		OwnCat: "biotype", OwnCatNatural: "biotype", OwnCats: []string{"protein_coding", "lncRNA", "miRNA"},
		DK:  map[string][2]string{"late-phase": {"phase", ">=3"}, "highly-expressed": {"expression_score", ">=80"}},
		Syn: map[string]string{"biomarker": "marker", "gene": "locus", "expression score": "expression level"},
	},
	{
		Domain:   "cordis",
		CatTable: "funding_scheme", CatNatural: "funding scheme",
		CatNames:   []string{"ERC-ADG", "ERC-STG", "MSCA-IF", "RIA", "CSA", "IA"},
		CatMeasure: "max_grant", CatMeasureNatural: "maximum grant", CatMeasureRange: [2]int{100, 2500},
		EntTable: "project", EntNatural: "project",
		EntNames: seq("Project", 40, 700000), FKCol: "scheme_id",
		Measure: "total_cost", MeasureNatural: "total cost", MeasureRange: [2]int{50, 3000},
		Place: "framework", PlaceNatural: "framework programme", Places: []string{"FP7", "H2020", "Horizon Europe"},
		Level: "duration_years", LevelNatural: "duration", LevelRange: [2]int{1, 6},
		OwnTable: "institution", OwnNatural: "institution",
		OwnNames: []string{"ETH Zurich", "KU Leuven", "Max Planck Society", "CNRS", "University of Bologna", "TU Delft", "Uppsala University", "Charles University", "Aalto University", "CSIC", "INRIA", "University of Vienna"},
		OwnAttr:  "num_members", OwnAttrNatural: "number of members", OwnAttrRange: [2]int{1, 60},
		OwnCat: "country", OwnCatNatural: "country", OwnCats: []string{"CH", "BE", "DE", "FR", "IT", "NL", "SE"},
		DK:  map[string][2]string{"large-scale": {"total_cost", ">=2000"}, "long-running": {"duration_years", ">=5"}},
		Syn: map[string]string{"project": "grant", "institution": "organisation", "total cost": "budget"},
	},
	{
		Domain:   "sdss",
		CatTable: "photo_run", CatNatural: "photometric run",
		CatNames:   seq("Run", 8, 94),
		CatMeasure: "field_count", CatMeasureNatural: "field count", CatMeasureRange: [2]int{10, 900},
		EntTable: "photo_obj", EntNatural: "photometric object",
		EntNames: seq("Obj", 44, 58000), FKCol: "run_id",
		Measure: "magnitude_r", MeasureNatural: "r-band magnitude", MeasureRange: [2]int{12, 26},
		Place: "obj_class", PlaceNatural: "object class", Places: []string{"STAR", "GALAXY", "QSO"},
		Level: "quality_flag", LevelNatural: "quality flag", LevelRange: [2]int{0, 3},
		OwnTable: "spec_obj", OwnNatural: "spectroscopic object",
		OwnNames: seq("Spec", 20, 300), OwnAttr: "redshift_milli", OwnAttrNatural: "redshift", OwnAttrRange: [2]int{0, 700},
		OwnCat: "survey", OwnCatNatural: "survey", OwnCats: []string{"legacy", "boss", "segue"},
		DK:  map[string][2]string{"faint": {"magnitude_r", ">=22"}, "high-redshift": {"redshift_milli", ">=500"}},
		Syn: map[string]string{"photometric object": "detection", "r-band magnitude": "brightness", "object class": "type"},
	},
}

// SciencePerDomain matches the real benchmark's ~100 expert pairs per
// database.
const sciencePerDomain = 100

// buildScience assembles the three-domain scientific benchmark. It has no
// train split: the paper evaluates with the verifier frozen from Spider.
func buildScience() *Benchmark {
	b := &Benchmark{Name: "science", Databases: map[string]*storage.Database{}}
	for i, v := range scienceVocabs {
		db := buildDomain(v, int64(9000+i))
		b.Databases[v.Domain] = db
		b.Dev = append(b.Dev, generateExamples(db, v, int64(9500+i), sciencePerDomain)...)
	}
	return b
}

// checkExecutes verifies a gold statement runs against its database.
func checkExecutes(db *storage.Database, stmt *sqlast.SelectStmt) error {
	_, err := sqleval.New(db).Exec(stmt)
	return err
}
