package datasets

import (
	"fmt"
	"math/rand"
	"strings"
)

// vocabByDomain indexes every generated domain's vocabulary for the
// variant perturbations.
var vocabByDomain = func() map[string]Vocab {
	m := map[string]Vocab{}
	for _, vs := range [][]Vocab{trainVocabs, devVocabs, testVocabs, scienceVocabs} {
		for _, v := range vs {
			m[v.Domain] = v
		}
	}
	return m
}()

// handSyn supplies synonym maps for the hand-written databases.
var handSyn = map[string]map[string]string{
	"world_1": {
		"country":    "nation",
		"countries":  "nations",
		"city":       "metropolis",
		"cities":     "urban areas",
		"population": "number of inhabitants",
		"language":   "tongue",
		"languages":  "tongues",
		"continent":  "landmass",
	},
	"flight_2": {
		"flight":   "trip",
		"flights":  "trips",
		"aircraft": "plane",
		"origin":   "departure city",
		"distance": "range",
	},
}

// makeSyn produces the Spider-Syn perturbation: schema-related terms in
// the question are replaced with handpicked synonyms, breaking lexical
// matching between NL and schema (paper §V-A1).
func makeSyn(ex Example) (Example, bool) {
	syn := handSyn[ex.DBName]
	if v, ok := vocabByDomain[ex.DBName]; ok {
		syn = v.Syn
	}
	if len(syn) == 0 {
		return ex, false
	}
	q := ex.Question
	changed := false
	for from, to := range syn {
		if replaced := replaceWord(q, from, to); replaced != q {
			q = replaced
			changed = true
		}
	}
	if !changed {
		return ex, false
	}
	out := ex
	out.ID = "syn-" + ex.ID
	out.Question = q
	out.SynPerturbed = true
	return out, true
}

// makeRealistic produces the Spider-Realistic perturbation: explicit
// column-name mentions are removed or replaced by vague referents, so
// models must infer the schema item from context (paper §V-A1).
func makeRealistic(ex Example) (Example, bool) {
	v, ok := vocabByDomain[ex.DBName]
	q := ex.Question
	changed := false
	drop := func(word, repl string) {
		if word == "" {
			return
		}
		if r := replaceWord(q, word, repl); r != q {
			q = strings.Join(strings.Fields(r), " ")
			changed = true
		}
	}
	if ok {
		// Column-name words become vague referents; table words stay.
		drop(v.MeasureNatural, "value")
		drop(v.PlaceNatural, "")
		drop(v.LevelNatural, "figure")
		drop(v.OwnAttrNatural, "value")
		drop(v.OwnCatNatural, "")
		drop(v.CatMeasureNatural, "value")
	} else {
		for _, col := range []string{"population", "continent", "language", "distance", "origin"} {
			drop(col, "value")
		}
	}
	if !changed {
		return ex, false
	}
	out := ex
	out.ID = "realistic-" + ex.ID
	out.Question = q
	out.SchemaIndirect = true
	return out, true
}

// replaceWord replaces whole-word, case-insensitive occurrences.
func replaceWord(s, from, to string) string {
	if from == "" {
		return s
	}
	lower := strings.ToLower(s)
	needle := strings.ToLower(from)
	var b strings.Builder
	i := 0
	for {
		j := strings.Index(lower[i:], needle)
		if j < 0 {
			b.WriteString(s[i:])
			return b.String()
		}
		j += i
		end := j + len(needle)
		beforeOK := j == 0 || !isWordByte(lower[j-1])
		afterOK := end == len(lower) || !isWordByte(lower[end])
		if beforeOK && afterOK {
			b.WriteString(s[i:j])
			b.WriteString(to)
			i = end
		} else {
			b.WriteString(s[i : j+1])
			i = j + 1
		}
	}
}

func isWordByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
}

// buildDK assembles the Spider-DK benchmark: questions phrased with
// domain-knowledge terms ("veteran pilots" for age >= 50) whose resolution
// requires the knowledge mapping, not lexical schema matching.
func buildDK() *Benchmark {
	base := Spider()
	b := &Benchmark{Name: "spider-dk", Databases: base.Databases}
	rng := rand.New(rand.NewSource(77))
	for _, v := range devVocabs {
		db := base.DB(v.Domain)
		i := 0
		for adj, cond := range v.DK {
			col, op, val := parseDKCond(cond)
			patterns := []struct{ q, sql string }{
				{fmt.Sprintf("How many %s %ss are there?", adj, subjectFor(v, col)),
					fmt.Sprintf("SELECT count(*) FROM %s WHERE %s %s %s", tableFor(v, col), col, op, val)},
				{fmt.Sprintf("List the names of %s %ss.", adj, subjectFor(v, col)),
					fmt.Sprintf("SELECT name FROM %s WHERE %s %s %s", tableFor(v, col), col, op, val)},
				{fmt.Sprintf("Show the name and %s of %s %ss.", measureNaturalFor(v, col), adj, subjectFor(v, col)),
					fmt.Sprintf("SELECT name, %s FROM %s WHERE %s %s %s", measureFor(v, col), tableFor(v, col), col, op, val)},
			}
			// Two extra combined-condition patterns when the DK condition
			// lives on the entity table.
			if tableFor(v, col) == v.EntTable {
				p := pick(rng, v.Places)
				patterns = append(patterns,
					struct{ q, sql string }{
						fmt.Sprintf("How many %s %ss have %s %s?", adj, v.EntNatural, v.PlaceNatural, p),
						fmt.Sprintf("SELECT count(*) FROM %s WHERE %s %s %s AND %s = '%s'", v.EntTable, col, op, val, v.Place, esc(p)),
					},
					struct{ q, sql string }{
						fmt.Sprintf("Which %s %s has the highest %s?", adj, v.EntNatural, v.MeasureNatural),
						fmt.Sprintf("SELECT name FROM %s WHERE %s %s %s ORDER BY %s DESC LIMIT 1", v.EntTable, col, op, val, v.Measure),
					},
				)
			}
			for _, p := range patterns {
				ex := newExample(fmt.Sprintf("dk-%s-%03d", v.Domain, i), v.Domain, p.q, p.sql)
				ex.RequiresDK = true
				mustExecute(db, ex)
				b.Dev = append(b.Dev, ex)
				i++
			}
		}
	}
	// The hand-written world_1 contributes classic DK items.
	worldDK := []struct{ q, sql string }{
		{"How many European countries are there?",
			"SELECT count(*) FROM country WHERE continent = 'Europe'"},
		{"List the names of African countries.",
			"SELECT name FROM country WHERE continent = 'Africa'"},
		{"Show the most populous Asian country.",
			"SELECT name FROM country WHERE continent = 'Asia' ORDER BY population DESC LIMIT 1"},
		{"How many Anglophone countries are there?",
			"SELECT count(DISTINCT countrycode) FROM countrylanguage WHERE language = 'English'"},
		{"List the names of Francophone nations.",
			"SELECT T1.name FROM country AS T1 JOIN countrylanguage AS T2 ON T1.code = T2.countrycode WHERE T2.language = 'French'"},
	}
	db := base.DB("world_1")
	for i, p := range worldDK {
		ex := newExample(fmt.Sprintf("dk-world_1-%03d", i), "world_1", p.q, p.sql)
		ex.RequiresDK = true
		mustExecute(db, ex)
		b.Dev = append(b.Dev, ex)
	}
	return b
}

// parseDKCond splits a DK condition string like ">=50", "=0" or "=black"
// into operator and SQL-rendered value.
func parseDKCond(cond [2]string) (col, op, val string) {
	col = cond[0]
	c := cond[1]
	for _, candidate := range []string{">=", "<=", "!=", "=", ">", "<"} {
		if strings.HasPrefix(c, candidate) {
			op = candidate
			val = c[len(candidate):]
			break
		}
	}
	if op == "" {
		op, val = "=", c
	}
	if !isNumeric(val) {
		val = "'" + esc(val) + "'"
	}
	return col, op, val
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if (s[i] < '0' || s[i] > '9') && s[i] != '.' && !(i == 0 && s[i] == '-') {
			return false
		}
	}
	return true
}

// tableFor locates which table of the generic shape owns a column.
func tableFor(v Vocab, col string) string {
	switch col {
	case v.OwnAttr, v.OwnCat:
		return v.OwnTable
	case v.CatMeasure:
		return v.CatTable
	default:
		return v.EntTable
	}
}

// measureFor returns the numeric measure column of the table owning col.
func measureFor(v Vocab, col string) string {
	switch tableFor(v, col) {
	case v.OwnTable:
		return v.OwnAttr
	case v.CatTable:
		return v.CatMeasure
	default:
		return v.Measure
	}
}

func measureNaturalFor(v Vocab, col string) string {
	switch tableFor(v, col) {
	case v.OwnTable:
		return v.OwnAttrNatural
	case v.CatTable:
		return v.CatMeasureNatural
	default:
		return v.MeasureNatural
	}
}

func subjectFor(v Vocab, col string) string {
	switch tableFor(v, col) {
	case v.OwnTable:
		return v.OwnNatural
	case v.CatTable:
		return v.CatNatural
	default:
		return v.EntNatural
	}
}
