package datasets

import (
	"fmt"
	"math/rand"
	"strings"

	"cyclesql/internal/storage"
)

// template instantiates one NL-SQL pair family on a generic domain. The
// returned question is phrased with the vocabulary's natural names so the
// variant perturbations (Realistic/Syn/DK) can rewrite it predictably.
type template func(v Vocab, rng *rand.Rand) (question, sql string)

// The template library spans the Spider difficulty spectrum: simple
// filters and aggregates, grouping with HAVING, multi-table joins over the
// FK and junction structure, set operations, and nested subqueries.
var templates = []template{
	// -- easy --
	func(v Vocab, rng *rand.Rand) (string, string) {
		return fmt.Sprintf("How many %ss are there?", v.EntNatural),
			fmt.Sprintf("SELECT count(*) FROM %s", v.EntTable)
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		p := pick(rng, v.Places)
		return fmt.Sprintf("How many %ss have %s %s?", v.EntNatural, v.PlaceNatural, p),
			fmt.Sprintf("SELECT count(*) FROM %s WHERE %s = '%s'", v.EntTable, v.Place, esc(p))
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		return fmt.Sprintf("What is the maximum %s of all %ss?", v.MeasureNatural, v.EntNatural),
			fmt.Sprintf("SELECT max(%s) FROM %s", v.Measure, v.EntTable)
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		t := threshold(rng, v.MeasureRange)
		return fmt.Sprintf("List the names of %ss whose %s is greater than %d.", v.EntNatural, v.MeasureNatural, t),
			fmt.Sprintf("SELECT name FROM %s WHERE %s > %d", v.EntTable, v.Measure, t)
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		return fmt.Sprintf("List the distinct %s values of %ss.", v.PlaceNatural, v.EntNatural),
			fmt.Sprintf("SELECT DISTINCT %s FROM %s", v.Place, v.EntTable)
	},
	// -- medium --
	func(v Vocab, rng *rand.Rand) (string, string) {
		p := pick(rng, v.Places)
		return fmt.Sprintf("Show the name and %s of %ss with %s %s.", v.MeasureNatural, v.EntNatural, v.PlaceNatural, p),
			fmt.Sprintf("SELECT name, %s FROM %s WHERE %s = '%s'", v.Measure, v.EntTable, v.Place, esc(p))
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		return fmt.Sprintf("Which %s has the highest %s?", v.EntNatural, v.MeasureNatural),
			fmt.Sprintf("SELECT name FROM %s ORDER BY %s DESC LIMIT 1", v.EntTable, v.Measure)
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		k := 2 + rng.Intn(3)
		return fmt.Sprintf("What are the names of the %d %ss with the lowest %s?", k, v.EntNatural, v.MeasureNatural),
			fmt.Sprintf("SELECT name FROM %s ORDER BY %s LIMIT %d", v.EntTable, v.Measure, k)
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		return fmt.Sprintf("For each %s, how many %ss are there?", v.PlaceNatural, v.EntNatural),
			fmt.Sprintf("SELECT %s, count(*) FROM %s GROUP BY %s", v.Place, v.EntTable, v.Place)
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		return fmt.Sprintf("What is the average %s for each %s of %ss?", v.MeasureNatural, v.PlaceNatural, v.EntNatural),
			fmt.Sprintf("SELECT %s, avg(%s) FROM %s GROUP BY %s", v.Place, v.Measure, v.EntTable, v.Place)
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		a, b := span(rng, v.MeasureRange)
		return fmt.Sprintf("How many %ss have %s between %d and %d?", v.EntNatural, v.MeasureNatural, a, b),
			fmt.Sprintf("SELECT count(*) FROM %s WHERE %s BETWEEN %d AND %d", v.EntTable, v.Measure, a, b)
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		prefix := firstLetter(v.EntNames[rng.Intn(len(v.EntNames))])
		return fmt.Sprintf("Show the names of %ss whose name starts with %s.", v.EntNatural, prefix),
			fmt.Sprintf("SELECT name FROM %s WHERE name LIKE '%s%%'", v.EntTable, esc(prefix))
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		return fmt.Sprintf("Count the number of distinct %s values among %ss.", v.PlaceNatural, v.EntNatural),
			fmt.Sprintf("SELECT count(DISTINCT %s) FROM %s", v.Place, v.EntTable)
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		t := threshold(rng, v.OwnAttrRange)
		return fmt.Sprintf("Show the names of %ss whose %s is at least %d.", v.OwnNatural, v.OwnAttrNatural, t),
			fmt.Sprintf("SELECT name FROM %s WHERE %s >= %d", v.OwnTable, v.OwnAttr, t)
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		c := pick(rng, v.CatNames)
		return fmt.Sprintf("How many %ss use the %s named %s?", v.EntNatural, v.CatNatural, c),
			fmt.Sprintf("SELECT count(*) FROM %s AS T1 JOIN %s AS T2 ON T1.%s = T2.id WHERE T2.name = '%s'",
				v.EntTable, v.CatTable, v.FKCol, esc(c))
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		c := pick(rng, v.CatNames)
		return fmt.Sprintf("Show the names of %ss of the %s named %s.", v.EntNatural, v.CatNatural, c),
			fmt.Sprintf("SELECT T1.name FROM %s AS T1 JOIN %s AS T2 ON T1.%s = T2.id WHERE T2.name = '%s'",
				v.EntTable, v.CatTable, v.FKCol, esc(c))
	},
	// -- hard --
	func(v Vocab, rng *rand.Rand) (string, string) {
		k := 2 + rng.Intn(2)
		return fmt.Sprintf("Which %s values have at least %d %ss?", v.PlaceNatural, k, v.EntNatural),
			fmt.Sprintf("SELECT %s FROM %s GROUP BY %s HAVING count(*) >= %d", v.Place, v.EntTable, v.Place, k)
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		return fmt.Sprintf("Which %s has the most %ss?", v.CatNatural, v.EntNatural),
			fmt.Sprintf("SELECT T2.name FROM %s AS T1 JOIN %s AS T2 ON T1.%s = T2.id GROUP BY T2.name ORDER BY count(*) DESC LIMIT 1",
				v.EntTable, v.CatTable, v.FKCol)
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		return fmt.Sprintf("Show the names of %ss whose %s is above the average.", v.EntNatural, v.MeasureNatural),
			fmt.Sprintf("SELECT name FROM %s WHERE %s > (SELECT avg(%s) FROM %s)", v.EntTable, v.Measure, v.Measure, v.EntTable)
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		return fmt.Sprintf("List the names of %ss that are not involved with any %s.", v.OwnNatural, v.EntNatural),
			fmt.Sprintf("SELECT name FROM %s WHERE id NOT IN (SELECT %s_id FROM %s_%s)",
				v.OwnTable, v.OwnTable, v.EntTable, v.OwnTable)
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		e := pick(rng, v.EntNames)
		return fmt.Sprintf("Show the names of %ss involved with the %s named %s.", v.OwnNatural, v.EntNatural, e),
			fmt.Sprintf("SELECT T3.name FROM %s AS T1 JOIN %s_%s AS T2 ON T1.id = T2.%s_id JOIN %s AS T3 ON T3.id = T2.%s_id WHERE T1.name = '%s'",
				v.EntTable, v.EntTable, v.OwnTable, v.EntTable, v.OwnTable, v.OwnTable, esc(e))
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		o := pick(rng, v.OwnNames)
		return fmt.Sprintf("Count the number of %ss involved with the %s named %s.", v.EntNatural, v.OwnNatural, o),
			fmt.Sprintf("SELECT count(*) FROM %s AS T1 JOIN %s_%s AS T2 ON T1.id = T2.%s_id JOIN %s AS T3 ON T3.id = T2.%s_id WHERE T3.name = '%s'",
				v.EntTable, v.EntTable, v.OwnTable, v.EntTable, v.OwnTable, v.OwnTable, esc(o))
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		p, p2 := pick2(rng, v.Places)
		return fmt.Sprintf("How many %ss have %s %s or %s %s?", v.EntNatural, v.PlaceNatural, p, v.PlaceNatural, p2),
			fmt.Sprintf("SELECT count(*) FROM %s WHERE %s = '%s' OR %s = '%s'", v.EntTable, v.Place, esc(p), v.Place, esc(p2))
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		p := pick(rng, v.Places)
		t := threshold(rng, v.MeasureRange)
		return fmt.Sprintf("How many %ss have %s %s and %s greater than %d?", v.EntNatural, v.PlaceNatural, p, v.MeasureNatural, t),
			fmt.Sprintf("SELECT count(*) FROM %s WHERE %s = '%s' AND %s > %d", v.EntTable, v.Place, esc(p), v.Measure, t)
	},
	// -- extra --
	func(v Vocab, rng *rand.Rand) (string, string) {
		l1 := v.LevelRange[0]
		l2 := v.LevelRange[0] + 1
		return fmt.Sprintf("Which %s values have %ss with %s %d and also %ss with %s %d?",
				v.PlaceNatural, v.EntNatural, v.LevelNatural, l1, v.EntNatural, v.LevelNatural, l2),
			fmt.Sprintf("SELECT %s FROM %s WHERE %s = %d INTERSECT SELECT %s FROM %s WHERE %s = %d",
				v.Place, v.EntTable, v.Level, l1, v.Place, v.EntTable, v.Level, l2)
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		p := pick(rng, v.Places)
		return fmt.Sprintf("List the names of %ss except those with %s %s.", v.EntNatural, v.PlaceNatural, p),
			fmt.Sprintf("SELECT name FROM %s EXCEPT SELECT name FROM %s WHERE %s = '%s'",
				v.EntTable, v.EntTable, v.Place, esc(p))
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		t := threshold(rng, v.MeasureRange)
		tc := threshold(rng, v.CatMeasureRange)
		return fmt.Sprintf("Show the names of %ss with %s above %d whose %s has %s above %d.",
				v.EntNatural, v.MeasureNatural, t, v.CatNatural, v.CatMeasureNatural, tc),
			fmt.Sprintf("SELECT T1.name FROM %s AS T1 JOIN %s AS T2 ON T1.%s = T2.id WHERE T1.%s > %d AND T2.%s > %d",
				v.EntTable, v.CatTable, v.FKCol, v.Measure, t, v.CatMeasure, tc)
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		c := pick(rng, v.OwnCats)
		return fmt.Sprintf("List the names of %ss that involve no %s whose %s is %s.",
				v.EntNatural, v.OwnNatural, v.OwnCatNatural, c),
			fmt.Sprintf("SELECT name FROM %s WHERE id NOT IN (SELECT T2.%s_id FROM %s_%s AS T2 JOIN %s AS T3 ON T3.id = T2.%s_id WHERE T3.%s = '%s')",
				v.EntTable, v.EntTable, v.EntTable, v.OwnTable, v.OwnTable, v.OwnTable, v.OwnCat, esc(c))
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		return fmt.Sprintf("For each %s name, return the name and the number of %ss, for those with more than 2 %ss.",
				v.CatNatural, v.EntNatural, v.EntNatural),
			fmt.Sprintf("SELECT T2.name, count(*) FROM %s AS T1 JOIN %s AS T2 ON T1.%s = T2.id GROUP BY T2.name HAVING count(*) > 2 ORDER BY count(*) DESC",
				v.EntTable, v.CatTable, v.FKCol)
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		p, p2 := pick2(rng, v.Places)
		return fmt.Sprintf("Show the names of %ss with %s %s together with the names of %ss with %s %s.",
				v.EntNatural, v.PlaceNatural, p, v.EntNatural, v.PlaceNatural, p2),
			fmt.Sprintf("SELECT name FROM %s WHERE %s = '%s' UNION SELECT name FROM %s WHERE %s = '%s'",
				v.EntTable, v.Place, esc(p), v.EntTable, v.Place, esc(p2))
	},
	func(v Vocab, rng *rand.Rand) (string, string) {
		return fmt.Sprintf("Return the average, minimum, and maximum %s across all %ss.", v.MeasureNatural, v.EntNatural),
			fmt.Sprintf("SELECT avg(%s), min(%s), max(%s) FROM %s", v.Measure, v.Measure, v.Measure, v.EntTable)
	},
}

// generateExamples instantiates count examples over the domain by cycling
// through the template library with a seeded generator, deduplicating on
// (question, SQL), and asserting every gold query executes.
func generateExamples(db *storage.Database, v Vocab, seed int64, count int) []Example {
	rng := rand.New(rand.NewSource(seed))
	var out []Example
	seen := map[string]bool{}
	attempts := 0
	for len(out) < count && attempts < count*20 {
		attempts++
		tmpl := templates[attempts%len(templates)]
		q, sql := tmpl(v, rng)
		key := q + "\x00" + sql
		if seen[key] {
			continue
		}
		seen[key] = true
		ex := newExample(fmt.Sprintf("%s-%03d", v.Domain, len(out)), v.Domain, q, sql)
		mustExecute(db, ex)
		out = append(out, ex)
	}
	return out
}

// mustExecute asserts a gold query runs; generator bugs fail at build time.
func mustExecute(db *storage.Database, ex Example) {
	if err := checkExecutes(db, ex.Gold); err != nil {
		panic(fmt.Sprintf("datasets: gold query for %s does not execute: %v (%s)", ex.ID, err, ex.GoldSQL))
	}
}

func pick(rng *rand.Rand, pool []string) string { return pool[rng.Intn(len(pool))] }

func pick2(rng *rand.Rand, pool []string) (string, string) {
	a := rng.Intn(len(pool))
	b := rng.Intn(len(pool) - 1)
	if b >= a {
		b++
	}
	return pool[a], pool[b]
}

// threshold samples a filter constant inside the central part of a range
// so comparisons select non-trivial subsets.
func threshold(rng *rand.Rand, r [2]int) int {
	lo := r[0] + (r[1]-r[0])/4
	hi := r[0] + 3*(r[1]-r[0])/4
	if hi <= lo {
		return r[0]
	}
	return lo + rng.Intn(hi-lo)
}

// span samples an ordered [a, b] interval inside a range.
func span(rng *rand.Rand, r [2]int) (int, int) {
	a := threshold(rng, r)
	b := a + 1 + rng.Intn(maxInt(1, (r[1]-a)))
	return a, b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func firstLetter(s string) string {
	if s == "" {
		return "A"
	}
	return strings.ToUpper(s[:1])
}

func esc(s string) string { return strings.ReplaceAll(s, "'", "''") }
