// Package datasets builds the synthetic benchmark suite this repository
// evaluates on: a Spider-like cross-domain benchmark with train/dev/test
// splits over disjoint databases, its three robustness variants
// (Spider-Realistic, Spider-Syn, Spider-DK), and a ScienceBenchmark-like
// suite of three complex scientific databases.
//
// The real Spider family ships as SQLite databases with human-written
// questions and is not available offline; this package substitutes a
// seeded synthetic equivalent that preserves the properties CycleSQL
// exercises (see DESIGN.md "Substitutions"): executable multi-table
// databases, NL questions whose surface aligns with gold SQL, the Spider
// difficulty spectrum, empty-result queries, and variant perturbations.
package datasets

import (
	"fmt"
	"sync"

	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqlnorm"
	"cyclesql/internal/sqlparse"
	"cyclesql/internal/storage"
)

// Example is one NL-SQL pair bound to a database.
type Example struct {
	ID         string
	DBName     string
	Question   string
	GoldSQL    string
	Gold       *sqlast.SelectStmt
	Difficulty sqlnorm.Difficulty
	// RequiresDK marks Spider-DK examples whose NL uses domain knowledge
	// ("American" for country = 'USA'); simulated models without the
	// knowledge mapping degrade on these.
	RequiresDK bool
	// SchemaIndirect marks Spider-Realistic examples whose NL avoids
	// naming schema columns explicitly.
	SchemaIndirect bool
	// SynPerturbed marks Spider-Syn examples whose schema terms were
	// replaced with synonyms.
	SynPerturbed bool
}

// Benchmark is a full dataset: databases plus example splits.
type Benchmark struct {
	Name      string
	Databases map[string]*storage.Database
	Train     []Example
	Dev       []Example
	Test      []Example
}

// DB returns the named database, panicking on unknown names; benchmark
// construction guarantees every example's DBName resolves.
func (b *Benchmark) DB(name string) *storage.Database {
	db, ok := b.Databases[name]
	if !ok {
		panic(fmt.Sprintf("datasets: benchmark %s has no database %q", b.Name, name))
	}
	return db
}

// newExample parses and classifies one gold pair, panicking on invalid
// SQL: generator bugs must fail loudly at construction time.
func newExample(id, dbName, question, goldSQL string) Example {
	stmt := sqlparse.MustParse(goldSQL)
	return Example{
		ID:         id,
		DBName:     dbName,
		Question:   question,
		GoldSQL:    goldSQL,
		Gold:       stmt,
		Difficulty: sqlnorm.Classify(stmt),
	}
}

var (
	spiderOnce sync.Once
	spiderB    *Benchmark

	realisticOnce sync.Once
	realisticB    *Benchmark

	synOnce sync.Once
	synB    *Benchmark

	dkOnce sync.Once
	dkB    *Benchmark

	scienceOnce sync.Once
	scienceB    *Benchmark
)

// Spider returns the synthetic Spider benchmark (cached).
func Spider() *Benchmark {
	spiderOnce.Do(func() { spiderB = buildSpider() })
	return spiderB
}

// SpiderRealistic returns the column-mention-free variant (cached).
func SpiderRealistic() *Benchmark {
	realisticOnce.Do(func() { realisticB = buildVariant("spider-realistic", makeRealistic) })
	return realisticB
}

// SpiderSyn returns the synonym-substitution variant (cached).
func SpiderSyn() *Benchmark {
	synOnce.Do(func() { synB = buildVariant("spider-syn", makeSyn) })
	return synB
}

// SpiderDK returns the domain-knowledge variant (cached).
func SpiderDK() *Benchmark {
	dkOnce.Do(func() { dkB = buildDK() })
	return dkB
}

// Science returns the ScienceBenchmark-like suite (cached).
func Science() *Benchmark {
	scienceOnce.Do(func() { scienceB = buildScience() })
	return scienceB
}

// ByName resolves a benchmark by its canonical name.
func ByName(name string) (*Benchmark, error) {
	switch name {
	case "spider":
		return Spider(), nil
	case "spider-realistic", "realistic":
		return SpiderRealistic(), nil
	case "spider-syn", "syn":
		return SpiderSyn(), nil
	case "spider-dk", "dk":
		return SpiderDK(), nil
	case "science", "sciencebenchmark":
		return Science(), nil
	default:
		return nil, fmt.Errorf("datasets: unknown benchmark %q", name)
	}
}

// buildSpider assembles the synthetic Spider: generic cross-domain
// databases for train/dev/test plus the hand-written world_1 and flight_2
// databases (used by the paper's case study and motivating example) on the
// dev split.
func buildSpider() *Benchmark {
	b := &Benchmark{Name: "spider", Databases: map[string]*storage.Database{}}
	for i, v := range trainVocabs {
		db := buildDomain(v, int64(1000+i))
		b.Databases[v.Domain] = db
		b.Train = append(b.Train, generateExamples(db, v, int64(2000+i), trainPerDomain)...)
	}
	for i, v := range devVocabs {
		db := buildDomain(v, int64(3000+i))
		b.Databases[v.Domain] = db
		b.Dev = append(b.Dev, generateExamples(db, v, int64(4000+i), devPerDomain)...)
	}
	for i, v := range testVocabs {
		db := buildDomain(v, int64(5000+i))
		b.Databases[v.Domain] = db
		b.Test = append(b.Test, generateExamples(db, v, int64(6000+i), devPerDomain)...)
	}
	// Hand-written paper databases join the dev split.
	world := WorldDB()
	b.Databases["world_1"] = world
	b.Dev = append(b.Dev, worldExamples()...)
	flight := FlightDB()
	b.Databases["flight_2"] = flight
	b.Dev = append(b.Dev, flightExamples()...)
	return b
}

// Examples per domain; Spider has ~7000 train / ~1034 dev questions over
// 146/20 databases — roughly 50 per database, which we match.
const (
	trainPerDomain = 56
	devPerDomain   = 48
)

// buildVariant derives a perturbed benchmark from Spider's databases and
// dev split. Variants share the frozen verifier trained on Spider's train
// split (paper §V-A3), so they carry no train examples of their own.
func buildVariant(name string, perturb func(Example) (Example, bool)) *Benchmark {
	base := Spider()
	b := &Benchmark{Name: name, Databases: base.Databases}
	for _, ex := range base.Dev {
		if p, ok := perturb(ex); ok {
			b.Dev = append(b.Dev, p)
		}
	}
	return b
}
