package datasets

// Vocab parameterizes the generic four-table domain builder: a category
// (dimension) table, a main entity table referencing it, an owner
// (person/organization) dimension, and an entity-owner junction table.
// Every generated domain therefore supports the full question-template
// library, while domains differ in vocabulary — mirroring Spider's
// cross-domain setup where schemata recur structurally but never lexically.
type Vocab struct {
	Domain string

	CatTable, CatNatural          string
	CatNames                      []string
	CatMeasure, CatMeasureNatural string
	CatMeasureRange               [2]int

	EntTable, EntNatural    string
	EntNames                []string
	FKCol                   string
	Measure, MeasureNatural string
	MeasureRange            [2]int
	Place, PlaceNatural     string
	Places                  []string
	Level, LevelNatural     string
	LevelRange              [2]int

	OwnTable, OwnNatural    string
	OwnNames                []string
	OwnAttr, OwnAttrNatural string
	OwnAttrRange            [2]int
	OwnCat, OwnCatNatural   string
	OwnCats                 []string

	// DK maps domain-knowledge adjectives used by the Spider-DK variant to
	// the (column, value) they denote, e.g. "domestic" -> {place, "home"}.
	DK map[string][2]string
	// Syn maps natural words to handpicked synonyms for Spider-Syn.
	Syn map[string]string
}

// Shared value pools; split vocabularies draw disjoint slices.
var (
	peopleNames = []string{
		"Alice Moore", "Bob Reyes", "Carla Jensen", "Derek Okafor", "Elena Petrova",
		"Farid Nasser", "Grace Liu", "Henrik Olsen", "Ines Castillo", "Jonas Weber",
		"Keiko Tanaka", "Liam Byrne", "Mara Silva", "Noah Fischer", "Olga Smirnova",
		"Pedro Alves", "Qi Zhang", "Rosa Marino", "Samir Patel", "Tara Nguyen",
		"Umar Khan", "Vera Kovacs", "Wendy Clarke", "Xavier Blanc", "Yara Haddad",
		"Zeno Ricci", "Anya Volkov", "Bruno Costa", "Celine Dubois", "Dmitri Ivanov",
	}
	cityNames = []string{
		"Springhaven", "Eastport", "Marlow", "Kingsbury", "Northfield",
		"Silverton", "Westbrook", "Harrowgate", "Lakemont", "Ravenswood",
		"Oakdale", "Fairview", "Brighton", "Clearwater", "Stonebridge",
		"Mapleton", "Riverside", "Hillcrest", "Ashford", "Greenvale",
	}
	countryNames = []string{
		"Arlandia", "Borovia", "Caspia", "Dravonia", "Elandor",
		"Fenwick", "Galdora", "Hestia", "Ithara", "Jovania",
	}
)

// seq generates "prefix N" names for entities without natural name pools.
func seq(prefix string, n, start int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = prefix + " " + itoa(start+i)
	}
	return out
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + itoa(n%10)
}

// trainVocabs are the 14 training domains.
var trainVocabs = []Vocab{
	{
		Domain:   "airline_ops",
		CatTable: "aircraft", CatNatural: "aircraft",
		CatNames:   []string{"Boeing 747", "Airbus A320", "Embraer 190", "Cessna 208", "Dash 8", "ATR 72", "Boeing 777", "Airbus A350"},
		CatMeasure: "range_km", CatMeasureNatural: "range", CatMeasureRange: [2]int{500, 9000},
		EntTable: "flight", EntNatural: "flight",
		EntNames: seq("Flight", 40, 100), FKCol: "aircraft_id",
		Measure: "duration", MeasureNatural: "duration", MeasureRange: [2]int{40, 720},
		Place: "origin", PlaceNatural: "origin", Places: cityNames[:8],
		Level: "stops", LevelNatural: "number of stops", LevelRange: [2]int{0, 3},
		OwnTable: "pilot", OwnNatural: "pilot",
		OwnNames: peopleNames[:12], OwnAttr: "age", OwnAttrNatural: "age", OwnAttrRange: [2]int{28, 64},
		OwnCat: "license", OwnCatNatural: "license", OwnCats: []string{"commercial", "private", "airline transport"},
		DK:  map[string][2]string{"veteran": {"age", ">=50"}, "nonstop": {"stops", "=0"}},
		Syn: map[string]string{"flight": "journey", "pilot": "aviator", "duration": "length", "origin": "departure city"},
	},
	{
		Domain:   "campus_courses",
		CatTable: "department", CatNatural: "department",
		CatNames:   []string{"Mathematics", "Physics", "History", "Biology", "Chemistry", "Economics", "Philosophy", "Linguistics"},
		CatMeasure: "budget", CatMeasureNatural: "budget", CatMeasureRange: [2]int{100, 900},
		EntTable: "course", EntNatural: "course",
		EntNames: seq("Course", 40, 200), FKCol: "dept_id",
		Measure: "credits", MeasureNatural: "credits", MeasureRange: [2]int{1, 6},
		Place: "building", PlaceNatural: "building", Places: cityNames[8:14],
		Level: "year", LevelNatural: "year", LevelRange: [2]int{1, 4},
		OwnTable: "student", OwnNatural: "student",
		OwnNames: peopleNames[12:26], OwnAttr: "gpa", OwnAttrNatural: "gpa", OwnAttrRange: [2]int{2, 4},
		OwnCat: "major", OwnCatNatural: "major", OwnCats: []string{"science", "arts", "engineering"},
		DK:  map[string][2]string{"senior": {"year", "=4"}, "introductory": {"year", "=1"}},
		Syn: map[string]string{"course": "class", "student": "pupil", "credits": "credit hours", "building": "hall"},
	},
	{
		Domain:   "hospital_care",
		CatTable: "ward", CatNatural: "ward",
		CatNames:   []string{"Cardiology", "Neurology", "Oncology", "Pediatrics", "Orthopedics", "Radiology"},
		CatMeasure: "beds", CatMeasureNatural: "number of beds", CatMeasureRange: [2]int{8, 60},
		EntTable: "patient", EntNatural: "patient",
		EntNames: peopleNames[:20], FKCol: "ward_id",
		Measure: "stay_days", MeasureNatural: "length of stay", MeasureRange: [2]int{1, 45},
		Place: "home_city", PlaceNatural: "home city", Places: cityNames[:6],
		Level: "severity", LevelNatural: "severity", LevelRange: [2]int{1, 5},
		OwnTable: "doctor", OwnNatural: "doctor",
		OwnNames: peopleNames[20:30], OwnAttr: "experience", OwnAttrNatural: "years of experience", OwnAttrRange: [2]int{1, 35},
		OwnCat: "specialty", OwnCatNatural: "specialty", OwnCats: []string{"surgery", "internal medicine", "emergency"},
		DK:  map[string][2]string{"critical": {"severity", ">=4"}, "long-term": {"stay_days", ">=30"}},
		Syn: map[string]string{"patient": "case", "doctor": "physician", "ward": "unit", "severity": "acuity"},
	},
	{
		Domain:   "retail_orders",
		CatTable: "supplier", CatNatural: "supplier",
		CatNames:   []string{"Acme Goods", "Northwind", "Bluebird Ltd", "Crestline", "Vanta Supply", "Orchid Trade", "Summit Co"},
		CatMeasure: "rating", CatMeasureNatural: "rating", CatMeasureRange: [2]int{1, 10},
		EntTable: "product", EntNatural: "product",
		EntNames: seq("Product", 36, 10), FKCol: "supplier_id",
		Measure: "price", MeasureNatural: "price", MeasureRange: [2]int{3, 900},
		Place: "warehouse", PlaceNatural: "warehouse", Places: cityNames[6:12],
		Level: "stock_level", LevelNatural: "stock level", LevelRange: [2]int{0, 9},
		OwnTable: "customer", OwnNatural: "customer",
		OwnNames: peopleNames[5:23], OwnAttr: "loyalty_points", OwnAttrNatural: "loyalty points", OwnAttrRange: [2]int{0, 5000},
		OwnCat: "segment", OwnCatNatural: "segment", OwnCats: []string{"consumer", "corporate", "small business"},
		DK:  map[string][2]string{"premium": {"price", ">=500"}, "out-of-stock": {"stock_level", "=0"}},
		Syn: map[string]string{"product": "item", "customer": "client", "price": "cost", "supplier": "vendor"},
	},
	{
		Domain:   "city_library",
		CatTable: "genre", CatNatural: "genre",
		CatNames:   []string{"Mystery", "Biography", "Fantasy", "Science", "Poetry", "Travel", "Cooking"},
		CatMeasure: "shelf_count", CatMeasureNatural: "shelf count", CatMeasureRange: [2]int{2, 40},
		EntTable: "book", EntNatural: "book",
		EntNames: seq("Volume", 40, 1), FKCol: "genre_id",
		Measure: "pages", MeasureNatural: "number of pages", MeasureRange: [2]int{60, 1200},
		Place: "branch", PlaceNatural: "branch", Places: cityNames[12:18],
		Level: "edition", LevelNatural: "edition", LevelRange: [2]int{1, 6},
		OwnTable: "member", OwnNatural: "member",
		OwnNames: peopleNames[3:19], OwnAttr: "age", OwnAttrNatural: "age", OwnAttrRange: [2]int{8, 80},
		OwnCat: "membership", OwnCatNatural: "membership", OwnCats: []string{"standard", "student", "senior"},
		DK:  map[string][2]string{"lengthy": {"pages", ">=800"}, "first-edition": {"edition", "=1"}},
		Syn: map[string]string{"book": "title", "member": "patron", "branch": "location", "pages": "page count"},
	},
	{
		Domain:   "music_label",
		CatTable: "label", CatNatural: "record label",
		CatNames:   []string{"Neon Sound", "Harbor Records", "Moonlit", "Redbrick Audio", "Skylark", "Blue Attic"},
		CatMeasure: "founded", CatMeasureNatural: "founded year", CatMeasureRange: [2]int{1950, 2015},
		EntTable: "album", EntNatural: "album",
		EntNames: seq("Album", 38, 1), FKCol: "label_id",
		Measure: "sales", MeasureNatural: "sales", MeasureRange: [2]int{1000, 900000},
		Place: "studio", PlaceNatural: "studio", Places: cityNames[:5],
		Level: "disc_count", LevelNatural: "number of discs", LevelRange: [2]int{1, 4},
		OwnTable: "artist", OwnNatural: "artist",
		OwnNames: peopleNames[10:28], OwnAttr: "age", OwnAttrNatural: "age", OwnAttrRange: [2]int{19, 70},
		OwnCat: "genre", OwnCatNatural: "genre", OwnCats: []string{"rock", "jazz", "electronic", "folk"},
		DK:  map[string][2]string{"platinum": {"sales", ">=500000"}, "double": {"disc_count", ">=2"}},
		Syn: map[string]string{"album": "record", "artist": "musician", "sales": "units sold", "label": "imprint"},
	},
	{
		Domain:   "race_events",
		CatTable: "circuit", CatNatural: "circuit",
		CatNames:   []string{"Silver Loop", "Red Valley", "Granite Ring", "Coastal Run", "Pine Circuit", "Sun Arena"},
		CatMeasure: "length_m", CatMeasureNatural: "track length", CatMeasureRange: [2]int{1200, 7000},
		EntTable: "race", EntNatural: "race",
		EntNames: seq("Race", 34, 1), FKCol: "circuit_id",
		Measure: "laps", MeasureNatural: "number of laps", MeasureRange: [2]int{10, 78},
		Place: "season", PlaceNatural: "season", Places: []string{"spring", "summer", "autumn", "winter"},
		Level: "tier", LevelNatural: "tier", LevelRange: [2]int{1, 3},
		OwnTable: "driver", OwnNatural: "driver",
		OwnNames: peopleNames[:15], OwnAttr: "wins", OwnAttrNatural: "number of wins", OwnAttrRange: [2]int{0, 40},
		OwnCat: "team", OwnCatNatural: "team", OwnCats: []string{"Falcon", "Meridian", "Apex", "Torrent"},
		DK:  map[string][2]string{"endurance": {"laps", ">=60"}, "top-tier": {"tier", "=1"}},
		Syn: map[string]string{"race": "grand prix", "driver": "racer", "laps": "circuits", "team": "crew"},
	},
	{
		Domain:   "game_studio",
		CatTable: "engine", CatNatural: "game engine",
		CatNames:   []string{"Vortex", "Lumen", "Forge", "Pixelkit", "Orbit", "Cascade"},
		CatMeasure: "release_year", CatMeasureNatural: "release year", CatMeasureRange: [2]int{2005, 2023},
		EntTable: "game", EntNatural: "game",
		EntNames: seq("Game", 36, 1), FKCol: "engine_id",
		Measure: "revenue", MeasureNatural: "revenue", MeasureRange: [2]int{50, 9000},
		Place: "platform", PlaceNatural: "platform", Places: []string{"PC", "console", "mobile", "web"},
		Level: "rating", LevelNatural: "rating", LevelRange: [2]int{1, 10},
		OwnTable: "developer", OwnNatural: "developer",
		OwnNames: peopleNames[8:24], OwnAttr: "experience", OwnAttrNatural: "years of experience", OwnAttrRange: [2]int{1, 25},
		OwnCat: "role", OwnCatNatural: "role", OwnCats: []string{"programmer", "designer", "producer"},
		DK:  map[string][2]string{"acclaimed": {"rating", ">=8"}, "blockbuster": {"revenue", ">=5000"}},
		Syn: map[string]string{"game": "title", "developer": "creator", "revenue": "earnings", "platform": "system"},
	},
	{
		Domain:   "farm_market",
		CatTable: "farm", CatNatural: "farm",
		CatNames:   []string{"Willow Acres", "Sunrise Farm", "Cedar Hollow", "Meadowlark", "Briar Patch", "Oak Ridge Farm"},
		CatMeasure: "acreage", CatMeasureNatural: "acreage", CatMeasureRange: [2]int{20, 800},
		EntTable: "crop", EntNatural: "crop",
		EntNames: []string{"Wheat", "Barley", "Oats", "Corn", "Soybean", "Rye", "Alfalfa", "Canola", "Flax", "Millet", "Sorghum", "Lentil", "Chickpea", "Potato", "Beet", "Carrot", "Onion", "Squash", "Pumpkin", "Tomato", "Pepper", "Cabbage", "Kale", "Spinach"},
		FKCol:    "farm_id",
		Measure:  "yield_tons", MeasureNatural: "yield", MeasureRange: [2]int{5, 400},
		Place: "field", PlaceNatural: "field", Places: cityNames[14:19],
		Level: "quality", LevelNatural: "quality grade", LevelRange: [2]int{1, 5},
		OwnTable: "buyer", OwnNatural: "buyer",
		OwnNames: peopleNames[2:18], OwnAttr: "volume", OwnAttrNatural: "purchase volume", OwnAttrRange: [2]int{10, 900},
		OwnCat: "channel", OwnCatNatural: "channel", OwnCats: []string{"wholesale", "retail", "export"},
		DK:  map[string][2]string{"bumper": {"yield_tons", ">=300"}, "top-grade": {"quality", "=5"}},
		Syn: map[string]string{"crop": "harvest", "buyer": "purchaser", "yield": "output", "farm": "ranch"},
	},
	{
		Domain:   "film_fest",
		CatTable: "studio", CatNatural: "studio",
		CatNames:   []string{"Aurora Films", "Boxcar", "Canopy", "Driftwood", "Ember Films", "Foxglove"},
		CatMeasure: "founded", CatMeasureNatural: "founded year", CatMeasureRange: [2]int{1930, 2010},
		EntTable: "film", EntNatural: "film",
		EntNames: seq("Film", 38, 1), FKCol: "studio_id",
		Measure: "runtime", MeasureNatural: "runtime", MeasureRange: [2]int{70, 210},
		Place: "language", PlaceNatural: "language", Places: []string{"English", "French", "Japanese", "Spanish", "Korean"},
		Level: "awards", LevelNatural: "number of awards", LevelRange: [2]int{0, 7},
		OwnTable: "director", OwnNatural: "director",
		OwnNames: peopleNames[14:30], OwnAttr: "age", OwnAttrNatural: "age", OwnAttrRange: [2]int{30, 75},
		OwnCat: "nationality", OwnCatNatural: "nationality", OwnCats: countryNames[:4],
		DK:  map[string][2]string{"epic": {"runtime", ">=180"}, "award-winning": {"awards", ">=1"}},
		Syn: map[string]string{"film": "movie", "director": "filmmaker", "runtime": "duration", "studio": "production house"},
	},
	{
		Domain:   "ship_port",
		CatTable: "port", CatNatural: "port",
		CatNames:   cityNames[:7],
		CatMeasure: "docks", CatMeasureNatural: "number of docks", CatMeasureRange: [2]int{2, 30},
		EntTable: "ship", EntNatural: "ship",
		EntNames: seq("Vessel", 34, 1), FKCol: "port_id",
		Measure: "tonnage", MeasureNatural: "tonnage", MeasureRange: [2]int{500, 90000},
		Place: "flag", PlaceNatural: "flag", Places: countryNames[:6],
		Level: "crew_size", LevelNatural: "crew size", LevelRange: [2]int{4, 40},
		OwnTable: "captain", OwnNatural: "captain",
		OwnNames: peopleNames[:16], OwnAttr: "experience", OwnAttrNatural: "years at sea", OwnAttrRange: [2]int{2, 45},
		OwnCat: "rank", OwnCatNatural: "rank", OwnCats: []string{"senior", "junior", "reserve"},
		DK:  map[string][2]string{"heavy": {"tonnage", ">=50000"}, "skeleton-crewed": {"crew_size", "<=8"}},
		Syn: map[string]string{"ship": "vessel", "captain": "skipper", "tonnage": "weight", "port": "harbor"},
	},
	{
		Domain:   "news_desk",
		CatTable: "section", CatNatural: "section",
		CatNames:   []string{"Politics", "Sports", "Culture", "Business", "Science", "Opinion"},
		CatMeasure: "page_count", CatMeasureNatural: "page count", CatMeasureRange: [2]int{2, 24},
		EntTable: "article", EntNatural: "article",
		EntNames: seq("Story", 40, 1), FKCol: "section_id",
		Measure: "words", MeasureNatural: "word count", MeasureRange: [2]int{200, 6000},
		Place: "bureau", PlaceNatural: "bureau", Places: cityNames[4:10],
		Level: "revision", LevelNatural: "revision", LevelRange: [2]int{1, 5},
		OwnTable: "reporter", OwnNatural: "reporter",
		OwnNames: peopleNames[7:25], OwnAttr: "awards", OwnAttrNatural: "number of awards", OwnAttrRange: [2]int{0, 12},
		OwnCat: "beat", OwnCatNatural: "beat", OwnCats: []string{"local", "national", "foreign"},
		DK:  map[string][2]string{"longform": {"words", ">=4000"}, "decorated": {"awards", ">=5"}},
		Syn: map[string]string{"article": "piece", "reporter": "journalist", "section": "desk", "word count": "length"},
	},
	{
		Domain:   "gym_club",
		CatTable: "program", CatNatural: "program",
		CatNames:   []string{"Yoga", "Spin", "Pilates", "Boxing", "Swim", "Crossfit"},
		CatMeasure: "capacity", CatMeasureNatural: "capacity", CatMeasureRange: [2]int{8, 40},
		EntTable: "session", EntNatural: "session",
		EntNames: seq("Session", 36, 1), FKCol: "program_id",
		Measure: "minutes", MeasureNatural: "duration", MeasureRange: [2]int{20, 120},
		Place: "room", PlaceNatural: "room", Places: []string{"Studio A", "Studio B", "Pool", "Main Hall"},
		Level: "intensity", LevelNatural: "intensity", LevelRange: [2]int{1, 5},
		OwnTable: "trainer", OwnNatural: "trainer",
		OwnNames: peopleNames[11:27], OwnAttr: "certifications", OwnAttrNatural: "number of certifications", OwnAttrRange: [2]int{1, 9},
		OwnCat: "shift", OwnCatNatural: "shift", OwnCats: []string{"morning", "afternoon", "evening"},
		DK:  map[string][2]string{"high-intensity": {"intensity", ">=4"}, "marathon": {"minutes", ">=90"}},
		Syn: map[string]string{"session": "class", "trainer": "coach", "duration": "length", "room": "studio"},
	},
	{
		Domain:   "wine_cellar",
		CatTable: "vineyard", CatNatural: "vineyard",
		CatNames:   []string{"Stonevine", "Golden Slope", "Larkspur", "Old Cellar", "Mistral", "Duskfield"},
		CatMeasure: "elevation", CatMeasureNatural: "elevation", CatMeasureRange: [2]int{50, 900},
		EntTable: "wine", EntNatural: "wine",
		EntNames: seq("Cuvee", 34, 1), FKCol: "vineyard_id",
		Measure: "score", MeasureNatural: "score", MeasureRange: [2]int{70, 100},
		Place: "region", PlaceNatural: "region", Places: countryNames[4:9],
		Level: "vintage_age", LevelNatural: "age", LevelRange: [2]int{1, 30},
		OwnTable: "critic", OwnNatural: "critic",
		OwnNames: peopleNames[4:20], OwnAttr: "reviews", OwnAttrNatural: "number of reviews", OwnAttrRange: [2]int{5, 400},
		OwnCat: "publication", OwnCatNatural: "publication", OwnCats: []string{"Wine Weekly", "Cellar Notes", "The Pour"},
		DK:  map[string][2]string{"outstanding": {"score", ">=95"}, "aged": {"vintage_age", ">=15"}},
		Syn: map[string]string{"wine": "bottle", "critic": "reviewer", "score": "rating", "region": "area"},
	},
}

// devVocabs are the five dev-split domains (plus the hand-written world_1
// and flight_2 databases added in buildSpider).
var devVocabs = []Vocab{
	{
		Domain:   "concert_hall",
		CatTable: "stadium", CatNatural: "stadium",
		CatNames:   []string{"Grand Dome", "Riverside Arena", "Echo Hall", "Summit Pavilion", "Ironworks", "Harbor Stage"},
		CatMeasure: "capacity", CatMeasureNatural: "capacity", CatMeasureRange: [2]int{800, 60000},
		EntTable: "concert", EntNatural: "concert",
		EntNames: seq("Concert", 36, 1), FKCol: "stadium_id",
		Measure: "attendance", MeasureNatural: "attendance", MeasureRange: [2]int{300, 58000},
		Place: "month", PlaceNatural: "month", Places: []string{"January", "April", "July", "October"},
		Level: "acts", LevelNatural: "number of acts", LevelRange: [2]int{1, 6},
		OwnTable: "singer", OwnNatural: "singer",
		OwnNames: peopleNames[:18], OwnAttr: "age", OwnAttrNatural: "age", OwnAttrRange: [2]int{18, 65},
		OwnCat: "country", OwnCatNatural: "country", OwnCats: countryNames[:5],
		DK:  map[string][2]string{"sold-out": {"attendance", ">=50000"}, "veteran": {"age", ">=50"}},
		Syn: map[string]string{"concert": "show", "singer": "vocalist", "attendance": "turnout", "stadium": "venue"},
	},
	{
		Domain:   "pet_clinic",
		CatTable: "breed", CatNatural: "breed",
		CatNames:   []string{"Labrador", "Siamese", "Beagle", "Persian", "Terrier", "Sphynx", "Collie"},
		CatMeasure: "avg_lifespan", CatMeasureNatural: "average lifespan", CatMeasureRange: [2]int{8, 20},
		EntTable: "pet", EntNatural: "pet",
		EntNames: []string{"Rex", "Whiskers", "Buddy", "Luna", "Max", "Bella", "Charlie", "Daisy", "Rocky", "Molly", "Duke", "Sadie", "Teddy", "Ruby", "Oscar", "Rosie", "Milo", "Zoe", "Jack", "Lily", "Toby", "Coco", "Finn", "Nala", "Leo", "Penny", "Gus", "Hazel", "Ollie", "Pearl"},
		FKCol:    "breed_id",
		Measure:  "weight", MeasureNatural: "weight", MeasureRange: [2]int{2, 60},
		Place: "color", PlaceNatural: "color", Places: []string{"black", "white", "brown", "golden", "gray"},
		Level: "age", LevelNatural: "age", LevelRange: [2]int{1, 15},
		OwnTable: "owner", OwnNatural: "owner",
		OwnNames: peopleNames[12:30], OwnAttr: "visits", OwnAttrNatural: "number of visits", OwnAttrRange: [2]int{1, 20},
		OwnCat: "city", OwnCatNatural: "city", OwnCats: cityNames[:5],
		DK:  map[string][2]string{"heavy": {"weight", ">=40"}, "senior": {"age", ">=10"}},
		Syn: map[string]string{"pet": "animal", "owner": "keeper", "weight": "mass", "breed": "kind"},
	},
	{
		Domain:   "tech_startup",
		CatTable: "investor", CatNatural: "investor",
		CatNames:   []string{"Alpha Fund", "Beacon Capital", "Crestview", "Delta Ventures", "Evergreen", "Foundry One"},
		CatMeasure: "fund_size", CatMeasureNatural: "fund size", CatMeasureRange: [2]int{50, 2000},
		EntTable: "startup", EntNatural: "startup",
		EntNames: seq("Startup", 34, 1), FKCol: "investor_id",
		Measure: "valuation", MeasureNatural: "valuation", MeasureRange: [2]int{1, 950},
		Place: "sector", PlaceNatural: "sector", Places: []string{"fintech", "health", "logistics", "media"},
		Level: "employees", LevelNatural: "number of employees", LevelRange: [2]int{2, 250},
		OwnTable: "founder", OwnNatural: "founder",
		OwnNames: peopleNames[6:24], OwnAttr: "age", OwnAttrNatural: "age", OwnAttrRange: [2]int{22, 58},
		OwnCat: "background", OwnCatNatural: "background", OwnCats: []string{"engineering", "design", "sales"},
		DK:  map[string][2]string{"unicorn": {"valuation", ">=900"}, "lean": {"employees", "<=10"}},
		Syn: map[string]string{"startup": "company", "founder": "entrepreneur", "valuation": "worth", "sector": "industry"},
	},
	{
		Domain:   "museum_visit",
		CatTable: "museum", CatNatural: "museum",
		CatNames:   []string{"City Gallery", "Natural History Hall", "Maritime Museum", "Modern Arts House", "Heritage Center", "Science Dome"},
		CatMeasure: "num_staff", CatMeasureNatural: "number of staff", CatMeasureRange: [2]int{5, 120},
		EntTable: "exhibit", EntNatural: "exhibit",
		EntNames: seq("Exhibit", 34, 1), FKCol: "museum_id",
		Measure: "visitors", MeasureNatural: "number of visitors", MeasureRange: [2]int{100, 40000},
		Place: "theme", PlaceNatural: "theme", Places: []string{"ancient", "modern", "interactive", "photography"},
		Level: "rooms", LevelNatural: "number of rooms", LevelRange: [2]int{1, 8},
		OwnTable: "curator", OwnNatural: "curator",
		OwnNames: peopleNames[1:17], OwnAttr: "tenure", OwnAttrNatural: "tenure", OwnAttrRange: [2]int{1, 30},
		OwnCat: "specialty", OwnCatNatural: "specialty", OwnCats: []string{"painting", "sculpture", "archaeology"},
		DK:  map[string][2]string{"blockbuster": {"visitors", ">=30000"}, "compact": {"rooms", "<=2"}},
		Syn: map[string]string{"exhibit": "exhibition", "curator": "keeper", "visitors": "attendance", "museum": "gallery"},
	},
	{
		Domain:   "cargo_rail",
		CatTable: "line", CatNatural: "rail line",
		CatNames:   []string{"Northern Line", "Coastal Line", "Mountain Line", "Central Line", "Valley Line"},
		CatMeasure: "track_km", CatMeasureNatural: "track length", CatMeasureRange: [2]int{80, 2200},
		EntTable: "train", EntNatural: "train",
		EntNames: seq("Train", 34, 400), FKCol: "line_id",
		Measure: "cargo_tons", MeasureNatural: "cargo weight", MeasureRange: [2]int{50, 4000},
		Place: "depot", PlaceNatural: "depot", Places: cityNames[10:16],
		Level: "cars", LevelNatural: "number of cars", LevelRange: [2]int{4, 60},
		OwnTable: "operator", OwnNatural: "operator",
		OwnNames: peopleNames[13:29], OwnAttr: "shifts", OwnAttrNatural: "number of shifts", OwnAttrRange: [2]int{10, 300},
		OwnCat: "grade", OwnCatNatural: "grade", OwnCats: []string{"chief", "standard", "trainee"},
		DK:  map[string][2]string{"heavy-haul": {"cargo_tons", ">=3000"}, "short": {"cars", "<=10"}},
		Syn: map[string]string{"train": "service", "operator": "engineer", "depot": "yard", "cargo weight": "load"},
	},
}

// testVocabs are the five held-out test-split domains.
var testVocabs = []Vocab{
	{
		Domain:   "bank_branch",
		CatTable: "branch", CatNatural: "branch",
		CatNames:   cityNames[5:11],
		CatMeasure: "assets", CatMeasureNatural: "assets", CatMeasureRange: [2]int{100, 5000},
		EntTable: "account", EntNatural: "account",
		EntNames: seq("Account", 36, 7000), FKCol: "branch_id",
		Measure: "balance", MeasureNatural: "balance", MeasureRange: [2]int{10, 90000},
		Place: "type", PlaceNatural: "account type", Places: []string{"checking", "savings", "business"},
		Level: "years_open", LevelNatural: "years open", LevelRange: [2]int{1, 30},
		OwnTable: "client", OwnNatural: "client",
		OwnNames: peopleNames[:20], OwnAttr: "credit_score", OwnAttrNatural: "credit score", OwnAttrRange: [2]int{450, 850},
		OwnCat: "tier", OwnCatNatural: "tier", OwnCats: []string{"gold", "silver", "basic"},
		DK:  map[string][2]string{"wealthy": {"balance", ">=50000"}, "creditworthy": {"credit_score", ">=700"}},
		Syn: map[string]string{"account": "deposit account", "client": "customer", "balance": "funds", "branch": "office"},
	},
	{
		Domain:   "orchard_co",
		CatTable: "orchard", CatNatural: "orchard",
		CatNames:   []string{"Apple Hill", "Pearwood", "Cherry Vale", "Plum Hollow", "Quince End"},
		CatMeasure: "trees", CatMeasureNatural: "number of trees", CatMeasureRange: [2]int{100, 5000},
		EntTable: "harvest", EntNatural: "harvest",
		EntNames: seq("Batch", 32, 1), FKCol: "orchard_id",
		Measure: "kilograms", MeasureNatural: "weight", MeasureRange: [2]int{50, 8000},
		Place: "fruit", PlaceNatural: "fruit", Places: []string{"apple", "pear", "cherry", "plum"},
		Level: "grade", LevelNatural: "grade", LevelRange: [2]int{1, 4},
		OwnTable: "picker", OwnNatural: "picker",
		OwnNames: peopleNames[9:27], OwnAttr: "speed", OwnAttrNatural: "picking speed", OwnAttrRange: [2]int{10, 90},
		OwnCat: "contract", OwnCatNatural: "contract", OwnCats: []string{"seasonal", "permanent"},
		DK:  map[string][2]string{"bumper": {"kilograms", ">=6000"}, "premium": {"grade", "=1"}},
		Syn: map[string]string{"harvest": "crop", "picker": "worker", "weight": "mass", "orchard": "grove"},
	},
	{
		Domain:   "ski_resort",
		CatTable: "resort", CatNatural: "resort",
		CatNames:   []string{"Glacier Peak", "Powder Ridge", "Snowmere", "Alpine Crest", "Frostholm"},
		CatMeasure: "altitude", CatMeasureNatural: "altitude", CatMeasureRange: [2]int{900, 3400},
		EntTable: "slope", EntNatural: "slope",
		EntNames: seq("Run", 32, 1), FKCol: "resort_id",
		Measure: "length_m", MeasureNatural: "length", MeasureRange: [2]int{300, 6000},
		Place: "difficulty", PlaceNatural: "difficulty", Places: []string{"green", "blue", "red", "black"},
		Level: "lifts", LevelNatural: "number of lifts", LevelRange: [2]int{1, 5},
		OwnTable: "instructor", OwnNatural: "instructor",
		OwnNames: peopleNames[3:21], OwnAttr: "seasons", OwnAttrNatural: "number of seasons", OwnAttrRange: [2]int{1, 25},
		OwnCat: "language", OwnCatNatural: "language", OwnCats: []string{"English", "French", "German"},
		DK:  map[string][2]string{"expert-only": {"difficulty", "=black"}, "long": {"length_m", ">=4000"}},
		Syn: map[string]string{"slope": "run", "instructor": "teacher", "length": "distance", "resort": "station"},
	},
	{
		Domain:   "courier_hub",
		CatTable: "hub", CatNatural: "hub",
		CatNames:   cityNames[2:8],
		CatMeasure: "throughput", CatMeasureNatural: "daily throughput", CatMeasureRange: [2]int{500, 20000},
		EntTable: "parcel", EntNatural: "parcel",
		EntNames: seq("Parcel", 36, 30000), FKCol: "hub_id",
		Measure: "weight_g", MeasureNatural: "weight", MeasureRange: [2]int{50, 30000},
		Place: "service", PlaceNatural: "service", Places: []string{"express", "standard", "economy"},
		Level: "priority", LevelNatural: "priority", LevelRange: [2]int{1, 3},
		OwnTable: "courier", OwnNatural: "courier",
		OwnNames: peopleNames[5:23], OwnAttr: "deliveries", OwnAttrNatural: "number of deliveries", OwnAttrRange: [2]int{50, 8000},
		OwnCat: "vehicle", OwnCatNatural: "vehicle", OwnCats: []string{"bike", "van", "truck"},
		DK:  map[string][2]string{"bulky": {"weight_g", ">=20000"}, "urgent": {"priority", "=1"}},
		Syn: map[string]string{"parcel": "package", "courier": "carrier", "weight": "mass", "hub": "depot"},
	},
	{
		Domain:   "observatory",
		CatTable: "telescope", CatNatural: "telescope",
		CatNames:   []string{"Borealis", "Zenith-2", "Meridian Array", "Corona Scope", "Umbra"},
		CatMeasure: "aperture_cm", CatMeasureNatural: "aperture", CatMeasureRange: [2]int{20, 1000},
		EntTable: "observation", EntNatural: "observation",
		EntNames: seq("Obs", 34, 1), FKCol: "telescope_id",
		Measure: "exposure", MeasureNatural: "exposure time", MeasureRange: [2]int{1, 600},
		Place: "target_type", PlaceNatural: "target type", Places: []string{"galaxy", "nebula", "star cluster", "planet"},
		Level: "clarity", LevelNatural: "clarity", LevelRange: [2]int{1, 5},
		OwnTable: "astronomer", OwnNatural: "astronomer",
		OwnNames: peopleNames[8:26], OwnAttr: "papers", OwnAttrNatural: "number of papers", OwnAttrRange: [2]int{0, 120},
		OwnCat: "institute", OwnCatNatural: "institute", OwnCats: []string{"Lakeside Institute", "Polar Academy", "Meridian Lab"},
		DK:  map[string][2]string{"deep-sky": {"exposure", ">=300"}, "prolific": {"papers", ">=50"}},
		Syn: map[string]string{"observation": "session", "astronomer": "scientist", "exposure time": "integration time", "telescope": "instrument"},
	},
}
