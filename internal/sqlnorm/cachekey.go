package sqlnorm

import (
	"bytes"
	"strconv"
	"strings"
	"sync"

	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqlparse"
)

// This file is the one-pass CacheKey renderer. The seed implementation
// (preserved in internal/sqloracle) computed the key as
// Clone → mutate-into-canonical-form → SQL() → append projection labels,
// which costs a deep copy plus a full string-concatenating render —
// dozens to hundreds of allocations per candidate. Here the same bytes
// are produced by a direct canonical render of the ORIGINAL statement
// into a pooled buffer: identifier folding, literal-first comparison
// orientation and conjunct sorting are applied on the fly as rendering
// decisions, nothing is cloned, and the finished key is looked up in a
// bounded intern table so the warm path returns a shared string without
// allocating at all. The differential suites in internal/frontdiff hold
// this renderer byte-identical to the oracle.

// renderMode selects how much canonicalization the renderer applies.
type renderMode uint8

const (
	// modeVerbatim reproduces sqlast rendering exactly: original
	// identifier case, original operand order, original conjunct order.
	// Used for the projection-label appendix.
	modeVerbatim renderMode = iota
	// modeCanonical folds identifier case, orients literal-first
	// comparisons in predicate positions, and sorts WHERE conjuncts —
	// the seed cacheNormalizeCore, expressed as rendering rules.
	modeCanonical
)

// exprCtx travels down the expression recursion. oriented marks the
// WHERE/HAVING/ON trees of a canonical core, the positions where the
// seed oriented comparisons; it never crosses a subquery boundary
// (nested statements restart per clause, exactly like the seed's
// per-core normalization).
type exprCtx struct {
	mode     renderMode
	oriented bool
}

// segSpan is one rendered WHERE conjunct inside a depth buffer.
type segSpan struct {
	start, end int
	parens     bool // emit wrapped in parens (top-level OR conjunct)
}

// keyRenderer carries the pooled scratch state for one CacheKey call.
type keyRenderer struct {
	buf   []byte        // the key being built
	conj  []sqlast.Expr // conjunct flattening stack (mark/truncate)
	meta  []segSpan     // conjunct spans (mark/truncate)
	segs  [][]byte      // per-WHERE-depth segment buffers
	depth int
}

var keyPool = sync.Pool{New: func() any { return new(keyRenderer) }}

// CacheKey returns a value-preserving canonical rendering of stmt, meant
// for keying compiled-plan caches: identifier case folds, the
// deterministic re-rendering normalizes whitespace, and commutative
// WHERE conjuncts sort — but, unlike Canonical, literal values,
// projection order, aliases, and LIMIT/OFFSET are all kept, because
// plans compiled from statements that differ in any of those are not
// interchangeable. A compiled plan also embeds its output column labels
// with the original identifier case, so the key carries the unfolded
// projection labels: two statements share a CacheKey only when a shared
// plan is observably identical, labels included. Textually identical
// statements (the common case: the same candidate SQL resurfacing in a
// different beam) always share a CacheKey.
func CacheKey(stmt *sqlast.SelectStmt) string {
	r := keyPool.Get().(*keyRenderer)
	buf := r.appendStmt(r.buf[:0], stmt, modeCanonical)
	for _, core := range stmt.Cores {
		for _, it := range core.Items {
			buf = append(buf, '\x00')
			switch {
			case it.Alias != "":
				buf = append(buf, it.Alias...)
			case it.Star:
				// Star expansion labels come from the (already lowered)
				// stored column names, so stars are case-independent.
			default:
				buf = r.appendExpr(buf, it.Expr, exprCtx{mode: modeVerbatim})
			}
		}
	}
	key := internKey(buf)
	r.buf = buf
	keyPool.Put(r)
	return key
}

// CacheKeyOf computes the CacheKey of raw SQL text in a single pass
// over the bytes: a pooled arena parse feeds the canonical renderer
// directly, and the transient AST never leaves this function — the
// archetypal bounded-lifetime use of sqlparse's arena-reuse mode.
func CacheKeyOf(sql string) (string, error) {
	p := sqlparse.AcquireParser()
	stmt, err := p.Parse(sql)
	if err != nil {
		sqlparse.ReleaseParser(p)
		return "", err
	}
	key := CacheKey(stmt)
	sqlparse.ReleaseParser(p)
	return key, nil
}

// Bounded intern table: CacheKey's callers immediately use the key in a
// map, so returning the one shared string per distinct key makes the
// warm path allocation-free (the map lookup below compiles without a
// []byte→string copy). The bound keeps an adversarial query stream from
// growing the table without limit; beyond it, keys are returned
// un-interned.
const maxInternedKeys = 4096

var (
	internMu sync.RWMutex
	interned = make(map[string]string, 256)
)

func internKey(b []byte) string {
	internMu.RLock()
	s, ok := interned[string(b)]
	internMu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	internMu.Lock()
	if len(interned) < maxInternedKeys {
		interned[s] = s
	}
	internMu.Unlock()
	return s
}

func (r *keyRenderer) appendStmt(dst []byte, stmt *sqlast.SelectStmt, mode renderMode) []byte {
	for i, core := range stmt.Cores {
		if i > 0 {
			dst = append(dst, ' ')
			dst = append(dst, stmt.Ops[i-1]...)
			dst = append(dst, ' ')
		}
		dst = r.appendCore(dst, core, mode)
	}
	return dst
}

func (r *keyRenderer) appendCore(dst []byte, core *sqlast.SelectCore, mode renderMode) []byte {
	plain := exprCtx{mode: mode}
	pred := exprCtx{mode: mode, oriented: mode == modeCanonical}
	dst = append(dst, "SELECT "...)
	if core.Distinct {
		dst = append(dst, "DISTINCT "...)
	}
	for i, it := range core.Items {
		if i > 0 {
			dst = append(dst, ", "...)
		}
		switch {
		case it.Star && it.TableStar != "":
			dst = r.appendIdent(dst, it.TableStar, mode)
			dst = append(dst, ".*"...)
		case it.Star:
			dst = append(dst, '*')
		default:
			dst = r.appendExpr(dst, it.Expr, plain)
		}
		if it.Alias != "" {
			dst = append(dst, " AS "...)
			dst = r.appendIdent(dst, it.Alias, mode)
		}
	}
	if core.From != nil {
		dst = append(dst, " FROM "...)
		dst = r.appendTableRef(dst, core.From.Base, mode)
		for _, j := range core.From.Joins {
			dst = append(dst, ' ')
			dst = append(dst, j.Type...)
			dst = append(dst, ' ')
			dst = r.appendTableRef(dst, j.Table, mode)
			if j.On != nil {
				dst = append(dst, " ON "...)
				dst = r.appendExpr(dst, j.On, pred)
			}
		}
	}
	if core.Where != nil {
		dst = append(dst, " WHERE "...)
		if mode == modeCanonical {
			dst = r.appendSortedWhere(dst, core.Where)
		} else {
			dst = r.appendExpr(dst, core.Where, plain)
		}
	}
	if len(core.GroupBy) > 0 {
		dst = append(dst, " GROUP BY "...)
		for i, g := range core.GroupBy {
			if i > 0 {
				dst = append(dst, ", "...)
			}
			dst = r.appendExpr(dst, g, plain)
		}
	}
	if core.Having != nil {
		dst = append(dst, " HAVING "...)
		dst = r.appendExpr(dst, core.Having, pred)
	}
	if len(core.OrderBy) > 0 {
		dst = append(dst, " ORDER BY "...)
		for i, o := range core.OrderBy {
			if i > 0 {
				dst = append(dst, ", "...)
			}
			dst = r.appendExpr(dst, o.Expr, plain)
			if o.Desc {
				dst = append(dst, " DESC"...)
			}
		}
	}
	if core.Limit != nil {
		dst = append(dst, " LIMIT "...)
		dst = strconv.AppendInt(dst, *core.Limit, 10)
	}
	if core.Offset != nil {
		dst = append(dst, " OFFSET "...)
		dst = strconv.AppendInt(dst, *core.Offset, 10)
	}
	return dst
}

// appendSortedWhere renders the top-level AND conjuncts of a canonical
// WHERE in byte-sorted order — the rendering-time equivalent of the
// seed's sort-then-rebuild (Conjuncts → SliceStable by ExprSQL →
// FromAnd). Each conjunct is rendered standalone into a per-depth
// scratch buffer (nested subqueries sort their own WHERE one depth
// down), the spans insertion-sorted by content, then emitted joined by
// " AND " with parens around OR conjuncts — exactly where rendering the
// rebuilt left-leaning AND tree would have put them.
func (r *keyRenderer) appendSortedWhere(dst []byte, where sqlast.Expr) []byte {
	ctx := exprCtx{mode: modeCanonical, oriented: true}
	cMark := len(r.conj)
	r.flattenAnd(where)
	conj := r.conj[cMark:]
	if len(conj) == 1 {
		// Single conjunct: rendered bare, even when it is an OR.
		dst = r.appendExpr(dst, conj[0], ctx)
		r.conj = r.conj[:cMark]
		return dst
	}
	d := r.depth
	r.depth++
	if d == len(r.segs) {
		r.segs = append(r.segs, nil)
	}
	seg := r.segs[d][:0]
	mMark := len(r.meta)
	for _, c := range conj {
		start := len(seg)
		seg = r.appendExpr(seg, c, ctx)
		b, isBin := c.(*sqlast.Binary)
		r.meta = append(r.meta, segSpan{start: start, end: len(seg), parens: isBin && b.Op == "OR"})
	}
	r.segs[d] = seg
	spans := r.meta[mMark:]
	// Insertion sort with strict less: stable, allocation-free, and the
	// conjunct count is small.
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && bytes.Compare(seg[spans[j].start:spans[j].end], seg[spans[j-1].start:spans[j-1].end]) < 0; j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
	for i, sp := range spans {
		if i > 0 {
			dst = append(dst, " AND "...)
		}
		if sp.parens {
			dst = append(dst, '(')
		}
		dst = append(dst, seg[sp.start:sp.end]...)
		if sp.parens {
			dst = append(dst, ')')
		}
	}
	r.meta = r.meta[:mMark]
	r.conj = r.conj[:cMark]
	r.depth--
	return dst
}

// flattenAnd pushes the top-level AND operands of e onto r.conj in
// left-to-right order, matching sqlast.Conjuncts.
func (r *keyRenderer) flattenAnd(e sqlast.Expr) {
	if b, ok := e.(*sqlast.Binary); ok && b.Op == "AND" {
		r.flattenAnd(b.L)
		r.flattenAnd(b.R)
		return
	}
	r.conj = append(r.conj, e)
}

func (r *keyRenderer) appendTableRef(dst []byte, t sqlast.TableRef, mode renderMode) []byte {
	if t.Sub != nil {
		dst = append(dst, '(')
		dst = r.appendStmt(dst, t.Sub, mode)
		dst = append(dst, ')')
	} else {
		dst = r.appendIdent(dst, t.Name, mode)
	}
	if t.Alias != "" {
		dst = append(dst, " AS "...)
		dst = r.appendIdent(dst, t.Alias, mode)
	}
	return dst
}

// appendIdent appends an identifier, lower-casing it in canonical mode.
// The fold matches strings.ToLower: a byte loop for ASCII, with a
// fallback for the rare non-ASCII identifier.
func (r *keyRenderer) appendIdent(dst []byte, s string, mode renderMode) []byte {
	if mode != modeCanonical {
		return append(dst, s...)
	}
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return append(dst, strings.ToLower(s)...)
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		dst = append(dst, c)
	}
	return dst
}

// prec mirrors sqlast's operator precedence for minimal
// parenthesization; higher binds tighter.
func prec(op string) int {
	switch op {
	case "OR":
		return 1
	case "AND":
		return 2
	case "=", "!=", "<>", "<", "<=", ">", ">=":
		return 3
	case "+", "-":
		return 4
	case "*", "/", "%":
		return 5
	default:
		return 6
	}
}

func (r *keyRenderer) appendMaybeParen(dst []byte, e sqlast.Expr, parentPrec int, ctx exprCtx) []byte {
	if b, ok := e.(*sqlast.Binary); ok && prec(b.Op) < parentPrec {
		dst = append(dst, '(')
		dst = r.appendExpr(dst, e, ctx)
		return append(dst, ')')
	}
	return r.appendExpr(dst, e, ctx)
}

// appendMaybeParenRight parenthesizes right operands at equal precedence
// too, so non-associative trees such as a - (b - c) survive.
func (r *keyRenderer) appendMaybeParenRight(dst []byte, e sqlast.Expr, parentPrec int, ctx exprCtx) []byte {
	if b, ok := e.(*sqlast.Binary); ok && prec(b.Op) <= parentPrec && parentPrec >= 3 {
		dst = append(dst, '(')
		dst = r.appendExpr(dst, e, ctx)
		return append(dst, ')')
	}
	return r.appendMaybeParen(dst, e, parentPrec, ctx)
}

func (r *keyRenderer) appendExpr(dst []byte, e sqlast.Expr, ctx exprCtx) []byte {
	if e == nil {
		return dst
	}
	switch x := e.(type) {
	case *sqlast.ColumnRef:
		if x.Table != "" {
			dst = r.appendIdent(dst, x.Table, ctx.mode)
			dst = append(dst, '.')
		}
		return r.appendIdent(dst, x.Column, ctx.mode)
	case *sqlast.Literal:
		return x.Value.AppendSQLLiteral(dst)
	case *sqlast.Unary:
		if x.Op == "NOT" {
			dst = append(dst, "NOT "...)
		} else {
			dst = append(dst, x.Op...)
		}
		return r.appendMaybeParen(dst, x.X, 6, ctx)
	case *sqlast.Binary:
		op, l, rr := x.Op, x.L, x.R
		if ctx.oriented {
			// Literal-first comparisons render operand-swapped — the
			// rendering-time form of the seed's orientComparisons.
			if flipped, cmp := flippedCmp[op]; cmp {
				if _, lLit := l.(*sqlast.Literal); lLit {
					if _, rLit := rr.(*sqlast.Literal); !rLit {
						l, rr, op = rr, l, flipped
					}
				}
			}
		}
		p := prec(op)
		dst = r.appendMaybeParen(dst, l, p, ctx)
		dst = append(dst, ' ')
		dst = append(dst, op...)
		dst = append(dst, ' ')
		return r.appendMaybeParenRight(dst, rr, p, ctx)
	case *sqlast.FuncCall:
		dst = append(dst, x.Name...)
		dst = append(dst, '(')
		if x.Distinct {
			dst = append(dst, "DISTINCT "...)
		}
		if x.Star {
			dst = append(dst, '*')
		} else {
			for i, a := range x.Args {
				if i > 0 {
					dst = append(dst, ", "...)
				}
				dst = r.appendExpr(dst, a, ctx)
			}
		}
		return append(dst, ')')
	case *sqlast.InExpr:
		dst = r.appendMaybeParen(dst, x.X, 3, ctx)
		if x.Not {
			dst = append(dst, " NOT IN ("...)
		} else {
			dst = append(dst, " IN ("...)
		}
		if x.Sub != nil {
			dst = r.appendStmt(dst, x.Sub, ctx.mode)
		} else {
			for i, a := range x.List {
				if i > 0 {
					dst = append(dst, ", "...)
				}
				dst = r.appendExpr(dst, a, ctx)
			}
		}
		return append(dst, ')')
	case *sqlast.LikeExpr:
		dst = r.appendMaybeParen(dst, x.X, 3, ctx)
		if x.Not {
			dst = append(dst, " NOT LIKE "...)
		} else {
			dst = append(dst, " LIKE "...)
		}
		return r.appendExpr(dst, x.Pattern, ctx)
	case *sqlast.BetweenExpr:
		dst = r.appendMaybeParen(dst, x.X, 3, ctx)
		if x.Not {
			dst = append(dst, " NOT BETWEEN "...)
		} else {
			dst = append(dst, " BETWEEN "...)
		}
		dst = r.appendExpr(dst, x.Lo, ctx)
		dst = append(dst, " AND "...)
		return r.appendExpr(dst, x.Hi, ctx)
	case *sqlast.IsNullExpr:
		dst = r.appendMaybeParen(dst, x.X, 3, ctx)
		if x.Not {
			return append(dst, " IS NOT NULL"...)
		}
		return append(dst, " IS NULL"...)
	case *sqlast.ExistsExpr:
		if x.Not {
			dst = append(dst, "NOT EXISTS ("...)
		} else {
			dst = append(dst, "EXISTS ("...)
		}
		dst = r.appendStmt(dst, x.Sub, ctx.mode)
		return append(dst, ')')
	case *sqlast.SubqueryExpr:
		dst = append(dst, '(')
		dst = r.appendStmt(dst, x.Sub, ctx.mode)
		return append(dst, ')')
	default:
		return append(dst, '?')
	}
}
