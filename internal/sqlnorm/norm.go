// Package sqlnorm canonicalizes SQL statements for the Spider exact-match
// (EM) metric and classifies queries into the Spider difficulty buckets
// (easy / medium / hard / extra) used by the paper's Table II.
//
// EM canonicalization follows the Spider evaluation convention: identifier
// case is ignored, table aliases are renamed positionally (T1, T2, ...),
// literal values are masked ("ignoring specific values in the SQL
// statements"), and commutative conjunct/item order is sorted.
package sqlnorm

import (
	"sort"
	"strings"

	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqltypes"
)

// Normalize returns a canonicalized deep copy of stmt.
func Normalize(stmt *sqlast.SelectStmt) *sqlast.SelectStmt {
	out := stmt.Clone()
	for _, core := range out.Cores {
		normalizeCore(core)
	}
	return out
}

// Canonical renders the normalized statement in lower case; two statements
// are EM-equal iff their Canonical strings match.
func Canonical(stmt *sqlast.SelectStmt) string {
	return strings.ToLower(Normalize(stmt).SQL())
}

// EMEqual implements the exact-match metric.
func EMEqual(a, b *sqlast.SelectStmt) bool {
	if a == nil || b == nil {
		return false
	}
	return Canonical(a) == Canonical(b)
}

// CacheKey returns a value-preserving canonical rendering of stmt, meant
// for keying compiled-plan caches: identifier case folds, the deterministic
// re-rendering normalizes whitespace, and commutative WHERE conjuncts sort
// — but, unlike Canonical, literal values, projection order, aliases, and
// LIMIT/OFFSET are all kept, because plans compiled from statements that
// differ in any of those are not interchangeable. A compiled plan also
// embeds its output column labels with the original identifier case, so
// the key carries the unfolded projection labels: two statements share a
// CacheKey only when a shared plan is observably identical, labels
// included. Textually identical statements (the common case: the same
// candidate SQL resurfacing in a different beam) always share a CacheKey.
func CacheKey(stmt *sqlast.SelectStmt) string {
	out := stmt.Clone()
	for _, core := range out.Cores {
		cacheNormalizeCore(core)
	}
	var b strings.Builder
	b.WriteString(out.SQL())
	for _, core := range stmt.Cores {
		for _, it := range core.Items {
			b.WriteByte('\x00')
			switch {
			case it.Alias != "":
				b.WriteString(it.Alias)
			case it.Star:
				// Star expansion labels come from the (already lowered)
				// stored column names, so stars are case-independent.
			default:
				b.WriteString(sqlast.ExprSQL(it.Expr))
			}
		}
	}
	return b.String()
}

func cacheNormalizeCore(core *sqlast.SelectCore) {
	foldIdentifierCase(core)
	orientComparisons(core)
	// Normalize nested statements before sorting the outer conjuncts: the
	// sort compares rendered SQL, so subqueries must already be in their
	// canonical spelling or case-variant subqueries would order conjuncts
	// differently and miss the shared key.
	for _, sub := range core.Subqueries() {
		for _, c := range sub.Cores {
			cacheNormalizeCore(c)
		}
	}
	conj := sqlast.Conjuncts(core.Where)
	sort.SliceStable(conj, func(i, j int) bool {
		return sqlast.ExprSQL(conj[i]) < sqlast.ExprSQL(conj[j])
	})
	core.Where = sqlast.FromAnd(conj)
}

// flippedCmp maps each comparison operator to its operand-swapped spelling.
var flippedCmp = map[string]string{
	"=": "=", "!=": "!=", "<>": "<>",
	"<": ">", "<=": ">=", ">": "<", ">=": "<=",
}

// orientComparisons rewrites literal-first comparisons in predicate
// positions (WHERE, HAVING, ON) into the column-first spelling — "5 > a"
// becomes "a < 5" — so range and equality predicates hit the same cache
// key regardless of operand order. The executor lowers both spellings into
// the same probes and evaluates both to the same tri-state verdict, so the
// shared plan is observably identical. Projection items are left alone:
// their rendered SQL doubles as the output column label, which is
// observable.
func orientComparisons(core *sqlast.SelectCore) {
	orient := func(e sqlast.Expr) {
		sqlast.WalkExpr(e, func(e sqlast.Expr) bool {
			b, ok := e.(*sqlast.Binary)
			if !ok {
				return true
			}
			flipped, cmp := flippedCmp[b.Op]
			if !cmp {
				return true
			}
			if _, lLit := b.L.(*sqlast.Literal); !lLit {
				return true
			}
			if _, rLit := b.R.(*sqlast.Literal); rLit {
				return true // constant comparison: nothing to orient around
			}
			b.L, b.R, b.Op = b.R, b.L, flipped
			return true
		})
	}
	orient(core.Where)
	orient(core.Having)
	if core.From != nil {
		for i := range core.From.Joins {
			orient(core.From.Joins[i].On)
		}
	}
}

// foldIdentifierCase lower-cases table, alias, and column identifiers in
// place without renaming, reordering, or masking anything. Literal text
// values keep their case: 'Boston' and 'boston' are different queries.
func foldIdentifierCase(core *sqlast.SelectCore) {
	lower := func(e sqlast.Expr) {
		sqlast.WalkExpr(e, func(e sqlast.Expr) bool {
			if cr, ok := e.(*sqlast.ColumnRef); ok {
				cr.Table = strings.ToLower(cr.Table)
				cr.Column = strings.ToLower(cr.Column)
			}
			return true
		})
	}
	if core.From != nil {
		core.From.Base.Name = strings.ToLower(core.From.Base.Name)
		core.From.Base.Alias = strings.ToLower(core.From.Base.Alias)
		for i := range core.From.Joins {
			j := &core.From.Joins[i]
			j.Table.Name = strings.ToLower(j.Table.Name)
			j.Table.Alias = strings.ToLower(j.Table.Alias)
			lower(j.On)
		}
	}
	for i := range core.Items {
		lower(core.Items[i].Expr)
		core.Items[i].Alias = strings.ToLower(core.Items[i].Alias)
		core.Items[i].TableStar = strings.ToLower(core.Items[i].TableStar)
	}
	lower(core.Where)
	lower(core.Having)
	for _, g := range core.GroupBy {
		lower(g)
	}
	for i := range core.OrderBy {
		lower(core.OrderBy[i].Expr)
	}
}

func normalizeCore(core *sqlast.SelectCore) {
	renameAliases(core)
	maskLiterals(core)
	// Sort commutative lists for order-insensitive comparison.
	sort.SliceStable(core.Items, func(i, j int) bool {
		return core.Items[i].SQL() < core.Items[j].SQL()
	})
	conj := sqlast.Conjuncts(core.Where)
	sort.SliceStable(conj, func(i, j int) bool {
		return sqlast.ExprSQL(conj[i]) < sqlast.ExprSQL(conj[j])
	})
	core.Where = sqlast.FromAnd(conj)
	// Normalize nested statements too.
	for _, sub := range core.Subqueries() {
		for _, c := range sub.Cores {
			normalizeCore(c)
		}
	}
}

// renameAliases rewrites table aliases to positional T1..Tn and lower-cases
// identifiers. Unaliased tables referenced by name keep their (lowered)
// name as qualifier.
func renameAliases(core *sqlast.SelectCore) {
	if core.From == nil {
		return
	}
	mapping := map[string]string{}
	refs := core.Tables()
	for i := range refs {
		old := strings.ToLower(refs[i].Effective())
		canon := "t" + itoa(i+1)
		mapping[old] = canon
	}
	core.From.Base.Alias = mapping[strings.ToLower(core.From.Base.Effective())]
	core.From.Base.Name = strings.ToLower(core.From.Base.Name)
	for i := range core.From.Joins {
		j := &core.From.Joins[i]
		j.Table.Alias = mapping[strings.ToLower(j.Table.Effective())]
		j.Table.Name = strings.ToLower(j.Table.Name)
	}
	rewrite := func(e sqlast.Expr) {
		sqlast.WalkExpr(e, func(e sqlast.Expr) bool {
			if cr, ok := e.(*sqlast.ColumnRef); ok {
				if cr.Table != "" {
					if canon, ok := mapping[strings.ToLower(cr.Table)]; ok {
						cr.Table = canon
					} else {
						cr.Table = strings.ToLower(cr.Table)
					}
				}
				cr.Column = strings.ToLower(cr.Column)
			}
			return true
		})
	}
	for i := range core.Items {
		rewrite(core.Items[i].Expr)
		core.Items[i].Alias = "" // aliases are presentation, not semantics
		if core.Items[i].TableStar != "" {
			if canon, ok := mapping[strings.ToLower(core.Items[i].TableStar)]; ok {
				core.Items[i].TableStar = canon
			}
		}
	}
	rewrite(core.Where)
	rewrite(core.Having)
	for _, g := range core.GroupBy {
		rewrite(g)
	}
	for i := range core.OrderBy {
		rewrite(core.OrderBy[i].Expr)
	}
	for i := range core.From.Joins {
		rewrite(core.From.Joins[i].On)
	}
}

// maskLiterals replaces every literal with a placeholder so EM ignores
// values, mirroring the Spider EM definition. LIMIT counts are semantic
// (LIMIT 1 vs LIMIT 3 differ structurally) and are kept.
func maskLiterals(core *sqlast.SelectCore) {
	mask := func(e sqlast.Expr) {
		sqlast.WalkExpr(e, func(e sqlast.Expr) bool {
			switch x := e.(type) {
			case *sqlast.Binary:
				x.L = maskIfLiteral(x.L)
				x.R = maskIfLiteral(x.R)
			case *sqlast.FuncCall:
				for i := range x.Args {
					x.Args[i] = maskIfLiteral(x.Args[i])
				}
			case *sqlast.InExpr:
				for i := range x.List {
					x.List[i] = maskIfLiteral(x.List[i])
				}
			case *sqlast.LikeExpr:
				x.Pattern = maskIfLiteral(x.Pattern)
			case *sqlast.BetweenExpr:
				x.Lo = maskIfLiteral(x.Lo)
				x.Hi = maskIfLiteral(x.Hi)
			}
			return true
		})
	}
	mask(core.Where)
	mask(core.Having)
	for i := range core.Items {
		mask(core.Items[i].Expr)
	}
}

func maskIfLiteral(e sqlast.Expr) sqlast.Expr {
	if _, ok := e.(*sqlast.Literal); ok {
		return sqlast.Lit(sqltypes.NewText("value"))
	}
	return e
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + itoa(n%10)
}
