// Package sqlnorm canonicalizes SQL statements for the Spider exact-match
// (EM) metric and classifies queries into the Spider difficulty buckets
// (easy / medium / hard / extra) used by the paper's Table II.
//
// EM canonicalization follows the Spider evaluation convention: identifier
// case is ignored, table aliases are renamed positionally (T1, T2, ...),
// literal values are masked ("ignoring specific values in the SQL
// statements"), and commutative conjunct/item order is sorted.
package sqlnorm

import (
	"sort"
	"strings"

	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqltypes"
)

// Normalize returns a canonicalized deep copy of stmt.
func Normalize(stmt *sqlast.SelectStmt) *sqlast.SelectStmt {
	out := stmt.Clone()
	for _, core := range out.Cores {
		normalizeCore(core)
	}
	return out
}

// Canonical renders the normalized statement in lower case; two statements
// are EM-equal iff their Canonical strings match.
func Canonical(stmt *sqlast.SelectStmt) string {
	return strings.ToLower(Normalize(stmt).SQL())
}

// EMEqual implements the exact-match metric.
func EMEqual(a, b *sqlast.SelectStmt) bool {
	if a == nil || b == nil {
		return false
	}
	return Canonical(a) == Canonical(b)
}

// flippedCmp maps each comparison operator to its operand-swapped
// spelling; the CacheKey renderer (cachekey.go) uses it to orient
// literal-first comparisons — "5 > a" renders as "a < 5" — so range and
// equality predicates hit the same cache key regardless of operand
// order. The executor lowers both spellings into the same probes, so
// the shared plan is observably identical.
var flippedCmp = map[string]string{
	"=": "=", "!=": "!=", "<>": "<>",
	"<": ">", "<=": ">=", ">": "<", ">=": "<=",
}

func normalizeCore(core *sqlast.SelectCore) {
	renameAliases(core)
	maskLiterals(core)
	// Sort commutative lists for order-insensitive comparison.
	sort.SliceStable(core.Items, func(i, j int) bool {
		return core.Items[i].SQL() < core.Items[j].SQL()
	})
	conj := sqlast.Conjuncts(core.Where)
	sort.SliceStable(conj, func(i, j int) bool {
		return sqlast.ExprSQL(conj[i]) < sqlast.ExprSQL(conj[j])
	})
	core.Where = sqlast.FromAnd(conj)
	// Normalize nested statements too.
	for _, sub := range core.Subqueries() {
		for _, c := range sub.Cores {
			normalizeCore(c)
		}
	}
}

// renameAliases rewrites table aliases to positional T1..Tn and lower-cases
// identifiers. Unaliased tables referenced by name keep their (lowered)
// name as qualifier.
func renameAliases(core *sqlast.SelectCore) {
	if core.From == nil {
		return
	}
	mapping := map[string]string{}
	refs := core.Tables()
	for i := range refs {
		old := strings.ToLower(refs[i].Effective())
		canon := "t" + itoa(i+1)
		mapping[old] = canon
	}
	core.From.Base.Alias = mapping[strings.ToLower(core.From.Base.Effective())]
	core.From.Base.Name = strings.ToLower(core.From.Base.Name)
	for i := range core.From.Joins {
		j := &core.From.Joins[i]
		j.Table.Alias = mapping[strings.ToLower(j.Table.Effective())]
		j.Table.Name = strings.ToLower(j.Table.Name)
	}
	rewrite := func(e sqlast.Expr) {
		sqlast.WalkExpr(e, func(e sqlast.Expr) bool {
			if cr, ok := e.(*sqlast.ColumnRef); ok {
				if cr.Table != "" {
					if canon, ok := mapping[strings.ToLower(cr.Table)]; ok {
						cr.Table = canon
					} else {
						cr.Table = strings.ToLower(cr.Table)
					}
				}
				cr.Column = strings.ToLower(cr.Column)
			}
			return true
		})
	}
	for i := range core.Items {
		rewrite(core.Items[i].Expr)
		core.Items[i].Alias = "" // aliases are presentation, not semantics
		if core.Items[i].TableStar != "" {
			if canon, ok := mapping[strings.ToLower(core.Items[i].TableStar)]; ok {
				core.Items[i].TableStar = canon
			}
		}
	}
	rewrite(core.Where)
	rewrite(core.Having)
	for _, g := range core.GroupBy {
		rewrite(g)
	}
	for i := range core.OrderBy {
		rewrite(core.OrderBy[i].Expr)
	}
	for i := range core.From.Joins {
		rewrite(core.From.Joins[i].On)
	}
}

// maskLiterals replaces every literal with a placeholder so EM ignores
// values, mirroring the Spider EM definition. LIMIT counts are semantic
// (LIMIT 1 vs LIMIT 3 differ structurally) and are kept.
func maskLiterals(core *sqlast.SelectCore) {
	mask := func(e sqlast.Expr) {
		sqlast.WalkExpr(e, func(e sqlast.Expr) bool {
			switch x := e.(type) {
			case *sqlast.Binary:
				x.L = maskIfLiteral(x.L)
				x.R = maskIfLiteral(x.R)
			case *sqlast.FuncCall:
				for i := range x.Args {
					x.Args[i] = maskIfLiteral(x.Args[i])
				}
			case *sqlast.InExpr:
				for i := range x.List {
					x.List[i] = maskIfLiteral(x.List[i])
				}
			case *sqlast.LikeExpr:
				x.Pattern = maskIfLiteral(x.Pattern)
			case *sqlast.BetweenExpr:
				x.Lo = maskIfLiteral(x.Lo)
				x.Hi = maskIfLiteral(x.Hi)
			}
			return true
		})
	}
	mask(core.Where)
	mask(core.Having)
	for i := range core.Items {
		mask(core.Items[i].Expr)
	}
}

func maskIfLiteral(e sqlast.Expr) sqlast.Expr {
	if _, ok := e.(*sqlast.Literal); ok {
		return sqlast.Lit(sqltypes.NewText("value"))
	}
	return e
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + itoa(n%10)
}
