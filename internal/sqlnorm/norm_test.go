package sqlnorm

import (
	"testing"

	"cyclesql/internal/sqlparse"
)

func em(t *testing.T, a, b string) bool {
	t.Helper()
	return EMEqual(sqlparse.MustParse(a), sqlparse.MustParse(b))
}

func TestEMAliasInsensitive(t *testing.T) {
	a := "SELECT T1.name FROM singer AS T1 JOIN song AS T2 ON T1.id = T2.sid"
	b := "SELECT a.name FROM singer AS a JOIN song AS b ON a.id = b.sid"
	if !em(t, a, b) {
		t.Fatal("alias renaming must not affect EM")
	}
}

func TestEMCaseInsensitive(t *testing.T) {
	if !em(t, "select NAME from Singer", "SELECT name FROM singer") {
		t.Fatal("case must not affect EM")
	}
}

func TestEMValueInsensitive(t *testing.T) {
	if !em(t, "SELECT name FROM city WHERE pop > 100", "SELECT name FROM city WHERE pop > 999") {
		t.Fatal("literal values must not affect EM")
	}
	if em(t, "SELECT name FROM city WHERE pop > 100", "SELECT name FROM city WHERE pop >= 100") {
		t.Fatal("operators must affect EM")
	}
}

func TestEMConjunctOrderInsensitive(t *testing.T) {
	a := "SELECT name FROM city WHERE a = 1 AND b = 2"
	b := "SELECT name FROM city WHERE b = 2 AND a = 1"
	if !em(t, a, b) {
		t.Fatal("conjunct order must not affect EM")
	}
}

func TestEMSelectOrderInsensitive(t *testing.T) {
	if !em(t, "SELECT a, b FROM t", "SELECT b, a FROM t") {
		t.Fatal("projection order must not affect EM")
	}
}

func TestEMStructureSensitive(t *testing.T) {
	if em(t, "SELECT count(*) FROM t", "SELECT sum(x) FROM t") {
		t.Fatal("different aggregates must differ")
	}
	if em(t, "SELECT a FROM t", "SELECT DISTINCT a FROM t") {
		t.Fatal("DISTINCT must matter")
	}
	if em(t, "SELECT a FROM t ORDER BY a LIMIT 1", "SELECT a FROM t ORDER BY a LIMIT 3") {
		t.Fatal("LIMIT count is semantic and must matter")
	}
	if em(t, "SELECT a FROM t ORDER BY a", "SELECT a FROM t ORDER BY a DESC") {
		t.Fatal("sort direction must matter")
	}
}

func TestEMNestedNormalization(t *testing.T) {
	a := "SELECT name FROM t WHERE id IN (SELECT x FROM u AS Z WHERE Z.v = 5)"
	b := "SELECT name FROM t WHERE id IN (SELECT x FROM u AS K WHERE K.v = 9)"
	if !em(t, a, b) {
		t.Fatal("nested queries must normalize too")
	}
}

func TestEMSelfInverse(t *testing.T) {
	sql := "SELECT T1.name, count(*) FROM a AS T1 JOIN b AS T2 ON T1.id = T2.aid WHERE T2.x = 'v' GROUP BY T1.name HAVING count(*) > 2 ORDER BY count(*) DESC LIMIT 5"
	stmt := sqlparse.MustParse(sql)
	once := Canonical(stmt)
	twice := Canonical(sqlparse.MustParse(Normalize(stmt).SQL()))
	if once != twice {
		t.Fatalf("normalization must be idempotent:\n1 %s\n2 %s", once, twice)
	}
}

func TestNormalizeDoesNotMutateInput(t *testing.T) {
	stmt := sqlparse.MustParse("SELECT T1.name FROM singer AS T1 WHERE T1.age > 30")
	before := stmt.SQL()
	Normalize(stmt)
	if stmt.SQL() != before {
		t.Fatal("Normalize must clone, not mutate")
	}
}

func TestClassifyDifficultyBuckets(t *testing.T) {
	cases := map[string]Difficulty{
		"SELECT name FROM singer":                                                         Easy,
		"SELECT name FROM singer WHERE age > 30":                                          Easy,
		"SELECT name, age FROM singer WHERE age > 30":                                     Medium,
		"SELECT count(*) FROM singer WHERE age > 30 AND country = 'US' OR country = 'UK'": Medium,
		"SELECT name, age FROM singer WHERE a = 1 AND b = 2 GROUP BY name, age":           Hard,
		"SELECT name FROM singer WHERE id IN (SELECT sid FROM song)":                      Hard,
		"SELECT a FROM t UNION SELECT b FROM u":                                           Hard,
		"SELECT T1.name FROM a AS T1 JOIN b AS T2 ON T1.id = T2.aid WHERE T2.x = 'v' AND T2.y = 1 GROUP BY T1.name HAVING count(*) > 2 ORDER BY count(*) DESC LIMIT 5": ExtraHard,
		"SELECT name FROM t WHERE id IN (SELECT x FROM u WHERE v IN (SELECT w FROM z))":                                                                                ExtraHard,
	}
	for sql, want := range cases {
		if got := Classify(sqlparse.MustParse(sql)); got != want {
			t.Errorf("Classify(%q) = %s want %s", sql, got, want)
		}
	}
}

func TestClassifyMonotoneUnderAddedClauses(t *testing.T) {
	base := Classify(sqlparse.MustParse("SELECT name FROM singer"))
	more := Classify(sqlparse.MustParse("SELECT name FROM singer WHERE a = 1 AND b = 2 GROUP BY name ORDER BY name LIMIT 3"))
	rank := map[Difficulty]int{Easy: 0, Medium: 1, Hard: 2, ExtraHard: 3}
	if rank[more] < rank[base] {
		t.Fatalf("adding clauses lowered difficulty: %s -> %s", base, more)
	}
}

func cacheKey(t *testing.T, sql string) string {
	t.Helper()
	return CacheKey(sqlparse.MustParse(sql))
}

func TestCacheKeyFoldsCaseWhitespaceAndConjunctOrder(t *testing.T) {
	base := cacheKey(t, "SELECT flno FROM Flight WHERE origin = 'Chicago' AND aid > 2")
	for _, sql := range []string{
		"select flno from FLIGHT where ORIGIN = 'Chicago' and AID > 2",
		"SELECT  flno  FROM  flight  WHERE  origin  =  'Chicago'  AND  aid  >  2",
		"SELECT flno FROM flight WHERE aid > 2 AND origin = 'Chicago'",
	} {
		if cacheKey(t, sql) != base {
			t.Errorf("CacheKey(%q) must equal the base key", sql)
		}
	}
	// Projection identifier case folds everywhere except the output label,
	// which compiled plans embed verbatim.
	if cacheKey(t, "SELECT FLNO FROM Flight WHERE origin = 'Chicago' AND aid > 2") == base {
		t.Error("projection label case is observable and must not fold")
	}
}

func TestCacheKeyPreservesSemantics(t *testing.T) {
	base := cacheKey(t, "SELECT flno FROM flight WHERE origin = 'Chicago' ORDER BY flno LIMIT 2")
	for _, sql := range []string{
		// Literal values, text-literal case, projection order, aliases,
		// LIMIT, and DISTINCT are all semantic: plans are not shareable.
		"SELECT flno FROM flight WHERE origin = 'Boston' ORDER BY flno LIMIT 2",
		"SELECT flno FROM flight WHERE origin = 'CHICAGO' ORDER BY flno LIMIT 2",
		"SELECT flno FROM flight WHERE origin = 'Chicago' ORDER BY flno LIMIT 3",
		"SELECT flno AS f FROM flight WHERE origin = 'Chicago' ORDER BY flno LIMIT 2",
		"SELECT DISTINCT flno FROM flight WHERE origin = 'Chicago' ORDER BY flno LIMIT 2",
	} {
		if cacheKey(t, sql) == base {
			t.Errorf("CacheKey(%q) must differ from the base key", sql)
		}
	}
	a := cacheKey(t, "SELECT a, b FROM t")
	b := cacheKey(t, "SELECT b, a FROM t")
	if a == b {
		t.Error("projection order is semantic and must not fold")
	}
}

func TestCacheKeyNormalizesSubqueries(t *testing.T) {
	a := cacheKey(t, "SELECT name FROM singer WHERE id IN (SELECT sid FROM song WHERE x = 1 AND y = 2)")
	b := cacheKey(t, "SELECT name FROM SINGER WHERE id IN (SELECT sid FROM song WHERE Y = 2 AND X = 1)")
	if a != b {
		t.Error("subquery conjunct order and case must fold into the same key")
	}
}

func TestCacheKeyDoesNotMutateInput(t *testing.T) {
	stmt := sqlparse.MustParse("SELECT Flno FROM Flight WHERE Origin = 'Chicago' AND aid > 2")
	before := stmt.SQL()
	_ = CacheKey(stmt)
	if stmt.SQL() != before {
		t.Error("CacheKey must canonicalize a clone, not the input")
	}
}

func TestCacheKeySubqueryCaseCannotReorderConjuncts(t *testing.T) {
	a := cacheKey(t, "SELECT name FROM singer WHERE id IN (SELECT sid FROM Zong) AND id IN (SELECT sid FROM abba)")
	b := cacheKey(t, "SELECT name FROM singer WHERE id IN (SELECT sid FROM zong) AND id IN (SELECT sid FROM abba)")
	if a != b {
		t.Error("subqueries must be canonicalized before the outer conjunct sort")
	}
}

func TestCacheKeyOrientsLiteralFirstComparisons(t *testing.T) {
	a := cacheKey(t, "SELECT name FROM singer WHERE age < 30")
	b := cacheKey(t, "SELECT name FROM singer WHERE 30 > age")
	if a != b {
		t.Error("literal-first comparisons must orient onto the column-first key")
	}
	c := cacheKey(t, "SELECT name FROM singer WHERE 30 >= age")
	if a == c {
		t.Error("orientation must flip the operator, not just swap operands")
	}
	if cacheKey(t, "SELECT name FROM singer WHERE 5 = age") != cacheKey(t, "SELECT name FROM singer WHERE age = 5") {
		t.Error("literal-first equality must orient too")
	}
	// Range pairs spelled in either orientation and order share one key.
	d := cacheKey(t, "SELECT name FROM singer WHERE age > 20 AND age < 30")
	e := cacheKey(t, "SELECT name FROM singer WHERE 30 > age AND 20 < age")
	if d != e {
		t.Error("range predicate pairs must fold regardless of spelling and order")
	}
	// Constant comparisons and projection items are left alone.
	if cacheKey(t, "SELECT 5 > age FROM singer") == cacheKey(t, "SELECT age < 5 FROM singer") {
		t.Error("projection items carry observable labels and must not orient")
	}
}

func TestCacheKeyOrientationPreservesSemantics(t *testing.T) {
	// EM canonicalization (Normalize) is untouched by cache-key orientation.
	a := sqlparse.MustParse("SELECT name FROM singer WHERE 30 > age")
	before := Canonical(a)
	_ = CacheKey(a)
	if Canonical(a) != before {
		t.Error("CacheKey must not leak orientation into the input or EM path")
	}
}
