package sqlnorm

import (
	"testing"

	"cyclesql/internal/sqlparse"
)

func em(t *testing.T, a, b string) bool {
	t.Helper()
	return EMEqual(sqlparse.MustParse(a), sqlparse.MustParse(b))
}

func TestEMAliasInsensitive(t *testing.T) {
	a := "SELECT T1.name FROM singer AS T1 JOIN song AS T2 ON T1.id = T2.sid"
	b := "SELECT a.name FROM singer AS a JOIN song AS b ON a.id = b.sid"
	if !em(t, a, b) {
		t.Fatal("alias renaming must not affect EM")
	}
}

func TestEMCaseInsensitive(t *testing.T) {
	if !em(t, "select NAME from Singer", "SELECT name FROM singer") {
		t.Fatal("case must not affect EM")
	}
}

func TestEMValueInsensitive(t *testing.T) {
	if !em(t, "SELECT name FROM city WHERE pop > 100", "SELECT name FROM city WHERE pop > 999") {
		t.Fatal("literal values must not affect EM")
	}
	if em(t, "SELECT name FROM city WHERE pop > 100", "SELECT name FROM city WHERE pop >= 100") {
		t.Fatal("operators must affect EM")
	}
}

func TestEMConjunctOrderInsensitive(t *testing.T) {
	a := "SELECT name FROM city WHERE a = 1 AND b = 2"
	b := "SELECT name FROM city WHERE b = 2 AND a = 1"
	if !em(t, a, b) {
		t.Fatal("conjunct order must not affect EM")
	}
}

func TestEMSelectOrderInsensitive(t *testing.T) {
	if !em(t, "SELECT a, b FROM t", "SELECT b, a FROM t") {
		t.Fatal("projection order must not affect EM")
	}
}

func TestEMStructureSensitive(t *testing.T) {
	if em(t, "SELECT count(*) FROM t", "SELECT sum(x) FROM t") {
		t.Fatal("different aggregates must differ")
	}
	if em(t, "SELECT a FROM t", "SELECT DISTINCT a FROM t") {
		t.Fatal("DISTINCT must matter")
	}
	if em(t, "SELECT a FROM t ORDER BY a LIMIT 1", "SELECT a FROM t ORDER BY a LIMIT 3") {
		t.Fatal("LIMIT count is semantic and must matter")
	}
	if em(t, "SELECT a FROM t ORDER BY a", "SELECT a FROM t ORDER BY a DESC") {
		t.Fatal("sort direction must matter")
	}
}

func TestEMNestedNormalization(t *testing.T) {
	a := "SELECT name FROM t WHERE id IN (SELECT x FROM u AS Z WHERE Z.v = 5)"
	b := "SELECT name FROM t WHERE id IN (SELECT x FROM u AS K WHERE K.v = 9)"
	if !em(t, a, b) {
		t.Fatal("nested queries must normalize too")
	}
}

func TestEMSelfInverse(t *testing.T) {
	sql := "SELECT T1.name, count(*) FROM a AS T1 JOIN b AS T2 ON T1.id = T2.aid WHERE T2.x = 'v' GROUP BY T1.name HAVING count(*) > 2 ORDER BY count(*) DESC LIMIT 5"
	stmt := sqlparse.MustParse(sql)
	once := Canonical(stmt)
	twice := Canonical(sqlparse.MustParse(Normalize(stmt).SQL()))
	if once != twice {
		t.Fatalf("normalization must be idempotent:\n1 %s\n2 %s", once, twice)
	}
}

func TestNormalizeDoesNotMutateInput(t *testing.T) {
	stmt := sqlparse.MustParse("SELECT T1.name FROM singer AS T1 WHERE T1.age > 30")
	before := stmt.SQL()
	Normalize(stmt)
	if stmt.SQL() != before {
		t.Fatal("Normalize must clone, not mutate")
	}
}

func TestClassifyDifficultyBuckets(t *testing.T) {
	cases := map[string]Difficulty{
		"SELECT name FROM singer":                                                         Easy,
		"SELECT name FROM singer WHERE age > 30":                                          Easy,
		"SELECT name, age FROM singer WHERE age > 30":                                     Medium,
		"SELECT count(*) FROM singer WHERE age > 30 AND country = 'US' OR country = 'UK'": Medium,
		"SELECT name, age FROM singer WHERE a = 1 AND b = 2 GROUP BY name, age":           Hard,
		"SELECT name FROM singer WHERE id IN (SELECT sid FROM song)":                      Hard,
		"SELECT a FROM t UNION SELECT b FROM u":                                           Hard,
		"SELECT T1.name FROM a AS T1 JOIN b AS T2 ON T1.id = T2.aid WHERE T2.x = 'v' AND T2.y = 1 GROUP BY T1.name HAVING count(*) > 2 ORDER BY count(*) DESC LIMIT 5": ExtraHard,
		"SELECT name FROM t WHERE id IN (SELECT x FROM u WHERE v IN (SELECT w FROM z))":                                                                                ExtraHard,
	}
	for sql, want := range cases {
		if got := Classify(sqlparse.MustParse(sql)); got != want {
			t.Errorf("Classify(%q) = %s want %s", sql, got, want)
		}
	}
}

func TestClassifyMonotoneUnderAddedClauses(t *testing.T) {
	base := Classify(sqlparse.MustParse("SELECT name FROM singer"))
	more := Classify(sqlparse.MustParse("SELECT name FROM singer WHERE a = 1 AND b = 2 GROUP BY name ORDER BY name LIMIT 3"))
	rank := map[Difficulty]int{Easy: 0, Medium: 1, Hard: 2, ExtraHard: 3}
	if rank[more] < rank[base] {
		t.Fatalf("adding clauses lowered difficulty: %s -> %s", base, more)
	}
}
