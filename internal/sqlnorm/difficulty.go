package sqlnorm

import (
	"cyclesql/internal/sqlast"
)

// Difficulty is a Spider hardness bucket.
type Difficulty string

// The four Spider buckets, ordered.
const (
	Easy      Difficulty = "easy"
	Medium    Difficulty = "medium"
	Hard      Difficulty = "hard"
	ExtraHard Difficulty = "extra"
)

// Difficulties lists the buckets in ascending order.
var Difficulties = []Difficulty{Easy, Medium, Hard, ExtraHard}

// Classify implements the Spider evaluation script's hardness criteria:
// component-1 counts surface clauses (WHERE, GROUP BY, ORDER BY, LIMIT,
// JOIN, OR, LIKE), component-2 counts compositional constructs (set
// operations and nested subqueries), and "others" counts multiplicity
// (multiple aggregates, select columns, where conditions, group keys).
func Classify(stmt *sqlast.SelectStmt) Difficulty {
	c1 := countComponent1(stmt)
	c2 := countComponent2(stmt)
	others := countOthers(stmt)
	switch {
	case c1 <= 1 && others == 0 && c2 == 0:
		return Easy
	case (others <= 2 && c1 <= 1 && c2 == 0) || (c1 <= 2 && others < 2 && c2 == 0):
		return Medium
	case (others > 2 && c1 <= 2 && c2 == 0) ||
		(c1 > 2 && c1 <= 3 && others <= 2 && c2 == 0) ||
		(c1 <= 1 && others == 0 && c2 <= 1):
		return Hard
	default:
		return ExtraHard
	}
}

func countComponent1(stmt *sqlast.SelectStmt) int {
	n := 0
	core := stmt.Cores[0]
	if core.Where != nil {
		n++
	}
	if len(core.GroupBy) > 0 {
		n++
	}
	if len(core.OrderBy) > 0 {
		n++
	}
	if core.Limit != nil {
		n++
	}
	if core.From != nil && len(core.From.Joins) > 0 {
		n++
	}
	hasOr, hasLike := false, false
	scan := func(e sqlast.Expr) {
		sqlast.WalkExpr(e, func(e sqlast.Expr) bool {
			switch x := e.(type) {
			case *sqlast.Binary:
				if x.Op == "OR" {
					hasOr = true
				}
			case *sqlast.LikeExpr:
				hasLike = true
			}
			return true
		})
	}
	scan(core.Where)
	scan(core.Having)
	if hasOr {
		n++
	}
	if hasLike {
		n++
	}
	return n
}

func countComponent2(stmt *sqlast.SelectStmt) int {
	n := len(stmt.Ops) // set operations
	for _, core := range stmt.Cores {
		for _, sub := range core.Subqueries() {
			n += 1 + countComponent2(sub)
		}
	}
	return n
}

func countOthers(stmt *sqlast.SelectStmt) int {
	core := stmt.Cores[0]
	n := 0
	aggs := 0
	for _, it := range core.Items {
		sqlast.WalkExpr(it.Expr, func(e sqlast.Expr) bool {
			if f, ok := e.(*sqlast.FuncCall); ok && f.IsAggregate() {
				aggs++
			}
			return true
		})
	}
	sqlast.WalkExpr(core.Having, func(e sqlast.Expr) bool {
		if f, ok := e.(*sqlast.FuncCall); ok && f.IsAggregate() {
			aggs++
		}
		return true
	})
	if aggs > 1 {
		n++
	}
	if len(core.Items) > 1 {
		n++
	}
	if len(sqlast.Conjuncts(core.Where)) > 1 {
		n++
	}
	if len(core.GroupBy) > 1 {
		n++
	}
	return n
}
