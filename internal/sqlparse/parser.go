// Package sqlparse parses the Spider SQL dialect into sqlast trees:
// SELECT statements with joins, grouping, having, ordering, limits, set
// operations, IN/EXISTS/scalar subqueries, LIKE, BETWEEN and IS NULL —
// everything the Spider family of benchmarks emits.
//
// The parser is a recursive-descent grammar over sqllex tokens that
// allocates every AST node from a per-parser arena (see arena.go)
// instead of the heap, and reuses its token buffer across statements.
// Two entry points expose two arena lifetimes:
//
//   - Parse / MustParse: borrow a pooled parser, parse, then DETACH the
//     arena so the returned AST owns its memory. The AST is an ordinary
//     garbage-collected value, safe to cache, share across goroutines,
//     and use as a map key by pointer identity (sqleval's plan cache
//     keys on *sqlast.SelectStmt pointers, so recycled node memory
//     would silently alias cache entries — detaching makes that
//     impossible). Cost: one allocation per arena chunk — single-digit
//     allocations per statement instead of one per node.
//   - AcquireParser / Parser.Parse / ReleaseParser: arena-REUSE mode.
//     The returned AST lives in the parser's arena and is invalidated
//     by the next Parse or by Release, in exchange for zero warm
//     allocations. Callers must uphold the bounded-lifetime rule:
//     consume the AST and drop every reference to it before the parser
//     is reused or released — never hand such an AST to a plan cache, a
//     goroutine, or anything else that outlives the request (see
//     docs/linting.md). sqlnorm.CacheKeyOf is the archetypal caller:
//     parse, render the key, discard.
//
// The seed front end this replaces survives verbatim in
// internal/sqloracle; the differential suites in internal/frontdiff
// hold this parser bit-identical to it.
package sqlparse

import (
	"fmt"
	"strings"
	"sync"

	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqllex"
	"cyclesql/internal/sqltypes"
)

// Parse parses a single SELECT statement (an optional trailing
// semicolon is accepted) and returns its AST. The AST owns its memory:
// the pooled parser that built it detaches its arena, so the statement
// may be retained, cached, or shared freely.
func Parse(input string) (*sqlast.SelectStmt, error) {
	p := AcquireParser()
	stmt, err := p.parse(input)
	if err != nil {
		// Nothing escaped: the partial nodes stay in the arena and the
		// next borrower overwrites them.
		ReleaseParser(p)
		return nil, err
	}
	p.detach()
	ReleaseParser(p)
	return stmt, nil
}

// MustParse panics on error; for tests and static fixtures.
func MustParse(input string) *sqlast.SelectStmt {
	stmt, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return stmt
}

// Parser is a reusable SQL parser with an arena-backed allocator.
// Obtain one with AcquireParser. The zero value is also usable.
//
// ASTs returned by Parser.Parse live in the parser's arena: each call
// to Parse invalidates the previous statement, and ReleaseParser
// invalidates everything. Use the package-level Parse when the
// statement must outlive the parser.
type Parser struct {
	toks  []sqllex.Token
	pos   int
	input string

	// One slab per node type. Slices (Items, Joins, GroupBy, ...) are
	// built in the scratch stacks below and copied into their slab once
	// their extent is known.
	stmts    slab[sqlast.SelectStmt]
	cores    slab[sqlast.SelectCore]
	corePtrs slab[*sqlast.SelectCore]
	ops      slab[sqlast.CompoundOp]
	items    slab[sqlast.SelectItem]
	froms    slab[sqlast.FromClause]
	joins    slab[sqlast.Join]
	orders   slab[sqlast.OrderItem]
	exprs    slab[sqlast.Expr]
	ints     slab[int64]

	colrefs  slab[sqlast.ColumnRef]
	literals slab[sqlast.Literal]
	unaries  slab[sqlast.Unary]
	binaries slab[sqlast.Binary]
	funcs    slab[sqlast.FuncCall]
	inExprs  slab[sqlast.InExpr]
	likes    slab[sqlast.LikeExpr]
	betweens slab[sqlast.BetweenExpr]
	isNulls  slab[sqlast.IsNullExpr]
	exists   slab[sqlast.ExistsExpr]
	subqs    slab[sqlast.SubqueryExpr]

	// Scratch stacks, used mark/truncate style so nested subqueries can
	// interleave with an enclosing clause's list without copying.
	scratchItems  []sqlast.SelectItem
	scratchExprs  []sqlast.Expr
	scratchJoins  []sqlast.Join
	scratchOrders []sqlast.OrderItem
	scratchCores  []*sqlast.SelectCore
	scratchOps    []sqlast.CompoundOp
}

var parserPool = sync.Pool{New: func() any { return new(Parser) }}

// AcquireParser returns a parser from the pool. Pair with
// ReleaseParser; the parser (and every AST its Parse returned) must not
// be used after release.
func AcquireParser() *Parser {
	return parserPool.Get().(*Parser)
}

// ReleaseParser resets p and returns it to the pool.
func ReleaseParser(p *Parser) {
	p.reset()
	parserPool.Put(p)
}

// Parse parses input into the parser's arena. The result is valid only
// until the next call to Parse on this parser or ReleaseParser —
// arena-reuse mode trades that lifetime bound for zero warm
// allocations. See the package comment for the rules.
func (p *Parser) Parse(input string) (*sqlast.SelectStmt, error) {
	p.resetArenas()
	return p.parse(input)
}

func (p *Parser) parse(input string) (*sqlast.SelectStmt, error) {
	toks, err := sqllex.LexInto(input, p.toks[:0])
	p.toks = toks
	if err != nil {
		return nil, err
	}
	p.pos = 0
	p.input = input
	stmt, err := p.parseSelectStmt()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, p.errorf("trailing input starting at %q", p.peek().Text)
	}
	return stmt, nil
}

// reset clears everything: arenas, scratch, and the token buffer's
// contents (its capacity is retained).
func (p *Parser) reset() {
	p.resetArenas()
	p.input = ""
	p.pos = 0
	if p.toks != nil {
		p.toks = p.toks[:0]
	}
}

func (p *Parser) resetArenas() {
	p.stmts.reset()
	p.cores.reset()
	p.corePtrs.reset()
	p.ops.reset()
	p.items.reset()
	p.froms.reset()
	p.joins.reset()
	p.orders.reset()
	p.exprs.reset()
	p.ints.reset()
	p.colrefs.reset()
	p.literals.reset()
	p.unaries.reset()
	p.binaries.reset()
	p.funcs.reset()
	p.inExprs.reset()
	p.likes.reset()
	p.betweens.reset()
	p.isNulls.reset()
	p.exists.reset()
	p.subqs.reset()
	p.scratchItems = p.scratchItems[:0]
	p.scratchExprs = p.scratchExprs[:0]
	p.scratchJoins = p.scratchJoins[:0]
	p.scratchOrders = p.scratchOrders[:0]
	p.scratchCores = p.scratchCores[:0]
	p.scratchOps = p.scratchOps[:0]
}

// detach hands every arena chunk over to the AST parsed so far; the
// parser starts the next statement on fresh chunks.
func (p *Parser) detach() {
	p.stmts.detach()
	p.cores.detach()
	p.corePtrs.detach()
	p.ops.detach()
	p.items.detach()
	p.froms.detach()
	p.joins.detach()
	p.orders.detach()
	p.exprs.detach()
	p.ints.detach()
	p.colrefs.detach()
	p.literals.detach()
	p.unaries.detach()
	p.binaries.detach()
	p.funcs.detach()
	p.inExprs.detach()
	p.likes.detach()
	p.betweens.detach()
	p.isNulls.detach()
	p.exists.detach()
	p.subqs.detach()
}

// Node constructors over the slabs.

func (p *Parser) newBinary(op string, l, r sqlast.Expr) *sqlast.Binary {
	b := p.binaries.alloc()
	b.Op, b.L, b.R = op, l, r
	return b
}

func (p *Parser) newUnary(op string, x sqlast.Expr) *sqlast.Unary {
	u := p.unaries.alloc()
	u.Op, u.X = op, x
	return u
}

func (p *Parser) newLiteral(v sqltypes.Value) *sqlast.Literal {
	l := p.literals.alloc()
	l.Value = v
	return l
}

func (p *Parser) newColumnRef(table, column string) *sqlast.ColumnRef {
	c := p.colrefs.alloc()
	c.Table, c.Column = table, column
	return c
}

func (p *Parser) peek() sqllex.Token { return p.toks[p.pos] }
func (p *Parser) atEOF() bool        { return p.peek().Kind == sqllex.TokEOF }
func (p *Parser) save() int          { return p.pos }
func (p *Parser) restore(mark int)   { p.pos = mark }

func (p *Parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: %s (at offset %d in %q)", fmt.Sprintf(format, args...), p.peek().Pos, p.input)
}

func (p *Parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.Kind == sqllex.TokKeyword && t.Text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %q", kw, p.peek().Text)
	}
	return nil
}

func (p *Parser) accept(op string) bool {
	t := p.peek()
	if t.Kind == sqllex.TokOp && t.Text == op {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(op string) error {
	if !p.accept(op) {
		return p.errorf("expected %q, found %q", op, p.peek().Text)
	}
	return nil
}

func (p *Parser) parseSelectStmt() (*sqlast.SelectStmt, error) {
	coresMark := len(p.scratchCores)
	opsMark := len(p.scratchOps)
	defer func() {
		p.scratchCores = p.scratchCores[:coresMark]
		p.scratchOps = p.scratchOps[:opsMark]
	}()
	core, err := p.parseSelectCore()
	if err != nil {
		return nil, err
	}
	p.scratchCores = append(p.scratchCores, core)
	for {
		var op sqlast.CompoundOp
		switch {
		case p.acceptKeyword("UNION"):
			if p.acceptKeyword("ALL") {
				op = sqlast.UnionAll
			} else {
				op = sqlast.Union
			}
		case p.acceptKeyword("INTERSECT"):
			op = sqlast.Intersect
		case p.acceptKeyword("EXCEPT"):
			op = sqlast.Except
		default:
			stmt := p.stmts.alloc()
			stmt.Cores = p.corePtrs.allocSlice(p.scratchCores[coresMark:])
			stmt.Ops = p.ops.allocSlice(p.scratchOps[opsMark:])
			return stmt, nil
		}
		rhs, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		p.scratchCores = append(p.scratchCores, rhs)
		p.scratchOps = append(p.scratchOps, op)
	}
}

func (p *Parser) parseSelectCore() (*sqlast.SelectCore, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	core := p.cores.alloc()
	if p.acceptKeyword("DISTINCT") {
		core.Distinct = true
	}
	itemsMark := len(p.scratchItems)
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			p.scratchItems = p.scratchItems[:itemsMark]
			return nil, err
		}
		p.scratchItems = append(p.scratchItems, item)
		if !p.accept(",") {
			break
		}
	}
	core.Items = p.items.allocSlice(p.scratchItems[itemsMark:])
	p.scratchItems = p.scratchItems[:itemsMark]
	if p.acceptKeyword("FROM") {
		from, err := p.parseFrom()
		if err != nil {
			return nil, err
		}
		core.From = from
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		mark := len(p.scratchExprs)
		for {
			e, err := p.parseExpr()
			if err != nil {
				p.scratchExprs = p.scratchExprs[:mark]
				return nil, err
			}
			p.scratchExprs = append(p.scratchExprs, e)
			if !p.accept(",") {
				break
			}
		}
		core.GroupBy = p.exprs.allocSlice(p.scratchExprs[mark:])
		p.scratchExprs = p.scratchExprs[:mark]
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		mark := len(p.scratchOrders)
		for {
			e, err := p.parseExpr()
			if err != nil {
				p.scratchOrders = p.scratchOrders[:mark]
				return nil, err
			}
			item := sqlast.OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			p.scratchOrders = append(p.scratchOrders, item)
			if !p.accept(",") {
				break
			}
		}
		core.OrderBy = p.orders.allocSlice(p.scratchOrders[mark:])
		p.scratchOrders = p.scratchOrders[:mark]
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		core.Limit = n
		if p.acceptKeyword("OFFSET") {
			o, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			core.Offset = o
		} else if p.accept(",") {
			cnt, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			core.Offset = core.Limit
			core.Limit = cnt
		}
	}
	return core, nil
}

func (p *Parser) parseInt() (*int64, error) {
	t := p.peek()
	if t.Kind != sqllex.TokNumber {
		return nil, p.errorf("expected integer, found %q", t.Text)
	}
	p.pos++
	v := sqltypes.ParseLiteral(t.Text, false)
	if v.Kind() != sqltypes.KindInt {
		return nil, p.errorf("expected integer, found %q", t.Text)
	}
	n := p.ints.alloc()
	*n = v.Int()
	return n, nil
}

func (p *Parser) parseSelectItem() (sqlast.SelectItem, error) {
	if p.accept("*") {
		return sqlast.SelectItem{Star: true}, nil
	}
	mark := p.save()
	if t := p.peek(); t.Kind == sqllex.TokIdent {
		p.pos++
		if p.accept(".") && p.accept("*") {
			return sqlast.SelectItem{Star: true, TableStar: t.Text}, nil
		}
		p.restore(mark)
	}
	e, err := p.parseExpr()
	if err != nil {
		return sqlast.SelectItem{}, err
	}
	item := sqlast.SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.peek()
		if t.Kind != sqllex.TokIdent && t.Kind != sqllex.TokKeyword {
			return item, p.errorf("expected alias after AS, found %q", t.Text)
		}
		p.pos++
		item.Alias = t.Text
	} else if t := p.peek(); t.Kind == sqllex.TokIdent {
		p.pos++
		item.Alias = t.Text
	}
	return item, nil
}

func (p *Parser) parseFrom() (*sqlast.FromClause, error) {
	base, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	from := p.froms.alloc()
	from.Base = base
	mark := len(p.scratchJoins)
	defer func() { p.scratchJoins = p.scratchJoins[:mark] }()
	for {
		var jt sqlast.JoinType
		switch {
		case p.acceptKeyword("JOIN"):
			jt = sqlast.InnerJoin
		case p.acceptKeyword("INNER"):
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = sqlast.InnerJoin
		case p.acceptKeyword("LEFT"):
			p.acceptKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			jt = sqlast.LeftJoin
		case p.accept(","):
			jt = sqlast.InnerJoin
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			p.scratchJoins = append(p.scratchJoins, sqlast.Join{Type: jt, Table: ref})
			continue
		default:
			from.Joins = p.joins.allocSlice(p.scratchJoins[mark:])
			return from, nil
		}
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		j := sqlast.Join{Type: jt, Table: ref}
		if p.acceptKeyword("ON") {
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = on
		}
		p.scratchJoins = append(p.scratchJoins, j)
	}
}

func (p *Parser) parseTableRef() (sqlast.TableRef, error) {
	if p.accept("(") {
		sub, err := p.parseSelectStmt()
		if err != nil {
			return sqlast.TableRef{}, err
		}
		if err := p.expect(")"); err != nil {
			return sqlast.TableRef{}, err
		}
		ref := sqlast.TableRef{Sub: sub}
		ref.Alias = p.parseOptionalAlias()
		return ref, nil
	}
	t := p.peek()
	if t.Kind != sqllex.TokIdent {
		return sqlast.TableRef{}, p.errorf("expected table name, found %q", t.Text)
	}
	p.pos++
	ref := sqlast.TableRef{Name: t.Text}
	ref.Alias = p.parseOptionalAlias()
	return ref, nil
}

func (p *Parser) parseOptionalAlias() string {
	if p.acceptKeyword("AS") {
		t := p.peek()
		if t.Kind == sqllex.TokIdent {
			p.pos++
			return t.Text
		}
		return ""
	}
	if t := p.peek(); t.Kind == sqllex.TokIdent {
		p.pos++
		return t.Text
	}
	return ""
}

func (p *Parser) parseExpr() (sqlast.Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (sqlast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = p.newBinary("OR", l, r)
	}
	return l, nil
}

func (p *Parser) parseAnd() (sqlast.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = p.newBinary("AND", l, r)
	}
	return l, nil
}

func (p *Parser) parseNot() (sqlast.Expr, error) {
	if p.acceptKeyword("NOT") {
		if p.peek().Kind == sqllex.TokKeyword && p.peek().Text == "EXISTS" {
			e, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			if ex, ok := e.(*sqlast.ExistsExpr); ok {
				ex.Not = true
				return ex, nil
			}
			return p.newUnary("NOT", e), nil
		}
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return p.newUnary("NOT", x), nil
	}
	return p.parsePredicate()
}

// cmpOps in the seed parser's trial order; "<>" canonicalizes to "!=".
var cmpOps = [...]string{"=", "!=", "<>", "<=", ">=", "<", ">"}

func (p *Parser) parsePredicate() (sqlast.Expr, error) {
	if p.peek().Kind == sqllex.TokKeyword && p.peek().Text == "EXISTS" {
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		sub, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		ex := p.exists.alloc()
		ex.Sub = sub
		return ex, nil
	}
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	not := false
	if p.peek().Kind == sqllex.TokKeyword && p.peek().Text == "NOT" {
		nxt := p.toks[p.pos+1]
		if nxt.Kind == sqllex.TokKeyword && (nxt.Text == "IN" || nxt.Text == "LIKE" || nxt.Text == "BETWEEN") {
			p.pos++
			not = true
		}
	}
	switch {
	case p.acceptKeyword("IN"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		in := p.inExprs.alloc()
		in.X, in.Not = l, not
		if p.peek().Kind == sqllex.TokKeyword && p.peek().Text == "SELECT" {
			sub, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			in.Sub = sub
		} else {
			mark := len(p.scratchExprs)
			for {
				e, err := p.parseExpr()
				if err != nil {
					p.scratchExprs = p.scratchExprs[:mark]
					return nil, err
				}
				p.scratchExprs = append(p.scratchExprs, e)
				if !p.accept(",") {
					break
				}
			}
			in.List = p.exprs.allocSlice(p.scratchExprs[mark:])
			p.scratchExprs = p.scratchExprs[:mark]
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return in, nil
	case p.acceptKeyword("LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		lk := p.likes.alloc()
		lk.X, lk.Not, lk.Pattern = l, not, pat
		return lk, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		bt := p.betweens.alloc()
		bt.X, bt.Not, bt.Lo, bt.Hi = l, not, lo, hi
		return bt, nil
	case p.acceptKeyword("IS"):
		isNot := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		isn := p.isNulls.alloc()
		isn.X, isn.Not = l, isNot
		return isn, nil
	}
	for _, op := range cmpOps {
		if p.accept(op) {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if op == "<>" {
				op = "!="
			}
			return p.newBinary(op, l, r), nil
		}
	}
	return l, nil
}

func (p *Parser) parseAdditive() (sqlast.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept("+"):
			op = "+"
		case p.accept("-"):
			op = "-"
		default:
			return l, nil
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = p.newBinary(op, l, r)
	}
}

func (p *Parser) parseMultiplicative() (sqlast.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept("*"):
			op = "*"
		case p.accept("/"):
			op = "/"
		case p.accept("%"):
			op = "%"
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = p.newBinary(op, l, r)
	}
}

func (p *Parser) parseUnary() (sqlast.Expr, error) {
	if p.accept("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(*sqlast.Literal); ok && lit.Value.IsNumeric() {
			// Fold the sign into the literal in place: the node came out
			// of our own arena a moment ago and nothing else points at it.
			if lit.Value.Kind() == sqltypes.KindInt {
				lit.Value = sqltypes.NewInt(-lit.Value.Int())
			} else {
				lit.Value = sqltypes.NewFloat(-lit.Value.Float())
			}
			return lit, nil
		}
		return p.newUnary("-", x), nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (sqlast.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case sqllex.TokNumber:
		p.pos++
		return p.newLiteral(sqltypes.ParseLiteral(t.Text, false)), nil
	case sqllex.TokString:
		p.pos++
		return p.newLiteral(sqltypes.NewText(t.Text)), nil
	case sqllex.TokKeyword:
		switch t.Text {
		case "NULL":
			p.pos++
			return p.newLiteral(sqltypes.Null()), nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX", "ABS":
			p.pos++
			return p.parseFuncCall(t.Text)
		case "SELECT":
			return nil, p.errorf("bare SELECT in expression position; parenthesize subqueries")
		}
		return nil, p.errorf("unexpected keyword %q", t.Text)
	case sqllex.TokIdent:
		p.pos++
		if p.accept(".") {
			nt := p.peek()
			if nt.Kind == sqllex.TokOp && nt.Text == "*" {
				p.pos++
				return p.newColumnRef(t.Text, "*"), nil
			}
			if nt.Kind != sqllex.TokIdent && nt.Kind != sqllex.TokKeyword {
				return nil, p.errorf("expected column name after the dot following %q", t.Text)
			}
			p.pos++
			return p.newColumnRef(t.Text, nt.Text), nil
		}
		return p.newColumnRef("", t.Text), nil
	case sqllex.TokOp:
		if t.Text == "(" {
			p.pos++
			if p.peek().Kind == sqllex.TokKeyword && p.peek().Text == "SELECT" {
				sub, err := p.parseSelectStmt()
				if err != nil {
					return nil, err
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				sq := p.subqs.alloc()
				sq.Sub = sub
				return sq, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.Text == "*" {
			p.pos++
			return p.newColumnRef("", "*"), nil
		}
	}
	return nil, p.errorf("unexpected token %q", t.Text)
}

func (p *Parser) parseFuncCall(name string) (sqlast.Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	fc := p.funcs.alloc()
	// name is the lexer's canonical keyword spelling, already upper-case;
	// ToUpper is a no-op kept for zero-value Parser safety.
	fc.Name = strings.ToUpper(name)
	if p.acceptKeyword("DISTINCT") {
		fc.Distinct = true
	}
	if p.accept("*") {
		fc.Star = true
	} else {
		mark := len(p.scratchExprs)
		for {
			e, err := p.parseExpr()
			if err != nil {
				p.scratchExprs = p.scratchExprs[:mark]
				return nil, err
			}
			if cr, ok := e.(*sqlast.ColumnRef); ok && cr.Column == "*" {
				fc.Star = true
			} else {
				p.scratchExprs = append(p.scratchExprs, e)
			}
			if !p.accept(",") {
				break
			}
		}
		fc.Args = p.exprs.allocSlice(p.scratchExprs[mark:])
		p.scratchExprs = p.scratchExprs[:mark]
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return fc, nil
}
