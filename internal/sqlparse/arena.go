package sqlparse

// slab is a chunked arena for AST nodes of one concrete type. Nodes are
// appended into fixed-capacity chunks, so element addresses are stable
// for the life of the chunk — handing out *T into a chunk is safe even
// as the slab grows. A slab supports two end-of-parse fates:
//
//   - reset: chunk memory is retained and reused by the next statement.
//     Everything previously allocated is invalidated (the bytes will be
//     overwritten), which is why arena-reuse parsing is only exposed
//     through the explicit Parser API with its documented lifetime rule.
//   - detach: the slab forgets its chunks. The parsed AST keeps the
//     backing arrays alive through its own pointers, so the nodes live
//     as long as the statement does and the next parse starts on fresh
//     chunks. This is the fate behind the package-level Parse.
//
// Compared to one heap allocation per node, a warm reset slab performs
// zero allocations and a detached slab performs one per chunk (dozens
// of nodes), which is where the front end's allocation budget goes from
// O(nodes) to O(1)-ish.
type slab[T any] struct {
	chunks [][]T // chunks[:live] are in use; chunks[live:] are spares kept by reset
	live   int
}

// slabChunkElems is the steady-state per-chunk element count. Large
// enough that a typical dev-set statement fits each node type in one
// chunk once the slab has warmed up.
const slabChunkElems = 32

// slabFirstChunkElems sizes a slab's very first chunk. Most node types
// appear a handful of times per statement (one SelectCore, a few joins),
// so a detached parse — which starts every slab from empty — would
// strand ~kilobytes per statement if first chunks were full-sized.
const slabFirstChunkElems = 4

// slabMaxSpares bounds how many empty chunks reset retains per slab, so
// one pathological statement doesn't pin its high-water mark forever in
// a pooled parser.
const slabMaxSpares = 4

// alloc returns a pointer to a zeroed T with a stable address.
func (s *slab[T]) alloc() *T {
	if s.live == 0 || len(s.chunks[s.live-1]) == cap(s.chunks[s.live-1]) {
		s.grow(1)
	}
	c := &s.chunks[s.live-1]
	var zero T
	*c = append(*c, zero)
	return &(*c)[len(*c)-1]
}

// allocSlice copies src into the arena and returns the copy with exact
// length and capacity, so appending to the result can never clobber a
// neighboring allocation. Empty input returns nil — the AST convention
// (and reflect.DeepEqual) distinguish nil from empty slices.
func (s *slab[T]) allocSlice(src []T) []T {
	if len(src) == 0 {
		return nil
	}
	if s.live == 0 || cap(s.chunks[s.live-1])-len(s.chunks[s.live-1]) < len(src) {
		s.grow(len(src))
	}
	c := &s.chunks[s.live-1]
	start := len(*c)
	*c = append(*c, src...)
	return (*c)[start : start+len(src) : start+len(src)]
}

func (s *slab[T]) grow(minElems int) {
	if s.live < len(s.chunks) {
		// A spare chunk from an earlier reset; recycle if it is big enough.
		if cap(s.chunks[s.live]) >= minElems {
			s.chunks[s.live] = s.chunks[s.live][:0]
			s.live++
			return
		}
	}
	size := slabChunkElems
	if len(s.chunks) == 0 {
		size = slabFirstChunkElems
	}
	if minElems > size {
		size = minElems
	}
	s.chunks = append(s.chunks, make([]T, 0, size))
	// Keep the fresh chunk at position live even when spares exist but
	// were too small.
	s.chunks[s.live], s.chunks[len(s.chunks)-1] = s.chunks[len(s.chunks)-1], s.chunks[s.live]
	s.live++
}

// reset invalidates all allocations, retaining at most slabMaxSpares
// chunks of memory for the next statement.
func (s *slab[T]) reset() {
	if len(s.chunks) > slabMaxSpares {
		s.chunks = s.chunks[:slabMaxSpares]
	}
	for i := range s.chunks {
		s.chunks[i] = s.chunks[i][:0]
	}
	s.live = 0
}

// detach transfers ownership of every chunk to the allocations made so
// far: the slab forgets them and the AST's own pointers keep them alive.
func (s *slab[T]) detach() {
	s.chunks = nil
	s.live = 0
}
