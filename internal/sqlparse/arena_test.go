package sqlparse

import (
	"fmt"
	"reflect"
	"testing"
)

// TestDetachedASTSurvivesPoolReuse is the safety property behind the
// package-level Parse: once detached, an AST must be immune to any
// amount of later parsing through the pool. sqleval caches plans by
// *SelectStmt pointer identity, so a recycled node would not just be
// corrupt — it would silently alias another statement's cached plan.
func TestDetachedASTSurvivesPoolReuse(t *testing.T) {
	const q = "SELECT t.name, count(*) AS n FROM people AS t WHERE t.age >= 21 AND t.city = 'Oslo' GROUP BY t.name HAVING count(*) > 2 ORDER BY n DESC LIMIT 5"
	stmt := MustParse(q)
	want := stmt.SQL()
	for i := 0; i < 200; i++ {
		MustParse(fmt.Sprintf("SELECT c%d FROM t%d WHERE x%d = %d", i, i, i, i))
	}
	if got := stmt.SQL(); got != want {
		t.Fatalf("detached AST mutated by pool reuse:\n got %q\nwant %q", got, want)
	}
	if !reflect.DeepEqual(stmt, MustParse(q)) {
		t.Fatal("detached AST no longer deep-equal to a fresh parse")
	}
}

// TestParserReuseMode exercises the explicit arena-reuse API: each
// Parse invalidates the previous statement but the current one must be
// fully usable, including across deep nesting that spans chunks.
func TestParserReuseMode(t *testing.T) {
	p := AcquireParser()
	defer ReleaseParser(p)
	queries := []string{
		"SELECT a FROM t WHERE a IN (SELECT b FROM u WHERE b > 1) AND c = 'x'",
		"SELECT count(*) FROM t JOIN u ON t.id = u.id WHERE u.v BETWEEN 1 AND 9",
		"SELECT a, b FROM t UNION SELECT c, d FROM u ORDER BY a LIMIT 3 OFFSET 1",
	}
	for _, q := range queries {
		got, err := p.Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		if want := MustParse(q); !reflect.DeepEqual(got, want) {
			t.Errorf("reuse-mode AST for %q differs from detached parse:\n got %s\nwant %s", q, got.SQL(), want.SQL())
		}
	}
}

// TestSlabStablePointers allocates far more nodes than one chunk holds
// and verifies no address ever moves, across growth, reset and reuse.
func TestSlabStablePointers(t *testing.T) {
	var s slab[int]
	for round := 0; round < 3; round++ {
		ptrs := make([]*int, 0, 5*slabChunkElems)
		for i := 0; i < 5*slabChunkElems; i++ {
			q := s.alloc()
			if *q != 0 {
				t.Fatalf("round %d: alloc %d not zeroed: %d", round, i, *q)
			}
			*q = i
			ptrs = append(ptrs, q)
		}
		for i, q := range ptrs {
			if *q != i {
				t.Fatalf("round %d: pointer %d moved or clobbered: got %d", round, i, *q)
			}
		}
		s.reset()
	}
}

// TestSlabAllocSliceCapacity checks the full-slice-expression contract:
// appending to an arena slice must reallocate rather than grow into a
// neighbor.
func TestSlabAllocSliceCapacity(t *testing.T) {
	var s slab[int]
	a := s.allocSlice([]int{1, 2})
	b := s.allocSlice([]int{3, 4})
	a = append(a, 99)
	if b[0] != 3 || b[1] != 4 {
		t.Fatalf("append into neighbor: b = %v", b)
	}
	if len(a) != 3 || a[2] != 99 {
		t.Fatalf("append lost: a = %v", a)
	}
	if s.allocSlice(nil) != nil {
		t.Fatal("empty allocSlice must return nil")
	}
}
