package sqlparse

import (
	"strings"
	"testing"

	"cyclesql/internal/sqlast"
)

// roundTrip parses, renders, re-parses and re-renders, asserting the two
// rendered forms agree. This is the core parser/renderer contract.
func roundTrip(t *testing.T, sql string) *sqlast.SelectStmt {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	first := stmt.SQL()
	stmt2, err := Parse(first)
	if err != nil {
		t.Fatalf("re-parse %q (from %q): %v", first, sql, err)
	}
	if second := stmt2.SQL(); second != first {
		t.Fatalf("round trip diverged:\n 1st %q\n 2nd %q", first, second)
	}
	return stmt
}

func TestParseSpiderCorpus(t *testing.T) {
	// Representative query shapes drawn from the paper and the Spider
	// benchmark family.
	corpus := []string{
		"SELECT count(*) FROM Flight AS T1 JOIN Aircraft AS T2 ON T1.aid = T2.aid WHERE T2.name = 'Airbus A340-300'",
		"SELECT name FROM country WHERE continent = 'Europe' AND population = 80000",
		"SELECT T1.name FROM Country AS T1 JOIN Countrylanguage AS T2 ON T1.code = T2.countrycode WHERE T2.language = 'English' INTERSECT SELECT T1.name FROM Country AS T1 JOIN Countrylanguage AS T2 ON T1.code = T2.countrycode WHERE T2.language = 'French'",
		"SELECT DISTINCT T2.name FROM Country AS T1 JOIN City AS T2 ON T1.code = T2.countrycode WHERE T1.Continent = 'Europe' AND T1.Name NOT IN (SELECT T3.name FROM Country AS T3 JOIN Countrylanguage AS T4 ON T3.code = T4.countrycode WHERE T4.isofficial = 'T' AND T4.language = 'English')",
		"SELECT count(T2.language), T1.name FROM Country AS T1 JOIN Countrylanguage AS T2 ON T1.code = T2.countrycode GROUP BY T1.name HAVING count(*) > 2",
		"SELECT name FROM singer ORDER BY age DESC LIMIT 1",
		"SELECT avg(age), min(age), max(age) FROM singer WHERE country = 'France'",
		"SELECT T2.name FROM concert AS T1 JOIN stadium AS T2 ON T1.stadium_id = T2.stadium_id GROUP BY T1.stadium_id ORDER BY count(*) DESC LIMIT 1",
		"SELECT name FROM stadium WHERE capacity BETWEEN 5000 AND 10000",
		"SELECT name FROM employee WHERE salary > (SELECT avg(salary) FROM employee)",
		"SELECT name FROM customer WHERE email LIKE '%gmail.com'",
		"SELECT count(DISTINCT country) FROM singer",
		"SELECT name FROM orchestra EXCEPT SELECT name FROM orchestra WHERE year = 2008",
		"SELECT sname FROM student WHERE NOT EXISTS (SELECT 1 FROM has_pet WHERE has_pet.stuid = student.stuid)",
		"SELECT name, capacity FROM stadium WHERE average > (SELECT avg(average) FROM stadium)",
		"SELECT T1.song_name FROM singer AS T1 LEFT JOIN song AS T2 ON T1.singer_id = T2.singer_id WHERE T2.sales IS NULL",
		"SELECT grade FROM highschooler GROUP BY grade HAVING count(*) >= 4",
		"SELECT name FROM singer WHERE singer_id NOT IN (SELECT singer_id FROM concert_singer)",
		"SELECT country, count(*) FROM singer GROUP BY country ORDER BY 2 DESC",
		"SELECT name FROM t WHERE a = 1 OR b = 2 AND c = 3",
		"SELECT max(age) - min(age) FROM dogs",
		"SELECT name FROM people ORDER BY height DESC, weight ASC LIMIT 3 OFFSET 2",
		"SELECT name FROM cars WHERE horsepower > 150 UNION ALL SELECT name FROM cars WHERE weight < 2000",
		"SELECT avg(t.salary) AS avg_sal FROM emp AS t GROUP BY t.dept",
		"SELECT * FROM Flight",
		"SELECT T1.* FROM Flight AS T1 JOIN Aircraft AS T2 ON T1.aid = T2.aid",
		"SELECT count(*) FROM (SELECT DISTINCT country FROM singer) AS sub",
		"SELECT abs(a - b) FROM t",
		"SELECT name FROM t WHERE id IN (1, 2, 3)",
		"SELECT name FROM t WHERE flag IS NOT NULL AND name NOT LIKE 'A%'",
	}
	for _, sql := range corpus {
		roundTrip(t, sql)
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	stmt := roundTrip(t, "SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
	where := stmt.Core().Where.(*sqlast.Binary)
	if where.Op != "OR" {
		t.Fatalf("OR must bind loosest, got %s", where.Op)
	}
	r := where.R.(*sqlast.Binary)
	if r.Op != "AND" {
		t.Fatalf("AND must nest under OR, got %s", r.Op)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	stmt := roundTrip(t, "SELECT a + b * c FROM t")
	e := stmt.Core().Items[0].Expr.(*sqlast.Binary)
	if e.Op != "+" {
		t.Fatalf("+ must be root, got %s", e.Op)
	}
	if inner := e.R.(*sqlast.Binary); inner.Op != "*" {
		t.Fatalf("* must nest, got %s", inner.Op)
	}
}

func TestParseCountStarVariants(t *testing.T) {
	for _, sql := range []string{"SELECT count(*) FROM t", "SELECT count(T1.*) FROM t AS T1"} {
		stmt := roundTrip(t, sql)
		fc := stmt.Core().Items[0].Expr.(*sqlast.FuncCall)
		if !fc.Star || fc.Name != "COUNT" {
			t.Fatalf("%q: expected COUNT(*), got %+v", sql, fc)
		}
	}
}

func TestParseCompoundOps(t *testing.T) {
	stmt := roundTrip(t, "SELECT a FROM t UNION SELECT b FROM u INTERSECT SELECT c FROM v")
	if len(stmt.Cores) != 3 || stmt.Ops[0] != sqlast.Union || stmt.Ops[1] != sqlast.Intersect {
		t.Fatalf("compound parse wrong: %d cores, ops %v", len(stmt.Cores), stmt.Ops)
	}
}

func TestParseLimitCommaForm(t *testing.T) {
	stmt := roundTrip(t, "SELECT a FROM t LIMIT 2, 5")
	c := stmt.Core()
	if c.Limit == nil || *c.Limit != 5 || c.Offset == nil || *c.Offset != 2 {
		t.Fatalf("LIMIT offset,count parsed wrong: %+v", c)
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	stmt := roundTrip(t, "SELECT a FROM t WHERE x = -5")
	cmp := stmt.Core().Where.(*sqlast.Binary)
	lit, ok := cmp.R.(*sqlast.Literal)
	if !ok || lit.Value.Int() != -5 {
		t.Fatalf("negative literal not folded: %#v", cmp.R)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t WHERE a IN (",
		"SELECT a FROM t trailing junk (",
		"UPDATE t SET a = 1",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) must fail", sql)
		}
	}
}

func TestParseAliasForms(t *testing.T) {
	stmt := roundTrip(t, "SELECT count(*) AS n FROM singer AS s")
	c := stmt.Core()
	if c.Items[0].Alias != "n" {
		t.Fatalf("item alias = %q", c.Items[0].Alias)
	}
	if c.From.Base.Alias != "s" {
		t.Fatalf("table alias = %q", c.From.Base.Alias)
	}
}

func TestMustParsePanicsOnBadSQL(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse must panic")
		}
	}()
	MustParse("not sql at all (")
}

func TestCloneIndependence(t *testing.T) {
	stmt := MustParse("SELECT a FROM t WHERE x = 1")
	clone := stmt.Clone()
	clone.Core().Where = nil
	clone.Core().Items[0].Alias = "z"
	if stmt.Core().Where == nil || stmt.Core().Items[0].Alias != "" {
		t.Fatal("Clone must not share structure")
	}
	if !strings.Contains(stmt.SQL(), "WHERE") {
		t.Fatal("original lost its WHERE")
	}
}

func TestConjunctsRoundtrip(t *testing.T) {
	stmt := MustParse("SELECT a FROM t WHERE x = 1 AND y = 2 AND z = 3")
	cs := sqlast.Conjuncts(stmt.Core().Where)
	if len(cs) != 3 {
		t.Fatalf("Conjuncts = %d, want 3", len(cs))
	}
	rebuilt := sqlast.FromAnd(cs)
	if sqlast.ExprSQL(rebuilt) != sqlast.ExprSQL(stmt.Core().Where) {
		t.Fatalf("FromAnd(Conjuncts(w)) != w: %s", sqlast.ExprSQL(rebuilt))
	}
}

func TestSubqueriesCollection(t *testing.T) {
	stmt := MustParse("SELECT a FROM t WHERE x IN (SELECT y FROM u) AND EXISTS (SELECT 1 FROM v) AND z > (SELECT max(w) FROM m)")
	if n := len(stmt.Core().Subqueries()); n != 3 {
		t.Fatalf("Subqueries = %d, want 3", n)
	}
}
