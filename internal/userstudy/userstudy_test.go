package userstudy

import (
	"testing"
)

func items() (grounded, blind Item) {
	q := "What is the total number of languages used in Aruba?"
	grounded = Item{
		Question: q,
		Result:   "4",
		Explanation: "The query output is a result set with one column and one row, filtered by country name Aruba. " +
			"In this specific result, country Aruba, whose country code is ABW, has four spoken languages. So the count of languages is 4.",
	}
	blind = Item{
		Question:    q,
		Result:      "4",
		Explanation: "Find the number of languages from country joined with country language where name is Aruba.",
	}
	return grounded, blind
}

func TestScoreRange(t *testing.T) {
	g, _ := items()
	for _, dim := range []Dimension{Interpretability, Entailment, Overall} {
		r := Score(g, dim, 1)
		if r.Mean < 1 || r.Mean > 10 || r.Min < 1 || r.Max > 10 || r.Min > r.Max {
			t.Fatalf("%s: rating out of range: %+v", dim, r)
		}
	}
}

// The paper's central comparative finding: the data-grounded explanation
// rates above the query-surface one, and most raters prefer it.
func TestGroundedExplanationPreferred(t *testing.T) {
	g, b := items()
	for _, dim := range []Dimension{Interpretability, Overall} {
		rg := Score(g, dim, 7)
		rb := Score(b, dim, 7)
		if rg.Mean <= rb.Mean {
			t.Fatalf("%s: grounded %.2f must beat blind %.2f", dim, rg.Mean, rb.Mean)
		}
	}
	if prefer := Compare(g, b, 7); prefer <= Participants/2 {
		t.Fatalf("majority must prefer the grounded explanation, got %d/%d", prefer, Participants)
	}
}

func TestScoreDeterministicPerSeed(t *testing.T) {
	g, _ := items()
	a := Score(g, Overall, 3)
	b := Score(g, Overall, 3)
	if a.Mean != b.Mean {
		t.Fatal("seeded scoring must be deterministic")
	}
	c := Score(g, Overall, 4)
	if a.Mean == c.Mean {
		t.Fatal("different seeds should perturb ratings")
	}
}

func TestVerdictBuckets(t *testing.T) {
	if (Rating{Mean: 8}).Verdict() != "great" || (Rating{Mean: 5}).Verdict() != "neutral" || (Rating{Mean: 2}).Verdict() != "bad" {
		t.Fatal("verdict buckets wrong")
	}
}
