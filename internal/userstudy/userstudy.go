// Package userstudy simulates the paper's user study (§V-B2, Fig 10):
// twenty participants with prior SQL knowledge score the explanations of
// five world_1 queries on two dimensions — query-result interpretability
// and textual entailment with the NL question — plus an overall rating,
// on a 1-10 scale.
//
// Human raters are unavailable offline; the simulation substitutes twenty
// seeded rater profiles that score rubric features of an explanation
// (grounding in concrete data values, coverage of the query's filters,
// interpretation of the result value, brevity) with per-rater weights and
// noise. The comparative finding — data-grounded CycleSQL explanations
// are preferred over query-surface GPT-3.5-style explanations — emerges
// from the rubric, not from hard-coded scores; absolute values are
// synthetic (see DESIGN.md "Substitutions").
package userstudy

import (
	"math/rand"

	"cyclesql/internal/textproc"
)

// Dimension is one scored aspect of an explanation.
type Dimension string

// The paper's two scored dimensions plus the overall rating.
const (
	Interpretability Dimension = "query result interpretability"
	Entailment       Dimension = "textual entailment with NL"
	Overall          Dimension = "overall"
)

// Rating summarizes the 1-10 scores of all participants for one
// explanation on one dimension.
type Rating struct {
	Dimension Dimension
	Mean      float64
	Min, Max  float64
}

// Verdict buckets a mean score the way the paper summarizes results.
func (r Rating) Verdict() string {
	switch {
	case r.Mean >= 7:
		return "great"
	case r.Mean >= 3:
		return "neutral"
	default:
		return "bad"
	}
}

// Item is one explanation under evaluation.
type Item struct {
	Question    string
	Result      string // textual rendering of the to-explain result
	Explanation string
}

// rater is one simulated participant: preference weights over rubric
// features plus personal noise.
type rater struct {
	wGrounding, wCoverage, wResult, wBrevity float64
	noise                                    float64
	rng                                      *rand.Rand
}

// Participants is the paper's panel size.
const Participants = 20

func panel(seed int64) []rater {
	rng := rand.New(rand.NewSource(seed))
	out := make([]rater, Participants)
	for i := range out {
		out[i] = rater{
			wGrounding: 2.4 + rng.Float64()*1.2,
			wCoverage:  2.4 + rng.Float64()*1.2,
			wResult:    1.6 + rng.Float64()*0.8,
			wBrevity:   0.6 + rng.Float64()*0.8,
			noise:      0.5 + rng.Float64()*0.5,
			rng:        rand.New(rand.NewSource(seed + int64(i)*101)),
		}
	}
	return out
}

// rubric computes the feature scores (each in [0,1]) of an explanation.
func rubric(item Item, dim Dimension) (grounding, coverage, result, brevity float64) {
	expl := textproc.Tokenize(item.Explanation)
	q := textproc.ContentTokens(item.Question)
	resToks := textproc.Tokenize(item.Result)
	// Grounding: does the explanation cite concrete values (numbers or the
	// result tuple's values)?
	nums := textproc.Numbers(item.Explanation)
	grounding = clamp01(float64(len(nums))/3.0)*0.5 + 0.5*textproc.Recall(resToks, expl)
	// Coverage: how much of the question's content the explanation echoes.
	coverage = textproc.Recall(q, expl)
	// Result interpretation: the result value must be explained, not just
	// printed — approximated by the result tokens appearing amid prose.
	result = textproc.Recall(resToks, expl)
	// Brevity: raters discount walls of text.
	brevity = clamp01(2.0 - float64(len(expl))/60.0)
	if dim == Entailment {
		// The entailment dimension weighs question coverage double.
		coverage = clamp01(coverage * 1.2)
	}
	return grounding, coverage, result, brevity
}

// Score runs the panel over one item and dimension.
func Score(item Item, dim Dimension, seed int64) Rating {
	raters := panel(seed)
	r := Rating{Dimension: dim, Min: 10, Max: 1}
	total := 0.0
	for _, p := range raters {
		g, c, res, b := rubric(item, dim)
		raw := p.wGrounding*g + p.wCoverage*c + p.wResult*res + p.wBrevity*b
		// Map rubric mass (max ~8.4) onto 1..10 with personal noise.
		score := 1 + raw + p.rng.NormFloat64()*p.noise
		if score < 1 {
			score = 1
		}
		if score > 10 {
			score = 10
		}
		total += score
		if score < r.Min {
			r.Min = score
		}
		if score > r.Max {
			r.Max = score
		}
	}
	r.Mean = total / float64(Participants)
	return r
}

// Compare scores two competing explanations of the same item and reports
// how many of the panel prefer the first (paper: 14 of 20 preferred
// CycleSQL).
func Compare(a, b Item, seed int64) (preferA int) {
	raters := panel(seed)
	for i, p := range raters {
		ga, ca, ra, ba := rubric(a, Overall)
		gb, cb, rb, bb := rubric(b, Overall)
		sa := p.wGrounding*ga + p.wCoverage*ca + p.wResult*ra + p.wBrevity*ba + p.rng.NormFloat64()*p.noise
		sb := p.wGrounding*gb + p.wCoverage*cb + p.wResult*rb + p.wBrevity*bb + p.rng.NormFloat64()*p.noise
		_ = i
		if sa > sb {
			preferA++
		}
	}
	return preferA
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
