package frontdiff

import (
	"reflect"
	"testing"

	"cyclesql/internal/sqllex"
	"cyclesql/internal/sqlnorm"
	"cyclesql/internal/sqloracle"
	"cyclesql/internal/sqlparse"
)

// fuzzSeeds prime all three fuzz targets with inputs that reach every
// lexer state (quote escaping, scientific numbers, operator pairs) and
// every parser production (set ops, joins, subqueries, HAVING, negative
// literal folding), plus deliberately broken inputs so the error paths
// stay covered. testdata/fuzz/ holds the same seeds in corpus form.
var fuzzSeeds = []string{
	"SELECT * FROM t",
	"SELECT DISTINCT a, b FROM t WHERE 5 > a AND b != 'x' ORDER BY a DESC LIMIT 3 OFFSET 1",
	"SELECT count(*) FROM t GROUP BY a HAVING count(*) > 1 LIMIT 2, 5",
	"SELECT T1.a FROM t AS T1 JOIN u AS T2 ON T1.k = T2.k LEFT OUTER JOIN v ON v.id = T1.id",
	"SELECT a FROM t WHERE a IN (SELECT b FROM u) UNION SELECT c FROM w",
	"SELECT a FROM t WHERE x BETWEEN 1 AND 2 OR NOT EXISTS (SELECT 1 FROM u)",
	"SELECT 'O''Brien', \"co\"\"l\", `tick` FROM t",
	"SELECT -1.5e-3, .5, 1e9, abs(-2) FROM t WHERE a IS NOT NULL AND b <> 0",
	"SELECT a FROM t WHERE s LIKE '%x_' AND t.b NOT IN (1, 2.0, NULL)",
	"select Sum ( t . `a` ) from T where not ( x = 1 ) and y <= 'é'",
	"SELECT 'unterminated",
	"SELECT # FROM t",
	"SELECT a FROM",
	"",
}

// FuzzLex: both lexers must agree on the verdict and, when they accept,
// on the exact token stream (kind, text, and byte offset). Neither may
// panic on any input.
func FuzzLex(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		oToks, oErr := sqloracle.Lex(sql)
		nToks, nErr := sqllex.Lex(sql)
		if (oErr == nil) != (nErr == nil) {
			t.Fatalf("lex verdict divergence on %q: oracle err=%v, new err=%v", sql, oErr, nErr)
		}
		if oErr == nil && !reflect.DeepEqual(oToks, nToks) {
			t.Fatalf("token divergence on %q:\noracle: %+v\nnew:    %+v", sql, oToks, nToks)
		}
	})
}

// FuzzParse: both parsers must agree on the verdict and, when they
// accept, produce deeply-equal ASTs. Neither may panic on any input.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		oStmt, oErr := sqloracle.Parse(sql)
		nStmt, nErr := sqlparse.Parse(sql)
		if (oErr == nil) != (nErr == nil) {
			t.Fatalf("parse verdict divergence on %q: oracle err=%v, new err=%v", sql, oErr, nErr)
		}
		if oErr == nil && !reflect.DeepEqual(oStmt, nStmt) {
			t.Fatalf("AST divergence on %q:\noracle: %s\nnew:    %s", sql, oStmt.SQL(), nStmt.SQL())
		}
	})
}

// FuzzCacheKey: for every input both engines parse, the one-pass
// canonical key must equal the oracle's clone-normalize-render key, and
// the string-in key must match the AST-in key.
func FuzzCacheKey(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		oStmt, oErr := sqloracle.Parse(sql)
		nStmt, nErr := sqlparse.Parse(sql)
		if (oErr == nil) != (nErr == nil) {
			t.Fatalf("parse verdict divergence on %q: oracle err=%v, new err=%v", sql, oErr, nErr)
		}
		if oErr != nil {
			if _, err := sqlnorm.CacheKeyOf(sql); err == nil {
				t.Fatalf("CacheKeyOf accepted %q but both parsers rejected it", sql)
			}
			return
		}
		oKey := sqloracle.CacheKey(oStmt)
		nKey := sqlnorm.CacheKey(nStmt)
		if oKey != nKey {
			t.Fatalf("CacheKey divergence on %q:\noracle: %q\nnew:    %q", sql, oKey, nKey)
		}
		if direct, err := sqlnorm.CacheKeyOf(sql); err != nil || direct != nKey {
			t.Fatalf("CacheKeyOf divergence on %q: key %q err %v, want %q", sql, direct, err, nKey)
		}
	})
}
