// Package frontdiff is the differential harness that holds the
// zero-allocation SQL front end (sqllex, sqlparse, sqlnorm.CacheKey)
// bit-identical to the seed implementation preserved in
// internal/sqloracle. Every corpus — the 200 Spider dev queries, the
// 480 seeded-random property queries, and every SQL-looking string
// literal already present in the repo's tests and testdata — must
// produce identical token streams, deeply-equal ASTs, byte-identical
// CacheKeys, and identical ok/error verdicts through both engines.
// The fuzz targets in fuzz_test.go extend the same oracle-agreement
// property to arbitrary bytes.
package frontdiff

import (
	"reflect"
	"testing"

	"cyclesql/internal/datasets"
	"cyclesql/internal/sqlgen"
	"cyclesql/internal/sqllex"
	"cyclesql/internal/sqlnorm"
	"cyclesql/internal/sqloracle"
	"cyclesql/internal/sqlparse"
)

// assertParity runs one input through both front ends and fails on any
// observable divergence. It returns the new engine's AST when both
// engines accept the input, nil otherwise.
func assertParity(t *testing.T, sql string) bool {
	t.Helper()
	oToks, oLexErr := sqloracle.Lex(sql)
	nToks, nLexErr := sqllex.Lex(sql)
	if (oLexErr == nil) != (nLexErr == nil) {
		t.Errorf("lex verdict divergence on %q: oracle err=%v, new err=%v", sql, oLexErr, nLexErr)
		return false
	}
	if oLexErr == nil && !reflect.DeepEqual(oToks, nToks) {
		for i := range oToks {
			if i >= len(nToks) || oToks[i] != nToks[i] {
				t.Errorf("token divergence on %q at token %d: oracle %+v, new %+v", sql, i, oToks[i], tokAt(nToks, i))
				return false
			}
		}
		t.Errorf("token count divergence on %q: oracle %d, new %d", sql, len(oToks), len(nToks))
		return false
	}
	oStmt, oErr := sqloracle.Parse(sql)
	nStmt, nErr := sqlparse.Parse(sql)
	if (oErr == nil) != (nErr == nil) {
		t.Errorf("parse verdict divergence on %q: oracle err=%v, new err=%v", sql, oErr, nErr)
		return false
	}
	if oErr != nil {
		return false
	}
	if !reflect.DeepEqual(oStmt, nStmt) {
		t.Errorf("AST divergence on %q:\noracle: %s\nnew:    %s", sql, oStmt.SQL(), nStmt.SQL())
		return false
	}
	oKey := sqloracle.CacheKey(oStmt)
	nKey := sqlnorm.CacheKey(nStmt)
	if oKey != nKey {
		t.Errorf("CacheKey divergence on %q:\noracle: %q\nnew:    %q", sql, oKey, nKey)
		return false
	}
	directKey, err := sqlnorm.CacheKeyOf(sql)
	if err != nil || directKey != nKey {
		t.Errorf("CacheKeyOf divergence on %q: key %q err %v, want %q", sql, directKey, err, nKey)
		return false
	}
	return true
}

func tokAt(toks []sqllex.Token, i int) any {
	if i < len(toks) {
		return toks[i]
	}
	return "<missing>"
}

// parseableCorpus returns every corpus query both engines accept,
// asserting full parity along the way.
func parseableCorpus(t *testing.T, queries []string) []string {
	t.Helper()
	var ok []string
	for _, q := range queries {
		if assertParity(t, q) {
			ok = append(ok, q)
		}
	}
	return ok
}

func TestSpiderDevParity(t *testing.T) {
	dev := datasets.Spider().Dev
	if len(dev) < 200 {
		t.Fatalf("Spider dev set has %d examples, want at least 200", len(dev))
	}
	for _, ex := range dev {
		assertParity(t, ex.GoldSQL)
	}
}

func TestPropertyCorpusParity(t *testing.T) {
	qs := sqlgen.PropertyQueries()
	if len(qs) != sqlgen.SingleTableCount+sqlgen.JoinCount {
		t.Fatalf("property corpus has %d queries, want %d", len(qs), sqlgen.SingleTableCount+sqlgen.JoinCount)
	}
	parseableCorpus(t, qs)
}

// TestTestdataSQLParity differentially checks every SQL-looking string
// literal already present in the repo's Go sources (fixtures, error
// cases, benchmarks) and JSON testdata. Invalid SQL is as valuable as
// valid SQL here: both engines must reject it alike.
func TestTestdataSQLParity(t *testing.T) {
	lits := harvestSQLLiterals(t)
	if len(lits) < 50 {
		t.Fatalf("harvested only %d SQL literals; harvesting is likely broken", len(lits))
	}
	accepted := 0
	for _, sql := range lits {
		if assertParity(t, sql) {
			accepted++
		}
	}
	t.Logf("testdata corpus: %d literals, %d parseable", len(lits), accepted)
}

// TestRoundTripParity is the round-trip property: for every parseable
// corpus statement, AST.SQL() re-parses — through both engines — to a
// statement with an identical CacheKey and a byte-stable re-render, and
// from the second parse onward the AST itself is a fixpoint. (The first
// hop may fold numeric spelling — the renderer writes the float 7.0 as
// "7", which re-parses as an integer — but CacheKey renders both the
// same way, so the key never moves.) Literal-first comparisons keep
// their oriented CacheKey across the round trip even though the
// rendered SQL preserves the original operand order.
func TestRoundTripParity(t *testing.T) {
	var corpus []string
	for _, ex := range datasets.Spider().Dev {
		corpus = append(corpus, ex.GoldSQL)
	}
	corpus = append(corpus, sqlgen.PropertyQueries()...)
	for _, q := range parseableCorpus(t, corpus) {
		stmt := sqlparse.MustParse(q)
		rendered := stmt.SQL()
		if !assertParity(t, rendered) {
			continue
		}
		stmt2, err := sqlparse.Parse(rendered)
		if err != nil {
			t.Errorf("round trip of %q failed to re-parse %q: %v", q, rendered, err)
			continue
		}
		if k1, k2 := sqlnorm.CacheKey(stmt), sqlnorm.CacheKey(stmt2); k1 != k2 {
			t.Errorf("round trip of %q not CacheKey-stable:\nfirst:  %q\nsecond: %q", q, k1, k2)
			continue
		}
		r2 := stmt2.SQL()
		if r2 != rendered {
			t.Errorf("round trip of %q not render-stable:\nfirst:  %q\nsecond: %q", q, rendered, r2)
			continue
		}
		stmt3, err := sqlparse.Parse(r2)
		if err != nil {
			t.Errorf("round trip of %q failed third parse of %q: %v", q, r2, err)
			continue
		}
		if !reflect.DeepEqual(stmt2, stmt3) {
			t.Errorf("round trip of %q not an AST fixpoint after one hop:\nrender: %s", q, r2)
		}
	}
}

// TestCacheKeyOrientation pins the PR 5 literal-first orientation
// property through the one-pass renderer: operand-swapped comparisons in
// predicate positions share a key; in projection positions they do not.
func TestCacheKeyOrientation(t *testing.T) {
	same := [][2]string{
		{"SELECT a FROM t WHERE 5 > a", "SELECT a FROM t WHERE a < 5"},
		{"SELECT a FROM t WHERE 'x' = b AND a <= 3", "SELECT a FROM t WHERE 3 >= a AND b = 'x'"},
		{"SELECT count(*) FROM t GROUP BY a HAVING 2 < count(*)", "SELECT count(*) FROM t GROUP BY a HAVING count(*) > 2"},
		// Projection spelling must match: the key's appendix preserves
		// output labels verbatim, so only FROM/ON/WHERE may vary case.
		{"SELECT T.a FROM T JOIN U ON 1 = T.k WHERE T.b = 2", "SELECT T.a FROM t JOIN u ON t.k = 1 WHERE 2 = t.b"},
	}
	for _, pair := range same {
		k0 := sqlnorm.CacheKey(sqlparse.MustParse(pair[0]))
		k1 := sqlnorm.CacheKey(sqlparse.MustParse(pair[1]))
		if k0 != k1 {
			t.Errorf("CacheKey(%q) != CacheKey(%q):\n%q\n%q", pair[0], pair[1], k0, k1)
		}
	}
	// Projection items are labels, hence observable: no orientation there.
	p0 := sqlnorm.CacheKey(sqlparse.MustParse("SELECT 5 > a FROM t"))
	p1 := sqlnorm.CacheKey(sqlparse.MustParse("SELECT a < 5 FROM t"))
	if p0 == p1 {
		t.Error("projection-position comparison must not be oriented")
	}
}
