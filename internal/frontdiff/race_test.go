//go:build race

package frontdiff

// raceEnabled reports whether the race detector is compiled in. Under
// -race, sync.Pool randomly drops pooled values to surface races, so
// the absolute allocation gates are skipped (the race-instrumented
// test job still runs every parity and fuzz-seed assertion).
const raceEnabled = true
