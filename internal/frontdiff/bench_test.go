package frontdiff

import (
	"testing"

	"cyclesql/internal/sqllex"
	"cyclesql/internal/sqlnorm"
	"cyclesql/internal/sqloracle"
	"cyclesql/internal/sqlparse"
)

// benchQuery is a representative Spider-dev-shaped statement: aliased
// join, WHERE, GROUP BY + HAVING with aggregates, ORDER BY and LIMIT.
const benchQuery = "SELECT T1.name, count(*) FROM singer AS T1 JOIN concert AS T2 ON T1.id = T2.singer_id WHERE T2.year = 2014 GROUP BY T1.name HAVING count(*) > 1 ORDER BY T1.name LIMIT 5"

// TestParseAllocGate is the allocation regression gate for the
// zero-allocation front end, in the style of the sqleval index gates:
// a warm pooled parse of the representative query must stay within 9
// allocations, and CacheKeyOf of an already-interned shape within 1.
// Measured values are recorded in BENCH_PR9.json; if an intentional
// change moves them, update both.
func TestParseAllocGate(t *testing.T) {
	if raceEnabled {
		t.Skip("absolute alloc gates are meaningless under -race (sync.Pool randomly drops values)")
	}
	p := sqlparse.AcquireParser()
	defer sqlparse.ReleaseParser(p)
	if _, err := p.Parse(benchQuery); err != nil {
		t.Fatal(err)
	}
	parseAllocs := testing.AllocsPerRun(200, func() {
		if _, err := p.Parse(benchQuery); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("warm pooled parse: %.1f allocs/op", parseAllocs)
	if parseAllocs > 9 {
		t.Errorf("warm pooled parse costs %.1f allocs/op, gate is 9", parseAllocs)
	}
	if _, err := sqlnorm.CacheKeyOf(benchQuery); err != nil {
		t.Fatal(err)
	}
	keyAllocs := testing.AllocsPerRun(200, func() {
		if _, err := sqlnorm.CacheKeyOf(benchQuery); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("warm interned CacheKeyOf: %.1f allocs/op", keyAllocs)
	if keyAllocs > 1 {
		t.Errorf("warm interned CacheKeyOf costs %.1f allocs/op, gate is 1", keyAllocs)
	}
}

func BenchmarkLexSeed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqloracle.Lex(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLexNew(b *testing.B) {
	b.ReportAllocs()
	var toks []sqllex.Token
	for i := 0; i < b.N; i++ {
		var err error
		toks, err = sqllex.LexInto(benchQuery, toks[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseSeed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqloracle.Parse(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseNewPooled is the arena-reuse mode: the AST is valid
// only until the next Parse on the same parser — the shape CacheKeyOf
// and other bounded-lifetime callers use.
func BenchmarkParseNewPooled(b *testing.B) {
	b.ReportAllocs()
	p := sqlparse.AcquireParser()
	defer sqlparse.ReleaseParser(p)
	for i := 0; i < b.N; i++ {
		if _, err := p.Parse(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseNewDetached is what package-level Parse gives every
// caller: the arena detaches so the AST lives arbitrarily long (the
// sqleval plan cache keys on its pointer identity).
func BenchmarkParseNewDetached(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqlparse.Parse(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheKeySeed(b *testing.B) {
	stmt := sqlparse.MustParse(benchQuery)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sqloracle.CacheKey(stmt)
	}
}

func BenchmarkCacheKeyNew(b *testing.B) {
	stmt := sqlparse.MustParse(benchQuery)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sqlnorm.CacheKey(stmt)
	}
}

// BenchmarkCacheKeyOfNew is the end-to-end string-in key-out path
// (pooled parse + one-pass render + intern), the whole front end in one
// call.
func BenchmarkCacheKeyOfNew(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqlnorm.CacheKeyOf(benchQuery); err != nil {
			b.Fatal(err)
		}
	}
}
