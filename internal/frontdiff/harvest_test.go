package frontdiff

import (
	"encoding/json"
	"go/scanner"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// harvestSQLLiterals walks the repository and collects every string that
// looks like SQL: Go string literals (interpreted and raw, from sources
// and tests alike) plus string values inside JSON testdata. The yield is
// deliberately over-inclusive — format strings and deliberately broken
// fixtures are kept, because the differential property being tested is
// verdict agreement, not validity.
func harvestSQLLiterals(t *testing.T) []string {
	t.Helper()
	root := repoRoot(t)
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "fuzz" {
				// testdata/fuzz corpora are exercised by the fuzz
				// targets themselves with the same oracle assertions.
				return filepath.SkipDir
			}
			return nil
		}
		switch filepath.Ext(path) {
		case ".go":
			harvestGoFile(t, path, seen)
		case ".json":
			harvestJSONFile(t, path, seen)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking repo: %v", err)
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func repoRoot(t *testing.T) string {
	t.Helper()
	// The test runs with the package directory as CWD: internal/frontdiff.
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root %s has no go.mod: %v", root, err)
	}
	return root
}

func harvestGoFile(t *testing.T, path string, seen map[string]bool) {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	fset := token.NewFileSet()
	var sc scanner.Scanner
	sc.Init(fset.AddFile(path, fset.Base(), len(src)), src, nil, 0)
	for {
		_, tok, lit := sc.Scan()
		if tok == token.EOF {
			break
		}
		if tok != token.STRING {
			continue
		}
		s, err := strconv.Unquote(lit)
		if err != nil {
			continue
		}
		if looksLikeSQL(s) {
			seen[s] = true
		}
	}
}

func harvestJSONFile(t *testing.T, path string, seen map[string]bool) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("opening %s: %v", path, err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	for {
		tok, err := dec.Token()
		if err != nil {
			return // EOF or malformed testdata; either way, done
		}
		if s, ok := tok.(string); ok && looksLikeSQL(s) {
			seen[s] = true
		}
	}
}

func looksLikeSQL(s string) bool {
	if len(s) < 8 || len(s) > 4096 {
		return false
	}
	up := strings.ToUpper(s)
	return strings.Contains(up, "SELECT ") || strings.Contains(up, "SELECT\t")
}
