// Package sql2nl implements the "simple" SQL-to-NL back-translation that
// the paper uses as its ablation baseline (§I, Fig 2; §V-A4, Fig 9): a
// direct description of the query surface with no data grounding. Its
// explanations read fluently but — exactly as the paper argues — carry no
// information beyond the NL and SQL components, which makes them weak
// feedback for verification.
package sql2nl

import (
	"fmt"
	"strings"

	"cyclesql/internal/provenance"
	"cyclesql/internal/schema"
	"cyclesql/internal/sqlast"
)

// Describe renders the query surface as an NL sentence. It intentionally
// consumes only the SQL text and the schema, never the database instance.
func Describe(s *schema.Schema, stmt *sqlast.SelectStmt) string {
	parts := make([]string, 0, len(stmt.Cores))
	for i, core := range stmt.Cores {
		text := describeCore(s, core)
		if i > 0 {
			switch stmt.Ops[i-1] {
			case sqlast.Intersect:
				text = "that also satisfy: " + text
			case sqlast.Except:
				text = "excluding those where: " + text
			default:
				text = "or: " + text
			}
		}
		parts = append(parts, text)
	}
	out := strings.Join(parts, " ")
	out = strings.ToUpper(out[:1]) + out[1:]
	if !strings.HasSuffix(out, ".") {
		out += "."
	}
	return out
}

func describeCore(s *schema.Schema, core *sqlast.SelectCore) string {
	var b strings.Builder
	b.WriteString("find ")
	if core.Distinct {
		b.WriteString("the distinct ")
	}
	b.WriteString(itemsPhrase(core))
	// FROM phrase.
	tables := core.Tables()
	if len(tables) > 0 {
		b.WriteString(" from ")
		names := make([]string, 0, len(tables))
		for _, t := range tables {
			if t.Name == "" {
				continue
			}
			if st := s.Table(t.Name); st != nil {
				names = append(names, st.Natural())
			} else {
				names = append(names, schema.Naturalize(t.Name))
			}
		}
		b.WriteString(strings.Join(names, " joined with "))
	}
	if fs := provenance.Filters(core); len(fs) > 0 {
		b.WriteString(" where ")
		for i, f := range fs {
			if i > 0 {
				b.WriteString(" and ")
			}
			fmt.Fprintf(&b, "%s %s %s", schema.Naturalize(f.Column.Column), opWord(f.Op), f.Value.String())
		}
	}
	// Membership and pattern predicates.
	for _, c := range sqlast.Conjuncts(core.Where) {
		switch x := c.(type) {
		case *sqlast.InExpr:
			cr, ok := x.X.(*sqlast.ColumnRef)
			if !ok {
				continue
			}
			if x.Not {
				fmt.Fprintf(&b, " where %s is not in the given set", schema.Naturalize(cr.Column))
			} else {
				fmt.Fprintf(&b, " where %s is in the given set", schema.Naturalize(cr.Column))
			}
		case *sqlast.ExistsExpr:
			if x.Not {
				b.WriteString(" with no matching related rows")
			} else {
				b.WriteString(" with matching related rows")
			}
		}
	}
	if len(core.GroupBy) > 0 {
		keys := make([]string, 0, len(core.GroupBy))
		for _, g := range core.GroupBy {
			if cr, ok := g.(*sqlast.ColumnRef); ok {
				keys = append(keys, schema.Naturalize(cr.Column))
			}
		}
		fmt.Fprintf(&b, " for each %s", strings.Join(keys, " and "))
	}
	if core.Having != nil {
		fmt.Fprintf(&b, " keeping groups with %s", strings.ToLower(sqlast.ExprSQL(core.Having)))
	}
	if len(core.OrderBy) > 0 {
		dirs := make([]string, 0, len(core.OrderBy))
		for _, o := range core.OrderBy {
			d := "ascending"
			if o.Desc {
				d = "descending"
			}
			dirs = append(dirs, fmt.Sprintf("%s %s", strings.ToLower(sqlast.ExprSQL(o.Expr)), d))
		}
		fmt.Fprintf(&b, " ordered by %s", strings.Join(dirs, ", "))
	}
	if core.Limit != nil {
		fmt.Fprintf(&b, " returning the top %d", *core.Limit)
	}
	return b.String()
}

func itemsPhrase(core *sqlast.SelectCore) string {
	var parts []string
	for _, it := range core.Items {
		switch {
		case it.Star:
			parts = append(parts, "all information")
		default:
			switch x := it.Expr.(type) {
			case *sqlast.ColumnRef:
				parts = append(parts, "the "+schema.Naturalize(x.Column))
			case *sqlast.FuncCall:
				name := strings.ToLower(x.Name)
				if x.Star || len(x.Args) == 0 {
					parts = append(parts, "the "+aggWord(name)+" of rows")
				} else {
					parts = append(parts, fmt.Sprintf("the %s of %s", aggWord(name), schema.Naturalize(sqlast.ExprSQL(x.Args[0]))))
				}
			default:
				parts = append(parts, strings.ToLower(sqlast.ExprSQL(it.Expr)))
			}
		}
	}
	if len(parts) == 0 {
		return "the rows"
	}
	return strings.Join(parts, " and ")
}

func aggWord(fn string) string {
	switch fn {
	case "count":
		return "number"
	case "sum":
		return "total"
	case "avg":
		return "average"
	case "min":
		return "minimum"
	case "max":
		return "maximum"
	}
	return fn
}

func opWord(op string) string {
	switch op {
	case "=":
		return "is"
	case "!=", "<>":
		return "is not"
	case "<":
		return "is less than"
	case "<=":
		return "is at most"
	case ">":
		return "is greater than"
	case ">=":
		return "is at least"
	case "LIKE":
		return "is like"
	case "NOT LIKE":
		return "is not like"
	}
	return op
}
