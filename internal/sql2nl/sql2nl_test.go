package sql2nl

import (
	"strings"
	"testing"

	"cyclesql/internal/datasets"
	"cyclesql/internal/sqlparse"
)

func describe(t *testing.T, sql string) string {
	t.Helper()
	db := datasets.FlightDB()
	return Describe(db.Schema, sqlparse.MustParse(sql))
}

// The paper's Fig 2 point: the SQL2NL description of the erroneous count
// query reads plausibly ("the number of flights...") with no hint that the
// data contradicts the question.
func TestDescribePaperExample(t *testing.T) {
	got := describe(t, "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.name = 'Airbus A340-300'")
	lower := strings.ToLower(got)
	for _, want := range []string{"number", "flight", "aircraft", "airbus a340-300"} {
		if !strings.Contains(lower, want) {
			t.Fatalf("missing %q in %q", want, got)
		}
	}
	// Data-blindness: no concrete count value appears.
	if strings.Contains(got, " 2 ") {
		t.Fatalf("sql2nl must not ground data values: %q", got)
	}
}

func TestDescribeClauses(t *testing.T) {
	got := describe(t, "SELECT DISTINCT origin FROM flight GROUP BY origin ORDER BY origin DESC LIMIT 3")
	lower := strings.ToLower(got)
	for _, want := range []string{"distinct", "for each origin", "descending", "top 3"} {
		if !strings.Contains(lower, want) {
			t.Fatalf("missing %q in %q", want, got)
		}
	}
}

func TestDescribeAggregates(t *testing.T) {
	got := describe(t, "SELECT avg(distance), max(distance) FROM aircraft")
	lower := strings.ToLower(got)
	if !strings.Contains(lower, "average") || !strings.Contains(lower, "maximum") {
		t.Fatalf("aggregate words missing: %q", got)
	}
}

func TestDescribeSetOps(t *testing.T) {
	got := describe(t, "SELECT origin FROM flight INTERSECT SELECT destination FROM flight")
	if !strings.Contains(got, "also satisfy") {
		t.Fatalf("intersect connective missing: %q", got)
	}
	got = describe(t, "SELECT origin FROM flight EXCEPT SELECT destination FROM flight")
	if !strings.Contains(got, "excluding") {
		t.Fatalf("except connective missing: %q", got)
	}
}

func TestDescribeMembershipAndExists(t *testing.T) {
	got := describe(t, "SELECT name FROM aircraft WHERE aid NOT IN (SELECT aid FROM flight)")
	if !strings.Contains(got, "not in the given set") {
		t.Fatalf("not-in phrase missing: %q", got)
	}
}

func TestDescribeEndsWithPeriodAndCapital(t *testing.T) {
	got := describe(t, "SELECT name FROM aircraft")
	if !strings.HasSuffix(got, ".") || got[0] < 'A' || got[0] > 'Z' {
		t.Fatalf("surface form: %q", got)
	}
}

func TestDescribeDeterministic(t *testing.T) {
	a := describe(t, "SELECT name FROM aircraft WHERE distance > 4000")
	b := describe(t, "SELECT name FROM aircraft WHERE distance > 4000")
	if a != b {
		t.Fatal("must be deterministic")
	}
}
