package explain

import (
	"strings"
	"sync"
	"testing"

	"cyclesql/internal/datasets"
	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqleval"
	"cyclesql/internal/sqlparse"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

func explainSQL(t *testing.T, db *storage.Database, sql string, rowIdx int) *Explanation {
	t.Helper()
	stmt := sqlparse.MustParse(sql)
	rel, err := sqleval.New(db).Exec(stmt)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	e := New(db)
	exp, err := e.Explain(stmt, rel, rowIdx)
	if err != nil {
		t.Fatal(err)
	}
	return exp
}

// The paper's motivating example (Fig 2 / Example 1): the explanation of
// the erroneous count query must surface both the filter and the count 2 —
// exactly the signal that lets the verifier reject the translation.
func TestExplainPaperMotivatingExample(t *testing.T) {
	db := datasets.FlightDB()
	exp := explainSQL(t, db, "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.name = 'Airbus A340-300'", 0)
	text := strings.ToLower(exp.Text)
	for _, want := range []string{"one column", "aggregation type (count)", "one row", "airbus a340-300", "2 flights in total"} {
		if !strings.Contains(text, want) {
			t.Errorf("explanation missing %q:\n%s", want, exp.Text)
		}
	}
}

// The correct translation's explanation lists flight numbers, not counts.
func TestExplainCorrectTranslationDiffers(t *testing.T) {
	db := datasets.FlightDB()
	wrong := explainSQL(t, db, "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.name = 'Airbus A340-300'", 0)
	right := explainSQL(t, db, "SELECT T1.flno FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.name = 'Airbus A340-300'", 0)
	if wrong.Text == right.Text {
		t.Fatal("correct and incorrect translations must explain differently")
	}
	if !strings.Contains(strings.ToLower(right.Text), "flno") && !strings.Contains(right.Text, "7") {
		t.Fatalf("correct explanation must ground the flight number:\n%s", right.Text)
	}
}

// Paper Table IV Q2: simple lookup explanation grounds the value.
func TestExplainSimpleLookup(t *testing.T) {
	db := datasets.WorldDB()
	exp := explainSQL(t, db, "SELECT continent FROM country WHERE name = 'Anguilla'", 0)
	text := strings.ToLower(exp.Text)
	if !strings.Contains(text, "anguilla") || !strings.Contains(text, "north america") {
		t.Fatalf("lookup explanation:\n%s", exp.Text)
	}
}

// Paper Table IV Q5: grouped query with HAVING.
func TestExplainGroupedHaving(t *testing.T) {
	db := datasets.WorldDB()
	sql := "SELECT count(T2.language), T1.name FROM country AS T1 JOIN countrylanguage AS T2 ON T1.code = T2.countrycode GROUP BY T1.name HAVING count(*) > 2"
	stmt := sqlparse.MustParse(sql)
	rel, err := sqleval.New(db).Exec(stmt)
	if err != nil {
		t.Fatal(err)
	}
	// Find Iraq's row.
	idx := -1
	for i, row := range rel.Rows {
		if row[1].Text() == "Iraq" {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatalf("no Iraq row: %v", rel.Rows)
	}
	exp, err := New(db).Explain(stmt, rel, idx)
	if err != nil {
		t.Fatal(err)
	}
	text := strings.ToLower(exp.Text)
	if !strings.Contains(text, "iraq") {
		t.Fatalf("group pin missing:\n%s", exp.Text)
	}
	if !strings.Contains(text, "5 languages in total") {
		t.Fatalf("aggregate grounding missing:\n%s", exp.Text)
	}
}

// Paper Table IV Q3: INTERSECT composes both parts.
func TestExplainIntersect(t *testing.T) {
	db := datasets.WorldDB()
	sql := "SELECT T1.name FROM country AS T1 JOIN countrylanguage AS T2 ON T1.code = T2.countrycode WHERE T2.language = 'English' INTERSECT SELECT T1.name FROM country AS T1 JOIN countrylanguage AS T2 ON T1.code = T2.countrycode WHERE T2.language = 'French'"
	stmt := sqlparse.MustParse(sql)
	rel, err := sqleval.New(db).Exec(stmt)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := New(db).Explain(stmt, rel, 0)
	if err != nil {
		t.Fatal(err)
	}
	text := strings.ToLower(exp.Text)
	if !strings.Contains(text, "english") || !strings.Contains(text, "french") {
		t.Fatalf("intersect explanation must mention both filters:\n%s", exp.Text)
	}
	if !strings.Contains(text, "and also") {
		t.Fatalf("intersect connective missing:\n%s", exp.Text)
	}
}

// Inequality filters ground both the data value and the constant, like the
// paper's Estonia example.
func TestExplainInequalityGrounding(t *testing.T) {
	db := datasets.WorldDB()
	exp := explainSQL(t, db, "SELECT name FROM country WHERE continent = 'Europe' AND population >= 80000", 0)
	text := strings.ToLower(exp.Text)
	if !strings.Contains(text, "greater than or equal to 80000") {
		t.Fatalf("filter constant missing:\n%s", exp.Text)
	}
	// The pinned country's actual population must appear.
	pop := exp.Prov.Parts[0].Table.Rows[0][exp.Prov.Parts[0].Table.ColumnIndex("population")]
	if !strings.Contains(exp.Text, pop.String()) {
		t.Fatalf("data value %s missing:\n%s", pop, exp.Text)
	}
}

func TestExplainEmptyResult(t *testing.T) {
	db := datasets.WorldDB()
	stmt := sqlparse.MustParse("SELECT name FROM country WHERE continent = 'Atlantis'")
	rel, err := sqleval.New(db).Exec(stmt)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := New(db).Explain(stmt, rel, 0)
	if err != nil {
		t.Fatal(err)
	}
	text := strings.ToLower(exp.Text)
	if !strings.Contains(text, "0 rows") && !strings.Contains(text, "no data matches") {
		t.Fatalf("empty-result explanation:\n%s", exp.Text)
	}
	if !strings.Contains(text, "atlantis") {
		t.Fatalf("operation-level semantics missing:\n%s", exp.Text)
	}
}

func TestExplainNotInSubquery(t *testing.T) {
	db := datasets.FlightDB()
	exp := explainSQL(t, db, "SELECT name FROM aircraft WHERE aid NOT IN (SELECT aid FROM flight)", 0)
	text := strings.ToLower(exp.Text)
	if !strings.Contains(text, "not among") {
		t.Fatalf("membership phrase missing:\n%s", exp.Text)
	}
}

func TestExplainDeterministic(t *testing.T) {
	db := datasets.FlightDB()
	a := explainSQL(t, db, "SELECT count(*) FROM flight WHERE origin = 'Chicago'", 0)
	b := explainSQL(t, db, "SELECT count(*) FROM flight WHERE origin = 'Chicago'", 0)
	if a.Text != b.Text {
		t.Fatal("explanations must be deterministic")
	}
}

func TestPolisherApplied(t *testing.T) {
	db := datasets.FlightDB()
	e := New(db)
	e.Polish = RulePolisher{}
	stmt := sqlparse.MustParse("SELECT count(*) FROM flight WHERE origin = 'Chicago'")
	rel, _ := sqleval.New(db).Exec(stmt)
	exp, err := e.Explain(stmt, rel, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(exp.Text, ".") {
		t.Fatalf("polished text must end with a period: %q", exp.Text)
	}
	if strings.Contains(exp.Text, "  ") {
		t.Fatalf("polished text has double spaces: %q", exp.Text)
	}
}

func TestRulePolisherFixes(t *testing.T) {
	p := RulePolisher{}
	if got := p.Polish("the the query  runs . . and is is fine"); strings.Contains(got, "the the") || strings.Contains(got, "  ") {
		t.Fatalf("polish failed: %q", got)
	}
	if got := p.Polish("hello"); got != "Hello." {
		t.Fatalf("capitalize+period: %q", got)
	}
}

func TestOpPhraseTable(t *testing.T) {
	cases := map[string]string{
		"=": "equal to", ">=": "greater than or equal to", "<": "less than",
		"!=": "not equal to", "LIKE": "like",
	}
	for op, want := range cases {
		if got := opPhrase(op); got != want {
			t.Errorf("opPhrase(%s) = %q", op, got)
		}
	}
}

func TestPluralNoun(t *testing.T) {
	cases := map[string]string{"flight": "flights", "city": "cities", "bus": "buses", "match": "matches", "day": "days"}
	for in, want := range cases {
		if got := pluralNoun(in); got != want {
			t.Errorf("pluralNoun(%q) = %q want %q", in, got, want)
		}
	}
}

// TestExplainerConcurrentUse shares one Explainer across goroutines
// explaining different statements at once — the parallel-candidate
// scenario — and requires every goroutine to see exactly the text the
// sequential path produces. Run under -race it also gates the removal of
// the explainer's in-flight provenance field.
func TestExplainerConcurrentUse(t *testing.T) {
	db := datasets.FlightDB()
	queries := []string{
		"SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.name = 'Airbus A340-300'",
		"SELECT flno FROM flight WHERE origin = 'Los Angeles'",
		"SELECT name FROM aircraft WHERE distance > 5000",
		"SELECT count(*) FROM aircraft",
	}
	type prepared struct {
		stmt *sqlast.SelectStmt
		rel  *sqltypes.Relation
		want string
	}
	seq := New(db)
	cases := make([]prepared, len(queries))
	for i, q := range queries {
		stmt := sqlparse.MustParse(q)
		rel, err := sqleval.New(db).Exec(stmt)
		if err != nil {
			t.Fatalf("exec %q: %v", q, err)
		}
		exp, err := seq.Explain(stmt, rel, 0)
		if err != nil {
			t.Fatal(err)
		}
		cases[i] = prepared{stmt: stmt, rel: rel, want: exp.Text}
	}
	shared := New(db)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := cases[(g+i)%len(cases)]
				exp, err := shared.Explain(c.stmt, c.rel, 0)
				if err != nil {
					t.Error(err)
					return
				}
				if exp.Text != c.want {
					t.Errorf("concurrent explanation diverged:\nwant %s\ngot  %s", c.want, exp.Text)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
