package explain

import (
	"fmt"
	"strings"

	"cyclesql/internal/provenance"
	"cyclesql/internal/schema"
	"cyclesql/internal/sqlast"
	"cyclesql/internal/storage"
)

// opPhrase verbalizes a comparison operator.
func opPhrase(op string) string {
	switch op {
	case "=":
		return "equal to"
	case "!=", "<>":
		return "not equal to"
	case "<":
		return "less than"
	case "<=":
		return "less than or equal to"
	case ">":
		return "greater than"
	case ">=":
		return "greater than or equal to"
	case "LIKE":
		return "like"
	case "NOT LIKE":
		return "not like"
	default:
		return op
	}
}

// plural renders "1 column" / "3 columns".
func plural(n int, noun string) string {
	if n == 1 {
		return fmt.Sprintf("one %s", noun)
	}
	return fmt.Sprintf("%d %s", n, pluralNoun(noun))
}

// pluralNoun naively pluralizes an English noun phrase (its head word).
func pluralNoun(noun string) string {
	noun = strings.TrimSpace(noun)
	if noun == "" {
		return "rows"
	}
	switch {
	case strings.HasSuffix(noun, "s"), strings.HasSuffix(noun, "x"),
		strings.HasSuffix(noun, "ch"), strings.HasSuffix(noun, "sh"):
		return noun + "es"
	case strings.HasSuffix(noun, "y") && len(noun) > 1 && !isVowel(noun[len(noun)-2]):
		return noun[:len(noun)-1] + "ies"
	default:
		return noun + "s"
	}
}

func isVowel(c byte) bool {
	switch c {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// bareColumn strips qualifiers and naturalizes a column spelling.
func bareColumn(col string) string {
	if dot := strings.LastIndexByte(col, '.'); dot >= 0 {
		col = col[dot+1:]
	}
	return schema.Naturalize(col)
}

func bareColumns(cols []string) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = bareColumn(c)
	}
	return out
}

// aggregateTypes lists the aggregate function names of the statement's
// first core, in projection order.
func aggregateTypes(stmt *sqlast.SelectStmt) []string {
	var out []string
	for _, it := range stmt.Cores[0].Items {
		sqlast.WalkExpr(it.Expr, func(e sqlast.Expr) bool {
			if f, ok := e.(*sqlast.FuncCall); ok && f.IsAggregate() {
				out = append(out, strings.ToLower(f.Name))
			}
			return true
		})
	}
	return out
}

// allFilters collects literal filters across every core of the statement.
func allFilters(stmt *sqlast.SelectStmt) []filterSurface {
	var out []filterSurface
	seen := map[string]bool{}
	for _, core := range stmt.Cores {
		for _, f := range provenance.Filters(core) {
			fs := filterSurface{Column: f.Column.Column, Op: f.Op, Value: f.Value}
			key := fs.Column + fs.Op + fs.Value.String()
			if !seen[key] {
				seen[key] = true
				out = append(out, fs)
			}
		}
		// HAVING thresholds surface in summaries too (paper Q5: "filtered
		// by country language greater than 2").
		for _, c := range sqlast.Conjuncts(core.Having) {
			if b, ok := c.(*sqlast.Binary); ok {
				if f, okL := b.L.(*sqlast.FuncCall); okL && f.IsAggregate() {
					if lit, okR := b.R.(*sqlast.Literal); okR {
						arg := strings.ToLower(f.Name)
						if !f.Star && len(f.Args) == 1 {
							arg = sqlast.ExprSQL(f.Args[0])
						}
						fs := filterSurface{Column: arg, Op: b.Op, Value: lit.Value}
						key := fs.Column + fs.Op + fs.Value.String()
						if !seen[key] {
							seen[key] = true
							out = append(out, fs)
						}
					}
				}
			}
		}
	}
	return out
}

type filterSurface struct {
	Column string
	Op     string
	Value  interface{ String() string }
}

// isIDColumn reports whether an aggregate argument is an identifier-like
// column; COUNT over identifiers reads as counting the entity itself
// ("2 flights", not "2 ids").
func isIDColumn(arg string) bool {
	col := strings.ToLower(arg)
	if dot := strings.LastIndexByte(col, '.'); dot >= 0 {
		col = col[dot+1:]
	}
	return col == "id" || strings.HasSuffix(col, "_id") || strings.HasSuffix(col, "id") && len(col) <= 4 || col == "code"
}

// headEntity names the entity a count(*) counts: the natural name of the
// first base table of the core.
func headEntity(db *storage.Database, core *sqlast.SelectCore) string {
	tables := core.Tables()
	if len(tables) == 0 {
		return "row"
	}
	if t := db.Schema.Table(tables[0].Name); t != nil {
		return t.Natural()
	}
	return schema.Naturalize(tables[0].Name)
}

// describeItems verbalizes a core's projection list.
func describeItems(core *sqlast.SelectCore) string {
	var parts []string
	for _, it := range core.Items {
		switch {
		case it.Star:
			parts = append(parts, "all columns")
		default:
			switch x := it.Expr.(type) {
			case *sqlast.ColumnRef:
				parts = append(parts, "the "+bareColumn(x.Column))
			case *sqlast.FuncCall:
				if x.IsAggregate() {
					arg := "rows"
					if !x.Star && len(x.Args) == 1 {
						arg = bareColumn(sqlast.ExprSQL(x.Args[0]))
					}
					parts = append(parts, fmt.Sprintf("the %s of %s", strings.ToLower(x.Name), arg))
				}
			default:
				parts = append(parts, sqlast.ExprSQL(it.Expr))
			}
		}
	}
	if len(parts) == 0 {
		return "the rows"
	}
	return strings.Join(parts, " and ")
}

// representativeRow verbalizes the first provenance row of a part for
// pure-projection queries ("country Anguilla, belongs to the continent
// North America").
func representativeRow(part provenance.Part) string {
	if part.Table == nil || part.Table.NumRows() == 0 {
		return ""
	}
	row := part.Table.Rows[0]
	var parts []string
	limit := len(part.Table.Columns)
	if limit > 5 {
		limit = 5 // keep phrases short; Rule 2 can project many columns
	}
	for i := 0; i < limit; i++ {
		parts = append(parts, fmt.Sprintf("the %s is %s", bareColumn(part.Table.Columns[i]), row[i]))
	}
	return "for example, " + strings.Join(parts, ", ")
}
