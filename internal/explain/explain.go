// Package explain implements CycleSQL's explanation-generation stage
// (paper §IV-C, Algorithm 1). Given the enriched provenance of a query
// result, it synthesizes a data-grounded natural-language explanation:
//
//  1. GENERATE-SUMMARY — a brief summary of the result set (column/row
//     counts, aggregation types, surface filters);
//  2. BUILD-GRAPH — the provenance graph with semantics labels;
//  3. GENERATE-PHRASE — an NL phrase per provenance element, grounding
//     operation-level semantics in the concrete data values;
//  4. COMPOSE-PHRASE — concatenation with descriptive connectives.
//
// The generated text is intentionally mechanical; a Polisher can refine it
// for readability (the paper uses a few-shot prompted LLM; this repo ships
// a rule-based polisher, see DESIGN.md "Substitutions").
package explain

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"cyclesql/internal/annotate"
	"cyclesql/internal/provenance"
	"cyclesql/internal/provgraph"
	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// Polisher refines the mechanical explanation for readability.
type Polisher interface {
	Polish(text string) string
}

// Explanation is the generated NL explanation of one query result tuple.
type Explanation struct {
	Summary string   // the result-set summary (step s0 of Algorithm 1)
	Steps   []string // intermediate reasoning steps (one per part)
	Text    string   // composed full text
	Prov    *provenance.Provenance
}

// Explainer generates explanations against one database. It is safe for
// concurrent use once DB and Polish are set: the in-flight provenance is
// passed explicitly through the generation call chain (no per-explanation
// state lives on the struct), and the shared tracker guards its own
// memoization — so the CycleSQL loop can explain beam candidates in
// parallel through one cached explainer. Set DB and Polish before the
// first Explain and leave them unchanged afterwards.
type Explainer struct {
	DB     *storage.Database
	Polish Polisher // optional; set before first use

	// tracker persists across Explain calls so repeated explanations
	// against the same database reuse compiled provenance statements —
	// its rewrite cache keys on rendered core SQL and its executor's plan
	// cache on canonical SQL, so textually identical candidates share
	// work even when every beam hands over a fresh AST. Callers that
	// alternate databases cache whole explainers instead (see
	// core.DataGrounded). mu guards the lazy (re)initialization for
	// explainers constructed without New.
	mu      sync.Mutex
	tracker *provenance.Tracker
}

// New returns an Explainer over db with no polisher.
func New(db *storage.Database) *Explainer {
	return &Explainer{DB: db, tracker: provenance.NewTracker(db)}
}

// Explain produces the explanation for row rowIdx of result, which must be
// the output of executing stmt against e.DB. For empty results the
// explanation is generated from operation-level semantics alone.
func (e *Explainer) Explain(stmt *sqlast.SelectStmt, result *sqltypes.Relation, rowIdx int) (*Explanation, error) {
	return e.ExplainContext(context.Background(), stmt, result, rowIdx)
}

// ExplainContext is Explain with cancellation: the provenance queries the
// tracker executes run under ctx, so the CycleSQL loop can abort an
// in-flight speculative explanation once an earlier candidate validates.
// Phrase generation itself is pure in-memory string work and finishes
// without further checks once tracking completes.
func (e *Explainer) ExplainContext(ctx context.Context, stmt *sqlast.SelectStmt, result *sqltypes.Relation, rowIdx int) (*Explanation, error) {
	prov, err := e.trackerFor().TrackContext(ctx, stmt, result, rowIdx)
	if err != nil {
		return nil, err
	}
	return e.FromProvenance(prov)
}

// trackerFor returns the persistent tracker, lazily (re)building it for
// explainers constructed without New or rebound to another database. The
// lock makes the one-time initialization safe under concurrent Explain.
func (e *Explainer) trackerFor() *provenance.Tracker {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.tracker == nil || e.tracker.DB() != e.DB {
		e.tracker = provenance.NewTracker(e.DB)
	}
	return e.tracker
}

// FromProvenance generates the explanation from already-tracked provenance.
// The provenance is threaded explicitly through the generation chain, so
// concurrent calls on one Explainer never observe each other's tuples.
func (e *Explainer) FromProvenance(prov *provenance.Provenance) (*Explanation, error) {
	ann := annotate.Annotate(prov)
	out := &Explanation{Prov: prov}
	out.Summary = e.summary(prov)
	if prov.Empty {
		// Operation-level semantics only (paper §IV-A, empty results).
		for _, core := range prov.Original.Cores {
			out.Steps = append(out.Steps, e.operationStep(core))
		}
	} else {
		for i, part := range prov.Parts {
			g := provgraph.Build(part, ann.Parts[i])
			out.Steps = append(out.Steps, e.phraseStep(prov, part, g))
		}
	}
	out.Text = e.compose(prov, out.Summary, out.Steps)
	if e.Polish != nil {
		out.Text = e.Polish.Polish(out.Text)
	}
	return out, nil
}

// summary implements GENERATE-SUMMARY: result-set shape plus the query's
// surface filters.
func (e *Explainer) summary(prov *provenance.Provenance) string {
	r := prov.ResultSet
	var b strings.Builder
	b.WriteString("The query returns a result set with ")
	aggs := aggregateTypes(prov.Original)
	switch {
	case len(aggs) == len(r.Columns) && len(aggs) > 0:
		fmt.Fprintf(&b, "%s of aggregation type (%s)", plural(len(r.Columns), "column"), strings.Join(aggs, ", "))
	case len(aggs) > 0:
		fmt.Fprintf(&b, "%s (including aggregation type %s)", plural(len(r.Columns), "column"), strings.Join(aggs, ", "))
	default:
		fmt.Fprintf(&b, "%s (%s)", plural(len(r.Columns), "column"), strings.Join(bareColumns(r.Columns), ", "))
	}
	fmt.Fprintf(&b, " and %s", plural(r.NumRows(), "row"))
	if fs := allFilters(prov.Original); len(fs) != 0 {
		b.WriteString(", filtered by ")
		for i, f := range fs {
			if i > 0 {
				b.WriteString(" and ")
			}
			fmt.Fprintf(&b, "%s %s %s", bareColumn(f.Column), opPhrase(f.Op), f.Value.String())
		}
	}
	b.WriteString(".")
	return b.String()
}

// phraseStep implements GENERATE-PHRASE + the per-part portion of
// COMPOSE-PHRASE for one provenance part, traversing the provenance graph
// and verbalizing each labeled element. prov is the in-flight provenance
// the part belongs to; it rides along so aggregate phrases can ground
// themselves in the to-explain result tuple.
func (e *Explainer) phraseStep(prov *provenance.Provenance, part provenance.Part, g *provgraph.Graph) string {
	core := part.Core
	var tableNames []string
	for _, t := range core.Tables() {
		if t.Name != "" {
			tableNames = append(tableNames, t.Name)
		}
	}
	join := provgraph.DiscoverJoin(e.DB.Schema, tableNames)
	subject := join.Phrase
	if subject == "" {
		subject = "the rows"
	}

	var clauses []string

	// Filter-like labels on column nodes, grounded in provenance values.
	for _, col := range g.Columns() {
		for _, lab := range col.Labels {
			if phrase := e.groundedColumnPhrase(col, lab, g); phrase != "" {
				clauses = append(clauses, phrase)
			}
		}
	}
	// Table-level labels: aggregates, HAVING, ORDER/LIMIT, EXISTS.
	tableNode := g.Nodes[g.Table]
	entity := headEntity(e.DB, core)
	var tails []string
	for _, lab := range tableNode.Labels {
		if phrase := e.tablePhrase(prov, lab, part, entity); phrase != "" {
			tails = append(tails, phrase)
		}
	}
	// Aggregate labels anchored on a concrete column still summarize the
	// table (count(T2.language) counts rows of the group).
	for _, col := range g.Columns() {
		for _, lab := range col.Labels {
			if lab.Kind == annotate.KindAggregate {
				if phrase := e.tablePhrase(prov, lab, part, entity); phrase != "" {
					tails = append(tails, phrase)
				}
			}
		}
	}

	var b strings.Builder
	b.WriteString("For ")
	b.WriteString(subject)
	if len(clauses) > 0 {
		b.WriteString(", ")
		b.WriteString(strings.Join(clauses, ", "))
	}
	if len(tails) > 0 {
		b.WriteString(", ")
		b.WriteString(strings.Join(tails, ", and "))
	}
	if len(clauses) == 0 && len(tails) == 0 {
		// Pure projection query: ground the representative row.
		if row := representativeRow(part); row != "" {
			b.WriteString(", ")
			b.WriteString(row)
		}
	}
	b.WriteString(".")
	return b.String()
}

// groundedColumnPhrase verbalizes one column-anchored label using the
// column's provenance value, so the explanation reflects the data instance
// rather than the query surface alone.
func (e *Explainer) groundedColumnPhrase(col *provgraph.Node, lab annotate.Annotation, g *provgraph.Graph) string {
	val, hasVal := g.ValueOf(col.ID)
	colNL := bareColumn(col.Label)
	switch lab.Kind {
	case annotate.KindFilter:
		op := lab.Detail["op"]
		want := lab.Detail["value"]
		if lab.Detail["subquery"] == "true" {
			return fmt.Sprintf("the %s is %s %s", colNL, opPhrase(op), want)
		}
		if hasVal && val.String() != want {
			// Data value differs from the filter constant (inequalities):
			// surface both, as in the paper's Estonia example.
			return fmt.Sprintf("the %s is %s, %s %s", colNL, val, opPhrase(op), want)
		}
		if op == "=" {
			return fmt.Sprintf("with %s %s", colNL, want)
		}
		return fmt.Sprintf("the %s is %s %s", colNL, opPhrase(op), want)
	case annotate.KindMembership:
		neg := lab.Detail["not"] == "true"
		target := lab.Detail["value"]
		if neg {
			return fmt.Sprintf("whose %s is not among %s", colNL, target)
		}
		return fmt.Sprintf("whose %s is among %s", colNL, target)
	case annotate.KindPattern:
		neg := lab.Detail["not"] == "true"
		pat := strings.Trim(lab.Detail["pattern"], "'")
		verb := "matches"
		if neg {
			verb = "does not match"
		}
		if hasVal {
			return fmt.Sprintf("the %s %s %s the pattern %s", colNL, val, verb, pat)
		}
		return fmt.Sprintf("the %s %s the pattern %s", colNL, verb, pat)
	case annotate.KindRange:
		return fmt.Sprintf("the %s is between %s and %s", colNL, lab.Detail["lo"], lab.Detail["hi"])
	case annotate.KindNullCheck:
		if lab.Detail["not"] == "true" {
			return fmt.Sprintf("the %s is present", colNL)
		}
		return fmt.Sprintf("the %s is missing", colNL)
	case annotate.KindGroup:
		if hasVal {
			return fmt.Sprintf("grouped by %s, here %s %s", colNL, colNL, val)
		}
		return fmt.Sprintf("grouped by %s", colNL)
	case annotate.KindProjection:
		if hasVal {
			return fmt.Sprintf("the %s is %s", colNL, val)
		}
	}
	return ""
}

// tablePhrase verbalizes one table-level label.
func (e *Explainer) tablePhrase(prov *provenance.Provenance, lab annotate.Annotation, part provenance.Part, entity string) string {
	rows := 0
	if part.Table != nil {
		rows = part.Table.NumRows()
	}
	switch lab.Kind {
	case annotate.KindAggregate:
		fn := lab.Detail["func"]
		arg := lab.Detail["arg"]
		resultVal := e.aggregateResultValue(prov, part, lab)
		switch fn {
		case "count":
			noun := pluralNoun(entity)
			if arg != "*" && arg != "" && !isIDColumn(arg) {
				noun = pluralNoun(bareColumn(arg))
			}
			if lab.Detail["distinct"] == "true" {
				return fmt.Sprintf("there are %s distinct %s in total", resultVal, noun)
			}
			return fmt.Sprintf("there are %s %s in total", resultVal, noun)
		case "sum":
			return fmt.Sprintf("the total %s is %s", bareColumn(arg), resultVal)
		case "avg":
			return fmt.Sprintf("the average %s is %s", bareColumn(arg), resultVal)
		case "min":
			return fmt.Sprintf("the smallest %s is %s", bareColumn(arg), resultVal)
		case "max":
			return fmt.Sprintf("the largest %s is %s", bareColumn(arg), resultVal)
		}
	case annotate.KindHaving:
		fn, arg, op, rhs := lab.Detail["func"], lab.Detail["arg"], lab.Detail["op"], lab.Detail["rhs"]
		noun := pluralNoun(bareColumn(arg))
		if arg == "" {
			noun = "rows"
		}
		return fmt.Sprintf("keeping only groups where the %s of %s is %s %s", fn, noun, opPhrase(op), rhs)
	case annotate.KindOrder:
		key := lab.Detail["key"]
		dir := lab.Detail["dir"]
		if lim := lab.Detail["limit"]; lim != "" {
			return fmt.Sprintf("ranked by %s %s taking the top %s", bareColumn(key), dir, lim)
		}
		return fmt.Sprintf("ordered by %s %s", bareColumn(key), dir)
	case annotate.KindExists:
		if lab.Detail["not"] == "true" {
			return fmt.Sprintf("with no matching %s", lab.Detail["value"])
		}
		return fmt.Sprintf("with some matching %s", lab.Detail["value"])
	case annotate.KindDistinct:
		return "with duplicate entries removed"
	case annotate.KindFilter, annotate.KindMembership, annotate.KindPattern:
		// A filter that could not anchor to a provenance column (for
		// example the rewrite failed): verbalize from the query surface.
		op := lab.Detail["op"]
		if op == "" {
			op = "="
		}
		return fmt.Sprintf("where %s is %s %s", bareColumn(lab.Column), opPhrase(op), lab.Detail["value"])
	case annotate.KindJoin:
		_ = rows // join structure is already carried by the subject phrase
	}
	return ""
}

// aggregateResultValue resolves the concrete value of an aggregate label:
// the matching column of the to-explain result tuple when identifiable,
// else the recomputed aggregate over the provenance rows.
func (e *Explainer) aggregateResultValue(prov *provenance.Provenance, part provenance.Part, lab annotate.Annotation) string {
	table := part.Table
	// Find the aggregate's position among the core's items and take the
	// corresponding result value if the result tuple aligns.
	fn, arg := lab.Detail["func"], lab.Detail["arg"]
	if res := lookupResultAggregate(prov, part.Core, fn, arg); res != "" {
		return res
	}
	if table != nil && fn == "count" {
		return fmt.Sprintf("%d", table.NumRows())
	}
	return "the computed value"
}

// lookupResultAggregate aligns an aggregate label with the to-explain
// result tuple the Provenance carries, returning the concrete value of the
// matching projection column (or "" when no item aligns).
func lookupResultAggregate(prov *provenance.Provenance, core *sqlast.SelectCore, fn, arg string) string {
	if prov == nil || len(prov.Result) == 0 {
		return ""
	}
	for i, it := range core.Items {
		f, ok := it.Expr.(*sqlast.FuncCall)
		if !ok || !f.IsAggregate() {
			continue
		}
		gotArg := "*"
		if !f.Star && len(f.Args) == 1 {
			gotArg = sqlast.ExprSQL(f.Args[0])
		}
		if strings.EqualFold(f.Name, fn) && (gotArg == arg || arg == "") {
			if i < len(prov.Result) {
				return prov.Result[i].String()
			}
		}
	}
	return ""
}

// operationStep verbalizes a core from its query surface alone; used for
// empty-result queries that carry no data-level provenance.
func (e *Explainer) operationStep(core *sqlast.SelectCore) string {
	var tableNames []string
	for _, t := range core.Tables() {
		if t.Name != "" {
			tableNames = append(tableNames, t.Name)
		}
	}
	join := provgraph.DiscoverJoin(e.DB.Schema, tableNames)
	var b strings.Builder
	b.WriteString("No data matches: the query looks for ")
	b.WriteString(describeItems(core))
	if join.Phrase != "" {
		b.WriteString(" of ")
		b.WriteString(join.Phrase)
	}
	if fs := provenance.Filters(core); len(fs) > 0 {
		b.WriteString(" where ")
		for i, f := range fs {
			if i > 0 {
				b.WriteString(" and ")
			}
			fmt.Fprintf(&b, "%s is %s %s", bareColumn(f.Column.Column), opPhrase(f.Op), f.Value.String())
		}
	}
	b.WriteString(", and no such rows exist.")
	return b.String()
}

// compose implements COMPOSE-PHRASE: the summary plus the per-part steps
// stitched with set-operation connectives.
func (e *Explainer) compose(prov *provenance.Provenance, summary string, steps []string) string {
	var b strings.Builder
	b.WriteString(summary)
	for i, s := range steps {
		b.WriteByte(' ')
		if i > 0 && i-1 < len(prov.Original.Ops) {
			switch prov.Original.Ops[i-1] {
			case sqlast.Intersect:
				b.WriteString("And also: ")
			case sqlast.Except:
				b.WriteString("Excluding: ")
			default:
				b.WriteString("Or: ")
			}
		}
		b.WriteString(s)
	}
	return strings.Join(strings.Fields(b.String()), " ")
}
