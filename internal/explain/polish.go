package explain

import (
	"strings"
)

// RulePolisher is the offline stand-in for the paper's few-shot LLM
// "polishing model": it improves surface fluency without touching content.
// Substitution documented in DESIGN.md; polishing only affects the user
// study, never verification.
type RulePolisher struct{}

// Polish normalizes whitespace, repairs duplicated connectives, fixes
// article agreement for the common patterns the generator emits, and
// capitalizes sentence starts.
func (RulePolisher) Polish(text string) string {
	out := strings.Join(strings.Fields(text), " ")
	replacements := [][2]string{
		{", , ", ", "},
		{" , ", ", "},
		{". .", "."},
		{"..", "."},
		{"the the ", "the "},
		{"is is ", "is "},
		{"for for ", "for "},
		{"a one", "one"},
		{" in total in total", " in total"},
	}
	for _, r := range replacements {
		out = strings.ReplaceAll(out, r[0], r[1])
	}
	// Sentence-initial capitalization after ". ".
	var b strings.Builder
	capNext := true
	for i := 0; i < len(out); i++ {
		c := out[i]
		if capNext && c >= 'a' && c <= 'z' {
			c = c - 'a' + 'A'
			capNext = false
		} else if c != ' ' && c != '.' {
			capNext = false
		}
		if c == '.' {
			capNext = true
		}
		b.WriteByte(c)
	}
	out = b.String()
	if !strings.HasSuffix(out, ".") {
		out += "."
	}
	return out
}
