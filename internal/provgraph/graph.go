// Package provgraph builds the provenance graph at the heart of CycleSQL's
// explanation generation (paper §IV-C): a directed graph whose nodes are
// provenance elements — the (possibly joint) table, its columns, and the
// values of the to-explain provenance rows — connected by "hasAttribute"
// and "hasValue" edges. Query annotations from the enrichment stage attach
// to their corresponding nodes as semantics labels.
//
// The package also implements the join-semantics discovery of Fig 6: the
// join relations of a query are converted into a table graph and matched
// by graph isomorphism against a pool of pre-defined topologies
// (object-object, subject-relationship-object, object-attribute); on a
// match, the topology's phrase template instantiates with the concrete
// table names, and otherwise the table names themselves represent the
// join semantics.
package provgraph

import (
	"strings"

	"cyclesql/internal/annotate"
	"cyclesql/internal/provenance"
	"cyclesql/internal/schema"
	"cyclesql/internal/sqltypes"
)

// NodeKind classifies provenance graph nodes.
type NodeKind int

// Node kinds.
const (
	TableNode NodeKind = iota
	ColumnNode
	ValueNode
)

// EdgeHasAttribute connects a table node to its column nodes;
// EdgeHasValue connects a column node to a value node.
const (
	EdgeHasAttribute = "hasAttribute"
	EdgeHasValue     = "hasValue"
)

// Node is one provenance element with its attached semantics labels.
type Node struct {
	ID     int
	Kind   NodeKind
	Label  string // table name, column name, or value text
	Value  sqltypes.Value
	Labels []annotate.Annotation // semantics labels from the annotator
}

// Edge is a typed directed edge.
type Edge struct {
	From, To int
	Type     string
}

// Graph is the provenance graph of one provenance part.
type Graph struct {
	Nodes []*Node
	Edges []Edge
	// Table is the index of the (joint) table node.
	Table int
}

// Build constructs the provenance graph for one provenance part: a joint
// table node named after the referenced tables, one column node per
// provenance column, and value nodes for the first representative
// provenance row. Annotations anchor onto matching column nodes; anchorless
// annotations label the table node (the paper's asterisk rule).
func Build(part provenance.Part, anns []annotate.Annotation) *Graph {
	g := &Graph{}
	tables := part.Core.Tables()
	names := make([]string, 0, len(tables))
	for _, t := range tables {
		if t.Name != "" {
			names = append(names, t.Name)
		}
	}
	tn := &Node{ID: 0, Kind: TableNode, Label: strings.Join(names, "-")}
	g.Nodes = append(g.Nodes, tn)
	g.Table = 0

	if part.Table == nil {
		// Operation-level-only provenance: annotations all label the table.
		tn.Labels = append(tn.Labels, anns...)
		return g
	}
	colIdx := map[string]int{}
	for _, col := range part.Table.Columns {
		n := &Node{ID: len(g.Nodes), Kind: ColumnNode, Label: col}
		g.Nodes = append(g.Nodes, n)
		g.Edges = append(g.Edges, Edge{From: tn.ID, To: n.ID, Type: EdgeHasAttribute})
		colIdx[strings.ToLower(col)] = n.ID
	}
	if len(part.Table.Rows) > 0 {
		row := part.Table.Rows[0]
		for ci, col := range part.Table.Columns {
			if ci >= len(row) {
				break
			}
			n := &Node{ID: len(g.Nodes), Kind: ValueNode, Label: row[ci].String(), Value: row[ci]}
			g.Nodes = append(g.Nodes, n)
			g.Edges = append(g.Edges, Edge{From: colIdx[strings.ToLower(col)], To: n.ID, Type: EdgeHasValue})
		}
	}
	// Attach semantics labels.
	for _, a := range anns {
		if !a.Anchored() {
			tn.Labels = append(tn.Labels, a)
			continue
		}
		if id, ok := matchColumn(colIdx, a.Column); ok {
			g.Nodes[id].Labels = append(g.Nodes[id].Labels, a)
		} else {
			// Column missing from provenance (for example dropped by a
			// failed rewrite): fall back to the table node.
			tn.Labels = append(tn.Labels, a)
		}
	}
	return g
}

// matchColumn resolves an annotation anchor ("T2.name" or "name") against
// the provenance columns, tolerating qualification differences.
func matchColumn(colIdx map[string]int, anchor string) (int, bool) {
	a := strings.ToLower(anchor)
	if id, ok := colIdx[a]; ok {
		return id, true
	}
	bare := a
	if dot := strings.LastIndexByte(a, '.'); dot >= 0 {
		bare = a[dot+1:]
	}
	for col, id := range colIdx {
		c := col
		if dot := strings.LastIndexByte(col, '.'); dot >= 0 {
			c = col[dot+1:]
		}
		if c == bare {
			return id, true
		}
	}
	return 0, false
}

// ValueOf returns the representative value of a column node, if present.
func (g *Graph) ValueOf(columnID int) (sqltypes.Value, bool) {
	for _, e := range g.Edges {
		if e.From == columnID && e.Type == EdgeHasValue {
			return g.Nodes[e.To].Value, true
		}
	}
	return sqltypes.Value{}, false
}

// Columns returns the column nodes in insertion order.
func (g *Graph) Columns() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Kind == ColumnNode {
			out = append(out, n)
		}
	}
	return out
}

// ---- Join-semantics discovery (Fig 6) ----

// Topology is one pre-defined inter-table relation graph in the pool.
type Topology struct {
	Name string
	// Adjacency over node indices 0..N-1.
	Edges [][2]int
	// Phrase instantiates the topology with concrete natural table names;
	// the argument order follows the matched node assignment.
	Phrase func(names []string) string
}

// Pool is the pre-defined inter-table relation graph pool. Matching is
// attempted in order, so more specific topologies come first.
var Pool = []Topology{
	{
		// A junction table linking two entities: subject-relationship-object.
		Name:  "subject-relationship-object",
		Edges: [][2]int{{1, 0}, {1, 2}}, // node 1 is the junction
		Phrase: func(names []string) string {
			return names[0] + " with " + names[2]
		},
	},
	{
		// A chain where one endpoint hangs off an entity: object-attribute.
		Name:  "object-attribute",
		Edges: [][2]int{{0, 1}, {1, 2}},
		Phrase: func(names []string) string {
			return names[0] + " of " + names[2]
		},
	},
	{
		// Two directly related entities: object-object.
		Name:  "object-object",
		Edges: [][2]int{{0, 1}},
		Phrase: func(names []string) string {
			return names[0] + " with " + names[1]
		},
	},
}

// JoinSemantics is the discovered semantics of a join relation.
type JoinSemantics struct {
	Topology string // matched pool entry, or "" for the fallback
	Phrase   string
}

// DiscoverJoin matches the query's join relation (the induced schema
// subgraph over the referenced tables) against the pool. Junction tables
// (tables whose foreign keys point at both neighbors) take the middle role
// in subject-relationship-object matches. With no isomorphic pool entry,
// the associated table names represent the semantics.
func DiscoverJoin(s *schema.Schema, tables []string) JoinSemantics {
	if len(tables) < 2 {
		name := ""
		if len(tables) == 1 {
			if t := s.Table(tables[0]); t != nil {
				name = t.Natural()
			}
		}
		return JoinSemantics{Phrase: name}
	}
	sub := s.Graph().Subgraph(tables)
	for _, topo := range Pool {
		if assign, ok := isomorphic(sub, topo); ok {
			// For subject-relationship-object, verify the middle node is a
			// true junction (out-FKs to both neighbors); otherwise prefer
			// the chain reading.
			if topo.Name == "subject-relationship-object" && !isJunction(s, assign[1], assign[0], assign[2]) {
				continue
			}
			names := make([]string, len(assign))
			for i, tname := range assign {
				if t := s.Table(tname); t != nil {
					names[i] = t.Natural()
				} else {
					names[i] = schema.Naturalize(tname)
				}
			}
			return JoinSemantics{Topology: topo.Name, Phrase: topo.Phrase(names)}
		}
	}
	// Fallback: join the natural table names.
	names := make([]string, len(tables))
	for i, tname := range tables {
		if t := s.Table(tname); t != nil {
			names[i] = t.Natural()
		} else {
			names[i] = schema.Naturalize(tname)
		}
	}
	return JoinSemantics{Phrase: strings.Join(names, " with ")}
}

func isJunction(s *schema.Schema, mid, a, b string) bool {
	toA, toB := false, false
	for _, fk := range s.ForeignKeysFrom(mid) {
		if strings.EqualFold(fk.RefTable, a) {
			toA = true
		}
		if strings.EqualFold(fk.RefTable, b) {
			toB = true
		}
	}
	return toA && toB
}

// isomorphic checks whether g (an undirected schema subgraph) is
// isomorphic to the topology, returning the table assigned to each
// topology node. Pool graphs are tiny, so permutation search suffices.
func isomorphic(g *schema.Graph, topo Topology) ([]string, bool) {
	n := topoSize(topo)
	if len(g.Nodes) != n {
		return nil, false
	}
	want := make(map[[2]int]bool, len(topo.Edges))
	for _, e := range topo.Edges {
		want[norm(e[0], e[1])] = true
	}
	adj := map[[2]int]bool{}
	index := map[string]int{}
	for i, t := range g.Nodes {
		index[strings.ToLower(t)] = i
	}
	edgeCount := 0
	seen := map[[2]int]bool{}
	for from, tos := range g.Edges {
		fi := index[strings.ToLower(from)]
		for _, to := range tos {
			ti, ok := index[strings.ToLower(to)]
			if !ok {
				continue
			}
			k := norm(fi, ti)
			adj[k] = true
			if !seen[k] {
				seen[k] = true
				edgeCount++
			}
		}
	}
	if edgeCount != len(want) {
		return nil, false
	}
	var try func(k int) bool
	used := make([]bool, n)
	assign := make([]int, n) // topology node -> graph node
	try = func(k int) bool {
		if k == n {
			for e := range want {
				if !adj[norm(assign[e[0]], assign[e[1]])] {
					return false
				}
			}
			return true
		}
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			used[v] = true
			assign[k] = v
			if try(k + 1) {
				return true
			}
			used[v] = false
		}
		return false
	}
	if !try(0) {
		return nil, false
	}
	out := make([]string, n)
	for topoNode, gNode := range assign {
		out[topoNode] = g.Nodes[gNode]
	}
	return out, true
}

func topoSize(t Topology) int {
	max := 0
	for _, e := range t.Edges {
		if e[0] > max {
			max = e[0]
		}
		if e[1] > max {
			max = e[1]
		}
	}
	return max + 1
}

func norm(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}
