package provgraph

import (
	"strings"
	"testing"

	"cyclesql/internal/annotate"
	"cyclesql/internal/datasets"
	"cyclesql/internal/provenance"
	"cyclesql/internal/schema"
	"cyclesql/internal/sqleval"
	"cyclesql/internal/sqlparse"
	"cyclesql/internal/sqltypes"
)

func buildFor(t *testing.T, sql string) *Graph {
	t.Helper()
	db := datasets.FlightDB()
	stmt := sqlparse.MustParse(sql)
	rel, err := sqleval.New(db).Exec(stmt)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := provenance.Track(db, stmt, rel, 0)
	if err != nil {
		t.Fatal(err)
	}
	ann := annotate.Annotate(prov)
	return Build(prov.Parts[0], ann.Parts[0])
}

func TestBuildGraphShape(t *testing.T) {
	g := buildFor(t, "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.name = 'Airbus A340-300'")
	if g.Nodes[g.Table].Kind != TableNode {
		t.Fatal("table node missing")
	}
	if !strings.Contains(g.Nodes[g.Table].Label, "flight") || !strings.Contains(g.Nodes[g.Table].Label, "aircraft") {
		t.Fatalf("joint table label: %q", g.Nodes[g.Table].Label)
	}
	cols := g.Columns()
	if len(cols) == 0 {
		t.Fatal("no column nodes")
	}
	// Every column node must link from the table and have a value node.
	for _, col := range cols {
		if _, ok := g.ValueOf(col.ID); !ok {
			t.Fatalf("column %s has no value", col.Label)
		}
	}
}

func TestAnnotationsAttachToColumns(t *testing.T) {
	g := buildFor(t, "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.name = 'Airbus A340-300'")
	found := false
	for _, col := range g.Columns() {
		for _, lab := range col.Labels {
			if lab.Kind == annotate.KindFilter {
				found = true
				if v, ok := g.ValueOf(col.ID); !ok || v.Text() != "Airbus A340-300" {
					t.Fatalf("filter anchored to wrong column value: %v", v)
				}
			}
		}
	}
	if !found {
		t.Fatal("filter annotation did not anchor to a column node")
	}
}

func TestTableLevelAnnotations(t *testing.T) {
	g := buildFor(t, "SELECT count(*) FROM flight")
	tn := g.Nodes[g.Table]
	hasAgg := false
	for _, lab := range tn.Labels {
		if lab.Kind == annotate.KindAggregate {
			hasAgg = true
		}
	}
	if !hasAgg {
		t.Fatal("count(*) must label the table node")
	}
}

func worldSchema() *schema.Schema {
	return &schema.Schema{
		Name: "s",
		Tables: []*schema.Table{
			{Name: "Concert", Columns: []schema.Column{{Name: "id", Type: sqltypes.KindInt, PrimaryKey: true}}},
			{Name: "Singer", Columns: []schema.Column{{Name: "id", Type: sqltypes.KindInt, PrimaryKey: true}}},
			{Name: "Singer_in_concert", Columns: []schema.Column{
				{Name: "concert_id", Type: sqltypes.KindInt},
				{Name: "singer_id", Type: sqltypes.KindInt},
			}},
			{Name: "Review", Columns: []schema.Column{{Name: "id", Type: sqltypes.KindInt}, {Name: "concert_id", Type: sqltypes.KindInt}}},
		},
		ForeignKeys: []schema.ForeignKey{
			{Table: "Singer_in_concert", Column: "concert_id", RefTable: "Concert", RefColumn: "id"},
			{Table: "Singer_in_concert", Column: "singer_id", RefTable: "Singer", RefColumn: "id"},
			{Table: "Review", Column: "concert_id", RefTable: "Concert", RefColumn: "id"},
		},
	}
}

// The paper's Fig 6: a junction table joining two entities matches
// subject-relationship-object and instantiates "singer with concert".
func TestDiscoverJoinJunction(t *testing.T) {
	js := DiscoverJoin(worldSchema(), []string{"Concert", "Singer_in_concert", "Singer"})
	if js.Topology != "subject-relationship-object" {
		t.Fatalf("topology = %q", js.Topology)
	}
	if !strings.Contains(js.Phrase, "with") {
		t.Fatalf("phrase = %q", js.Phrase)
	}
}

func TestDiscoverJoinTwoTables(t *testing.T) {
	js := DiscoverJoin(worldSchema(), []string{"Concert", "Review"})
	if js.Topology != "object-object" {
		t.Fatalf("topology = %q", js.Topology)
	}
}

func TestDiscoverJoinChainIsObjectAttribute(t *testing.T) {
	// Review -> Concert -> (via junction) is not a junction pattern:
	// Review-Concert-Singer_in_concert forms a chain centred on Concert,
	// and Concert has no out-FKs, so the object-attribute reading wins.
	js := DiscoverJoin(worldSchema(), []string{"Review", "Concert", "Singer_in_concert"})
	if js.Topology != "object-attribute" {
		t.Fatalf("topology = %q (phrase %q)", js.Topology, js.Phrase)
	}
}

func TestDiscoverJoinFallback(t *testing.T) {
	s := worldSchema()
	// Concert and Singer share no FK: no pool match, fallback phrase.
	js := DiscoverJoin(s, []string{"Concert", "Singer"})
	if js.Topology != "" {
		t.Fatalf("expected fallback, got %q", js.Topology)
	}
	if js.Phrase == "" {
		t.Fatal("fallback phrase empty")
	}
}

func TestDiscoverJoinSingleTable(t *testing.T) {
	js := DiscoverJoin(worldSchema(), []string{"Concert"})
	if js.Phrase != "concert" {
		t.Fatalf("single-table phrase = %q", js.Phrase)
	}
}
