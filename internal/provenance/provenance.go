// Package provenance implements CycleSQL's data-tracking stage (paper
// §IV-A): given an executed SQL query and one to-explain result tuple, it
// rewrites the query with three heuristic rules so that executing the
// rewritten query returns the why-provenance of that tuple — the source
// rows that guarantee its presence in the output.
//
//   - Rule 1 (Result Transformation): the to-explain result tuple is
//     translated into WHERE equality conditions and folded back into the
//     query, pinning provenance to that tuple.
//   - Rule 2 (Projection Enhancement): every column referenced anywhere in
//     the query, plus the primary keys of the referenced tables, becomes a
//     projection column of the rewritten query.
//   - Rule 3 (Aggregation Deconstruction): aggregate functions, GROUP BY,
//     HAVING, ORDER BY and LIMIT are removed so collapsed input rows
//     become traceable again.
//
// Queries with empty results carry no provenance; Track marks them Empty
// and the explanation generator falls back to operation-level semantics.
package provenance

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqleval"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// Part is the provenance of one SELECT core of the (possibly compound)
// query: the rewritten core and the provenance table it retrieved.
type Part struct {
	Core      *sqlast.SelectCore // the original core (not rewritten)
	Rewritten *sqlast.SelectStmt
	Table     *sqltypes.Relation
}

// Provenance is the data-level evidence for one query result tuple.
type Provenance struct {
	Original      *sqlast.SelectStmt
	Result        sqltypes.Row // the to-explain tuple
	ResultColumns []string
	ResultSet     *sqltypes.Relation // the full result, for summaries
	Parts         []Part
	Empty         bool // query returned no rows: no data-level provenance
}

// RowLimit caps the provenance table size so pathological rewrites cannot
// blow up the explanation stage; the paper's explanations cite at most a
// handful of representative tuples.
const RowLimit = 64

// Tracker computes provenance against one database. It keeps one executor
// alive across Track calls — so every provenance query benefits from the
// executor's compiled-plan cache — and memoizes the rewritten statement per
// (core SQL, to-explain tuple), so re-tracking the same result (the
// CycleSQL loop explains candidates repeatedly during training and
// experiments), including through a textually identical core arriving as a
// distinct AST from another beam, reuses the compiled statement instead of
// rebuilding and recompiling it. A Tracker is safe for concurrent Track
// calls: the memo maps are guarded by a mutex and the executor is safe for
// concurrent Exec, so parallel beam candidates can share one tracker.
type Tracker struct {
	db *storage.Database
	ex *sqleval.Executor
	// mu guards the two memo maps below; rewrites themselves are immutable
	// once published (the executor never mutates statements), so concurrent
	// Track calls share them freely.
	mu       sync.Mutex
	rewrites map[rewriteKey]*sqlast.SelectStmt
	// coreSQL memoizes the rendered SQL per core AST, so the common case —
	// re-tracking the same candidate object — skips the O(core) render
	// and goes straight to the rewrite lookup.
	coreSQL map[*sqlast.SelectCore]string
}

// rewriteKey identifies a provenance rewrite: the rendered SQL of the core
// (deterministic, so textually identical cores share an entry regardless
// of AST identity) plus the binary encoding of the to-explain tuple — the
// only inputs the rewriting rules vary on.
type rewriteKey struct {
	core string
	row  string
}

// maxCachedRewrites bounds the per-tracker rewrite cache.
const maxCachedRewrites = 256

// NewTracker returns a tracker over db.
func NewTracker(db *storage.Database) *Tracker {
	return &Tracker{db: db, ex: sqleval.New(db)}
}

// DB returns the database the tracker is bound to.
func (t *Tracker) DB() *storage.Database { return t.db }

// Track computes the provenance of result row rowIdx of stmt's output.
// result must be the relation produced by executing stmt on t's database.
// For empty results, Track returns a Provenance with Empty set and no
// Parts. Track never aborts early; callers that need cancellation use
// TrackContext.
func (t *Tracker) Track(stmt *sqlast.SelectStmt, result *sqltypes.Relation, rowIdx int) (*Provenance, error) {
	return t.TrackContext(context.Background(), stmt, result, rowIdx)
}

// TrackContext is Track with cancellation: the provenance queries the
// rewriting rules produce execute under ctx, so cancelling it aborts the
// tracking mid-query. Cancellation is returned as the context's error —
// never degraded to an operation-level-only Part the way ordinary rewrite
// execution failures are, since a cancelled rewrite says nothing about
// the rewrite itself.
func (t *Tracker) TrackContext(ctx context.Context, stmt *sqlast.SelectStmt, result *sqltypes.Relation, rowIdx int) (*Provenance, error) {
	p := &Provenance{Original: stmt, ResultSet: result, ResultColumns: result.Columns}
	if result.NumRows() == 0 {
		p.Empty = true
		return p, nil
	}
	if rowIdx < 0 || rowIdx >= result.NumRows() {
		return nil, fmt.Errorf("provenance: row %d out of range (%d rows)", rowIdx, result.NumRows())
	}
	p.Result = result.Rows[rowIdx]
	for _, core := range stmt.Cores {
		rw := t.rewrite(core, p.Result)
		rel, err := t.ex.ExecContext(ctx, rw)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			// A rewrite that fails to execute (for example a Rule 1
			// condition against a column dropped by the core) degrades to
			// operation-level-only provenance for this part.
			p.Parts = append(p.Parts, Part{Core: core, Rewritten: rw})
			continue
		}
		if rel.NumRows() > RowLimit {
			rel.Rows = rel.Rows[:RowLimit]
		}
		p.Parts = append(p.Parts, Part{Core: core, Rewritten: rw, Table: rel})
	}
	return p, nil
}

// coreKey must be called with t.mu held.
func (t *Tracker) coreKey(core *sqlast.SelectCore) string {
	if s, ok := t.coreSQL[core]; ok {
		return s
	}
	s := core.SQL()
	if t.coreSQL == nil {
		t.coreSQL = make(map[*sqlast.SelectCore]string)
	} else if len(t.coreSQL) >= maxCachedRewrites {
		clear(t.coreSQL)
	}
	t.coreSQL[core] = s
	return s
}

func (t *Tracker) rewrite(core *sqlast.SelectCore, result sqltypes.Row) *sqlast.SelectStmt {
	// The whole memo round-trip runs under the lock; RewriteCore is a
	// cheap AST clone next to executing the provenance query, so a finer
	// lock would buy nothing.
	t.mu.Lock()
	defer t.mu.Unlock()
	k := rewriteKey{core: t.coreKey(core), row: string(result.AppendKey(nil))}
	if rw, ok := t.rewrites[k]; ok {
		return rw
	}
	rw := RewriteCore(t.db, core, result)
	if t.rewrites == nil {
		t.rewrites = make(map[rewriteKey]*sqlast.SelectStmt)
	} else if len(t.rewrites) >= maxCachedRewrites {
		clear(t.rewrites)
	}
	t.rewrites[k] = rw
	return rw
}

// Track computes the provenance of result row rowIdx of stmt's output with
// a one-shot tracker. Callers tracking repeatedly against the same
// database should hold a Tracker instead to reuse compiled statements.
func Track(db *storage.Database, stmt *sqlast.SelectStmt, result *sqltypes.Relation, rowIdx int) (*Provenance, error) {
	return NewTracker(db).Track(stmt, result, rowIdx)
}

// RewriteCore applies the three rewriting rules to a single SELECT core,
// producing the provenance query. It never mutates core.
func RewriteCore(db *storage.Database, core *sqlast.SelectCore, result sqltypes.Row) *sqlast.SelectStmt {
	rw := core.Clone()

	// Rule 1: pin the query to the to-explain tuple. Only plain column
	// projections translate to conditions; aggregate outputs and stars are
	// skipped per the paper.
	var pins []sqlast.Expr
	nonStar := nonStarItems(core)
	if len(nonStar) == len(result) {
		for i, it := range nonStar {
			cr, ok := it.Expr.(*sqlast.ColumnRef)
			if !ok || cr.Column == "*" {
				continue
			}
			if result[i].IsNull() {
				pins = append(pins, &sqlast.IsNullExpr{X: sqlast.CloneExpr(cr)})
			} else {
				pins = append(pins, sqlast.Eq(sqlast.CloneExpr(cr), sqlast.Lit(result[i])))
			}
		}
	}

	// Rule 3: deconstruct aggregation so collapsed rows are visible again.
	rw.GroupBy = nil
	rw.Having = nil
	rw.OrderBy = nil
	rw.Limit = nil
	rw.Offset = nil
	rw.Distinct = false

	// Rule 2: project every referenced column plus the primary keys of the
	// referenced tables.
	rw.Items = rule2Items(db, core)

	rw.Where = sqlast.And(rw.Where, sqlast.FromAnd(pins))
	return sqlast.Wrap(rw)
}

// nonStarItems returns the core's projection items when none is a star;
// star projections make positional alignment with the result ambiguous.
func nonStarItems(core *sqlast.SelectCore) []sqlast.SelectItem {
	for _, it := range core.Items {
		if it.Star {
			return nil
		}
	}
	return core.Items
}

// rule2Items builds the enhanced projection list: referenced columns in
// query order (SELECT, WHERE, ON, GROUP BY, HAVING, ORDER BY), then the
// primary keys of every referenced base table.
func rule2Items(db *storage.Database, core *sqlast.SelectCore) []sqlast.SelectItem {
	var items []sqlast.SelectItem
	seen := map[string]bool{}
	add := func(cr *sqlast.ColumnRef) {
		if cr == nil || cr.Column == "*" {
			return
		}
		key := strings.ToLower(cr.Table) + "." + strings.ToLower(cr.Column)
		if seen[key] {
			return
		}
		seen[key] = true
		cp := *cr
		items = append(items, sqlast.SelectItem{Expr: &cp})
	}
	for _, cr := range core.ColumnRefs() {
		add(cr)
	}
	// Primary keys of referenced tables, qualified by the effective name
	// so aliased self-joins stay unambiguous.
	for _, ref := range core.Tables() {
		if ref.Sub != nil {
			continue
		}
		t := db.Schema.Table(ref.Name)
		if t == nil {
			continue
		}
		for _, pk := range t.PrimaryKeys() {
			add(&sqlast.ColumnRef{Table: ref.Effective(), Column: pk})
		}
	}
	if len(items) == 0 {
		// A query referencing no columns at all (SELECT count(*) FROM t)
		// still needs a projection; fall back to star.
		items = append(items, sqlast.SelectItem{Star: true})
	}
	return items
}

// FilterValues extracts, for presentation, the (column, op, value) triples
// of the core's WHERE conjuncts that compare a column to a literal.
type FilterValue struct {
	Column *sqlast.ColumnRef
	Op     string
	Value  sqltypes.Value
}

// Filters lists the literal comparisons in the core's WHERE clause.
func Filters(core *sqlast.SelectCore) []FilterValue {
	var out []FilterValue
	for _, c := range sqlast.Conjuncts(core.Where) {
		switch x := c.(type) {
		case *sqlast.Binary:
			cr, okL := x.L.(*sqlast.ColumnRef)
			lit, okR := x.R.(*sqlast.Literal)
			if okL && okR {
				out = append(out, FilterValue{Column: cr, Op: x.Op, Value: lit.Value})
			}
		case *sqlast.LikeExpr:
			cr, okL := x.X.(*sqlast.ColumnRef)
			lit, okR := x.Pattern.(*sqlast.Literal)
			if okL && okR {
				op := "LIKE"
				if x.Not {
					op = "NOT LIKE"
				}
				out = append(out, FilterValue{Column: cr, Op: op, Value: lit.Value})
			}
		}
	}
	return out
}
