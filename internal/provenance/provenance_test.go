package provenance

import (
	"strings"
	"testing"

	"cyclesql/internal/datasets"
	"cyclesql/internal/sqleval"
	"cyclesql/internal/sqlparse"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

func track(t *testing.T, db *storage.Database, sql string, rowIdx int) *Provenance {
	t.Helper()
	stmt := sqlparse.MustParse(sql)
	rel, err := sqleval.New(db).Exec(stmt)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	p, err := Track(db, stmt, rel, rowIdx)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The paper's Fig 4 example: provenance of count(*)=2 for the Airbus query
// must be the two flights with aid 3.
func TestTrackPaperFig4(t *testing.T) {
	db := datasets.FlightDB()
	p := track(t, db, "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.name = 'Airbus A340-300'", 0)
	if p.Empty || len(p.Parts) != 1 {
		t.Fatalf("parts: %+v", p)
	}
	part := p.Parts[0]
	if part.Table == nil || part.Table.NumRows() != 2 {
		t.Fatalf("provenance rows = %v", part.Table)
	}
	// Rule 3 must have removed the aggregate from the rewritten SQL.
	rw := part.Rewritten.SQL()
	if strings.Contains(strings.ToLower(rw), "count(") {
		t.Fatalf("aggregate survived rewrite: %s", rw)
	}
	// Rule 2 must project the filter column and the flight primary key.
	idx := part.Table.ColumnIndex("name")
	if idx < 0 {
		t.Fatalf("filter column missing from provenance: %v", part.Table.Columns)
	}
	if part.Table.ColumnIndex("flno") < 0 {
		t.Fatalf("primary key missing from provenance: %v", part.Table.Columns)
	}
	for _, row := range part.Table.Rows {
		if row[idx].Text() != "Airbus A340-300" {
			t.Fatalf("provenance row leaked: %v", row)
		}
	}
}

// Rule 1: a plain projection pins the provenance to the selected tuple.
func TestTrackRule1PinsResult(t *testing.T) {
	db := datasets.FlightDB()
	p := track(t, db, "SELECT name FROM aircraft WHERE distance > 4000", 0)
	part := p.Parts[0]
	nameIdx := part.Table.ColumnIndex("name")
	if nameIdx < 0 {
		t.Fatal("name column missing")
	}
	want := p.Result[0].Text()
	for _, row := range part.Table.Rows {
		if row[nameIdx].Text() != want {
			t.Fatalf("rule 1 failed to pin: got %v want %s", row[nameIdx], want)
		}
	}
	// Rewritten SQL carries the pin.
	if !strings.Contains(part.Rewritten.SQL(), want) {
		t.Fatalf("pin missing from rewrite: %s", part.Rewritten.SQL())
	}
}

// Grouped query: Rule 1 pins the group key, Rule 3 removes GROUP BY, and
// the provenance contains exactly the group's rows.
func TestTrackGroupedQuery(t *testing.T) {
	db := datasets.FlightDB()
	p := track(t, db, "SELECT origin, count(*) FROM flight GROUP BY origin", 0)
	part := p.Parts[0]
	rw := strings.ToLower(part.Rewritten.SQL())
	if strings.Contains(rw, "group by") {
		t.Fatalf("GROUP BY survived: %s", rw)
	}
	origin := p.Result[0].Text()
	n := int64(p.Result[1].Int())
	if part.Table.NumRows() != int(n) {
		t.Fatalf("group provenance = %d rows, result says %d", part.Table.NumRows(), n)
	}
	oIdx := part.Table.ColumnIndex("origin")
	for _, row := range part.Table.Rows {
		if row[oIdx].Text() != origin {
			t.Fatalf("row outside group: %v", row)
		}
	}
}

// ORDER BY / LIMIT queries: the argmax row is pinned via Rule 1.
func TestTrackArgmax(t *testing.T) {
	db := datasets.FlightDB()
	p := track(t, db, "SELECT name FROM aircraft ORDER BY distance DESC LIMIT 1", 0)
	part := p.Parts[0]
	if part.Table.NumRows() != 1 {
		t.Fatalf("argmax provenance rows = %d", part.Table.NumRows())
	}
	if got := part.Table.Rows[0][part.Table.ColumnIndex("name")].Text(); got != "Boeing 747-400" {
		t.Fatalf("argmax pinned wrong row: %s", got)
	}
}

func TestTrackEmptyResult(t *testing.T) {
	db := datasets.FlightDB()
	p := track(t, db, "SELECT name FROM aircraft WHERE name = 'Concorde'", 0)
	if !p.Empty || len(p.Parts) != 0 {
		t.Fatalf("empty result must produce empty provenance: %+v", p)
	}
}

func TestTrackCompoundQuery(t *testing.T) {
	db := datasets.WorldDB()
	sql := "SELECT T1.name FROM country AS T1 JOIN countrylanguage AS T2 ON T1.code = T2.countrycode WHERE T2.language = 'English' INTERSECT SELECT T1.name FROM country AS T1 JOIN countrylanguage AS T2 ON T1.code = T2.countrycode WHERE T2.language = 'French'"
	stmt := sqlparse.MustParse(sql)
	rel, err := sqleval.New(db).Exec(stmt)
	if err != nil {
		t.Fatal(err)
	}
	// Explain the Seychelles row specifically.
	idx := -1
	for i, row := range rel.Rows {
		if row[0].Text() == "Seychelles" {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatalf("no Seychelles row: %v", rel.Rows)
	}
	p, err := Track(db, stmt, rel, idx)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Parts) != 2 {
		t.Fatalf("compound provenance parts = %d", len(p.Parts))
	}
	for pi, part := range p.Parts {
		if part.Table == nil || part.Table.NumRows() == 0 {
			t.Fatalf("part %d empty", pi)
		}
		nIdx := part.Table.ColumnIndex("name")
		for _, row := range part.Table.Rows {
			if row[nIdx].Text() != "Seychelles" {
				t.Fatalf("part %d not pinned: %v", pi, row)
			}
		}
	}
}

func TestTrackRowOutOfRange(t *testing.T) {
	db := datasets.FlightDB()
	stmt := sqlparse.MustParse("SELECT name FROM aircraft")
	rel, _ := sqleval.New(db).Exec(stmt)
	if _, err := Track(db, stmt, rel, 99); err == nil {
		t.Fatal("out-of-range row must error")
	}
}

func TestTrackRowLimit(t *testing.T) {
	db := datasets.WorldDB()
	// A selective-enough pinless query: star projection keeps Rule 1 off.
	p := track(t, db, "SELECT * FROM countrylanguage", 0)
	if p.Parts[0].Table.NumRows() > RowLimit {
		t.Fatalf("provenance exceeds RowLimit: %d", p.Parts[0].Table.NumRows())
	}
}

func TestTrackNullResultPin(t *testing.T) {
	db := datasets.FlightDB()
	// LEFT JOIN produces NULL flno for unused aircraft; pin must use IS NULL.
	p := track(t, db, "SELECT T2.flno FROM aircraft AS T1 LEFT JOIN flight AS T2 ON T1.aid = T2.aid WHERE T2.flno IS NULL", 0)
	if p.Empty {
		t.Fatal("expected rows")
	}
	rw := p.Parts[0].Rewritten.SQL()
	if !strings.Contains(rw, "IS NULL") {
		t.Fatalf("NULL pin missing: %s", rw)
	}
}

func TestFiltersExtraction(t *testing.T) {
	stmt := sqlparse.MustParse("SELECT name FROM country WHERE continent = 'Europe' AND population >= 80000 AND name LIKE 'A%'")
	fs := Filters(stmt.Core())
	if len(fs) != 3 {
		t.Fatalf("filters = %d", len(fs))
	}
	if fs[0].Op != "=" || fs[0].Value.Text() != "Europe" {
		t.Fatalf("first filter: %+v", fs[0])
	}
	if fs[2].Op != "LIKE" {
		t.Fatalf("like filter: %+v", fs[2])
	}
}

func TestRewriteDoesNotMutateOriginal(t *testing.T) {
	db := datasets.FlightDB()
	stmt := sqlparse.MustParse("SELECT count(*) FROM flight WHERE origin = 'Chicago'")
	before := stmt.SQL()
	RewriteCore(db, stmt.Core(), sqltypes.Row{sqltypes.NewInt(2)})
	if stmt.SQL() != before {
		t.Fatal("RewriteCore must not mutate its input")
	}
}
