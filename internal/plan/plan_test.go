package plan

import "testing"

func TestRender(t *testing.T) {
	tree := &Tree{Root: &Node{
		Kind: "project", EstRows: 4, ActRows: 4, ActPairs: -1,
		Children: []*Node{{
			Kind: "join", Label: "A.aid = F.aid", Detail: "index build",
			EstRows: 120.5, ActRows: 118, ActPairs: 118,
			Children: []*Node{
				{Kind: "probe", Label: "Aircraft.name = 'Boeing'", EstRows: 1, ActRows: 1, ActPairs: -1},
				{Kind: "scan", Label: "Flight", EstRows: -1, ActRows: 600, ActPairs: -1},
			},
		}},
	}}
	want := `project (est=4 act=4)
└─ join A.aid = F.aid [index build] (est=120.50 act=118 pairs=118)
   ├─ probe Aircraft.name = 'Boeing' (est=1 act=1)
   └─ scan Flight (est=? act=600)
`
	if got := tree.Render(); got != want {
		t.Fatalf("Render mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestRenderDeepNesting(t *testing.T) {
	tree := &Tree{Root: &Node{
		Kind: "compound", Label: "UNION", EstRows: -1, ActRows: 3, ActPairs: -1,
		Children: []*Node{
			{Kind: "project", EstRows: -1, ActRows: 2, ActPairs: -1,
				Children: []*Node{{Kind: "scan", Label: "T", EstRows: 10, ActRows: 10, ActPairs: -1}}},
			{Kind: "project", EstRows: -1, ActRows: 1, ActPairs: -1,
				Children: []*Node{{Kind: "scan", Label: "U", EstRows: 7, ActRows: 7, ActPairs: -1}}},
		},
	}}
	want := `compound UNION (est=? act=3)
├─ project (est=? act=2)
│  └─ scan T (est=10 act=10)
└─ project (est=? act=1)
   └─ scan U (est=7 act=7)
`
	if got := tree.Render(); got != want {
		t.Fatalf("Render mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestEstFormatting(t *testing.T) {
	cases := []struct {
		est  float64
		want string
	}{{-1, "?"}, {0, "0"}, {3, "3"}, {1.0 / 3 * 9, "3"}, {0.5, "0.50"}, {1234.25, "1234.25"}}
	for _, c := range cases {
		if got := fmtEst(c.est); got != c.want {
			t.Errorf("fmtEst(%v) = %q, want %q", c.est, got, c.want)
		}
	}
}
