// Package plan holds the executor-independent EXPLAIN plan tree: a
// deterministic, diff-friendly rendering of the access paths, join
// strategies, and cardinality estimates a compiled query chose, annotated
// with the actual row counts one execution observed. The golden
// plan-snapshot suite diffs these renderings verbatim, so Render is
// deliberately free of anything non-deterministic — no pointers, no map
// iteration, no timing.
package plan

import (
	"fmt"
	"strconv"
	"strings"
)

// Node is one operator in a plan tree.
type Node struct {
	// Kind names the operator: "scan", "probe", "range", "join", "filter",
	// "aggregate", "stream", "project", "compound", "derived".
	Kind string
	// Label identifies the operand — a table name, join key list, or
	// compound operator.
	Label string
	// Detail carries operator-specific choices: the probed literal, range
	// bounds, build strategy, reorder note.
	Detail string
	// EstRows is the planner's output-cardinality estimate; negative means
	// the planner made no estimate (syntactic mode, or a non-costed node).
	EstRows float64
	// ActRows is the row count one execution actually produced (accumulated
	// across re-executions for correlated subplans); -1 when the node never
	// executed (e.g. short-circuited subquery).
	ActRows int64
	// ActPairs is, for join nodes, how many candidate row pairs the join
	// visited — the cost the build-side and probe choices are trying to
	// minimize; -1 elsewhere.
	ActPairs int64
	Children []*Node
}

// Tree is a complete rendered-plan root.
type Tree struct {
	Root *Node
}

// Render returns the deterministic textual form of the tree, one operator
// per line, children indented with box-drawing connectors:
//
//	project (est=4 act=4)
//	└─ join A.aid = F.aid [index build] (est=120 act=118 pairs=118)
//	   ├─ probe Aircraft.name = 'Boeing' (est=1 act=1)
//	   └─ scan Flight (est=600 act=600)
func (t *Tree) Render() string {
	var b strings.Builder
	render(&b, t.Root, "", "", "")
	return b.String()
}

func render(b *strings.Builder, n *Node, self, childPrefix, _ string) {
	b.WriteString(self)
	b.WriteString(n.Kind)
	if n.Label != "" {
		b.WriteByte(' ')
		b.WriteString(n.Label)
	}
	if n.Detail != "" {
		b.WriteString(" [")
		b.WriteString(n.Detail)
		b.WriteByte(']')
	}
	b.WriteString(" (")
	b.WriteString("est=")
	b.WriteString(fmtEst(n.EstRows))
	b.WriteString(" act=")
	b.WriteString(fmtAct(n.ActRows))
	if n.ActPairs >= 0 {
		b.WriteString(" pairs=")
		b.WriteString(strconv.FormatInt(n.ActPairs, 10))
	}
	b.WriteString(")\n")
	for i, c := range n.Children {
		conn, cont := "├─ ", "│  "
		if i == len(n.Children)-1 {
			conn, cont = "└─ ", "   "
		}
		render(b, c, childPrefix+conn, childPrefix+cont, "")
	}
}

// fmtEst renders an estimate: "?" for none, integers without a fraction,
// everything else with two decimals (enough to see selectivity fractions,
// stable across platforms).
func fmtEst(est float64) string {
	if est < 0 {
		return "?"
	}
	if est == float64(int64(est)) && est < 1e15 {
		return strconv.FormatInt(int64(est), 10)
	}
	return fmt.Sprintf("%.2f", est)
}

func fmtAct(act int64) string {
	if act < 0 {
		return "?"
	}
	return strconv.FormatInt(act, 10)
}
