package faultinject

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"cyclesql/internal/datasets"
	"cyclesql/internal/nl2sql"
	"cyclesql/internal/nli"
	"cyclesql/internal/resilience"
	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// okVerifier accepts everything instantly; the faults are the wrapper's.
type okVerifier struct{}

func (okVerifier) Name() string                      { return "ok" }
func (okVerifier) Score(string, nli.Premise) float64 { return 0.75 }
func (okVerifier) Verify(string, nli.Premise) bool   { return true }

// verdict runs one wrapped verify call and classifies the outcome.
func verdict(t *testing.T, v nli.Verifier, ctx context.Context, key string) error {
	t.Helper()
	_, err := nli.VerifyContext(ctx, v, key, nli.Premise{SQL: "SELECT 1"})
	return err
}

// TestDrawsAreDeterministic: two injectors with the same config fault the
// same calls — the property the chaos-parity suite stands on.
func TestDrawsAreDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, ErrorRate: 0.3}
	a, b := New(cfg).WrapVerifier(okVerifier{}), New(cfg).WrapVerifier(okVerifier{})
	faulted := 0
	for i := 0; i < 400; i++ {
		key := fmt.Sprintf("question %d", i)
		ea := verdict(t, a, context.Background(), key)
		eb := verdict(t, b, context.Background(), key)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("same config diverged on call %d: %v vs %v", i, ea, eb)
		}
		if ea != nil {
			faulted++
			if !resilience.IsTransient(ea) {
				t.Fatalf("injected error must be transient: %v", ea)
			}
		}
	}
	// The hash is uniform enough that 30% of 400 keys lands well inside
	// [60, 180]; the exact count is pinned by the seed either way.
	if faulted < 60 || faulted > 180 {
		t.Fatalf("ErrorRate 0.3 fired on %d/400 calls", faulted)
	}
	if New(Config{Seed: 8, ErrorRate: 0.3}).WrapVerifier(okVerifier{}) == a {
		t.Fatal("different seeds must build distinct wrappers")
	}
}

// TestAttemptRerollsFaults: the retry attempt number is hashed into every
// draw, so a call that faulted on attempt 1 gets a fresh draw on attempt
// 2 — without this, retries could never heal anything.
func TestAttemptRerollsFaults(t *testing.T) {
	v := New(Config{Seed: 7, ErrorRate: 0.5}).WrapVerifier(okVerifier{})
	healed := false
	for i := 0; i < 64 && !healed; i++ {
		key := fmt.Sprintf("q%d", i)
		if verdict(t, v, context.Background(), key) == nil {
			continue // no fault on attempt 1, nothing to reroll
		}
		retry := resilience.WithAttempt(context.Background(), 2)
		if verdict(t, v, retry, key) == nil {
			healed = true
		}
	}
	if !healed {
		t.Fatal("no faulted call healed on attempt 2 across 64 keys — attempts are not rerolling draws")
	}
}

// TestFaultKindsIndependent pins each rate to its own fault kind and the
// stats counter that records it.
func TestFaultKindsIndependent(t *testing.T) {
	t.Run("error", func(t *testing.T) {
		in := New(Config{Seed: 1, ErrorRate: 1})
		err := verdict(t, in.WrapVerifier(okVerifier{}), context.Background(), "q")
		if err == nil || !resilience.IsTransient(err) || !strings.Contains(err.Error(), "injected error") {
			t.Fatalf("ErrorRate 1 must fault every call transiently: %v", err)
		}
		if s := in.Stats(); s.Errors != 1 || s.Total() != 1 {
			t.Fatalf("stats must count the error: %+v", s)
		}
	})
	t.Run("panic", func(t *testing.T) {
		in := New(Config{Seed: 1, PanicRate: 1})
		func() {
			defer func() {
				v := recover()
				err, ok := v.(error)
				if !ok || !resilience.IsTransient(err) {
					t.Fatalf("panic value must be a transient error, got %v", v)
				}
			}()
			verdict(t, in.WrapVerifier(okVerifier{}), context.Background(), "q")
			t.Fatal("PanicRate 1 must panic")
		}()
		if s := in.Stats(); s.Panics != 1 {
			t.Fatalf("stats must count the panic: %+v", s)
		}
	})
	t.Run("hang resolves at HangTimeout", func(t *testing.T) {
		in := New(Config{Seed: 1, HangRate: 1, HangTimeout: time.Millisecond})
		start := time.Now()
		err := verdict(t, in.WrapVerifier(okVerifier{}), context.Background(), "q")
		if err == nil || !resilience.IsTransient(err) || !strings.Contains(err.Error(), "hang") {
			t.Fatalf("a hang must resolve into a transient timeout error: %v", err)
		}
		if time.Since(start) > 5*time.Second {
			t.Fatal("hang ignored its timeout")
		}
		if s := in.Stats(); s.Hangs != 1 {
			t.Fatalf("stats must count the hang: %+v", s)
		}
	})
	t.Run("hang honors cancellation", func(t *testing.T) {
		in := New(Config{Seed: 1, HangRate: 1, HangTimeout: time.Hour})
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- verdict(t, in.WrapVerifier(okVerifier{}), ctx, "q") }()
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled hang must return the context error: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("hang ignored cancellation")
		}
	})
	t.Run("latency slows but never fails", func(t *testing.T) {
		in := New(Config{Seed: 1, LatencyRate: 1, Latency: time.Microsecond})
		if err := verdict(t, in.WrapVerifier(okVerifier{}), context.Background(), "q"); err != nil {
			t.Fatalf("latency alone must not fail the call: %v", err)
		}
		if s := in.Stats(); s.Latencies != 1 || s.Errors+s.Hangs+s.Panics != 0 {
			t.Fatalf("stats must count only the latency: %+v", s)
		}
	})
}

// TestDisabledInjectorUnwraps: the zero config adds no wrappers at all,
// keeping the fault-free fast path allocation- and indirection-free.
func TestDisabledInjectorUnwraps(t *testing.T) {
	in := New(Config{})
	if in.Config().Enabled() {
		t.Fatal("zero config must be disabled")
	}
	m := nl2sql.MustByName("resdsql-3b")
	if in.WrapModel(m) != m {
		t.Fatal("disabled injector must return the model unwrapped")
	}
	var v nli.Verifier = okVerifier{}
	if in.WrapVerifier(v) != v {
		t.Fatal("disabled injector must return the verifier unwrapped")
	}
	// LatencyRate without a Latency duration injects nothing either.
	if (Config{LatencyRate: 1}).Enabled() {
		t.Fatal("latency rate without a duration must stay disabled")
	}
}

// TestWrappersDelegateDiagnostics: Name, Score and the plain synchronous
// paths bypass injection — only the loop's context-aware calls fault.
func TestWrappersDelegateDiagnostics(t *testing.T) {
	in := New(Config{Seed: 1, ErrorRate: 1, PanicRate: 1})
	v := in.WrapVerifier(okVerifier{})
	if v.Name() != "ok" || v.Score("h", nli.Premise{}) != 0.75 || !v.Verify("h", nli.Premise{}) {
		t.Fatal("diagnostic reads must delegate untouched")
	}
	m := in.WrapModel(nl2sql.MustByName("resdsql-3b"))
	if m.Name() != "resdsql-3b" || m.BaseLatency() <= 0 {
		t.Fatal("model metadata must delegate untouched")
	}
	bench := datasets.Spider()
	ex := bench.Dev[0]
	if cands := m.Translate(bench.Name, ex, bench.DB(ex.DBName), 3); len(cands) == 0 {
		t.Fatal("plain Translate must delegate untouched")
	}
	if s := in.Stats(); s.Total() != 0 {
		t.Fatalf("no context-aware call ran, nothing may have fired: %+v", s)
	}
}

// TestWrapModelInjects: the beam faults on its context path and the error
// reaches the caller before any model work.
func TestWrapModelInjects(t *testing.T) {
	in := New(Config{Seed: 1, ErrorRate: 1})
	m := in.WrapModel(nl2sql.MustByName("resdsql-3b"))
	bench := datasets.Spider()
	ex := bench.Dev[0]
	cands, err := nl2sql.TranslateContext(context.Background(), m, bench.Name, ex, bench.DB(ex.DBName), 3)
	if err == nil || cands != nil || !resilience.IsTransient(err) {
		t.Fatalf("beam must fault transiently: %v, %v", cands, err)
	}
}

// stubFeedback returns a fixed premise; faults are the wrapper's.
type stubFeedback struct{}

func (stubFeedback) Name() string { return "stub" }
func (stubFeedback) Premise(context.Context, *storage.Database, *sqlast.SelectStmt, *sqltypes.Relation) (nli.Premise, error) {
	return nli.Premise{SQL: "SELECT 1", Explanation: "one row"}, nil
}

// TestWrapFeedbackInjects: premise generation faults per candidate SQL.
func TestWrapFeedbackInjects(t *testing.T) {
	in := New(Config{Seed: 1, ErrorRate: 1})
	f := in.WrapFeedback(stubFeedback{})
	if f.Name() != "stub" {
		t.Fatal("feedback name must delegate untouched")
	}
	stmt := sqlast.Wrap(&sqlast.SelectCore{
		Items: []sqlast.SelectItem{{Star: true}},
		From:  &sqlast.FromClause{Base: sqlast.TableRef{Name: "t"}},
	})
	_, err := f.Premise(context.Background(), nil, stmt, nil)
	if err == nil || !resilience.IsTransient(err) {
		t.Fatalf("feedback must fault transiently: %v", err)
	}
	if s := in.Stats(); s.Errors != 1 {
		t.Fatalf("stats must count the feedback fault: %+v", s)
	}
}
