// Package faultinject is the chaos half of the resilience layer: a
// deterministic, seedable fault injector that wraps the CycleSQL loop's
// three model-call surfaces — the translator beam (nl2sql.Model), the NLI
// verifier (nli.Verifier) and the feedback generator (core.Feedback) —
// and makes them fail the way remote inference fails: errors, hangs,
// crashes, and added latency, each with an independent rate.
//
// Every fault decision is a pure function of (Seed, fault kind, call
// identity, retry attempt) — there is no shared RNG stream — so a chaos
// run injects the same faults into the same calls regardless of worker
// count, goroutine schedule, or parallelism level. That is what makes
// the chaos-parity suite possible: with retries on, a faulted sweep must
// reproduce the fault-free sweep's Results bit for bit, at any
// parallelism. The retry attempt number (resilience.Attempt, threaded
// through the context by resilience.Retry.Do) is hashed into each draw,
// so a retried call rerolls its faults instead of hitting the same one
// forever.
//
// Injected errors and panics are marked transient (resilience.
// MarkTransient), so the retry policy recognizes them as retryable
// infrastructure weather; a hang resolves into a transient timeout error
// after HangTimeout — modeling a client-side inference timeout — so
// chaos runs without per-call deadlines cannot deadlock.
//
// The wrappers inject on the context-aware call paths the loop actually
// uses (TranslateContext, VerifyContext, Premise); the plain synchronous
// Translate/Verify/Score/Name delegate untouched, so diagnostic reads
// such as score displays stay fault-free.
package faultinject

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync/atomic"
	"time"

	"cyclesql/internal/core"
	"cyclesql/internal/datasets"
	"cyclesql/internal/nl2sql"
	"cyclesql/internal/nli"
	"cyclesql/internal/resilience"
	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// Config sets the independent per-call fault rates, all in [0, 1].
type Config struct {
	// Seed keys every fault draw; two runs with the same Seed inject
	// identical faults into identical calls.
	Seed int64
	// ErrorRate is P(the call returns a transient error).
	ErrorRate float64
	// HangRate is P(the call hangs); the hang ends at the caller's context
	// cancellation or after HangTimeout, whichever comes first, resolving
	// into a transient timeout error.
	HangRate float64
	// HangTimeout is the simulated client-side inference timeout bounding
	// a hang (default 100ms).
	HangTimeout time.Duration
	// PanicRate is P(the call panics); the panic value is a
	// transient-marked error, so the loop's recovery keeps it retryable.
	PanicRate float64
	// LatencyRate is P(the call is slowed by Latency) — slowdowns alone
	// never fail a call, they just cost wall-clock.
	LatencyRate float64
	Latency     time.Duration
}

// Enabled reports whether any fault kind can fire.
func (c Config) Enabled() bool {
	return c.ErrorRate > 0 || c.HangRate > 0 || c.PanicRate > 0 ||
		(c.LatencyRate > 0 && c.Latency > 0)
}

func (c Config) hangTimeout() time.Duration {
	if c.HangTimeout > 0 {
		return c.HangTimeout
	}
	return 100 * time.Millisecond
}

// Stats counts the faults an Injector has fired, by kind.
type Stats struct {
	Errors    int64
	Hangs     int64
	Panics    int64
	Latencies int64
}

// Total is the number of faults fired across all kinds.
func (s Stats) Total() int64 { return s.Errors + s.Hangs + s.Panics + s.Latencies }

// Injector draws faults deterministically from a Config and counts what
// it fires. One injector is shared by all the wrappers it hands out; it
// is safe for concurrent use.
type Injector struct {
	cfg Config

	errors    atomic.Int64
	hangs     atomic.Int64
	panics    atomic.Int64
	latencies atomic.Int64
}

// New returns an injector for the config.
func New(cfg Config) *Injector { return &Injector{cfg: cfg} }

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// Stats snapshots the fired-fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Errors:    in.errors.Load(),
		Hangs:     in.hangs.Load(),
		Panics:    in.panics.Load(),
		Latencies: in.latencies.Load(),
	}
}

// draw decides one fault kind for one call attempt: a pure function of
// (seed, kind, op, key, attempt) — schedule-independent by construction.
func (in *Injector) draw(kind, op, key string, attempt int, rate float64) bool {
	if rate <= 0 {
		return false
	}
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(in.cfg.Seed >> (8 * i))
		buf[8+i] = byte(attempt >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(op))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return float64(h.Sum64()>>11)/float64(1<<53) < rate
}

// inject fires this attempt's faults for one call, identified by (op,
// key). Latency is charged first (a slow call can still fail), then the
// failure kinds in fixed order: panic, hang, error. It returns nil when
// the call should proceed to the real implementation.
func (in *Injector) inject(ctx context.Context, op, key string) error {
	attempt := resilience.Attempt(ctx)
	if in.draw("latency", op, key, attempt, in.cfg.LatencyRate) && in.cfg.Latency > 0 {
		in.latencies.Add(1)
		t := time.NewTimer(in.cfg.Latency)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
	if in.draw("panic", op, key, attempt, in.cfg.PanicRate) {
		in.panics.Add(1)
		panic(resilience.MarkTransient(fmt.Errorf("faultinject: injected panic in %s", op)))
	}
	if in.draw("hang", op, key, attempt, in.cfg.HangRate) {
		in.hangs.Add(1)
		t := time.NewTimer(in.cfg.hangTimeout())
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return resilience.MarkTransient(fmt.Errorf("faultinject: injected hang in %s timed out", op))
		}
	}
	if in.draw("error", op, key, attempt, in.cfg.ErrorRate) {
		in.errors.Add(1)
		return resilience.MarkTransient(fmt.Errorf("faultinject: injected error in %s", op))
	}
	return nil
}

// WrapModel wraps a translation model; the returned model implements
// nl2sql.ContextModel and injects faults on TranslateContext. An
// injector with no enabled faults returns m unwrapped.
func (in *Injector) WrapModel(m nl2sql.Model) nl2sql.Model {
	if !in.cfg.Enabled() {
		return m
	}
	return &model{in: in, m: m}
}

type model struct {
	in *Injector
	m  nl2sql.Model
}

func (w *model) Name() string               { return w.m.Name() }
func (w *model) BaseLatency() time.Duration { return w.m.BaseLatency() }

// Translate implements nl2sql.Model, delegating untouched: the loop's
// call path is TranslateContext, which carries the budget faults honor.
func (w *model) Translate(benchmark string, ex datasets.Example, db *storage.Database, k int) []nl2sql.Candidate {
	return w.m.Translate(benchmark, ex, db, k)
}

// TranslateContext implements nl2sql.ContextModel with fault injection.
func (w *model) TranslateContext(ctx context.Context, benchmark string, ex datasets.Example, db *storage.Database, k int) ([]nl2sql.Candidate, error) {
	if err := w.in.inject(ctx, "translate", benchmark+"\x00"+ex.ID); err != nil {
		return nil, err
	}
	return nl2sql.TranslateContext(ctx, w.m, benchmark, ex, db, k)
}

// WrapVerifier wraps an NLI verifier; the returned verifier implements
// nli.ContextVerifier and injects faults on VerifyContext — composing
// with nli.Latency and any other ContextVerifier, which keep honoring
// the same context underneath. Score and the plain Verify delegate
// untouched (scores are diagnostic reads, and the loop verifies through
// VerifyContext). An injector with no enabled faults returns v unwrapped.
func (in *Injector) WrapVerifier(v nli.Verifier) nli.Verifier {
	if !in.cfg.Enabled() {
		return v
	}
	return &verifier{in: in, v: v}
}

type verifier struct {
	in *Injector
	v  nli.Verifier
}

func (w *verifier) Name() string { return w.v.Name() }

func (w *verifier) Score(hypothesis string, premise nli.Premise) float64 {
	return w.v.Score(hypothesis, premise)
}

func (w *verifier) Verify(hypothesis string, premise nli.Premise) bool {
	return w.v.Verify(hypothesis, premise)
}

// VerifyContext implements nli.ContextVerifier with fault injection.
func (w *verifier) VerifyContext(ctx context.Context, hypothesis string, premise nli.Premise) (bool, error) {
	if err := w.in.inject(ctx, "verify", hypothesis+"\x00"+premise.SQL); err != nil {
		return false, err
	}
	return nli.VerifyContext(ctx, w.v, hypothesis, premise)
}

// WrapFeedback wraps a feedback generator, injecting faults on Premise.
// An injector with no enabled faults returns f unwrapped.
func (in *Injector) WrapFeedback(f core.Feedback) core.Feedback {
	if !in.cfg.Enabled() {
		return f
	}
	return &feedback{in: in, f: f}
}

type feedback struct {
	in *Injector
	f  core.Feedback
}

func (w *feedback) Name() string { return w.f.Name() }

// Premise implements core.Feedback with fault injection; the call key is
// the candidate's canonical SQL, so every beam candidate draws its own
// faults.
func (w *feedback) Premise(ctx context.Context, db *storage.Database, stmt *sqlast.SelectStmt, result *sqltypes.Relation) (nli.Premise, error) {
	if err := w.in.inject(ctx, "explain", stmt.SQL()); err != nil {
		return nli.Premise{}, err
	}
	return w.f.Premise(ctx, db, stmt, result)
}
