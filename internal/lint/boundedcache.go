package lint

import (
	"go/ast"
	"go/types"
)

// boundedCacheScope is where the bounded-cache rule applies: the packages
// that keep long-lived per-database / per-tenant caches and are shared
// across goroutines by design.
var boundedCacheScope = []string{
	"cyclesql/internal/core",
	"cyclesql/internal/serve",
}

// BoundedCache enforces the cache discipline in core and serve: a struct
// field of map type is a latent unbounded, unsynchronized cache unless
// the struct also carries a mutex guarding it (or the field is the
// bounded helper, core's boundedCache, which carries its own). A map that
// is genuinely read-only after construction is annotated
// //vetcycle:allow boundedcache with the justification.
var BoundedCache = &Analyzer{
	Name: "boundedcache",
	Doc:  "map-typed struct fields in core/serve need an in-struct mutex or the bounded cache helper",
	Run:  runBoundedCache,
}

func runBoundedCache(pass *Pass) error {
	if !pathIn(pass.Pkg.Path(), boundedCacheScope...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			checkCacheStruct(pass, ts.Name.Name, st)
			return true
		})
	}
	return nil
}

func checkCacheStruct(pass *Pass, name string, st *ast.StructType) {
	hasMutex := false
	for _, field := range st.Fields.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && isMutexType(tv.Type) {
			hasMutex = true
			break
		}
	}
	if hasMutex {
		return
	}
	for _, field := range st.Fields.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			continue
		}
		fname := "(embedded)"
		if len(field.Names) > 0 {
			fname = field.Names[0].Name
		}
		pass.Reportf(field.Pos(), "raw map field %s in struct %s: caches here must be mutex-guarded and bounded (add a sync.Mutex to the struct or use the boundedCache helper); if the map is read-only after construction, annotate //vetcycle:allow boundedcache -- <why>", fname, name)
	}
}
