package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// pathIn reports whether importPath is pkg or lives under pkg/.
func pathIn(importPath string, pkgs ...string) bool {
	for _, p := range pkgs {
		if importPath == p || strings.HasPrefix(importPath, p+"/") {
			return true
		}
	}
	return false
}

// calleeOf resolves the function or method object a call expression
// invokes, or nil for calls through function values, conversions and
// builtins.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// namedType unwraps pointers and aliases down to the *types.Named beneath
// t, or nil.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isNamed reports whether t (possibly behind pointers) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return isNamed(t, "context", "Context")
}

// funcCtxParam returns the name of ft's first context.Context parameter,
// or "" when the function takes none.
func funcCtxParam(info *types.Info, ft *ast.FuncType) string {
	if ft == nil || ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		if len(field.Names) > 0 {
			return field.Names[0].Name
		}
		return "_"
	}
	return ""
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutexType(t types.Type) bool {
	return isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex")
}

// recvString renders the receiver expression of a selector call for use
// as a lock identity key ("db.mu", "t.pmu"). Index expressions and calls
// render opaquely, which merely widens lock identity — acceptable for a
// linter that checks acquisition order, not aliasing.
func exprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprKey(e.X) + "[...]"
	case *ast.CallExpr:
		return exprKey(e.Fun) + "()"
	case *ast.StarExpr:
		return exprKey(e.X)
	default:
		return "?"
	}
}

// eachFuncBody visits every function and method body in the pass,
// including function literals, handing the enclosing declaration's type
// (for ctx-parameter checks) alongside the body.
func eachFuncBody(pass *Pass, visit func(ft *ast.FuncType, body *ast.BlockStmt)) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					visit(fn.Type, fn.Body)
				}
			case *ast.FuncLit:
				if fn.Body != nil {
					visit(fn.Type, fn.Body)
				}
			}
			return true
		})
	}
}
