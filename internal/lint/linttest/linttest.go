// Package linttest is the golden-fixture harness for the vetcycle
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest on the
// stdlib-only lint framework. Fixtures live in GOPATH-style trees
// (testdata/src/<import path>/*.go) so they can stub in-module packages
// under their real import paths; expected findings are written as
// analysistest-style want comments on the offending line:
//
//	db.Insert("t", row) // want `frozen snapshot view`
//
// Each backquoted (or double-quoted) string is a regexp that must match
// one diagnostic reported on that line; diagnostics with no matching
// expectation, and expectations with no matching diagnostic, both fail
// the test — so weakening an analyzer breaks its fixture.
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"cyclesql/internal/lint"
)

// wantRE captures the payload of a want comment.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads each fixture package from root (a testdata/src-style tree),
// applies the analyzer, and checks the diagnostics against the packages'
// want comments.
func Run(t *testing.T, root string, a *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	for _, path := range pkgPaths {
		t.Run(strings.ReplaceAll(path, "/", "_"), func(t *testing.T) {
			t.Helper()
			runOne(t, root, a, path)
		})
	}
}

func runOne(t *testing.T, root string, a *lint.Analyzer, pkgPath string) {
	t.Helper()
	pkg, err := lint.LoadSource(root, pkgPath)
	if err != nil {
		t.Fatalf("load %s: %v", pkgPath, err)
	}
	diags, err := lint.Run(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, pkgPath, err)
	}
	expects, err := collectWants(pkg)
	if err != nil {
		t.Fatalf("fixture %s: %v", pkgPath, err)
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, e := range expects {
			if !e.hit && e.file == pos.Filename && e.line == pos.Line && e.re.MatchString(d.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.raw)
		}
	}
}

// collectWants extracts want expectations from every comment in pkg.
func collectWants(pkg *lint.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := parsePatterns(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s: %w", pos, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %w", pos, p, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: p})
				}
			}
		}
	}
	return out, nil
}

// parsePatterns splits a want payload into its quoted regexp strings.
func parsePatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in want: %s", s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			end := -1
			// Walk forward to the closing unescaped quote.
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated string in want: %s", s)
			}
			lit, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad want string %s: %w", s[:end+1], err)
			}
			out = append(out, lit)
			s = strings.TrimSpace(s[end+1:])
		default:
			return nil, fmt.Errorf("want patterns must be quoted or backquoted: %s", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}
