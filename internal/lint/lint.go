// Package lint is the project's static-analysis suite: a small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus the seven project-specific
// analyzers that turn ARCHITECTURE.md's prose invariants — context
// threading, frozen-snapshot immutability, typed stage errors, lock
// discipline, bounded caches, no raw sleeps, no deprecated identifiers —
// into machine-checked rules. cmd/vetcycle packages the suite as a
// multichecker binary; docs/linting.md specifies each invariant.
//
// The framework is stdlib-only by design: the build environment bakes in
// no module dependencies, so analyzers run on go/ast + go/types directly.
// Packages are loaded either from `go list -export` output (the vetcycle
// binary, over the real module) or from GOPATH-style testdata trees (the
// linttest fixture harness). The x/tools surface is mirrored closely
// enough that a future migration to the real framework is mechanical.
//
// Analyzers check library code only: files named *_test.go and external
// test packages are skipped, because the invariants govern what ships —
// tests deliberately poke at deprecated wrappers, sleeps and raw maps.
//
// A finding that is deliberate is suppressed in source with a directive
// comment on the offending line or the line above it:
//
//	//vetcycle:allow ctxflow -- Exec is the documented one-shot wrapper
//
// The directive names one or more analyzers (comma-separated); everything
// after "--" is a required human-readable justification. Directives
// without a justification are themselves reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string // analyzer name, filled in by Run
	Message  string
}

// Analyzer is one named invariant check. Run inspects a type-checked
// package through the Pass and reports findings; it must not mutate the
// package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through one analyzer, mirroring
// golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// SrcDir resolves an in-module import path to its source directory,
	// or "" when unknown. nodeprecated uses it to read Deprecated: marks
	// from dependency sources (gc export data drops doc comments).
	SrcDir func(importPath string) string

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset       *token.FileSet
	Files      []*ast.File
	ImportPath string
	Types      *types.Package
	TypesInfo  *types.Info
	// SrcDir resolves in-module import paths to source directories for
	// analyzers that need dependency sources (see Pass.SrcDir).
	SrcDir func(importPath string) string
}

// All returns the full vetcycle suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		CtxFlow,
		StageErr,
		SnapFrozen,
		LockOrder,
		NoSleep,
		BoundedCache,
		NoDeprecated,
	}
}

// ByName resolves a subset of the suite by analyzer name.
func ByName(names ...string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run applies the analyzers to pkg and returns the surviving diagnostics
// in source order: findings in _test.go files are dropped (the suite
// governs library code), and findings silenced by a well-formed
// //vetcycle:allow directive are filtered out. Malformed directives
// (no justification, unknown analyzer) are reported as findings in their
// own right so a suppression cannot rot silently.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	if strings.HasSuffix(pkg.Types.Name(), "_test") {
		return nil, nil
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			SrcDir:    pkg.SrcDir,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	allow, bad := collectDirectives(pkg)
	diags = append(diags, bad...)
	kept := diags[:0]
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		if allow.covers(pos, d.Analyzer) {
			continue
		}
		kept = append(kept, d)
	}
	diags = kept
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// directiveRE matches //vetcycle:allow name[,name...] [-- justification].
var directiveRE = regexp.MustCompile(`^//vetcycle:allow\s+([a-z0-9_,]+)\s*(?:--\s*(.*))?$`)

// allowSet maps (file, line) to the analyzer names allowed there. A
// directive covers its own line and the line below it, so it can trail
// the offending statement or sit on a comment line immediately above.
type allowSet map[string]map[int]map[string]bool

func (s allowSet) covers(pos token.Position, analyzer string) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer] || lines[pos.Line][allowAll]
}

const allowAll = "*"

// collectDirectives scans pkg's comments for //vetcycle:allow directives,
// returning the allow set plus diagnostics for malformed ones.
func collectDirectives(pkg *Package) (allowSet, []Diagnostic) {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	allow := make(allowSet)
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//vetcycle:") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				text := c.Text
				// Fixtures stack a "// want" expectation onto the directive
				// line; it is not part of the directive.
				if i := strings.Index(text[2:], "// want "); i >= 0 {
					text = strings.TrimRight(text[:i+2], " \t")
				}
				m := directiveRE.FindStringSubmatch(text)
				if m == nil {
					bad = append(bad, Diagnostic{Pos: c.Pos(), Analyzer: "directive",
						Message: "malformed //vetcycle: directive; use //vetcycle:allow name[,name] -- justification"})
					continue
				}
				if strings.TrimSpace(m[2]) == "" {
					bad = append(bad, Diagnostic{Pos: c.Pos(), Analyzer: "directive",
						Message: "//vetcycle:allow needs a justification after --"})
					continue
				}
				names := strings.Split(m[1], ",")
				for _, n := range names {
					if n != allowAll && !known[n] {
						bad = append(bad, Diagnostic{Pos: c.Pos(), Analyzer: "directive",
							Message: fmt.Sprintf("//vetcycle:allow names unknown analyzer %q", n)})
					}
				}
				lines := allow[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					allow[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					set := lines[line]
					if set == nil {
						set = make(map[string]bool)
						lines[line] = set
					}
					for _, n := range names {
						set[n] = true
					}
				}
			}
		}
	}
	return allow, bad
}
