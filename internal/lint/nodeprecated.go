package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// NoDeprecated flags in-repo use of identifiers whose declaration carries
// a "Deprecated:" doc marker (the standard Go deprecation convention).
// Export data drops doc comments, so the analyzer re-parses the declaring
// package's source (resolved through Pass.SrcDir) to find the marks; uses
// inside the deprecated declarations themselves — the compatibility
// wrapper's own body — are exempt, as are tests, which deliberately pin
// wrapper equivalence.
var NoDeprecated = &Analyzer{
	Name: "nodeprecated",
	Doc:  "forbid in-repo use of identifiers marked Deprecated:",
	Run:  runNoDeprecated,
}

func runNoDeprecated(pass *Pass) error {
	if !pathIn(pass.Pkg.Path(), "cyclesql") || pass.SrcDir == nil {
		return nil
	}
	marks := make(map[string]map[string]string) // pkg path -> object key -> note
	lookup := func(pkgPath string) map[string]string {
		if m, ok := marks[pkgPath]; ok {
			return m
		}
		m := map[string]string{}
		if dir := pass.SrcDir(pkgPath); dir != "" {
			m = deprecatedDecls(dir)
		}
		marks[pkgPath] = m
		return m
	}
	// Uses inside this package's own deprecated declarations are exempt:
	// the deprecated wrapper may reference other deprecated pieces while
	// both await removal together.
	exempt := deprecatedRanges(pass)

	type finding struct {
		pos  token.Pos
		name string
		note string
	}
	var finds []finding
	for id, obj := range pass.TypesInfo.Uses {
		if obj == nil || obj.Pkg() == nil || !pathIn(obj.Pkg().Path(), "cyclesql") {
			continue
		}
		key := objKey(obj)
		if key == "" {
			continue
		}
		note, ok := lookup(obj.Pkg().Path())[key]
		if !ok {
			continue
		}
		if inRanges(exempt, id.Pos()) {
			continue
		}
		finds = append(finds, finding{pos: id.Pos(), name: qualifiedName(obj), note: note})
	}
	sort.Slice(finds, func(i, j int) bool { return finds[i].pos < finds[j].pos })
	for _, f := range finds {
		pass.Reportf(f.pos, "%s is deprecated: %s", f.name, f.note)
	}
	return nil
}

// objKey names an object the way deprecatedDecls indexes declarations:
// "Name" for package-level objects, "Recv.Name" for methods.
func objKey(obj types.Object) string {
	fn, isFunc := obj.(*types.Func)
	if isFunc {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			named := namedType(sig.Recv().Type())
			if named == nil {
				return ""
			}
			return named.Obj().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	switch obj.(type) {
	case *types.TypeName, *types.Var, *types.Const:
		if obj.Parent() != nil && obj.Parent() != obj.Pkg().Scope() {
			return "" // locals can't carry package-level deprecation
		}
		return obj.Name()
	}
	return ""
}

func qualifiedName(obj types.Object) string {
	if key := objKey(obj); key != "" {
		return obj.Pkg().Name() + "." + key
	}
	return obj.Name()
}

// deprecatedNote extracts the first Deprecated: line of a doc comment,
// or "" when the comment carries no deprecation.
func deprecatedNote(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "Deprecated:"); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// deprecatedDecls parses the non-test sources in dir (no type checking)
// and returns the deprecated declaration keys with their notes.
func deprecatedDecls(dir string) map[string]string {
	out := map[string]string{}
	names, err := goFilesIn(dir)
	if err != nil {
		return out
	}
	fset := token.NewFileSet()
	files, err := parseFiles(fset, dir, names)
	if err != nil {
		return out
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if note := deprecatedNote(d.Doc); note != "" {
					out[funcKey(d)] = note
				}
			case *ast.GenDecl:
				groupNote := deprecatedNote(d.Doc)
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if note := firstNonEmpty(deprecatedNote(s.Doc), groupNote); note != "" {
							out[s.Name.Name] = note
						}
					case *ast.ValueSpec:
						if note := firstNonEmpty(deprecatedNote(s.Doc), groupNote); note != "" {
							for _, n := range s.Names {
								out[n.Name] = note
							}
						}
					}
				}
			}
		}
	}
	return out
}

// funcKey mirrors objKey for an AST declaration.
func funcKey(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = u.X
		case *ast.IndexListExpr:
			t = u.X
		case *ast.Ident:
			return u.Name + "." + d.Name.Name
		default:
			return d.Name.Name
		}
	}
}

type posRange struct{ lo, hi token.Pos }

// deprecatedRanges collects the source extents of this package's own
// deprecated declarations.
func deprecatedRanges(pass *Pass) []posRange {
	var out []posRange
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if deprecatedNote(d.Doc) != "" {
					out = append(out, posRange{d.Pos(), d.End()})
				}
			case *ast.GenDecl:
				if deprecatedNote(d.Doc) != "" {
					out = append(out, posRange{d.Pos(), d.End()})
					continue
				}
				for _, spec := range d.Specs {
					var doc *ast.CommentGroup
					switch s := spec.(type) {
					case *ast.TypeSpec:
						doc = s.Doc
					case *ast.ValueSpec:
						doc = s.Doc
					}
					if deprecatedNote(doc) != "" {
						out = append(out, posRange{spec.Pos(), spec.End()})
					}
				}
			}
		}
	}
	return out
}

func inRanges(rs []posRange, p token.Pos) bool {
	for _, r := range rs {
		if r.lo <= p && p < r.hi {
			return true
		}
	}
	return false
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}
