package lint

import (
	"go/ast"
)

const storagePath = "cyclesql/internal/storage"

// snapMutators are the *storage.Database methods that mutate the store.
// Snapshot views (obtained through Snapshot().DB()) are immutable by
// contract — Insert errors and Mutate panics at runtime; this analyzer
// moves the violation to build time. Clone() is deliberately absent: it
// yields an ordinary mutable deep copy.
var snapMutators = map[string]bool{"Insert": true, "Mutate": true}

// SnapFrozen flags mutating calls on a frozen snapshot view within a
// function's dataflow: any *storage.Database that came from
// (*storage.Snapshot).DB() — directly, or through local variable
// assignments — must never receive Insert or Mutate.
var SnapFrozen = &Analyzer{
	Name: "snapfrozen",
	Doc:  "forbid Insert/Mutate on *storage.Database values obtained from Snapshot().DB()",
	Run:  runSnapFrozen,
}

func runSnapFrozen(pass *Pass) error {
	if !pathIn(pass.Pkg.Path(), "cyclesql") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// One frozen-variable set per top-level function; closures
			// share it, since they capture the same variables.
			frozen := map[string]bool{}
			snapFrozenWalk(pass, fn.Body, frozen)
		}
	}
	return nil
}

// snapFrozenWalk scans body in source order, tracking which local names
// hold frozen views and flagging mutations through them.
func snapFrozenWalk(pass *Pass, body ast.Node, frozen map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			trackFrozenAssign(pass, n, frozen)
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					frozen[name.Name] = frozenExpr(pass, n.Values[i], frozen)
				}
			}
		case *ast.CallExpr:
			checkFrozenMutation(pass, n, frozen)
		}
		return true
	})
}

func trackFrozenAssign(pass *Pass, n *ast.AssignStmt, frozen map[string]bool) {
	for i, lhs := range n.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if len(n.Rhs) == len(n.Lhs) {
			frozen[id.Name] = frozenExpr(pass, n.Rhs[i], frozen)
		} else {
			// Tuple assignment from a call: nothing on the right is a
			// bare DB() chain, so the names are (re)bound non-frozen.
			frozen[id.Name] = false
		}
	}
}

// frozenExpr reports whether e evaluates to a frozen snapshot view: a
// DB() call on a *storage.Snapshot, or a name already known frozen.
func frozenExpr(pass *Pass, e ast.Expr, frozen map[string]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return frozen[e.Name]
	case *ast.CallExpr:
		fn := calleeOf(pass.TypesInfo, e)
		if fn == nil || fn.Pkg() == nil {
			return false
		}
		if fn.Name() == "DB" && fn.Pkg().Path() == storagePath {
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
				if tv, ok := pass.TypesInfo.Types[sel.X]; ok && isNamed(tv.Type, storagePath, "Snapshot") {
					return true
				}
			}
		}
		return false
	default:
		return false
	}
}

func checkFrozenMutation(pass *Pass, call *ast.CallExpr, frozen map[string]bool) {
	fn := calleeOf(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != storagePath || !snapMutators[fn.Name()] {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv := ast.Unparen(sel.X)
	if !isNamedRecv(pass, recv) {
		return
	}
	if frozenExpr(pass, recv, frozen) {
		pass.Reportf(call.Pos(), "%s on a frozen snapshot view: Snapshot().DB() is immutable by contract; Clone() the view for a mutable copy, or write to the live store", fn.Name())
	}
}

// isNamedRecv confirms the receiver really is a *storage.Database (the
// mutator name check alone would also match shadowing types).
func isNamedRecv(pass *Pass, recv ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[recv]
	return ok && isNamed(tv.Type, storagePath, "Database")
}
