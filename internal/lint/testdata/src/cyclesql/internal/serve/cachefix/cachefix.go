// Package cachefix exercises boundedcache inside its scope (a subpackage
// of cyclesql/internal/serve).
package cachefix

import "sync"

type leaky struct {
	warm map[string]int // want `raw map field warm in struct leaky`
	n    int
}

type guarded struct {
	mu   sync.Mutex
	warm map[string]int
}

type annotated struct {
	//vetcycle:allow boundedcache -- built once at startup, read-only afterwards
	book map[string]int
}

type plain struct {
	n int
	s []string
}
