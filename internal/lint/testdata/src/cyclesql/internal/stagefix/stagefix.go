// Package stagefix exercises stageerr: stage failures are classified
// with errors.As on resilience.StageError, never type asserts or string
// matching.
package stagefix

import (
	"errors"
	"strings"

	"cyclesql/internal/resilience"
)

func classifyAssert(err error) bool {
	if _, ok := err.(resilience.StageError); ok { // want `direct type assertion`
		return true
	}
	return false
}

func classifySwitch(err error) string {
	switch err.(type) {
	case resilience.StageError: // want `type switch case`
		return "stage"
	default:
		return ""
	}
}

func classifyPrefix(err error) bool {
	return strings.HasPrefix(err.Error(), "execute:") // want `string-matching the "execute:" stage prefix`
}

func classifyContains(err error) bool {
	return strings.Contains(err.Error(), "verify: circuit open") // want `string-matching the "verify: circuit open" stage prefix`
}

func classifyCompare(err error) bool {
	return err.Error() == "explain: boom" // want `comparing error text`
}

func classifyRight(err error) (resilience.Stage, bool) {
	var se resilience.StageError
	if errors.As(err, &se) {
		return se.Stage, true
	}
	return "", false
}

// fieldMatch is the blessed pattern: classify on the typed fields.
func fieldMatch(se resilience.StageError) bool {
	return se.Stage == resilience.StageVerify && se.Transient
}
