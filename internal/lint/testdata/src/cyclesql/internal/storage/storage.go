// Package storage is the fixture stub of cyclesql/internal/storage: just
// enough surface (Database, Snapshot, the mutators, the database lock)
// for the snapfrozen and lockorder fixtures to typecheck under the real
// import path.
package storage

import "sync"

// Row is a stub row.
type Row []any

// Database is the stub store; mu is the database lock the lockorder
// analyzer ranks ahead of per-index build locks.
type Database struct {
	mu     sync.RWMutex
	tables map[string][]Row
}

// Insert appends rows to a table.
func (db *Database) Insert(table string, rows ...Row) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.tables[table] = append(db.tables[table], rows...)
	return nil
}

// Mutate rewrites a table in place.
func (db *Database) Mutate(table string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.tables, table)
}

// Clone returns a mutable deep copy.
func (db *Database) Clone() *Database { return &Database{} }

// Snapshot pins an immutable view.
func (db *Database) Snapshot() *Snapshot {
	db.mu.Lock()
	defer db.mu.Unlock()
	return &Snapshot{db: &Database{tables: db.tables}}
}

// Snapshot is the stub immutable view.
type Snapshot struct{ db *Database }

// DB exposes the frozen view as a *Database.
func (s *Snapshot) DB() *Database { return s.db }
