package storage

import "sync"

// colIndex carries a per-index build lock, ranked after the database
// lock in the documented acquisition order.
type colIndex struct {
	build sync.Mutex
	rows  []int
}

func (db *Database) upgradeBad() int {
	db.mu.RLock()
	n := len(db.tables)
	db.mu.Lock() // want `read-to-write lock upgrade on db\.mu`
	db.mu.Unlock()
	db.mu.RUnlock()
	return n
}

func (db *Database) doubleBad() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.mu.Lock() // want `db\.mu is already held`
	db.mu.Unlock()
}

func (db *Database) orderBad(ix *colIndex) {
	ix.build.Lock()
	defer ix.build.Unlock()
	db.mu.Lock() // want `documented order is database lock first`
	defer db.mu.Unlock()
	ix.rows = append(ix.rows, len(db.tables))
}

func (db *Database) orderGood(ix *colIndex) {
	db.mu.Lock()
	defer db.mu.Unlock()
	ix.build.Lock()
	defer ix.build.Unlock()
	ix.rows = append(ix.rows, len(db.tables))
}

func (db *Database) upgradeGood() int {
	db.mu.RLock()
	n := len(db.tables)
	db.mu.RUnlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	return n
}
