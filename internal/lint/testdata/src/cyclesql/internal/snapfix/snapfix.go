// Package snapfix exercises snapfrozen: no mutation through a
// *storage.Database obtained from Snapshot().DB().
package snapfix

import "cyclesql/internal/storage"

func mutateView(db *storage.Database) {
	snap := db.Snapshot()
	view := snap.DB()
	view.Insert("t")               // want `Insert on a frozen snapshot view`
	view.Mutate("t")               // want `Mutate on a frozen snapshot view`
	db.Snapshot().DB().Insert("t") // want `Insert on a frozen snapshot view`

	aliased := view
	aliased.Insert("t") // want `Insert on a frozen snapshot view`

	clone := view.Clone()
	clone.Insert("t")

	view = clone
	view.Insert("t")

	db.Insert("t")
	db.Mutate("t")
}

func readsAreFine(db *storage.Database) *storage.Database {
	view := db.Snapshot().DB()
	other := view
	_ = other
	return view
}
