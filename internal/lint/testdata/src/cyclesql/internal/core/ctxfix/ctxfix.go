// Package ctxfix exercises ctxflow inside its scope (a subpackage of
// cyclesql/internal/core).
package ctxfix

import (
	"context"

	"cyclesql/internal/nli"
)

// Runner pairs a background wrapper with its ctx-aware sibling.
type Runner struct{}

// ExecContext is the real entry point.
func (r *Runner) ExecContext(ctx context.Context, q string) error { return ctx.Err() }

// Exec is the documented one-shot wrapper.
func (r *Runner) Exec(q string) error {
	//vetcycle:allow ctxflow -- Exec is the documented background one-shot wrapper
	return r.ExecContext(context.Background(), q)
}

func todoInScope() error {
	ctx := context.TODO() // want `context\.TODO\(\)`
	return ctx.Err()
}

func backgroundInScope() error {
	ctx := context.Background() // want `context\.Background\(\)`
	return ctx.Err()
}

func dropsCtx(ctx context.Context, r *Runner) error {
	return r.Exec("q") // want `Exec drops the in-scope ctx`
}

func threadsCtx(ctx context.Context, r *Runner) error {
	return r.ExecContext(ctx, "q")
}

func noCtxInScope(r *Runner) error {
	return r.Exec("q")
}

func dropsCtxInClosure(ctx context.Context, r *Runner) func() error {
	return func() error {
		return r.Exec("q") // want `Exec drops the in-scope ctx`
	}
}

func dropsVerify(ctx context.Context, v nli.Verifier) bool {
	return v.Verify("h", nli.Premise{}) // want `Verify drops the in-scope ctx`
}

func threadsVerify(ctx context.Context, v nli.Verifier) (bool, error) {
	return nli.VerifyContext(ctx, v, "h", nli.Premise{})
}
