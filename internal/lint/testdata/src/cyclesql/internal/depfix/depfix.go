// Package depfix exercises nodeprecated: in-repo uses of identifiers
// marked Deprecated: are findings; uses inside deprecated declarations
// (compatibility wrappers awaiting removal together) are exempt.
package depfix

import "cyclesql/internal/depfix/old"

func use() int {
	t := old.NewThing() // want `old\.NewThing is deprecated: use MakeThing instead`
	t.Run()             // want `old\.Thing\.Run is deprecated: use RunContext`
	return old.FlagA    // want `old\.FlagA is deprecated: use FlagB`
}

func useReplacement() int {
	t := old.MakeThing()
	t.RunContext()
	return old.FlagB
}

// legacy is this package's own deprecated helper.
//
// Deprecated: use modern.
func legacy() int { return old.FlagA }

// modern is the replacement.
func modern() int { return old.FlagB }

func callsLegacy() int {
	return legacy() // want `depfix\.legacy is deprecated: use modern`
}
