// Package old declares deprecated identifiers for the nodeprecated
// fixture.
package old

// NewThing builds a Thing.
//
// Deprecated: use MakeThing instead.
func NewThing() Thing { return Thing{} }

// MakeThing is the replacement constructor.
func MakeThing() Thing { return Thing{} }

// Deprecated: use FlagB.
const FlagA = 1

// FlagB is the replacement flag.
const FlagB = 2

// Thing is a live type with one deprecated method.
type Thing struct{}

// Run runs the thing.
//
// Deprecated: use RunContext.
func (t Thing) Run() {}

// RunContext is the replacement entry point.
func (t Thing) RunContext() {}
