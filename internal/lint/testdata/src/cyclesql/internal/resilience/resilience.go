// Package resilience is the fixture stub of cyclesql/internal/resilience:
// the StageError surface the stageerr fixture asserts against.
package resilience

// Stage names one pipeline stage.
type Stage string

// Stub stage constants.
const (
	StageTranslate Stage = "translate"
	StageExecute   Stage = "execute"
	StageExplain   Stage = "explain"
	StageVerify    Stage = "verify"
)

// StageError is the typed per-candidate stage failure record.
type StageError struct {
	Stage     Stage
	Attempt   int
	Err       string
	Transient bool
}

// Error implements error.
func (e StageError) Error() string { return string(e.Stage) + ": " + e.Err }
