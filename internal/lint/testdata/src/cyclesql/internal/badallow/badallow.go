// Package badallow exercises directive hygiene: a suppression without a
// justification, or naming an unknown analyzer, is itself a finding —
// and a malformed directive does not suppress anything.
package badallow

import "time"

func sleepy(d time.Duration) {
	//vetcycle:allow nosleep // want `needs a justification`
	time.Sleep(d) // want `time\.Sleep in library code`
}

func sleepier(d time.Duration) {
	//vetcycle:allow nosuchanalyzer -- misdirected suppression // want `unknown analyzer`
	time.Sleep(d) // want `time\.Sleep in library code`
}

func quiet(d time.Duration) {
	//vetcycle:allow nosleep -- properly justified, properly silent
	time.Sleep(d)
}
