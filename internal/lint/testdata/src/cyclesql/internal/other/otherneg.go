// Package other sits outside the ctxflow and boundedcache scopes: the
// same shapes that are findings in core/serve must be silent here.
package other

import "context"

type freeform struct {
	cache map[string]int
}

func backgroundOutOfScope() error {
	ctx := context.Background()
	return ctx.Err()
}

func todoOutOfScope(f *freeform) int {
	_ = context.TODO()
	return f.cache["k"]
}
