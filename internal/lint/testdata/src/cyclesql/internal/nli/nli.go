// Package nli is the fixture stub of cyclesql/internal/nli: the verifier
// surface the ctxflow and lockorder fixtures call.
package nli

import "context"

// Premise is the stub verifier input.
type Premise struct{ SQL string }

// Verifier is the stub verification interface.
type Verifier interface {
	Name() string
	Verify(hypothesis string, premise Premise) bool
	Score(hypothesis string, premise Premise) float64
}

// VerifyContext is the ctx-aware companion of Verifier.Verify.
func VerifyContext(ctx context.Context, v Verifier, hypothesis string, premise Premise) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return v.Verify(hypothesis, premise), nil
}
