// Package sleepfix exercises nosleep: raw time.Sleep is banned in
// library packages; waits honor a context.
package sleepfix

import (
	"context"
	"time"
)

func wait(d time.Duration) {
	time.Sleep(d) // want `time\.Sleep in library code`
}

func waitCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func deliberate(d time.Duration) {
	//vetcycle:allow nosleep -- fixture for the documented-escape-hatch path
	time.Sleep(d)
}
