// Package lockfix exercises lockorder's model-call rule: no mutex held
// across a model/verifier call.
package lockfix

import (
	"sync"

	"cyclesql/internal/nli"
)

type verdictCache struct {
	mu sync.Mutex
	m  map[string]bool
}

func (c *verdictCache) verdictBad(v nli.Verifier, h string, p nli.Premise) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if got, ok := c.m[h]; ok {
		return got
	}
	got := v.Verify(h, p) // want `called while holding c\.mu`
	c.m[h] = got
	return got
}

func (c *verdictCache) verdictGood(v nli.Verifier, h string, p nli.Premise) bool {
	c.mu.Lock()
	got, ok := c.m[h]
	c.mu.Unlock()
	if ok {
		return got
	}
	res := v.Verify(h, p)
	c.mu.Lock()
	c.m[h] = res
	c.mu.Unlock()
	return res
}

// goroutineIsolated shows the per-function lock state: the literal runs
// at an unknown time, so its acquisitions don't extend the enclosing
// function's held set (and vice versa).
func goroutineIsolated(c *verdictCache, v nli.Verifier, h string, p nli.Premise) {
	c.mu.Lock()
	go func() {
		_ = v.Verify(h, p)
	}()
	c.mu.Unlock()
}
