package lint

import (
	"go/ast"
	"go/types"
)

// LockOrder enforces the repository's lock discipline with a linear
// (source-order, intra-function) scan:
//
//   - no read-to-write upgrade: RLock followed by Lock on the same mutex
//     without an intervening RUnlock deadlocks under contention;
//   - no double acquisition of one mutex on a straight-line path;
//   - documented acquisition order in internal/storage: the database
//     lock (a *storage.Database's mu) is acquired before any per-index
//     build lock, never after one is already held;
//   - no model or verifier call (nl2sql Translate, nli Verify/Score,
//     explain Explain, core Feedback.Premise — the calls that become
//     remote inferences in a serving deployment) while any mutex is
//     held: an inference under a lock serializes the whole pipeline
//     behind one slow forward pass.
//
// The scan is deliberately linear rather than path-sensitive: a `defer
// mu.Unlock()` keeps the lock held for the remainder of the function,
// and branch-local unlocks release it for the remainder of the scan.
// Deliberate exceptions carry //vetcycle:allow lockorder directives.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "enforce lock acquisition order and forbid model/verifier calls under a held mutex",
	Run:  runLockOrder,
}

// modelCallNames are the method names that count as model/verifier calls
// when declared in one of modelCallPkgs.
var modelCallNames = map[string]bool{
	"Translate": true, "TranslateContext": true,
	"Verify": true, "VerifyContext": true, "Score": true,
	"Explain": true, "ExplainContext": true,
	"Premise": true,
}

var modelCallPkgs = []string{
	"cyclesql/internal/nl2sql",
	"cyclesql/internal/nli",
	"cyclesql/internal/explain",
	"cyclesql/internal/core",
}

type heldLock struct {
	key    string
	read   bool
	indexy bool // a storage-package lock that is not the database lock
}

func runLockOrder(pass *Pass) error {
	if !pathIn(pass.Pkg.Path(), "cyclesql") {
		return nil
	}
	var bodies []ast.Node
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					bodies = append(bodies, n.Body)
				}
				return false
			}
			return true
		})
		// Nested function literals are scanned as their own bodies: a
		// goroutine or callback does not run at its lexical position, so
		// its lock events must not leak into the enclosing scan.
		for i := 0; i < len(bodies); i++ {
			ast.Inspect(bodies[i], func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && n != bodies[i] {
					bodies = append(bodies, lit.Body)
					return false
				}
				return true
			})
		}
		for _, b := range bodies {
			scanLockOrder(pass, b)
		}
		bodies = bodies[:0]
	}
	return nil
}

// scanLockOrder walks one function body in source order, maintaining the
// set of held locks.
func scanLockOrder(pass *Pass, body ast.Node) {
	var held []heldLock
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // scanned separately, with its own lock state
		case *ast.DeferStmt:
			// A deferred Unlock releases at return, not here: skip the
			// deferred call so the lock stays held for the rest of the scan.
			return false
		case *ast.CallExpr:
			held = lockEvent(pass, n, held)
		}
		return true
	})
}

// lockEvent updates the held-lock set for one call and reports
// violations observed at that call.
func lockEvent(pass *Pass, call *ast.CallExpr, held []heldLock) []heldLock {
	fn := calleeOf(pass.TypesInfo, call)
	if fn == nil {
		return held
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		if !isSel || !receiverIsMutex(pass.TypesInfo, sel) {
			return held
		}
		key := exprKey(sel.X)
		read := fn.Name() == "RLock" || fn.Name() == "RUnlock"
		if fn.Name() == "Unlock" || fn.Name() == "RUnlock" {
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].key == key && held[i].read == read {
					return append(held[:i:i], held[i+1:]...)
				}
			}
			return held
		}
		for _, h := range held {
			if h.key != key {
				continue
			}
			if h.read && !read {
				pass.Reportf(call.Pos(), "read-to-write lock upgrade on %s: RLock is still held; release it before Lock or the writer deadlocks behind its own reader", key)
			} else {
				pass.Reportf(call.Pos(), "%s is already held on this path (acquired as %s)", key, lockVerb(h.read))
			}
			return held
		}
		isDB := isDatabaseMu(pass.TypesInfo, sel)
		if isDB {
			for _, h := range held {
				if h.indexy {
					pass.Reportf(call.Pos(), "database lock %s acquired while holding %s: the documented order is database lock first, then per-index build locks", key, h.key)
					break
				}
			}
		}
		return append(held, heldLock{
			key:    key,
			read:   read,
			indexy: !isDB && pathIn(pass.Pkg.Path(), storagePath),
		})
	}
	if isModelCall(fn) && len(held) > 0 {
		pass.Reportf(call.Pos(), "%s.%s called while holding %s: never hold a lock across a model/verifier call — release it first (an inference under a lock serializes the pipeline)", fn.Pkg().Name(), fn.Name(), held[len(held)-1].key)
	}
	return held
}

func lockVerb(read bool) string {
	if read {
		return "RLock"
	}
	return "Lock"
}

// receiverIsMutex reports whether sel.X names a sync.Mutex/RWMutex (the
// selector resolves Lock/Unlock on it, possibly through embedding).
func receiverIsMutex(info *types.Info, sel *ast.SelectorExpr) bool {
	tv, ok := info.Types[sel.X]
	if !ok {
		return false
	}
	if isMutexType(tv.Type) {
		return true
	}
	// Embedded mutex: the method's actual receiver is sync.(RW)Mutex.
	if s, ok := info.Selections[sel]; ok {
		if recv := s.Obj().(*types.Func).Type().(*types.Signature).Recv(); recv != nil {
			return isMutexType(recv.Type())
		}
	}
	return false
}

// isDatabaseMu reports whether the lock expression is the storage
// database lock (field mu — or an embedded mutex — on *storage.Database).
func isDatabaseMu(info *types.Info, sel *ast.SelectorExpr) bool {
	x := ast.Unparen(sel.X)
	if inner, ok := x.(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[inner.X]; ok && isNamed(tv.Type, storagePath, "Database") {
			return true
		}
	}
	if tv, ok := info.Types[x]; ok && isNamed(tv.Type, storagePath, "Database") {
		return true
	}
	return false
}

// isModelCall reports whether fn is a model/verifier inference entry
// point per the modelCallNames/modelCallPkgs contract.
func isModelCall(fn *types.Func) bool {
	if fn.Pkg() == nil || !modelCallNames[fn.Name()] {
		return false
	}
	return pathIn(fn.Pkg().Path(), modelCallPkgs...)
}
