package lint_test

import (
	"path/filepath"
	"testing"

	"cyclesql/internal/lint"
	"cyclesql/internal/lint/linttest"
)

func fixtures(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.CtxFlow,
		"cyclesql/internal/core/ctxfix",
		"cyclesql/internal/other",
	)
}

func TestStageErr(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.StageErr,
		"cyclesql/internal/stagefix",
	)
}

func TestSnapFrozen(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.SnapFrozen,
		"cyclesql/internal/snapfix",
	)
}

func TestLockOrder(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.LockOrder,
		"cyclesql/internal/storage",
		"cyclesql/internal/lockfix",
	)
}

func TestNoSleep(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.NoSleep,
		"cyclesql/internal/sleepfix",
	)
}

func TestBoundedCache(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.BoundedCache,
		"cyclesql/internal/serve/cachefix",
		"cyclesql/internal/other",
	)
}

func TestNoDeprecated(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.NoDeprecated,
		"cyclesql/internal/depfix",
	)
}

func TestDirectiveHygiene(t *testing.T) {
	linttest.Run(t, fixtures(t), lint.NoSleep,
		"cyclesql/internal/badallow",
	)
}

func TestByName(t *testing.T) {
	got, err := lint.ByName("ctxflow", "nosleep")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "ctxflow" || got[1].Name != "nosleep" {
		t.Fatalf("ByName returned %v", got)
	}
	if _, err := lint.ByName("nope"); err == nil {
		t.Fatal("ByName(nope) should fail")
	}
}
