package lint

import (
	"go/ast"
)

// NoSleep bans raw time.Sleep in library packages (everything under
// cyclesql/internal). A bare sleep cannot be cancelled: a candidate whose
// context is already dead finishes the wait anyway, which is exactly the
// straggler behavior the resilience layer exists to kill. Library waits
// must honor a context — resilience's backoff (Retry.Do / its ctx-aware
// sleep) or an explicit timer select on ctx.Done(). Deliberate sleeps
// (none today) would carry //vetcycle:allow nosleep directives; tests are
// exempt as always.
var NoSleep = &Analyzer{
	Name: "nosleep",
	Doc:  "forbid raw time.Sleep in library packages; waits must honor a context",
	Run:  runNoSleep,
}

func runNoSleep(pass *Pass) error {
	if !pathIn(pass.Pkg.Path(), "cyclesql/internal") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pass.TypesInfo, call)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
				pass.Reportf(call.Pos(), "time.Sleep in library code cannot be cancelled: wait on a timer select with ctx.Done() (see resilience's ctx-aware backoff) instead")
			}
			return true
		})
	}
	return nil
}
