package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// typeCheck parses the given files (already parsed ASTs) as one package
// and type-checks them with imp, returning the package and full use/def
// information. Any type error aborts: analyzers must not run over a
// half-checked package.
func typeCheck(fset *token.FileSet, importPath string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return pkg, info, nil
}

// parseDir parses every listed file in dir into fset, comments included.
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// goFilesIn lists the non-test .go files of dir in lexical order.
func goFilesIn(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// listedPackage is the slice of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Module     *struct {
		Path string
		Dir  string
	}
	Error *struct{ Err string }
}

// LoadPackages loads the module packages matching patterns (e.g. "./...")
// for analysis. Dependencies are imported from gc export data produced by
// `go list -export`, so no package is type-checked from source more than
// once and no network or module download is involved; the target packages
// themselves are parsed and type-checked from source with comments, which
// is what the analyzers inspect.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-deps", "-export", "-json=ImportPath,Dir,Name,GoFiles,Export,DepOnly,Standard,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, errBuf.String())
	}
	exports := make(map[string]string) // import path -> export data file
	var targets []*listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			pc := p
			targets = append(targets, &pc)
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files, err := parseFiles(fset, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		tpkg, info, err := typeCheck(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		modPath, modDir := "", ""
		if t.Module != nil {
			modPath, modDir = t.Module.Path, t.Module.Dir
		}
		pkgs = append(pkgs, &Package{
			Fset:       fset,
			Files:      files,
			ImportPath: t.ImportPath,
			Types:      tpkg,
			TypesInfo:  info,
			SrcDir:     moduleSrcDir(modPath, modDir),
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// ParseAbsFiles parses the given absolute file paths into fset, comments
// included. cmd/vetcycle uses it in vet-tool mode, where the config lists
// the package's files by absolute path.
func ParseAbsFiles(fset *token.FileSet, paths []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// TypeCheckFiles type-checks one package's parsed files against imp and
// wraps the result as a Package ready for Run. The caller may fill in
// SrcDir afterwards (it defaults to unknown).
func TypeCheckFiles(fset *token.FileSet, importPath string, files []*ast.File, imp types.Importer) (*Package, error) {
	tpkg, info, err := typeCheck(fset, importPath, files, imp)
	if err != nil {
		return nil, err
	}
	return &Package{
		Fset:       fset,
		Files:      files,
		ImportPath: importPath,
		Types:      tpkg,
		TypesInfo:  info,
		SrcDir:     func(string) string { return "" },
	}, nil
}

// ModuleSrcDir resolves in-module import paths onto the module directory
// rooted at modDir; out-of-module paths resolve to "".
func ModuleSrcDir(modPath, modDir string) func(string) string {
	return moduleSrcDir(modPath, modDir)
}

// moduleSrcDir resolves in-module import paths onto the module directory.
func moduleSrcDir(modPath, modDir string) func(string) string {
	return func(importPath string) string {
		if modPath == "" || modDir == "" {
			return ""
		}
		if importPath == modPath {
			return modDir
		}
		rel, ok := strings.CutPrefix(importPath, modPath+"/")
		if !ok {
			return ""
		}
		return filepath.Join(modDir, filepath.FromSlash(rel))
	}
}

// sourceImporter resolves imports for GOPATH-style fixture trees: an
// import path present under root (root/<path>/*.go) is parsed and
// type-checked from source recursively; anything else is treated as
// standard library and delegated to the compiler source importer. The
// linttest harness uses it so analyzer fixtures can stub in-module
// packages (testdata/src/cyclesql/internal/storage, ...) under their real
// import paths.
type sourceImporter struct {
	root  string
	fset  *token.FileSet
	std   types.Importer
	cache map[string]*types.Package
	stack map[string]bool
}

func newSourceImporter(root string, fset *token.FileSet) *sourceImporter {
	return &sourceImporter{
		root:  root,
		fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil),
		cache: make(map[string]*types.Package),
		stack: make(map[string]bool),
	}
}

func (si *sourceImporter) dir(path string) string {
	return filepath.Join(si.root, filepath.FromSlash(path))
}

func (si *sourceImporter) local(path string) bool {
	st, err := os.Stat(si.dir(path))
	return err == nil && st.IsDir()
}

func (si *sourceImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := si.cache[path]; ok {
		return pkg, nil
	}
	if !si.local(path) {
		return si.std.Import(path)
	}
	if si.stack[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	si.stack[path] = true
	defer delete(si.stack, path)
	pkg, _, _, err := si.load(path)
	if err != nil {
		return nil, err
	}
	si.cache[path] = pkg
	return pkg, nil
}

// load parses and type-checks the fixture package at path.
func (si *sourceImporter) load(path string) (*types.Package, *types.Info, []*ast.File, error) {
	dir := si.dir(path)
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	files, err := parseFiles(si.fset, dir, names)
	if err != nil {
		return nil, nil, nil, err
	}
	pkg, info, err := typeCheck(si.fset, path, files, si)
	if err != nil {
		return nil, nil, nil, err
	}
	return pkg, info, files, nil
}

// LoadSource loads the package at import path pkgPath from a GOPATH-style
// source tree rooted at root (root/<import path>/*.go). In-tree imports
// resolve from the same tree; everything else must be standard library.
func LoadSource(root, pkgPath string) (*Package, error) {
	fset := token.NewFileSet()
	si := newSourceImporter(root, fset)
	if !si.local(pkgPath) {
		return nil, fmt.Errorf("lint: no package %q under %s", pkgPath, root)
	}
	si.stack[pkgPath] = true
	tpkg, info, files, err := si.load(pkgPath)
	delete(si.stack, pkgPath)
	if err != nil {
		return nil, err
	}
	si.cache[pkgPath] = tpkg
	return &Package{
		Fset:       fset,
		Files:      files,
		ImportPath: pkgPath,
		Types:      tpkg,
		TypesInfo:  info,
		SrcDir: func(importPath string) string {
			if si.local(importPath) {
				return si.dir(importPath)
			}
			return ""
		},
	}, nil
}
