package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// stagePrefixes are the stringly error prefixes resilience.StageError
// retired (PR 6). Matching them in strings again would re-introduce the
// coupling the typed record exists to prevent.
var stagePrefixes = []string{"translate:", "execute:", "explain:", "verify:"}

// StageErr enforces the typed-error contract around resilience.StageError:
// callers classify stage failures with errors.As (which survives
// wrapping) and the StageError fields — never with direct type assertions
// or by string-matching the retired "execute:"/"explain:"/"verify:"
// prefixes out of an error's text.
var StageErr = &Analyzer{
	Name: "stageerr",
	Doc:  "match stage errors via errors.As on resilience.StageError, not type asserts or string prefixes",
	Run:  runStageErr,
}

const resiliencePath = "cyclesql/internal/resilience"

func runStageErr(pass *Pass) error {
	if !pathIn(pass.Pkg.Path(), "cyclesql") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeAssertExpr:
				if n.Type == nil {
					return true // x.(type) handled via TypeSwitchStmt cases
				}
				if assertsStageError(pass.TypesInfo, n.X, n.Type) {
					pass.Reportf(n.Pos(), "direct type assertion on resilience.StageError: use errors.As so wrapped stage errors still match")
				}
			case *ast.TypeSwitchStmt:
				x := typeSwitchSubject(n)
				if x == nil {
					return true
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, t := range cc.List {
						if assertsStageError(pass.TypesInfo, x, t) {
							pass.Reportf(t.Pos(), "type switch case on resilience.StageError: use errors.As so wrapped stage errors still match")
						}
					}
				}
			case *ast.CallExpr:
				checkStageStringMatch(pass, n)
			case *ast.BinaryExpr:
				checkStageStringCompare(pass, n)
			}
			return true
		})
	}
	return nil
}

// typeSwitchSubject extracts the switched expression from `switch v :=
// x.(type)` / `switch x.(type)`.
func typeSwitchSubject(n *ast.TypeSwitchStmt) ast.Expr {
	var assert *ast.TypeAssertExpr
	switch s := n.Assign.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			assert, _ = ast.Unparen(s.Rhs[0]).(*ast.TypeAssertExpr)
		}
	case *ast.ExprStmt:
		assert, _ = ast.Unparen(s.X).(*ast.TypeAssertExpr)
	}
	if assert == nil {
		return nil
	}
	return assert.X
}

// assertsStageError reports whether asserting x to type texpr narrows an
// error interface down to resilience.StageError.
func assertsStageError(info *types.Info, x ast.Expr, texpr ast.Expr) bool {
	tv, ok := info.Types[texpr]
	if !ok || !isNamed(tv.Type, resiliencePath, "StageError") {
		return false
	}
	xtv, ok := info.Types[x]
	if !ok {
		return false
	}
	_, isIface := xtv.Type.Underlying().(*types.Interface)
	return isIface
}

// checkStageStringMatch flags strings.HasPrefix/HasSuffix/Contains calls
// whose pattern argument is (or starts with) a stage prefix.
func checkStageStringMatch(pass *Pass, call *ast.CallExpr) {
	fn := calleeOf(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" {
		return
	}
	switch fn.Name() {
	case "HasPrefix", "HasSuffix", "Contains", "Index":
	default:
		return
	}
	for _, arg := range call.Args {
		if lit, ok := stringConst(pass.TypesInfo, arg); ok && matchesStagePrefix(lit) {
			pass.Reportf(call.Pos(), "string-matching the %q stage prefix: classify with errors.As(err, &se) and se.Stage instead", lit)
			return
		}
	}
}

// checkStageStringCompare flags `err.Error() == "execute: ..."`-style
// comparisons.
func checkStageStringCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op.String() != "==" && be.Op.String() != "!=" {
		return
	}
	for _, pair := range [][2]ast.Expr{{be.X, be.Y}, {be.Y, be.X}} {
		lit, ok := stringConst(pass.TypesInfo, pair[1])
		if !ok || !matchesStagePrefix(lit) {
			continue
		}
		if isErrorTextCall(pass.TypesInfo, pair[0]) {
			pass.Reportf(be.Pos(), "comparing error text against the %q stage prefix: classify with errors.As(err, &se) and se.Stage instead", lit)
			return
		}
	}
}

// isErrorTextCall reports whether e is a call to Error() on an error.
func isErrorTextCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeOf(info, call)
	return fn != nil && fn.Name() == "Error" && fn.Type().(*types.Signature).Recv() != nil
}

// stringConst extracts a compile-time string constant from e.
func stringConst(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func matchesStagePrefix(s string) bool {
	for _, p := range stagePrefixes {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	return false
}
