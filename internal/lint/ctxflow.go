package lint

import (
	"go/ast"
	"go/types"
)

// ctxflowScope is the set of hot-path packages (including their
// subpackages) in which inventing a context is banned: the execution
// stack threads real contexts end to end (PR 4), so a context.TODO() or
// context.Background() here means a call site dodged the plumbing. The
// documented one-shot wrappers (Executor.Exec, Pipeline.Baseline, nil-ctx
// guards) carry //vetcycle:allow directives.
var ctxflowScope = []string{
	"cyclesql/internal/core",
	"cyclesql/internal/sqleval",
	"cyclesql/internal/serve",
	"cyclesql/internal/resilience",
}

// CtxFlow enforces context threading in the hot-path packages:
//
//  1. context.TODO() is always a finding — it marks a call site that
//     dodged the plumbing (this subsumes the retired grep-based CI ban).
//  2. context.Background() is a finding unless the line carries a
//     //vetcycle:allow ctxflow directive naming it a deliberate one-shot
//     wrapper or nil-ctx guard.
//  3. A function that has a context.Context parameter in scope must not
//     call the background wrapper of a context-aware API: calling Exec
//     when ExecContext exists (or Verify/VerifyContext, Track/TrackContext,
//     ... — any in-module sibling pair following the *Context naming
//     convention) silently drops the caller's cancellation.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "forbid invented contexts and dropped-ctx wrapper calls in hot-path packages",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	if !pathIn(pass.Pkg.Path(), ctxflowScope...) {
		return nil
	}
	for _, f := range pass.Files {
		ctxflowWalk(pass, f, false)
	}
	return nil
}

// ctxflowWalk visits n with ctxInScope tracking whether an enclosing
// function (or closure chain) has a context.Context parameter.
func ctxflowWalk(pass *Pass, n ast.Node, ctxInScope bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			inner := ctxInScope || funcCtxParam(pass.TypesInfo, n.Type) != ""
			if n.Body != nil {
				ctxflowWalk(pass, n.Body, inner)
			}
			return false
		case *ast.FuncLit:
			inner := ctxInScope || funcCtxParam(pass.TypesInfo, n.Type) != ""
			ctxflowWalk(pass, n.Body, inner)
			return false
		case *ast.CallExpr:
			checkCtxCall(pass, n, ctxInScope)
		}
		return true
	})
}

func checkCtxCall(pass *Pass, call *ast.CallExpr, ctxInScope bool) {
	fn := calleeOf(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if fn.Pkg().Path() == "context" {
		switch fn.Name() {
		case "TODO":
			pass.Reportf(call.Pos(), "context.TODO() in %s: thread the caller's context instead", pass.Pkg.Path())
		case "Background":
			pass.Reportf(call.Pos(), "context.Background() in %s: thread the caller's context, or mark a deliberate one-shot wrapper with //vetcycle:allow ctxflow -- <why>", pass.Pkg.Path())
		}
		return
	}
	// Rule 3: dropping an in-scope ctx for the background wrapper. Only
	// in-module sibling pairs count — the Foo/FooContext convention is a
	// project contract, not one we can assume of third-party APIs.
	if !ctxInScope || !pathIn(fn.Pkg().Path(), "cyclesql") {
		return
	}
	for _, arg := range call.Args {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && isContextType(tv.Type) {
			return // already passes a context
		}
	}
	if sib := ctxSibling(fn); sib != "" {
		pass.Reportf(call.Pos(), "%s drops the in-scope ctx: call %s so cancellation reaches the work", fn.Name(), sib)
	}
}

// ctxSibling returns the name of fn's context-aware variant (fn's name +
// "Context", as a method on the same receiver type or a function in the
// same package), or "" when none exists or fn itself takes a context.
func ctxSibling(fn *types.Func) string {
	want := fn.Name() + "Context"
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		if named := namedType(recv.Type()); named != nil {
			if iface, ok := named.Underlying().(*types.Interface); ok {
				for i := 0; i < iface.NumMethods(); i++ {
					if iface.Method(i).Name() == want {
						return named.Obj().Name() + "." + want
					}
				}
			}
			for i := 0; i < named.NumMethods(); i++ {
				if named.Method(i).Name() == want {
					return named.Obj().Name() + "." + want
				}
			}
		}
		// The convention may instead pair the method with a package-level
		// helper (e.g. nli.VerifyContext(ctx, v, ...) for Verifier.Verify).
		if obj, ok := fn.Pkg().Scope().Lookup(want).(*types.Func); ok {
			return fn.Pkg().Name() + "." + obj.Name()
		}
		return ""
	}
	if obj, ok := fn.Pkg().Scope().Lookup(want).(*types.Func); ok {
		return fn.Pkg().Name() + "." + obj.Name()
	}
	return ""
}
