package stats

import (
	"testing"

	"cyclesql/internal/sqltypes"
)

func numCol(rows, nonNull, distinct int, minV, maxV float64) Column {
	return Column{
		Rows: rows, NonNull: nonNull, Distinct: distinct,
		HasBounds: nonNull > 0,
		Min:       sqltypes.NewFloat(minV), Max: sqltypes.NewFloat(maxV),
	}
}

func TestEqRows(t *testing.T) {
	c := numCol(1000, 900, 9, 0, 100)
	if got := c.EqRows(); got != 100 {
		t.Fatalf("EqRows = %v, want 100 (NonNull/Distinct)", got)
	}
	// No non-NULL values: equality matches nothing, and the estimator must
	// not divide by zero.
	empty := Column{Rows: 50}
	if got := empty.EqRows(); got != 0 {
		t.Fatalf("EqRows on an all-NULL column = %v, want 0", got)
	}
}

func TestRangeRowsInterpolation(t *testing.T) {
	c := numCol(1000, 1000, 1000, 0, 100)
	lo := sqltypes.NewInt(90)
	if got := c.RangeRows(&lo, nil, false, false); got != 100 {
		t.Fatalf("one-sided interpolation = %v, want 100", got)
	}
	hi := sqltypes.NewInt(95)
	if got := c.RangeRows(&lo, &hi, true, true); got != 50 {
		t.Fatalf("two-sided interpolation = %v, want 50", got)
	}
	// Bounds outside the span clamp: a range past Max selects nothing.
	past := sqltypes.NewInt(200)
	if got := c.RangeRows(&past, nil, false, false); got != 0 {
		t.Fatalf("range past Max = %v, want 0", got)
	}
	// A range covering the whole span selects everything, NULLs excluded.
	wide := Column{Rows: 100, NonNull: 80, Distinct: 40, HasBounds: true,
		Min: sqltypes.NewInt(0), Max: sqltypes.NewInt(10)}
	all := sqltypes.NewInt(-5)
	if got := wide.RangeRows(&all, nil, false, false); got != 80 {
		t.Fatalf("covering range = %v, want NonNull=80", got)
	}
}

func TestRangeRowsFallback(t *testing.T) {
	// Text bounds cannot interpolate; the fixed fractions apply.
	c := Column{Rows: 90, NonNull: 90, Distinct: 3, HasBounds: true,
		Min: sqltypes.NewText("a"), Max: sqltypes.NewText("z")}
	lo := sqltypes.NewText("m")
	if got := c.RangeRows(&lo, nil, false, false); got != 30 {
		t.Fatalf("one-sided fallback = %v, want 90*1/3", got)
	}
	hi := sqltypes.NewText("p")
	if got := c.RangeRows(&lo, &hi, true, true); got != 10 {
		t.Fatalf("two-sided fallback = %v, want 90*1/9", got)
	}
	if got := c.RangeRows(nil, nil, false, false); got != 30 {
		t.Fatalf("unbounded fallback = %v, want the one-sided fraction", got)
	}
}

func TestRangeRowsDegenerateSpan(t *testing.T) {
	// Every value identical: membership is decided by the clamp alone.
	c := numCol(10, 10, 1, 7, 7)
	lo, hi := sqltypes.NewInt(0), sqltypes.NewInt(100)
	if got := c.RangeRows(&lo, &hi, true, true); got != 10 {
		t.Fatalf("covering degenerate span = %v, want 10", got)
	}
	above := sqltypes.NewInt(8)
	if got := c.RangeRows(&above, nil, true, true); got != 0 {
		t.Fatalf("range above degenerate span = %v, want 0", got)
	}
	if got := c.RangeRows(nil, nil, false, false); got != 10 {
		t.Fatalf("unbounded over degenerate span = %v, want 10", got)
	}
}

func TestSelectivity(t *testing.T) {
	c := numCol(200, 200, 10, 0, 9)
	if got := c.Selectivity(20); got != 0.1 {
		t.Fatalf("Selectivity = %v, want 0.1", got)
	}
	if got := c.Selectivity(1e9); got != 1 {
		t.Fatalf("Selectivity must clamp to 1, got %v", got)
	}
	if got := (Column{}).Selectivity(5); got != 0 {
		t.Fatalf("Selectivity over zero rows = %v, want 0", got)
	}
}
