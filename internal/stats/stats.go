// Package stats defines the per-column statistics the cost-based planner
// consumes and the selectivity estimators it applies to them. The package
// is a pure leaf: it holds no state and knows nothing about storage — the
// numbers are derived by internal/storage from its secondary indexes
// (Database.ColStats), which is what gives them the index lifecycle for
// free (maintained on Insert, invalidated with the indexes on Mutate,
// snapshot/clone-isolated).
//
// The estimators make the textbook uniformity assumptions: equality
// selects NonNull/Distinct rows (every key holds an average-sized
// bucket), and a range over a numeric column selects the linear
// interpolation of its bounds inside the observed [Min, Max] span. Both
// are deliberate approximations — no histograms, no per-literal
// frequencies — chosen so the numbers fall out of structures the engine
// already maintains. Estimates are advisory: every plan the estimates
// pick must still produce bit-identical results (the planner only ever
// chooses among result-preserving lowerings), so a misestimate costs
// time, never correctness.
package stats

import "cyclesql/internal/sqltypes"

// Fallback selectivities for ranges the interpolator cannot measure
// (text bounds, all-NULL columns with no span). The values are the
// conventional System R defaults; what matters here is determinism, not
// precision — golden plan snapshots pin every estimate.
const (
	// OneSidedFraction is the assumed selectivity of a half-open range.
	OneSidedFraction = 1.0 / 3
	// TwoSidedFraction is the assumed selectivity of a both-bounded range.
	TwoSidedFraction = 1.0 / 9
)

// Column summarizes one column of one stored table.
type Column struct {
	// Rows is the table's total row count.
	Rows int
	// NonNull is how many rows hold a non-NULL value in the column.
	NonNull int
	// Distinct is the number of distinct non-NULL values. Zero means the
	// column holds no non-NULL values at all (empty table or all NULL) —
	// never "unknown"; Database.ColStats reports ok=false for unknown.
	Distinct int
	// HasBounds reports whether Min/Max describe a non-empty value span
	// (NonNull > 0). When false, Min and Max are NULL.
	HasBounds bool
	// Min and Max are the smallest and largest non-NULL values under the
	// sqltypes.Compare total order.
	Min, Max sqltypes.Value
}

// EqRows estimates how many rows satisfy column = literal: the average
// bucket size NonNull/Distinct under the uniform-frequency assumption.
// A column with no non-NULL values matches nothing.
func (c Column) EqRows() float64 {
	if c.Distinct == 0 {
		return 0
	}
	return float64(c.NonNull) / float64(c.Distinct)
}

// RangeRows estimates how many rows fall inside a range probe's bounds
// (nil bounds are unbounded on that side; inclusivity is ignored — the
// interpolation is continuous). Numeric bounds over a numeric [Min, Max]
// span interpolate linearly; everything else falls back to the fixed
// fractions above. NULL rows never satisfy a comparison, so the estimate
// scales NonNull, not Rows.
func (c Column) RangeRows(lo, hi *sqltypes.Value, loIncl, hiIncl bool) float64 {
	_ = loIncl
	_ = hiIncl
	if c.NonNull == 0 {
		return 0
	}
	if frac, ok := c.interpolate(lo, hi); ok {
		return float64(c.NonNull) * frac
	}
	frac := OneSidedFraction
	if lo != nil && hi != nil {
		frac = TwoSidedFraction
	}
	return float64(c.NonNull) * frac
}

// interpolate computes the covered fraction of the [Min, Max] span when
// the span and every present bound are numeric.
func (c Column) interpolate(lo, hi *sqltypes.Value) (float64, bool) {
	if !c.HasBounds || !c.Min.IsNumeric() || !c.Max.IsNumeric() {
		return 0, false
	}
	minF, _ := c.Min.AsFloat()
	maxF, _ := c.Max.AsFloat()
	loF, hiF := minF, maxF
	if lo != nil {
		if !lo.IsNumeric() {
			return 0, false
		}
		loF, _ = lo.AsFloat()
	}
	if hi != nil {
		if !hi.IsNumeric() {
			return 0, false
		}
		hiF, _ = hi.AsFloat()
	}
	loF = max(loF, minF)
	hiF = min(hiF, maxF)
	if hiF < loF {
		return 0, true
	}
	width := maxF - minF
	if width <= 0 {
		// Single-valued span: the clamp above already decided membership.
		return 1, true
	}
	return (hiF - loF) / width, true
}

// Selectivity returns est/Rows clamped to [0, 1] — the fraction of the
// table an estimated row count represents.
func (c Column) Selectivity(est float64) float64 {
	if c.Rows == 0 {
		return 0
	}
	s := est / float64(c.Rows)
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}
