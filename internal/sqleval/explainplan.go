package sqleval

import (
	"context"
	"fmt"
	"strings"

	"cyclesql/internal/plan"
	"cyclesql/internal/sqlast"
)

// This file surfaces the planner's decisions: PlanTree compiles and runs a
// statement on a throwaway executor whose trace records per-node actual
// row counts, then folds the compiled structure and the trace into a
// plan.Tree. ExplainPlan is the rendered form. The throwaway executor
// copies this executor's mode flags, so the plan shown is the plan this
// executor would run — while normal executions keep a nil trace and pay
// nothing.

// execTrace accumulates actual row counts per plan node. Counts start at
// -1 ("never executed") and accumulate across executions, so a correlated
// derived table re-run per outer row reports its total rows produced.
type execTrace struct {
	rows  []int64
	pairs []int64
}

func newExecTrace(nodes int) *execTrace {
	t := &execTrace{rows: make([]int64, nodes), pairs: make([]int64, nodes)}
	for i := range t.rows {
		t.rows[i], t.pairs[i] = -1, -1
	}
	return t
}

func (t *execTrace) addRows(id int, n int64) {
	if id < 0 || id >= len(t.rows) {
		return
	}
	if t.rows[id] < 0 {
		t.rows[id] = 0
	}
	t.rows[id] += n
}

func (t *execTrace) addPairs(id int, n int64) {
	if id < 0 || id >= len(t.pairs) {
		return
	}
	if t.pairs[id] < 0 {
		t.pairs[id] = 0
	}
	t.pairs[id] += n
}

func (t *execTrace) rowsAt(id int) int64 {
	if t == nil || id < 0 || id >= len(t.rows) {
		return -1
	}
	return t.rows[id]
}

func (t *execTrace) pairsAt(id int) int64 {
	if t == nil || id < 0 || id >= len(t.pairs) {
		return -1
	}
	return t.pairs[id]
}

// PlanTree compiles stmt, executes it once, and returns the plan tree with
// estimated and actual row counts per node. The execution happens on a
// throwaway executor sharing this executor's database and mode flags —
// never on this executor itself, so concurrent Exec calls are undisturbed
// and cached plans never carry trace state.
func (ex *Executor) PlanTree(ctx context.Context, stmt *sqlast.SelectStmt) (*plan.Tree, error) {
	child := &Executor{
		db:             ex.db,
		NestedLoopOnly: ex.NestedLoopOnly,
		NoIndexes:      ex.NoIndexes,
		Syntactic:      ex.Syntactic,
	}
	prog, err := child.compiled(stmt)
	if err != nil {
		return nil, err
	}
	child.trace = newExecTrace(prog.nodes)
	if _, err := child.runProgram(ctx, prog, nil, 1); err != nil {
		return nil, err
	}
	return &plan.Tree{Root: programNode(prog, child.trace)}, nil
}

// ExplainPlan is PlanTree rendered to the deterministic textual form the
// golden plan snapshots pin.
func (ex *Executor) ExplainPlan(ctx context.Context, stmt *sqlast.SelectStmt) (string, error) {
	tree, err := ex.PlanTree(ctx, stmt)
	if err != nil {
		return "", err
	}
	return tree.Render(), nil
}

func programNode(p *program, tr *execTrace) *plan.Node {
	if len(p.cores) == 1 {
		return coreNode(p.cores[0], tr)
	}
	ops := make([]string, len(p.ops))
	for i, op := range p.ops {
		ops[i] = strings.ToUpper(string(op))
	}
	n := &plan.Node{Kind: "compound", Label: strings.Join(ops, ", "),
		EstRows: -1, ActRows: -1, ActPairs: -1}
	for _, cc := range p.cores {
		n.Children = append(n.Children, coreNode(cc, tr))
	}
	return n
}

func coreNode(cc *compiledCore, tr *execTrace) *plan.Node {
	kind := "project"
	switch {
	case cc.stream != nil:
		kind = "stream"
	case len(cc.groupBy) > 0 || cc.hasAgg:
		kind = "aggregate"
	}
	out := &plan.Node{Kind: kind, EstRows: cc.est,
		ActRows: tr.rowsAt(cc.id), ActPairs: -1}
	child := frameNode(cc, len(cc.scans)-1, tr)
	if cc.filterID >= 0 {
		child = &plan.Node{Kind: "filter",
			Label:   fmt.Sprintf("%d conjuncts", len(cc.filters)),
			EstRows: -1, ActRows: tr.rowsAt(cc.filterID), ActPairs: -1,
			Children: []*plan.Node{child}}
	}
	if child != nil {
		out.Children = []*plan.Node{child}
	}
	return out
}

// frameNode renders the frame after scans[0..i] have been joined: a left-
// deep tree of join nodes over scan leaves.
func frameNode(cc *compiledCore, i int, tr *execTrace) *plan.Node {
	if i < 0 {
		return nil // SELECT without FROM
	}
	if i == 0 {
		return scanNode(cc, cc.scans[0], tr)
	}
	jp := cc.joins[i-1]
	kind := "join"
	if jp.left {
		kind = "left join"
	}
	n := &plan.Node{Kind: kind,
		Label:    joinLabel(cc, i, jp),
		Detail:   joinDetail(jp),
		EstRows:  jp.est,
		ActRows:  tr.rowsAt(jp.id),
		ActPairs: tr.pairsAt(jp.id),
		Children: []*plan.Node{frameNode(cc, i-1, tr), scanNode(cc, cc.scans[i], tr)},
	}
	return n
}

func scanNode(cc *compiledCore, ts *tableScan, tr *execTrace) *plan.Node {
	act := tr.rowsAt(ts.id)
	if ts.sub != nil {
		return &plan.Node{Kind: "derived", EstRows: ts.est, ActRows: act, ActPairs: -1,
			Children: []*plan.Node{programNode(ts.sub, tr)}}
	}
	switch {
	case ts.probe != nil:
		return &plan.Node{Kind: "probe",
			Label:   fmt.Sprintf("%s.%s = %s", ts.table, colName(ts, ts.probe.col), ts.probe.val.SQLLiteral()),
			EstRows: ts.est, ActRows: act, ActPairs: -1}
	case ts.rprobe != nil:
		return &plan.Node{Kind: "range",
			Label:   rangeLabel(ts),
			EstRows: ts.est, ActRows: act, ActPairs: -1}
	default:
		return &plan.Node{Kind: "scan", Label: ts.table,
			EstRows: ts.est, ActRows: act, ActPairs: -1}
	}
}

// colName names one column of a base-table scan by its offset within the
// table's own row.
func colName(ts *tableScan, col int) string {
	if ts.rel != nil && col >= 0 && col < len(ts.rel.Columns) {
		return ts.rel.Columns[col]
	}
	return fmt.Sprintf("#%d", col)
}

// rangeLabel renders a range probe as the canonical chained comparison,
// e.g. "Flight.distance > 500" or "10 <= Aircraft.seats < 20".
func rangeLabel(ts *tableScan) string {
	rp := ts.rprobe
	name := fmt.Sprintf("%s.%s", ts.table, colName(ts, rp.col))
	var b strings.Builder
	if rp.lo != nil {
		b.WriteString(rp.lo.SQLLiteral())
		b.WriteString(cmpOp(rp.loIncl))
	}
	b.WriteString(name)
	if rp.hi != nil {
		b.WriteString(cmpOp(rp.hiIncl))
		b.WriteString(rp.hi.SQLLiteral())
	}
	return b.String()
}

func cmpOp(incl bool) string {
	if incl {
		return " <= "
	}
	return " < "
}

// joinLabel names the equi-key pairing of the i-th join: the frame-side
// columns against the new table's columns, "cross" when there are none.
func joinLabel(cc *compiledCore, i int, jp *joinPlan) string {
	if len(jp.eqAcc) == 0 {
		return "cross"
	}
	next := cc.scans[i]
	parts := make([]string, len(jp.eqAcc))
	for k := range jp.eqAcc {
		parts[k] = fmt.Sprintf("%s = %s.%s",
			frameColName(cc, jp.eqAcc[k]),
			next.table, colName(next, jp.eqNew[k]))
	}
	return strings.Join(parts, ", ")
}

// frameColName names a column by its offset in the accumulated frame row:
// it finds the scan covering the offset and reads the column name from its
// relation (or its derived program's output labels).
func frameColName(cc *compiledCore, off int) string {
	for _, ts := range cc.scans {
		if off < ts.offset || off >= ts.offset+ts.width {
			continue
		}
		col := off - ts.offset
		if ts.sub != nil {
			cols := ts.sub.columns()
			if col < len(cols) {
				return cols[col]
			}
			return fmt.Sprintf("#%d", off)
		}
		return fmt.Sprintf("%s.%s", ts.table, colName(ts, col))
	}
	return fmt.Sprintf("#%d", off)
}

// joinDetail names the execution strategy the join compiled to.
func joinDetail(jp *joinPlan) string {
	switch {
	case len(jp.eqAcc) == 0:
		return "nested loop"
	case jp.reuse:
		return "index build"
	default:
		return "hash build"
	}
}
