package sqleval

import (
	"math/rand"
	"testing"

	"cyclesql/internal/sqlgen"
)

// TestPlanParitySQLGen is the property-based half of the plan-parity bar:
// every query of the shared 480-query sqlgen corpus (400 randomized
// single-table predicates + 80 randomized composite-key joins) must
// produce a bit-identical relation through the cost-based planner, the
// pre-statistics syntactic planner, the index-free executor, and the
// nested-loop fallback. runBoth checks all four paths; this test exists so
// the plan-quality gate has a named, greppable parity suite over the full
// corpus even if the older per-corpus tests are ever narrowed.
func TestPlanParitySQLGen(t *testing.T) {
	single := sqlgen.SingleTableQueries(sqlgen.SingleTableSeed, sqlgen.SingleTableCount)
	join := sqlgen.JoinQueries(sqlgen.JoinSeed, sqlgen.JoinCount)
	if len(single)+len(join) < 480 {
		t.Fatalf("sqlgen corpus shrank: %d+%d queries", len(single), len(join))
	}
	db := randomDB(t, rand.New(rand.NewSource(sqlgen.SingleTableSeed)))
	for _, q := range single {
		runBoth(t, db, q)
	}
	db = randomDB(t, rand.New(rand.NewSource(sqlgen.JoinSeed)))
	for _, q := range join {
		runBoth(t, db, q)
	}
}
