package sqleval

import (
	"fmt"
	"testing"

	"cyclesql/internal/schema"
	"cyclesql/internal/sqlparse"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// benchDB builds a flight-schema database scaled to nAircraft × nFlights so
// join benchmarks exercise non-trivial cardinalities.
func benchDB(b testing.TB, nAircraft, nFlights int) *storage.Database {
	b.Helper()
	s := &schema.Schema{
		Name: "flight_bench",
		Tables: []*schema.Table{
			{Name: "Aircraft", Columns: []schema.Column{
				{Name: "aid", Type: sqltypes.KindInt, PrimaryKey: true},
				{Name: "name", Type: sqltypes.KindText},
				{Name: "distance", Type: sqltypes.KindInt},
			}},
			{Name: "Flight", Columns: []schema.Column{
				{Name: "flno", Type: sqltypes.KindInt, PrimaryKey: true},
				{Name: "aid", Type: sqltypes.KindInt},
				{Name: "origin", Type: sqltypes.KindText},
				{Name: "destination", Type: sqltypes.KindText},
			}},
		},
		ForeignKeys: []schema.ForeignKey{{Table: "Flight", Column: "aid", RefTable: "Aircraft", RefColumn: "aid"}},
	}
	if err := s.Validate(); err != nil {
		b.Fatal(err)
	}
	db := storage.NewDatabase(s)
	cities := []string{"Los Angeles", "Tokyo", "Chicago", "Sydney", "Honolulu", "Boston", "Dallas", "New York"}
	for i := 0; i < nAircraft; i++ {
		db.MustInsert("Aircraft",
			sqltypes.NewInt(int64(i+1)),
			sqltypes.NewText(fmt.Sprintf("Aircraft-%d", i+1)),
			sqltypes.NewInt(int64(500+i*137%9000)))
	}
	for i := 0; i < nFlights; i++ {
		db.MustInsert("Flight",
			sqltypes.NewInt(int64(i+1)),
			sqltypes.NewInt(int64(i%nAircraft+1)),
			sqltypes.NewText(cities[i%len(cities)]),
			sqltypes.NewText(cities[(i+3)%len(cities)]))
	}
	return db
}

func benchExec(b *testing.B, sql string, nAircraft, nFlights int) {
	benchExecPath(b, sql, nAircraft, nFlights, false)
}

// benchExecPath executes sql repeatedly through one executor, with the
// indexed access paths enabled (the default) or disabled (the scan
// baseline). The warm-up execution compiles the plan and, on the indexed
// path, builds any lazily constructed column indexes, so the measured
// iterations see the steady state both paths reach after one execution.
func benchExecPath(b *testing.B, sql string, nAircraft, nFlights int, scanOnly bool) {
	b.Helper()
	db := benchDB(b, nAircraft, nFlights)
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		b.Fatal(err)
	}
	ex := New(db)
	ex.NoIndexes = scanOnly
	if _, err := ex.Exec(stmt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Exec(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

// The indexed-vs-scan benchmark pairs below are recorded in BENCH_PR2.json
// and smoke-run by CI; TestIndexAllocRegressionGate enforces their ≥5x
// allocs/op win in the regular test suite.

// pointLookupSQL is a point lookup by primary key inside a join: the
// indexed path probes aircraft.aid and joins one row; the scan path hashes
// a build side and filters the literal per candidate pair.
const pointLookupSQL = "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.aid = 77"

// joinReuseSQL is a repeated equi-join whose build side is the whole
// aircraft table: the indexed path probes the table's column index; the
// scan path rebuilds a hash table over it on every execution.
const joinReuseSQL = "SELECT T1.flno, T2.name FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.distance > 9000"

// BenchmarkIndexPointLookup measures a WHERE pk = literal probe served by
// a secondary index.
func BenchmarkIndexPointLookup(b *testing.B) {
	benchExecPath(b, pointLookupSQL, 2000, 400, false)
}

// BenchmarkScanPointLookup is the same query with indexes disabled.
func BenchmarkScanPointLookup(b *testing.B) {
	benchExecPath(b, pointLookupSQL, 2000, 400, true)
}

// BenchmarkIndexJoinReuse measures an equi-join whose build side reuses
// the base table's column index across executions.
func BenchmarkIndexJoinReuse(b *testing.B) {
	benchExecPath(b, joinReuseSQL, 2000, 400, false)
}

// BenchmarkScanJoinReuse is the same join with indexes disabled, so the
// hash-join build side is reconstructed per execution.
func BenchmarkScanJoinReuse(b *testing.B) {
	benchExecPath(b, joinReuseSQL, 2000, 400, true)
}

// TestIndexAllocRegressionGate enforces the indexed paths' acceptance bar
// inside the regular test suite: the point-lookup probe and the reused
// build-side join must allocate at least 5x less per execution than the
// scan paths. AllocsPerRun is deterministic here (steady-state executions
// of cached plans), so the gate cannot flake; BENCH_PR2.json records the
// full timed numbers.
func TestIndexAllocRegressionGate(t *testing.T) {
	for _, tc := range []struct{ name, sql string }{
		{"point lookup", pointLookupSQL},
		{"join reuse", joinReuseSQL},
	} {
		db := benchDB(t, 2000, 400)
		stmt, err := sqlparse.Parse(tc.sql)
		if err != nil {
			t.Fatal(err)
		}
		measure := func(scanOnly bool) float64 {
			ex := New(db)
			ex.NoIndexes = scanOnly
			if _, err := ex.Exec(stmt); err != nil {
				t.Fatal(err)
			}
			return testing.AllocsPerRun(10, func() {
				if _, err := ex.Exec(stmt); err != nil {
					t.Fatal(err)
				}
			})
		}
		indexed, scan := measure(false), measure(true)
		if indexed*5 > scan {
			t.Errorf("%s: indexed path allocates %.0f/op vs scan %.0f/op — less than the required 5x win", tc.name, indexed, scan)
		}
	}
}

// BenchmarkExecWhere measures a filtered single-table scan.
func BenchmarkExecWhere(b *testing.B) {
	benchExec(b, "SELECT name FROM aircraft WHERE distance > 3000", 400, 0)
}

// BenchmarkExecJoin measures an equi-join with a residual filter.
func BenchmarkExecJoin(b *testing.B) {
	benchExec(b, "SELECT T1.flno, T2.name FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.distance > 2000", 50, 400)
}

// BenchmarkExecLeftJoin measures LEFT JOIN null extension bookkeeping.
func BenchmarkExecLeftJoin(b *testing.B) {
	benchExec(b, "SELECT T2.name, T1.flno FROM aircraft AS T2 LEFT JOIN flight AS T1 ON T1.aid = T2.aid", 50, 400)
}

// BenchmarkExecGroupBy measures grouped aggregation over a join.
func BenchmarkExecGroupBy(b *testing.B) {
	benchExec(b, "SELECT T2.name, count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid GROUP BY T2.name ORDER BY count(*) DESC", 50, 400)
}
