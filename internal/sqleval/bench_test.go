package sqleval

import (
	"fmt"
	"testing"

	"cyclesql/internal/schema"
	"cyclesql/internal/sqlparse"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// benchDB builds a flight-schema database scaled to nAircraft × nFlights so
// join benchmarks exercise non-trivial cardinalities.
func benchDB(b testing.TB, nAircraft, nFlights int) *storage.Database {
	b.Helper()
	s := &schema.Schema{
		Name: "flight_bench",
		Tables: []*schema.Table{
			{Name: "Aircraft", Columns: []schema.Column{
				{Name: "aid", Type: sqltypes.KindInt, PrimaryKey: true},
				{Name: "name", Type: sqltypes.KindText},
				{Name: "distance", Type: sqltypes.KindInt},
			}},
			{Name: "Flight", Columns: []schema.Column{
				{Name: "flno", Type: sqltypes.KindInt, PrimaryKey: true},
				{Name: "aid", Type: sqltypes.KindInt},
				{Name: "origin", Type: sqltypes.KindText},
				{Name: "destination", Type: sqltypes.KindText},
			}},
		},
		ForeignKeys: []schema.ForeignKey{{Table: "Flight", Column: "aid", RefTable: "Aircraft", RefColumn: "aid"}},
	}
	if err := s.Validate(); err != nil {
		b.Fatal(err)
	}
	db := storage.NewDatabase(s)
	cities := []string{"Los Angeles", "Tokyo", "Chicago", "Sydney", "Honolulu", "Boston", "Dallas", "New York"}
	for i := 0; i < nAircraft; i++ {
		db.MustInsert("Aircraft",
			sqltypes.NewInt(int64(i+1)),
			sqltypes.NewText(fmt.Sprintf("Aircraft-%d", i+1)),
			sqltypes.NewInt(int64(500+i*137%9000)))
	}
	for i := 0; i < nFlights; i++ {
		db.MustInsert("Flight",
			sqltypes.NewInt(int64(i+1)),
			sqltypes.NewInt(int64(i%nAircraft+1)),
			sqltypes.NewText(cities[i%len(cities)]),
			sqltypes.NewText(cities[(i+3)%len(cities)]))
	}
	return db
}

func benchExec(b *testing.B, sql string, nAircraft, nFlights int) {
	benchExecPath(b, sql, nAircraft, nFlights, false)
}

// benchExecPath executes sql repeatedly through one executor, with the
// indexed access paths enabled (the default) or disabled (the scan
// baseline). The warm-up execution compiles the plan and, on the indexed
// path, builds any lazily constructed column indexes, so the measured
// iterations see the steady state both paths reach after one execution.
func benchExecPath(b *testing.B, sql string, nAircraft, nFlights int, scanOnly bool) {
	b.Helper()
	db := benchDB(b, nAircraft, nFlights)
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		b.Fatal(err)
	}
	ex := New(db)
	ex.NoIndexes = scanOnly
	if _, err := ex.Exec(stmt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Exec(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

// The indexed-vs-scan benchmark pairs below are recorded in BENCH_PR2.json
// and smoke-run by CI; TestIndexAllocRegressionGate enforces their ≥5x
// allocs/op win in the regular test suite.

// pointLookupSQL is a point lookup by primary key inside a join: the
// indexed path probes aircraft.aid and joins one row; the scan path hashes
// a build side and filters the literal per candidate pair.
const pointLookupSQL = "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.aid = 77"

// joinReuseSQL is a repeated equi-join whose build side is the whole
// aircraft table: the indexed path probes the table's column index; the
// scan path rebuilds a hash table over it on every execution.
const joinReuseSQL = "SELECT T1.flno, T2.name FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.distance > 9000"

// BenchmarkIndexPointLookup measures a WHERE pk = literal probe served by
// a secondary index.
func BenchmarkIndexPointLookup(b *testing.B) {
	benchExecPath(b, pointLookupSQL, 2000, 400, false)
}

// BenchmarkScanPointLookup is the same query with indexes disabled.
func BenchmarkScanPointLookup(b *testing.B) {
	benchExecPath(b, pointLookupSQL, 2000, 400, true)
}

// BenchmarkIndexJoinReuse measures an equi-join whose build side reuses
// the base table's column index across executions.
func BenchmarkIndexJoinReuse(b *testing.B) {
	benchExecPath(b, joinReuseSQL, 2000, 400, false)
}

// BenchmarkScanJoinReuse is the same join with indexes disabled, so the
// hash-join build side is reconstructed per execution.
func BenchmarkScanJoinReuse(b *testing.B) {
	benchExecPath(b, joinReuseSQL, 2000, 400, true)
}

// rangeTopKSQL is the canonical sorted-index shape: a range conjunct
// lowered to an index span, streamed in order, cut off at the LIMIT. The
// scan path filters 2000 rows, materializes ~1000 projected records, and
// sorts them for the 5 it keeps.
const rangeTopKSQL = "SELECT flno, origin FROM flight WHERE flno > 1000 ORDER BY flno LIMIT 5"

// topKSQL is ORDER BY pk LIMIT k without a predicate: the scan path
// materializes and sorts every row; the streamed path projects exactly 3.
const topKSQL = "SELECT flno, origin FROM flight ORDER BY flno DESC LIMIT 3"

// rangeCountSQL is a pure range probe (no ordering): the win here is the
// skipped scan, visible in ns/op rather than allocations.
const rangeCountSQL = "SELECT count(*) FROM flight WHERE flno > 1800"

// compositeJoinSQL is a two-key equi-join whose build side is a whole base
// table: the indexed path probes the table's composite index; the scan
// path rebuilds a multi-key hash table (one string key per build row) on
// every execution.
const compositeJoinSQL = "SELECT count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid AND T1.flno = T2.distance"

// BenchmarkIndexRangeTopK measures a range conjunct + ORDER BY LIMIT
// streamed off the sorted index.
func BenchmarkIndexRangeTopK(b *testing.B) {
	benchExecPath(b, rangeTopKSQL, 50, 2000, false)
}

// BenchmarkScanRangeTopK is the same query with indexes disabled:
// filter-materialize-sort.
func BenchmarkScanRangeTopK(b *testing.B) {
	benchExecPath(b, rangeTopKSQL, 50, 2000, true)
}

// BenchmarkIndexTopK measures ORDER BY pk LIMIT k streamed off the sorted
// index (descending, so the walk emits equal-value runs back to front).
func BenchmarkIndexTopK(b *testing.B) {
	benchExecPath(b, topKSQL, 50, 2000, false)
}

// BenchmarkScanTopK is the same query with indexes disabled: a full
// materialize-and-sort for 3 output rows.
func BenchmarkScanTopK(b *testing.B) {
	benchExecPath(b, topKSQL, 50, 2000, true)
}

// BenchmarkIndexRangeCount measures a pure range probe.
func BenchmarkIndexRangeCount(b *testing.B) {
	benchExecPath(b, rangeCountSQL, 50, 2000, false)
}

// BenchmarkScanRangeCount is the same range with indexes disabled.
func BenchmarkScanRangeCount(b *testing.B) {
	benchExecPath(b, rangeCountSQL, 50, 2000, true)
}

// BenchmarkIndexCompositeJoin measures a multi-key equi-join served by the
// build table's composite index.
func BenchmarkIndexCompositeJoin(b *testing.B) {
	benchExecPath(b, compositeJoinSQL, 2000, 400, false)
}

// BenchmarkScanCompositeJoin is the same join with indexes disabled, so
// the multi-key hash table is reconstructed per execution.
func BenchmarkScanCompositeJoin(b *testing.B) {
	benchExecPath(b, compositeJoinSQL, 2000, 400, true)
}

// TestIndexAllocRegressionGate enforces the indexed paths' acceptance bar
// inside the regular test suite: the point-lookup probe, the reused
// build-side joins (single-key and composite), and the sorted-index
// range/top-k paths must allocate at least 5x less per execution than the
// scan paths. AllocsPerRun is deterministic here (steady-state executions
// of cached plans), so the gate cannot flake; BENCH_PR2.json and
// BENCH_PR5.json record the full timed numbers.
func TestIndexAllocRegressionGate(t *testing.T) {
	for _, tc := range []struct {
		name, sql           string
		nAircraft, nFlights int
	}{
		{"point lookup", pointLookupSQL, 2000, 400},
		{"join reuse", joinReuseSQL, 2000, 400},
		{"range top-k", rangeTopKSQL, 50, 2000},
		{"order-by top-k", topKSQL, 50, 2000},
		{"composite join", compositeJoinSQL, 2000, 400},
	} {
		db := benchDB(t, tc.nAircraft, tc.nFlights)
		stmt, err := sqlparse.Parse(tc.sql)
		if err != nil {
			t.Fatal(err)
		}
		measure := func(scanOnly bool) float64 {
			ex := New(db)
			ex.NoIndexes = scanOnly
			if _, err := ex.Exec(stmt); err != nil {
				t.Fatal(err)
			}
			return testing.AllocsPerRun(10, func() {
				if _, err := ex.Exec(stmt); err != nil {
					t.Fatal(err)
				}
			})
		}
		indexed, scan := measure(false), measure(true)
		if indexed*5 > scan {
			t.Errorf("%s: indexed path allocates %.0f/op vs scan %.0f/op — less than the required 5x win", tc.name, indexed, scan)
		}
	}
}

// TestStatsInsertAllocGate bounds what statistics cost the Insert hot
// path. The planner's statistics are derived from the hash and sorted
// indexes (NonNull rides the existing index add paths as a counter
// increment, Min/Max read the sorted index's ends), so:
//
//   - reading statistics off warm indexes must be allocation-free, and
//   - inserting into a table with warm stats-backing indexes may cost at
//     most the pre-existing inline index maintenance (3 allocations per
//     hash+sorted column pair: the compare key, its bucket append, and
//     the sorted position insert) plus a 1 alloc/op statistics budget.
//
// Amortized slice growth inside the add paths is averaged out by
// AllocsPerRun.
func TestStatsInsertAllocGate(t *testing.T) {
	const cols = 3
	measure := func(warm bool) float64 {
		db := benchDB(t, 400, 0)
		if warm {
			// Build the indexes ColStats reads (hash + sorted per column) the
			// same way a cost-based compile would.
			for col := 0; col < cols; col++ {
				if _, ok := db.ColStats("Aircraft", col); !ok {
					t.Fatal("ColStats must succeed on Aircraft")
				}
			}
		}
		next := int64(10_000)
		return testing.AllocsPerRun(200, func() {
			db.MustInsert("Aircraft",
				sqltypes.NewInt(next),
				sqltypes.NewText("Inserted"),
				sqltypes.NewInt(next%9000))
			next++
		})
	}
	cold, warm := measure(false), measure(true)
	if budget := cold + 3*cols + 1; warm > budget {
		t.Errorf("insert with warm stats indexes allocates %.2f/op (cold %.2f/op, budget %.2f/op) — statistics must add <=1 alloc/op over index maintenance", warm, cold, budget)
	}
	t.Logf("insert allocs/op: cold=%.2f warm-stats=%.2f", cold, warm)

	// Reads use the already-lower-cased name: ToLower on a mixed-case name
	// is the only allocation ColStats can make once the indexes are warm.
	db := benchDB(t, 400, 0)
	for col := 0; col < cols; col++ {
		db.ColStats("aircraft", col) // warm the lazily built indexes
	}
	if reads := testing.AllocsPerRun(100, func() {
		for col := 0; col < cols; col++ {
			if _, ok := db.ColStats("aircraft", col); !ok {
				t.Fatal("ColStats must succeed on aircraft")
			}
		}
	}); reads > 0 {
		t.Errorf("ColStats on warm indexes allocates %.2f/op, want 0", reads)
	}
}

// BenchmarkExecWhere measures a filtered single-table scan.
func BenchmarkExecWhere(b *testing.B) {
	benchExec(b, "SELECT name FROM aircraft WHERE distance > 3000", 400, 0)
}

// BenchmarkExecJoin measures an equi-join with a residual filter.
func BenchmarkExecJoin(b *testing.B) {
	benchExec(b, "SELECT T1.flno, T2.name FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.distance > 2000", 50, 400)
}

// BenchmarkExecLeftJoin measures LEFT JOIN null extension bookkeeping.
func BenchmarkExecLeftJoin(b *testing.B) {
	benchExec(b, "SELECT T2.name, T1.flno FROM aircraft AS T2 LEFT JOIN flight AS T1 ON T1.aid = T2.aid", 50, 400)
}

// BenchmarkExecGroupBy measures grouped aggregation over a join.
func BenchmarkExecGroupBy(b *testing.B) {
	benchExec(b, "SELECT T2.name, count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid GROUP BY T2.name ORDER BY count(*) DESC", 50, 400)
}
