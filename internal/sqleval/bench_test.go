package sqleval

import (
	"fmt"
	"testing"

	"cyclesql/internal/schema"
	"cyclesql/internal/sqlparse"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// benchDB builds a flight-schema database scaled to nAircraft × nFlights so
// join benchmarks exercise non-trivial cardinalities.
func benchDB(b *testing.B, nAircraft, nFlights int) *storage.Database {
	b.Helper()
	s := &schema.Schema{
		Name: "flight_bench",
		Tables: []*schema.Table{
			{Name: "Aircraft", Columns: []schema.Column{
				{Name: "aid", Type: sqltypes.KindInt, PrimaryKey: true},
				{Name: "name", Type: sqltypes.KindText},
				{Name: "distance", Type: sqltypes.KindInt},
			}},
			{Name: "Flight", Columns: []schema.Column{
				{Name: "flno", Type: sqltypes.KindInt, PrimaryKey: true},
				{Name: "aid", Type: sqltypes.KindInt},
				{Name: "origin", Type: sqltypes.KindText},
				{Name: "destination", Type: sqltypes.KindText},
			}},
		},
		ForeignKeys: []schema.ForeignKey{{Table: "Flight", Column: "aid", RefTable: "Aircraft", RefColumn: "aid"}},
	}
	if err := s.Validate(); err != nil {
		b.Fatal(err)
	}
	db := storage.NewDatabase(s)
	cities := []string{"Los Angeles", "Tokyo", "Chicago", "Sydney", "Honolulu", "Boston", "Dallas", "New York"}
	for i := 0; i < nAircraft; i++ {
		db.MustInsert("Aircraft",
			sqltypes.NewInt(int64(i+1)),
			sqltypes.NewText(fmt.Sprintf("Aircraft-%d", i+1)),
			sqltypes.NewInt(int64(500+i*137%9000)))
	}
	for i := 0; i < nFlights; i++ {
		db.MustInsert("Flight",
			sqltypes.NewInt(int64(i+1)),
			sqltypes.NewInt(int64(i%nAircraft+1)),
			sqltypes.NewText(cities[i%len(cities)]),
			sqltypes.NewText(cities[(i+3)%len(cities)]))
	}
	return db
}

func benchExec(b *testing.B, sql string, nAircraft, nFlights int) {
	b.Helper()
	db := benchDB(b, nAircraft, nFlights)
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		b.Fatal(err)
	}
	ex := New(db)
	if _, err := ex.Exec(stmt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Exec(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecWhere measures a filtered single-table scan.
func BenchmarkExecWhere(b *testing.B) {
	benchExec(b, "SELECT name FROM aircraft WHERE distance > 3000", 400, 0)
}

// BenchmarkExecJoin measures an equi-join with a residual filter.
func BenchmarkExecJoin(b *testing.B) {
	benchExec(b, "SELECT T1.flno, T2.name FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid WHERE T2.distance > 2000", 50, 400)
}

// BenchmarkExecLeftJoin measures LEFT JOIN null extension bookkeeping.
func BenchmarkExecLeftJoin(b *testing.B) {
	benchExec(b, "SELECT T2.name, T1.flno FROM aircraft AS T2 LEFT JOIN flight AS T1 ON T1.aid = T2.aid", 50, 400)
}

// BenchmarkExecGroupBy measures grouped aggregation over a join.
func BenchmarkExecGroupBy(b *testing.B) {
	benchExec(b, "SELECT T2.name, count(*) FROM flight AS T1 JOIN aircraft AS T2 ON T1.aid = T2.aid GROUP BY T2.name ORDER BY count(*) DESC", 50, 400)
}
