package sqleval

import (
	"slices"
	"strings"

	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/stats"
)

// Cost-based access-path selection. The syntactic lowering claims probes
// first-come (the first eligible WHERE conjunct becomes the scan's probe)
// and refuses to prefilter a reused join build side outright; this file
// replaces both choices with estimates derived from internal/stats: each
// scan probes its most selective candidate, a probe whose estimated span
// covers most of the table is skipped, a reused build side is prefiltered
// when fewer candidate pairs outweigh the per-execution hash build, and a
// narrow class of aggregate-only join cores is reordered by estimated
// frame growth. Every choice is among result-identical lowerings — an
// unclaimed conjunct simply stays a filter, a prefiltered build side
// routes through the generic hash join, a reorder is restricted to
// order-insensitive outputs — so a misestimate costs time, never
// correctness. TestPlanParity pins exactly that.

const (
	// maxProbeFraction is the estimated selectivity above which a probe
	// is skipped: materializing most of the table off an index costs more
	// than scanning it with the conjunct as a filter.
	maxProbeFraction = 0.75
	// buildPenalty weighs materializing and hashing one prefiltered
	// build-side row (per execution) against visiting one candidate pair.
	buildPenalty = 4
)

// probeCand is one WHERE conjunct (or merged pair of one-sided range
// conjuncts) that could lower into a probe on one scan.
type probeCand struct {
	cis            []int // conjunct indexes the candidate claims
	col            int   // column within the scan's own row
	point          bool
	val            sqltypes.Value // point literal
	key            []byte         // point probe key
	lo, hi         *sqltypes.Value
	loIncl, hiIncl bool
}

// costProbes is the cost-mode replacement for the probeConjunct and
// rangeConjunct passes: it gathers every probe candidate, then walks the
// scans in frame order choosing at most one probe per scan by estimated
// selectivity, carrying a progressive estimate of the accumulated frame
// so the keyed-build-side decision at each join sees the estimated probe
// count it will face. Chosen candidates mark their conjuncts claimed;
// everything else flows to the pushdown/filter pass unchanged.
func (c *compiler) costProbes(cc *compiledCore, sc *scope, conjs []sqlast.Expr, claimed []bool, allInner bool) {
	cands := make([][]probeCand, len(cc.scans))
	for i, conj := range conjs {
		if claimed[i] {
			continue
		}
		si, cand, ok := c.probeCandidate(cc, sc, conj, i)
		if !ok {
			continue
		}
		if !cand.point && mergeRange(cands[si], &cand) {
			continue
		}
		cands[si] = append(cands[si], cand)
	}

	runEst := -1.0
	for si, ts := range cc.scans {
		ts.est = -1
		if ts.rel != nil {
			ts.est = float64(len(ts.rel.Rows))
		}
		if chosen, est := c.chooseProbe(cc, ts, si, cands[si], allInner, runEst); chosen != nil {
			ts.est = est
			if chosen.point {
				ts.probe = &scanProbe{col: chosen.col, key: chosen.key, val: chosen.val}
			} else {
				ts.rprobe = &rangeProbe{col: chosen.col, lo: chosen.lo, hi: chosen.hi,
					loIncl: chosen.loIncl, hiIncl: chosen.hiIncl}
			}
			for _, ci := range chosen.cis {
				claimed[ci] = true
			}
		}
		if si == 0 {
			runEst = ts.est
			continue
		}
		jp := cc.joins[si-1]
		jp.est, jp.estPairs = c.joinEstimate(ts, jp, runEst)
		runEst = jp.est
	}
	cc.est = runEst
}

// probeCandidate parses one conjunct into a probe candidate and resolves
// the scan it targets, accepting exactly the shapes the syntactic
// lowering accepts: col = literal (either order), col OP literal for the
// ordering operators (literal-first flips), and col BETWEEN lo AND hi.
func (c *compiler) probeCandidate(cc *compiledCore, sc *scope, conj sqlast.Expr, ci int) (int, probeCand, bool) {
	var cr *sqlast.ColumnRef
	cand := probeCand{cis: []int{ci}}
	switch x := conj.(type) {
	case *sqlast.Binary:
		if x.Op == "=" {
			ref, lit := probeOperands(x)
			if ref == nil || lit.Value.IsNull() {
				return 0, cand, false
			}
			key, ok := lit.Value.AppendCompareKey(nil)
			if !ok {
				return 0, cand, false
			}
			cr = ref
			cand.point, cand.val, cand.key = true, lit.Value, key
			break
		}
		ref, lit, op := rangeOperands(x)
		if ref == nil || lit.Value.IsNull() {
			return 0, cand, false
		}
		cr = ref
		v := lit.Value
		switch op {
		case "<":
			cand.hi = &v
		case "<=":
			cand.hi, cand.hiIncl = &v, true
		case ">":
			cand.lo = &v
		case ">=":
			cand.lo, cand.loIncl = &v, true
		}
	case *sqlast.BetweenExpr:
		if x.Not {
			return 0, cand, false
		}
		ref, ok := x.X.(*sqlast.ColumnRef)
		if !ok {
			return 0, cand, false
		}
		loLit, loOk := x.Lo.(*sqlast.Literal)
		hiLit, hiOk := x.Hi.(*sqlast.Literal)
		if !loOk || !hiOk || loLit.Value.IsNull() || hiLit.Value.IsNull() {
			return 0, cand, false
		}
		cr = ref
		lv, hv := loLit.Value, hiLit.Value
		cand.lo, cand.loIncl, cand.hi, cand.hiIncl = &lv, true, &hv, true
	default:
		return 0, cand, false
	}
	if cr.Column == "*" {
		return 0, cand, false
	}
	depth, idx, found := sc.resolve(cr.Table, cr.Column)
	if !found || depth != 0 {
		return 0, cand, false
	}
	si := 0
	for i := 1; i < len(cc.scans); i++ {
		if idx >= cc.scans[i].offset {
			si = i
		}
	}
	if cc.scans[si].table == "" {
		return 0, cand, false
	}
	cand.col = idx - cc.scans[si].offset
	return si, cand, true
}

// mergeRange folds a range candidate into an earlier range candidate on
// the same column when every bound it carries lands in a free slot (two
// one-sided conjuncts become one two-bounded span, as in rangeConjunct).
// Candidates that cannot merge stay separate: at most one becomes the
// scan's probe, and the others remain ordinary filters.
func mergeRange(cands []probeCand, cand *probeCand) bool {
	for i := range cands {
		prev := &cands[i]
		if prev.point || prev.col != cand.col {
			continue
		}
		if (cand.lo != nil && prev.lo != nil) || (cand.hi != nil && prev.hi != nil) {
			continue
		}
		if cand.lo != nil {
			prev.lo, prev.loIncl = cand.lo, cand.loIncl
		}
		if cand.hi != nil {
			prev.hi, prev.hiIncl = cand.hi, cand.hiIncl
		}
		prev.cis = append(prev.cis, cand.cis...)
		return true
	}
	return false
}

// chooseProbe picks the most selective eligible candidate for one scan,
// or none. Eligibility mirrors the syntactic rules (base tables only,
// non-base scans only under all-inner joins), with two cost-based
// refinements: a candidate whose estimate exceeds maxProbeFraction of the
// table stays a filter, and a candidate on a reused index build side is
// taken only when prefiltering wins the pairs-versus-build tradeoff.
// Ties break deterministically: point probes beat ranges, then earlier
// conjuncts win, so plans are stable for golden snapshots.
func (c *compiler) chooseProbe(cc *compiledCore, ts *tableScan, si int, cands []probeCand, allInner bool, frameEst float64) (*probeCand, float64) {
	if ts.table == "" || len(cands) == 0 {
		return nil, 0
	}
	if si > 0 && !allInner {
		return nil, 0
	}
	rows := float64(len(ts.rel.Rows))
	var best *probeCand
	bestEst := 0.0
	for i := range cands {
		cand := &cands[i]
		st, ok := c.ex.db.ColStats(ts.table, cand.col)
		if !ok {
			continue
		}
		est := st.RangeRows(cand.lo, cand.hi, cand.loIncl, cand.hiIncl)
		if cand.point {
			est = st.EqRows()
		}
		if est > maxProbeFraction*rows {
			continue
		}
		if best == nil || est < bestEst || (est == bestEst && cand.point && !best.point) {
			best, bestEst = cand, est
		}
	}
	if best == nil {
		return nil, 0
	}
	if si > 0 && len(cc.joins[si-1].eqNew) > 0 &&
		!c.prefilterWins(ts, cc.joins[si-1], frameEst, bestEst) {
		return nil, 0
	}
	return best, bestEst
}

// prefilterWins decides whether a probe on a keyed join build side pays:
// probing shrinks the build side to the filtered rows but forces the join
// to rebuild a hash table over them on every execution, while leaving the
// conjunct a residual keeps the prebuilt full-table index. Prefiltering
// wins when the per-execution build cost plus the filtered pair count
// undercuts probing the full index.
func (c *compiler) prefilterWins(ts *tableScan, jp *joinPlan, frameEst, filtered float64) bool {
	if frameEst < 0 {
		return false // unknown outer cardinality: keep the reused build side
	}
	n := float64(len(ts.rel.Rows))
	d := c.keyDistinct(ts.table, jp.eqNew)
	if d <= 0 || n == 0 {
		return false // no matchable keys: neither path does pair work
	}
	pairsFull := frameEst * n / d
	pairsFiltered := pairsFull * filtered / n
	return buildPenalty*filtered+pairsFiltered < pairsFull
}

// keyDistinct returns the exact number of distinct key tuples on a base
// table's join-key columns, read off the same (composite) index a reused
// build side would probe — so the estimate and the execution share one
// structure.
func (c *compiler) keyDistinct(table string, cols []int) float64 {
	if len(cols) == 1 {
		if ix := c.ex.db.Index(table, cols[0]); ix != nil {
			return float64(ix.Distinct())
		}
		return 0
	}
	if ix := c.ex.db.Composite(table, cols); ix != nil {
		return float64(ix.Distinct())
	}
	return 0
}

// joinEstimate estimates one join's candidate pairs and output rows given
// the estimated accumulated frame. Keyed joins divide by the build side's
// exact key-distinct count (uniform key frequencies); keyless joins visit
// the cross product; residual conjuncts keep the default one-sided
// selectivity each; LEFT JOIN emits at least one row per frame row.
func (c *compiler) joinEstimate(ts *tableScan, jp *joinPlan, frameEst float64) (est, pairs float64) {
	if frameEst < 0 || ts.est < 0 {
		return -1, -1
	}
	if len(jp.eqNew) > 0 {
		d := c.keyDistinct(ts.table, jp.eqNew)
		switch {
		case d <= 0:
			pairs = 0
		case ts.probe == nil && ts.rprobe == nil:
			// Reused build side: every frame row probes the full index.
			pairs = frameEst * float64(len(ts.rel.Rows)) / d
		default:
			// Prefiltered build side: only filtered rows can pair.
			pairs = frameEst * ts.est / d
		}
	} else {
		pairs = frameEst * ts.est
	}
	est = pairs
	for range jp.residual {
		est *= stats.OneSidedFraction
	}
	if jp.left && est < frameEst {
		est = frameEst
	}
	return est, pairs
}

// reorderCore considers replacing the join order of an aggregate-only,
// all-inner top-level core with a cheaper one. The eligibility class is
// deliberately narrow, because reordering changes the row order the rest
// of the pipeline consumes and must be invisible in the output:
//
//   - top-level core over ≥2 base tables, all joins inner, no derived
//     tables, no DISTINCT/GROUP BY/HAVING/ORDER BY/LIMIT/OFFSET;
//   - every projection item is a COUNT aggregate (plain, DISTINCT or
//     star) — COUNT is the one aggregate whose rendered result is a pure
//     function of the consumed row multiset. MIN/MAX are excluded
//     because two values can compare equal under sqltypes.Compare yet
//     render differently (INTEGER 2 vs REAL 2.0), so which survives
//     depends on visit order; SUM/AVG float accumulation is
//     order-sensitive outright;
//   - no subqueries anywhere, every column reference table-qualified,
//     and pairwise-distinct binding names — so folding ON conjuncts into
//     WHERE and permuting the FROM list provably re-resolves every
//     reference to the same column.
//
// When eligible, tables are ordered greedily (smallest estimated scan
// first, then the connected table minimizing estimated pairs); if that
// order's estimated total frame growth beats the original's, the
// permuted core — ON conditions folded into WHERE, where the equi-key
// pass re-extracts them — is lowered in its place. The estimates steer
// only the order; every order computes identical COUNTs.
func (c *compiler) reorderCore(cc *compiledCore, core *sqlast.SelectCore) *compiledCore {
	if core.From == nil || len(core.From.Joins) == 0 || core.From.Base.Sub != nil {
		return nil
	}
	for _, j := range core.From.Joins {
		if j.Type != sqlast.InnerJoin || j.Table.Sub != nil {
			return nil
		}
	}
	if core.Distinct || len(core.GroupBy) > 0 || core.Having != nil ||
		len(core.OrderBy) > 0 || core.Limit != nil || core.Offset != nil {
		return nil
	}
	for _, it := range core.Items {
		if it.Star || it.Expr == nil {
			return nil
		}
		if fc, ok := it.Expr.(*sqlast.FuncCall); !ok || fc.Name != "COUNT" {
			return nil
		}
	}
	exprs := make([]sqlast.Expr, 0, len(core.Items)+len(core.From.Joins)+1)
	for _, it := range core.Items {
		exprs = append(exprs, it.Expr)
	}
	exprs = append(exprs, core.Where)
	for _, j := range core.From.Joins {
		exprs = append(exprs, j.On)
	}
	for _, e := range exprs {
		if !reorderSafeExpr(e) {
			return nil
		}
	}
	refs := []sqlast.TableRef{core.From.Base}
	for _, j := range core.From.Joins {
		refs = append(refs, j.Table)
	}
	names := make(map[string]bool, len(refs))
	for _, r := range refs {
		name := strings.ToLower(r.Effective())
		if names[name] {
			return nil
		}
		names[name] = true
	}
	n := len(cc.scans)
	for _, ts := range cc.scans {
		if ts.est < 0 {
			return nil
		}
	}

	// The join graph, from the compiled plan's equi keys (ON- and
	// WHERE-derived alike): each edge names two scans and the key column
	// within each scan's own row.
	type edge struct{ a, ca, b, cb int }
	var edges []edge
	scanOf := func(off int) (int, int) {
		si := 0
		for i := 1; i < n; i++ {
			if off >= cc.scans[i].offset {
				si = i
			}
		}
		return si, off - cc.scans[si].offset
	}
	for ji, jp := range cc.joins {
		for k := range jp.eqNew {
			ai, ac := scanOf(jp.eqAcc[k])
			edges = append(edges, edge{a: ai, ca: ac, b: ji + 1, cb: jp.eqNew[k]})
		}
	}

	// stepCost estimates the pairs of joining scan si into a frame made of
	// the scans marked used: keyed by the distinct count over si's key
	// columns into the frame, cross product when unconnected.
	stepCost := func(used []bool, frame float64, si int) float64 {
		var cols []int
		for _, e := range edges {
			switch {
			case e.b == si && used[e.a]:
				cols = append(cols, e.cb)
			case e.a == si && used[e.b]:
				cols = append(cols, e.ca)
			}
		}
		cols = dedupCols(cols)
		if len(cols) == 0 {
			return frame * cc.scans[si].est
		}
		d := c.keyDistinct(cc.scans[si].table, cols)
		if d <= 0 {
			return 0
		}
		return frame * cc.scans[si].est / d
	}
	costOf := func(ord []int) float64 {
		used := make([]bool, n)
		used[ord[0]] = true
		frame := cc.scans[ord[0]].est
		total := 0.0
		for _, si := range ord[1:] {
			frame = stepCost(used, frame, si)
			used[si] = true
			total += frame
		}
		return total
	}

	// Greedy order: smallest estimated scan first, then always a
	// frame-connected scan (avoiding cross products) minimizing the step's
	// estimated pairs. Ties break toward the original position, keeping
	// plans deterministic.
	used := make([]bool, n)
	start := 0
	for i := 1; i < n; i++ {
		if cc.scans[i].est < cc.scans[start].est {
			start = i
		}
	}
	order := []int{start}
	used[start] = true
	frame := cc.scans[start].est
	for len(order) < n {
		bestI, bestCost, bestConn := -1, 0.0, false
		for si := 0; si < n; si++ {
			if used[si] {
				continue
			}
			conn := false
			for _, e := range edges {
				if (e.a == si && used[e.b]) || (e.b == si && used[e.a]) {
					conn = true
					break
				}
			}
			cost := stepCost(used, frame, si)
			if bestI < 0 || (conn && !bestConn) || (conn == bestConn && cost < bestCost) {
				bestI, bestCost, bestConn = si, cost, conn
			}
		}
		used[bestI] = true
		order = append(order, bestI)
		frame = bestCost
	}
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	if slices.Equal(order, identity) || costOf(order) >= costOf(identity) {
		return nil
	}

	core2 := &sqlast.SelectCore{
		Items: core.Items,
		From:  &sqlast.FromClause{Base: refs[order[0]]},
		Where: core.Where,
	}
	for _, si := range order[1:] {
		core2.From.Joins = append(core2.From.Joins, sqlast.Join{Type: sqlast.InnerJoin, Table: refs[si]})
	}
	for _, j := range core.From.Joins {
		core2.Where = sqlast.And(core2.Where, j.On)
	}
	re, err := c.lowerCore(core2, nil)
	if err != nil {
		// The permuted spelling failed to lower (it should not, given the
		// eligibility checks); the original plan is always valid.
		return nil
	}
	return re
}

// reorderSafeExpr reports whether an expression survives join reordering
// untouched: no subqueries (their correlation analysis is scope-order
// dependent) and every column reference table-qualified ("*" only as the
// COUNT(*) argument, which is table-agnostic).
func reorderSafeExpr(e sqlast.Expr) bool {
	safe := true
	sqlast.WalkExpr(e, func(x sqlast.Expr) bool {
		switch n := x.(type) {
		case *sqlast.ColumnRef:
			if n.Column != "*" && n.Table == "" {
				safe = false
			}
		case *sqlast.InExpr:
			if n.Sub != nil {
				safe = false
			}
		case *sqlast.ExistsExpr, *sqlast.SubqueryExpr:
			safe = false
		}
		return safe
	})
	return safe
}

// dedupCols returns cols with duplicates removed, order preserved.
func dedupCols(cols []int) []int {
	out := make([]int, 0, len(cols))
	for _, c := range cols {
		if !slices.Contains(out, c) {
			out = append(out, c)
		}
	}
	return out
}
