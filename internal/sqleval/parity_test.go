package sqleval_test

import (
	"testing"

	"cyclesql/internal/datasets"
	"cyclesql/internal/sqleval"
	"cyclesql/internal/sqltypes"
)

// TestSpiderDevJoinParity executes every gold query of a Spider dev slice
// through all three access paths — secondary-index probes and index-backed
// build sides (the default), index-free hash equi-joins with filter
// pushdown, and the nested-loop fallback — and requires identical
// relations (same columns, rows, and row order), the acceptance bar for
// the compiled engine.
func TestSpiderDevJoinParity(t *testing.T) {
	bench := datasets.Spider()
	dev := bench.Dev
	if len(dev) > 200 {
		dev = dev[:200]
	}
	checked := 0
	for _, ex := range dev {
		db := bench.DB(ex.DBName)
		indexed, err := sqleval.New(db).Exec(ex.Gold)
		if err != nil {
			t.Fatalf("indexed path %q: %v", ex.GoldSQL, err)
		}
		scan := sqleval.New(db)
		scan.NoIndexes = true
		hash, err := scan.Exec(ex.Gold)
		if err != nil {
			t.Fatalf("hash path %q: %v", ex.GoldSQL, err)
		}
		nl := sqleval.New(db)
		nl.NestedLoopOnly = true
		loop, err := nl.Exec(ex.Gold)
		if err != nil {
			t.Fatalf("nested-loop path %q: %v", ex.GoldSQL, err)
		}
		if !identical(indexed, hash) {
			t.Fatalf("index and scan paths diverge for %q:\nindexed:\n%s\nscan:\n%s", ex.GoldSQL, indexed, hash)
		}
		if !identical(hash, loop) {
			t.Fatalf("join paths diverge for %q:\nhash:\n%s\nnested loop:\n%s", ex.GoldSQL, hash, loop)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no dev examples checked")
	}
	t.Logf("checked %d dev queries through 3 access paths", checked)
}

func identical(a, b *sqltypes.Relation) bool {
	if a.NumCols() != b.NumCols() || a.NumRows() != b.NumRows() {
		return false
	}
	for i, c := range a.Columns {
		if b.Columns[i] != c {
			return false
		}
	}
	for ri, row := range a.Rows {
		for ci, v := range row {
			if sqltypes.Compare(v, b.Rows[ri][ci]) != 0 {
				return false
			}
		}
	}
	return true
}
