package sqleval

import (
	"context"

	"cyclesql/internal/sqltypes"
)

// runStream executes a core whose ORDER BY was lowered to a sorted-index
// walk (compiledCore.stream, see lowerStream). Rows are visited in the
// index's (value, scan-position) order — ascending directly, descending by
// emitting equal-value runs back to front while keeping each run in scan
// order, which is exactly how the stable sort in finalize orders ties —
// filtered, projected, and, under LIMIT, cut off as soon as OFFSET+LIMIT
// output rows exist. With a same-column range probe the walk covers only
// the probed span; NULL rows sit outside every span, matching the range
// conjunct's NULL rejection, while an unprobed walk includes them (NULL
// sorts first ascending, last descending, as Compare orders it).
func (ex *Executor) runStream(ctx context.Context, cc *compiledCore, outer *rowCtx, depth int) (*sqltypes.Relation, error) {
	sp := cc.stream
	ts := cc.scans[0]
	ix := ex.db.Sorted(ts.table, sp.col)
	var span []int32
	if ts.rprobe != nil {
		rp := ts.rprobe
		span = ix.Range(rp.lo, rp.hi, rp.loIncl, rp.hiIncl)
	} else {
		span = ix.Positions()
	}

	core := cc.core
	target := -1 // output rows (offset included) after which the walk stops
	if core.Limit != nil {
		target = int(*core.Limit)
		if core.Offset != nil {
			target += int(*core.Offset)
		}
		if target < 0 {
			target = 0
		}
	}

	out := sqltypes.NewRelation(cc.labels()...)
	cancel := cancelCheck{ctx: ctx}
	rc := &rowCtx{parent: outer, depth: depth, qctx: ctx}
	var visited int64
	// visit filters and projects one row; it reports done when the output
	// reached the LIMIT target. The pre-check (not just the post-append
	// one) matters for LIMIT 0, which must emit nothing at all.
	visit := func(ri int32) (bool, error) {
		if target >= 0 && len(out.Rows) >= target {
			return true, nil
		}
		visited++
		if err := cancel.poll(); err != nil {
			return false, err
		}
		rc.row = ts.rel.Rows[ri]
		if ok, err := truthyAll(cc.baseFilters, rc); err != nil || !ok {
			return false, err
		}
		if ok, err := truthyAll(cc.filters, rc); err != nil || !ok {
			return false, err
		}
		proj := make(sqltypes.Row, len(cc.items))
		for i, it := range cc.items {
			v, err := it.fn(rc)
			if err != nil {
				return false, err
			}
			proj[i] = v
		}
		out.Append(proj)
		return target >= 0 && len(out.Rows) >= target, nil
	}

	if !sp.desc {
		for _, ri := range span {
			done, err := visit(ri)
			if err != nil {
				return nil, err
			}
			if done {
				break
			}
		}
	} else if err := ex.walkDesc(ts, sp.col, span, visit); err != nil {
		return nil, err
	}

	start := 0
	if core.Offset != nil {
		start = int(*core.Offset)
		if start > len(out.Rows) {
			start = len(out.Rows)
		}
	}
	out.Rows = out.Rows[start:]
	if ex.trace != nil {
		ex.trace.addRows(ts.id, visited)
		ex.trace.addRows(cc.id, int64(len(out.Rows)))
	}
	return out, nil
}

// walkDesc visits a sorted span in descending value order while keeping
// equal-value runs in ascending scan order (what a stable descending sort
// produces).
func (ex *Executor) walkDesc(ts *tableScan, col int, span []int32, visit func(int32) (bool, error)) error {
	val := func(ri int32) sqltypes.Value {
		row := ts.rel.Rows[ri]
		if col >= len(row) {
			return sqltypes.Null()
		}
		return row[col]
	}
	for i := len(span) - 1; i >= 0; {
		j := i
		vi := val(span[i])
		for j > 0 && sqltypes.Compare(val(span[j-1]), vi) == 0 {
			j--
		}
		for k := j; k <= i; k++ {
			done, err := visit(span[k])
			if err != nil {
				return err
			}
			if done {
				return nil
			}
		}
		i = j - 1
	}
	return nil
}
