package sqleval

import (
	"fmt"
	"sort"
	"strings"

	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqltypes"
)

// record pairs a projected output row with its ORDER BY sort keys.
type record struct {
	proj sqltypes.Row
	keys sqltypes.Row
}

// expandItems resolves * and t.* projection items against the frame,
// returning output column labels and the expressions to evaluate (nil
// expression means positional copy from the flattened row).
type projItem struct {
	label string
	expr  sqlast.Expr
}

func (ex *Executor) expandItems(core *sqlast.SelectCore, f *frame) ([]projItem, error) {
	var items []projItem
	for _, it := range core.Items {
		switch {
		case it.Star && it.TableStar == "":
			for _, b := range f.bindings {
				for _, c := range b.cols {
					items = append(items, projItem{label: c, expr: &sqlast.ColumnRef{Table: b.name, Column: c}})
				}
			}
		case it.Star:
			name := strings.ToLower(it.TableStar)
			found := false
			for _, b := range f.bindings {
				if b.name == name {
					for _, c := range b.cols {
						items = append(items, projItem{label: c, expr: &sqlast.ColumnRef{Table: b.name, Column: c}})
					}
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("sqleval: unknown table %q in %s.*", it.TableStar, it.TableStar)
			}
		default:
			label := it.Alias
			if label == "" {
				label = sqlast.ExprSQL(it.Expr)
			}
			items = append(items, projItem{label: label, expr: it.Expr})
		}
	}
	return items, nil
}

// orderKeyExpr resolves an ORDER BY expression: positional references
// (ORDER BY 2) and alias references resolve to the projected item; other
// expressions evaluate in the row environment.
func orderKeyExpr(o sqlast.OrderItem, items []projItem, coreItems []sqlast.SelectItem) (projIdx int, expr sqlast.Expr) {
	if lit, ok := o.Expr.(*sqlast.Literal); ok && lit.Value.Kind() == sqltypes.KindInt {
		idx := int(lit.Value.Int()) - 1
		if idx >= 0 && idx < len(items) {
			return idx, nil
		}
	}
	if cr, ok := o.Expr.(*sqlast.ColumnRef); ok && cr.Table == "" {
		for i, it := range coreItems {
			if it.Alias != "" && strings.EqualFold(it.Alias, cr.Column) {
				return i, nil
			}
		}
	}
	// Expression identical to a projection item reuses its computed value,
	// which also lets grouped ORDER BY count(*) hit the aggregate result.
	oSQL := sqlast.ExprSQL(o.Expr)
	for i, it := range items {
		if it.expr != nil && strings.EqualFold(sqlast.ExprSQL(it.expr), oSQL) {
			return i, nil
		}
	}
	return -1, o.Expr
}

func (ex *Executor) projectPlain(core *sqlast.SelectCore, f *frame, outer *env) (*sqltypes.Relation, error) {
	items, err := ex.expandItems(core, f)
	if err != nil {
		return nil, err
	}
	records := make([]record, 0, len(f.rows))
	for _, row := range f.rows {
		e := f.env(row, outer)
		proj := make(sqltypes.Row, len(items))
		for i, it := range items {
			v, err := ex.eval(it.expr, e, nil)
			if err != nil {
				return nil, err
			}
			proj[i] = v
		}
		keys := make(sqltypes.Row, len(core.OrderBy))
		for i, o := range core.OrderBy {
			idx, kexpr := orderKeyExpr(o, items, core.Items)
			if kexpr == nil {
				keys[i] = proj[idx]
				continue
			}
			v, err := ex.eval(kexpr, e, nil)
			if err != nil {
				return nil, err
			}
			keys[i] = v
		}
		records = append(records, record{proj: proj, keys: keys})
	}
	return finalize(core, items, records)
}

// groupCtx gives aggregate evaluation access to the rows of one group.
type groupCtx struct {
	ex    *Executor
	f     *frame
	rows  []sqltypes.Row
	outer *env
}

func (g *groupCtx) firstEnv() *env {
	if len(g.rows) == 0 {
		// Empty input with aggregates: a single all-NULL pseudo row.
		return g.f.env(make(sqltypes.Row, g.f.width()), g.outer)
	}
	return g.f.env(g.rows[0], g.outer)
}

func (ex *Executor) projectGrouped(core *sqlast.SelectCore, f *frame, outer *env) (*sqltypes.Relation, error) {
	items, err := ex.expandItems(core, f)
	if err != nil {
		return nil, err
	}
	// Partition rows into groups.
	type group struct{ rows []sqltypes.Row }
	var order []string
	groups := map[string]*group{}
	if len(core.GroupBy) == 0 {
		groups[""] = &group{rows: f.rows}
		order = append(order, "")
	} else {
		for _, row := range f.rows {
			e := f.env(row, outer)
			var kb strings.Builder
			for _, gexpr := range core.GroupBy {
				v, err := ex.eval(gexpr, e, nil)
				if err != nil {
					return nil, err
				}
				kb.WriteString(v.Key())
				kb.WriteByte('\x01')
			}
			k := kb.String()
			g, ok := groups[k]
			if !ok {
				g = &group{}
				groups[k] = g
				order = append(order, k)
			}
			g.rows = append(g.rows, row)
		}
	}
	records := make([]record, 0, len(order))
	for _, k := range order {
		g := groups[k]
		gctx := &groupCtx{ex: ex, f: f, rows: g.rows, outer: outer}
		e := gctx.firstEnv()
		if core.Having != nil {
			v, err := ex.eval(core.Having, e, gctx)
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				continue
			}
		}
		proj := make(sqltypes.Row, len(items))
		for i, it := range items {
			v, err := ex.eval(it.expr, e, gctx)
			if err != nil {
				return nil, err
			}
			proj[i] = v
		}
		keys := make(sqltypes.Row, len(core.OrderBy))
		for i, o := range core.OrderBy {
			idx, kexpr := orderKeyExpr(o, items, core.Items)
			if kexpr == nil {
				keys[i] = proj[idx]
				continue
			}
			v, err := ex.eval(kexpr, e, gctx)
			if err != nil {
				return nil, err
			}
			keys[i] = v
		}
		records = append(records, record{proj: proj, keys: keys})
	}
	return finalize(core, items, records)
}

// finalize applies DISTINCT, ORDER BY, LIMIT/OFFSET and materializes the
// output relation.
func finalize(core *sqlast.SelectCore, items []projItem, records []record) (*sqltypes.Relation, error) {
	if core.Distinct {
		seen := map[string]bool{}
		kept := records[:0:0]
		for _, r := range records {
			k := r.proj.Key()
			if !seen[k] {
				seen[k] = true
				kept = append(kept, r)
			}
		}
		records = kept
	}
	if len(core.OrderBy) > 0 {
		sort.SliceStable(records, func(i, j int) bool {
			for k, o := range core.OrderBy {
				c := sqltypes.Compare(records[i].keys[k], records[j].keys[k])
				if c == 0 {
					continue
				}
				if o.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	start, end := 0, len(records)
	if core.Offset != nil {
		start = int(*core.Offset)
		if start > end {
			start = end
		}
	}
	if core.Limit != nil {
		if lim := start + int(*core.Limit); lim < end {
			end = lim
		}
	}
	records = records[start:end]
	cols := make([]string, len(items))
	for i, it := range items {
		cols[i] = it.label
	}
	out := sqltypes.NewRelation(cols...)
	for _, r := range records {
		out.Append(r.proj)
	}
	return out, nil
}
