package sqleval

import (
	"context"
	"sort"

	"cyclesql/internal/sqltypes"
)

// record pairs a projected output row with its ORDER BY sort keys.
type record struct {
	proj sqltypes.Row
	keys sqltypes.Row
}

func (ex *Executor) projectPlain(ctx context.Context, cc *compiledCore, rows []sqltypes.Row, outer *rowCtx, depth int) (*sqltypes.Relation, error) {
	records := make([]record, 0, len(rows))
	cancel := cancelCheck{ctx: ctx}
	rc := &rowCtx{parent: outer, depth: depth, qctx: ctx}
	for _, row := range rows {
		if err := cancel.poll(); err != nil {
			return nil, err
		}
		rc.row = row
		rec, err := projectRecord(cc, rc)
		if err != nil {
			return nil, err
		}
		records = append(records, rec)
	}
	return finalize(cc, records)
}

func (ex *Executor) projectGrouped(ctx context.Context, cc *compiledCore, rows []sqltypes.Row, outer *rowCtx, depth int) (*sqltypes.Relation, error) {
	cancel := cancelCheck{ctx: ctx}
	// Partition rows into groups, keyed by the binary encoding of the
	// GROUP BY values; insertion order is preserved.
	var groups []groupRows
	if len(cc.groupBy) == 0 {
		groups = []groupRows{{rows: rows}}
	} else {
		idx := make(map[string]int)
		rc := &rowCtx{parent: outer, depth: depth, qctx: ctx}
		var buf []byte
		for _, row := range rows {
			if err := cancel.poll(); err != nil {
				return nil, err
			}
			rc.row = row
			buf = buf[:0]
			for _, fn := range cc.groupBy {
				v, err := fn(rc)
				if err != nil {
					return nil, err
				}
				buf = v.AppendKey(buf)
			}
			gi, ok := idx[string(buf)]
			if !ok {
				gi = len(groups)
				idx[string(buf)] = gi
				groups = append(groups, groupRows{})
			}
			groups[gi].rows = append(groups[gi].rows, row)
		}
	}
	records := make([]record, 0, len(groups))
	rc := &rowCtx{parent: outer, depth: depth, qctx: ctx}
	for gi := range groups {
		if err := cancel.poll(); err != nil {
			return nil, err
		}
		g := &groups[gi]
		if len(g.rows) == 0 {
			// Empty input with aggregates: a single all-NULL pseudo row.
			rc.row = make(sqltypes.Row, cc.width)
		} else {
			rc.row = g.rows[0]
		}
		rc.grp = g
		if cc.having != nil {
			v, err := cc.having(rc)
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				continue
			}
		}
		rec, err := projectRecord(cc, rc)
		if err != nil {
			return nil, err
		}
		records = append(records, rec)
	}
	return finalize(cc, records)
}

// projectRecord evaluates the projection items and ORDER BY keys for one
// row (or group) context.
func projectRecord(cc *compiledCore, ctx *rowCtx) (record, error) {
	proj := make(sqltypes.Row, len(cc.items))
	for i, it := range cc.items {
		v, err := it.fn(ctx)
		if err != nil {
			return record{}, err
		}
		proj[i] = v
	}
	var keys sqltypes.Row
	if len(cc.orderKeys) > 0 {
		keys = make(sqltypes.Row, len(cc.orderKeys))
		for i, ok := range cc.orderKeys {
			if ok.projIdx >= 0 {
				keys[i] = proj[ok.projIdx]
				continue
			}
			v, err := ok.fn(ctx)
			if err != nil {
				return record{}, err
			}
			keys[i] = v
		}
	}
	return record{proj: proj, keys: keys}, nil
}

// finalize applies DISTINCT, ORDER BY, LIMIT/OFFSET and materializes the
// output relation.
func finalize(cc *compiledCore, records []record) (*sqltypes.Relation, error) {
	core := cc.core
	if core.Distinct {
		seen := make(map[string]struct{}, len(records))
		kept := records[:0:0]
		var buf []byte
		for _, r := range records {
			buf = r.proj.AppendKey(buf[:0])
			if _, dup := seen[string(buf)]; !dup {
				seen[string(buf)] = struct{}{}
				kept = append(kept, r)
			}
		}
		records = kept
	}
	if len(cc.orderKeys) > 0 {
		sort.SliceStable(records, func(i, j int) bool {
			for k, o := range cc.orderKeys {
				c := sqltypes.Compare(records[i].keys[k], records[j].keys[k])
				if c == 0 {
					continue
				}
				if o.desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	start, end := 0, len(records)
	if core.Offset != nil {
		start = int(*core.Offset)
		if start > end {
			start = end
		}
	}
	if core.Limit != nil {
		if lim := start + int(*core.Limit); lim < end {
			end = lim
		}
	}
	records = records[start:end]
	out := sqltypes.NewRelation(cc.labels()...)
	out.Rows = make([]sqltypes.Row, len(records))
	for i, r := range records {
		out.Rows[i] = r.proj
	}
	return out, nil
}
