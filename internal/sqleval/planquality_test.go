package sqleval_test

import (
	"context"
	"strings"
	"testing"

	"cyclesql/internal/plan"
	"cyclesql/internal/schema"
	"cyclesql/internal/sqleval"
	"cyclesql/internal/sqlnorm"
	"cyclesql/internal/sqlparse"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// skewDB builds the plan-quality workload: data whose uniform-looking
// schema hides heavy skew, so the syntactic planner's first-come choices
// are measurably bad and the cost-based planner's statistics-driven ones
// measurably good.
//
//   - Ticket (2000 rows): status has 2 distinct values (1000 rows each),
//     tenant has 800 distinct values (~2.5 rows each). A WHERE naming
//     status first tempts the syntactic planner into a 1000-row probe.
//   - Customer (500 rows) / Orders (2000 rows, 4 per customer): score is
//     uniform 0..499, so a range on score is a precise prefilter the
//     syntactic planner refuses on keyed build sides.
func skewDB(t testing.TB) *storage.Database {
	t.Helper()
	s := &schema.Schema{
		Name: "skew",
		Tables: []*schema.Table{
			{Name: "Ticket", Columns: []schema.Column{
				{Name: "id", Type: sqltypes.KindInt, PrimaryKey: true},
				{Name: "status", Type: sqltypes.KindText},
				{Name: "tenant", Type: sqltypes.KindInt},
			}},
			{Name: "Customer", Columns: []schema.Column{
				{Name: "cid", Type: sqltypes.KindInt, PrimaryKey: true},
				{Name: "score", Type: sqltypes.KindInt},
			}},
			{Name: "Orders", Columns: []schema.Column{
				{Name: "oid", Type: sqltypes.KindInt, PrimaryKey: true},
				{Name: "cid", Type: sqltypes.KindInt},
			}},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase(s)
	statuses := []string{"open", "closed"}
	for i := int64(0); i < 2000; i++ {
		db.MustInsert("Ticket", sqltypes.NewInt(i),
			sqltypes.NewText(statuses[i%2]), sqltypes.NewInt(i%800))
	}
	for i := int64(0); i < 500; i++ {
		db.MustInsert("Customer", sqltypes.NewInt(i), sqltypes.NewInt(i))
	}
	for i := int64(0); i < 2000; i++ {
		db.MustInsert("Orders", sqltypes.NewInt(i), sqltypes.NewInt(i%500))
	}
	return db
}

// planFor compiles-and-runs sql on a fresh executor in the given mode and
// returns its plan tree plus its result relation.
func planFor(t *testing.T, db *storage.Database, sql string, syntactic bool) (*plan.Tree, *sqltypes.Relation) {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	ex := sqleval.New(db)
	ex.Syntactic = syntactic
	tree, err := ex.PlanTree(context.Background(), stmt)
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	rel, err := ex.Exec(stmt)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return tree, rel
}

// nodesOf flattens a plan tree pre-order.
func nodesOf(n *plan.Node) []*plan.Node {
	out := []*plan.Node{n}
	for _, c := range n.Children {
		out = append(out, nodesOf(c)...)
	}
	return out
}

func findNode(tree *plan.Tree, kind string) *plan.Node {
	for _, n := range nodesOf(tree.Root) {
		if n.Kind == kind {
			return n
		}
	}
	return nil
}

// TestPlanQualityGate is the CI gate proving cost-based planning earns its
// keep on skewed data, with hard multipliers the syntactic planner cannot
// meet (measured numbers are recorded in docs/benchmarks.md and
// BENCH_PR10.json):
//
//  1. Probe choice: with WHERE status = .. AND tenant = .., the syntactic
//     planner probes the first-named conjunct (status, 1000 rows); the
//     cost planner must probe tenant and touch >=5x fewer rows.
//  2. Build side: with a selective range on the keyed build side, the
//     syntactic planner keeps index reuse and visits one candidate pair
//     per left row; the cost planner must prefilter the build side and
//     visit >=5x fewer pairs.
//  3. Probe skip: a range covering most of the table must stay a plain
//     scan under the cost planner instead of a worse-than-scan probe.
//
// Every scenario also re-checks result parity, so a "better" plan that
// changes answers can never pass the gate.
func TestPlanQualityGate(t *testing.T) {
	db := skewDB(t)

	t.Run("probe-choice", func(t *testing.T) {
		sql := "SELECT id FROM Ticket WHERE status = 'open' AND tenant = 17 ORDER BY id"
		synTree, synRel := planFor(t, db, sql, true)
		costTree, costRel := planFor(t, db, sql, false)
		if !identical(synRel, costRel) {
			t.Fatalf("results diverge:\n%s\nvs\n%s", synRel, costRel)
		}
		synProbe, costProbe := findNode(synTree, "probe"), findNode(costTree, "probe")
		if synProbe == nil || costProbe == nil {
			t.Fatalf("both planners must probe:\nsyntactic:\n%scost:\n%s",
				synTree.Render(), costTree.Render())
		}
		if !strings.Contains(synProbe.Label, "status") {
			t.Fatalf("syntactic planner no longer probes status — scenario broken:\n%s", synTree.Render())
		}
		if !strings.Contains(costProbe.Label, "tenant") {
			t.Fatalf("cost planner must pick the selective tenant probe:\n%s", costTree.Render())
		}
		if costProbe.ActRows*5 > synProbe.ActRows {
			t.Fatalf("probe flip won only %d vs %d rows, want >=5x fewer",
				costProbe.ActRows, synProbe.ActRows)
		}
		t.Logf("probed rows: syntactic=%d cost=%d (%.0fx)",
			synProbe.ActRows, costProbe.ActRows,
			float64(synProbe.ActRows)/float64(costProbe.ActRows))
	})

	t.Run("build-side", func(t *testing.T) {
		sql := "SELECT O.oid FROM Orders AS O JOIN Customer AS C ON O.cid = C.cid WHERE C.score < 10 ORDER BY O.oid"
		synTree, synRel := planFor(t, db, sql, true)
		costTree, costRel := planFor(t, db, sql, false)
		if !identical(synRel, costRel) {
			t.Fatalf("results diverge:\n%s\nvs\n%s", synRel, costRel)
		}
		synJoin, costJoin := findNode(synTree, "join"), findNode(costTree, "join")
		if synJoin == nil || costJoin == nil {
			t.Fatal("both plans must join")
		}
		if synJoin.Detail != "index build" {
			t.Fatalf("syntactic planner no longer reuses the index — scenario broken:\n%s", synTree.Render())
		}
		if costJoin.Detail != "hash build" || findNode(costTree, "range") == nil {
			t.Fatalf("cost planner must prefilter the build side:\n%s", costTree.Render())
		}
		if costJoin.ActPairs*5 > synJoin.ActPairs {
			t.Fatalf("build-side flip won only %d vs %d pairs, want >=5x fewer",
				costJoin.ActPairs, synJoin.ActPairs)
		}
		t.Logf("candidate pairs: syntactic=%d cost=%d (%.0fx)",
			synJoin.ActPairs, costJoin.ActPairs,
			float64(synJoin.ActPairs)/float64(costJoin.ActPairs))
	})

	t.Run("probe-skip", func(t *testing.T) {
		sql := "SELECT count(*) FROM Customer WHERE score >= 5"
		synTree, synRel := planFor(t, db, sql, true)
		costTree, costRel := planFor(t, db, sql, false)
		if !identical(synRel, costRel) {
			t.Fatalf("results diverge:\n%s\nvs\n%s", synRel, costRel)
		}
		if findNode(synTree, "range") == nil {
			t.Fatalf("syntactic planner no longer range-probes — scenario broken:\n%s", synTree.Render())
		}
		if findNode(costTree, "range") != nil || findNode(costTree, "scan") == nil {
			t.Fatalf("cost planner must skip a probe covering 99%% of the table:\n%s", costTree.Render())
		}
	})
}

// TestPlanCacheLiteralSelectivity pins how cost-based plans interact with
// the plan cache. sqlnorm.CacheKey canonicalizes a statement WITH its
// literals, so two spellings of one query share a key — and a plan — only
// when their literals are identical, which makes sharing always sound:
// there is no normalized-away literal whose selectivity could differ
// between key-sharers. The flip side, pinned here, is that the same query
// shape with different literals gets a different key and is costed
// independently — a selective range keeps its probe while a near-total
// range of the same shape compiles to a scan, through one executor's
// live cache.
func TestPlanCacheLiteralSelectivity(t *testing.T) {
	db := skewDB(t)
	narrow := "SELECT count(*) FROM Customer WHERE score < 10"
	wide := "SELECT count(*) FROM Customer WHERE score < 490"

	sNarrow, err := sqlparse.Parse(narrow)
	if err != nil {
		t.Fatal(err)
	}
	sWide, err := sqlparse.Parse(wide)
	if err != nil {
		t.Fatal(err)
	}
	if sqlnorm.CacheKey(sNarrow) == sqlnorm.CacheKey(sWide) {
		t.Fatal("different literals must never share a cache key")
	}

	ex := sqleval.New(db)
	// Warm the cache with the narrow plan, then plan the wide query through
	// the same executor: it must not inherit the narrow query's probe.
	if _, err := ex.Exec(sNarrow); err != nil {
		t.Fatal(err)
	}
	narrowTree, err := ex.PlanTree(context.Background(), sNarrow)
	if err != nil {
		t.Fatal(err)
	}
	wideTree, err := ex.PlanTree(context.Background(), sWide)
	if err != nil {
		t.Fatal(err)
	}
	if findNode(narrowTree, "range") == nil {
		t.Fatalf("selective range must probe:\n%s", narrowTree.Render())
	}
	if findNode(wideTree, "range") != nil {
		t.Fatalf("near-total range must not reuse the selective plan's probe:\n%s", wideTree.Render())
	}

	// Same literals as distinct ASTs share one key — and must agree on
	// results through the shared cached plan.
	sNarrow2, err := sqlparse.Parse(narrow)
	if err != nil {
		t.Fatal(err)
	}
	if sqlnorm.CacheKey(sNarrow) != sqlnorm.CacheKey(sNarrow2) {
		t.Fatal("identical SQL must share a cache key across ASTs")
	}
	r1, err := ex.Exec(sNarrow)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ex.Exec(sNarrow2)
	if err != nil {
		t.Fatal(err)
	}
	if !identical(r1, r2) {
		t.Fatalf("cache-sharing ASTs diverge:\n%s\nvs\n%s", r1, r2)
	}
}
