package sqleval

import (
	"testing"

	"cyclesql/internal/schema"
	"cyclesql/internal/sqlparse"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// relEqual reports exact relation identity: same columns, same rows, same
// order. Stricter than BagEqual on purpose — the hash and nested-loop join
// paths must emit identical relations, not merely equal bags.
func relEqual(a, b *sqltypes.Relation) bool {
	if a.NumCols() != b.NumCols() || a.NumRows() != b.NumRows() {
		return false
	}
	for i, c := range a.Columns {
		if b.Columns[i] != c {
			return false
		}
	}
	for ri, row := range a.Rows {
		for ci, v := range row {
			if sqltypes.Compare(v, b.Rows[ri][ci]) != 0 {
				return false
			}
		}
	}
	return true
}

// runBoth executes sql through the indexed path, the index-free hash-join
// path, and the nested-loop fallback, and requires identical relations
// from all three.
func runBoth(t *testing.T, db *storage.Database, sql string) *sqltypes.Relation {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	indexed, err := New(db).Exec(stmt)
	if err != nil {
		t.Fatalf("indexed path %q: %v", sql, err)
	}
	scan := New(db)
	scan.NoIndexes = true
	hash, err := scan.Exec(stmt)
	if err != nil {
		t.Fatalf("hash path %q: %v", sql, err)
	}
	nl := New(db)
	nl.NestedLoopOnly = true
	loop, err := nl.Exec(stmt)
	if err != nil {
		t.Fatalf("nested-loop path %q: %v", sql, err)
	}
	synEx := New(db)
	synEx.Syntactic = true
	syntactic, err := synEx.Exec(stmt)
	if err != nil {
		t.Fatalf("syntactic path %q: %v", sql, err)
	}
	if !relEqual(indexed, hash) {
		t.Fatalf("index and scan paths diverge for %q:\nindexed:\n%s\nscan:\n%s", sql, indexed, hash)
	}
	if !relEqual(hash, loop) {
		t.Fatalf("join paths diverge for %q:\nhash:\n%s\nnested loop:\n%s", sql, hash, loop)
	}
	if !relEqual(indexed, syntactic) {
		t.Fatalf("cost and syntactic planners diverge for %q:\ncost:\n%s\nsyntactic:\n%s", sql, indexed, syntactic)
	}
	return hash
}

func TestJoinPathParity(t *testing.T) {
	db := flightDB(t)
	for _, sql := range []string{
		"SELECT T1.flno, T2.name FROM Flight AS T1 JOIN Aircraft AS T2 ON T1.aid = T2.aid",
		"SELECT T1.flno, T2.name FROM Flight AS T1 JOIN Aircraft AS T2 ON T1.aid = T2.aid WHERE T2.distance > 2000",
		"SELECT T1.flno FROM Flight AS T1, Aircraft AS T2 WHERE T1.aid = T2.aid AND T2.name LIKE 'Boeing%'",
		"SELECT T1.name, T2.flno FROM Aircraft AS T1 LEFT JOIN Flight AS T2 ON T1.aid = T2.aid",
		"SELECT T1.name, T2.flno FROM Aircraft AS T1 LEFT JOIN Flight AS T2 ON T1.aid = T2.aid WHERE T2.flno IS NULL",
		"SELECT T2.name, count(*) FROM Flight AS T1 JOIN Aircraft AS T2 ON T1.aid = T2.aid GROUP BY T2.name ORDER BY count(*) DESC, T2.name",
		"SELECT A.name, F.origin, G.destination FROM Aircraft AS A JOIN Flight AS F ON A.aid = F.aid JOIN Flight AS G ON F.aid = G.aid ORDER BY A.name, F.origin, G.destination",
	} {
		runBoth(t, db, sql)
	}
}

// TestJoinEquiVsInequalityPair checks that the equi predicate and its
// nested-loop-only equivalent (a <= b AND a >= b never extracts a key)
// produce the same relation.
func TestJoinEquiVsInequalityPair(t *testing.T) {
	db := flightDB(t)
	eq := run(t, db, "SELECT T1.flno, T2.name FROM Flight AS T1 JOIN Aircraft AS T2 ON T1.aid = T2.aid ORDER BY T1.flno")
	ineq := run(t, db, "SELECT T1.flno, T2.name FROM Flight AS T1 JOIN Aircraft AS T2 ON T1.aid <= T2.aid AND T1.aid >= T2.aid ORDER BY T1.flno")
	if !relEqual(eq, ineq) {
		t.Fatalf("equi and inequality-pair joins diverge:\n%s\nvs\n%s", eq, ineq)
	}
}

// dupDB builds a database whose left table holds duplicate-valued rows, so
// any value-keyed (rather than index-keyed) LEFT JOIN bookkeeping would
// conflate distinct rows.
func dupDB(t testing.TB) *storage.Database {
	t.Helper()
	s := &schema.Schema{
		Name: "dupes",
		Tables: []*schema.Table{
			{Name: "L", Columns: []schema.Column{
				{Name: "k", Type: sqltypes.KindInt},
				{Name: "tag", Type: sqltypes.KindText},
			}},
			{Name: "R", Columns: []schema.Column{
				{Name: "k", Type: sqltypes.KindInt},
				{Name: "val", Type: sqltypes.KindText},
			}},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase(s)
	// Two identical rows (1, "x"), one row with a partner, one without.
	db.MustInsert("L", sqltypes.NewInt(1), sqltypes.NewText("x"))
	db.MustInsert("L", sqltypes.NewInt(1), sqltypes.NewText("x"))
	db.MustInsert("L", sqltypes.NewInt(2), sqltypes.NewText("y"))
	db.MustInsert("L", sqltypes.NewInt(3), sqltypes.NewText("z"))
	db.MustInsert("R", sqltypes.NewInt(1), sqltypes.NewText("a"))
	db.MustInsert("R", sqltypes.NewInt(2), sqltypes.NewText("b"))
	return db
}

func TestLeftJoinDuplicateValuedRows(t *testing.T) {
	db := dupDB(t)
	rel := runBoth(t, db, "SELECT L.k, L.tag, R.val FROM L LEFT JOIN R ON L.k = R.k")
	// Both (1, x) duplicates match R once each, (2, y) matches once,
	// (3, z) is null-extended: four rows total, duplicates preserved.
	if rel.NumRows() != 4 {
		t.Fatalf("left join with duplicates: want 4 rows, got:\n%s", rel)
	}
	ones := 0
	for _, row := range rel.Rows {
		if row[0].Int() == 1 && row[2].Text() == "a" {
			ones++
		}
	}
	if ones != 2 {
		t.Fatalf("duplicate left rows must each keep their match, got %d:\n%s", ones, rel)
	}
	nulls := 0
	for _, row := range rel.Rows {
		if row[2].IsNull() {
			nulls++
		}
	}
	if nulls != 1 {
		t.Fatalf("exactly the unmatched row must be null-extended, got %d:\n%s", nulls, rel)
	}
}

// TestMultiJoinOffsetResolution verifies compiled column coordinates in a
// three-way self-join where every table shares column names, so any offset
// mix-up surfaces as wrong values rather than an error.
func TestMultiJoinOffsetResolution(t *testing.T) {
	db := flightDB(t)
	rel := run(t, db, `SELECT F1.flno, F2.flno, A.name
		FROM Flight AS F1 JOIN Flight AS F2 ON F1.aid = F2.aid JOIN Aircraft AS A ON F1.aid = A.aid
		WHERE F1.flno < F2.flno ORDER BY F1.flno, F2.flno`)
	// Aircraft 3 flies flights 7 and 13; aircraft 9 flies flights 2 and 76.
	if rel.NumRows() != 2 {
		t.Fatalf("self-join pairs: want 2 rows, got:\n%s", rel)
	}
	if rel.Rows[0][0].Int() != 2 || rel.Rows[0][1].Int() != 76 || rel.Rows[0][2].Text() != "Lockheed L1011" {
		t.Fatalf("offset resolution wrong: %v", rel.Rows[0])
	}
	if rel.Rows[1][0].Int() != 7 || rel.Rows[1][1].Int() != 13 || rel.Rows[1][2].Text() != "Airbus A340-300" {
		t.Fatalf("offset resolution wrong: %v", rel.Rows[1])
	}
	// The unqualified spelling must bind the first table that declares the
	// column (Flight.aid via F1), exactly like the legacy lookup order.
	v := single(t, db, "SELECT count(*) FROM Flight AS F1 JOIN Aircraft AS A ON F1.aid = A.aid WHERE aid = 3")
	if v.Int() != 2 {
		t.Fatalf("unqualified aid must bind F1: %v", v)
	}
}

// TestWherePushdownSemantics pins the LEFT JOIN guard: a WHERE filter on
// the right table must apply after null extension, never inside the join.
func TestWherePushdownSemantics(t *testing.T) {
	db := flightDB(t)
	// Without the guard, pushing origin='Chicago' into the join would
	// null-extend every aircraft that has non-Chicago flights too.
	rel := runBoth(t, db, "SELECT T1.name FROM Aircraft AS T1 LEFT JOIN Flight AS T2 ON T1.aid = T2.aid WHERE T2.origin = 'Chicago' ORDER BY T1.name")
	if rel.NumRows() != 2 {
		t.Fatalf("post-join filter: want 2 rows, got:\n%s", rel)
	}
	// Inner joins do push: same query with JOIN must agree with the
	// nested-loop path (runBoth) and keep only Chicago departures.
	rel = runBoth(t, db, "SELECT T1.name FROM Aircraft AS T1 JOIN Flight AS T2 ON T1.aid = T2.aid WHERE T2.origin = 'Chicago' ORDER BY T2.flno")
	if rel.NumRows() != 2 || rel.Rows[0][0].Text() != "Boeing 757-300" {
		t.Fatalf("pushed filter: got:\n%s", rel)
	}
}

// TestOrderByAliasAfterStar pins the alias→column mapping through star
// expansion: ORDER BY an AS name must sort by the aliased expression even
// when a * item precedes it in the projection.
func TestOrderByAliasAfterStar(t *testing.T) {
	db := flightDB(t)
	rel := run(t, db, "SELECT *, distance / 1000 AS kd FROM Aircraft ORDER BY kd DESC LIMIT 1")
	if rel.NumCols() != 4 {
		t.Fatalf("columns: %v", rel.Columns)
	}
	if rel.Rows[0][1].Text() != "Boeing 747-400" || rel.Rows[0][3].Int() != 8 {
		t.Fatalf("alias after star must sort by the aliased expression: %v", rel.Rows[0])
	}
}

// TestHashJoinLargeNumericKeys pins Compare-consistent key encoding: an
// INTEGER at 1e15 must equi-match a REAL 1e15 on the hash path exactly as
// the = operator (and the nested-loop path) matches it.
func TestHashJoinLargeNumericKeys(t *testing.T) {
	s := &schema.Schema{
		Name: "big",
		Tables: []*schema.Table{
			{Name: "A", Columns: []schema.Column{{Name: "k", Type: sqltypes.KindInt}}},
			{Name: "B", Columns: []schema.Column{{Name: "k", Type: sqltypes.KindFloat}}},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase(s)
	db.MustInsert("A", sqltypes.NewInt(1_000_000_000_000_000))
	db.MustInsert("A", sqltypes.NewInt(7))
	db.MustInsert("B", sqltypes.NewFloat(1e15))
	db.MustInsert("B", sqltypes.NewFloat(7))
	rel := runBoth(t, db, "SELECT A.k, B.k FROM A JOIN B ON A.k = B.k ORDER BY 1")
	if rel.NumRows() != 2 {
		t.Fatalf("large numeric equi-keys must match as = does, got:\n%s", rel)
	}
}

// TestCompiledPlanCacheReuse pins that re-executing the same statement
// through one executor reuses its plan and stays correct as data changes.
func TestCompiledPlanCacheReuse(t *testing.T) {
	db := flightDB(t)
	stmt, err := sqlparse.Parse("SELECT count(*) FROM Flight WHERE origin = 'Chicago'")
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	rel, err := ex.Exec(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0].Int() != 2 {
		t.Fatalf("before insert: %v", rel.Rows)
	}
	if len(ex.plans) != 1 {
		t.Fatalf("plan not cached: %d entries", len(ex.plans))
	}
	db.MustInsert("Flight", sqltypes.NewInt(500), sqltypes.NewInt(1), sqltypes.NewText("Chicago"), sqltypes.NewText("Boston"))
	rel, err = ex.Exec(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0].Int() != 3 {
		t.Fatalf("cached plan must see inserted rows: %v", rel.Rows)
	}
}
