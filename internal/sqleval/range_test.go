package sqleval

import (
	"testing"

	"cyclesql/internal/schema"
	"cyclesql/internal/sqlparse"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// TestRangeProbeParity runs range-eligible queries through all three
// access paths; the sorted-index span must be invisible in the results.
func TestRangeProbeParity(t *testing.T) {
	db := flightDB(t)
	for _, sql := range []string{
		// One-sided ranges, both strict and inclusive, both operand orders.
		"SELECT flno FROM Flight WHERE flno > 50",
		"SELECT flno FROM Flight WHERE flno >= 68",
		"SELECT name FROM Aircraft WHERE distance < 3000",
		"SELECT name FROM Aircraft WHERE 2000 <= distance",
		"SELECT name FROM Aircraft WHERE 3000 > distance",
		// Two one-sided conjuncts on one column merge into one span; a
		// third conjunct on the same column stays a filter.
		"SELECT flno FROM Flight WHERE flno > 10 AND flno < 300",
		"SELECT flno FROM Flight WHERE flno > 10 AND flno < 300 AND flno < 100",
		// BETWEEN, inverted BETWEEN (empty), NOT BETWEEN (filter only).
		"SELECT flno FROM Flight WHERE flno BETWEEN 13 AND 99",
		"SELECT flno FROM Flight WHERE flno BETWEEN 99 AND 13",
		"SELECT flno FROM Flight WHERE flno NOT BETWEEN 13 AND 99",
		// Bounds of a different kind than the column: a float bound on an
		// INTEGER column, a text bound (text sorts after every number), and
		// a NULL bound (never lowered; the filter rejects every row).
		"SELECT name FROM Aircraft WHERE aid > 2.5",
		"SELECT name FROM Aircraft WHERE aid < 'x'",
		"SELECT origin FROM Flight WHERE origin > 'C'",
		"SELECT flno FROM Flight WHERE flno < NULL",
		// Ranges mixed with point probes and residual filters.
		"SELECT flno FROM Flight WHERE origin = 'Los Angeles' AND flno > 30",
		"SELECT flno FROM Flight WHERE flno > 30 AND origin = 'Los Angeles'",
		// Ranges under joins: base-scan ranges compose with equi joins and
		// LEFT JOIN (base columns are never null-extended); a range on the
		// equi-join build side stays a residual so the build-side index is
		// still reused.
		"SELECT T1.flno FROM Flight AS T1 JOIN Aircraft AS T2 ON T1.aid = T2.aid WHERE T1.flno > 50",
		"SELECT T1.flno FROM Flight AS T1 JOIN Aircraft AS T2 ON T1.aid = T2.aid WHERE T2.distance > 2000",
		"SELECT T2.name, T1.flno FROM Aircraft AS T2 LEFT JOIN Flight AS T1 ON T1.aid = T2.aid WHERE T2.distance > 4000",
		"SELECT T2.name, T1.flno FROM Aircraft AS T2 LEFT JOIN Flight AS T1 ON T1.aid = T2.aid WHERE T1.flno > 50",
		// Range under grouping and ordering.
		"SELECT count(*) FROM Flight WHERE flno > 50",
		"SELECT origin, count(*) FROM Flight WHERE flno BETWEEN 10 AND 400 GROUP BY origin ORDER BY count(*) DESC, origin",
	} {
		runBoth(t, db, sql)
	}
}

// TestOrderByStreamParity covers the sorted-index ORDER BY fast path:
// single-key orderings over one base table, ascending and descending,
// with and without LIMIT/OFFSET, ties, residual filters, and same-column
// range probes — all bit-identical to the materialize-and-sort path.
func TestOrderByStreamParity(t *testing.T) {
	db := flightDB(t)
	for _, sql := range []string{
		"SELECT flno, origin FROM Flight ORDER BY flno",
		"SELECT flno, origin FROM Flight ORDER BY flno DESC",
		"SELECT flno, origin FROM Flight ORDER BY flno LIMIT 3",
		"SELECT flno, origin FROM Flight ORDER BY flno DESC LIMIT 3",
		"SELECT flno FROM Flight ORDER BY flno DESC LIMIT 3 OFFSET 2",
		"SELECT flno FROM Flight ORDER BY flno LIMIT 0",
		"SELECT flno FROM Flight ORDER BY flno LIMIT 100 OFFSET 8",
		// Ties: many flights share an origin; stable order must hold, and a
		// LIMIT cutting inside a tie run must cut identically.
		"SELECT origin, flno FROM Flight ORDER BY origin",
		"SELECT origin, flno FROM Flight ORDER BY origin DESC",
		"SELECT origin, flno FROM Flight ORDER BY origin LIMIT 4",
		"SELECT origin, flno FROM Flight ORDER BY origin DESC LIMIT 4",
		// The order key does not need to be projected.
		"SELECT name FROM Aircraft ORDER BY distance DESC LIMIT 2",
		// Residual filters stream too; same-column ranges restrict the walk.
		"SELECT flno FROM Flight WHERE origin = 'Los Angeles' AND destination = 'Honolulu' ORDER BY flno DESC",
		"SELECT flno FROM Flight WHERE flno > 30 ORDER BY flno LIMIT 3",
		"SELECT flno FROM Flight WHERE flno BETWEEN 10 AND 100 ORDER BY flno DESC LIMIT 2",
		"SELECT flno FROM Flight WHERE destination > 'D' ORDER BY flno LIMIT 4",
		// Not streamable — DISTINCT, aliases shadowing columns, positional
		// and computed keys, grouped orderings — must still agree.
		"SELECT DISTINCT origin FROM Flight ORDER BY origin LIMIT 3",
		"SELECT flno AS aid FROM Flight ORDER BY aid LIMIT 3",
		"SELECT flno, origin FROM Flight ORDER BY 1 DESC LIMIT 3",
		"SELECT flno FROM Flight ORDER BY flno + 0 LIMIT 3",
		"SELECT origin, count(*) FROM Flight GROUP BY origin ORDER BY origin LIMIT 3",
	} {
		runBoth(t, db, sql)
	}
}

// TestCompositeJoinParity covers multi-key equi-joins — the shape whose
// build side is served by a composite index — including LEFT JOIN null
// extension, WHERE-derived keys, and three-key joins.
func TestCompositeJoinParity(t *testing.T) {
	db := flightDB(t)
	for _, sql := range []string{
		"SELECT T1.flno, T2.flno FROM Flight AS T1 JOIN Flight AS T2 ON T1.origin = T2.origin AND T1.destination = T2.destination",
		"SELECT T1.flno, T2.flno FROM Flight AS T1 JOIN Flight AS T2 ON T1.aid = T2.aid AND T1.origin = T2.origin",
		"SELECT T1.flno, T2.flno FROM Flight AS T1 LEFT JOIN Flight AS T2 ON T1.aid = T2.aid AND T1.destination = T2.origin",
		"SELECT T1.flno, T2.flno FROM Flight AS T1 JOIN Flight AS T2 ON T1.aid = T2.aid AND T1.origin = T2.origin AND T1.destination = T2.destination",
		// Keys split between ON and pushed-down WHERE, and comma joins
		// whose keys all come from WHERE.
		"SELECT T1.flno, T2.flno FROM Flight AS T1 JOIN Flight AS T2 ON T1.origin = T2.origin WHERE T1.destination = T2.destination",
		"SELECT T1.flno, T2.flno FROM Flight AS T1, Flight AS T2 WHERE T1.origin = T2.origin AND T1.destination = T2.destination AND T1.flno < T2.flno",
		// Composite keys with a residual and a grouped projection on top.
		"SELECT T1.origin, count(*) FROM Flight AS T1 JOIN Flight AS T2 ON T1.origin = T2.origin AND T1.destination = T2.destination GROUP BY T1.origin ORDER BY count(*) DESC, T1.origin",
	} {
		runBoth(t, db, sql)
	}
	// NULL key columns: rows with NULLs must match nothing on either side,
	// exactly as the generic paths reject them.
	runBoth(t, nullPairDB(t), "SELECT L.tag, R.val FROM L JOIN R ON L.k1 = R.k1 AND L.k2 = R.k2")
	runBoth(t, nullPairDB(t), "SELECT L.tag, R.val FROM L LEFT JOIN R ON L.k1 = R.k1 AND L.k2 = R.k2")
}

// nullPairDB holds NULLs and duplicates in both key columns of both sides.
func nullPairDB(t testing.TB) *storage.Database {
	t.Helper()
	s := &schema.Schema{
		Name: "nullpairs",
		Tables: []*schema.Table{
			{Name: "L", Columns: []schema.Column{
				{Name: "k1", Type: sqltypes.KindInt},
				{Name: "k2", Type: sqltypes.KindText},
				{Name: "tag", Type: sqltypes.KindText},
			}},
			{Name: "R", Columns: []schema.Column{
				{Name: "k1", Type: sqltypes.KindInt},
				{Name: "k2", Type: sqltypes.KindText},
				{Name: "val", Type: sqltypes.KindText},
			}},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase(s)
	null := sqltypes.Null()
	txt := sqltypes.NewText
	i := sqltypes.NewInt
	db.MustInsert("L", i(1), txt("a"), txt("l1"))
	db.MustInsert("L", i(1), txt("a"), txt("l2"))
	db.MustInsert("L", i(1), null, txt("l3"))
	db.MustInsert("L", null, txt("a"), txt("l4"))
	db.MustInsert("L", i(2), txt("b"), txt("l5"))
	db.MustInsert("R", i(1), txt("a"), txt("r1"))
	db.MustInsert("R", null, txt("a"), txt("r2"))
	db.MustInsert("R", i(1), null, txt("r3"))
	db.MustInsert("R", i(2), txt("b"), txt("r4"))
	db.MustInsert("R", i(2), txt("b"), txt("r5"))
	return db
}

// TestStreamSeesInsertsAndMutations pins sorted-index maintenance end to
// end through a cached streaming plan: rows inserted after the index was
// built must appear at their ordered position, and mutated values must be
// re-sorted after invalidation.
func TestStreamSeesInsertsAndMutations(t *testing.T) {
	db := flightDB(t)
	stmt, err := sqlparse.Parse("SELECT flno FROM Flight ORDER BY flno DESC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	rel, err := ex.Exec(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0].Int() != 387 {
		t.Fatalf("before insert: %v", rel.Rows)
	}
	db.MustInsert("Flight", sqltypes.NewInt(600), sqltypes.NewInt(2), sqltypes.NewText("Chicago"), sqltypes.NewText("Tokyo"))
	if rel, err = ex.Exec(stmt); err != nil || rel.Rows[0][0].Int() != 600 {
		t.Fatalf("stream missed the inserted row: %v, %v", rel, err)
	}
	db.Mutate(func(table string, row sqltypes.Row) {
		if table == "flight" && row[0].Int() == 600 {
			row[0] = sqltypes.NewInt(5)
		}
	})
	if rel, err = ex.Exec(stmt); err != nil || rel.Rows[0][0].Int() != 387 {
		t.Fatalf("stream read stale order after mutate: %v, %v", rel, err)
	}
}

// TestRangeSparesBuildSideReuse pins that a range conjunct on an
// equi-join build side stays a residual whether the join keys are spelled
// in ON or in WHERE: the build table's column index must be reused (and
// therefore built) rather than the scan pre-filtered into a per-execution
// hash rebuild.
func TestRangeSparesBuildSideReuse(t *testing.T) {
	for _, sql := range []string{
		"SELECT count(*) FROM Flight AS T1 JOIN Aircraft AS T2 ON T1.aid = T2.aid WHERE T2.distance > 100",
		"SELECT count(*) FROM Flight AS T1, Aircraft AS T2 WHERE T1.aid = T2.aid AND T2.distance > 100",
		"SELECT count(*) FROM Flight AS T1, Aircraft AS T2 WHERE T2.distance > 100 AND T1.aid = T2.aid",
	} {
		db := flightDB(t)
		runBoth(t, db, sql)
		if !db.HasIndex("Aircraft", 0) {
			t.Fatalf("build-side column index not reused for %q: range probe pre-filtered the build scan", sql)
		}
	}
}

// TestRangeProbeSeesInserts pins the same maintenance contract for range
// probes on a cached plan.
func TestRangeProbeSeesInserts(t *testing.T) {
	db := flightDB(t)
	stmt, err := sqlparse.Parse("SELECT count(*) FROM Flight WHERE flno > 300")
	if err != nil {
		t.Fatal(err)
	}
	ex := New(db)
	rel, err := ex.Exec(stmt)
	if err != nil {
		t.Fatal(err)
	}
	want := rel.Rows[0][0].Int()
	db.MustInsert("Flight", sqltypes.NewInt(601), sqltypes.NewInt(2), sqltypes.NewText("Chicago"), sqltypes.NewText("Tokyo"))
	if rel, err = ex.Exec(stmt); err != nil || rel.Rows[0][0].Int() != want+1 {
		t.Fatalf("range probe missed the inserted row: %v, %v", rel, err)
	}
}
