package sqleval

import (
	"testing"

	"cyclesql/internal/schema"
	"cyclesql/internal/sqlparse"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// flightDB builds the paper's Fig 2 database: Aircraft and Flight.
func flightDB(t testing.TB) *storage.Database {
	t.Helper()
	s := &schema.Schema{
		Name: "flight_2",
		Tables: []*schema.Table{
			{Name: "Aircraft", Columns: []schema.Column{
				{Name: "aid", Type: sqltypes.KindInt, PrimaryKey: true},
				{Name: "name", Type: sqltypes.KindText},
				{Name: "distance", Type: sqltypes.KindInt},
			}},
			{Name: "Flight", Columns: []schema.Column{
				{Name: "flno", Type: sqltypes.KindInt, PrimaryKey: true},
				{Name: "aid", Type: sqltypes.KindInt},
				{Name: "origin", Type: sqltypes.KindText},
				{Name: "destination", Type: sqltypes.KindText},
			}},
		},
		ForeignKeys: []schema.ForeignKey{{Table: "Flight", Column: "aid", RefTable: "Aircraft", RefColumn: "aid"}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase(s)
	type a struct {
		aid  int64
		name string
		dist int64
	}
	for _, r := range []a{
		{1, "Boeing 747-400", 8430}, {2, "Boeing 737-800", 3383},
		{3, "Airbus A340-300", 7120}, {4, "British Aerospace Jetstream 41", 1502},
		{5, "Embraer ERJ-145", 1530}, {6, "SAAB 340", 2128},
		{7, "Piper Archer III", 520}, {8, "Tupolev 154", 4103},
		{9, "Lockheed L1011", 6900}, {10, "Boeing 757-300", 4010},
	} {
		db.MustInsert("Aircraft", sqltypes.NewInt(r.aid), sqltypes.NewText(r.name), sqltypes.NewInt(r.dist))
	}
	type f struct {
		flno, aid    int64
		origin, dest string
	}
	for _, r := range []f{
		{2, 9, "Los Angeles", "Tokyo"}, {7, 3, "Los Angeles", "Sydney"},
		{13, 3, "Los Angeles", "Chicago"}, {68, 10, "Chicago", "New York"},
		{76, 9, "Chicago", "Los Angeles"}, {33, 7, "Los Angeles", "Honolulu"},
		{34, 5, "Los Angeles", "Honolulu"}, {99, 1, "Los Angeles", "Washington D.C."},
		{346, 2, "Los Angeles", "Dallas"}, {387, 6, "Los Angeles", "Boston"},
	} {
		db.MustInsert("Flight", sqltypes.NewInt(r.flno), sqltypes.NewInt(r.aid), sqltypes.NewText(r.origin), sqltypes.NewText(r.dest))
	}
	return db
}

func run(t testing.TB, db *storage.Database, sql string) *sqltypes.Relation {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	rel, err := New(db).Exec(stmt)
	if err != nil {
		t.Fatalf("exec %q: %v", sql, err)
	}
	return rel
}

func single(t testing.TB, db *storage.Database, sql string) sqltypes.Value {
	t.Helper()
	rel := run(t, db, sql)
	if rel.NumRows() != 1 || rel.NumCols() != 1 {
		t.Fatalf("%q: expected scalar, got %dx%d:\n%s", sql, rel.NumRows(), rel.NumCols(), rel)
	}
	return rel.Rows[0][0]
}

func TestExecPaperMotivatingQuery(t *testing.T) {
	db := flightDB(t)
	// The erroneous translation from Fig 2: count instead of listing.
	v := single(t, db, "SELECT count(*) FROM Flight AS T1 JOIN Aircraft AS T2 ON T1.aid = T2.aid WHERE T2.name = 'Airbus A340-300'")
	if v.Int() != 2 {
		t.Fatalf("count = %v, want 2", v)
	}
	// The intended query: flight numbers of that aircraft.
	rel := run(t, db, "SELECT T1.flno FROM Flight AS T1 JOIN Aircraft AS T2 ON T1.aid = T2.aid WHERE T2.name = 'Airbus A340-300'")
	if rel.NumRows() != 2 {
		t.Fatalf("flight numbers: %v", rel.Rows)
	}
}

func TestExecSimpleFilters(t *testing.T) {
	db := flightDB(t)
	if v := single(t, db, "SELECT count(*) FROM Flight WHERE origin = 'Los Angeles'"); v.Int() != 8 {
		t.Fatalf("LA flights = %v", v)
	}
	if v := single(t, db, "SELECT count(*) FROM Aircraft WHERE distance > 5000"); v.Int() != 3 {
		t.Fatalf("long range = %v", v)
	}
	if v := single(t, db, "SELECT count(*) FROM Aircraft WHERE distance BETWEEN 1500 AND 2200"); v.Int() != 3 {
		t.Fatalf("between = %v", v)
	}
	if v := single(t, db, "SELECT count(*) FROM Aircraft WHERE name LIKE 'Boeing%'"); v.Int() != 3 {
		t.Fatalf("like = %v", v)
	}
	if v := single(t, db, "SELECT count(*) FROM Aircraft WHERE name NOT LIKE 'Boeing%'"); v.Int() != 7 {
		t.Fatalf("not like = %v", v)
	}
}

func TestExecAggregates(t *testing.T) {
	db := flightDB(t)
	if v := single(t, db, "SELECT max(distance) FROM Aircraft"); v.Int() != 8430 {
		t.Fatalf("max = %v", v)
	}
	if v := single(t, db, "SELECT min(distance) FROM Aircraft"); v.Int() != 520 {
		t.Fatalf("min = %v", v)
	}
	if v := single(t, db, "SELECT sum(distance) FROM Aircraft WHERE name LIKE 'Boeing%'"); v.Int() != 8430+3383+4010 {
		t.Fatalf("sum = %v", v)
	}
	v := single(t, db, "SELECT avg(distance) FROM Aircraft WHERE aid <= 2")
	if f, _ := v.AsFloat(); f != (8430+3383)/2.0 {
		t.Fatalf("avg = %v", v)
	}
	if v := single(t, db, "SELECT count(DISTINCT origin) FROM Flight"); v.Int() != 2 {
		t.Fatalf("distinct origins = %v", v)
	}
}

func TestExecGroupByHaving(t *testing.T) {
	db := flightDB(t)
	rel := run(t, db, "SELECT aid, count(*) FROM Flight GROUP BY aid HAVING count(*) > 1")
	if rel.NumRows() != 2 { // aid 3 and aid 9 both fly twice
		t.Fatalf("groups: %v", rel.Rows)
	}
	rel = run(t, db, "SELECT origin, count(*) FROM Flight GROUP BY origin ORDER BY count(*) DESC LIMIT 1")
	if rel.Rows[0][0].Text() != "Los Angeles" || rel.Rows[0][1].Int() != 8 {
		t.Fatalf("argmax group: %v", rel.Rows)
	}
}

func TestExecOrderLimitOffset(t *testing.T) {
	db := flightDB(t)
	rel := run(t, db, "SELECT name FROM Aircraft ORDER BY distance DESC LIMIT 3")
	want := []string{"Boeing 747-400", "Airbus A340-300", "Lockheed L1011"}
	for i, w := range want {
		if rel.Rows[i][0].Text() != w {
			t.Fatalf("order: %v", rel.Rows)
		}
	}
	rel = run(t, db, "SELECT name FROM Aircraft ORDER BY distance DESC LIMIT 2 OFFSET 1")
	if rel.NumRows() != 2 || rel.Rows[0][0].Text() != "Airbus A340-300" {
		t.Fatalf("offset: %v", rel.Rows)
	}
	rel = run(t, db, "SELECT name FROM Aircraft ORDER BY 1 LIMIT 1")
	if rel.Rows[0][0].Text() != "Airbus A340-300" {
		t.Fatalf("positional order: %v", rel.Rows)
	}
}

func TestExecSetOperations(t *testing.T) {
	db := flightDB(t)
	// Destinations from LA intersect origins: Chicago only.
	rel := run(t, db, "SELECT destination FROM Flight INTERSECT SELECT origin FROM Flight")
	if rel.NumRows() != 2 { // Chicago and Los Angeles both appear as destinations
		t.Fatalf("intersect: %v", rel.Rows)
	}
	rel = run(t, db, "SELECT origin FROM Flight EXCEPT SELECT destination FROM Flight")
	if rel.NumRows() != 0 {
		t.Fatalf("except: %v", rel.Rows)
	}
	rel = run(t, db, "SELECT aid FROM Aircraft WHERE aid = 1 UNION SELECT aid FROM Aircraft WHERE aid = 2")
	if rel.NumRows() != 2 {
		t.Fatalf("union: %v", rel.Rows)
	}
	rel = run(t, db, "SELECT aid FROM Aircraft WHERE aid = 1 UNION ALL SELECT aid FROM Aircraft WHERE aid = 1")
	if rel.NumRows() != 2 {
		t.Fatalf("union all must keep duplicates: %v", rel.Rows)
	}
}

func TestExecSubqueries(t *testing.T) {
	db := flightDB(t)
	// IN subquery.
	if v := single(t, db, "SELECT count(*) FROM Aircraft WHERE aid IN (SELECT aid FROM Flight)"); v.Int() != 8 {
		t.Fatalf("in-subquery = %v", v)
	}
	// NOT IN subquery: aircraft never flown (aid 4 and 8).
	if v := single(t, db, "SELECT count(*) FROM Aircraft WHERE aid NOT IN (SELECT aid FROM Flight)"); v.Int() != 2 {
		t.Fatalf("not-in = %v", v)
	}
	// Scalar subquery.
	rel := run(t, db, "SELECT name FROM Aircraft WHERE distance = (SELECT max(distance) FROM Aircraft)")
	if rel.NumRows() != 1 || rel.Rows[0][0].Text() != "Boeing 747-400" {
		t.Fatalf("scalar subquery: %v", rel.Rows)
	}
	// Correlated EXISTS.
	if v := single(t, db, "SELECT count(*) FROM Aircraft AS A WHERE EXISTS (SELECT 1 FROM Flight AS F WHERE F.aid = A.aid AND F.origin = 'Chicago')"); v.Int() != 2 {
		t.Fatalf("correlated exists = %v", v)
	}
	// Correlated NOT EXISTS.
	if v := single(t, db, "SELECT count(*) FROM Aircraft AS A WHERE NOT EXISTS (SELECT 1 FROM Flight AS F WHERE F.aid = A.aid)"); v.Int() != 2 {
		t.Fatalf("correlated not exists = %v", v)
	}
}

func TestExecDerivedTable(t *testing.T) {
	db := flightDB(t)
	v := single(t, db, "SELECT count(*) FROM (SELECT DISTINCT origin FROM Flight) AS o")
	if v.Int() != 2 {
		t.Fatalf("derived table count = %v", v)
	}
}

func TestExecLeftJoin(t *testing.T) {
	db := flightDB(t)
	// Aircraft 4 and 8 have no flights; LEFT JOIN must keep them with NULLs.
	rel := run(t, db, "SELECT T1.name, T2.flno FROM Aircraft AS T1 LEFT JOIN Flight AS T2 ON T1.aid = T2.aid WHERE T2.flno IS NULL")
	if rel.NumRows() != 2 {
		t.Fatalf("left join nulls: %v", rel.Rows)
	}
}

func TestExecDistinct(t *testing.T) {
	db := flightDB(t)
	rel := run(t, db, "SELECT DISTINCT origin FROM Flight")
	if rel.NumRows() != 2 {
		t.Fatalf("distinct: %v", rel.Rows)
	}
}

func TestExecStarExpansion(t *testing.T) {
	db := flightDB(t)
	rel := run(t, db, "SELECT * FROM Aircraft WHERE aid = 3")
	if rel.NumCols() != 3 || rel.Rows[0][1].Text() != "Airbus A340-300" {
		t.Fatalf("star: %v %v", rel.Columns, rel.Rows)
	}
	rel = run(t, db, "SELECT T2.* FROM Flight AS T1 JOIN Aircraft AS T2 ON T1.aid = T2.aid WHERE T1.flno = 7")
	if rel.NumCols() != 3 || rel.Rows[0][0].Int() != 3 {
		t.Fatalf("qualified star: %v %v", rel.Columns, rel.Rows)
	}
}

func TestExecArithmetic(t *testing.T) {
	db := flightDB(t)
	if v := single(t, db, "SELECT max(distance) - min(distance) FROM Aircraft"); v.Int() != 8430-520 {
		t.Fatalf("arith = %v", v)
	}
	if v := single(t, db, "SELECT 7 % 3"); v.Int() != 1 {
		t.Fatalf("mod = %v", v)
	}
	if v := single(t, db, "SELECT 1 / 0"); !v.IsNull() {
		t.Fatalf("div by zero must be NULL, got %v", v)
	}
	if v := single(t, db, "SELECT abs(3 - 10)"); v.Int() != 7 {
		t.Fatalf("abs = %v", v)
	}
}

func TestExecNullSemantics(t *testing.T) {
	db := flightDB(t)
	// NULL comparisons drop rows rather than matching.
	if v := single(t, db, "SELECT count(*) FROM Aircraft WHERE NULL = NULL"); v.Int() != 0 {
		t.Fatalf("NULL=NULL must filter all, got %v", v)
	}
	if v := single(t, db, "SELECT count(*) FROM Aircraft WHERE NULL IS NULL"); v.Int() != 10 {
		t.Fatalf("IS NULL: %v", v)
	}
	// Aggregates skip NULLs: sum over empty set is NULL.
	if v := single(t, db, "SELECT sum(distance) FROM Aircraft WHERE aid > 100"); !v.IsNull() {
		t.Fatalf("sum of empty = %v", v)
	}
	// COUNT over empty set is 0.
	if v := single(t, db, "SELECT count(*) FROM Aircraft WHERE aid > 100"); v.Int() != 0 {
		t.Fatalf("count of empty = %v", v)
	}
}

func TestExecEmptyResultQueries(t *testing.T) {
	db := flightDB(t)
	rel := run(t, db, "SELECT name FROM Aircraft WHERE name = 'Concorde'")
	if rel.NumRows() != 0 {
		t.Fatalf("empty expected: %v", rel.Rows)
	}
}

func TestExecErrorPaths(t *testing.T) {
	db := flightDB(t)
	bad := []string{
		"SELECT missing FROM Aircraft",
		"SELECT name FROM NoSuchTable",
		"SELECT sum(name, aid) FROM Aircraft",
		"SELECT a FROM Aircraft UNION SELECT a, b FROM Aircraft",
	}
	for _, sql := range bad {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, err := New(db).Exec(stmt); err == nil {
			t.Errorf("Exec(%q) must fail", sql)
		}
	}
}

func TestExecGroupByMultipleKeys(t *testing.T) {
	db := flightDB(t)
	rel := run(t, db, "SELECT origin, destination, count(*) FROM Flight GROUP BY origin, destination")
	if rel.NumRows() != 9 { // LA->Honolulu is flown twice; all other pairs once
		t.Fatalf("group keys: %d rows", rel.NumRows())
	}
	rel = run(t, db, "SELECT origin, destination FROM Flight GROUP BY origin, destination HAVING count(*) = 2")
	if rel.NumRows() != 1 || rel.Rows[0][1].Text() != "Honolulu" {
		t.Fatalf("having over multi-key groups: %v", rel.Rows)
	}
}

func TestExecOrderByAlias(t *testing.T) {
	db := flightDB(t)
	rel := run(t, db, "SELECT name, distance AS d FROM Aircraft ORDER BY d DESC LIMIT 1")
	if rel.Rows[0][0].Text() != "Boeing 747-400" {
		t.Fatalf("alias order: %v", rel.Rows)
	}
}

func TestExecInList(t *testing.T) {
	db := flightDB(t)
	if v := single(t, db, "SELECT count(*) FROM Aircraft WHERE aid IN (1, 3, 5)"); v.Int() != 3 {
		t.Fatalf("in list = %v", v)
	}
	if v := single(t, db, "SELECT count(*) FROM Aircraft WHERE aid NOT IN (1, 3, 5)"); v.Int() != 7 {
		t.Fatalf("not in list = %v", v)
	}
}

func BenchmarkExecJoinAggregate(b *testing.B) {
	db := flightDB(b)
	stmt := sqlparse.MustParse("SELECT T2.name, count(*) FROM Flight AS T1 JOIN Aircraft AS T2 ON T1.aid = T2.aid GROUP BY T2.name")
	ex := New(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Exec(stmt); err != nil {
			b.Fatal(err)
		}
	}
}
