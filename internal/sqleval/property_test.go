package sqleval

import (
	"fmt"
	"math/rand"
	"testing"

	"cyclesql/internal/schema"
	"cyclesql/internal/sqlgen"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// randomDB builds two tables whose columns deliberately violate their
// declared affinity: the INTEGER columns also hold REAL, TEXT (including
// numeric-looking text, which Compare still orders as text) and NULL
// values, so every randomized predicate exercises cross-kind Compare
// semantics and NULL boundaries through the index and scan paths alike.
func randomDB(t testing.TB, rng *rand.Rand) *storage.Database {
	t.Helper()
	s := &schema.Schema{
		Name: "randdb",
		Tables: []*schema.Table{
			{Name: "T", Columns: []schema.Column{
				{Name: "id", Type: sqltypes.KindInt, PrimaryKey: true},
				{Name: "num", Type: sqltypes.KindInt},
				{Name: "val", Type: sqltypes.KindFloat},
				{Name: "txt", Type: sqltypes.KindText},
			}},
			{Name: "U", Columns: []schema.Column{
				{Name: "k1", Type: sqltypes.KindInt},
				{Name: "k2", Type: sqltypes.KindText},
				{Name: "w", Type: sqltypes.KindInt},
			}},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase(s)
	mixed := func() sqltypes.Value {
		switch rng.Intn(10) {
		case 0, 1: // NULL boundary rows
			return sqltypes.Null()
		case 2, 3: // REAL, half-integral so ties with INTEGER happen too
			return sqltypes.NewFloat(float64(rng.Intn(21)-5) / 2)
		case 4: // numeric-looking text: orders as text, never as a number
			return sqltypes.NewText(fmt.Sprint(rng.Intn(12)))
		default: // small INTEGER domain, dense with duplicates
			return sqltypes.NewInt(int64(rng.Intn(12) - 2))
		}
	}
	words := []string{"a", "b", "m", "z", "5", "mm"}
	for i := 0; i < 240; i++ {
		var txt sqltypes.Value
		if rng.Intn(8) == 0 {
			txt = sqltypes.Null()
		} else {
			txt = sqltypes.NewText(words[rng.Intn(len(words))])
		}
		// Raw relation appends keep the mixed kinds intact (Insert would
		// coerce numerics toward the declared affinity on some columns);
		// the storage layer's row-count checks rebuild indexes over them.
		db.Table("T").Append(sqltypes.Row{sqltypes.NewInt(int64(i)), mixed(), mixed(), txt})
	}
	for i := 0; i < 120; i++ {
		var k2 sqltypes.Value
		if rng.Intn(8) == 0 {
			k2 = sqltypes.Null()
		} else {
			k2 = sqltypes.NewText(words[rng.Intn(len(words))])
		}
		db.Table("U").Append(sqltypes.Row{mixed(), k2, sqltypes.NewInt(int64(rng.Intn(7)))})
	}
	return db
}

// TestRandomizedPredicateParity is the property-based harness for the new
// access paths: hundreds of randomized single-table queries — random range
// predicates over mixed-kind columns with NULLs, random ORDER BY
// direction, LIMIT and OFFSET — must produce bit-identical relations
// through the indexed, index-free, and nested-loop executors. Any
// divergence between a sorted-index span (or streamed ordering) and the
// scan-and-sort semantics shows up as a failing SQL string that reproduces
// with the fixed seed. The query corpus lives in internal/sqlgen, shared
// with the front-end differential suite.
func TestRandomizedPredicateParity(t *testing.T) {
	db := randomDB(t, rand.New(rand.NewSource(sqlgen.SingleTableSeed)))
	for _, q := range sqlgen.SingleTableQueries(sqlgen.SingleTableSeed, sqlgen.SingleTableCount) {
		runBoth(t, db, q)
	}
}

// TestRandomizedJoinParity stresses composite-key equi-joins with
// randomized residual predicates: the multi-key build side served by the
// composite index must match the per-execution hash table and the nested
// loop, row for row, across NULL keys and mixed-kind key columns.
func TestRandomizedJoinParity(t *testing.T) {
	db := randomDB(t, rand.New(rand.NewSource(sqlgen.JoinSeed)))
	for _, q := range sqlgen.JoinQueries(sqlgen.JoinSeed, sqlgen.JoinCount) {
		runBoth(t, db, q)
	}
}
