package sqleval

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cyclesql/internal/schema"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/storage"
)

// randomDB builds two tables whose columns deliberately violate their
// declared affinity: the INTEGER columns also hold REAL, TEXT (including
// numeric-looking text, which Compare still orders as text) and NULL
// values, so every randomized predicate exercises cross-kind Compare
// semantics and NULL boundaries through the index and scan paths alike.
func randomDB(t testing.TB, rng *rand.Rand) *storage.Database {
	t.Helper()
	s := &schema.Schema{
		Name: "randdb",
		Tables: []*schema.Table{
			{Name: "T", Columns: []schema.Column{
				{Name: "id", Type: sqltypes.KindInt, PrimaryKey: true},
				{Name: "num", Type: sqltypes.KindInt},
				{Name: "val", Type: sqltypes.KindFloat},
				{Name: "txt", Type: sqltypes.KindText},
			}},
			{Name: "U", Columns: []schema.Column{
				{Name: "k1", Type: sqltypes.KindInt},
				{Name: "k2", Type: sqltypes.KindText},
				{Name: "w", Type: sqltypes.KindInt},
			}},
		},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase(s)
	mixed := func() sqltypes.Value {
		switch rng.Intn(10) {
		case 0, 1: // NULL boundary rows
			return sqltypes.Null()
		case 2, 3: // REAL, half-integral so ties with INTEGER happen too
			return sqltypes.NewFloat(float64(rng.Intn(21)-5) / 2)
		case 4: // numeric-looking text: orders as text, never as a number
			return sqltypes.NewText(fmt.Sprint(rng.Intn(12)))
		default: // small INTEGER domain, dense with duplicates
			return sqltypes.NewInt(int64(rng.Intn(12) - 2))
		}
	}
	words := []string{"a", "b", "m", "z", "5", "mm"}
	for i := 0; i < 240; i++ {
		var txt sqltypes.Value
		if rng.Intn(8) == 0 {
			txt = sqltypes.Null()
		} else {
			txt = sqltypes.NewText(words[rng.Intn(len(words))])
		}
		// Raw relation appends keep the mixed kinds intact (Insert would
		// coerce numerics toward the declared affinity on some columns);
		// the storage layer's row-count checks rebuild indexes over them.
		db.Table("T").Append(sqltypes.Row{sqltypes.NewInt(int64(i)), mixed(), mixed(), txt})
	}
	for i := 0; i < 120; i++ {
		var k2 sqltypes.Value
		if rng.Intn(8) == 0 {
			k2 = sqltypes.Null()
		} else {
			k2 = sqltypes.NewText(words[rng.Intn(len(words))])
		}
		db.Table("U").Append(sqltypes.Row{mixed(), k2, sqltypes.NewInt(int64(rng.Intn(7)))})
	}
	return db
}

// randomLiteral renders a random comparison bound: integers, halves,
// text (plain and numeric-looking), and the occasional NULL (which no
// probe may claim and no row may pass).
func randomLiteral(rng *rand.Rand) string {
	switch rng.Intn(8) {
	case 0:
		return fmt.Sprintf("%.1f", float64(rng.Intn(21)-5)/2)
	case 1:
		return "'" + []string{"a", "b", "m", "z", "5", "mm"}[rng.Intn(6)] + "'"
	case 2:
		return "NULL"
	default:
		return fmt.Sprint(rng.Intn(14) - 3)
	}
}

// randomPredicate renders one conjunct over the given columns.
func randomPredicate(rng *rand.Rand, cols []string) string {
	col := cols[rng.Intn(len(cols))]
	switch rng.Intn(8) {
	case 0: // literal-first spelling
		op := []string{"<", "<=", ">", ">=", "="}[rng.Intn(5)]
		return randomLiteral(rng) + " " + op + " " + col
	case 1:
		not := ""
		if rng.Intn(3) == 0 {
			not = "NOT "
		}
		return fmt.Sprintf("%s %sBETWEEN %s AND %s", col, not, randomLiteral(rng), randomLiteral(rng))
	case 2:
		return col + " IS NOT NULL"
	default:
		op := []string{"<", "<=", ">", ">=", "=", "!="}[rng.Intn(6)]
		return col + " " + op + " " + randomLiteral(rng)
	}
}

// TestRandomizedPredicateParity is the property-based harness for the new
// access paths: hundreds of randomized single-table queries — random range
// predicates over mixed-kind columns with NULLs, random ORDER BY
// direction, LIMIT and OFFSET — must produce bit-identical relations
// through the indexed, index-free, and nested-loop executors. Any
// divergence between a sorted-index span (or streamed ordering) and the
// scan-and-sort semantics shows up as a failing SQL string that reproduces
// with the fixed seed.
func TestRandomizedPredicateParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := randomDB(t, rng)
	cols := []string{"id", "num", "val", "txt"}
	for i := 0; i < 400; i++ {
		var b strings.Builder
		b.WriteString("SELECT ")
		if rng.Intn(8) == 0 {
			b.WriteString("DISTINCT ")
		}
		switch rng.Intn(3) {
		case 0:
			b.WriteString("*")
		case 1:
			b.WriteString(cols[rng.Intn(len(cols))])
		default:
			b.WriteString("id, " + cols[1+rng.Intn(3)])
		}
		b.WriteString(" FROM T")
		if n := rng.Intn(4); n > 0 {
			preds := make([]string, n)
			for p := range preds {
				preds[p] = randomPredicate(rng, cols)
			}
			b.WriteString(" WHERE " + strings.Join(preds, " AND "))
		}
		if rng.Intn(3) > 0 {
			b.WriteString(" ORDER BY " + cols[rng.Intn(len(cols))])
			if rng.Intn(2) == 0 {
				b.WriteString(" DESC")
			}
			if rng.Intn(3) > 0 {
				fmt.Fprintf(&b, " LIMIT %d", rng.Intn(25))
				if rng.Intn(3) == 0 {
					fmt.Fprintf(&b, " OFFSET %d", rng.Intn(6))
				}
			}
		}
		runBoth(t, db, b.String())
	}
}

// TestRandomizedJoinParity stresses composite-key equi-joins with
// randomized residual predicates: the multi-key build side served by the
// composite index must match the per-execution hash table and the nested
// loop, row for row, across NULL keys and mixed-kind key columns.
func TestRandomizedJoinParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := randomDB(t, rng)
	for i := 0; i < 80; i++ {
		join := "JOIN"
		if rng.Intn(3) == 0 {
			join = "LEFT JOIN"
		}
		var b strings.Builder
		fmt.Fprintf(&b, "SELECT T.id, U.w FROM T %s U ON T.num = U.k1 AND T.txt = U.k2", join)
		if rng.Intn(2) == 0 && join == "JOIN" {
			b.WriteString(" WHERE " + randomPredicate(rng, []string{"id", "num", "val", "txt", "w", "k1", "k2"}))
		}
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&b, " ORDER BY T.id LIMIT %d", 1+rng.Intn(30))
		}
		runBoth(t, db, b.String())
	}
}
