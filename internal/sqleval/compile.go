package sqleval

import (
	"context"
	"fmt"
	"slices"
	"strings"

	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqltypes"
	"cyclesql/internal/stats"
)

// This file implements the compile phase: it resolves every column
// reference to a fixed (depth, offset) frame coordinate, expands stars,
// detects equi-join keys in ON/WHERE, and lowers the statement into a
// program of closures the execute phase runs without any per-row name
// resolution or environment allocation.

// scope is the compile-time mirror of the runtime frame: one binding per
// FROM entry, with the flat-row offset each table's columns start at.
// parent links to the enclosing query's scope for correlated subqueries.
type scope struct {
	bindings []scopeBinding
	width    int
	parent   *scope
}

type scopeBinding struct {
	name   string // effective (alias or table) name, lower-case
	cols   []string
	offset int
}

// resolve finds (depth, flat offset) for a column reference, mirroring the
// legacy per-row env.lookup order: bindings of the nearest scope first, in
// FROM order, then outward through enclosing scopes.
func (s *scope) resolve(table, column string) (depth, idx int, ok bool) {
	tl, cl := strings.ToLower(table), strings.ToLower(column)
	d := 0
	for cur := s; cur != nil; cur = cur.parent {
		for bi := range cur.bindings {
			b := &cur.bindings[bi]
			if tl != "" && b.name != tl {
				continue
			}
			for ci, c := range b.cols {
				if c == cl {
					return d, b.offset + ci, true
				}
			}
		}
		d++
	}
	return 0, 0, false
}

// rowCtx is the runtime environment a compiled expression evaluates in:
// the current flat frame row, the enclosing query's context for correlated
// references, and — during grouped projection — the rows of the current
// group for aggregate closures. depth carries the subquery nesting of the
// core being executed so subquery closures can recurse with the right
// bound, and qctx carries the execution's context.Context so those
// closures re-enter runProgram under the caller's cancellation; keeping
// both here (instead of on the executor) is what lets one executor run
// concurrent executions without shared mutable state.
type rowCtx struct {
	row    sqltypes.Row
	parent *rowCtx
	grp    *groupRows
	depth  int
	qctx   context.Context
}

// groupRows carries one group's member rows into aggregate closures.
type groupRows struct {
	rows []sqltypes.Row
}

// compiledExpr evaluates one expression against a row context.
type compiledExpr func(ctx *rowCtx) (sqltypes.Value, error)

// program is a fully compiled statement: one compiled core per SELECT core
// plus the set operations combining them. nodes counts the plan-node ids
// the compiler assigned across the whole statement (joins, scans, filters,
// outputs — including subqueries), sizing the trace arrays ExplainPlan
// records actual row counts into.
type program struct {
	cores []*compiledCore
	ops   []sqlast.CompoundOp
	nodes int
}

// columns returns the output column labels (those of the first core, as
// with set operations in SQLite).
func (p *program) columns() []string { return p.cores[0].labels() }

// compiledCore is one lowered SELECT core.
type compiledCore struct {
	core  *sqlast.SelectCore
	scans []*tableScan
	joins []*joinPlan // joins[i] combines scans[i+1] into the frame
	// baseFilters are WHERE conjuncts pushed down to the base scan
	// (all-inner-join cores only); filters run after the joins.
	baseFilters []compiledExpr
	filters     []compiledExpr
	items       []compiledItem
	groupBy     []compiledExpr
	having      compiledExpr
	orderKeys   []orderKey
	// stream, when non-nil, lowers ORDER BY (and LIMIT/OFFSET) into a walk
	// of the base table's sorted index instead of materialize-and-sort.
	stream *streamPlan
	hasAgg bool
	width  int
	// id is the core's output plan node, filterID the post-join filter
	// stage's (-1 when the core has no post-join filters); est is the
	// cost-based estimate of the core's output rows (-1 outside cost mode).
	id       int
	filterID int
	est      float64
}

func (cc *compiledCore) labels() []string {
	out := make([]string, len(cc.items))
	for i, it := range cc.items {
		out[i] = it.label
	}
	return out
}

// tableScan is one FROM entry: a base table (resolved to its live relation
// at compile time) or a compiled derived table. A base-table scan may carry
// a point probe (WHERE col = literal lowered at compile time) or a range
// probe (comparison/BETWEEN conjuncts on one column); execution then reads
// the matching rows off the column's secondary (hash or sorted) index
// instead of scanning Relation.Rows. At most one of probe/rprobe is set.
type tableScan struct {
	rel    *sqltypes.Relation // base table; nil for derived tables
	sub    *program           // derived table; nil for base tables
	table  string             // base-table name for index lookups; "" for derived
	probe  *scanProbe         // optional point probe on a base table
	rprobe *rangeProbe        // optional range probe on a base table
	offset int
	width  int
	id     int     // plan node id
	est    float64 // cost-based estimate of emitted rows; -1 outside cost mode
}

// scanProbe is a compiled point lookup: the column offset within the
// table's own row and the precomputed index key of the literal. val keeps
// the probed literal itself for plan rendering.
type scanProbe struct {
	col int
	key []byte
	val sqltypes.Value
}

// rangeProbe is a compiled range lookup on one column of a base table:
// up to two literal bounds, each inclusive or exclusive. Both bounds on
// one probe means an intersection (BETWEEN, or two one-sided conjuncts on
// the same column). nil bounds are unbounded on that side.
type rangeProbe struct {
	col            int
	lo, hi         *sqltypes.Value
	loIncl, hiIncl bool
}

// streamPlan marks a core whose single ORDER BY key is a column of its
// single base-table scan, so execution can walk the column's sorted index
// (optionally restricted to the scan's same-column range probe) instead of
// materializing every row and sorting — and stop early under LIMIT.
type streamPlan struct {
	col  int // column offset within the base table's own row
	desc bool
}

func (ts *tableScan) rows(ctx context.Context, ex *Executor, outer *rowCtx, depth int) ([]sqltypes.Row, bool, error) {
	if ts.sub != nil {
		rel, err := ex.runProgram(ctx, ts.sub, outer, depth+1)
		if err != nil {
			return nil, false, err
		}
		if ex.trace != nil {
			ex.trace.addRows(ts.id, int64(len(rel.Rows)))
		}
		return rel.Rows, true, nil
	}
	if ts.probe != nil {
		ids := ex.db.Index(ts.table, ts.probe.col).Lookup(ts.probe.key)
		matched := make([]sqltypes.Row, len(ids))
		for i, ri := range ids {
			matched[i] = ts.rel.Rows[ri]
		}
		if ex.trace != nil {
			ex.trace.addRows(ts.id, int64(len(matched)))
		}
		return matched, true, nil
	}
	if ts.rprobe != nil {
		rp := ts.rprobe
		span := ex.db.Sorted(ts.table, rp.col).Range(rp.lo, rp.hi, rp.loIncl, rp.hiIncl)
		// The span is in value order; the filter path this probe replaces
		// keeps rows in scan order, so re-sort the positions before
		// materializing (the span slice is shared — copy first).
		ids := make([]int32, len(span))
		copy(ids, span)
		slices.Sort(ids)
		matched := make([]sqltypes.Row, len(ids))
		for i, ri := range ids {
			matched[i] = ts.rel.Rows[ri]
		}
		if ex.trace != nil {
			ex.trace.addRows(ts.id, int64(len(matched)))
		}
		return matched, true, nil
	}
	if ex.trace != nil {
		ex.trace.addRows(ts.id, int64(len(ts.rel.Rows)))
	}
	return ts.rel.Rows, false, nil
}

// joinPlan describes how one table joins into the frame. eqAcc/eqNew are
// the paired equi-key offsets (eqAcc into the accumulated frame row, eqNew
// into the new table's own row); residual holds the remaining ON conjuncts
// plus any pushed-down WHERE conjuncts, evaluated on the combined row.
type joinPlan struct {
	left     bool
	eqAcc    []int
	eqNew    []int
	residual []compiledExpr
	id       int     // plan node id
	est      float64 // cost-based estimate of emitted rows; -1 outside cost mode
	estPairs float64 // cost-based estimate of candidate pairs; -1 outside cost mode
	// reuse marks joins whose build side is a whole base table, so
	// execution probes the table's (composite) index instead of hashing a
	// side per execution; recorded for plan rendering.
	reuse bool
}

// compiledItem is one output column: its label, the rendered SQL of its
// source expression (for ORDER BY textual matching), and its value closure.
type compiledItem struct {
	label string
	sql   string
	fn    compiledExpr
}

// orderKey is one ORDER BY key: either a projected column index (positional
// references, alias references, and expressions textually identical to a
// projection item) or a compiled expression.
type orderKey struct {
	projIdx int // -1 when fn is used
	fn      compiledExpr
	desc    bool
}

// compiler lowers statements for one executor. The executor binding is
// what lets base-table scans resolve to live relations at compile time.
// nodes hands out plan-node ids, unique across the whole statement.
type compiler struct {
	ex    *Executor
	depth int
	nodes int
}

func (c *compiler) nextNode() int {
	id := c.nodes
	c.nodes++
	return id
}

// costMode reports whether this compilation chooses access paths by
// estimated selectivity (the default). The Syntactic flag reverts to the
// pre-statistics first-come lowering; the diagnostic path restrictions
// (NoIndexes, NestedLoopOnly) have no probes to choose among.
func (c *compiler) costMode() bool {
	return !c.ex.Syntactic && !c.ex.NoIndexes && !c.ex.NestedLoopOnly
}

func (c *compiler) compileStmt(stmt *sqlast.SelectStmt, parent *scope) (*program, error) {
	if stmt == nil || len(stmt.Cores) == 0 {
		return nil, fmt.Errorf("sqleval: empty statement")
	}
	c.depth++
	defer func() { c.depth-- }()
	if c.depth > maxSubqueryDepth {
		return nil, fmt.Errorf("sqleval: subquery nesting exceeds %d", maxSubqueryDepth)
	}
	p := &program{ops: stmt.Ops}
	for _, core := range stmt.Cores {
		cc, err := c.compileCore(core, parent)
		if err != nil {
			return nil, err
		}
		p.cores = append(p.cores, cc)
	}
	return p, nil
}

// compileCore lowers one SELECT core and, in cost mode, considers
// replacing a top-level all-inner join order with a cheaper one (see
// reorderCore for the — deliberately narrow — eligibility class).
func (c *compiler) compileCore(core *sqlast.SelectCore, parent *scope) (*compiledCore, error) {
	cc, err := c.lowerCore(core, parent)
	if err != nil {
		return nil, err
	}
	if c.costMode() && c.depth == 1 && parent == nil {
		if re := c.reorderCore(cc, core); re != nil {
			return re, nil
		}
	}
	return cc, nil
}

func (c *compiler) lowerCore(core *sqlast.SelectCore, parent *scope) (*compiledCore, error) {
	cc := &compiledCore{core: core, est: -1, filterID: -1}
	sc := &scope{parent: parent}
	allInner := true
	if core.From != nil {
		refs := []sqlast.TableRef{core.From.Base}
		for _, j := range core.From.Joins {
			refs = append(refs, j.Table)
		}
		for i, ref := range refs {
			ts, cols, err := c.compileScan(ref, parent)
			if err != nil {
				return nil, err
			}
			ts.offset = sc.width
			ts.id = c.nextNode()
			ts.est = -1
			sc.bindings = append(sc.bindings, scopeBinding{
				name:   strings.ToLower(ref.Effective()),
				cols:   cols,
				offset: ts.offset,
			})
			sc.width += ts.width
			cc.scans = append(cc.scans, ts)
			if i > 0 {
				// The progressive scope now covers both sides of the join,
				// so ON can reference every table joined so far but none
				// joined later (matching the legacy runtime lookup).
				join := core.From.Joins[i-1]
				jp, err := c.compileJoin(join, sc, ts)
				if err != nil {
					return nil, err
				}
				if jp.left {
					allInner = false
				}
				jp.id = c.nextNode()
				jp.est, jp.estPairs = -1, -1
				cc.joins = append(cc.joins, jp)
			}
		}
	}
	cc.width = sc.width

	// WHERE splits into conjuncts; col = literal conjuncts become index
	// probes on their scan, comparison/BETWEEN conjuncts become sorted-index
	// range probes, and, for all-inner-join cores, equi conjuncts across
	// tables become join keys and fully-bound conjuncts filter at the
	// earliest scan or join where their columns exist. LEFT JOIN disables
	// the pushdown: filtering before null extension would change results.
	// Point probes claim their scans first (a point lookup subsumes any
	// range on the same column), then WHERE-derived equi-join keys are
	// extracted — before the range pass, so rangeConjunct's build-side
	// guard sees a join's full key set whether the keys were spelled in ON
	// or in WHERE — then range conjuncts, then everything unclaimed flows
	// through pushdown/filtering in its original order.
	conjs := sqlast.Conjuncts(core.Where)
	claimed := make([]bool, len(conjs))
	if c.costMode() {
		// Cost-based lowering claims equi-join keys first — key extraction
		// is independent of probe choice (a key conjunct is col = col, a
		// probe candidate col OP literal), and the cost pass needs every
		// join's complete key set to weigh prefiltering a reused build side
		// — then selects at most one probe per scan by estimated
		// selectivity (cost.go) instead of first-come.
		if allInner && len(cc.scans) > 1 {
			for i, conj := range conjs {
				if !claimed[i] {
					claimed[i] = c.pushEquiKey(cc, sc, conj)
				}
			}
		}
		c.costProbes(cc, sc, conjs, claimed, allInner)
	} else {
		for i, conj := range conjs {
			claimed[i] = c.probeConjunct(cc, sc, conj, allInner)
		}
		if allInner && len(cc.scans) > 1 && !c.ex.NestedLoopOnly {
			for i, conj := range conjs {
				if !claimed[i] {
					claimed[i] = c.pushEquiKey(cc, sc, conj)
				}
			}
		}
		for i, conj := range conjs {
			if !claimed[i] {
				claimed[i] = c.rangeConjunct(cc, sc, conj, allInner)
			}
		}
	}
	for i, conj := range conjs {
		if claimed[i] {
			continue
		}
		if allInner && len(cc.scans) > 1 && !c.ex.NestedLoopOnly {
			if c.pushConjunct(cc, sc, conj) {
				continue
			}
		}
		fn, err := c.compileExpr(conj, sc)
		if err != nil {
			return nil, err
		}
		cc.filters = append(cc.filters, fn)
	}

	items, starts, err := c.compileItems(core, sc)
	if err != nil {
		return nil, err
	}
	cc.items = items

	for _, g := range core.GroupBy {
		fn, err := c.compileExpr(g, sc)
		if err != nil {
			return nil, err
		}
		cc.groupBy = append(cc.groupBy, fn)
	}
	if core.Having != nil {
		if cc.having, err = c.compileExpr(core.Having, sc); err != nil {
			return nil, err
		}
	}
	cc.hasAgg = core.HasAggregate()

	for _, o := range core.OrderBy {
		idx, kexpr := orderKeyExpr(o, core.Items, items, starts)
		ok := orderKey{projIdx: idx, desc: o.Desc}
		if kexpr != nil {
			ok.projIdx = -1
			if ok.fn, err = c.compileExpr(kexpr, sc); err != nil {
				return nil, err
			}
		}
		cc.orderKeys = append(cc.orderKeys, ok)
	}
	c.lowerStream(cc, core, sc)
	if len(cc.filters) > 0 {
		cc.filterID = c.nextNode()
		if cc.est >= 0 {
			// Unclaimed post-join conjuncts keep the default one-sided
			// selectivity each; the product is the core's output estimate.
			for range cc.filters {
				cc.est *= stats.OneSidedFraction
			}
		}
	}
	cc.id = c.nextNode()
	for i, jp := range cc.joins {
		next := cc.scans[i+1]
		jp.reuse = !c.ex.NoIndexes && !c.ex.NestedLoopOnly &&
			next.sub == nil && next.probe == nil && next.rprobe == nil && len(jp.eqNew) > 0
	}
	return cc, nil
}

// lowerStream recognizes cores whose ordering can stream off a sorted
// index: a single base-table scan, no grouping/aggregation/DISTINCT, and a
// single ORDER BY key that is a plain column of that table. The streamed
// walk visits rows in (value, scan-position) order — exactly the order the
// stable sort in finalize leaves them — so the paths are bit-identical;
// under LIMIT the walk additionally stops early instead of materializing
// and sorting every row. A same-column range probe composes (the walk
// starts inside the probed span); any other probe keeps the regular path,
// which is already pre-filtered by the index.
func (c *compiler) lowerStream(cc *compiledCore, core *sqlast.SelectCore, sc *scope) {
	if c.ex.NoIndexes || c.ex.NestedLoopOnly {
		return
	}
	if core.Distinct || cc.hasAgg || len(cc.groupBy) > 0 || len(cc.scans) != 1 {
		return
	}
	ts := cc.scans[0]
	if ts.rel == nil || ts.table == "" || ts.probe != nil {
		return
	}
	if len(core.OrderBy) != 1 {
		return
	}
	cr, ok := core.OrderBy[0].Expr.(*sqlast.ColumnRef)
	if !ok || cr.Column == "*" {
		return
	}
	if cr.Table == "" {
		// An unqualified key naming a projection alias sorts by the
		// projected value (orderKeyExpr's alias rule), which may differ
		// from the same-named table column; leave those to the sort.
		for _, it := range core.Items {
			if it.Alias != "" && strings.EqualFold(it.Alias, cr.Column) {
				return
			}
		}
	}
	depth, idx, found := sc.resolve(cr.Table, cr.Column)
	if !found || depth != 0 {
		return
	}
	col := idx - ts.offset
	if ts.rprobe != nil && ts.rprobe.col != col {
		return
	}
	cc.stream = &streamPlan{col: col, desc: core.OrderBy[0].Desc}
}

func (c *compiler) compileScan(ref sqlast.TableRef, parent *scope) (*tableScan, []string, error) {
	if ref.Sub != nil {
		sub, err := c.compileStmt(ref.Sub, parent)
		if err != nil {
			return nil, nil, err
		}
		outCols := sub.columns()
		cols := make([]string, len(outCols))
		for i, col := range outCols {
			// Strip qualifiers so derived-table columns bind by bare name.
			if dot := strings.LastIndexByte(col, '.'); dot >= 0 {
				col = col[dot+1:]
			}
			cols[i] = strings.ToLower(col)
		}
		return &tableScan{sub: sub, width: len(cols)}, cols, nil
	}
	rel := c.ex.db.Table(ref.Name)
	if rel == nil {
		return nil, nil, fmt.Errorf("sqleval: unknown table %q", ref.Name)
	}
	cols := make([]string, len(rel.Columns))
	for i, col := range rel.Columns {
		cols[i] = strings.ToLower(col)
	}
	return &tableScan{rel: rel, table: strings.ToLower(ref.Name), width: len(cols)}, cols, nil
}

// compileJoin splits the ON condition into equi-key pairs (one side bound
// by earlier tables, the other by the table being joined) and a residual
// conjunct list evaluated per candidate pair.
func (c *compiler) compileJoin(j sqlast.Join, sc *scope, ts *tableScan) (*joinPlan, error) {
	jp := &joinPlan{left: j.Type == sqlast.LeftJoin}
	for _, conj := range sqlast.Conjuncts(j.On) {
		if accIdx, newIdx, ok := c.equiKey(conj, sc, ts); ok {
			jp.eqAcc = append(jp.eqAcc, accIdx)
			jp.eqNew = append(jp.eqNew, newIdx)
			continue
		}
		fn, err := c.compileExpr(conj, sc)
		if err != nil {
			return nil, err
		}
		jp.residual = append(jp.residual, fn)
	}
	return jp, nil
}

// equiKey recognizes conjuncts of the form a.x = b.y where exactly one side
// binds inside the table being joined and the other binds earlier in the
// same frame. Matching by encoded key equals the = operator: joinKey uses
// a Compare-consistent encoding (NULL keys never match, numerics compare
// as float64 across kinds).
func (c *compiler) equiKey(conj sqlast.Expr, sc *scope, ts *tableScan) (accIdx, newIdx int, ok bool) {
	if c.ex.NestedLoopOnly {
		return 0, 0, false
	}
	b, isBin := conj.(*sqlast.Binary)
	if !isBin || b.Op != "=" {
		return 0, 0, false
	}
	lref, lok := b.L.(*sqlast.ColumnRef)
	rref, rok := b.R.(*sqlast.ColumnRef)
	if !lok || !rok || lref.Column == "*" || rref.Column == "*" {
		return 0, 0, false
	}
	ld, li, lfound := sc.resolve(lref.Table, lref.Column)
	rd, ri, rfound := sc.resolve(rref.Table, rref.Column)
	if !lfound || !rfound || ld != 0 || rd != 0 {
		return 0, 0, false
	}
	lNew := li >= ts.offset
	rNew := ri >= ts.offset
	switch {
	case lNew && !rNew:
		return ri, li - ts.offset, true
	case rNew && !lNew:
		return li, ri - ts.offset, true
	default:
		return 0, 0, false
	}
}

// pushEquiKey claims a WHERE conjunct that is an equi-join key pair (a.x =
// b.y across tables), appending it to the join that completes its
// bindings. It runs before range lowering (see compileCore) so every
// join's key set is complete when rangeConjunct decides whether a scan
// serves as a reused index build side; keys keep their conjunct order, so
// composite key sequences are unchanged from the single-pass lowering.
func (c *compiler) pushEquiKey(cc *compiledCore, sc *scope, conj sqlast.Expr) bool {
	maxOff, depth0Only, resolvable := c.conjunctSpan(conj, sc)
	if !resolvable || !depth0Only {
		return false
	}
	joinIdx := -1
	for i := 1; i < len(cc.scans); i++ {
		if maxOff >= cc.scans[i].offset {
			joinIdx = i - 1
		}
	}
	if joinIdx < 0 {
		return false
	}
	jp := cc.joins[joinIdx]
	accIdx, newIdx, ok := c.equiKey(conj, sc, cc.scans[joinIdx+1])
	if !ok {
		return false
	}
	jp.eqAcc = append(jp.eqAcc, accIdx)
	jp.eqNew = append(jp.eqNew, newIdx)
	return true
}

// pushConjunct tries to evaluate a WHERE conjunct earlier: equi conjuncts
// across two tables become join keys, fully-bound conjuncts attach to the
// base scan or the join that completes their bindings. Returns false when
// the conjunct must stay in the post-join filter (correlated references,
// bare stars, or resolution failures that should error in compileExpr).
// Equi keys are normally claimed by the earlier pushEquiKey pass; the
// equiKey attempt here is kept for self-containedness.
func (c *compiler) pushConjunct(cc *compiledCore, sc *scope, conj sqlast.Expr) bool {
	maxOff, depth0Only, resolvable := c.conjunctSpan(conj, sc)
	if !resolvable || !depth0Only {
		return false
	}
	// Which join completes the bindings? joinIdx -1 means the base scan.
	joinIdx := -1
	for i := 1; i < len(cc.scans); i++ {
		if maxOff >= cc.scans[i].offset {
			joinIdx = i - 1
		}
	}
	if joinIdx >= 0 {
		jp := cc.joins[joinIdx]
		if accIdx, newIdx, ok := c.equiKey(conj, sc, cc.scans[joinIdx+1]); ok {
			jp.eqAcc = append(jp.eqAcc, accIdx)
			jp.eqNew = append(jp.eqNew, newIdx)
			return true
		}
		fn, err := c.compileExpr(conj, sc)
		if err != nil {
			return false
		}
		jp.residual = append(jp.residual, fn)
		return true
	}
	fn, err := c.compileExpr(conj, sc)
	if err != nil {
		return false
	}
	cc.baseFilters = append(cc.baseFilters, fn)
	return true
}

// probeConjunct recognizes WHERE conjuncts of the form col = literal
// (either operand order) whose column binds into a base-table scan of this
// core, and lowers them into an index probe on that scan: execution fetches
// exactly the rows holding the literal's key from a lazily built
// storage.ColumnIndex instead of filtering a scan of Relation.Rows. The
// probe fully subsumes the conjunct — the index's AppendCompareKey
// encoding equates values exactly when the = operator (sqltypes.Compare)
// does, and NULL columns are never indexed, matching the operator's
// NULL-rejection — so nothing is re-checked per row.
func (c *compiler) probeConjunct(cc *compiledCore, sc *scope, conj sqlast.Expr, allInner bool) bool {
	if c.ex.NoIndexes || c.ex.NestedLoopOnly {
		return false
	}
	b, ok := conj.(*sqlast.Binary)
	if !ok || b.Op != "=" {
		return false
	}
	cr, lit := probeOperands(b)
	if cr == nil || cr.Column == "*" || lit.Value.IsNull() {
		return false
	}
	depth, idx, found := sc.resolve(cr.Table, cr.Column)
	if !found || depth != 0 {
		return false
	}
	si := 0
	for i := 1; i < len(cc.scans); i++ {
		if idx >= cc.scans[i].offset {
			si = i
		}
	}
	ts := cc.scans[si]
	if ts.table == "" || ts.probe != nil {
		return false
	}
	// Probing the base scan is order- and semantics-preserving under any
	// join mix (base columns are never null-extended, so the WHERE conjunct
	// removes the same output rows before or after the joins); later scans
	// may only be pre-filtered when every join is inner.
	if si > 0 && !allInner {
		return false
	}
	key, ok := lit.Value.AppendCompareKey(nil)
	if !ok {
		return false
	}
	ts.probe = &scanProbe{col: idx - ts.offset, key: key, val: lit.Value}
	return true
}

// rangeConjunct recognizes WHERE conjuncts of the form col OP literal for
// OP in <, <=, >, >= (either operand order — a literal-first comparison
// flips), and col BETWEEN lo AND hi with literal bounds, and lowers them
// into a sorted-index range probe on the column's base-table scan. The
// probe fully subsumes the conjunct: the sorted index orders rows by
// sqltypes.Compare — the exact relation the comparison operators test —
// and NULL rows sit outside every span, matching the operators' NULL
// rejection. Two one-sided conjuncts on the same column merge into one
// two-bound probe; anything that cannot claim a free bound stays a filter.
// The same eligibility rules as point probes apply: base-table scans only,
// and non-base scans only under all-inner joins (pre-filtering a LEFT JOIN
// right side would change null extension).
func (c *compiler) rangeConjunct(cc *compiledCore, sc *scope, conj sqlast.Expr, allInner bool) bool {
	if c.ex.NoIndexes || c.ex.NestedLoopOnly {
		return false
	}
	var cr *sqlast.ColumnRef
	var lo, hi *sqltypes.Value
	var loIncl, hiIncl bool
	switch x := conj.(type) {
	case *sqlast.Binary:
		ref, lit, op := rangeOperands(x)
		if ref == nil || lit.Value.IsNull() {
			return false
		}
		cr = ref
		v := lit.Value
		switch op {
		case "<":
			hi = &v
		case "<=":
			hi, hiIncl = &v, true
		case ">":
			lo = &v
		case ">=":
			lo, loIncl = &v, true
		}
	case *sqlast.BetweenExpr:
		if x.Not {
			return false
		}
		ref, ok := x.X.(*sqlast.ColumnRef)
		if !ok {
			return false
		}
		loLit, loOk := x.Lo.(*sqlast.Literal)
		hiLit, hiOk := x.Hi.(*sqlast.Literal)
		if !loOk || !hiOk || loLit.Value.IsNull() || hiLit.Value.IsNull() {
			return false
		}
		cr = ref
		lv, hv := loLit.Value, hiLit.Value
		lo, loIncl, hi, hiIncl = &lv, true, &hv, true
	default:
		return false
	}
	if cr.Column == "*" {
		return false
	}
	depth, idx, found := sc.resolve(cr.Table, cr.Column)
	if !found || depth != 0 {
		return false
	}
	si := 0
	for i := 1; i < len(cc.scans); i++ {
		if idx >= cc.scans[i].offset {
			si = i
		}
	}
	ts := cc.scans[si]
	if ts.table == "" || ts.probe != nil {
		return false
	}
	// A non-base scan may only be pre-filtered under all-inner joins (as
	// with point probes), and not when its join already has equi keys:
	// those scans serve as reused index build sides, and pre-filtering
	// would force the hash table to be rebuilt per execution — worse, in
	// the repeated-execution regime, than filtering in the join residual.
	if si > 0 && (!allInner || len(cc.joins[si-1].eqNew) > 0) {
		return false
	}
	col := idx - ts.offset
	rp := ts.rprobe
	if rp == nil {
		ts.rprobe = &rangeProbe{col: col, lo: lo, hi: hi, loIncl: loIncl, hiIncl: hiIncl}
		return true
	}
	if rp.col != col {
		return false
	}
	// Merge into the existing probe only when every bound this conjunct
	// carries lands in a free slot; a partial merge would leave half the
	// conjunct unchecked.
	if (lo != nil && rp.lo != nil) || (hi != nil && rp.hi != nil) {
		return false
	}
	if lo != nil {
		rp.lo, rp.loIncl = lo, loIncl
	}
	if hi != nil {
		rp.hi, rp.hiIncl = hi, hiIncl
	}
	return true
}

// rangeOperands extracts the (column, literal) pair of an ordering
// comparison, flipping the operator when the literal is on the left
// ("5 > col" probes like "col < 5").
func rangeOperands(b *sqlast.Binary) (*sqlast.ColumnRef, *sqlast.Literal, string) {
	switch b.Op {
	case "<", "<=", ">", ">=":
	default:
		return nil, nil, ""
	}
	if cr, ok := b.L.(*sqlast.ColumnRef); ok {
		if lit, ok := b.R.(*sqlast.Literal); ok {
			return cr, lit, b.Op
		}
	}
	if cr, ok := b.R.(*sqlast.ColumnRef); ok {
		if lit, ok := b.L.(*sqlast.Literal); ok {
			flip := map[string]string{"<": ">", "<=": ">=", ">": "<", ">=": "<="}
			return cr, lit, flip[b.Op]
		}
	}
	return nil, nil, ""
}

// probeOperands extracts the (column, literal) pair of an = comparison,
// accepting both "col = lit" and "lit = col".
func probeOperands(b *sqlast.Binary) (*sqlast.ColumnRef, *sqlast.Literal) {
	if cr, ok := b.L.(*sqlast.ColumnRef); ok {
		if lit, ok := b.R.(*sqlast.Literal); ok {
			return cr, lit
		}
	}
	if cr, ok := b.R.(*sqlast.ColumnRef); ok {
		if lit, ok := b.L.(*sqlast.Literal); ok {
			return cr, lit
		}
	}
	return nil, nil
}

// conjunctSpan reports the maximum depth-0 frame offset a conjunct touches,
// whether every reference resolves at depth 0, and whether all references
// resolve at all. Subqueries make the conjunct unpushable (they may hold
// correlated references into the current frame that a progressive scope
// cannot see yet — keep them in the post-join filter).
func (c *compiler) conjunctSpan(conj sqlast.Expr, sc *scope) (maxOff int, depth0Only, resolvable bool) {
	depth0Only, resolvable = true, true
	sqlast.WalkExpr(conj, func(e sqlast.Expr) bool {
		switch x := e.(type) {
		case *sqlast.ColumnRef:
			if x.Column == "*" {
				resolvable = false
				return false
			}
			d, idx, ok := sc.resolve(x.Table, x.Column)
			if !ok {
				resolvable = false
				return false
			}
			if d != 0 {
				depth0Only = false
				return false
			}
			if idx > maxOff {
				maxOff = idx
			}
		case *sqlast.InExpr:
			if x.Sub != nil {
				depth0Only = false
				return false
			}
		case *sqlast.ExistsExpr, *sqlast.SubqueryExpr:
			depth0Only = false
			return false
		}
		return true
	})
	return maxOff, depth0Only, resolvable
}

// compileItems expands * and t.* against the frame and compiles every
// projection expression. Labels follow the legacy executor: the alias when
// present, else the rendered SQL of the expression. starts maps each core
// item to its first expanded output index, so alias references (ORDER BY
// an AS name) land on the right column even when a star precedes them.
func (c *compiler) compileItems(core *sqlast.SelectCore, sc *scope) (items []compiledItem, starts []int, err error) {
	addCol := func(b scopeBinding, ci int) {
		off := b.offset + ci
		sql := sqlast.ExprSQL(&sqlast.ColumnRef{Table: b.name, Column: b.cols[ci]})
		items = append(items, compiledItem{label: b.cols[ci], sql: sql, fn: columnAt(0, off)})
	}
	for _, it := range core.Items {
		starts = append(starts, len(items))
		switch {
		case it.Star && it.TableStar == "":
			for _, b := range sc.bindings {
				for ci := range b.cols {
					addCol(b, ci)
				}
			}
		case it.Star:
			name := strings.ToLower(it.TableStar)
			found := false
			for _, b := range sc.bindings {
				if b.name == name {
					for ci := range b.cols {
						addCol(b, ci)
					}
					found = true
				}
			}
			if !found {
				return nil, nil, fmt.Errorf("sqleval: unknown table %q in %s.*", it.TableStar, it.TableStar)
			}
		default:
			label := it.Alias
			if label == "" {
				label = sqlast.ExprSQL(it.Expr)
			}
			fn, err := c.compileExpr(it.Expr, sc)
			if err != nil {
				return nil, nil, err
			}
			items = append(items, compiledItem{label: label, sql: sqlast.ExprSQL(it.Expr), fn: fn})
		}
	}
	return items, starts, nil
}

// orderKeyExpr resolves an ORDER BY expression: positional references
// (ORDER BY 2) and alias references resolve to the projected item; an
// expression textually identical to a projection item reuses its computed
// value (which also lets grouped ORDER BY count(*) hit the aggregate
// result); anything else evaluates in the row context.
func orderKeyExpr(o sqlast.OrderItem, coreItems []sqlast.SelectItem, items []compiledItem, starts []int) (projIdx int, expr sqlast.Expr) {
	if lit, ok := o.Expr.(*sqlast.Literal); ok && lit.Value.Kind() == sqltypes.KindInt {
		idx := int(lit.Value.Int()) - 1
		if idx >= 0 && idx < len(items) {
			return idx, nil
		}
	}
	if cr, ok := o.Expr.(*sqlast.ColumnRef); ok && cr.Table == "" {
		for i, it := range coreItems {
			if it.Alias != "" && strings.EqualFold(it.Alias, cr.Column) {
				return starts[i], nil
			}
		}
	}
	oSQL := sqlast.ExprSQL(o.Expr)
	for i, it := range items {
		if strings.EqualFold(it.sql, oSQL) {
			return i, nil
		}
	}
	return -1, o.Expr
}

// columnAt returns the closure for a resolved column coordinate.
func columnAt(depth, idx int) compiledExpr {
	if depth == 0 {
		return func(ctx *rowCtx) (sqltypes.Value, error) {
			return ctx.row[idx], nil
		}
	}
	return func(ctx *rowCtx) (sqltypes.Value, error) {
		cur := ctx
		for d := depth; d > 0; d-- {
			cur = cur.parent
		}
		return cur.row[idx], nil
	}
}
