package sqleval

import (
	"fmt"
	"math"
	"strings"

	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqltypes"
)

// eval evaluates an expression in a row environment. grp is non-nil inside
// grouped projection, giving aggregate calls access to their group's rows.
// SQL tri-state logic is represented with NULL as the unknown truth value.
func (ex *Executor) eval(e sqlast.Expr, env *env, grp *groupCtx) (sqltypes.Value, error) {
	switch x := e.(type) {
	case *sqlast.Literal:
		return x.Value, nil
	case *sqlast.ColumnRef:
		if x.Column == "*" {
			return sqltypes.Value{}, fmt.Errorf("sqleval: bare * outside COUNT")
		}
		if v, ok := env.lookup(x.Table, x.Column); ok {
			return v, nil
		}
		return sqltypes.Value{}, fmt.Errorf("sqleval: unknown column %s", sqlast.ExprSQL(x))
	case *sqlast.Unary:
		v, err := ex.eval(x.X, env, grp)
		if err != nil {
			return sqltypes.Value{}, err
		}
		if x.Op == "NOT" {
			if v.IsNull() {
				return sqltypes.Null(), nil
			}
			return sqltypes.NewBool(!v.Truthy()), nil
		}
		f, ok := v.AsFloat()
		if !ok {
			return sqltypes.Null(), nil
		}
		if v.Kind() == sqltypes.KindInt {
			return sqltypes.NewInt(-v.Int()), nil
		}
		return sqltypes.NewFloat(-f), nil
	case *sqlast.Binary:
		return ex.evalBinary(x, env, grp)
	case *sqlast.FuncCall:
		return ex.evalFunc(x, env, grp)
	case *sqlast.InExpr:
		return ex.evalIn(x, env, grp)
	case *sqlast.LikeExpr:
		v, err := ex.eval(x.X, env, grp)
		if err != nil {
			return sqltypes.Value{}, err
		}
		p, err := ex.eval(x.Pattern, env, grp)
		if err != nil {
			return sqltypes.Value{}, err
		}
		if v.IsNull() || p.IsNull() {
			return sqltypes.Null(), nil
		}
		m := likeMatch(strings.ToLower(v.String()), strings.ToLower(p.String()))
		return sqltypes.NewBool(m != x.Not), nil
	case *sqlast.BetweenExpr:
		v, err := ex.eval(x.X, env, grp)
		if err != nil {
			return sqltypes.Value{}, err
		}
		lo, err := ex.eval(x.Lo, env, grp)
		if err != nil {
			return sqltypes.Value{}, err
		}
		hi, err := ex.eval(x.Hi, env, grp)
		if err != nil {
			return sqltypes.Value{}, err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return sqltypes.Null(), nil
		}
		in := sqltypes.Compare(v, lo) >= 0 && sqltypes.Compare(v, hi) <= 0
		return sqltypes.NewBool(in != x.Not), nil
	case *sqlast.IsNullExpr:
		v, err := ex.eval(x.X, env, grp)
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.NewBool(v.IsNull() != x.Not), nil
	case *sqlast.ExistsExpr:
		rel, err := ex.execStmt(x.Sub, env)
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.NewBool((rel.NumRows() > 0) != x.Not), nil
	case *sqlast.SubqueryExpr:
		rel, err := ex.execStmt(x.Sub, env)
		if err != nil {
			return sqltypes.Value{}, err
		}
		if rel.NumRows() == 0 || rel.NumCols() == 0 {
			return sqltypes.Null(), nil
		}
		return rel.Rows[0][0], nil
	case nil:
		return sqltypes.Value{}, fmt.Errorf("sqleval: nil expression")
	default:
		return sqltypes.Value{}, fmt.Errorf("sqleval: unsupported expression %T", e)
	}
}

func (ex *Executor) evalBinary(x *sqlast.Binary, env *env, grp *groupCtx) (sqltypes.Value, error) {
	switch x.Op {
	case "AND", "OR":
		l, err := ex.eval(x.L, env, grp)
		if err != nil {
			return sqltypes.Value{}, err
		}
		// Kleene three-valued logic with short-circuiting on the
		// determining value.
		if x.Op == "AND" && !l.IsNull() && !l.Truthy() {
			return sqltypes.NewBool(false), nil
		}
		if x.Op == "OR" && l.Truthy() {
			return sqltypes.NewBool(true), nil
		}
		r, err := ex.eval(x.R, env, grp)
		if err != nil {
			return sqltypes.Value{}, err
		}
		if x.Op == "AND" {
			if !r.IsNull() && !r.Truthy() {
				return sqltypes.NewBool(false), nil
			}
			if l.IsNull() || r.IsNull() {
				return sqltypes.Null(), nil
			}
			return sqltypes.NewBool(true), nil
		}
		if r.Truthy() {
			return sqltypes.NewBool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return sqltypes.Null(), nil
		}
		return sqltypes.NewBool(false), nil
	}
	l, err := ex.eval(x.L, env, grp)
	if err != nil {
		return sqltypes.Value{}, err
	}
	r, err := ex.eval(x.R, env, grp)
	if err != nil {
		return sqltypes.Value{}, err
	}
	switch x.Op {
	case "=", "!=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return sqltypes.Null(), nil
		}
		c := sqltypes.Compare(l, r)
		var b bool
		switch x.Op {
		case "=":
			b = c == 0
		case "!=", "<>":
			b = c != 0
		case "<":
			b = c < 0
		case "<=":
			b = c <= 0
		case ">":
			b = c > 0
		case ">=":
			b = c >= 0
		}
		return sqltypes.NewBool(b), nil
	case "+", "-", "*", "/", "%":
		return arith(x.Op, l, r), nil
	default:
		return sqltypes.Value{}, fmt.Errorf("sqleval: unknown operator %q", x.Op)
	}
}

func arith(op string, l, r sqltypes.Value) sqltypes.Value {
	if l.IsNull() || r.IsNull() {
		return sqltypes.Null()
	}
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return sqltypes.Null()
	}
	bothInt := l.Kind() == sqltypes.KindInt && r.Kind() == sqltypes.KindInt
	switch op {
	case "+":
		if bothInt {
			return sqltypes.NewInt(l.Int() + r.Int())
		}
		return sqltypes.NewFloat(lf + rf)
	case "-":
		if bothInt {
			return sqltypes.NewInt(l.Int() - r.Int())
		}
		return sqltypes.NewFloat(lf - rf)
	case "*":
		if bothInt {
			return sqltypes.NewInt(l.Int() * r.Int())
		}
		return sqltypes.NewFloat(lf * rf)
	case "/":
		if rf == 0 {
			return sqltypes.Null()
		}
		if bothInt {
			return sqltypes.NewInt(l.Int() / r.Int())
		}
		return sqltypes.NewFloat(lf / rf)
	case "%":
		if rf == 0 {
			return sqltypes.Null()
		}
		if bothInt {
			return sqltypes.NewInt(l.Int() % r.Int())
		}
		return sqltypes.NewFloat(math.Mod(lf, rf))
	}
	return sqltypes.Null()
}

func (ex *Executor) evalIn(x *sqlast.InExpr, env *env, grp *groupCtx) (sqltypes.Value, error) {
	v, err := ex.eval(x.X, env, grp)
	if err != nil {
		return sqltypes.Value{}, err
	}
	var members []sqltypes.Value
	if x.Sub != nil {
		rel, err := ex.execStmt(x.Sub, env)
		if err != nil {
			return sqltypes.Value{}, err
		}
		for _, row := range rel.Rows {
			if len(row) > 0 {
				members = append(members, row[0])
			}
		}
	} else {
		for _, le := range x.List {
			m, err := ex.eval(le, env, grp)
			if err != nil {
				return sqltypes.Value{}, err
			}
			members = append(members, m)
		}
	}
	if v.IsNull() {
		return sqltypes.Null(), nil
	}
	found := false
	sawNull := false
	for _, m := range members {
		if m.IsNull() {
			sawNull = true
			continue
		}
		if sqltypes.Compare(v, m) == 0 {
			found = true
			break
		}
	}
	if !found && sawNull {
		return sqltypes.Null(), nil
	}
	return sqltypes.NewBool(found != x.Not), nil
}

func (ex *Executor) evalFunc(x *sqlast.FuncCall, env *env, grp *groupCtx) (sqltypes.Value, error) {
	if x.IsAggregate() {
		if grp == nil {
			return sqltypes.Value{}, fmt.Errorf("sqleval: aggregate %s outside grouped context", x.Name)
		}
		return ex.evalAggregate(x, grp)
	}
	switch x.Name {
	case "ABS":
		if len(x.Args) != 1 {
			return sqltypes.Value{}, fmt.Errorf("sqleval: ABS expects 1 argument")
		}
		v, err := ex.eval(x.Args[0], env, grp)
		if err != nil {
			return sqltypes.Value{}, err
		}
		if v.IsNull() {
			return sqltypes.Null(), nil
		}
		if v.Kind() == sqltypes.KindInt {
			if v.Int() < 0 {
				return sqltypes.NewInt(-v.Int()), nil
			}
			return v, nil
		}
		f, ok := v.AsFloat()
		if !ok {
			return sqltypes.Null(), nil
		}
		return sqltypes.NewFloat(math.Abs(f)), nil
	default:
		return sqltypes.Value{}, fmt.Errorf("sqleval: unknown function %s", x.Name)
	}
}

func (ex *Executor) evalAggregate(x *sqlast.FuncCall, grp *groupCtx) (sqltypes.Value, error) {
	// COUNT(*) counts rows directly.
	if x.Star {
		if x.Name != "COUNT" {
			return sqltypes.Value{}, fmt.Errorf("sqleval: %s(*) is not valid", x.Name)
		}
		return sqltypes.NewInt(int64(len(grp.rows))), nil
	}
	if len(x.Args) != 1 {
		return sqltypes.Value{}, fmt.Errorf("sqleval: aggregate %s expects 1 argument", x.Name)
	}
	var vals []sqltypes.Value
	seen := map[string]bool{}
	for _, row := range grp.rows {
		e := grp.f.env(row, grp.outer)
		v, err := grp.ex.eval(x.Args[0], e, nil)
		if err != nil {
			return sqltypes.Value{}, err
		}
		if v.IsNull() {
			continue
		}
		if x.Distinct {
			k := v.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch x.Name {
	case "COUNT":
		return sqltypes.NewInt(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return sqltypes.Null(), nil
		}
		sum := 0.0
		allInt := true
		for _, v := range vals {
			f, ok := v.AsFloat()
			if !ok {
				return sqltypes.Null(), nil
			}
			if v.Kind() != sqltypes.KindInt {
				allInt = false
			}
			sum += f
		}
		if x.Name == "SUM" {
			if allInt {
				return sqltypes.NewInt(int64(sum)), nil
			}
			return sqltypes.NewFloat(sum), nil
		}
		return sqltypes.NewFloat(sum / float64(len(vals))), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return sqltypes.Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := sqltypes.Compare(v, best)
			if (x.Name == "MIN" && c < 0) || (x.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return sqltypes.Value{}, fmt.Errorf("sqleval: unknown aggregate %s", x.Name)
}

// likeMatch implements SQL LIKE with % and _ wildcards (case folded by the
// caller, matching SQLite's ASCII-insensitive default).
func likeMatch(s, pattern string) bool {
	// Dynamic-programming match over bytes; patterns are short.
	m, n := len(s), len(pattern)
	dp := make([]bool, m+1)
	dp[0] = true
	for j := 1; j <= n; j++ {
		prevDiag := dp[0]
		dp[0] = dp[0] && pattern[j-1] == '%'
		for i := 1; i <= m; i++ {
			cur := dp[i]
			switch pattern[j-1] {
			case '%':
				dp[i] = dp[i] || dp[i-1]
			case '_':
				dp[i] = prevDiag
			default:
				dp[i] = prevDiag && s[i-1] == pattern[j-1]
			}
			prevDiag = cur
		}
	}
	return dp[m]
}
