package sqleval

import (
	"fmt"
	"math"
	"strings"

	"cyclesql/internal/sqlast"
	"cyclesql/internal/sqltypes"
)

// compileExpr lowers an expression into a closure evaluated against a row
// context. Column references are resolved to frame coordinates here, once
// per statement; the closures never touch names again. SQL tri-state logic
// is represented with NULL as the unknown truth value, exactly as in the
// legacy interpreter.
func (c *compiler) compileExpr(e sqlast.Expr, sc *scope) (compiledExpr, error) {
	switch x := e.(type) {
	case *sqlast.Literal:
		v := x.Value
		return func(*rowCtx) (sqltypes.Value, error) { return v, nil }, nil
	case *sqlast.ColumnRef:
		if x.Column == "*" {
			return nil, fmt.Errorf("sqleval: bare * outside COUNT")
		}
		depth, idx, ok := sc.resolve(x.Table, x.Column)
		if !ok {
			return nil, fmt.Errorf("sqleval: unknown column %s", sqlast.ExprSQL(x))
		}
		return columnAt(depth, idx), nil
	case *sqlast.Unary:
		fn, err := c.compileExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return func(ctx *rowCtx) (sqltypes.Value, error) {
				v, err := fn(ctx)
				if err != nil || v.IsNull() {
					return sqltypes.Null(), err
				}
				return sqltypes.NewBool(!v.Truthy()), nil
			}, nil
		}
		return func(ctx *rowCtx) (sqltypes.Value, error) {
			v, err := fn(ctx)
			if err != nil {
				return sqltypes.Value{}, err
			}
			f, ok := v.AsFloat()
			if !ok {
				return sqltypes.Null(), nil
			}
			if v.Kind() == sqltypes.KindInt {
				return sqltypes.NewInt(-v.Int()), nil
			}
			return sqltypes.NewFloat(-f), nil
		}, nil
	case *sqlast.Binary:
		return c.compileBinary(x, sc)
	case *sqlast.FuncCall:
		return c.compileFunc(x, sc)
	case *sqlast.InExpr:
		return c.compileIn(x, sc)
	case *sqlast.LikeExpr:
		xfn, err := c.compileExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		pfn, err := c.compileExpr(x.Pattern, sc)
		if err != nil {
			return nil, err
		}
		not := x.Not
		return func(ctx *rowCtx) (sqltypes.Value, error) {
			v, err := xfn(ctx)
			if err != nil {
				return sqltypes.Value{}, err
			}
			p, err := pfn(ctx)
			if err != nil {
				return sqltypes.Value{}, err
			}
			if v.IsNull() || p.IsNull() {
				return sqltypes.Null(), nil
			}
			m := likeMatch(strings.ToLower(v.String()), strings.ToLower(p.String()))
			return sqltypes.NewBool(m != not), nil
		}, nil
	case *sqlast.BetweenExpr:
		xfn, err := c.compileExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		lofn, err := c.compileExpr(x.Lo, sc)
		if err != nil {
			return nil, err
		}
		hifn, err := c.compileExpr(x.Hi, sc)
		if err != nil {
			return nil, err
		}
		not := x.Not
		return func(ctx *rowCtx) (sqltypes.Value, error) {
			v, err := xfn(ctx)
			if err != nil {
				return sqltypes.Value{}, err
			}
			lo, err := lofn(ctx)
			if err != nil {
				return sqltypes.Value{}, err
			}
			hi, err := hifn(ctx)
			if err != nil {
				return sqltypes.Value{}, err
			}
			if v.IsNull() || lo.IsNull() || hi.IsNull() {
				return sqltypes.Null(), nil
			}
			in := sqltypes.Compare(v, lo) >= 0 && sqltypes.Compare(v, hi) <= 0
			return sqltypes.NewBool(in != not), nil
		}, nil
	case *sqlast.IsNullExpr:
		fn, err := c.compileExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		not := x.Not
		return func(ctx *rowCtx) (sqltypes.Value, error) {
			v, err := fn(ctx)
			if err != nil {
				return sqltypes.Value{}, err
			}
			return sqltypes.NewBool(v.IsNull() != not), nil
		}, nil
	case *sqlast.ExistsExpr:
		sub, err := c.compileStmt(x.Sub, sc)
		if err != nil {
			return nil, err
		}
		ex, not := c.ex, x.Not
		return func(ctx *rowCtx) (sqltypes.Value, error) {
			rel, err := ex.runProgram(ctx.qctx, sub, ctx, ctx.depth+1)
			if err != nil {
				return sqltypes.Value{}, err
			}
			return sqltypes.NewBool((rel.NumRows() > 0) != not), nil
		}, nil
	case *sqlast.SubqueryExpr:
		sub, err := c.compileStmt(x.Sub, sc)
		if err != nil {
			return nil, err
		}
		ex := c.ex
		return func(ctx *rowCtx) (sqltypes.Value, error) {
			rel, err := ex.runProgram(ctx.qctx, sub, ctx, ctx.depth+1)
			if err != nil {
				return sqltypes.Value{}, err
			}
			if rel.NumRows() == 0 || rel.NumCols() == 0 {
				return sqltypes.Null(), nil
			}
			return rel.Rows[0][0], nil
		}, nil
	case nil:
		return nil, fmt.Errorf("sqleval: nil expression")
	default:
		return nil, fmt.Errorf("sqleval: unsupported expression %T", e)
	}
}

func (c *compiler) compileBinary(x *sqlast.Binary, sc *scope) (compiledExpr, error) {
	lfn, err := c.compileExpr(x.L, sc)
	if err != nil {
		return nil, err
	}
	rfn, err := c.compileExpr(x.R, sc)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "AND":
		// Kleene three-valued logic with short-circuiting on the
		// determining value.
		return func(ctx *rowCtx) (sqltypes.Value, error) {
			l, err := lfn(ctx)
			if err != nil {
				return sqltypes.Value{}, err
			}
			if !l.IsNull() && !l.Truthy() {
				return sqltypes.NewBool(false), nil
			}
			r, err := rfn(ctx)
			if err != nil {
				return sqltypes.Value{}, err
			}
			if !r.IsNull() && !r.Truthy() {
				return sqltypes.NewBool(false), nil
			}
			if l.IsNull() || r.IsNull() {
				return sqltypes.Null(), nil
			}
			return sqltypes.NewBool(true), nil
		}, nil
	case "OR":
		return func(ctx *rowCtx) (sqltypes.Value, error) {
			l, err := lfn(ctx)
			if err != nil {
				return sqltypes.Value{}, err
			}
			if l.Truthy() {
				return sqltypes.NewBool(true), nil
			}
			r, err := rfn(ctx)
			if err != nil {
				return sqltypes.Value{}, err
			}
			if r.Truthy() {
				return sqltypes.NewBool(true), nil
			}
			if l.IsNull() || r.IsNull() {
				return sqltypes.Null(), nil
			}
			return sqltypes.NewBool(false), nil
		}, nil
	case "=", "!=", "<>", "<", "<=", ">", ">=":
		var test func(int) bool
		switch x.Op {
		case "=":
			test = func(c int) bool { return c == 0 }
		case "!=", "<>":
			test = func(c int) bool { return c != 0 }
		case "<":
			test = func(c int) bool { return c < 0 }
		case "<=":
			test = func(c int) bool { return c <= 0 }
		case ">":
			test = func(c int) bool { return c > 0 }
		default:
			test = func(c int) bool { return c >= 0 }
		}
		return func(ctx *rowCtx) (sqltypes.Value, error) {
			l, err := lfn(ctx)
			if err != nil {
				return sqltypes.Value{}, err
			}
			r, err := rfn(ctx)
			if err != nil {
				return sqltypes.Value{}, err
			}
			if l.IsNull() || r.IsNull() {
				return sqltypes.Null(), nil
			}
			return sqltypes.NewBool(test(sqltypes.Compare(l, r))), nil
		}, nil
	case "+", "-", "*", "/", "%":
		op := x.Op
		return func(ctx *rowCtx) (sqltypes.Value, error) {
			l, err := lfn(ctx)
			if err != nil {
				return sqltypes.Value{}, err
			}
			r, err := rfn(ctx)
			if err != nil {
				return sqltypes.Value{}, err
			}
			return arith(op, l, r), nil
		}, nil
	default:
		return nil, fmt.Errorf("sqleval: unknown operator %q", x.Op)
	}
}

func arith(op string, l, r sqltypes.Value) sqltypes.Value {
	if l.IsNull() || r.IsNull() {
		return sqltypes.Null()
	}
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return sqltypes.Null()
	}
	bothInt := l.Kind() == sqltypes.KindInt && r.Kind() == sqltypes.KindInt
	switch op {
	case "+":
		if bothInt {
			return sqltypes.NewInt(l.Int() + r.Int())
		}
		return sqltypes.NewFloat(lf + rf)
	case "-":
		if bothInt {
			return sqltypes.NewInt(l.Int() - r.Int())
		}
		return sqltypes.NewFloat(lf - rf)
	case "*":
		if bothInt {
			return sqltypes.NewInt(l.Int() * r.Int())
		}
		return sqltypes.NewFloat(lf * rf)
	case "/":
		if rf == 0 {
			return sqltypes.Null()
		}
		if bothInt {
			return sqltypes.NewInt(l.Int() / r.Int())
		}
		return sqltypes.NewFloat(lf / rf)
	case "%":
		if rf == 0 {
			return sqltypes.Null()
		}
		if bothInt {
			return sqltypes.NewInt(l.Int() % r.Int())
		}
		return sqltypes.NewFloat(math.Mod(lf, rf))
	}
	return sqltypes.Null()
}

func (c *compiler) compileIn(x *sqlast.InExpr, sc *scope) (compiledExpr, error) {
	xfn, err := c.compileExpr(x.X, sc)
	if err != nil {
		return nil, err
	}
	not := x.Not
	membership := func(v sqltypes.Value, members []sqltypes.Value) sqltypes.Value {
		if v.IsNull() {
			return sqltypes.Null()
		}
		found := false
		sawNull := false
		for _, m := range members {
			if m.IsNull() {
				sawNull = true
				continue
			}
			if sqltypes.Compare(v, m) == 0 {
				found = true
				break
			}
		}
		if !found && sawNull {
			return sqltypes.Null()
		}
		return sqltypes.NewBool(found != not)
	}
	if x.Sub != nil {
		sub, err := c.compileStmt(x.Sub, sc)
		if err != nil {
			return nil, err
		}
		ex := c.ex
		return func(ctx *rowCtx) (sqltypes.Value, error) {
			v, err := xfn(ctx)
			if err != nil {
				return sqltypes.Value{}, err
			}
			rel, err := ex.runProgram(ctx.qctx, sub, ctx, ctx.depth+1)
			if err != nil {
				return sqltypes.Value{}, err
			}
			var members []sqltypes.Value
			for _, row := range rel.Rows {
				if len(row) > 0 {
					members = append(members, row[0])
				}
			}
			return membership(v, members), nil
		}, nil
	}
	var memberFns []compiledExpr
	for _, le := range x.List {
		fn, err := c.compileExpr(le, sc)
		if err != nil {
			return nil, err
		}
		memberFns = append(memberFns, fn)
	}
	return func(ctx *rowCtx) (sqltypes.Value, error) {
		v, err := xfn(ctx)
		if err != nil {
			return sqltypes.Value{}, err
		}
		members := make([]sqltypes.Value, len(memberFns))
		for i, fn := range memberFns {
			if members[i], err = fn(ctx); err != nil {
				return sqltypes.Value{}, err
			}
		}
		return membership(v, members), nil
	}, nil
}

func (c *compiler) compileFunc(x *sqlast.FuncCall, sc *scope) (compiledExpr, error) {
	if x.IsAggregate() {
		return c.compileAggregate(x, sc)
	}
	switch x.Name {
	case "ABS":
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("sqleval: ABS expects 1 argument")
		}
		fn, err := c.compileExpr(x.Args[0], sc)
		if err != nil {
			return nil, err
		}
		return func(ctx *rowCtx) (sqltypes.Value, error) {
			v, err := fn(ctx)
			if err != nil {
				return sqltypes.Value{}, err
			}
			if v.IsNull() {
				return sqltypes.Null(), nil
			}
			if v.Kind() == sqltypes.KindInt {
				if v.Int() < 0 {
					return sqltypes.NewInt(-v.Int()), nil
				}
				return v, nil
			}
			f, ok := v.AsFloat()
			if !ok {
				return sqltypes.Null(), nil
			}
			return sqltypes.NewFloat(math.Abs(f)), nil
		}, nil
	default:
		return nil, fmt.Errorf("sqleval: unknown function %s", x.Name)
	}
}

// compileAggregate lowers an aggregate call. The closure errors outside a
// grouped context (ctx.grp == nil), preserving the legacy runtime check.
func (c *compiler) compileAggregate(x *sqlast.FuncCall, sc *scope) (compiledExpr, error) {
	name := x.Name
	if x.Star {
		if name != "COUNT" {
			return nil, fmt.Errorf("sqleval: %s(*) is not valid", name)
		}
		return func(ctx *rowCtx) (sqltypes.Value, error) {
			if ctx.grp == nil {
				return sqltypes.Value{}, fmt.Errorf("sqleval: aggregate COUNT outside grouped context")
			}
			return sqltypes.NewInt(int64(len(ctx.grp.rows))), nil
		}, nil
	}
	if len(x.Args) != 1 {
		return nil, fmt.Errorf("sqleval: aggregate %s expects 1 argument", name)
	}
	argFn, err := c.compileExpr(x.Args[0], sc)
	if err != nil {
		return nil, err
	}
	distinct := x.Distinct
	return func(ctx *rowCtx) (sqltypes.Value, error) {
		if ctx.grp == nil {
			return sqltypes.Value{}, fmt.Errorf("sqleval: aggregate %s outside grouped context", name)
		}
		var vals []sqltypes.Value
		var seen map[string]struct{}
		var buf []byte
		if distinct {
			seen = make(map[string]struct{})
		}
		sub := &rowCtx{parent: ctx.parent, depth: ctx.depth, qctx: ctx.qctx}
		for _, row := range ctx.grp.rows {
			sub.row = row
			v, err := argFn(sub)
			if err != nil {
				return sqltypes.Value{}, err
			}
			if v.IsNull() {
				continue
			}
			if distinct {
				buf = v.AppendKey(buf[:0])
				if _, dup := seen[string(buf)]; dup {
					continue
				}
				seen[string(buf)] = struct{}{}
			}
			vals = append(vals, v)
		}
		return foldAggregate(name, vals)
	}, nil
}

func foldAggregate(name string, vals []sqltypes.Value) (sqltypes.Value, error) {
	switch name {
	case "COUNT":
		return sqltypes.NewInt(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return sqltypes.Null(), nil
		}
		sum := 0.0
		allInt := true
		for _, v := range vals {
			f, ok := v.AsFloat()
			if !ok {
				return sqltypes.Null(), nil
			}
			if v.Kind() != sqltypes.KindInt {
				allInt = false
			}
			sum += f
		}
		if name == "SUM" {
			if allInt {
				return sqltypes.NewInt(int64(sum)), nil
			}
			return sqltypes.NewFloat(sum), nil
		}
		return sqltypes.NewFloat(sum / float64(len(vals))), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return sqltypes.Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := sqltypes.Compare(v, best)
			if (name == "MIN" && c < 0) || (name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return sqltypes.Value{}, fmt.Errorf("sqleval: unknown aggregate %s", name)
}

// likeMatch implements SQL LIKE with % and _ wildcards (case folded by the
// caller, matching SQLite's ASCII-insensitive default).
func likeMatch(s, pattern string) bool {
	// Dynamic-programming match over bytes; patterns are short.
	m, n := len(s), len(pattern)
	dp := make([]bool, m+1)
	dp[0] = true
	for j := 1; j <= n; j++ {
		prevDiag := dp[0]
		dp[0] = dp[0] && pattern[j-1] == '%'
		for i := 1; i <= m; i++ {
			cur := dp[i]
			switch pattern[j-1] {
			case '%':
				dp[i] = dp[i] || dp[i-1]
			case '_':
				dp[i] = prevDiag
			default:
				dp[i] = prevDiag && s[i-1] == pattern[j-1]
			}
			prevDiag = cur
		}
	}
	return dp[m]
}
